"""Update cost model: delta latency, churn curve, placement headroom."""

import pytest

from repro.arch.simulator import IveSimulator
from repro.arch.config import IveConfig
from repro.errors import ParameterError, SimulationError
from repro.mutate import churn_update_curve, expected_dirty_polys
from repro.params import PirParams
from repro.systems.scale_up import (
    UPDATE_HEADROOM_CAP,
    KvScaleUpSystem,
    ScaleUpSystem,
    update_bandwidth_demand,
)


@pytest.fixture(scope="module")
def paper_params():
    return PirParams.paper(d0=256, num_dims=9)  # the 2 GiB Table I DB


class TestUpdateApplyLatency:
    def test_scales_with_the_delta_and_caps_at_full(self, paper_params):
        sim = IveSimulator(IveConfig.ive(), paper_params)
        small = sim.update_apply_latency(100)
        large = sim.update_apply_latency(10_000)
        full = sim.full_preprocess_latency()
        assert 0 < small.total_s < large.total_s <= full.total_s
        assert full.dirty_polys == paper_params.num_db_polys

    def test_delta_speedup_is_at_least_10x_at_1pct_churn(self, paper_params):
        sim = IveSimulator(IveConfig.ive(), paper_params)
        dirty = round(0.01 * paper_params.num_db_polys)
        speedup = (
            sim.full_preprocess_latency().total_s
            / sim.update_apply_latency(dirty).total_s
        )
        assert speedup >= 10.0

    def test_negative_delta_rejected(self, paper_params):
        sim = IveSimulator(IveConfig.ive(), paper_params)
        with pytest.raises(SimulationError):
            sim.update_apply_latency(-1)


class TestChurnCurve:
    def test_speedup_decreases_with_churn(self, paper_params):
        points = churn_update_curve(paper_params, churns=(0.001, 0.01, 0.1))
        speedups = [p.speedup for p in points]
        assert speedups == sorted(speedups, reverse=True)
        assert points[1].speedup >= 10.0  # the 1% acceptance point

    def test_shared_polys_dedupe_dirty_work(self, paper_params):
        packed = churn_update_curve(
            paper_params, churns=(0.5,), records_per_poly=16
        )[0]
        striped = churn_update_curve(paper_params, churns=(0.5,))[0]
        # 16 records/poly at 50% churn collide heavily: far fewer dirty
        # polys than record updates, never more than the geometry holds.
        assert packed.dirty_polys < packed.updates
        assert packed.dirty_polys <= paper_params.num_db_polys
        assert striped.dirty_polys == striped.updates

    def test_expected_dirty_occupancy_bounds(self):
        assert expected_dirty_polys(100, 0, 4) == 0
        assert expected_dirty_polys(100, 50, 1) == 50
        assert expected_dirty_polys(100, 10_000, 16) == 100  # saturates


class TestUpdateHeadroom:
    def test_headroom_carved_out_of_the_db_channel(self, paper_params):
        static = ScaleUpSystem(paper_params)
        churning = ScaleUpSystem(paper_params, update_polys_per_s=1e4)
        assert 0.0 < churning.update_headroom < 1.0
        assert static.update_headroom == 1.0
        assert churning.simulator.db_bandwidth < static.simulator.db_bandwidth
        # Less scan bandwidth means a (weakly) slower batched pass.
        assert (
            churning.latency(64).total_s >= static.latency(64).total_s
        )

    def test_excessive_update_rate_rejected(self, paper_params):
        memory = IveConfig.ive().memory
        cap_rate = (
            UPDATE_HEADROOM_CAP * memory.hbm_bandwidth / paper_params.poly_bytes
        )
        with pytest.raises(ParameterError):
            ScaleUpSystem(paper_params, update_polys_per_s=2 * cap_rate)

    def test_demand_formula_and_validation(self, paper_params):
        assert update_bandwidth_demand(paper_params, 10.0) == (
            10.0 * paper_params.poly_bytes
        )
        with pytest.raises(ParameterError):
            update_bandwidth_demand(paper_params, -1.0)

    def test_kv_system_accounts_for_headroom_too(self, paper_params):
        from repro.kvpir.model import model_kv_slot_params

        slot_params = model_kv_slot_params(paper_params)
        static = KvScaleUpSystem(slot_params, candidates_per_lookup=4)
        churning = KvScaleUpSystem(
            slot_params, candidates_per_lookup=4, update_polys_per_s=1e4
        )
        assert churning.update_headroom < static.update_headroom == 1.0
        assert (
            churning.lookup_latency().total_s >= static.lookup_latency().total_s
        )
