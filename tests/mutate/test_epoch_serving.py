"""Epoch hot-swap under the serving runtime: zero loss, correct pinning."""

import asyncio

import numpy as np
import pytest

from repro.errors import MutateError, StaleEpoch
from repro.mutate import (
    UpdateLog,
    VersionedCryptoBackend,
    VersionedShardRegistry,
)
from repro.params import PirParams
from repro.serve.dispatcher import ServeRuntime
from repro.systems.batching import BatchPolicy


@pytest.fixture(scope="module")
def params():
    return PirParams.small(n=256, d0=8, num_dims=2)


def _registry(params, retain=2, num_records=12, seed=5):
    return VersionedShardRegistry.random(
        params,
        num_records=num_records,
        record_bytes=32,
        num_shards=2,
        seed=seed,
        retain=retain,
    )


class TestEpochLifecycle:
    def test_publish_bumps_epoch_and_reports_delta_cost(self, params):
        registry = _registry(params)
        published = registry.publish(UpdateLog().put(3, b"\x42" * 32))
        assert published.epoch == 1
        assert registry.current_epoch == 1
        assert published.cost.polys_repacked >= 1
        assert published.cost.speedup_vs_full > 1.0
        assert registry.expected(3) == b"\x42" * 32
        assert registry.expected(3, epoch=0) != b"\x42" * 32

    def test_appends_are_rejected_at_the_serving_layer(self, params):
        registry = _registry(params)
        with pytest.raises(MutateError):
            registry.publish(UpdateLog().append(b"\x00" * 32))

    def test_rejected_publish_is_atomic_across_shards(self, params):
        """Regression: a log whose LAST entry is invalid must not leave
        earlier shards' databases advanced — the rejected write used to
        leak into the next successful publish."""
        registry = _registry(params)
        before = [registry.expected(i) for i in range(registry.num_records)]
        with pytest.raises(MutateError):
            # Record 0 lives on shard 0, the bad-length write comes later.
            registry.publish(UpdateLog().put(0, b"\x99" * 32).put(6, b"short"))
        assert registry.current_epoch == 0
        registry.publish(UpdateLog().put(11, b"\x55" * 32))
        assert registry.expected(0) == before[0]  # the rejected put is gone
        assert registry.expected(11) == b"\x55" * 32

    def test_shard_bounds_are_typed_on_the_versioned_registry(self, params):
        from repro.errors import RoutingError

        registry = _registry(params)
        with pytest.raises(RoutingError):
            registry.server(registry.num_shards)
        with pytest.raises(RoutingError):
            registry.server(-1)  # must not silently index from the end

    def test_releasing_a_shed_request_frees_the_epoch(self, params):
        registry = _registry(params, retain=1)
        request = registry.make_request(2)  # pins epoch 0
        registry.publish(UpdateLog().put(2, b"\x10" * 32))
        assert 0 in registry.live_epochs
        registry.release(request)  # what a shed-submit caller must do
        assert 0 not in registry.live_epochs

    def test_stale_epoch_is_typed_and_carries_the_window(self, params):
        registry = _registry(params, retain=1)
        registry.publish(UpdateLog().put(0, b"\x01" * 32))
        with pytest.raises(StaleEpoch) as excinfo:
            registry.make_request(0, epoch=0)
        assert excinfo.value.epoch == 0
        assert excinfo.value.current == 1
        assert 0 not in registry.live_epochs

    def test_unknown_future_epoch_is_stale_too(self, params):
        registry = _registry(params)
        with pytest.raises(StaleEpoch):
            registry.make_request(0, epoch=99)

    def test_inflight_pin_keeps_a_retired_epoch_alive(self, params):
        registry = _registry(params, retain=1)
        old_value = registry.expected(4)
        request = registry.make_request(4)  # pins epoch 0
        registry.publish(UpdateLog().put(4, b"\x99" * 32))
        assert 0 in registry.live_epochs  # not admissible, but alive
        with pytest.raises(StaleEpoch):
            registry.make_request(4, epoch=0)  # no NEW admissions
        # The pinned request still answers and decodes against epoch 0.
        response = registry.server(request.shard_id, request.epoch).answer(
            request.query
        )
        assert registry.decode(request, response) == old_value
        assert old_value != b"\x99" * 32
        # decode released the pin: the retired epoch is gone now.
        assert 0 not in registry.live_epochs


class TestServingAcrossSwaps:
    def test_no_admitted_request_lost_or_decoded_against_wrong_epoch(self, params):
        """The acceptance assertion: swaps mid-flight lose nothing.

        Requests are admitted continuously while epochs are published
        with retain=1 (the most aggressive retirement); every admitted
        request must complete and decode byte-correct against the
        records AS OF its admitted epoch.
        """
        num_records = 12
        registry = _registry(params, retain=1, num_records=num_records, seed=8)
        policy = BatchPolicy(waiting_window_s=0.005, max_batch=4)
        rng = np.random.default_rng(21)
        truth = {0: [registry.expected(i) for i in range(num_records)]}

        async def main():
            runtime = ServeRuntime(registry, VersionedCryptoBackend(registry), policy)
            futures = []
            async with runtime:
                for wave in range(3):
                    for index in range(num_records):
                        futures.append(
                            runtime.submit(registry.make_request(index))
                        )
                    published = registry.publish(
                        UpdateLog().put(
                            int(rng.integers(num_records)), rng.bytes(32)
                        )
                    )
                    truth[published.epoch] = [
                        registry.expected(i) for i in range(num_records)
                    ]
                    await asyncio.sleep(0.002)
                results = await asyncio.gather(*futures)
            return results

        results = asyncio.run(main())
        assert len(results) == 36  # nothing lost
        epochs_seen = set()
        for result in results:
            request = result.request
            epochs_seen.add(request.epoch)
            decoded = registry.decode(request, result.response)
            assert decoded == truth[request.epoch][request.global_index]
        assert len(epochs_seen) >= 2  # the run genuinely straddled swaps

    def test_swapped_value_visible_to_new_admissions_only(self, params):
        registry = _registry(params, retain=2)
        policy = BatchPolicy(waiting_window_s=0.002, max_batch=4)

        async def main():
            runtime = ServeRuntime(registry, VersionedCryptoBackend(registry), policy)
            async with runtime:
                old_request = registry.make_request(6)
                old_future = runtime.submit(old_request)
                registry.publish(UpdateLog().put(6, b"\x77" * 32))
                new_request = registry.make_request(6)
                new_future = runtime.submit(new_request)
                return await asyncio.gather(old_future, new_future)

        old_result, new_result = asyncio.run(main())
        assert old_result.request.epoch == 0
        assert new_result.request.epoch == 1
        old_bytes = registry.decode(old_result.request, old_result.response)
        new_bytes = registry.decode(new_result.request, new_result.response)
        assert new_bytes == b"\x77" * 32
        assert old_bytes != b"\x77" * 32  # the epoch-0 snapshot's value
