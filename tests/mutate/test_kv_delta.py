"""Cuckoo-aware keyword deltas: placement, spills, live-server patching."""

import numpy as np
import pytest

from repro.batchpir.server import BatchPirProtocol
from repro.errors import MutateError, RebuildRequired
from repro.kvpir.client import KvPirClient
from repro.kvpir.layout import KvDatabase
from repro.kvpir.server import KvPirServer
from repro.mutate import KvUpdateLog, VersionedKvDatabase, apply_batch_record_updates
from repro.params import PirParams


@pytest.fixture(scope="module")
def params():
    return PirParams.small(n=256, d0=8, num_dims=2)


def _store(params, num_keys=32, reserve_stash=4, hash_seed=1):
    items = {f"user-{i}".encode(): bytes([i]) * 16 for i in range(num_keys)}
    db = KvDatabase.from_items(
        params, items, reserve_stash=reserve_stash, hash_seed=hash_seed
    )
    return items, db


class TestTableMaintenance:
    def test_put_delete_insert_update_ground_truth(self, params):
        items, db = _store(params)
        vkv = VersionedKvDatabase(db)
        cost = vkv.apply(
            KvUpdateLog()
            .put(b"user-3", b"\xaa" * 16)
            .delete(b"user-7")
            .put(b"fresh-key", b"\xbb" * 16)
        )
        assert cost.epoch == 1
        assert (cost.keys_updated, cost.keys_inserted, cost.keys_deleted) == (1, 1, 1)
        assert vkv.value(b"user-3") == b"\xaa" * 16
        assert not vkv.contains(b"user-7")
        assert vkv.value(b"fresh-key") == b"\xbb" * 16
        # The wrapped KvDatabase ground truth moved with it.
        assert db.value(b"fresh-key") == b"\xbb" * 16
        assert not db.contains(b"user-7")

    def test_inserted_keys_live_in_their_cuckoo_candidates(self, params):
        _, db = _store(params)
        vkv = VersionedKvDatabase(db)
        vkv.apply(KvUpdateLog().put(b"new-1", b"\x01" * 16).put(b"new-2", b"\x02" * 16))
        table = db.layout.table
        for key in (b"new-1", b"new-2"):
            slot = vkv._slot_of[key]
            if slot < table.num_buckets:
                assert slot in table.candidates(key)
            else:  # spilled to an always-probed stash slot
                assert slot < db.layout.num_slots

    def test_dirty_work_is_bounded_by_slots_times_hashes(self, params):
        _, db = _store(params)
        vkv = VersionedKvDatabase(db)
        cost = vkv.apply(KvUpdateLog().put(b"user-5", b"\xcc" * 16))
        bound = (cost.dirty_slots + cost.displaced) * (
            db.layout.batch.config.num_hashes
        )
        assert cost.dirty_buckets <= bound
        assert cost.dirty_buckets < cost.total_buckets
        assert cost.poly_cost.speedup_vs_full > 1.0

    def test_absent_key_delete_is_typed(self, params):
        _, db = _store(params)
        with pytest.raises(MutateError):
            VersionedKvDatabase(db).apply(KvUpdateLog().delete(b"never-there"))

    def test_wrong_value_size_is_typed(self, params):
        _, db = _store(params)
        with pytest.raises(MutateError):
            VersionedKvDatabase(db).apply(KvUpdateLog().put(b"user-1", b"tiny"))

    def test_rejected_apply_leaves_no_divergence(self, params):
        """Regression: a log that fails validation partway (valid delete +
        absent-key delete) must leave ground truth AND the served slot
        records untouched — mid-apply mutation used to strand deleted
        keys in the bucket polynomials forever."""
        items, db = _store(params)
        vkv = VersionedKvDatabase(db)
        records_before = list(db.batch_db._records)
        slots_before = dict(vkv._slots)
        with pytest.raises(MutateError):
            vkv.apply(KvUpdateLog().delete(b"user-1").delete(b"zz-absent"))
        assert vkv.contains(b"user-1")  # the valid half did not half-apply
        assert vkv.value(b"user-1") == items[b"user-1"]
        assert db.batch_db._records == records_before
        assert vkv._slots == slots_before
        assert vkv.epoch == 0
        # And the store still works for a clean follow-up apply.
        vkv.apply(KvUpdateLog().delete(b"user-1"))
        assert not vkv.contains(b"user-1")

    def test_rebuild_required_rolls_back_the_whole_apply(self, params):
        """RebuildRequired mid-walk must not commit the keys placed
        earlier in the same apply."""
        items = {f"k-{i}".encode(): bytes([i]) * 8 for i in range(16)}
        db = KvDatabase.from_items(params, items, reserve_stash=0, hash_seed=2)
        vkv = VersionedKvDatabase(db)
        log = KvUpdateLog()
        for i in range(50):  # enough inserts to exhaust the full table
            log.put(f"extra-{i}".encode(), b"\x00" * 8)
        with pytest.raises(RebuildRequired):
            vkv.apply(log)
        assert vkv.num_keys == 16  # none of the batch leaked in
        assert vkv.epoch == 0

    def test_stash_exhaustion_raises_rebuild_required(self, params):
        # No reserved stash and a table built full: pushing enough new keys
        # must eventually exhaust evictions + stash and fail typed.
        items = {f"k-{i}".encode(): bytes([i]) * 8 for i in range(16)}
        db = KvDatabase.from_items(params, items, reserve_stash=0, hash_seed=2)
        vkv = VersionedKvDatabase(db)
        with pytest.raises(RebuildRequired):
            for i in range(200):
                vkv.apply(KvUpdateLog().put(f"extra-{i}".encode(), b"\x00" * 8))

    def test_spills_are_accounted_and_probed(self, params):
        items = {f"k-{i}".encode(): bytes([i]) * 8 for i in range(16)}
        db = KvDatabase.from_items(params, items, reserve_stash=3, hash_seed=2)
        vkv = VersionedKvDatabase(db)
        spills = 0
        try:
            for i in range(200):
                cost = vkv.apply(KvUpdateLog().put(f"extra-{i}".encode(), b"\x01" * 8))
                spills += cost.stash_spills
        except RebuildRequired:
            pass
        assert spills == 3  # every reserved stash slot absorbed one spill
        assert vkv.stash_in_use == 3


class TestBatchPirDelta:
    def test_batch_retrievals_see_updates_without_rebuild(self, params):
        rng = np.random.default_rng(17)
        records = [rng.bytes(32) for _ in range(64)]
        protocol = BatchPirProtocol(
            params, records, max_batch=8, record_bytes=32, seed=3
        )
        pres = [s.db for s in protocol.server.servers]
        cost = apply_batch_record_updates(
            protocol.db,
            {5: b"\x11" * 32, 40: b"\x22" * 32},
            pres=pres,
            ring=protocol.client.pir.ring,
        )
        assert 0 < cost.polys_ntted < cost.full_polys
        assert cost.speedup_vs_full > 1.0
        result = protocol.retrieve_batch([5, 40, 7])
        assert result.records == [b"\x11" * 32, b"\x22" * 32, records[7]]

    def test_out_of_range_update_is_typed(self, params):
        rng = np.random.default_rng(18)
        protocol = BatchPirProtocol(
            params,
            [rng.bytes(16) for _ in range(8)],
            max_batch=4,
            record_bytes=16,
            seed=3,
        )
        with pytest.raises(MutateError):
            apply_batch_record_updates(protocol.db, {8: b"\x00" * 16})

    def test_rejected_update_mutates_nothing(self, params):
        """Regression: an invalid entry anywhere in the batch must leave
        ground truth and buckets untouched (validate-then-mutate)."""
        rng = np.random.default_rng(19)
        records = [rng.bytes(16) for _ in range(8)]
        protocol = BatchPirProtocol(
            params, records, max_batch=4, record_bytes=16, seed=3
        )
        with pytest.raises(MutateError):
            apply_batch_record_updates(
                protocol.db, {0: b"\xaa" * 16, 99: b"\xbb" * 16}
            )
        assert protocol.db.record(0) == records[0]
        with pytest.raises(MutateError):
            apply_batch_record_updates(
                protocol.db, {0: b"\xaa" * 16, 3: b"wrong size"}
            )
        assert protocol.db.record(0) == records[0]


class TestLiveServerPatch:
    @pytest.fixture(scope="class")
    def deployment(self, params):
        items, db = _store(params, num_keys=24, reserve_stash=2)
        client = KvPirClient(db.layout, seed=9)
        server = KvPirServer(db, client.batch.pir.ring, client.setup_message())
        return items, db, client, server

    def _lookup(self, client, server, key):
        plan = client.plan([key])
        response = server.answer(client.build_queries(plan))
        return client.decode(plan, response)

    def test_lookups_see_the_delta_without_a_rebuild(self, params, deployment):
        items, db, client, server = deployment
        vkv = VersionedKvDatabase(db, ring=client.batch.pir.ring)
        pres = [s.db for s in server.batch_server.servers]
        vkv.apply(
            KvUpdateLog()
            .put(b"user-2", b"\xee" * 16)
            .delete(b"user-9")
            .put(b"hot-insert", b"\xdd" * 16),
            pres=pres,
        )
        assert self._lookup(client, server, b"user-2")[b"user-2"] == b"\xee" * 16
        assert self._lookup(client, server, b"hot-insert")[b"hot-insert"] == b"\xdd" * 16
        assert b"user-9" not in self._lookup(client, server, b"user-9")
        # An untouched key still decodes its original value.
        assert self._lookup(client, server, b"user-11")[b"user-11"] == items[b"user-11"]

    def test_patched_buckets_match_a_fresh_preprocess(self, params, deployment):
        _, db, client, server = deployment
        ring = client.batch.pir.ring
        for bucket_db, pir_server in zip(db.batch_db.bucket_dbs, server.batch_server.servers):
            fresh = bucket_db.preprocess(ring)
            for plane in range(len(fresh.planes)):
                for poly in range(len(fresh.planes[plane])):
                    assert np.array_equal(
                        fresh.planes[plane][poly].residues,
                        pir_server.db.planes[plane][poly].residues,
                    )
