"""Typed mutation logs: validation, ordering, coalescing."""

import pytest

from repro.errors import MutateError, ParameterError
from repro.mutate import Append, Delete, KvUpdateLog, Put, UpdateLog


class TestUpdateLog:
    def test_builders_are_chainable_and_ordered(self):
        log = UpdateLog().put(1, b"a").delete(2).append(b"b")
        assert [type(op) for op in log] == [Put, Delete, Append]
        assert len(log) == 3
        assert log.num_appends == 1

    def test_rejects_bad_indices(self):
        with pytest.raises(MutateError):
            UpdateLog().put(-1, b"x")
        with pytest.raises(MutateError):
            UpdateLog().delete(True)
        with pytest.raises(MutateError):
            UpdateLog().put(2.0, b"x")

    def test_coalesce_last_write_wins(self):
        log = UpdateLog().put(0, b"a").put(0, b"b").delete(1).put(1, b"c")
        writes, appends = log.coalesced(num_records=4)
        assert writes == {0: b"b", 1: b"c"}
        assert appends == []

    def test_coalesce_delete_becomes_tombstone(self):
        writes, _ = UpdateLog().put(2, b"x").delete(2).coalesced(4)
        assert writes == {2: None}

    def test_put_to_own_append_folds_into_append(self):
        log = UpdateLog().append(b"a").put(4, b"b")
        writes, appends = log.coalesced(num_records=4)
        assert writes == {}
        assert appends == [b"b"]

    def test_deleted_append_still_occupies_its_index(self):
        _, appends = UpdateLog().append(b"a").append(b"b").delete(4).coalesced(4)
        assert appends == [None, b"b"]

    def test_write_beyond_database_and_appends_rejected(self):
        with pytest.raises(MutateError):
            UpdateLog().put(5, b"x").coalesced(4)
        with pytest.raises(MutateError):
            UpdateLog().append(b"a").put(6, b"x").coalesced(4)


class TestKvUpdateLog:
    def test_coalesce_per_key(self):
        log = (
            KvUpdateLog()
            .put(b"k1", b"v1")
            .put(b"k1", b"v2")
            .delete(b"k2")
            .put(b"k3", b"v3")
            .delete(b"k3")
        )
        assert log.coalesced() == {b"k1": b"v2", b"k2": None, b"k3": None}

    def test_rejects_foreign_key_types(self):
        with pytest.raises(ParameterError):
            KvUpdateLog().put("text", b"v")  # text must be encoded explicitly
