"""Dirty-plane delta application: correctness, COW sharing, cost bounds."""

import numpy as np
import pytest

from repro.errors import LayoutError, MutateError
from repro.he.poly import RingContext
from repro.mutate import UpdateLog, VersionedDatabase
from repro.params import PirParams
from repro.pir.database import PirDatabase
from repro.pir.protocol import PirProtocol


@pytest.fixture(scope="module")
def params():
    return PirParams.small(n=256, d0=8, num_dims=2)


@pytest.fixture(scope="module")
def ring(params):
    return RingContext(params)


def _records(n, size=64, seed=3):
    rng = np.random.default_rng(seed)
    return [rng.bytes(size) for _ in range(n)]


class TestDeltaCorrectness:
    def test_apply_matches_from_scratch_rebuild(self, params, ring):
        records = _records(24)
        vdb = VersionedDatabase(params, records, 64, ring=ring)
        snap = vdb.apply(
            UpdateLog().put(3, b"\x07" * 64).delete(5).append(b"\x09" * 64)
        )
        expected = list(records)
        expected[3] = b"\x07" * 64
        expected[5] = b"\x00" * 64  # tombstone
        expected.append(b"\x09" * 64)
        fresh = PirDatabase.from_records(expected, params, 64)
        assert np.array_equal(fresh.planes, snap.db.planes)
        fresh_pre = fresh.preprocess(ring)
        for plane in range(len(fresh_pre.planes)):
            for poly in range(len(fresh_pre.planes[plane])):
                assert np.array_equal(
                    fresh_pre.planes[plane][poly].residues,
                    snap.pre.planes[plane][poly].residues,
                )

    def test_striped_records_repack_every_plane(self, params, ring):
        # Records larger than one polynomial stripe across planes.
        record_bytes = 3 * params.poly_payload_bytes
        records = _records(6, size=record_bytes)
        vdb = VersionedDatabase(params, records, record_bytes, ring=ring)
        assert vdb.current.db.layout.plane_count == 3
        snap = vdb.apply(UpdateLog().put(2, b"\x5a" * record_bytes))
        assert snap.cost.polys_repacked == 3  # one poly per plane
        expected = list(records)
        expected[2] = b"\x5a" * record_bytes
        fresh = PirDatabase.from_records(expected, params, record_bytes)
        assert np.array_equal(fresh.planes, snap.db.planes)

    def test_updated_record_retrieves_byte_correct(self, params):
        records = _records(16, size=32)
        vdb = VersionedDatabase(params, records, 32)
        vdb.apply(UpdateLog().put(9, b"\xab" * 32))
        protocol = PirProtocol(params, vdb.current.db, seed=4)
        assert protocol.retrieve(9).record == b"\xab" * 32
        assert protocol.retrieve(8).record == records[8]

    def test_epochs_are_stamped_and_monotone(self, params):
        vdb = VersionedDatabase(params, _records(8, size=32), 32)
        assert vdb.epoch == 0
        assert vdb.apply(UpdateLog().put(0, b"\x01" * 32)).epoch == 1
        assert vdb.apply(UpdateLog()).epoch == 2  # empty applies still version


class TestCopyOnWrite:
    def test_clean_preprocessed_polys_are_shared_objects(self, params, ring):
        vdb = VersionedDatabase(params, _records(24), 64, ring=ring)
        before = vdb.current
        after = vdb.apply(UpdateLog().put(0, b"\x01" * 64))
        shared = dirty = 0
        for plane in range(len(before.pre.planes)):
            for poly in range(len(before.pre.planes[plane])):
                if after.pre.planes[plane][poly] is before.pre.planes[plane][poly]:
                    shared += 1
                else:
                    dirty += 1
        assert dirty == after.cost.polys_ntted
        assert shared == after.cost.full_polys - dirty

    def test_epoch_apply_seeds_the_gemm_tensor_cache(self, params, ring):
        """Regression: a snapshot built from a served parent must carry a
        pre-seeded (and patched) RowSel tensor cache, so the first
        post-swap query never re-stacks the whole plane in-line."""
        vdb = VersionedDatabase(params, _records(24), 64, ring=ring)
        before = vdb.current
        planes = range(before.pre.plane_count)
        for plane in planes:
            before.pre.plane_tensor(plane)  # parent has served queries
        after = vdb.apply(UpdateLog().put(0, b"\x07" * 64))
        assert after.cost.tensor_polys_copied == sum(
            before.pre.plane_tensor(p).shape[0] for p in planes
        )
        for plane in planes:
            cached = after.pre._tensors[plane]
            assert cached is not before.pre._tensors[plane]
            for poly, rns_poly in enumerate(after.pre.planes[plane]):
                assert np.array_equal(cached[poly], rns_poly.residues)
        # the parent's cache still reflects the *old* epoch's dirty cell
        dirty_poly = before.pre.layout.poly_index(0)
        for plane in planes:
            assert np.array_equal(
                before.pre.plane_tensor(plane)[dirty_poly],
                before.pre.planes[plane][dirty_poly].residues,
            )

    def test_old_snapshot_unaffected_by_new_epoch(self, params, ring):
        records = _records(24)
        vdb = VersionedDatabase(params, records, 64, ring=ring)
        before = vdb.current
        vdb.apply(UpdateLog().put(3, b"\xff" * 64))
        assert before.db.record(3) == records[3]
        fresh = PirDatabase.from_records(records, params, 64)
        assert np.array_equal(before.db.planes, fresh.planes)


class TestCostAccounting:
    def test_work_is_proportional_to_the_delta(self, params, ring):
        # 24 records x 64 B pack 8 per poly: touching 2 records in the
        # same poly costs ONE repack, and far less than the full 32 polys.
        vdb = VersionedDatabase(params, _records(24), 64, ring=ring)
        snap = vdb.apply(UpdateLog().put(0, b"\x01" * 64).put(1, b"\x02" * 64))
        assert snap.cost.polys_repacked == 1
        assert snap.cost.polys_ntted == 1
        assert snap.cost.full_polys == 32  # d0 * 2^dims = 32 polys, 1 plane
        assert snap.cost.speedup_vs_full == 32.0
        assert snap.cost.delta_fraction == 1 / 32

    def test_rewriting_identical_bytes_is_free(self, params):
        records = _records(12, size=32)
        vdb = VersionedDatabase(params, records, 32)
        snap = vdb.apply(UpdateLog().put(4, records[4]))
        assert snap.cost.polys_repacked == 0
        assert snap.cost.records_touched == 0


class TestTypedFailures:
    def test_wrong_record_size_rejected(self, params):
        vdb = VersionedDatabase(params, _records(8, size=32), 32)
        with pytest.raises(MutateError):
            vdb.apply(UpdateLog().put(0, b"short"))
        with pytest.raises(MutateError):
            vdb.apply(UpdateLog().append(b"also wrong"))

    def test_out_of_range_index_rejected(self, params):
        vdb = VersionedDatabase(params, _records(8, size=32), 32)
        with pytest.raises(MutateError):
            vdb.apply(UpdateLog().put(8, b"\x00" * 32))

    def test_appending_past_the_geometry_is_a_layout_error(self, params):
        # 32 polys x 16 records/poly = 512 record capacity at this geometry.
        records = _records(512, size=32)
        vdb = VersionedDatabase(params, records, 32)
        with pytest.raises(LayoutError):
            vdb.apply(UpdateLog().append(b"\x00" * 32))

    def test_failed_apply_leaves_current_epoch_intact(self, params):
        records = _records(8, size=32)
        vdb = VersionedDatabase(params, records, 32)
        with pytest.raises(MutateError):
            vdb.apply(UpdateLog().put(2, b"\xaa" * 32).put(99, b"\xbb" * 32))
        assert vdb.epoch == 0
        assert vdb.record(2) == records[2]
