"""Shared cuckoo module: byte-string keys, compat with the batchpir shim."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.hashing.cuckoo import (
    CuckooConfig,
    cuckoo_assign,
    key_bytes,
)


class TestKeyBytes:
    def test_int_keeps_historical_encoding(self):
        assert key_bytes(5) == (5).to_bytes(8, "little")

    def test_bytes_pass_through(self):
        assert key_bytes(b"user@example.com") == b"user@example.com"
        assert key_bytes(bytearray(b"ab")) == b"ab"

    def test_rejects_negative_and_foreign_types(self):
        with pytest.raises(ParameterError):
            key_bytes(-1)
        with pytest.raises(ParameterError):
            key_bytes("a string")  # text must be encoded explicitly

    def test_numpy_integers_accepted(self):
        import numpy as np

        assert key_bytes(np.int64(7)) == key_bytes(7)


class TestByteKeyCandidates:
    def test_deterministic_and_in_range(self):
        config = CuckooConfig(num_buckets=37, seed=4)
        for key in (b"", b"alice", b"\x00" * 32):
            cands = config.candidates(key)
            assert cands == config.candidates(key)
            assert all(0 <= c < 37 for c in cands)

    def test_int_candidates_unchanged_by_refactor(self):
        """Batch-PIR deployments must hash identically across versions."""
        config = CuckooConfig(num_buckets=64, seed=9)
        assert config.candidates(17) == config.candidates(
            (17).to_bytes(8, "little")
        )

    def test_batchpir_shim_reexports_same_objects(self):
        from repro.batchpir import hashing as shim
        from repro.hashing import cuckoo

        assert shim.CuckooConfig is cuckoo.CuckooConfig
        assert shim.cuckoo_assign is cuckoo.cuckoo_assign
        assert shim.num_buckets_for is cuckoo.num_buckets_for


class TestByteKeyAssign:
    def test_places_byte_keys_in_candidate_buckets(self):
        config = CuckooConfig(num_buckets=16, seed=3)
        keys = [f"key-{i}".encode() for i in range(9)]
        assignment = cuckoo_assign(keys, config)
        placed = set(assignment.slots.values()) | set(assignment.stash)
        assert placed == set(keys)
        for bucket, key in assignment.slots.items():
            assert bucket in config.candidates(key)

    @settings(max_examples=60, deadline=None)
    @given(
        keys=st.sets(st.binary(min_size=1, max_size=24), min_size=1, max_size=48),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_byte_key_insertion_within_stash_bound(self, keys, seed):
        keys = sorted(keys)
        config = CuckooConfig.for_batch(max(len(keys), 1), seed=seed)
        assignment = cuckoo_assign(keys, config)
        assert assignment.placed + len(assignment.stash) == len(keys)
        assert len(set(assignment.slots.values())) == assignment.placed
