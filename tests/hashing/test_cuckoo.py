"""Shared cuckoo module: byte-string keys, compat with the batchpir shim."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BatchPlanError, ParameterError
from repro.hashing.cuckoo import (
    CuckooConfig,
    cuckoo_assign,
    key_bytes,
)


class TestKeyBytes:
    def test_int_keeps_historical_encoding(self):
        assert key_bytes(5) == (5).to_bytes(8, "little")

    def test_bytes_pass_through(self):
        assert key_bytes(b"user@example.com") == b"user@example.com"
        assert key_bytes(bytearray(b"ab")) == b"ab"

    def test_rejects_negative_and_foreign_types(self):
        with pytest.raises(ParameterError):
            key_bytes(-1)
        with pytest.raises(ParameterError):
            key_bytes("a string")  # text must be encoded explicitly

    def test_numpy_integers_accepted(self):
        import numpy as np

        assert key_bytes(np.int64(7)) == key_bytes(7)


class TestByteKeyCandidates:
    def test_deterministic_and_in_range(self):
        config = CuckooConfig(num_buckets=37, seed=4)
        for key in (b"", b"alice", b"\x00" * 32):
            cands = config.candidates(key)
            assert cands == config.candidates(key)
            assert all(0 <= c < 37 for c in cands)

    def test_int_candidates_unchanged_by_refactor(self):
        """Batch-PIR deployments must hash identically across versions."""
        config = CuckooConfig(num_buckets=64, seed=9)
        assert config.candidates(17) == config.candidates(
            (17).to_bytes(8, "little")
        )

    def test_batchpir_shim_reexports_same_objects(self):
        from repro.batchpir import hashing as shim
        from repro.hashing import cuckoo

        assert shim.CuckooConfig is cuckoo.CuckooConfig
        assert shim.cuckoo_assign is cuckoo.cuckoo_assign
        assert shim.num_buckets_for is cuckoo.num_buckets_for


class TestByteKeyAssign:
    def test_places_byte_keys_in_candidate_buckets(self):
        config = CuckooConfig(num_buckets=16, seed=3)
        keys = [f"key-{i}".encode() for i in range(9)]
        assignment = cuckoo_assign(keys, config)
        placed = set(assignment.slots.values()) | set(assignment.stash)
        assert placed == set(keys)
        for bucket, key in assignment.slots.items():
            assert bucket in config.candidates(key)

    @settings(max_examples=60, deadline=None)
    @given(
        keys=st.sets(st.binary(min_size=1, max_size=24), min_size=1, max_size=48),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_byte_key_insertion_within_stash_bound(self, keys, seed):
        keys = sorted(keys)
        config = CuckooConfig.for_batch(max(len(keys), 1), seed=seed)
        assignment = cuckoo_assign(keys, config)
        assert assignment.placed + len(assignment.stash) == len(keys)
        assert len(set(assignment.slots.values())) == assignment.placed


class TestEdgeCases:
    """Degenerate inputs must fail typed, never corrupt a placement."""

    @settings(max_examples=40, deadline=None)
    @given(
        key=st.one_of(
            st.binary(min_size=0, max_size=16),
            st.integers(min_value=0, max_value=2**32),
        ),
        copies=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_duplicate_keys_rejected_typed(self, key, copies, seed):
        config = CuckooConfig(num_buckets=16, seed=seed)
        with pytest.raises(ParameterError):
            cuckoo_assign([key] * copies, config)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_int_and_equivalent_bytes_key_are_duplicates(self, seed):
        """An int key and its canonical byte encoding hash identically, so
        placing both would assign one logical key twice; the shared core
        hashes them the same and the caller must not mix encodings."""
        config = CuckooConfig(num_buckets=16, seed=seed)
        assert config.candidates(7) == config.candidates(key_bytes(7))

    def test_zero_capacity_tables_rejected(self):
        with pytest.raises(ParameterError):
            CuckooConfig(num_buckets=0)
        with pytest.raises(ParameterError):
            CuckooConfig(num_buckets=1)  # a 1-bucket table cannot cuckoo
        with pytest.raises(ParameterError):
            CuckooConfig(num_buckets=8, num_hashes=1)
        with pytest.raises(ParameterError):
            CuckooConfig(num_buckets=8, stash_size=-1)
        with pytest.raises(ParameterError):
            CuckooConfig(num_buckets=8, max_evictions=0)

    @settings(max_examples=40, deadline=None)
    @given(
        extra=st.integers(min_value=1, max_value=8),
        stash=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_overfull_batches_rejected_before_walking(self, extra, stash, seed):
        """More keys than buckets + stash can never place: typed, eager."""
        config = CuckooConfig(num_buckets=4, stash_size=stash, seed=seed)
        keys = list(range(4 + stash + extra))
        with pytest.raises(BatchPlanError):
            cuckoo_assign(keys, config)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_stash_overflow_is_typed_with_zero_stash(self, seed):
        """Saturating a tiny zero-stash table either places everything or
        raises the typed overflow — and a partial failure never leaks a
        bucket holding two keys."""
        config = CuckooConfig(
            num_buckets=4, stash_size=0, max_evictions=8, seed=seed
        )
        keys = [f"k{i}".encode() for i in range(4)]
        try:
            assignment = cuckoo_assign(keys, config)
        except BatchPlanError:
            return
        assert assignment.placed == len(keys)
        assert len(set(assignment.slots.values())) == len(keys)
        for bucket, key in assignment.slots.items():
            assert bucket in config.candidates(key)

    @settings(max_examples=30, deadline=None)
    @given(
        num_keys=st.integers(min_value=5, max_value=12),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_stash_overflow_accounting_never_overshoots(self, num_keys, seed):
        """With a bounded stash, every outcome is accounted: either all
        keys land (slots + stash) with the stash within its bound, or the
        typed overflow fires."""
        config = CuckooConfig(
            num_buckets=max(2, num_keys - 3),
            stash_size=2,
            max_evictions=16,
            seed=seed,
        )
        keys = list(range(num_keys))
        try:
            assignment = cuckoo_assign(keys, config)
        except BatchPlanError:
            return
        assert len(assignment.stash) <= config.stash_size
        assert assignment.placed + len(assignment.stash) == num_keys
