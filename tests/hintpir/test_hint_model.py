"""Hint-tier cost model: online speedup gate and refresh economics."""

import pytest

from repro.arch.config import IveConfig
from repro.arch.simulator import IveSimulator
from repro.errors import ParameterError
from repro.hintpir.model import (
    HintGeometry,
    churn_refresh_curve,
    crossover_churn,
    hintpir_vs_full,
)
from repro.params import PirParams


class TestGeometry:
    def test_maps_paper_database(self):
        params = PirParams.paper()
        geometry = HintGeometry.from_params(params)
        assert geometry.num_records == params.num_db_polys
        assert geometry.record_bytes == params.poly_payload_bytes
        assert geometry.rows * geometry.entry_bits >= geometry.record_bytes * 8

    def test_sparse_patch_beats_full_hint(self):
        geometry = HintGeometry.from_params(PirParams.paper())
        assert geometry.patch_bytes(1) < geometry.hint_bytes
        assert geometry.patch_bytes(geometry.num_records) > geometry.hint_bytes


class TestOnlineSpeedup:
    def test_roadmap_gate_10x_at_design_batch(self):
        """The PR's acceptance gate: hint-tier online service >=10x below
        one full RowSel/ColTor pass at paper scale and the design batch."""
        points = {p.batch: p for p in hintpir_vs_full()}
        assert points[64].speedup >= 10.0

    def test_batching_amortizes(self):
        points = hintpir_vs_full(batches=(1, 16, 64, 256))
        per_query = [p.per_query_s for p in points]
        assert per_query == sorted(per_query, reverse=True)
        assert points[-1].speedup > points[0].speedup

    def test_online_latency_dominated_by_raw_stream(self):
        params = PirParams.paper()
        sim = IveSimulator(IveConfig.ive(), params)
        online = sim.hintpir_online_latency(1)
        assert online.total_s >= sim.min_raw_db_read_seconds()
        assert online.expand_s == 0.0 and online.coltor_s == 0.0


class TestRefreshEconomics:
    def test_curve_monotone_in_churn(self):
        points = churn_refresh_curve()
        fractions = [p.refresh_fraction for p in points]
        assert fractions == sorted(fractions)
        assert all(p.refresh_bytes <= p.hint_bytes for p in points)

    def test_crossover_exists_at_paper_scale(self):
        points = churn_refresh_curve()
        crossover = crossover_churn(points)
        assert crossover is not None
        assert 1e-4 < crossover < 1.0

    def test_delta_yields_to_full_redownload_at_high_churn(self):
        points = churn_refresh_curve()
        modes = [p.refresh_mode for p in points]
        assert modes[0] == "delta"
        assert modes[-1] == "full"
        first_full = modes.index("full")
        assert all(m == "full" for m in modes[first_full:])  # no flip-flop

    def test_low_churn_refresh_is_cheap(self):
        [point] = churn_refresh_curve(churns=(1e-5,))
        assert point.refresh_fraction < 0.05

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            churn_refresh_curve(queries_per_epoch=0)
        with pytest.raises(ParameterError):
            churn_refresh_curve(churns=(1.5,))

    def test_no_crossover_when_churn_stays_tiny(self):
        points = churn_refresh_curve(churns=(1e-6, 1e-5))
        assert crossover_churn(points) is None
