"""Hint-tier record layout: columns, limbs, transcript arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.hintpir.layout import HintLayout
from repro.pir.simplepir import SimplePirParams


@pytest.fixture(scope="module")
def layout():
    return HintLayout(16, 24, SimplePirParams(lwe_dim=64))


class TestGeometry:
    def test_rows_cover_record_bits(self, layout):
        assert layout.rows * layout.params.p_log2 >= layout.record_bytes * 8
        assert (layout.rows - 1) * layout.params.p_log2 < layout.record_bytes * 8

    def test_one_record_per_column(self, layout):
        assert layout.cols == layout.num_records

    def test_ragged_limb_count(self):
        # 5 bytes = 40 bits at 3-bit limbs -> 14 rows (ceil), not 13.
        layout = HintLayout(4, 5, SimplePirParams(lwe_dim=8, p_log2=3))
        assert layout.rows == 14

    def test_rejects_degenerate(self):
        with pytest.raises(LayoutError):
            HintLayout(0, 8, SimplePirParams())
        with pytest.raises(LayoutError):
            HintLayout(8, 0, SimplePirParams())


class TestTranscriptArithmetic:
    def test_wire_sizes(self, layout):
        word = (layout.params.q_log2 + 7) // 8
        assert layout.word_bytes == word
        assert layout.hint_bytes == layout.rows * layout.params.lwe_dim * word
        assert layout.query_bytes == layout.cols * word
        assert layout.answer_bytes == layout.rows * word
        assert layout.db_bytes == 16 * 24

    def test_patch_scales_with_dirty_columns(self, layout):
        empty = layout.patch_bytes(0)
        one = layout.patch_bytes(1)
        many = layout.patch_bytes(7)
        assert empty < one < many
        assert many - one == 6 * (one - empty)

    def test_sparse_patch_beats_full_hint(self):
        layout = HintLayout(4096, 32, SimplePirParams(lwe_dim=512))
        assert layout.patch_bytes(4) < layout.hint_bytes


class TestPacking:
    def test_roundtrip(self, layout):
        rng = np.random.default_rng(0)
        for _ in range(8):
            record = rng.bytes(layout.record_bytes)
            assert layout.unpack_column(layout.pack_record(record)) == record

    def test_short_record_zero_padded(self, layout):
        record = b"abc"
        padded = record.ljust(layout.record_bytes, b"\x00")
        assert layout.unpack_column(layout.pack_record(record)) == padded

    def test_entries_fit_plaintext_modulus(self, layout):
        column = layout.pack_record(b"\xff" * layout.record_bytes)
        assert column.max() < layout.params.p
        assert column.min() >= 0

    def test_matrix_assembly_matches_per_record(self, layout):
        rng = np.random.default_rng(1)
        records = [rng.bytes(layout.record_bytes) for _ in range(layout.cols)]
        matrix = layout.pack_records(records)
        assert matrix.shape == (layout.rows, layout.cols)
        for i, record in enumerate(records):
            assert np.array_equal(matrix[:, i], layout.pack_record(record))

    def test_rejects_oversized_record(self, layout):
        with pytest.raises(LayoutError):
            layout.pack_record(b"x" * (layout.record_bytes + 1))

    def test_rejects_wrong_record_count(self, layout):
        with pytest.raises(LayoutError):
            layout.pack_records([b"x"] * (layout.cols - 1))

    def test_rejects_wrong_column_shape(self, layout):
        with pytest.raises(LayoutError):
            layout.unpack_column(np.zeros(layout.rows + 1, dtype=np.int64))

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.binary(min_size=0, max_size=24),
        p_log2=st.integers(min_value=1, max_value=12),
    )
    def test_roundtrip_property(self, data, p_log2):
        params = SimplePirParams(lwe_dim=8, q_log2=max(p_log2 + 1, 20), p_log2=p_log2)
        layout = HintLayout(1, 24, params)
        padded = data.ljust(24, b"\x00")
        assert layout.unpack_column(layout.pack_record(data)) == padded
