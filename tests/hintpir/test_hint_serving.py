"""Hint tier behind the serving runtime: keyed routing, windows, epochs."""

import asyncio

import pytest

from repro.errors import HintPirError, HintStale, RoutingError
from repro.hintpir.serving import (
    HintCryptoBackend,
    HintServeRegistry,
    HintShardMap,
)
from repro.mutate.log import UpdateLog
from repro.pir.simplepir import SimplePirParams
from repro.serve import ServeRuntime
from repro.systems.batching import BatchPolicy

PARAMS = SimplePirParams(lwe_dim=64)
POLICY = BatchPolicy(waiting_window_s=0.02, max_batch=16)


def make_registry(num_records=32, num_shards=2, **kwargs):
    return HintServeRegistry.random(
        num_records=num_records,
        record_bytes=16,
        num_shards=num_shards,
        params=PARAMS,
        seed=7,
        **kwargs,
    )


class TestHintShardMap:
    def test_routing_is_deterministic_and_seeded(self):
        a = HintShardMap(100, 4, seed=1)
        b = HintShardMap(100, 4, seed=1)
        c = HintShardMap(100, 4, seed=2)
        assert [a.route(i) for i in range(100)] == [b.route(i) for i in range(100)]
        assert [a.route(i) for i in range(100)] != [c.route(i) for i in range(100)]

    def test_local_indices_are_dense_columns(self):
        shard_map = HintShardMap(64, 4, seed=0)
        seen = {s: set() for s in range(4)}
        for i in range(64):
            shard, local = shard_map.route(i)
            assert shard_map.global_index(shard, local) == i
            seen[shard].add(local)
        for shard, locals_ in seen.items():
            assert locals_ == set(range(shard_map.members(shard).size))

    def test_rejects_degenerate_splits(self):
        with pytest.raises(HintPirError):
            HintShardMap(10, 0)
        with pytest.raises(HintPirError):
            HintShardMap(3, 8)

    def test_routing_bounds(self):
        shard_map = HintShardMap(16, 2)
        with pytest.raises(RoutingError):
            shard_map.route(16)
        with pytest.raises(RoutingError):
            shard_map.check_shard(2)
        with pytest.raises(RoutingError):
            shard_map.global_index(0, 10_000)


class TestHintServeRegistry:
    def test_requests_carry_epoch_tagged_queries(self):
        registry = make_registry()
        request = registry.make_request(5)
        shard, local = registry.map.route(5)
        assert request.shard_id == shard
        assert request.local_index == local
        assert request.epoch == 0
        assert request.query.hint_epoch == 0

    def test_decode_reraises_typed_stale(self):
        registry = make_registry()
        request = registry.make_request(0)
        with pytest.raises(HintStale):
            registry.decode(request, HintStale(0, 9, 5))

    def test_publish_advances_every_shard_together(self):
        registry = make_registry(num_records=24, num_shards=3)
        log = UpdateLog()
        log.put(1, b"one")
        log.put(17, b"seventeen")
        registry.publish(log)
        assert registry.epoch == 1
        assert all(s.epoch == 1 for s in registry._servers)
        assert registry.expected(1) == b"one".ljust(16, b"\x00")
        assert registry.expected(1, epoch=0) != registry.expected(1, epoch=1)

    def test_publish_refuses_appends(self):
        registry = make_registry()
        log = UpdateLog()
        log.append(b"extra")
        with pytest.raises(HintPirError):
            registry.publish(log)

    def test_refresh_moves_offline_bytes(self):
        registry = make_registry()
        moved = registry.refresh()
        assert moved == sum(
            s.transcript().offline_bytes for s in registry._servers
        )

    def test_transcript_aggregates_shards(self):
        registry = make_registry(num_records=32, num_shards=2)
        t = registry.transcript()
        parts = [s.transcript() for s in registry._servers]
        assert t.offline_bytes == sum(p.offline_bytes for p in parts)
        assert t.online_bytes == max(p.online_bytes for p in parts)


def serve_indices(registry, indices, publish_logs=None):
    """Serve ``indices`` through the runtime; optionally publish mid-stream.

    ``publish_logs`` maps a submission position to an UpdateLog applied
    right before that request is submitted.
    """

    async def main():
        backend = HintCryptoBackend(registry)
        runtime = ServeRuntime(registry, backend, POLICY)
        async with runtime:
            pending = []
            for pos, index in enumerate(indices):
                if publish_logs and pos in publish_logs:
                    await asyncio.sleep(POLICY.waiting_window_s * 2)
                    registry.publish(publish_logs[pos])
                pending.append(asyncio.create_task(runtime.serve_index(index)))
            results = await asyncio.gather(*pending)
        backend.close()
        return results

    return asyncio.run(main())


class TestHintServingE2E:
    def test_all_records_served_correctly(self):
        registry = make_registry(num_records=32, num_shards=4)
        results = serve_indices(registry, range(32))
        for index, result in zip(range(32), results):
            decoded = registry.decode(result.request, result.response)
            assert decoded == registry.expected(index)

    def test_epoch_publish_mid_traffic_never_wrong_byte(self):
        """Acceptance: publishes land mid-traffic; every response either
        decodes to the ground truth *of its answering epoch* or raises a
        typed HintStale — a wrong byte fails the test."""
        registry = make_registry(num_records=24, num_shards=2, retain_epochs=1)
        indices = [i % 24 for i in range(48)]
        logs = {}
        for pos, base in ((12, 0), (24, 8), (36, 16)):
            log = UpdateLog()
            for offset in range(4):
                log.put(base + offset, bytes([pos + offset]) * 16)
            logs[pos] = log
        results = serve_indices(registry, indices, publish_logs=logs)
        assert registry.epoch == 3
        stale = 0
        correct = 0
        for index, result in zip(indices, results):
            try:
                decoded = registry.decode(result.request, result.response)
            except HintStale:
                stale += 1
                continue
            epoch = result.response.epoch
            assert decoded == registry.expected(index, epoch=epoch), (
                f"wrong bytes for record {index} at epoch {epoch}"
            )
            correct += 1
        assert correct + stale == len(indices)
        assert correct > 0

    def test_stale_shard_client_gets_typed_rejection_then_recovers(self):
        registry = make_registry(num_records=16, num_shards=1, retain_epochs=1)
        for i in range(3):  # push epoch 0 out of the retain window
            log = UpdateLog()
            log.put(0, bytes([i]) * 16)
            registry.publish(log)
        [result] = serve_indices(registry, [3])
        # The runtime-built request reused the stale epoch-0 client hint.
        with pytest.raises(HintStale):
            registry.decode(result.request, result.response)
        registry.refresh()
        [result] = serve_indices(registry, [3])
        decoded = registry.decode(result.request, result.response)
        assert decoded == registry.expected(3)
