"""Hint-PIR protocol: offline/online phases, epoch deltas, typed staleness.

The load-bearing invariant, exercised from several angles below: a stale
hint NEVER decodes to a wrong byte — it is delta-patched or refused with
a typed :class:`~repro.errors.HintStale`.
"""

import numpy as np
import pytest

from repro.errors import HintPirError, HintStale, LayoutError
from repro.hintpir.protocol import (
    HintAnswer,
    HintPirClient,
    HintPirProtocol,
    HintPirServer,
)
from repro.mutate.log import UpdateLog
from repro.pir.simplepir import SimplePirParams

PARAMS = SimplePirParams(lwe_dim=64)
RECORD_BYTES = 24


def make_records(n, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.bytes(RECORD_BYTES) for _ in range(n)]


def put_log(*entries):
    log = UpdateLog()
    for index, record in entries:
        log.put(index, record)
    return log


class TestOfflineOnline:
    def test_fetch_every_record(self):
        records = make_records(12)
        proto = HintPirProtocol(records, RECORD_BYTES, PARAMS)
        for i, record in enumerate(records):
            assert proto.fetch(i) == record

    def test_transcript_separates_phases(self):
        proto = HintPirProtocol(make_records(64), RECORD_BYTES, PARAMS)
        t = proto.server.transcript()
        assert t.offline_bytes == t.hint_bytes + t.seed_bytes
        assert t.online_bytes == t.query_bytes + t.answer_bytes
        assert t.seed_bytes == 8  # A ships as a seed, not a matrix

    def test_online_sublinear_in_database(self):
        """The tier's point: per-query online traffic << database size."""
        proto = HintPirProtocol(make_records(256), RECORD_BYTES, PARAMS)
        t = proto.server.transcript()
        assert t.online_bytes < t.db_bytes / 2

    def test_batched_window_matches_single_answers(self):
        server = HintPirServer(make_records(10), RECORD_BYTES, PARAMS)
        client = HintPirClient(server)
        queries = [client.build_query(i) for i in (0, 3, 9, 3)]
        window = server.answer_window(queries)
        for query, answer in zip(queries, window):
            alone = server.answer(query)
            assert np.array_equal(answer.vector, alone.vector)
            assert client.decode(query, answer) == client.decode(query, alone)

    def test_bad_record_index_rejected(self):
        proto = HintPirProtocol(make_records(4), RECORD_BYTES, PARAMS)
        with pytest.raises(LayoutError):
            proto.client.build_query(4)


class TestEpochPublish:
    def test_delta_patch_decodes_new_values(self):
        records = make_records(8)
        proto = HintPirProtocol(records, RECORD_BYTES, PARAMS)
        new = b"\x5a" * RECORD_BYTES
        report = proto.publish(put_log((3, new)))
        assert report.epoch == 1
        assert report.num_dirty == 1
        # Client still holds the epoch-0 hint; the answer bundles the delta.
        assert proto.client.hint_epoch == 0
        assert proto.fetch(3) == new
        assert proto.client.hint_epoch == 1
        assert proto.client.downloads == 1  # patched, not re-downloaded
        # Untouched records survive the patch.
        assert proto.fetch(0) == records[0]

    def test_tombstone_decodes_to_zeros(self):
        proto = HintPirProtocol(make_records(8), RECORD_BYTES, PARAMS)
        log = UpdateLog()
        log.delete(5)
        proto.publish(log)
        assert proto.fetch(5) == b"\x00" * RECORD_BYTES

    def test_incremental_hint_matches_rebuild(self):
        """Server-side Δhint maintenance must equal hint-from-scratch."""
        server = HintPirServer(make_records(16), RECORD_BYTES, PARAMS)
        server.publish(put_log((2, b"a" * RECORD_BYTES), (11, b"b" * RECORD_BYTES)))
        log = UpdateLog()
        log.delete(2)
        server.publish(log)
        assert np.array_equal(server.hint(), server.core.hint())

    def test_report_patch_bytes_match_layout(self):
        server = HintPirServer(make_records(8), RECORD_BYTES, PARAMS)
        report = server.publish(put_log((0, b"x"), (4, b"y")))
        assert report.patch_bytes == server.layout.patch_bytes(2)

    def test_append_refused(self):
        server = HintPirServer(make_records(4), RECORD_BYTES, PARAMS)
        log = UpdateLog()
        log.append(b"new record")
        with pytest.raises(HintPirError):
            server.publish(log)

    def test_chained_deltas_across_epochs(self):
        records = make_records(8)
        proto = HintPirProtocol(records, RECORD_BYTES, PARAMS)
        for epoch in range(3):
            proto.publish(put_log((epoch, bytes([epoch + 1]) * RECORD_BYTES)))
        # One fetch folds the whole 0 -> 3 chain.
        assert proto.fetch(2) == b"\x03" * RECORD_BYTES
        assert proto.client.hint_epoch == 3
        assert proto.client.patched_epochs == 3


class TestStaleness:
    def test_past_retain_window_is_typed_stale(self):
        server = HintPirServer(make_records(8), RECORD_BYTES, PARAMS, retain_epochs=2)
        client = HintPirClient(server)
        for i in range(3):  # epoch 3 > retain window of 2
            server.publish(put_log((i, b"z" * RECORD_BYTES)))
        outcome = server.answer(client.build_query(0))
        assert isinstance(outcome, HintStale)
        assert outcome.hint_epoch == 0
        assert outcome.oldest_patchable == 1

    def test_stale_is_a_value_not_a_window_fault(self):
        server = HintPirServer(make_records(8), RECORD_BYTES, PARAMS, retain_epochs=1)
        fresh = HintPirClient(server, seed=2)
        stale = HintPirClient(server, seed=3)
        server.publish(put_log((1, b"q" * RECORD_BYTES)))
        server.publish(put_log((2, b"r" * RECORD_BYTES)))
        fresh.refresh(server)
        fresh_query = fresh.build_query(2)
        outcomes = server.answer_window([stale.build_query(1), fresh_query])
        assert isinstance(outcomes[0], HintStale)
        assert isinstance(outcomes[1], HintAnswer)
        assert fresh.decode(fresh_query, outcomes[1]) == b"r" * RECORD_BYTES

    def test_fetch_recovers_by_redownload(self):
        proto = HintPirProtocol(
            make_records(8), RECORD_BYTES, PARAMS, retain_epochs=1
        )
        for i in range(4):
            proto.publish(put_log((0, bytes([i]) * RECORD_BYTES)))
        assert proto.fetch(0) == b"\x03" * RECORD_BYTES
        assert proto.client.downloads == 2  # initial + recovery

    def test_future_hint_is_a_client_bug(self):
        server = HintPirServer(make_records(4), RECORD_BYTES, PARAMS)
        with pytest.raises(HintPirError):
            server.delta_since(1)

    def test_retain_zero_strands_every_stale_client(self):
        server = HintPirServer(make_records(4), RECORD_BYTES, PARAMS, retain_epochs=0)
        client = HintPirClient(server)
        server.publish(put_log((0, b"w" * RECORD_BYTES)))
        assert isinstance(server.answer(client.build_query(0)), HintStale)


class TestClientHintHistory:
    def test_in_flight_answer_decodes_after_later_patch(self):
        """An answer from epoch e stays decodable after we patched past e."""
        records = make_records(8)
        server = HintPirServer(records, RECORD_BYTES, PARAMS)
        client = HintPirClient(server)
        early = client.build_query(2)
        in_flight = server.answer(early)  # epoch 0
        server.publish(put_log((5, b"n" * RECORD_BYTES)))
        later = client.build_query(5)
        assert client.decode(later, server.answer(later)) == b"n" * RECORD_BYTES
        assert client.hint_epoch == 1
        # The epoch-0 answer still decodes against the retained epoch-0 hint.
        assert client.decode(early, in_flight) == records[2]

    def test_partial_overlap_delta_applies_suffix(self):
        """Regression: a 0->2 delta must patch a client already at epoch 1.

        Answers race in a concurrent session — a query built at epoch 0
        can be answered at epoch 2 after another answer's 0->1 delta has
        already moved the client.  Only the suffix (epoch 2) applies.
        """
        records = make_records(8)
        server = HintPirServer(records, RECORD_BYTES, PARAMS)
        client = HintPirClient(server)
        query_a = client.build_query(0)  # epoch 0
        query_b = client.build_query(1)  # epoch 0
        server.publish(put_log((0, b"1" * RECORD_BYTES)))
        answer_a = server.answer(query_a)  # epoch 1, delta 0->1
        server.publish(put_log((1, b"2" * RECORD_BYTES)))
        answer_b = server.answer(query_b)  # epoch 2, delta 0->2
        assert client.decode(query_a, answer_a) == b"1" * RECORD_BYTES
        assert client.hint_epoch == 1
        assert client.decode(query_b, answer_b) == b"2" * RECORD_BYTES
        assert client.hint_epoch == 2

    def test_delta_ahead_of_hint_rejected(self):
        server = HintPirServer(make_records(4), RECORD_BYTES, PARAMS)
        client = HintPirClient(server)
        server.publish(put_log((0, b"u" * RECORD_BYTES)))
        server.publish(put_log((1, b"v" * RECORD_BYTES)))
        chain = server.delta_since(1)  # starts at 1; client is at 0
        with pytest.raises(HintPirError):
            client.apply_delta(chain)

    def test_history_bound_evicts_oldest(self):
        server = HintPirServer(make_records(4), RECORD_BYTES, PARAMS, retain_epochs=8)
        client = HintPirClient(server, history=2)
        for i in range(3):
            server.publish(put_log((0, bytes([i]) * RECORD_BYTES)))
            query = client.build_query(0)
            client.decode(query, server.answer(query))
        with pytest.raises(HintPirError):
            client.hint_at(1)  # evicted; only epochs 2 and 3 retained
        assert client.hint_at(3) is not None

    def test_history_must_hold_current(self):
        server = HintPirServer(make_records(4), RECORD_BYTES, PARAMS)
        with pytest.raises(HintPirError):
            HintPirClient(server, history=0)
