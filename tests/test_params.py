"""PirParams validation, derived sizes, and preset consistency."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.he import modmath
from repro.params import PirParams


def _make(**overrides):
    base = dict(
        n=256,
        moduli=modmath.special_primes(order=512, count=2),
        plain_modulus=65537,
        gadget_base_log2=14,
        gadget_len=4,
        d0=8,
        num_dims=2,
    )
    base.update(overrides)
    return PirParams(**base)


class TestValidation:
    def test_valid_baseline(self):
        _make()  # must not raise

    def test_n_must_be_power_of_two(self):
        with pytest.raises(ParameterError):
            _make(n=100)

    def test_d0_must_be_power_of_two(self):
        with pytest.raises(ParameterError):
            _make(d0=6)

    def test_d0_cannot_exceed_n(self):
        with pytest.raises(ParameterError):
            _make(d0=512)

    def test_negative_dims_rejected(self):
        with pytest.raises(ParameterError):
            _make(num_dims=-1)

    def test_tiny_plain_modulus_rejected(self):
        with pytest.raises(ParameterError):
            _make(plain_modulus=1)

    def test_non_ntt_friendly_modulus_rejected(self):
        with pytest.raises(ParameterError):
            _make(moduli=(97, 193))

    def test_gadget_must_cover_q(self):
        with pytest.raises(ParameterError):
            _make(gadget_base_log2=4, gadget_len=2)

    def test_q_must_exceed_p(self):
        with pytest.raises(ParameterError):
            _make(
                moduli=modmath.special_primes(order=512, count=1),
                plain_modulus=1 << 40,
                gadget_base_log2=14,
                gadget_len=2,
            )


class TestDerivedQuantities:
    def test_q_is_product(self):
        params = _make()
        expected = 1
        for q in params.moduli:
            expected *= q
        assert params.q == expected
        assert params.log2_q == pytest.approx(math.log2(expected))

    def test_delta(self):
        params = _make()
        assert params.delta == params.q // params.plain_modulus

    def test_num_db_polys(self):
        assert _make(d0=8, num_dims=2).num_db_polys == 32
        assert _make(d0=16, num_dims=0).num_db_polys == 16

    def test_payload_bits_odd_p(self):
        assert _make(plain_modulus=65537).payload_bits_per_coeff == 16

    def test_payload_bits_pow2_p(self):
        """Power-of-two P loses log2(D0) bits to the expansion factor."""
        params = _make(plain_modulus=1 << 16, d0=8)
        assert params.payload_bits_per_coeff == 16 - 3

    def test_payload_exhausted_rejected(self):
        params = _make(plain_modulus=1 << 4, d0=256, n=256, num_dims=0)
        with pytest.raises(ParameterError):
            _ = params.payload_bits_per_coeff

    def test_num_evks(self):
        assert _make(d0=8).num_evks == 3
        assert _make(d0=1).num_evks == 0

    def test_with_db(self):
        params = _make()
        bigger = params.with_db(num_dims=5)
        assert bigger.num_dims == 5
        assert bigger.d0 == params.d0
        assert bigger.moduli == params.moduli


class TestPresets:
    def test_paper_matches_table1(self):
        params = PirParams.paper()
        assert params.n == 1 << 12
        assert params.rns_count == 4
        assert all(q < 2**28 for q in params.moduli)
        assert params.q < 2**112
        assert params.plain_modulus == 1 << 32
        assert params.gadget_len == 5
        assert 2**16 <= params.num_db_polys <= 2**24

    def test_paper_for_db_bytes(self):
        params = PirParams.paper_for_db_bytes(2 << 30)
        assert params.num_db_polys * params.plain_poly_bytes == 2 << 30

    def test_functional_uses_odd_prime(self):
        params = PirParams.functional()
        assert params.plain_modulus % 2 == 1
        assert modmath.is_prime(params.plain_modulus)

    def test_small_is_fast_geometry(self):
        params = PirParams.small()
        assert params.n <= 512
        assert params.num_db_polys <= 64

    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from([64, 128, 256, 512]), st.integers(min_value=0, max_value=4))
    def test_small_presets_always_valid(self, n, dims):
        params = PirParams.small(n=n, d0=min(8, n), num_dims=dims)
        assert params.num_db_polys == min(8, n) * (1 << dims)
