"""CPU/GPU/ARK baselines and the headline cross-system ratios."""

import math

import pytest

from repro.arch.config import IveConfig
from repro.arch.simulator import IveSimulator
from repro.baselines import (
    H100,
    PAPER_TABLE4,
    RTX4090,
    CpuModel,
    GpuPirModel,
    best_gpu_batched_qps,
    figure14a,
    table4,
)
from repro.params import PirParams


def params_for(gb: int) -> PirParams:
    dims = {2: 9, 4: 10, 8: 11, 16: 12}[gb]
    return PirParams.paper(d0=256, num_dims=dims)


class TestRoofline:
    def test_ridge_point(self):
        assert RTX4090.ridge_intensity == pytest.approx(41.3e12 / 939e9)

    def test_attainable_caps_at_peak(self):
        assert RTX4090.attainable_ops(1e9) == RTX4090.peak_mult_ops
        low = RTX4090.attainable_ops(1.0)
        assert low == pytest.approx(RTX4090.mem_bandwidth)

    def test_time_is_max_of_bounds(self):
        t = RTX4090.time_seconds(41.3e12, 0.0)
        assert t == pytest.approx(1.0)
        t = RTX4090.time_seconds(0.0, 939e9)
        assert t == pytest.approx(1.0)


class TestCpu:
    def test_2gb_calibration_point(self):
        """CPU QPS implied by the paper's 687.6x gmean claim: ~6 QPS at 2 GB."""
        cpu = CpuModel(params_for(2))
        assert 5.0 < cpu.qps() < 7.5

    def test_energy_near_paper(self):
        """Paper: 72 / 107 / 176 J per query at 2 / 4 / 8 GB."""
        assert CpuModel(params_for(2)).energy_per_query() == pytest.approx(72, rel=0.25)
        assert CpuModel(params_for(4)).energy_per_query() == pytest.approx(107, rel=0.5)
        assert CpuModel(params_for(8)).energy_per_query() == pytest.approx(176, rel=0.7)

    def test_gmean_speedup_vs_ive(self):
        """Fig. 12: IVE is 687.6x faster than the 32-core CPU (gmean 2-8 GB)."""
        ratios = []
        for gb in (2, 4, 8):
            p = params_for(gb)
            ive = IveSimulator(IveConfig.ive(), p).latency(64).qps
            ratios.append(ive / CpuModel(p).qps())
        gmean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        assert 500 < gmean < 900


class TestGpu:
    def test_4090_cannot_hold_8gb_preprocessed(self):
        """Fig. 12 shows no 4090 bars at 8 GB: 28 GB preprocessed > 24 GB."""
        assert GpuPirModel(RTX4090, params_for(8)).max_batch() == 0
        assert GpuPirModel(H100, params_for(8)).max_batch() > 0

    def test_batching_improves_gpu_qps(self):
        """Batching amortizes RowSel's DB scan (~half the unbatched time),
        so the GPU gains roughly 2x — the modest GPU(S) -> GPU(B) delta of
        Fig. 12, versus IVE's much larger benefit."""
        model = GpuPirModel(H100, params_for(2))
        assert model.qps(64) > 1.8 * model.qps(1)

    def test_rowsel_amortizes_but_others_do_not(self):
        """Fig. 6 right: RowSel per-query time shrinks; ExpandQuery/ColTor flat."""
        model = GpuPirModel(RTX4090, params_for(2))
        t1 = model.step_times(1)
        t16 = model.step_times(16)
        assert t16.rowsel_s / 16 < 0.25 * t1.rowsel_s
        assert t16.expand_s / 16 == pytest.approx(t1.expand_s, rel=0.05)
        assert t16.coltor_s / 16 == pytest.approx(t1.coltor_s, rel=0.05)

    def test_gmean_ive_over_best_gpu(self):
        """Fig. 12: IVE up to 18.7x over the best batched GPU (gmean)."""
        ratios = []
        for gb in (2, 4, 8):
            p = params_for(gb)
            _, gpu_qps = best_gpu_batched_qps(p)
            ive = IveSimulator(IveConfig.ive(), p).latency(64).qps
            ratios.append(ive / gpu_qps)
        gmean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        assert 9 < gmean < 30

    def test_gpu_energy_between_cpu_and_ive(self):
        from repro.arch.energy import energy_per_query

        p = params_for(2)
        cpu_j = CpuModel(p).energy_per_query()
        gpu_j = GpuPirModel(H100, p).energy_per_query()
        ive_j = energy_per_query(IveSimulator(IveConfig.ive(), p), 64)
        assert ive_j < gpu_j < cpu_j


class TestArkComparison:
    def test_figure14a_ratios(self):
        """Paper: ARK-like is 4.2x slower, 2.4x more energy, ~9.7x EDAP."""
        result = figure14a(params_for(16))
        ive, ark = result["IVE"], result["ARK-like"]
        assert 2.5 < ark.delay_s / ive.delay_s < 7.0
        assert 1.3 < ark.energy_per_query_j / ive.energy_per_query_j < 5.0
        assert 0.7 < ark.area_mm2 / ive.area_mm2 < 1.4
        assert 5.0 < ark.edap / ive.edap < 20.0


class TestTable4:
    def test_rows_present(self):
        rows = table4()
        assert {(r.scheme, r.db_bytes >> 30) for r in rows} == {
            ("SimplePIR", 2),
            ("SimplePIR", 4),
            ("KsPIR", 2),
            ("KsPIR", 4),
        }

    def test_cpu_calibration(self):
        rows = {(r.scheme, r.db_bytes >> 30): r for r in table4()}
        paper_cpu = {k: v[0] for k, v in PAPER_TABLE4.items()}
        for key, row in rows.items():
            assert row.cpu_qps == pytest.approx(paper_cpu[key], rel=0.5)

    def test_speedups_in_paper_band(self):
        """Paper: 1,904-2,063x (SimplePIR) and 3,246-3,347x (KsPIR)."""
        for row in table4():
            if row.scheme == "SimplePIR":
                assert 900 < row.speedup < 4500
            else:
                assert 1500 < row.speedup < 7000

    def test_halving_db_doubles_qps(self):
        rows = {(r.scheme, r.db_bytes >> 30): r for r in table4()}
        for scheme in ("SimplePIR", "KsPIR"):
            assert rows[(scheme, 2)].ive_qps == pytest.approx(
                2 * rows[(scheme, 4)].ive_qps, rel=0.1
            )
