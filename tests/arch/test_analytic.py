"""Cross-validation: closed-form model vs event-driven cycle simulator."""

import pytest

from repro.arch.analytic import AnalyticModel
from repro.arch.config import IveConfig
from repro.arch.simulator import IveSimulator
from repro.params import PirParams
from repro.sched.tree import Traversal


def params_for(gb: int) -> PirParams:
    dims = {2: 9, 4: 10, 8: 11, 16: 12}[gb]
    return PirParams.paper(d0=256, num_dims=dims)


class TestCrossValidation:
    """The two models describe the same machine: they must agree."""

    @pytest.mark.parametrize("gb", [2, 8, 16])
    def test_coltor_agreement(self, gb):
        params = params_for(gb)
        config = IveConfig.ive()
        sim = IveSimulator(config, params)
        model = AnalyticModel(config, params)
        _, timing = sim.coltor_timing()
        simulated = timing.cycles
        analytic = model.coltor_step().bound_cycles
        # The simulator adds dependency fill; the analytic bound is the
        # steady-state floor.  They must agree within 35%.
        assert analytic <= simulated * 1.05
        assert simulated < analytic * 1.35

    @pytest.mark.parametrize("gb", [2, 16])
    def test_expand_agreement(self, gb):
        params = params_for(gb)
        config = IveConfig.ive()
        sim = IveSimulator(config, params)
        model = AnalyticModel(config, params)
        _, timing = sim.expand_timing()
        assert model.expand_step().bound_cycles <= timing.cycles * 1.05
        assert timing.cycles < model.expand_step().bound_cycles * 2.0

    @pytest.mark.parametrize("gb", [2, 8, 16])
    def test_rowsel_exact_match(self, gb):
        """RowSel is analytic in both; must match exactly."""
        params = params_for(gb)
        config = IveConfig.ive()
        sim = IveSimulator(config, params)
        model = AnalyticModel(config, params)
        assert model.rowsel_seconds(64) == pytest.approx(sim.rowsel_seconds(64))

    @pytest.mark.parametrize("batch", [1, 32, 64, 128])
    def test_end_to_end_agreement(self, batch):
        params = params_for(16)
        config = IveConfig.ive()
        sim_lat = IveSimulator(config, params).latency(batch)
        sim_total = sim_lat.expand_s + sim_lat.rowsel_s + sim_lat.coltor_s
        analytic_total = AnalyticModel(config, params).total_seconds(batch)
        assert analytic_total == pytest.approx(sim_total, rel=0.35)

    def test_agreement_across_traversals(self):
        params = params_for(8)
        config = IveConfig.ive()
        for traversal in (Traversal.BFS, Traversal.HS_DFS):
            sim = IveSimulator(config, params, traversal=traversal)
            model = AnalyticModel(config, params, traversal=traversal)
            _, timing = sim.coltor_timing()
            assert timing.cycles == pytest.approx(
                model.coltor_step().bound_cycles, rel=0.4
            )

    def test_ark_like_agreement(self):
        params = params_for(16)
        config = IveConfig.ark_like()
        sim = IveSimulator(config, params)
        model = AnalyticModel(config, params)
        _, timing = sim.coltor_timing()
        assert timing.cycles == pytest.approx(
            model.coltor_step().bound_cycles, rel=0.5
        )


class TestAnalyticShape:
    def test_memory_bound_steps_follow_traffic(self):
        """With BFS scheduling the tree steps are memory-bound, so the
        analytic bound equals the DRAM time."""
        params = params_for(16)
        model = AnalyticModel(IveConfig.ive(), params, traversal=Traversal.BFS)
        step = model.coltor_step()
        assert step.bound_cycles == pytest.approx(step.memory_cycles)

    def test_hs_balances_memory_against_compute(self):
        """BFS is heavily memory-bound; HS+RO brings DRAM time down to the
        same order as the unit occupancy (the Section VI-B 'compute-bound
        characteristics' claim)."""
        params = params_for(16)
        compute = max(
            AnalyticModel(IveConfig.ive(), params).coltor_step().unit_cycles.values()
        )
        bfs_mem = (
            AnalyticModel(IveConfig.ive(), params, traversal=Traversal.BFS)
            .coltor_step()
            .memory_cycles
        )
        hs_mem = AnalyticModel(IveConfig.ive(), params).coltor_step().memory_cycles
        assert bfs_mem > 2.0 * compute
        assert hs_mem < 1.5 * compute

    def test_qps_matches_components(self):
        params = params_for(2)
        model = AnalyticModel(IveConfig.ive(), params)
        assert model.qps(64) == pytest.approx(64 / model.total_seconds(64))
