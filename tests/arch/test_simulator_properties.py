"""Property-based invariants of the performance models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import IveConfig
from repro.arch.simulator import IveSimulator
from repro.params import PirParams
from repro.sched.tree import Traversal

CONFIG = IveConfig.ive()


def _sim(dims: int, traversal=Traversal.HS_DFS) -> IveSimulator:
    return IveSimulator(CONFIG, PirParams.paper(d0=256, num_dims=dims), traversal=traversal)


class TestMonotonicity:
    @settings(max_examples=12, deadline=None)
    @given(
        batch=st.integers(min_value=1, max_value=160),
        dims=st.sampled_from([9, 11, 12]),
    )
    def test_latency_increases_with_batch(self, batch, dims):
        sim = _sim(dims)
        assert sim.latency(batch + 32).total_s > sim.latency(batch).total_s

    @settings(max_examples=12, deadline=None)
    @given(batch=st.integers(min_value=1, max_value=128))
    def test_latency_increases_with_db_size(self, batch):
        small = _sim(9).latency(batch).total_s
        large = _sim(11).latency(batch).total_s
        assert large > small

    @settings(max_examples=10, deadline=None)
    @given(batch=st.integers(min_value=1, max_value=128))
    def test_latency_bounded_below_by_db_read(self, batch):
        sim = _sim(11)
        assert sim.latency(batch).rowsel_s >= 0.99 * min(
            sim.min_db_read_seconds(), sim.rowsel_seconds(batch)
        )

    @settings(max_examples=8, deadline=None)
    @given(batch=st.sampled_from([16, 32, 64, 128]))
    def test_hs_never_slower_than_bfs(self, batch):
        hs = _sim(11).latency(batch).total_s
        bfs = _sim(11, Traversal.BFS).latency(batch).total_s
        assert hs <= bfs * 1.001


class TestConservation:
    def test_qps_times_latency_equals_batch(self):
        sim = _sim(10)
        for batch in (1, 17, 64, 100):
            lat = sim.latency(batch)
            assert lat.qps * lat.total_s == pytest.approx(batch)

    def test_breakdown_sums_to_total(self):
        lat = _sim(10).latency(64)
        assert sum(lat.breakdown().values()) == pytest.approx(lat.total_s)

    def test_unit_busy_scales_with_batch(self):
        sim = _sim(9)
        busy32 = sim.unit_busy_seconds(32)
        busy64 = sim.unit_busy_seconds(64)
        for unit, seconds in busy32.items():
            assert busy64[unit] == pytest.approx(2 * seconds, rel=0.01)


class TestConfigSensitivity:
    def test_more_cores_never_hurt(self):
        from dataclasses import replace

        params = PirParams.paper(d0=256, num_dims=11)
        lat32 = IveSimulator(IveConfig.ive(), params).latency(64).total_s
        lat64 = IveSimulator(
            replace(IveConfig.ive(), num_cores=64), params
        ).latency(64).total_s
        assert lat64 <= lat32 * 1.001

    def test_more_bandwidth_never_hurts(self):
        from dataclasses import replace

        params = PirParams.paper(d0=256, num_dims=12)
        base = IveConfig.ive()
        fat_mem = replace(
            base, memory=replace(base.memory, hbm_bw_per_stack=1024e9)
        )
        lat_base = IveSimulator(base, params).latency(8).total_s
        lat_fat = IveSimulator(fat_mem, params).latency(8).total_s
        assert lat_fat <= lat_base * 1.001

    def test_lpddr_only_slows_rowsel(self):
        """DB offload affects the scan, never the client-data steps."""
        params = PirParams.paper(d0=256, num_dims=12)
        hbm = IveSimulator(IveConfig.ive(), params).latency(8)
        lpddr = IveSimulator(
            IveConfig.ive(), params, db_bandwidth=CONFIG.memory.lpddr_bandwidth
        ).latency(8)
        assert lpddr.rowsel_s > hbm.rowsel_s
        assert lpddr.expand_s == pytest.approx(hbm.expand_s)
        assert lpddr.coltor_s == pytest.approx(hbm.coltor_s)
