"""SRAM bandwidth validation: the RF never limits the pipeline (§VI-A)."""

import pytest

from repro.arch.analytic import AnalyticModel
from repro.arch.config import IveConfig
from repro.arch.sram import (
    node_sram_traffic,
    rowsel_db_buffer_bytes_per_cycle,
    step_rf_demand_fraction,
)
from repro.params import PirParams
from repro.sched.tree import StepKind


@pytest.fixture(scope="module")
def env():
    params = PirParams.paper(d0=256, num_dims=12)
    config = IveConfig.ive()
    return config, params


class TestRfBandwidth:
    @pytest.mark.parametrize("kind", [StepKind.CMUX, StepKind.EXPAND])
    def test_rf_keeps_up_with_units(self, env, kind):
        """At full unit utilization, RF demand stays under its 2.04 TB/s."""
        config, params = env
        model = AnalyticModel(config, params)
        node = model._node_cycles(kind)
        node_cycles = max(node.values())
        fraction = step_rf_demand_fraction(config, params, kind, node_cycles)
        assert fraction < 1.0

    def test_forwarding_reduces_rf_traffic(self, env):
        """R.O.'s NTT->EWU forwarding path relieves RF pressure (§IV-F)."""
        config, params = env
        with_fw = node_sram_traffic(params, StepKind.CMUX, reduction_overlap=True)
        without = node_sram_traffic(params, StepKind.CMUX, reduction_overlap=False)
        assert with_fw.rf_bytes < without.rf_bytes

    def test_cmux_moves_more_than_subs(self, env):
        config, params = env
        cmux = node_sram_traffic(params, StepKind.CMUX)
        subs = node_sram_traffic(params, StepKind.EXPAND)
        assert cmux.rf_bytes > subs.rf_bytes
        assert cmux.icrt_buffer_bytes > subs.icrt_buffer_bytes

    def test_icrt_buffer_holds_working_set(self, env):
        """One node's iNTT+digit stream fits the 448 KB iCRT buffer when
        drained continuously (bytes per poly, not the whole set at once)."""
        config, params = env
        traffic = node_sram_traffic(params, StepKind.CMUX)
        # The buffer drains per polynomial: a single poly is 56 KB << 448 KB.
        assert params.poly_bytes < config.icrt_buffer_bytes

    def test_db_buffer_rate_within_bandwidth(self, env):
        """Streaming the RowSel GEMM needs less than the 0.81 TB/s buffer."""
        config, params = env
        rate = rowsel_db_buffer_bytes_per_cycle(config, params)  # B/cycle
        available = config.db_buffer_bandwidth / config.clock_hz
        assert rate < available

    def test_db_buffer_holds_gemm_tile(self, env):
        """A (D0 x lanes)-ish working tile of DB residues fits the buffer."""
        config, params = env
        from repro.params import RESIDUE_BITS

        tile_bytes = params.d0 * config.lanes * RESIDUE_BITS // 8
        assert tile_bytes < config.db_buffer_bytes
