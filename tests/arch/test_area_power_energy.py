"""Table II reproduction and design-point cost deltas (Fig. 13e, Fig. 14a)."""

import pytest

from repro.arch import energy
from repro.arch.area import area as area_fn
from repro.arch.power import power as power_fn
from repro.arch.config import IveConfig
from repro.arch.simulator import IveSimulator
from repro.params import PirParams


class TestTable2:
    def test_area_matches_table2(self):
        a = area_fn(IveConfig.ive())
        assert a.core_total == pytest.approx(2.91, rel=0.02)
        assert a.cores_total == pytest.approx(93.1, rel=0.02)
        assert a.noc == pytest.approx(2.6)
        assert a.hbm == pytest.approx(59.6)
        assert a.total == pytest.approx(155.3, rel=0.02)

    def test_power_matches_table2(self):
        p = power_fn(IveConfig.ive())
        assert p.core_total == pytest.approx(5.12, rel=0.02)
        assert p.cores_total == pytest.approx(163.8, rel=0.02)
        assert p.total == pytest.approx(239.1, rel=0.02)

    def test_component_rows(self):
        a = area_fn(IveConfig.ive())
        assert a.per_core["sysNTTU"] == pytest.approx(0.77)
        assert a.per_core["iCRTU"] == pytest.approx(0.05)
        assert a.per_core["EWU"] == pytest.approx(0.10)
        assert a.per_core["AutoU"] == pytest.approx(0.07)
        assert a.per_core["RF & buffers"] == pytest.approx(1.38, rel=0.01)


class TestDesignPoints:
    """Fig. 13e: Base -> +Sp (-4% area/energy), +Sp -> IVE (-7% area)."""

    def test_special_primes_reduce_area(self):
        base = area_fn(IveConfig.base()).logic_total
        sp = area_fn(IveConfig.base_sp()).logic_total
        reduction = 1 - sp / base
        assert 0.02 < reduction < 0.07  # paper: ~4%

    def test_sysnttu_reduces_area(self):
        sp = area_fn(IveConfig.base_sp()).logic_total
        ive = area_fn(IveConfig.ive()).logic_total
        reduction = 1 - ive / sp
        assert 0.04 < reduction < 0.10  # paper: ~7%

    def test_sysnttu_energy_penalty(self):
        """Unified unit burns ~1.1x the energy of split units for equal work."""
        sp = power_fn(IveConfig.base_sp())
        ive = power_fn(IveConfig.ive())
        split = sp.per_core["NTTU"] + sp.per_core["GEMM unit"]
        assert ive.per_core["sysNTTU"] / split == pytest.approx(1.1, rel=0.02)

    def test_ark_like_area_comparable(self):
        """Section VI-E: total area of IVE comparable to the ARK-like system."""
        ive = area_fn(IveConfig.ive()).total
        ark = area_fn(IveConfig.ark_like()).total
        assert 0.7 < ive / ark < 1.3


class TestEnergy:
    @pytest.mark.parametrize("gb,dims,paper_j", [(2, 9, 0.03), (4, 10, 0.05), (8, 11, 0.09)])
    def test_joules_per_query_near_paper(self, gb, dims, paper_j):
        sim = IveSimulator(IveConfig.ive(), PirParams.paper(d0=256, num_dims=dims))
        j = energy.energy_per_query(sim, 64)
        assert paper_j * 0.6 < j < paper_j * 1.4

    def test_energy_scales_with_db(self):
        js = []
        for dims in (9, 10, 11):
            sim = IveSimulator(IveConfig.ive(), PirParams.paper(d0=256, num_dims=dims))
            js.append(energy.energy_per_query(sim, 64))
        assert js[0] < js[1] < js[2]

    def test_batching_amortizes_energy(self):
        sim = IveSimulator(IveConfig.ive(), PirParams.paper(d0=256, num_dims=11))
        assert energy.energy_per_query(sim, 64) < energy.energy_per_query(sim, 1)

    def test_ark_like_consumes_more_energy(self):
        """Fig. 14a: ARK-like burns ~2.4x more energy per retrieval."""
        params = PirParams.paper(d0=256, num_dims=12)
        ive = energy.energy_per_query(IveSimulator(IveConfig.ive(), params), 64)
        ark = energy.energy_per_query(IveSimulator(IveConfig.ark_like(), params), 64)
        assert 1.3 < ark / ive < 5.0

    def test_edap(self):
        assert energy.edap(2.0, 3.0, 4.0) == 24.0
        assert energy.edap_ratio(1, 1, 1, 2, 3, 4) == 24.0
        with pytest.raises(ValueError):
            energy.edap(0, 1, 1)
