"""Cycle simulator: invariants, paper-number reproduction, scaling laws."""


import pytest

from repro.arch.config import IveConfig
from repro.arch.opgraph import GraphBuilder
from repro.arch.simulator import IveSimulator, simulate_graph
from repro.arch.units import Unit, UnitTimings
from repro.params import PirParams
from repro.sched.traversal import schedule_coltor
from repro.sched.tree import ScheduleConfig, Traversal


def paper_params(gb: int) -> PirParams:
    dims = {2: 9, 4: 10, 8: 11, 16: 12}[gb]
    return PirParams.paper(d0=256, num_dims=dims)


@pytest.fixture(scope="module")
def sim16():
    return IveSimulator(IveConfig.ive(), paper_params(16))


class TestSimulatorInvariants:
    def test_makespan_at_least_busiest_unit(self, sim16):
        _, timing = sim16.coltor_timing()
        assert timing.cycles >= max(timing.busy_cycles_by_unit.values())

    def test_makespan_at_most_sum_of_busy(self, sim16):
        """Perfect serialization is the upper bound for a well-formed graph."""
        _, timing = sim16.coltor_timing()
        slack = 1.5  # pipeline-fill latencies on the critical path
        assert timing.cycles <= slack * sum(timing.busy_cycles_by_unit.values())

    def test_empty_graph(self):
        from repro.arch.opgraph import OpGraph

        timing = simulate_graph(OpGraph([]))
        assert timing.cycles == 0.0

    def test_latency_components_positive(self, sim16):
        lat = sim16.latency(64)
        for name, value in lat.breakdown().items():
            assert value >= 0.0, name
        assert lat.total_s > 0

    def test_qps_definition(self, sim16):
        lat = sim16.latency(64)
        assert lat.qps == pytest.approx(64 / lat.total_s)

    def test_batch_must_be_positive(self, sim16):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            sim16.latency(0)


class TestPaperNumbers:
    """Fig. 12 / Fig. 13: batched QPS within 15% of the paper's values."""

    @pytest.mark.parametrize(
        "gb,paper_qps", [(2, 4261), (4, 2350), (8, 1242), (16, 591)]
    )
    def test_batched_qps(self, gb, paper_qps):
        sim = IveSimulator(IveConfig.ive(), paper_params(gb))
        qps = sim.latency(64).qps
        assert paper_qps * 0.85 < qps < paper_qps * 1.15

    def test_single_query_latency_16gb(self, sim16):
        """Paper Fig. 14b: non-batching throughput limit ~17.8 QPS -> ~56 ms."""
        lat = sim16.single_query_latency()
        assert 0.03 < lat.total_s < 0.08

    def test_rowsel_becomes_compute_bound_at_batch_64(self, sim16):
        """Section VI-C: batching makes RowSel compute-bound by batch 64."""
        p, c = sim16.params, sim16.config
        macs = 64 * 2.0 * p.num_db_polys * p.rns_count * p.n
        gemm_s = macs / (c.chip_gemm_macs_per_cycle * c.clock_hz)
        assert sim16.rowsel_seconds(64) == pytest.approx(gemm_s)

    def test_rowsel_memory_bound_unbatched(self, sim16):
        """Without batching the DB stream dominates RowSel."""
        assert sim16.rowsel_seconds(1) > sim16.min_db_read_seconds() * 0.99
        p, c = sim16.params, sim16.config
        macs = 2.0 * p.num_db_polys * p.rns_count * p.n
        gemm_s = macs / (c.chip_gemm_macs_per_cycle * c.clock_hz)
        assert sim16.rowsel_seconds(1) > gemm_s


class TestScalingLaws:
    def test_qps_saturates_with_batch(self, sim16):
        """Fig. 13c: throughput rises then plateaus as RowSel saturates."""
        qps = [sim16.latency(b).qps for b in (1, 8, 32, 64, 96)]
        assert qps[1] > 2 * qps[0]
        assert qps[3] > qps[2]
        # Past saturation the gain is marginal (<15%).
        assert qps[4] < qps[3] * 1.15

    def test_latency_grows_linearly_past_saturation(self, sim16):
        lat64 = sim16.latency(64).total_s
        lat128 = sim16.latency(128).total_s
        assert 1.6 < lat128 / lat64 < 2.4

    def test_db_size_scales_throughput_inversely(self):
        qps = {}
        for gb in (2, 4, 8):
            sim = IveSimulator(IveConfig.ive(), paper_params(gb))
            qps[gb] = sim.latency(64).qps
        assert 1.7 < qps[2] / qps[4] < 2.2
        assert 1.7 < qps[4] / qps[8] < 2.2

    def test_lpddr_offload_needs_larger_batch(self):
        """Fig. 13d: lower DB bandwidth shifts the saturation point."""
        params = paper_params(16)
        cfg = IveConfig.ive()
        hbm = IveSimulator(cfg, params)
        lpddr = IveSimulator(cfg, params, db_bandwidth=cfg.memory.lpddr_bandwidth)
        # At small batch the LPDDR system is slower; at 128 both compute-bound.
        assert lpddr.latency(8).total_s > hbm.latency(8).total_s
        ratio = lpddr.latency(128).qps / hbm.latency(128).qps
        assert ratio > 0.9

    def test_ark_like_is_slower(self):
        """Fig. 14a: the ARK-like system loses ~4x on batched PIR."""
        params = paper_params(16)
        ive = IveSimulator(IveConfig.ive(), params).latency(64)
        ark = IveSimulator(IveConfig.ark_like(), params).latency(64)
        assert 2.5 < ark.total_s / ive.total_s < 7.0


class TestUnitTimings:
    def test_ntt_throughput_matches_lane_count(self):
        params = PirParams.paper()
        config = IveConfig.ive()
        t = UnitTimings(config, params)
        # N/lanes cycles per residue poly, R residues, split over the
        # core's two sysNTTUs (independent residue polys fill both).
        assert t.ntt_poly_cycles() == pytest.approx(
            params.rns_count * params.n / 64 / config.sysnttu_per_core
        )

    def test_gemm_tops_matches_paper(self):
        """Two sysNTTUs per core at 1 GHz give ~1 TOPS MMAD per core."""
        cfg = IveConfig.ive()
        per_core_tops = cfg.gemm_macs_per_core * cfg.clock_hz / 1e12
        assert per_core_tops == pytest.approx(1.024)

    def test_memory_cycles(self):
        t = UnitTimings(IveConfig.ive(), PirParams.paper())
        assert t.dram_cycles(64e9, 64e9) == pytest.approx(1e9)

    def test_busy_units_cover_all_expected(self):
        sim = IveSimulator(IveConfig.ive(), paper_params(2))
        _, timing = sim.coltor_timing()
        units = set(timing.busy_cycles_by_unit)
        assert {Unit.SYSNTTU, Unit.ICRTU, Unit.EWU, Unit.MEMORY} <= units

    def test_graph_size_matches_schedule(self):
        params = paper_params(2)
        cfg = ScheduleConfig(capacity_bytes=4 << 20, traversal=Traversal.HS_DFS)
        sched = schedule_coltor(params, cfg)
        sim = IveSimulator(IveConfig.ive(), params)
        graph = GraphBuilder(sim.timings, 64e9).build(sched)
        # Every cmux expands to 6 compute ops plus its memory ops.
        mem_ops = sum(
            (1 if s.key_load else 0)
            + (1 if s.ct_loads else 0)
            + (1 if s.ct_stores else 0)
            for s in sched.steps
        )
        assert len(graph) == 6 * len(sched.steps) + mem_ops
