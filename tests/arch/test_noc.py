"""Fig. 10 NoC transposition: the fixed wiring produces the CLP layout."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import IveConfig
from repro.arch.noc import (
    NocGeometry,
    clp_to_qlp,
    global_exchange,
    local_transpose,
    qlp_to_clp,
    transpose_cost,
)
from repro.errors import ParameterError


def encode(query: int, coeff: int) -> int:
    return query * 10000 + coeff


def qlp_layout(geo: NocGeometry, rows: int) -> np.ndarray:
    """QLP: core c, row r holds query (c*rows + r)'s coefficients 0..lanes."""
    layout = np.empty((geo.num_cores, rows, geo.num_lanes), dtype=np.int64)
    for c in range(geo.num_cores):
        for r in range(rows):
            for l in range(geo.num_lanes):
                layout[c, r, l] = encode(c * rows + r, l)
    return layout


class TestFig10Example:
    """The paper's illustration: 4 cores, 8 lanes, 2 queries per core."""

    geo = NocGeometry(num_cores=4, num_lanes=8)

    def test_local_transpose_interleaves_queries(self):
        layout = qlp_layout(self.geo, rows=2)
        local = local_transpose(layout, self.geo)
        # Fig. 10-2: core 0 row 0 becomes "1 1 3 3 5 5 7 7" — alternating
        # queries, odd coefficient positions.
        row = local[0, 0]
        coeffs = row % 10000
        queries = row // 10000
        assert list(coeffs) == [0, 0, 2, 2, 4, 4, 6, 6]
        assert list(queries) == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_global_exchange_gathers_one_coefficient_per_row(self):
        layout = qlp_layout(self.geo, rows=2)
        final = qlp_to_clp(layout, self.geo)
        # Fig. 10-3: each core row holds ONE coefficient index from all
        # 8 queries.
        for c in range(4):
            for r in range(2):
                coeffs = set(final[c, r] % 10000)
                queries = sorted(final[c, r] // 10000)
                assert len(coeffs) == 1
                assert queries == list(range(8))

    def test_each_core_owns_its_coefficient_slice(self):
        layout = qlp_layout(self.geo, rows=2)
        final = qlp_to_clp(layout, self.geo)
        block = self.geo.block
        for c in range(4):
            owned = set(final[c].flatten() % 10000)
            assert owned == set(range(c * block, (c + 1) * block))


class TestPermutationProperties:
    def test_transposition_is_a_permutation(self):
        geo = NocGeometry(num_cores=4, num_lanes=16)
        layout = qlp_layout(geo, rows=4)
        final = qlp_to_clp(layout, geo)
        assert sorted(final.flatten()) == sorted(layout.flatten())

    def test_round_trip_restores_qlp(self):
        geo = NocGeometry(num_cores=4, num_lanes=16)
        layout = qlp_layout(geo, rows=4)
        back = clp_to_qlp(qlp_to_clp(layout, geo), geo)
        assert np.array_equal(back, layout)

    def test_phases_are_involutions(self):
        geo = NocGeometry(num_cores=2, num_lanes=8)
        layout = qlp_layout(geo, rows=4)
        assert np.array_equal(
            local_transpose(local_transpose(layout, geo), geo), layout
        )
        assert np.array_equal(
            global_exchange(global_exchange(layout, geo), geo), layout
        )

    def test_global_exchange_is_fixed_wiring(self):
        """Every (core, lane) position receives from ONE fixed source."""
        geo = NocGeometry(num_cores=4, num_lanes=8)
        rows = geo.block  # minimum legal row count
        layout = np.arange(4 * rows * 8, dtype=np.int64).reshape(4, rows, 8)
        out = global_exchange(layout, geo)
        sources = {}
        for c in range(4):
            for r in range(rows):
                for l in range(8):
                    src = int(out[c, r, l])
                    sources[(c, r, l)] = src
        # A permutation with each source position used exactly once.
        assert len(set(sources.values())) == 4 * rows * 8

    @settings(max_examples=20, deadline=None)
    @given(
        log_cores=st.integers(min_value=0, max_value=3),
        row_factor=st.integers(min_value=1, max_value=3),
    )
    def test_clp_property_random_geometry(self, log_cores, row_factor):
        cores = 1 << log_cores
        geo = NocGeometry(num_cores=cores, num_lanes=cores * 4)
        rows = geo.block * row_factor
        layout = qlp_layout(geo, rows)
        final = qlp_to_clp(layout, geo)
        block = geo.block
        for c in range(cores):
            owned = set(final[c].flatten() % 10000)
            assert owned == set(range(c * block, (c + 1) * block))


class TestValidation:
    def test_lane_core_mismatch(self):
        with pytest.raises(ParameterError):
            NocGeometry(num_cores=4, num_lanes=10)

    def test_bad_layout_shape(self):
        geo = NocGeometry(num_cores=4, num_lanes=8)
        with pytest.raises(ParameterError):
            local_transpose(np.zeros((4, 8)), geo)
        with pytest.raises(ParameterError):
            local_transpose(np.zeros((2, 2, 8)), geo)
        with pytest.raises(ParameterError):
            local_transpose(np.zeros((4, 3, 8)), geo)  # rows not multiple


class TestCostModel:
    def test_cost_scales_with_bytes(self):
        config = IveConfig.ive()
        small = transpose_cost(config, 1 << 20)
        large = transpose_cost(config, 1 << 22)
        assert large.total_cycles == pytest.approx(4 * small.total_cycles)

    def test_per_core_time_constant_in_cores(self):
        """Section IV-E: fixed wiring scales linearly with core count."""
        from dataclasses import replace

        data = 1 << 26
        t32 = transpose_cost(IveConfig.ive(), data)
        t64 = transpose_cost(replace(IveConfig.ive(), num_cores=64), data)
        assert t64.total_cycles == pytest.approx(t32.total_cycles / 2)
