"""Operation-graph construction: structure, dependencies, unit coverage."""

import pytest

from repro.arch.config import IveConfig
from repro.arch.opgraph import GraphBuilder
from repro.arch.units import Unit, UnitTimings
from repro.params import PirParams
from repro.sched.traversal import schedule_coltor, schedule_expand
from repro.sched.tree import ScheduleConfig, Traversal


@pytest.fixture(scope="module")
def env():
    params = PirParams.paper(d0=64, num_dims=4)
    config = IveConfig.ive()
    timings = UnitTimings(config, params)
    cfg = ScheduleConfig(capacity_bytes=config.rf_bytes, traversal=Traversal.HS_DFS)
    return params, config, timings, cfg


class TestGraphStructure:
    def test_dependencies_are_topological(self, env):
        params, config, timings, cfg = env
        sched = schedule_coltor(params, cfg)
        graph = GraphBuilder(timings, 64e9).build(sched)
        for op in graph.ops:
            for dep in op.deps:
                assert dep < op.op_id

    def test_cmux_unit_sequence(self, env):
        """Each cmux expands to sub -> iNTT -> iCRT -> NTT -> GEMM -> add."""
        params, config, timings, cfg = env
        sched = schedule_coltor(params, cfg)
        graph = GraphBuilder(timings, 64e9).build(sched)
        compute = [op for op in graph.ops if op.cost.unit is not Unit.MEMORY]
        per_node = len(compute) // sched.num_compute_steps
        assert per_node == 6
        units = [op.cost.unit for op in compute[:6]]
        assert units == [
            Unit.EWU,  # Y - X
            Unit.SYSNTTU,  # iNTT
            Unit.ICRTU,
            Unit.SYSNTTU,  # digit NTTs
            Unit.SYSNTTU,  # gadget GEMM (GEMM mode)
            Unit.EWU,  # + X
        ]

    def test_subs_includes_automorphism(self, env):
        params, config, timings, cfg = env
        sched = schedule_expand(params, cfg)
        graph = GraphBuilder(timings, 64e9).build(sched)
        autos = [op for op in graph.ops if op.cost.unit is Unit.AUTOU]
        assert len(autos) == sched.num_compute_steps

    def test_memory_ops_match_schedule(self, env):
        params, config, timings, cfg = env
        sched = schedule_coltor(params, cfg)
        graph = GraphBuilder(timings, 64e9).build(sched)
        mem_ops = [op for op in graph.ops if op.cost.unit is Unit.MEMORY]
        expected = sum(
            (1 if s.key_load else 0)
            + (1 if s.ct_loads else 0)
            + (1 if s.ct_stores else 0)
            for s in sched.steps
        )
        assert len(mem_ops) == expected

    def test_memory_cycles_match_traffic(self, env):
        """Total memory occupancy equals the schedule's bytes / bandwidth."""
        params, config, timings, cfg = env
        bw = 64e9
        sched = schedule_coltor(params, cfg)
        graph = GraphBuilder(timings, bw).build(sched)
        mem_cycles = sum(
            op.cost.cycles for op in graph.ops if op.cost.unit is Unit.MEMORY
        )
        expected = timings.dram_cycles(sched.traffic().total_bytes, bw)
        assert mem_cycles == pytest.approx(expected)

    def test_stores_do_not_gate_loads(self, env):
        """Write-buffering: no load may depend on a store."""
        params, config, timings, cfg = env
        sched = schedule_coltor(params, cfg)
        graph = GraphBuilder(timings, 64e9).build(sched)
        stores = {
            op.op_id for op in graph.ops if op.cost.label == "ct-store"
        }
        loads = [op for op in graph.ops if op.cost.label in ("ct-load", "key-load")]
        for op in loads:
            assert not (set(op.deps) & stores)

    def test_gemm_maps_to_madu_on_ark(self):
        params = PirParams.paper(d0=64, num_dims=4)
        config = IveConfig.ark_like()
        timings = UnitTimings(config, params)
        cfg = ScheduleConfig(capacity_bytes=config.rf_bytes, traversal=Traversal.HS_DFS)
        graph = GraphBuilder(timings, 32e9).build(schedule_coltor(params, cfg))
        gemm_ops = [op for op in graph.ops if op.cost.label == "gadget-gemm"]
        assert gemm_ops
        assert all(op.cost.unit is Unit.EWU for op in gemm_ops)

    def test_total_cycles_by_unit(self, env):
        params, config, timings, cfg = env
        sched = schedule_expand(params, cfg)
        graph = GraphBuilder(timings, 64e9).build(sched)
        totals = graph.total_cycles_by_unit()
        assert totals[Unit.SYSNTTU] > 0
        assert totals[Unit.ICRTU] > 0
        assert sum(totals.values()) == pytest.approx(
            sum(op.cost.cycles for op in graph.ops)
        )
