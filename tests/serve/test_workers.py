"""Worker-pool lifecycle: shutdown, drain, and in-flight cancellation.

The serving runtime owns real thread pools; these tests pin the contract
that draining leaves no orphaned futures (every submitted query resolves
or errors), that closing a backend actually tears its pool down, and that
a caller cancelling its own future neither crashes the dispatcher nor
starves the rest of the batch.
"""

import asyncio

import pytest

from repro.batchpir.serving import BatchCryptoBackend, BatchServeRegistry
from repro.kvpir.serving import KvCryptoBackend, KvServeRegistry
from repro.params import PirParams
from repro.serve import (
    RealCryptoBackend,
    RealShardRegistry,
    ServeRuntime,
)
from repro.systems.batching import BatchPolicy


@pytest.fixture(scope="module")
def params():
    return PirParams.small(n=256, d0=8, num_dims=2)


@pytest.fixture(scope="module")
def registry(params):
    return RealShardRegistry.random(
        params, num_records=16, record_bytes=32, num_shards=2, seed=1
    )


class TestDrainLeavesNoOrphans:
    def test_drain_resolves_every_queued_future(self, registry):
        """A long window never fires on its own; drain must flush it."""
        backend = RealCryptoBackend(registry)
        policy = BatchPolicy(waiting_window_s=60.0, max_batch=64)

        async def main():
            runtime = ServeRuntime(registry, backend, policy)
            runtime.start()
            futures = [
                runtime.submit(registry.make_request(i % registry.num_records))
                for i in range(6)
            ]
            await runtime.drain()
            return futures

        futures = asyncio.run(main())
        assert all(f.done() and not f.cancelled() for f in futures)
        for f in futures:
            result = f.result()
            assert registry.decode(result.request, result.response) == (
                registry.expected(result.request.global_index)
            )

    def test_drain_closes_the_thread_pool(self, registry):
        backend = RealCryptoBackend(registry)

        async def main():
            runtime = ServeRuntime(
                registry, backend, BatchPolicy(waiting_window_s=0.01, max_batch=4)
            )
            async with runtime:
                await runtime.serve_index(3)

        asyncio.run(main())
        assert backend._pool._shutdown  # drain() called backend.close()

    def test_failing_backend_resolves_futures_with_the_error(self, registry):
        class ExplodingBackend:
            def __init__(self):
                self.closed = False

            async def answer(self, shard_id, requests):
                raise RuntimeError("boom")

            def close(self):
                self.closed = True

        backend = ExplodingBackend()

        async def main():
            runtime = ServeRuntime(
                registry, backend, BatchPolicy(waiting_window_s=0.01, max_batch=4)
            )
            runtime.start()
            futures = [
                runtime.submit(registry.make_request(i)) for i in range(4)
            ]
            await runtime.drain()
            return futures

        futures = asyncio.run(main())
        assert backend.closed
        for f in futures:
            assert f.done()
            with pytest.raises(RuntimeError, match="boom"):
                f.result()


class TestBackendClose:
    def test_closed_pool_rejects_new_work(self, registry):
        backend = RealCryptoBackend(registry)
        backend.close()
        request = registry.make_request(0)

        async def main():
            await backend.answer(0, [request])

        with pytest.raises(RuntimeError):  # pool shutdown refuses submits
            asyncio.run(main())

    def test_close_is_idempotent_across_backends(self, params, registry):
        batch_registry = BatchServeRegistry.random(
            params, num_records=32, record_bytes=16, max_batch=4, seed=2
        )
        kv_registry = KvServeRegistry.random(
            params, num_keys=16, value_bytes=8, seed=3
        )
        for backend in (
            RealCryptoBackend(registry),
            BatchCryptoBackend(batch_registry),
            KvCryptoBackend(kv_registry),
        ):
            backend.close()
            backend.close()  # second close must not raise
            assert backend._pool._shutdown


class TestInFlightCancellation:
    def test_cancelled_future_does_not_starve_its_batch(self, registry):
        """The dispatcher guards `future.done()` — a caller bailing out
        must not crash the serve loop or lose the other queries."""
        backend = RealCryptoBackend(registry)
        policy = BatchPolicy(waiting_window_s=60.0, max_batch=64)

        async def main():
            runtime = ServeRuntime(registry, backend, policy)
            runtime.start()
            futures = [
                runtime.submit(registry.make_request(i)) for i in range(4)
            ]
            futures[1].cancel()
            await runtime.drain()
            return futures

        futures = asyncio.run(main())
        assert futures[1].cancelled()
        survivors = [f for i, f in enumerate(futures) if i != 1]
        assert all(f.done() and not f.cancelled() for f in survivors)
        for f in survivors:
            result = f.result()
            assert registry.decode(result.request, result.response) == (
                registry.expected(result.request.global_index)
            )
