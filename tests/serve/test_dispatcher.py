"""Dispatcher behavior: window batching, admission control, draining.

All tests run on the virtual-time loop with a stub backend, so batching
windows of milliseconds cost microseconds of wall time.
"""

import asyncio

import pytest

from repro.errors import QueueFullError, ShuttingDownError
from repro.serve.dispatcher import AdmissionConfig, ServeRuntime, ShardDispatcher
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import ServeRequest
from repro.serve.workers import run_in_virtual_time
from repro.systems.batching import BatchPolicy


class StubBackend:
    """Sleeps a fixed service time per batch and records batch sizes."""

    def __init__(self, service_s: float = 0.01):
        self.service_s = service_s
        self.batches: list[int] = []

    async def answer(self, shard_id, requests):
        self.batches.append(len(requests))
        await asyncio.sleep(self.service_s)
        return [r.global_index for r in requests]

    def close(self):
        pass


def request(i: int, shard: int = 0) -> ServeRequest:
    return ServeRequest(global_index=i, shard_id=shard, local_index=i)


def dispatcher(backend, policy, max_queue_depth=1024) -> ShardDispatcher:
    return ShardDispatcher(
        0, backend, policy, AdmissionConfig(max_queue_depth), ServeMetrics(1)
    )


class TestWindowBatching:
    def test_queries_inside_window_share_a_batch(self):
        backend = StubBackend(service_s=0.001)

        async def main():
            d = dispatcher(backend, BatchPolicy(waiting_window_s=0.010, max_batch=16))
            d.start()
            futs = [d.submit(request(i)) for i in range(5)]  # same instant
            await asyncio.gather(*futs)
            await d.drain()

        run_in_virtual_time(main())
        assert backend.batches == [5]

    def test_full_batch_dispatches_before_window(self):
        backend = StubBackend(service_s=0.001)

        async def main():
            loop = asyncio.get_running_loop()
            d = dispatcher(backend, BatchPolicy(waiting_window_s=10.0, max_batch=4))
            d.start()
            futs = [d.submit(request(i)) for i in range(4)]
            results = await asyncio.gather(*futs)
            await d.drain()
            return loop.time(), results

        (elapsed, results), _ = run_in_virtual_time(main())
        assert backend.batches == [4]
        assert elapsed < 1.0  # did not wait for the 10 s window
        assert all(r.batch_size == 4 for r in results)

    def test_zero_window_serves_immediately(self):
        backend = StubBackend(service_s=0.001)

        async def main():
            d = dispatcher(backend, BatchPolicy(waiting_window_s=0.0, max_batch=16))
            d.start()
            first = d.submit(request(0))
            await first
            await d.drain()

        run_in_virtual_time(main())
        assert backend.batches[0] == 1

    def test_queue_keeps_filling_while_batch_in_flight(self):
        backend = StubBackend(service_s=0.050)

        async def main():
            d = dispatcher(backend, BatchPolicy(waiting_window_s=0.0, max_batch=16))
            d.start()
            futs = [d.submit(request(0))]
            await asyncio.sleep(0.001)  # first batch (size 1) now in service
            futs += [d.submit(request(i)) for i in range(1, 7)]
            await asyncio.gather(*futs)
            await d.drain()

        run_in_virtual_time(main())
        assert backend.batches == [1, 6]


class TestAdmissionControl:
    def test_load_shedding_raises_queue_full(self):
        backend = StubBackend(service_s=10.0)  # effectively never finishes

        async def main():
            d = dispatcher(
                backend,
                BatchPolicy(waiting_window_s=5.0, max_batch=1),
                max_queue_depth=3,
            )
            d.start()
            accepted = [d.submit(request(i)) for i in range(3)]
            with pytest.raises(QueueFullError):
                d.submit(request(99))
            for fut in accepted:
                fut.cancel()
            return d.metrics

        metrics, _ = run_in_virtual_time(main())
        assert metrics.rejected == 1
        assert metrics.accepted == 3

    def test_submit_after_drain_is_rejected(self):
        backend = StubBackend(service_s=0.001)

        async def main():
            d = dispatcher(backend, BatchPolicy(waiting_window_s=0.0, max_batch=4))
            d.start()
            await d.submit(request(0))
            await d.drain()
            with pytest.raises(ShuttingDownError):
                d.submit(request(1))

        run_in_virtual_time(main())

    def test_drain_flushes_queued_work_without_window_wait(self):
        backend = StubBackend(service_s=0.001)

        async def main():
            d = dispatcher(backend, BatchPolicy(waiting_window_s=60.0, max_batch=8))
            d.start()
            futs = [d.submit(request(i)) for i in range(3)]
            await d.drain()  # must not wait the 60 s window
            return await asyncio.gather(*futs), asyncio.get_running_loop().time()

        (results, elapsed), _ = run_in_virtual_time(main())
        assert len(results) == 3
        assert elapsed < 1.0


class TestFaultIsolation:
    def test_backend_failure_fails_batch_but_not_dispatcher(self):
        class FlakyBackend(StubBackend):
            async def answer(self, shard_id, requests):
                if not self.batches:
                    self.batches.append(len(requests))
                    raise RuntimeError("transient shard fault")
                return await super().answer(shard_id, requests)

        backend = FlakyBackend(service_s=0.001)

        async def main():
            d = dispatcher(backend, BatchPolicy(waiting_window_s=0.0, max_batch=4))
            d.start()
            doomed = d.submit(request(0))
            with pytest.raises(RuntimeError):
                await doomed
            healthy = d.submit(request(1))
            result = await healthy
            await d.drain()
            return d.metrics, result

        (metrics, result), _ = run_in_virtual_time(main())
        assert metrics.failed == 1
        assert metrics.served == 1
        assert result.response == 1

    def test_final_failed_batch_closes_the_metrics_window(self):
        """Regression: a run ending in a failed batch must not truncate
        ``elapsed_s`` (which inflated ``achieved_qps``), and the failure
        must be attributed to its shard."""

        class FailLastBackend(StubBackend):
            async def answer(self, shard_id, requests):
                if any(r.global_index == 99 for r in requests):
                    await asyncio.sleep(self.service_s)
                    raise RuntimeError("terminal shard fault")
                return await super().answer(shard_id, requests)

        backend = FailLastBackend(service_s=0.5)

        async def main():
            loop = asyncio.get_running_loop()
            d = dispatcher(backend, BatchPolicy(waiting_window_s=0.0, max_batch=1))
            d.start()
            ok = d.submit(request(0))
            await ok
            doomed = d.submit(request(99))
            with pytest.raises(RuntimeError):
                await doomed
            fail_finish = loop.time()
            await d.drain()
            return d.metrics, fail_finish

        (metrics, fail_finish), _ = run_in_virtual_time(main())
        assert metrics.failed == 1
        snap = metrics.snapshot()
        assert snap["failed_by_shard"] == {"0": 1}
        # the window extends to the *failed* batch's finish, not the last success
        assert metrics.last_finish_s == pytest.approx(fail_finish)
        assert metrics.elapsed_s == pytest.approx(fail_finish - metrics.first_arrival_s)


class TestServeRuntimeRouting:
    def test_requests_route_to_their_shard_dispatcher(self):
        from repro.params import PirParams
        from repro.serve.registry import SimShardRegistry
        from repro.serve.workers import SimulatedBackend

        registry = SimShardRegistry(
            PirParams.paper(d0=256, num_dims=9), num_shards=4
        )
        backend = SimulatedBackend(registry)

        async def main():
            runtime = ServeRuntime(
                registry,
                backend,
                BatchPolicy(waiting_window_s=registry.waiting_window_s(), max_batch=8),
            )
            runtime.start()
            # One record owned by each shard.
            picks = [registry.map.global_index(s, 0) for s in range(4)]
            results = await asyncio.gather(
                *(runtime.serve_index(g) for g in picks)
            )
            await runtime.drain()
            return runtime.metrics, results

        (metrics, results), _ = run_in_virtual_time(main())
        assert {r.request.shard_id for r in results} == {0, 1, 2, 3}
        assert set(metrics.served_by_shard) == {0, 1, 2, 3}
        assert metrics.served == 4
