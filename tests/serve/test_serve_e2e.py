"""End-to-end: real cryptography through the full async serving path."""

import asyncio

import pytest

from repro.params import PirParams
from repro.serve import RealCryptoBackend, RealShardRegistry, ServeRuntime
from repro.systems.batching import BatchPolicy


@pytest.fixture(scope="module")
def registry():
    params = PirParams.small(n=256, d0=8, num_dims=2)
    return RealShardRegistry.random(
        params, num_records=8, record_bytes=48, num_shards=2, seed=21
    )


def test_concurrent_queries_return_byte_correct_records(registry):
    policy = BatchPolicy(waiting_window_s=0.005, max_batch=4)

    async def main():
        runtime = ServeRuntime(registry, RealCryptoBackend(registry), policy)
        async with runtime:
            results = await asyncio.gather(
                *(runtime.serve_index(i) for i in range(registry.num_records))
            )
        return runtime.metrics, results

    metrics, results = asyncio.run(main())
    assert metrics.served == registry.num_records
    for result in results:
        record = registry.decode(result.request, result.response)
        assert record == registry.expected(result.request.global_index)
    # Concurrent submits inside one window actually batched.
    assert metrics.mean_batch > 1.0


def test_serving_batches_match_direct_protocol_answers(registry):
    """The serve path must not change results vs calling the server directly."""
    policy = BatchPolicy(waiting_window_s=0.0, max_batch=1)
    target = 5
    request = registry.make_request(target)
    direct = registry.server(request.shard_id).answer(request.query)

    async def main():
        runtime = ServeRuntime(registry, RealCryptoBackend(registry), policy)
        async with runtime:
            return await runtime.serve(request)

    result = asyncio.run(main())
    assert registry.decode(request, result.response) == registry.expected(target)
    assert registry.decode(request, direct) == registry.expected(target)
