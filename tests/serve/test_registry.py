"""Shard routing and registry construction."""

import pytest

from repro.errors import ParameterError, RoutingError
from repro.params import PirParams
from repro.serve.registry import RealShardRegistry, ShardMap, SimShardRegistry
from repro.systems.scale_up import DbPlacement


class TestShardMap:
    def test_even_partition(self):
        m = ShardMap(12, 3)
        assert m.sizes == [4, 4, 4]
        assert m.starts == [0, 4, 8]

    def test_uneven_partition_spreads_remainder(self):
        m = ShardMap(10, 3)
        assert m.sizes == [4, 3, 3]
        assert sum(m.sizes) == 10

    def test_route_roundtrip_covers_every_record(self):
        m = ShardMap(37, 5)
        seen = set()
        for g in range(37):
            shard, local = m.route(g)
            assert m.global_index(shard, local) == g
            seen.add((shard, local))
        assert len(seen) == 37

    def test_route_rejects_out_of_range(self):
        m = ShardMap(8, 2)
        with pytest.raises(RoutingError):
            m.route(8)
        with pytest.raises(RoutingError):
            m.route(-1)

    def test_route_rejects_non_integer_indices_typed(self):
        """Regression: floats/bools/strings must shed as RoutingError,
        never escape as a bare TypeError or route to a fractional local
        index (2.5 used to pass the range check and split records)."""
        m = ShardMap(8, 2)
        for bad in (2.5, True, "3", None, b"\x01"):
            with pytest.raises(RoutingError):
                m.route(bad)
        with pytest.raises(RoutingError):
            m.global_index(0.0, 1)
        with pytest.raises(RoutingError):
            m.global_index(0, False)

    def test_route_accepts_numpy_integers(self):
        import numpy as np

        m = ShardMap(8, 2)
        shard, local = m.route(np.int64(5))
        assert (shard, local) == m.route(5)
        assert isinstance(shard, int) and isinstance(local, int)

    def test_global_index_rejects_bad_shard(self):
        m = ShardMap(8, 2)
        with pytest.raises(RoutingError):
            m.global_index(2, 0)
        with pytest.raises(RoutingError):
            m.global_index(0, 4)

    def test_more_shards_than_records_rejected(self):
        with pytest.raises(ParameterError):
            ShardMap(2, 3)


class TestRealShardRegistry:
    @pytest.fixture(scope="class")
    def registry(self):
        params = PirParams.small(n=256, d0=8, num_dims=2)
        return RealShardRegistry.random(
            params, num_records=10, record_bytes=32, num_shards=3, seed=9
        )

    def test_shards_partition_the_records(self, registry):
        assert registry.num_shards == 3
        assert sum(spec.num_records for spec in registry.specs) == 10

    def test_request_routes_to_owning_shard(self, registry):
        req = registry.make_request(7)
        assert req.global_index == 7
        assert registry.map.global_index(req.shard_id, req.local_index) == 7
        assert req.query is not None

    def test_answer_decodes_to_original_record(self, registry):
        for g in (0, 4, 9):  # one record per shard
            req = registry.make_request(g)
            response = registry.server(req.shard_id).answer(req.query)
            assert registry.decode(req, response) == registry.expected(g)

    def test_small_shards_live_in_hbm(self, registry):
        assert all(spec.placement is DbPlacement.HBM for spec in registry.specs)

    def test_make_request_raises_typed_errors(self, registry):
        """Regression: out-of-range/non-integer indices surface as
        RoutingError end to end, not ValueError/IndexError."""
        for bad in (10, -1, 3.5, True, "7"):
            with pytest.raises(RoutingError):
                registry.make_request(bad)

    def test_accessors_raise_typed_errors(self, registry):
        with pytest.raises(RoutingError):
            registry.server(3)
        with pytest.raises(RoutingError):
            registry.shard_db(-1)
        with pytest.raises(RoutingError):
            registry.expected(10)
        with pytest.raises(RoutingError):
            registry.expected(2.0)


class TestRuntimeSubmitRouting:
    def test_submit_rejects_bad_shard_ids_typed(self):
        """Regression: a malformed ServeRequest at the runtime door sheds
        as RoutingError — never bare TypeError/IndexError from the
        dispatcher list, and 2.5 must not pass the range check."""
        import asyncio

        from repro.serve import ServeRequest, SimShardRegistry, SimulatedBackend
        from repro.serve.dispatcher import ServeRuntime
        from repro.systems.batching import BatchPolicy

        registry = SimShardRegistry(PirParams.paper(d0=256, num_dims=9), num_shards=2)
        runtime = ServeRuntime(
            registry,
            SimulatedBackend(registry),
            BatchPolicy(waiting_window_s=0.001, max_batch=4),
        )

        async def main():
            for bad in (2, -1, 1.5, "1", True, None):
                request = ServeRequest(global_index=0, shard_id=bad, local_index=0)
                with pytest.raises(RoutingError):
                    runtime.submit(request)

        asyncio.run(main())


class TestSimShardRegistry:
    def test_shard_split_drops_coltor_dimensions(self):
        reg = SimShardRegistry(PirParams.paper(d0=256, num_dims=9), num_shards=4)
        assert reg.shard_params.num_dims == 7
        assert reg.num_records == reg.params.num_db_polys

    def test_rejects_non_power_of_two_shards(self):
        with pytest.raises(ParameterError):
            SimShardRegistry(PirParams.paper(d0=256, num_dims=9), num_shards=3)

    def test_rejects_too_many_shards(self):
        with pytest.raises(ParameterError):
            SimShardRegistry(PirParams.paper(d0=256, num_dims=2), num_shards=8)

    def test_service_seconds_monotone_and_cached(self):
        reg = SimShardRegistry(PirParams.paper(d0=256, num_dims=9), num_shards=2)
        t1, t64 = reg.service_seconds(1), reg.service_seconds(64)
        assert 0 < t1 < t64  # batching amortizes but adds work
        assert reg.service_seconds(64) == t64  # cache hit is deterministic
        # Batching wins per query.
        assert t64 / 64 < t1

    def test_window_matches_shard_db_read(self):
        reg = SimShardRegistry(PirParams.paper(d0=256, num_dims=9), num_shards=4)
        assert reg.waiting_window_s() == reg.system.min_db_read_seconds()
