"""Shard routing and registry construction."""

import pytest

from repro.errors import ParameterError, RoutingError
from repro.params import PirParams
from repro.serve.registry import RealShardRegistry, ShardMap, SimShardRegistry
from repro.systems.scale_up import DbPlacement


class TestShardMap:
    def test_even_partition(self):
        m = ShardMap(12, 3)
        assert m.sizes == [4, 4, 4]
        assert m.starts == [0, 4, 8]

    def test_uneven_partition_spreads_remainder(self):
        m = ShardMap(10, 3)
        assert m.sizes == [4, 3, 3]
        assert sum(m.sizes) == 10

    def test_route_roundtrip_covers_every_record(self):
        m = ShardMap(37, 5)
        seen = set()
        for g in range(37):
            shard, local = m.route(g)
            assert m.global_index(shard, local) == g
            seen.add((shard, local))
        assert len(seen) == 37

    def test_route_rejects_out_of_range(self):
        m = ShardMap(8, 2)
        with pytest.raises(RoutingError):
            m.route(8)
        with pytest.raises(RoutingError):
            m.route(-1)

    def test_global_index_rejects_bad_shard(self):
        m = ShardMap(8, 2)
        with pytest.raises(RoutingError):
            m.global_index(2, 0)
        with pytest.raises(RoutingError):
            m.global_index(0, 4)

    def test_more_shards_than_records_rejected(self):
        with pytest.raises(ParameterError):
            ShardMap(2, 3)


class TestRealShardRegistry:
    @pytest.fixture(scope="class")
    def registry(self):
        params = PirParams.small(n=256, d0=8, num_dims=2)
        return RealShardRegistry.random(
            params, num_records=10, record_bytes=32, num_shards=3, seed=9
        )

    def test_shards_partition_the_records(self, registry):
        assert registry.num_shards == 3
        assert sum(spec.num_records for spec in registry.specs) == 10

    def test_request_routes_to_owning_shard(self, registry):
        req = registry.make_request(7)
        assert req.global_index == 7
        assert registry.map.global_index(req.shard_id, req.local_index) == 7
        assert req.query is not None

    def test_answer_decodes_to_original_record(self, registry):
        for g in (0, 4, 9):  # one record per shard
            req = registry.make_request(g)
            response = registry.server(req.shard_id).answer(req.query)
            assert registry.decode(req, response) == registry.expected(g)

    def test_small_shards_live_in_hbm(self, registry):
        assert all(spec.placement is DbPlacement.HBM for spec in registry.specs)


class TestSimShardRegistry:
    def test_shard_split_drops_coltor_dimensions(self):
        reg = SimShardRegistry(PirParams.paper(d0=256, num_dims=9), num_shards=4)
        assert reg.shard_params.num_dims == 7
        assert reg.num_records == reg.params.num_db_polys

    def test_rejects_non_power_of_two_shards(self):
        with pytest.raises(ParameterError):
            SimShardRegistry(PirParams.paper(d0=256, num_dims=9), num_shards=3)

    def test_rejects_too_many_shards(self):
        with pytest.raises(ParameterError):
            SimShardRegistry(PirParams.paper(d0=256, num_dims=2), num_shards=8)

    def test_service_seconds_monotone_and_cached(self):
        reg = SimShardRegistry(PirParams.paper(d0=256, num_dims=9), num_shards=2)
        t1, t64 = reg.service_seconds(1), reg.service_seconds(64)
        assert 0 < t1 < t64  # batching amortizes but adds work
        assert reg.service_seconds(64) == t64  # cache hit is deterministic
        # Batching wins per query.
        assert t64 / 64 < t1

    def test_window_matches_shard_db_read(self):
        reg = SimShardRegistry(PirParams.paper(d0=256, num_dims=9), num_shards=4)
        assert reg.waiting_window_s() == reg.system.min_db_read_seconds()
