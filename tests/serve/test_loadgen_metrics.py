"""Load generators, metrics accounting, and the sim-clock load harness."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.params import PirParams
from repro.serve import (
    ServeRuntime,
    SimShardRegistry,
    SimulatedBackend,
    bursty_arrivals,
    diurnal_arrivals,
    poisson_arrivals,
    run_in_virtual_time,
    run_open_loop,
    uniform_indices,
    zipf_indices,
)
from repro.serve.dispatcher import AdmissionConfig
from repro.serve.metrics import ServeMetrics, percentile
from repro.systems.batching import BatchPolicy


class TestArrivalProcesses:
    def test_poisson_rate_and_monotonicity(self):
        times = poisson_arrivals(100.0, 5000, seed=3)
        assert len(times) == 5000
        assert np.all(np.diff(times) > 0)
        achieved = 4999 / (times[-1] - times[0])
        assert achieved == pytest.approx(100.0, rel=0.1)

    def test_poisson_rejects_bad_rate(self):
        with pytest.raises(ParameterError):
            poisson_arrivals(0.0, 10)

    def test_poisson_shares_sampler_with_queueing_models(self):
        from repro.systems.queueing import poisson_arrival_times

        direct = poisson_arrival_times(50.0, 200, np.random.default_rng(9))
        assert np.array_equal(poisson_arrivals(50.0, 200, seed=9), direct)

    def test_zipf_rejects_degenerate_exponent(self):
        with pytest.raises(ParameterError):
            zipf_indices(100, 10, a=1.0)
        with pytest.raises(ParameterError):
            zipf_indices(0, 10, a=1.5)

    def test_zipf_truncates_instead_of_wrapping(self):
        """Regression: tail ranks are rejection-sampled, not aliased.

        The old ``(zipf - 1) % num_records`` folded the unbounded tail back
        onto the hottest indices (rank num_records + 1 became index 0),
        deflating the head *relative to the truncated-Zipf law* and
        inflating it in absolute mass.  The fixed sampler is exactly Zipf
        conditioned on rank <= num_records, so the empirical pmf must match
        that law tightly — the aliased sampler misses p0 by ~0.02 here,
        well outside the 0.005 tolerance at this sample count.
        """
        num_records, a, num = 16, 1.5, 400_000
        idx = zipf_indices(num_records, num, a=a, seed=7)
        assert idx.min() >= 0 and idx.max() < num_records
        weights = np.arange(1, num_records + 1, dtype=float) ** -a
        pmf = weights / weights.sum()
        counts = np.bincount(idx, minlength=num_records) / num
        assert abs(counts[0] - pmf[0]) < 0.005
        # Tail mass of the top half matches the truncated law too.
        half = num_records // 2
        assert abs(counts[half:].sum() - pmf[half:].sum()) < 0.005

    def test_zipf_deterministic_per_seed(self):
        a = zipf_indices(64, 1000, a=1.2, seed=11)
        b = zipf_indices(64, 1000, a=1.2, seed=11)
        assert np.array_equal(a, b)
        assert len(a) == 1000

    def test_bursty_alternates_rates(self):
        times = bursty_arrivals(10.0, 1000.0, 4000, period_s=1.0, duty=0.5, seed=4)
        assert np.all(np.diff(times) > 0)
        in_burst = (times % 1.0) < 0.5
        # The burst half of each period should absorb the vast majority.
        assert in_burst.mean() > 0.8

    def test_bursty_validates_duty(self):
        with pytest.raises(ParameterError):
            bursty_arrivals(1.0, 2.0, 10, duty=1.5)

    def test_diurnal_rate_tracks_the_sinusoid(self):
        period = 100.0
        times = diurnal_arrivals(50.0, 4000, period_s=period, amplitude=0.9, seed=5)
        assert np.all(np.diff(times) > 0)
        phase = (times % period) / period
        # More arrivals land in the rising half-period than the trough.
        peak = ((phase > 0.0) & (phase < 0.5)).sum()
        trough = ((phase > 0.5) & (phase < 1.0)).sum()
        assert peak > 1.5 * trough

    def test_index_samplers_stay_in_range(self):
        uni = uniform_indices(1000, 500, seed=0)
        zipf = zipf_indices(1000, 500, seed=0)
        for sample in (uni, zipf):
            assert sample.min() >= 0 and sample.max() < 1000
        # Zipf is head-heavy, uniform is not.
        assert (zipf < 10).mean() > (uni < 10).mean()


class TestMetrics:
    def test_percentile_empty_sample(self):
        """Regression: no samples means "no percentile", not a fake 0.0.

        A zero from an empty run read exactly like a perfect-latency run
        in dashboards and JSON artifacts; ``None`` (→ JSON ``null``)
        cannot be mistaken for a measurement.
        """
        assert percentile([], 95) is None

    def test_percentile_matches_numpy_linear_interpolation(self):
        """Direct contract for the one exact-percentile helper still in use.

        The streaming sketches replaced it on the serving path, but the
        benchmark harnesses (e.g. ``bench_mutate``) still feed it small
        exact samples — pin its semantics to numpy's linear interpolation.
        """
        import numpy as np

        values = [0.5, 0.1, 0.9, 0.3, 0.7]
        for p in (0, 25, 50, 90, 99, 100):
            assert percentile(values, p) == pytest.approx(
                float(np.percentile(values, p))
            )
        assert percentile([42.0], 50) == 42.0
        # Interpolates between ranks rather than snapping to a sample.
        assert percentile([0.0, 1.0], 50) == pytest.approx(0.5)

    def test_series_and_queue_depth_accessors(self):
        m = ServeMetrics(1)
        m.record_submit(accepted=True, now_s=0.25)
        m.record_served(0, latency_s=0.01, queue_wait_s=0.0, finish_s=0.5)
        m.record_queue_depth(7)
        assert m.queue_depth == 7
        agg = m.series.aggregate(0.0, 1.0)
        assert (agg.submitted, agg.served) == (1, 1)

    def test_counters_and_derived_quantities(self):
        m = ServeMetrics(2)
        m.record_submit(accepted=True, now_s=0.0)
        m.record_submit(accepted=False, now_s=0.5)
        m.record_dispatch(0, batch_size=3, depth_after=1)
        m.record_served(0, latency_s=0.2, queue_wait_s=0.1, finish_s=2.0)
        m.record_served(1, latency_s=0.4, queue_wait_s=0.1, finish_s=4.0)
        assert m.submitted == 2 and m.accepted == 1 and m.rejected == 1
        assert m.elapsed_s == 4.0
        assert m.achieved_qps == pytest.approx(0.5)
        assert m.batch_histogram() == {3: 1}
        snap = m.snapshot()
        assert snap["served_by_shard"] == {"0": 1, "1": 1}
        # Latencies live in a streaming quantile sketch now: the p50 of
        # {0.2, 0.4} is the nearest-rank sample 0.2 (within the sketch's
        # 1% relative accuracy), not the linear interpolation 0.3.
        assert snap["latency"]["p50_s"] == pytest.approx(0.2, rel=0.02)

    def test_snapshot_is_json_serializable(self):
        import json

        m = ServeMetrics(1)
        m.record_submit(accepted=True, now_s=0.0)
        m.record_dispatch(0, 1, 0)
        m.record_served(0, 0.1, 0.0, 1.0)
        json.dumps(m.snapshot())

    def test_failed_batch_extends_elapsed_window(self):
        """Regression: a trailing failed batch must close the window.

        ``record_failed`` used to drop the batch's finish time entirely,
        so a run whose *last* event was a failure reported ``elapsed_s``
        up to the previous success only — inflating ``achieved_qps`` —
        and its ``shard_id`` argument was dead, making per-shard failure
        counts impossible.
        """
        m = ServeMetrics(2)
        m.record_submit(accepted=True, now_s=0.0)
        m.record_served(0, latency_s=0.5, queue_wait_s=0.1, finish_s=2.0)
        m.record_failed(1, count=3, finish_s=8.0)
        assert m.failed == 3
        assert m.last_finish_s == 8.0
        assert m.elapsed_s == 8.0
        assert m.achieved_qps == pytest.approx(1 / 8.0)
        snap = m.snapshot()
        assert snap["failed_by_shard"] == {"1": 3}
        assert snap["elapsed_s"] == 8.0
        # an earlier failure must not rewind the window
        m.record_failed(0, count=1, finish_s=5.0)
        assert m.last_finish_s == 8.0
        assert m.snapshot()["failed_by_shard"] == {"0": 1, "1": 3}


class TestOpenLoopHarness:
    @pytest.fixture(scope="class")
    def registry(self):
        return SimShardRegistry(PirParams.paper(d0=256, num_dims=9), num_shards=4)

    def _run(self, registry, rate, n, max_queue=4096):
        policy = BatchPolicy(
            waiting_window_s=registry.waiting_window_s(), max_batch=128
        )

        async def main():
            runtime = ServeRuntime(
                registry,
                SimulatedBackend(registry),
                policy,
                AdmissionConfig(max_queue_depth=max_queue),
            )
            runtime.start()
            arrivals = poisson_arrivals(rate, n, seed=1)
            indices = uniform_indices(registry.num_records, n, seed=2)
            return await run_open_loop(runtime, arrivals, indices)

        return run_in_virtual_time(main())

    def test_moderate_load_serves_everything(self, registry):
        report, virtual_s = self._run(registry, rate=2000.0, n=2000)
        assert report.completed == 2000
        assert report.rejected == 0 and report.errored == 0
        m = report.metrics
        assert m["achieved_qps"] == pytest.approx(2000.0, rel=0.15)
        lat = m["latency"]
        assert 0 < lat["p50_s"] <= lat["p95_s"] <= lat["p99_s"]
        assert virtual_s > 0

    def test_overload_sheds_instead_of_collapsing(self, registry):
        # Far past shard saturation with a tiny queue: the runtime must
        # shed load and keep the latency of accepted queries bounded.
        report, _ = self._run(registry, rate=500000.0, n=3000, max_queue=64)
        assert report.rejected > 0
        assert report.completed == report.offered - report.rejected
        assert report.metrics["latency"]["p99_s"] < 5.0
        assert report.metrics["max_queue_depth"] <= 64
