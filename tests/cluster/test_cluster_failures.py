"""Failure injection for the cluster runtime: kill, stall, and race workers.

The acceptance bar is *zero incorrect responses*: a request caught in a
failure either retries to a byte-correct answer or surfaces a typed
error — it must never decode to wrong bytes.
"""

import asyncio
import os
import signal

import pytest

from repro.cluster import ClusterBackend, ClusterCoordinator, ClusterRegistry
from repro.mutate import UpdateLog
from repro.serve import ServeRuntime
from repro.systems.batching import BatchPolicy

RECORD_BYTES = 48
NUM_RECORDS = 8


@pytest.fixture()
def registry(small_params):
    return ClusterRegistry.random(
        small_params,
        num_records=NUM_RECORDS,
        record_bytes=RECORD_BYTES,
        num_shards=2,
        seed=31,
    )


def policy():
    return BatchPolicy(waiting_window_s=0.005, max_batch=4)


async def _kill_when_busy(coordinator, worker_id, timeout_s=10.0):
    """SIGKILL the worker as soon as it has a batch in flight."""
    worker = coordinator._workers[worker_id]
    deadline = asyncio.get_running_loop().time() + timeout_s
    while not worker.inflight:
        if asyncio.get_running_loop().time() > deadline:
            break  # kill anyway; correctness assertions still apply
        await asyncio.sleep(0.001)
    worker.process.kill()


def test_kill_worker_mid_batch_retries_on_surviving_replica(registry):
    """replication=2: every shard survives one death with zero wrong bytes."""

    async def main():
        coordinator = ClusterCoordinator(registry, num_workers=2, replication=2)
        async with coordinator:
            runtime = ServeRuntime(
                registry, ClusterBackend(coordinator), policy()
            )
            async with runtime:
                serves = asyncio.gather(
                    *(runtime.serve_index(i) for i in range(NUM_RECORDS))
                )
                killer = asyncio.ensure_future(_kill_when_busy(coordinator, 0))
                results = await serves
                await killer
            snap = coordinator.cluster_snapshot()
            return results, coordinator.stats, coordinator.live_workers, snap

    results, stats, live, snap = asyncio.run(main())
    for result in results:
        record = registry.decode(result.request, result.response)
        assert record == registry.expected(result.request.global_index)
    assert stats.worker_deaths == 1
    assert live == (1,)
    # The killed worker's fault shows up in the observable snapshot too.
    assert snap["worker_deaths"] == 1
    assert snap["live_workers"] == [1]
    assert snap["workers"]["0"]["alive"] is False
    assert snap["workers"]["1"]["alive"] is True
    assert snap["workers"]["1"]["last_seen_age_s"] >= 0.0
    assert snap["batches_sent"] >= 1
    import json

    json.dumps(snap)  # operator-facing: must stay JSON-serializable


def test_kill_sole_replica_rebalances_onto_survivor(registry):
    """replication=1: the orphaned shard is re-shipped to a live worker."""

    async def main():
        coordinator = ClusterCoordinator(registry, num_workers=2, replication=1)
        async with coordinator:
            runtime = ServeRuntime(
                registry, ClusterBackend(coordinator), policy()
            )
            async with runtime:
                serves = asyncio.gather(
                    *(runtime.serve_index(i) for i in range(NUM_RECORDS))
                )
                killer = asyncio.ensure_future(_kill_when_busy(coordinator, 0))
                results = await serves
                await killer
                # Routing fully recovered: a fresh sweep also succeeds.
                again = await asyncio.gather(
                    *(runtime.serve_index(i) for i in range(NUM_RECORDS))
                )
            return results + again, coordinator.stats

    results, stats = asyncio.run(main())
    for result in results:
        record = registry.decode(result.request, result.response)
        assert record == registry.expected(result.request.global_index)
    assert stats.worker_deaths == 1
    assert stats.rebalanced_shards >= 1


def test_heartbeat_timeout_declares_stalled_worker_dead(registry):
    """A SIGSTOP'd worker stops heartbeating and fails like a crashed one."""

    async def main():
        coordinator = ClusterCoordinator(
            registry,
            num_workers=2,
            heartbeat_interval_s=0.05,
            heartbeat_timeout_s=0.5,
        )
        async with coordinator:
            os.kill(coordinator._workers[0].process.pid, signal.SIGSTOP)
            deadline = asyncio.get_running_loop().time() + 15.0
            while 0 in coordinator.live_workers:
                assert asyncio.get_running_loop().time() < deadline, (
                    "heartbeat monitor never declared the stalled worker dead"
                )
                await asyncio.sleep(0.05)
            runtime = ServeRuntime(
                registry, ClusterBackend(coordinator), policy()
            )
            async with runtime:
                results = await asyncio.gather(
                    *(runtime.serve_index(i) for i in range(NUM_RECORDS))
                )
            return results, coordinator.stats

    results, stats = asyncio.run(main())
    for result in results:
        record = registry.decode(result.request, result.response)
        assert record == registry.expected(result.request.global_index)
    assert stats.worker_deaths == 1
    # The death was specifically a heartbeat timeout, not a process exit.
    assert stats.heartbeat_timeouts == 1


def test_epoch_publish_racing_request_spike_is_never_wrong(registry):
    """Requests admitted at epoch 0 decode epoch-0 bytes even if the publish
    broadcast lands first; requests admitted after decode epoch-1 bytes."""
    expected_old = [registry.expected(i) for i in range(NUM_RECORDS)]
    log = UpdateLog()
    for i in range(NUM_RECORDS):
        log.put(i, bytes([0x60 + i]) * RECORD_BYTES)

    async def main():
        async with ClusterCoordinator(registry, num_workers=2) as coordinator:
            runtime = ServeRuntime(
                registry, ClusterBackend(coordinator), policy()
            )
            async with runtime:
                pinned = [registry.make_request(i) for i in range(NUM_RECORDS)]
                spike = asyncio.gather(*(runtime.serve(r) for r in pinned))
                publish = coordinator.publish(log)
                old_results, publish_result = await asyncio.gather(spike, publish)
                fresh = await asyncio.gather(
                    *(runtime.serve_index(i) for i in range(NUM_RECORDS))
                )
            return old_results, fresh, publish_result

    old_results, fresh, publish_result = asyncio.run(main())
    assert publish_result.epoch == 1
    for result, expected in zip(old_results, expected_old):
        assert result.request.epoch == 0
        assert registry.decode(result.request, result.response) == expected
    for i, result in enumerate(fresh):
        assert result.request.epoch == 1
        record = registry.decode(result.request, result.response)
        assert record == bytes([0x60 + i]) * RECORD_BYTES
