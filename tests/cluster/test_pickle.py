"""Pickle round-trips for everything that crosses the coordinator/worker pipe.

The cluster runtime ships real ciphertexts between processes, so every
query/response/request type must survive pickling — and without
duplicating the heavyweight ring state: ``RingContext.__reduce__``
re-attaches unpickled polynomials to the process-local interned context
for their parameter set (see ``repro.he.poly``).
"""

import pickle

import numpy as np
import pytest

from repro.he.poly import RingContext
from repro.pir.database import PirDatabase
from repro.pir.protocol import PirProtocol


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


@pytest.fixture(scope="module")
def proto(small_params):
    db = PirDatabase.random(small_params, num_records=16, record_bytes=48, seed=51)
    return PirProtocol(small_params, db, seed=52), db


class TestRingContextInterning:
    def test_shared_is_one_object_per_params(self, small_params):
        assert RingContext.shared(small_params) is RingContext.shared(small_params)

    def test_unpickled_context_is_the_interned_one(self, small_params):
        private = RingContext(small_params)  # deliberately not interned
        assert private is not RingContext.shared(small_params)
        assert roundtrip(private) is RingContext.shared(small_params)

    def test_independently_unpickled_cts_share_one_context(self, proto):
        protocol, db = proto
        q1 = roundtrip(protocol.client.build_query(1, db.layout))
        q2 = roundtrip(protocol.client.build_query(2, db.layout))
        assert q1.packed.a.ctx is q2.packed.a.ctx
        assert q1.selection_bits[0].a_rows[0].ctx is q1.packed.a.ctx


class TestQueryResponseRoundTrip:
    def test_pir_query_answers_byte_identical_after_roundtrip(self, proto):
        protocol, db = proto
        index = 7
        query = protocol.client.build_query(index, db.layout)
        back = roundtrip(query)
        np.testing.assert_array_equal(
            back.packed.a.residues, query.packed.a.residues
        )
        assert len(back.selection_bits) == len(query.selection_bits)
        direct = protocol.server.answer(query)
        via_pickle = protocol.server.answer(back)
        record = protocol.client.decode_response(via_pickle, index, db.layout)
        assert record == db.record(index)
        assert record == protocol.client.decode_response(direct, index, db.layout)

    def test_pir_response_roundtrip_decodes(self, proto):
        protocol, db = proto
        index = 3
        query = protocol.client.build_query(index, db.layout)
        response = roundtrip(protocol.server.answer(query))
        record = protocol.client.decode_response(response, index, db.layout)
        assert record == db.record(index)

    def test_client_setup_roundtrip(self, proto):
        """Evaluation keys are shipped once to every spawned worker."""
        protocol, db = proto
        setup = roundtrip(protocol.client.setup_message())
        assert set(setup.evks) == set(protocol.client.setup_message().evks)
        from repro.pir.server import PirServer

        pre = db.preprocess(protocol.client.ring)
        server = PirServer(pre, setup)
        query = protocol.client.build_query(5, db.layout)
        response = server.answer(query)
        assert protocol.client.decode_response(response, 5, db.layout) == db.record(5)


class TestServeRequestRoundTrip:
    def test_cluster_request_fields_and_query_survive(self, small_params):
        from repro.cluster import ClusterRegistry

        registry = ClusterRegistry.random(
            small_params, num_records=8, record_bytes=32, num_shards=2, seed=9
        )
        request = registry.make_request(5)
        back = roundtrip(request)
        assert back.global_index == request.global_index
        assert back.shard_id == request.shard_id
        assert back.local_index == request.local_index
        assert back.epoch == request.epoch
        np.testing.assert_array_equal(
            back.query.packed.b.residues, request.query.packed.b.residues
        )

    def test_keyword_request_roundtrip(self):
        from repro.serve.registry import ServeRequest

        request = ServeRequest(
            global_index=0, shard_id=1, local_index=4, key=b"user:42", epoch=3
        )
        assert roundtrip(request) == request


class TestBatchKvRoundTrip:
    def test_batch_query_response_roundtrip(self, small_params):
        from repro.batchpir import BatchPirProtocol

        rng = np.random.default_rng(11)
        records = [rng.bytes(32) for _ in range(32)]
        protocol = BatchPirProtocol(
            small_params, records, max_batch=4, record_bytes=32,
            hash_seed=1, seed=2,
        )
        wanted = [1, 9, 17]
        plan = protocol.client.plan(wanted)
        query = roundtrip(protocol.client.build_queries(plan))
        response = roundtrip(protocol.server.answer(query))
        values = protocol.client.decode(plan, response)
        assert {g: values[g] for g in wanted} == {g: records[g] for g in wanted}

    def test_kv_query_response_roundtrip(self, small_params):
        from repro.kvpir import KvPirProtocol
        from repro.kvpir.layout import random_items

        items = random_items(24, 16, seed=3)
        protocol = KvPirProtocol(
            small_params, items, max_lookup_batch=4, hash_seed=4, seed=5
        )
        keys = list(items)[:3]
        plan = protocol.client.plan(keys)
        query = roundtrip(protocol.client.build_queries(plan))
        response = roundtrip(protocol.server.answer(query))
        values = protocol.client.decode(plan, response)
        assert values == {k: items[k] for k in keys}
