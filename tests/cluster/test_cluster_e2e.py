"""End-to-end: real cryptography through the multi-process cluster runtime.

Each test spawns real worker processes (multiprocessing spawn context) —
kept tiny so the whole module stays CI-friendly.
"""

import asyncio

import pytest

from repro.cluster import ClusterBackend, ClusterCoordinator, ClusterRegistry
from repro.mutate import UpdateLog
from repro.serve import ServeRuntime
from repro.systems.batching import BatchPolicy

RECORD_BYTES = 48
NUM_RECORDS = 8


@pytest.fixture()
def registry(small_params):
    return ClusterRegistry.random(
        small_params,
        num_records=NUM_RECORDS,
        record_bytes=RECORD_BYTES,
        num_shards=2,
        seed=21,
    )


def policy():
    return BatchPolicy(waiting_window_s=0.005, max_batch=4)


def test_two_workers_serve_byte_correct_records(registry):
    async def main():
        async with ClusterCoordinator(registry, num_workers=2) as coordinator:
            assert coordinator.live_workers == (0, 1)
            runtime = ServeRuntime(
                registry, ClusterBackend(coordinator), policy()
            )
            async with runtime:
                results = await asyncio.gather(
                    *(runtime.serve_index(i) for i in range(NUM_RECORDS))
                )
            return results, coordinator.stats

    results, stats = asyncio.run(main())
    for result in results:
        record = registry.decode(result.request, result.response)
        assert record == registry.expected(result.request.global_index)
    assert stats.batches_sent >= 2  # one per shard at minimum
    assert stats.worker_deaths == 0


def test_epoch_publish_pins_inflight_requests_to_admitted_epoch(registry):
    """A request admitted at epoch E decodes E's value even after E+1 lands."""
    target = 3
    old_value = registry.expected(target)
    new_value = b"\x42" * RECORD_BYTES

    async def main():
        async with ClusterCoordinator(registry, num_workers=2) as coordinator:
            runtime = ServeRuntime(
                registry, ClusterBackend(coordinator), policy()
            )
            async with runtime:
                pinned = registry.make_request(target)  # admitted at epoch 0
                result = await coordinator.publish(UpdateLog().put(target, new_value))
                assert result.epoch == 1
                assert result.lost_workers == ()
                old = await runtime.serve(pinned)
                fresh = await runtime.serve_index(target)
            return old, fresh, coordinator.stats

    old, fresh, stats = asyncio.run(main())
    assert old.request.epoch == 0
    assert registry.decode(old.request, old.response) == old_value
    assert fresh.request.epoch == 1
    assert registry.decode(fresh.request, fresh.response) == new_value
    assert registry.expected(target) == new_value
    assert stats.epochs_published == 1


def test_delete_publishes_tombstone_across_processes(registry):
    target = 6

    async def main():
        async with ClusterCoordinator(registry, num_workers=2) as coordinator:
            runtime = ServeRuntime(
                registry, ClusterBackend(coordinator), policy()
            )
            async with runtime:
                await coordinator.publish(UpdateLog().delete(target))
                result = await runtime.serve_index(target)
            return result

    result = asyncio.run(main())
    assert registry.decode(result.request, result.response) == b"\0" * RECORD_BYTES


def test_same_seed_reproduces_identical_responses(small_params):
    """--seed threads through registry + worker startup: reruns are bitwise equal."""

    async def run_once():
        reg = ClusterRegistry.random(
            small_params,
            num_records=4,
            record_bytes=RECORD_BYTES,
            num_shards=2,
            seed=77,
        )
        async with ClusterCoordinator(reg, num_workers=2) as coordinator:
            runtime = ServeRuntime(reg, ClusterBackend(coordinator), policy())
            async with runtime:
                results = await asyncio.gather(
                    *(runtime.serve_index(i) for i in range(4))
                )
        return [
            (
                r.request.epoch,
                [ct.a.residues.tobytes() for ct in r.response.plane_cts],
                reg.decode(r.request, r.response),
            )
            for r in results
        ]

    first = asyncio.run(run_once())
    second = asyncio.run(run_once())
    assert first == second
