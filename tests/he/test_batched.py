"""Batched tensor kernels vs the per-poly reference, element by element.

Every kernel in ``repro.he.batched`` claims exact equivalence with its
scalar counterpart — reassociated modular arithmetic cannot change the
canonical residues.  These hypothesis suites drive random shapes,
moduli, and values (including the adversarial lazy-reduction and limb
iCRT corners) through both paths and assert element identity.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DomainError, ParameterError
from repro.he import modmath
from repro.he.batched import (
    BfvCiphertextVec,
    RnsPolyVec,
    batched_cmux,
    batched_decompose,
    batched_external_product,
    batched_substitute,
    lazy_modular_gemm,
    overflow_safe_chunk,
    rns_forward,
    rns_inverse,
)
from repro.he.bfv import BfvContext, SecretKey
from repro.he.gadget import Gadget
from repro.he.ntt import NttContext
from repro.he.poly import Domain, RingContext, RnsPoly
from repro.he.rgsw import cmux, external_product, rgsw_encrypt
from repro.he.sampling import Sampler
from repro.he.subs import generate_subs_key, substitute
from repro.params import PirParams


def _ntt_context(n: int, seed: int) -> NttContext:
    primes = modmath.find_ntt_primes(bits=28, order=2 * n, count=3)
    return NttContext(n, primes[seed % len(primes)])


class TestStackedNtt:
    @settings(max_examples=30, deadline=None)
    @given(
        logn=st.integers(min_value=2, max_value=7),
        lead=st.lists(st.integers(min_value=1, max_value=4), max_size=2),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_stacked_forward_inverse_match_per_poly(self, logn, lead, seed):
        n = 1 << logn
        ntt = _ntt_context(n, seed)
        rng = np.random.default_rng(seed)
        stacked = rng.integers(0, ntt.q, size=tuple(lead) + (n,))
        fwd = ntt.forward(stacked)
        inv = ntt.inverse(fwd)
        flat_in = stacked.reshape(-1, n)
        flat_fwd = fwd.reshape(-1, n)
        flat_inv = inv.reshape(-1, n)
        for i in range(flat_in.shape[0]):
            assert np.array_equal(flat_fwd[i], ntt.forward(flat_in[i]))
            assert np.array_equal(flat_inv[i], flat_in[i])

    def test_wrong_last_axis_rejected(self):
        ntt = _ntt_context(16, 0)
        with pytest.raises(ParameterError):
            ntt.forward(np.zeros((4, 17), dtype=np.int64))
        with pytest.raises(ParameterError):
            ntt.inverse(np.zeros((17,), dtype=np.int64))

    def test_large_moduli_take_the_eager_path_exactly(self):
        """Regression: ~2^31 NTT-friendly moduli are valid parameters but
        overflow the lazy butterflies; they must fall back to per-stage
        reduction and still match the per-poly reference exactly."""
        n = 64
        primes = modmath.find_ntt_primes(bits=31, order=2 * n, count=2)
        params = PirParams(
            n=n,
            moduli=primes,
            plain_modulus=257,
            gadget_base_log2=16,
            gadget_len=4,
            d0=4,
            num_dims=1,
        )
        ctx = RingContext(params)
        from repro.he.batched import _rns_ntt_tables

        tables = _rns_ntt_tables(ctx)
        assert not tables["lazy_fwd"]  # lazy_inv's looser 2q(q-1) bound may still hold
        rng = np.random.default_rng(17)
        x = rng.integers(0, min(primes), size=(3, ctx.rns_count, n))
        fwd = rns_forward(ctx, x)
        assert np.array_equal(rns_inverse(ctx, fwd), x % ctx._moduli_col)
        for b in range(3):
            for i, ntt in enumerate(ctx.ntts):
                assert np.array_equal(fwd[b, i], ntt.forward(x[b, i]))

    @settings(max_examples=20, deadline=None)
    @given(
        batch=st.integers(min_value=1, max_value=5),
        k=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_rns_transforms_match_per_modulus(self, batch, k, seed, small_params):
        ctx = RingContext(small_params)
        rng = np.random.default_rng(seed)
        x = rng.integers(
            0, 1 << 60, size=(batch, k, ctx.rns_count, ctx.n)
        ) % ctx._moduli_col
        fwd = rns_forward(ctx, x)
        inv = rns_inverse(ctx, fwd)
        assert np.array_equal(inv, x)
        for b in range(batch):
            for j in range(k):
                for i, ntt in enumerate(ctx.ntts):
                    assert np.array_equal(fwd[b, j, i], ntt.forward(x[b, j, i]))


class TestRnsPolyVec:
    @settings(max_examples=25, deadline=None)
    @given(
        batch=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_ops_match_per_poly(self, batch, seed, small_params):
        ctx = RingContext(small_params)
        rng = np.random.default_rng(seed)
        coeffs_a = rng.integers(-(1 << 40), 1 << 40, size=(batch, ctx.n))
        coeffs_b = rng.integers(-(1 << 40), 1 << 40, size=(batch, ctx.n))
        vec_a = RnsPolyVec.from_small_coeffs(ctx, coeffs_a, domain=Domain.NTT)
        vec_b = RnsPolyVec.from_small_coeffs(ctx, coeffs_b, domain=Domain.NTT)
        ref_a = [ctx.from_small_coeffs(c, domain=Domain.NTT) for c in coeffs_a]
        ref_b = [ctx.from_small_coeffs(c, domain=Domain.NTT) for c in coeffs_b]
        power = int(rng.integers(0, 2 * ctx.n))
        r = int(rng.integers(0, ctx.n)) * 2 + 1
        consts = rng.integers(0, 1 << 27, size=ctx.rns_count)
        cases = [
            (vec_a + vec_b, [x + y for x, y in zip(ref_a, ref_b)]),
            (vec_a - vec_b, [x - y for x, y in zip(ref_a, ref_b)]),
            (-vec_a, [-x for x in ref_a]),
            (vec_a * vec_b, [x * y for x, y in zip(ref_a, ref_b)]),
            (vec_a.monomial_mul(power), [x.monomial_mul(power) for x in ref_a]),
            (vec_a.scalar_rns_mul(consts), [x.scalar_rns_mul(consts) for x in ref_a]),
            (vec_a.mul_poly(ref_b[0]), [x * ref_b[0] for x in ref_a]),
            (vec_a.to_coeff(), [x.to_coeff() for x in ref_a]),
            (
                vec_a.to_coeff().automorphism(r),
                [x.to_coeff().automorphism(r) for x in ref_a],
            ),
            (
                vec_a.to_coeff().monomial_mul(power),
                [x.to_coeff().monomial_mul(power) for x in ref_a],
            ),
        ]
        for got_vec, want in cases:
            assert got_vec.batch == batch
            for i, want_poly in enumerate(want):
                got = got_vec.poly(i)
                assert got.domain is want_poly.domain
                assert np.array_equal(got.residues, want_poly.residues)

    def test_from_polys_roundtrip_and_discipline(self, small_params):
        ctx = RingContext(small_params)
        polys = [ctx.constant(i + 1) for i in range(3)]
        vec = RnsPolyVec.from_polys(polys)
        assert [p.residues.tolist() for p in vec.polys()] == [
            p.residues.tolist() for p in polys
        ]
        with pytest.raises(ParameterError):
            RnsPolyVec.from_polys([])
        with pytest.raises(DomainError):
            RnsPolyVec.from_polys([polys[0], polys[1].to_coeff()])
        with pytest.raises(DomainError):
            vec.to_coeff() * vec.to_coeff()
        with pytest.raises(DomainError):
            vec.automorphism(3)  # NTT domain


class TestBatchedDecompose:
    @settings(max_examples=15, deadline=None)
    @given(
        batch=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_matches_reference_decompose(self, batch, seed, small_params):
        ctx = RingContext(small_params)
        gadget = Gadget(ctx)
        rng = np.random.default_rng(seed)
        polys = []
        for _ in range(batch):
            coeffs = [int(c) for c in rng.integers(0, 1 << 62, size=ctx.n)]
            polys.append(ctx.from_int_coeffs(coeffs))
        vec = RnsPolyVec.from_polys(polys)
        digits = batched_decompose(gadget, vec)
        assert digits.shape == (batch, gadget.length, ctx.n)
        for i, poly in enumerate(polys):
            ref = gadget.decompose(poly)
            for j, digit in enumerate(ref):
                assert np.array_equal(digits[i, j], digit.residues[0])

    def test_oversized_base_falls_back_to_reference(self):
        """Regression: a large-base/large-moduli gadget (valid parameters)
        would wrap the limb-iCRT einsum; it must take the exact per-poly
        reference path instead of silently corrupting digits."""
        n = 64
        primes = modmath.find_ntt_primes(bits=31, order=2 * n, count=3)
        params = PirParams(
            n=n,
            moduli=primes,
            plain_modulus=257,
            gadget_base_log2=31,
            gadget_len=3,
            d0=4,
            num_dims=1,
        )
        ctx = RingContext(params)
        gadget = Gadget(ctx)
        from repro.he.batched import _limb_tables

        assert not _limb_tables(gadget)["limb_ok"]
        rng = np.random.default_rng(23)
        polys = [
            ctx.from_int_coeffs([int(c) for c in rng.integers(0, 1 << 61, size=n)])
            for _ in range(3)
        ]
        digits = batched_decompose(gadget, RnsPolyVec.from_polys(polys))
        for i, poly in enumerate(polys):
            for j, digit in enumerate(gadget.decompose(poly)):
                assert np.array_equal(digits[i, j], digit.residues[0])

    def test_limb_icrt_corner_lifts(self, small_params):
        """Lifts near 0, 1, Q-1, and q_i multiples — the k-correction corners."""
        ctx = RingContext(small_params)
        gadget = Gadget(ctx)
        q = small_params.q
        corners = [0, 1, 2, q - 1, q - 2, q // 2, q // 2 + 1]
        corners += [m for m in small_params.moduli]
        coeff_rows = []
        for value in corners:
            coeff_rows.append([value] + [0] * (ctx.n - 1))
        polys = [ctx.from_int_coeffs(row) for row in coeff_rows]
        digits = batched_decompose(gadget, RnsPolyVec.from_polys(polys))
        for i, poly in enumerate(polys):
            ref = gadget.decompose(poly)
            for j, digit in enumerate(ref):
                assert np.array_equal(digits[i, j], digit.residues[0])


class TestLazyReduction:
    def test_chunk_boundary_exact(self):
        """Accumulation length exactly at the overflow-safe limit is exact."""
        q = (1 << 30) + 1  # (q-1)^2 = 2^60 -> chunk = 7
        chunk = overflow_safe_chunk(q)
        assert chunk == ((1 << 63) - 1 - (q - 1)) // ((q - 1) ** 2)
        for rows in (chunk, chunk + 1, 2 * chunk + 1):
            # worst case: every residue at q-1 maximises each product
            db = np.full((2, rows, 1, 3), q - 1, dtype=np.int64)
            query = np.full((rows, 1, 3), q - 1, dtype=np.int64)
            moduli_col = np.array([[q]], dtype=np.int64)
            out = lazy_modular_gemm(db, query, moduli_col)
            want = (rows * pow(q - 1, 2, q)) % q
            assert np.all(out == want), rows

    @settings(max_examples=20, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=20),
        cols=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_gemm_matches_object_math(self, rows, cols, seed):
        q = (1 << 30) + 1  # small chunk (7) so chunking is exercised
        rng = np.random.default_rng(seed)
        db = rng.integers(0, q, size=(cols, rows, 2, 3))
        query = rng.integers(0, q, size=(rows, 2, 3))
        moduli_col = np.array([[q], [q - 4]], dtype=np.int64)
        out = lazy_modular_gemm(db, query, moduli_col)
        exact = (db.astype(object) * query.astype(object)[None]).sum(axis=1)
        assert np.array_equal(out, (exact % moduli_col.astype(object)).astype(np.int64))

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ParameterError):
            lazy_modular_gemm(
                np.zeros((2, 3, 1, 4), dtype=np.int64),
                np.zeros((4, 1, 4), dtype=np.int64),
                np.array([[17]], dtype=np.int64),
            )

    def test_oversized_modulus_rejected(self):
        with pytest.raises(ParameterError):
            overflow_safe_chunk(1 << 33)


@pytest.fixture(scope="module")
def he_stack():
    params = PirParams.small(n=256, d0=8, num_dims=2)
    ctx = RingContext(params)
    sampler = Sampler(ctx, seed=99)
    bfv = BfvContext(ctx, sampler)
    key = SecretKey.generate(ctx, sampler)
    gadget = Gadget(ctx)
    return params, ctx, bfv, key, gadget


class TestBatchedHeOps:
    def _random_cts(self, bfv, key, count, seed):
        rng = np.random.default_rng(seed)
        return [
            bfv.encrypt(
                rng.integers(0, bfv.params.plain_modulus, size=bfv.params.n), key
            )
            for _ in range(count)
        ]

    @settings(max_examples=10, deadline=None)
    @given(
        batch=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_substitute_matches_reference(self, batch, seed, he_stack):
        params, ctx, bfv, key, gadget = he_stack
        evk = generate_subs_key(bfv, gadget, key, params.n // 2 + 1)
        cts = self._random_cts(bfv, key, batch, seed)
        out = batched_substitute(BfvCiphertextVec.from_cts(cts), evk, gadget)
        for i, ct in enumerate(cts):
            ref = substitute(ct, evk, gadget)
            assert np.array_equal(out.a.residues[i], ref.a.residues)
            assert np.array_equal(out.b.residues[i], ref.b.residues)

    @settings(max_examples=10, deadline=None)
    @given(
        batch=st.integers(min_value=1, max_value=4),
        bit=st.integers(min_value=0, max_value=1),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_external_product_and_cmux_match_reference(
        self, batch, bit, seed, he_stack
    ):
        params, ctx, bfv, key, gadget = he_stack
        rgsw = rgsw_encrypt(bfv, gadget, bit, key)
        cts = self._random_cts(bfv, key, 2 * batch, seed)
        vec = BfvCiphertextVec.from_cts(cts[:batch])
        prod = batched_external_product(rgsw, vec, gadget)
        for i in range(batch):
            ref = external_product(rgsw, cts[i], gadget)
            assert np.array_equal(prod.a.residues[i], ref.a.residues)
            assert np.array_equal(prod.b.residues[i], ref.b.residues)
        zeros = BfvCiphertextVec.from_cts(cts[:batch])
        ones = BfvCiphertextVec.from_cts(cts[batch:])
        sel = batched_cmux(rgsw, zeros, ones, gadget)
        for i in range(batch):
            ref = cmux(rgsw, cts[i], cts[batch + i], gadget)
            assert np.array_equal(sel.a.residues[i], ref.a.residues)
            assert np.array_equal(sel.b.residues[i], ref.b.residues)
