"""Modular arithmetic, special primes, and RNS/CRT reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.he import modmath
from repro.he.rns import RnsBasis


class TestPrimality:
    def test_small_primes(self):
        assert modmath.is_prime(2)
        assert modmath.is_prime(3)
        assert modmath.is_prime(65537)
        assert not modmath.is_prime(1)
        assert not modmath.is_prime(0)
        assert not modmath.is_prime(65536)

    def test_paper_special_primes_are_prime(self):
        for k in modmath.SPECIAL_PRIME_EXPONENTS:
            assert modmath.is_prime(2**27 + 2**k + 1)

    def test_special_primes_support_paper_ring(self):
        primes = modmath.special_primes(order=2 * 4096, count=4)
        assert len(primes) == 4
        for q in primes:
            assert (q - 1) % (2 * 4096) == 0

    def test_special_primes_reject_large_order(self):
        with pytest.raises(ParameterError):
            modmath.special_primes(order=2**20, count=4)

    def test_find_ntt_primes(self):
        primes = modmath.find_ntt_primes(bits=20, order=512, count=3)
        assert len(primes) == 3
        for q in primes:
            assert modmath.is_prime(q)
            assert q % 512 == 1
            assert 2**19 <= q < 2**20


class TestModInverse:
    def test_inverse(self):
        assert modmath.mod_inverse(3, 7) == 5
        q = 134250497
        for a in (2, 12345, q - 1):
            assert a * modmath.mod_inverse(a, q) % q == 1

    def test_no_inverse(self):
        with pytest.raises(ParameterError):
            modmath.mod_inverse(6, 9)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=134250496))
    def test_inverse_property(self, a):
        q = 134250497
        assert a * modmath.mod_inverse(a, q) % q == 1


class TestRoots:
    def test_root_of_unity_order(self):
        q = 134250497
        for order in (2, 512, 8192):
            w = modmath.root_of_unity(order, q)
            assert pow(w, order, q) == 1
            assert pow(w, order // 2, q) != 1

    def test_root_rejects_bad_order(self):
        with pytest.raises(ParameterError):
            modmath.root_of_unity(3, 134250497)  # 3 does not divide q-1...
        # (q-1 = 2^15 * k; 3 may divide k, so use an order that cannot)
    def test_root_rejects_non_dividing_order(self):
        with pytest.raises(ParameterError):
            modmath.root_of_unity(2**30, 134250497)


class TestHelpers:
    def test_centered(self):
        assert modmath.centered(0, 7) == 0
        assert modmath.centered(3, 7) == 3
        assert modmath.centered(4, 7) == -3
        assert modmath.centered(6, 7) == -1

    def test_bit_reverse(self):
        assert modmath.bit_reverse(0b001, 3) == 0b100
        assert modmath.bit_reverse(0b110, 3) == 0b011
        assert modmath.bit_reverse(5, 0) == 0

    def test_ilog2(self):
        assert modmath.ilog2(1) == 0
        assert modmath.ilog2(4096) == 12
        with pytest.raises(ParameterError):
            modmath.ilog2(12)

    def test_special_prime_area_discount(self):
        generic = modmath.montgomery_modmul_area_units(28, special=False)
        special = modmath.montgomery_modmul_area_units(28, special=True)
        assert special / generic == pytest.approx(1 - 0.091)


class TestRnsBasis:
    @pytest.fixture
    def basis(self):
        return RnsBasis(modmath.special_primes(order=512, count=3))

    def test_roundtrip(self, basis):
        rng = np.random.default_rng(0)
        values = [int(x) for x in rng.integers(0, 2**60, size=16)]
        residues = basis.to_rns(values)
        back = basis.from_rns(residues)
        assert [int(v) for v in back] == values

    def test_roundtrip_large_values(self, basis):
        values = [basis.modulus_product - 1, 0, basis.modulus_product // 2]
        back = basis.from_rns(basis.to_rns(values))
        assert [int(v) for v in back] == values

    def test_centered_lift(self, basis):
        values = [basis.modulus_product - 5]
        back = basis.from_rns_centered(basis.to_rns(values))
        assert int(back[0]) == -5

    def test_to_rns_int64_matches_generic(self, basis):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 2**40, size=32, dtype=np.int64)
        fast = basis.to_rns_int64(values)
        slow = basis.to_rns([int(v) for v in values])
        assert np.array_equal(fast, slow)

    def test_duplicate_moduli_rejected(self):
        with pytest.raises(ParameterError):
            RnsBasis((134250497, 134250497))

    def test_row_count_checked(self, basis):
        with pytest.raises(ParameterError):
            basis.from_rns(np.zeros((2, 4), dtype=np.int64))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0))
    def test_crt_roundtrip_property(self, value):
        basis = RnsBasis(modmath.special_primes(order=512, count=2))
        value %= basis.modulus_product
        back = basis.from_rns(basis.to_rns([value]))
        assert int(back[0]) == value
