"""RnsPoly: domain discipline, ring arithmetic, automorphism, monomials."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DomainError, ParameterError
from repro.he.ntt import naive_negacyclic_convolution
from repro.he.poly import Domain, RingContext
from repro.params import PirParams


@pytest.fixture(scope="module")
def tiny_ring():
    return RingContext(PirParams.small(n=16, d0=4, num_dims=1))


def _random_poly(ring, rng, domain=Domain.COEFF):
    coeffs = rng.integers(0, 1000, size=ring.n, dtype=np.int64)
    return ring.from_small_coeffs(coeffs, domain=domain)


class TestDomains:
    def test_roundtrip(self, tiny_ring):
        rng = np.random.default_rng(0)
        p = _random_poly(tiny_ring, rng)
        back = p.to_ntt().to_coeff()
        assert np.array_equal(back.residues, p.residues)

    def test_mul_requires_ntt(self, tiny_ring):
        rng = np.random.default_rng(1)
        p = _random_poly(tiny_ring, rng)
        with pytest.raises(DomainError):
            _ = p * p

    def test_add_requires_same_domain(self, tiny_ring):
        rng = np.random.default_rng(2)
        p = _random_poly(tiny_ring, rng)
        with pytest.raises(DomainError):
            _ = p + p.to_ntt()

    def test_automorphism_requires_coeff(self, tiny_ring):
        rng = np.random.default_rng(3)
        p = _random_poly(tiny_ring, rng, domain=Domain.NTT)
        with pytest.raises(DomainError):
            p.automorphism(3)


class TestArithmetic:
    def test_ntt_mul_matches_schoolbook(self, tiny_ring):
        rng = np.random.default_rng(4)
        a = rng.integers(0, 500, size=tiny_ring.n, dtype=np.int64)
        b = rng.integers(0, 500, size=tiny_ring.n, dtype=np.int64)
        pa = tiny_ring.from_small_coeffs(a, domain=Domain.NTT)
        pb = tiny_ring.from_small_coeffs(b, domain=Domain.NTT)
        prod = (pa * pb).to_coeff()
        for i, q in enumerate(tiny_ring.params.moduli):
            expected = naive_negacyclic_convolution(a % q, b % q, q)
            assert np.array_equal(prod.residues[i], expected)

    def test_add_sub_neg(self, tiny_ring):
        rng = np.random.default_rng(5)
        a = _random_poly(tiny_ring, rng)
        b = _random_poly(tiny_ring, rng)
        zero = tiny_ring.zero(Domain.COEFF)
        assert ((a + b) - b) == a
        assert (a + (-a)) == zero

    def test_scalar_mul_matches_repeated_add(self, tiny_ring):
        rng = np.random.default_rng(6)
        a = _random_poly(tiny_ring, rng)
        assert a.scalar_mul(3) == (a + a + a)

    def test_scalar_mul_handles_big_scalar(self, tiny_ring):
        rng = np.random.default_rng(7)
        a = _random_poly(tiny_ring, rng)
        q = tiny_ring.params.q
        assert a.scalar_mul(q + 2) == a.scalar_mul(2)

    def test_constant_poly(self, tiny_ring):
        c = tiny_ring.constant(9, domain=Domain.NTT)
        one = tiny_ring.from_small_coeffs(
            np.eye(1, tiny_ring.n, 0, dtype=np.int64)[0] * 9, domain=Domain.NTT
        )
        assert c == one


class TestMonomial:
    def test_monomial_mul_coeff_vs_ntt(self, tiny_ring):
        rng = np.random.default_rng(8)
        p = _random_poly(tiny_ring, rng)
        for power in (0, 1, 5, tiny_ring.n - 1, tiny_ring.n, 2 * tiny_ring.n - 1, -1, -3):
            via_coeff = p.monomial_mul(power).to_ntt()
            via_ntt = p.to_ntt().monomial_mul(power)
            assert via_coeff == via_ntt

    def test_negative_monomial_inverts_positive(self, tiny_ring):
        rng = np.random.default_rng(9)
        p = _random_poly(tiny_ring, rng)
        assert p.monomial_mul(3).monomial_mul(-3) == p

    def test_x_to_the_n_is_minus_one(self, tiny_ring):
        rng = np.random.default_rng(10)
        p = _random_poly(tiny_ring, rng)
        assert p.monomial_mul(tiny_ring.n) == -p


class TestAutomorphism:
    def test_automorphism_is_permutation_with_signs(self, tiny_ring):
        """sigma_r(X^j) = +/- X^(jr mod n); verify against direct evaluation."""
        n = tiny_ring.n
        for r in (3, 5, n + 1, 2 * n - 1):
            for j in (0, 1, n // 2, n - 1):
                coeffs = np.zeros(n, dtype=np.int64)
                coeffs[j] = 1
                p = tiny_ring.from_small_coeffs(coeffs).automorphism(r)
                idx = (j * r) % (2 * n)
                expected = np.zeros(n, dtype=np.int64)
                if idx < n:
                    expected[idx] = 1
                else:
                    expected[idx - n] = -1
                q = tiny_ring.from_small_coeffs(expected)
                assert p == q

    def test_automorphism_composes(self, tiny_ring):
        rng = np.random.default_rng(11)
        p = _random_poly(tiny_ring, rng)
        n = tiny_ring.n
        lhs = p.automorphism(3).automorphism(5)
        rhs = p.automorphism((3 * 5) % (2 * n))
        assert lhs == rhs

    def test_automorphism_is_ring_homomorphism(self, tiny_ring):
        rng = np.random.default_rng(12)
        a = _random_poly(tiny_ring, rng)
        b = _random_poly(tiny_ring, rng)
        r = 2 * tiny_ring.n - 1
        lhs = ((a.to_ntt() * b.to_ntt()).to_coeff()).automorphism(r)
        rhs = (a.automorphism(r).to_ntt() * b.automorphism(r).to_ntt()).to_coeff()
        assert lhs == rhs

    def test_even_power_rejected(self, tiny_ring):
        rng = np.random.default_rng(13)
        p = _random_poly(tiny_ring, rng)
        with pytest.raises(ParameterError):
            p.automorphism(2)

    def test_identity_automorphism(self, tiny_ring):
        rng = np.random.default_rng(14)
        p = _random_poly(tiny_ring, rng)
        assert p.automorphism(1) == p


class TestLift:
    def test_lift_roundtrip(self, tiny_ring):
        rng = np.random.default_rng(15)
        values = [int(x) for x in rng.integers(0, 2**50, size=tiny_ring.n)]
        p = tiny_ring.from_int_coeffs(values)
        assert [int(v) for v in p.lift_coeffs()] == values

    def test_lift_requires_coeff_domain(self, tiny_ring):
        p = tiny_ring.zero(Domain.NTT)
        with pytest.raises(DomainError):
            p.lift_coeffs()


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**40), st.integers(min_value=1, max_value=31))
def test_monomial_shift_property(value, power):
    ring = RingContext(PirParams.small(n=32, d0=4, num_dims=1))
    coeffs = [value] + [0] * (ring.n - 1)
    p = ring.from_int_coeffs(coeffs)
    shifted = p.monomial_mul(power)
    lifted = shifted.lift_coeffs()
    assert int(lifted[power]) == value % ring.params.q


class TestContextInterning:
    """Pickling reduces a context to the process-local interned instance."""

    def test_shared_interns_per_params(self):
        params = PirParams.small(n=32, d0=4, num_dims=1)
        same = PirParams.small(n=32, d0=4, num_dims=1)
        assert RingContext.shared(params) is RingContext.shared(same)

    def test_poly_pickles_by_residues_not_context(self, tiny_ring):
        import pickle

        rng = np.random.default_rng(16)
        p = _random_poly(tiny_ring, rng)
        back = pickle.loads(pickle.dumps(p))
        assert back.ctx is RingContext.shared(tiny_ring.params)
        assert back.domain is p.domain
        np.testing.assert_array_equal(back.residues, p.residues)
