"""Substitution (automorphism + key switching) — the ExpandQuery primitive."""

import numpy as np
import pytest

from repro.he.subs import generate_subs_key, substitute


def _encrypt_poly(bfv, key, coeffs):
    return bfv.encrypt(np.asarray(coeffs, dtype=np.int64), key)


class TestSubs:
    def test_subs_applies_automorphism(self, ring, bfv, gadget, secret_key):
        """Subs(Enc(m(X)), r) decrypts to m(X^r)."""
        rng = np.random.default_rng(0)
        n, p = ring.n, ring.params.plain_modulus
        m = rng.integers(0, p, size=n, dtype=np.int64)
        for r in (3, n + 1, n // 2 + 1, 2 * n - 1):
            evk = generate_subs_key(bfv, gadget, secret_key, r)
            out = substitute(_encrypt_poly(bfv, secret_key, m), evk, gadget)
            expected = (
                ring.from_small_coeffs(m).automorphism(r).residues[0]
            )  # small coeffs: residue row 0 mod q0 equals value when < q0
            got = bfv.decrypt(out, secret_key)
            # Compare via plaintext automorphism applied directly mod P.
            idx = (np.arange(n) * r) % (2 * n)
            dest = idx % n
            sign = np.where(idx >= n, -1, 1)
            exp = np.zeros(n, dtype=np.int64)
            exp[dest] = (sign * m) % p
            assert np.array_equal(got, exp)

    def test_subs_n_plus_1_negates_odd_terms(self, ring, bfv, gadget, secret_key):
        """The ExpandQuery identity: X -> X^(N+1) flips odd coefficients."""
        rng = np.random.default_rng(1)
        n, p = ring.n, ring.params.plain_modulus
        m = rng.integers(0, p, size=n, dtype=np.int64)
        evk = generate_subs_key(bfv, gadget, secret_key, n + 1)
        out = substitute(_encrypt_poly(bfv, secret_key, m), evk, gadget)
        expected = m.copy()
        expected[1::2] = (-expected[1::2]) % p
        assert np.array_equal(bfv.decrypt(out, secret_key), expected)

    def test_even_odd_extraction(self, ring, bfv, gadget, secret_key):
        """ct + Subs(ct) doubles even terms; ct - Subs(ct) isolates odd ones."""
        rng = np.random.default_rng(2)
        n, p = ring.n, ring.params.plain_modulus
        m = rng.integers(0, p, size=n, dtype=np.int64)
        ct = _encrypt_poly(bfv, secret_key, m)
        evk = generate_subs_key(bfv, gadget, secret_key, n + 1)
        cs = substitute(ct, evk, gadget)
        even = bfv.decrypt(ct + cs, secret_key)
        odd = bfv.decrypt((ct - cs).monomial_mul(-1), secret_key)
        exp_even = np.zeros(n, dtype=np.int64)
        exp_even[0::2] = (2 * m[0::2]) % p
        exp_odd = np.zeros(n, dtype=np.int64)
        exp_odd[0::2] = (2 * m[1::2]) % p
        assert np.array_equal(even, exp_even)
        assert np.array_equal(odd, exp_odd)

    def test_subs_noise_additive(self, ring, bfv, gadget, secret_key):
        rng = np.random.default_rng(3)
        n, p = ring.n, ring.params.plain_modulus
        m = rng.integers(0, p, size=n, dtype=np.int64)
        ct = _encrypt_poly(bfv, secret_key, m)
        evk = generate_subs_key(bfv, gadget, secret_key, n + 1)
        noises = []
        for _ in range(4):
            ct = substitute(ct, evk, gadget)
            noises.append(bfv.noise(ct, secret_key))
        growth = np.diff(noises)
        # Additive growth: the per-step increments stay the same order.
        assert np.all(np.abs(growth) < 10 * (noises[0] + 1))

    def test_wrong_gadget_length_rejected(self, ring, bfv, gadget, secret_key):
        from repro.errors import ParameterError
        from repro.he.subs import SubsKey

        evk = generate_subs_key(bfv, gadget, secret_key, 3)
        bad = SubsKey(r=3, a_rows=evk.a_rows[:-1], b_rows=evk.b_rows[:-1])
        ct = bfv.encrypt_zero(secret_key)
        with pytest.raises(ParameterError):
            substitute(ct, bad, gadget)
