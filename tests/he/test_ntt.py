"""NTT correctness: roundtrips and agreement with schoolbook convolution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.he import modmath
from repro.he.ntt import NttContext, naive_negacyclic_convolution

Q = modmath.special_primes(order=2 * 64, count=1)[0]


@pytest.fixture(scope="module")
def ctx():
    return NttContext(64, Q)


def test_forward_inverse_roundtrip(ctx):
    rng = np.random.default_rng(0)
    a = rng.integers(0, Q, size=64, dtype=np.int64)
    assert np.array_equal(ctx.inverse(ctx.forward(a)), a)


def test_inverse_forward_roundtrip(ctx):
    rng = np.random.default_rng(1)
    a = rng.integers(0, Q, size=64, dtype=np.int64)
    assert np.array_equal(ctx.forward(ctx.inverse(a)), a)


def test_constant_polynomial_transforms_to_constant(ctx):
    a = np.zeros(64, dtype=np.int64)
    a[0] = 7
    assert np.all(ctx.forward(a) == 7)


def test_convolution_matches_schoolbook(ctx):
    rng = np.random.default_rng(2)
    a = rng.integers(0, Q, size=64, dtype=np.int64)
    b = rng.integers(0, Q, size=64, dtype=np.int64)
    fast = ctx.negacyclic_convolution(a, b)
    slow = naive_negacyclic_convolution(a, b, Q)
    assert np.array_equal(fast, slow)


def test_negacyclic_wraparound_sign():
    """X^(n-1) * X = -1 in the negacyclic ring."""
    n = 64
    ctx = NttContext(n, Q)
    a = np.zeros(n, dtype=np.int64)
    b = np.zeros(n, dtype=np.int64)
    a[n - 1] = 1
    b[1] = 1
    out = ctx.negacyclic_convolution(a, b)
    expected = np.zeros(n, dtype=np.int64)
    expected[0] = Q - 1
    assert np.array_equal(out, expected)


def test_rejects_non_ntt_friendly_modulus():
    from repro.errors import ParameterError

    with pytest.raises(ParameterError):
        NttContext(64, 97)  # 97 - 1 not divisible by 128


def test_rejects_wrong_length(ctx):
    from repro.errors import ParameterError

    with pytest.raises(ParameterError):
        ctx.forward(np.zeros(32, dtype=np.int64))


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=Q - 1), min_size=32, max_size=32))
def test_roundtrip_property(coeffs):
    ctx = NttContext(32, Q)
    a = np.array(coeffs, dtype=np.int64)
    assert np.array_equal(ctx.inverse(ctx.forward(a)), a)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=Q - 1), min_size=16, max_size=16),
    st.lists(st.integers(min_value=0, max_value=Q - 1), min_size=16, max_size=16),
)
def test_convolution_property(a, b):
    ctx = NttContext(16, Q)
    a = np.array(a, dtype=np.int64)
    b = np.array(b, dtype=np.int64)
    assert np.array_equal(
        ctx.negacyclic_convolution(a, b), naive_negacyclic_convolution(a, b, Q)
    )


def test_linearity_of_forward(ctx):
    rng = np.random.default_rng(3)
    a = rng.integers(0, Q, size=64, dtype=np.int64)
    b = rng.integers(0, Q, size=64, dtype=np.int64)
    lhs = ctx.forward((a + b) % Q)
    rhs = (ctx.forward(a) + ctx.forward(b)) % Q
    assert np.array_equal(lhs, rhs)
