"""NTT correctness: roundtrips and agreement with schoolbook convolution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.he import modmath
from repro.he.ntt import (
    NttContext,
    _object_negacyclic_convolution,
    naive_negacyclic_convolution,
)

Q = modmath.special_primes(order=2 * 64, count=1)[0]


@pytest.fixture(scope="module")
def ctx():
    return NttContext(64, Q)


def test_forward_inverse_roundtrip(ctx):
    rng = np.random.default_rng(0)
    a = rng.integers(0, Q, size=64, dtype=np.int64)
    assert np.array_equal(ctx.inverse(ctx.forward(a)), a)


def test_inverse_forward_roundtrip(ctx):
    rng = np.random.default_rng(1)
    a = rng.integers(0, Q, size=64, dtype=np.int64)
    assert np.array_equal(ctx.forward(ctx.inverse(a)), a)


def test_constant_polynomial_transforms_to_constant(ctx):
    a = np.zeros(64, dtype=np.int64)
    a[0] = 7
    assert np.all(ctx.forward(a) == 7)


def test_convolution_matches_schoolbook(ctx):
    rng = np.random.default_rng(2)
    a = rng.integers(0, Q, size=64, dtype=np.int64)
    b = rng.integers(0, Q, size=64, dtype=np.int64)
    fast = ctx.negacyclic_convolution(a, b)
    slow = naive_negacyclic_convolution(a, b, Q)
    assert np.array_equal(fast, slow)


def test_negacyclic_wraparound_sign():
    """X^(n-1) * X = -1 in the negacyclic ring."""
    n = 64
    ctx = NttContext(n, Q)
    a = np.zeros(n, dtype=np.int64)
    b = np.zeros(n, dtype=np.int64)
    a[n - 1] = 1
    b[1] = 1
    out = ctx.negacyclic_convolution(a, b)
    expected = np.zeros(n, dtype=np.int64)
    expected[0] = Q - 1
    assert np.array_equal(out, expected)


def test_rejects_non_ntt_friendly_modulus():
    from repro.errors import ParameterError

    with pytest.raises(ParameterError):
        NttContext(64, 97)  # 97 - 1 not divisible by 128


def test_rejects_wrong_length(ctx):
    from repro.errors import ParameterError

    with pytest.raises(ParameterError):
        ctx.forward(np.zeros(32, dtype=np.int64))


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=Q - 1), min_size=32, max_size=32))
def test_roundtrip_property(coeffs):
    ctx = NttContext(32, Q)
    a = np.array(coeffs, dtype=np.int64)
    assert np.array_equal(ctx.inverse(ctx.forward(a)), a)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=Q - 1), min_size=16, max_size=16),
    st.lists(st.integers(min_value=0, max_value=Q - 1), min_size=16, max_size=16),
)
def test_convolution_property(a, b):
    ctx = NttContext(16, Q)
    a = np.array(a, dtype=np.int64)
    b = np.array(b, dtype=np.int64)
    assert np.array_equal(
        ctx.negacyclic_convolution(a, b), naive_negacyclic_convolution(a, b, Q)
    )


def test_vectorized_matches_object_and_ntt(ctx):
    """The chunked int64 path agrees with exact arithmetic and the NTT."""
    rng = np.random.default_rng(7)
    a = rng.integers(0, Q, size=64, dtype=np.int64)
    b = rng.integers(0, Q, size=64, dtype=np.int64)
    vectorized = naive_negacyclic_convolution(a, b, Q)
    exact = _object_negacyclic_convolution(a, b, Q)
    assert np.array_equal(vectorized, exact)
    assert np.array_equal(vectorized, ctx.negacyclic_convolution(a, b))


def test_vectorized_worst_case_coefficients():
    """All-(q-1) inputs maximize every partial sum — no int64 wraparound."""
    n = 128
    a = np.full(n, Q - 1, dtype=np.int64)
    assert np.array_equal(
        naive_negacyclic_convolution(a, a, Q),
        _object_negacyclic_convolution(a, a, Q),
    )


def test_large_modulus_falls_back_to_object_path():
    """A modulus whose squared products could overflow int64 still works."""
    q = (1 << 40) + 1  # chunk bound (2^62 / (q-1)^2) < 1 -> object fallback
    rng = np.random.default_rng(8)
    a = rng.integers(0, q, size=32).astype(object)
    b = rng.integers(0, q, size=32).astype(object)
    assert np.array_equal(
        naive_negacyclic_convolution(a, b, q),
        _object_negacyclic_convolution(a, b, q),
    )


def test_unreduced_huge_coefficients_still_reduce_correctly():
    """Inputs beyond int64 (not pre-reduced mod q) keep the old contract."""
    a = [2**64 + 3, 1]
    b = [1, 0]
    out = naive_negacyclic_convolution(a, b, Q)
    assert out[0] == (2**64 + 3) % Q
    assert out[1] == 1


def test_naive_rejects_length_mismatch():
    from repro.errors import ParameterError

    with pytest.raises(ParameterError):
        naive_negacyclic_convolution(np.zeros(8), np.zeros(16), Q)


def test_linearity_of_forward(ctx):
    rng = np.random.default_rng(3)
    a = rng.integers(0, Q, size=64, dtype=np.int64)
    b = rng.integers(0, Q, size=64, dtype=np.int64)
    lhs = ctx.forward((a + b) % Q)
    rhs = (ctx.forward(a) + ctx.forward(b)) % Q
    assert np.array_equal(lhs, rhs)
