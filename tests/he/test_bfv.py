"""BFV encryption: roundtrips, homomorphic linearity, noise accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.he.bfv import BfvCiphertext, BfvContext, SecretKey
from repro.he.poly import Domain, RingContext
from repro.he.sampling import Sampler
from repro.params import PirParams


def _random_plain(params, rng):
    return rng.integers(0, params.plain_modulus, size=params.n, dtype=np.int64)


class TestEncryptDecrypt:
    def test_roundtrip(self, ring, bfv, secret_key):
        rng = np.random.default_rng(0)
        m = _random_plain(ring.params, rng)
        ct = bfv.encrypt(m, secret_key)
        assert np.array_equal(bfv.decrypt(ct, secret_key), m)

    def test_zero_roundtrip(self, ring, bfv, secret_key):
        ct = bfv.encrypt(np.zeros(ring.n, dtype=np.int64), secret_key)
        assert np.all(bfv.decrypt(ct, secret_key) == 0)

    def test_encrypt_zero_helper(self, ring, bfv, secret_key):
        ct = bfv.encrypt_zero(secret_key)
        assert np.all(bfv.decrypt(ct, secret_key) == 0)

    def test_max_plaintext_value(self, ring, bfv, secret_key):
        p = ring.params.plain_modulus
        m = np.full(ring.n, p - 1, dtype=np.int64)
        ct = bfv.encrypt(m, secret_key)
        assert np.array_equal(bfv.decrypt(ct, secret_key), m)

    def test_fresh_noise_is_small(self, ring, bfv, secret_key):
        ct = bfv.encrypt_zero(secret_key)
        assert bfv.noise(ct, secret_key) < 64  # ~6 sigma with sigma=3.2
        assert bfv.noise_budget_bits(ct, secret_key) > 10

    def test_different_keys_fail_to_decrypt(self, ring, bfv, sampler):
        key1 = SecretKey.generate(ring, sampler)
        key2 = SecretKey.generate(ring, sampler)
        rng = np.random.default_rng(1)
        m = _random_plain(ring.params, rng)
        ct = bfv.encrypt(m, key1)
        assert not np.array_equal(bfv.decrypt(ct, key2), m)


class TestHomomorphicOps:
    def test_addition(self, ring, bfv, secret_key):
        rng = np.random.default_rng(2)
        p = ring.params.plain_modulus
        m1, m2 = _random_plain(ring.params, rng), _random_plain(ring.params, rng)
        ct = bfv.encrypt(m1, secret_key) + bfv.encrypt(m2, secret_key)
        assert np.array_equal(bfv.decrypt(ct, secret_key), (m1 + m2) % p)

    def test_subtraction(self, ring, bfv, secret_key):
        rng = np.random.default_rng(3)
        p = ring.params.plain_modulus
        m1, m2 = _random_plain(ring.params, rng), _random_plain(ring.params, rng)
        ct = bfv.encrypt(m1, secret_key) - bfv.encrypt(m2, secret_key)
        assert np.array_equal(bfv.decrypt(ct, secret_key), (m1 - m2) % p)

    def test_negation(self, ring, bfv, secret_key):
        rng = np.random.default_rng(4)
        p = ring.params.plain_modulus
        m = _random_plain(ring.params, rng)
        ct = -bfv.encrypt(m, secret_key)
        assert np.array_equal(bfv.decrypt(ct, secret_key), (-m) % p)

    def test_plain_mul(self, ring, bfv, secret_key):
        """Z * Enc(Y) -> Enc(Z*Y): the RowSel primitive."""
        from repro.he.ntt import naive_negacyclic_convolution

        rng = np.random.default_rng(5)
        p = ring.params.plain_modulus
        m = rng.integers(0, p, size=ring.n, dtype=np.int64)
        z = rng.integers(0, 50, size=ring.n, dtype=np.int64)  # small: noise * |z|
        ct = bfv.encrypt(m, secret_key).plain_mul(bfv.encode_plain(z))
        expected = naive_negacyclic_convolution(m, z, p)
        assert np.array_equal(bfv.decrypt(ct, secret_key), expected)

    def test_monomial_mul(self, ring, bfv, secret_key):
        rng = np.random.default_rng(6)
        m = _random_plain(ring.params, rng)
        ct = bfv.encrypt(m, secret_key).monomial_mul(1)
        dec = bfv.decrypt(ct, secret_key)
        p = ring.params.plain_modulus
        expected = np.roll(m, 1)
        expected[0] = (-m[-1]) % p
        assert np.array_equal(dec, expected)

    def test_scalar_mul(self, ring, bfv, secret_key):
        rng = np.random.default_rng(7)
        p = ring.params.plain_modulus
        m = _random_plain(ring.params, rng)
        ct = bfv.encrypt(m, secret_key).scalar_mul(3)
        assert np.array_equal(bfv.decrypt(ct, secret_key), (3 * m) % p)

    def test_linearity_chain(self, ring, bfv, secret_key):
        """Eq. 1 in miniature: sum of plaintext-weighted encryptions of bits."""
        rng = np.random.default_rng(8)
        p = ring.params.plain_modulus
        weights = [rng.integers(0, 40, size=ring.n, dtype=np.int64) for _ in range(4)]
        sel = 2
        cts = [
            bfv.encrypt(np.full(ring.n, int(i == sel), dtype=np.int64) * 0 + (1 if i == sel else 0) * np.eye(1, ring.n, 0, dtype=np.int64)[0], secret_key)
            for i in range(4)
        ]
        acc = cts[0].plain_mul(bfv.encode_plain(weights[0]))
        for w, ct in zip(weights[1:], cts[1:]):
            acc = acc + ct.plain_mul(bfv.encode_plain(w))
        assert np.array_equal(bfv.decrypt(acc, secret_key), weights[sel] % p)


class TestValidation:
    def test_ciphertext_requires_ntt_domain(self, ring):
        a = ring.zero(Domain.COEFF)
        with pytest.raises(ParameterError):
            BfvCiphertext(a, a)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=65536), st.integers(min_value=0, max_value=65536))
def test_addition_property(v1, v2):
    params = PirParams.small(n=64, d0=4, num_dims=1)
    ring = RingContext(params)
    sampler = Sampler(ring, seed=v1 * 65537 + v2)
    bfv = BfvContext(ring, sampler)
    key = SecretKey.generate(ring, sampler)
    p = params.plain_modulus
    m1 = np.full(ring.n, v1 % p, dtype=np.int64)
    m2 = np.full(ring.n, v2 % p, dtype=np.int64)
    ct = bfv.encrypt(m1, key) + bfv.encrypt(m2, key)
    assert np.array_equal(bfv.decrypt(ct, key), (m1 + m2) % p)
