"""Response modulus switching and public-key BFV (protocol extensions)."""

import numpy as np
import pytest

from repro.errors import NoiseOverflowError, ParameterError
from repro.he.modswitch import (
    ModulusSwitcher,
    min_moduli_for_noise,
    switching_noise_bound,
)
from repro.he.publickey import PublicKey, encrypt_public
from repro.pir.database import PirDatabase
from repro.pir.protocol import PirProtocol


class TestModulusSwitch:
    def test_switched_ciphertext_still_decrypts(self, ring, bfv, secret_key):
        rng = np.random.default_rng(0)
        m = rng.integers(0, ring.params.plain_modulus, size=ring.n, dtype=np.int64)
        ct = bfv.encrypt(m, secret_key)
        switcher = ModulusSwitcher(ring, num_moduli=2)
        switched = switcher.switch(ct)
        assert np.array_equal(switcher.decrypt(switched, secret_key.coeffs), m)

    def test_single_modulus_basis(self, ring, bfv, secret_key):
        rng = np.random.default_rng(1)
        m = rng.integers(0, ring.params.plain_modulus, size=ring.n, dtype=np.int64)
        ct = bfv.encrypt(m, secret_key)
        switcher = ModulusSwitcher(ring, num_moduli=1)
        assert np.array_equal(
            switcher.decrypt(switcher.switch(ct), secret_key.coeffs), m
        )

    def test_compression_ratio(self, ring, bfv, secret_key):
        ct = bfv.encrypt_zero(secret_key)
        switcher = ModulusSwitcher(ring, num_moduli=1)
        switched = switcher.switch(ct)
        full = ring.params.ct_bytes
        assert switched.size_bytes(ring.params) == full // ring.params.rns_count
        assert switcher.compression_ratio == ring.params.rns_count

    def test_noise_scales_down_with_modulus(self, ring, bfv, secret_key):
        """Switching preserves the noise-to-Δ ratio up to rounding."""
        rng = np.random.default_rng(2)
        m = rng.integers(0, ring.params.plain_modulus, size=ring.n, dtype=np.int64)
        ct = bfv.encrypt(m, secret_key)
        noise_before = bfv.noise(ct, secret_key)
        switcher = ModulusSwitcher(ring, num_moduli=2)
        switched = switcher.switch(ct)
        noise_after = switcher.noise_after_switch(switched, secret_key.coeffs, m)
        scale = switcher.small_params.q / ring.params.q
        bound = noise_before * scale + 4 * switching_noise_bound(ring.params, 2)
        assert noise_after <= bound

    def test_invalid_basis_rejected(self, ring):
        with pytest.raises(ParameterError):
            ModulusSwitcher(ring, num_moduli=0)
        with pytest.raises(ParameterError):
            ModulusSwitcher(ring, num_moduli=ring.params.rns_count)

    def test_min_moduli_for_noise(self, small_params):
        # One ~2^27 modulus leaves Δ'/2 ≈ 2^10 < the ~2P Δ-mismatch bound,
        # so the safe minimum basis for P = 2^16 is two moduli.
        assert min_moduli_for_noise(small_params, 100.0) == 2
        huge = small_params.q / 3.0
        with pytest.raises(NoiseOverflowError):
            min_moduli_for_noise(small_params, huge)

    def test_min_moduli_monotone(self, small_params):
        small = min_moduli_for_noise(small_params, 10.0)
        large = min_moduli_for_noise(small_params, 2.0**40)
        assert small <= large


class TestCompressedRetrieval:
    def test_end_to_end_compressed(self, small_params):
        db = PirDatabase.random(small_params, num_records=32, record_bytes=64, seed=6)
        protocol = PirProtocol(small_params, db, seed=7)
        for index in (0, 13, 31):
            assert protocol.retrieve_compressed(index) == db.record(index)

    def test_response_smaller_than_plain(self, small_params):
        db = PirDatabase.random(small_params, num_records=32, record_bytes=64, seed=8)
        protocol = PirProtocol(small_params, db, seed=9)
        protocol.retrieve(5)
        plain_bytes = protocol.transcript.response_bytes
        protocol.retrieve_compressed(5)
        compressed_bytes = protocol.transcript.response_bytes - plain_bytes
        assert compressed_bytes < plain_bytes

    def test_explicit_basis(self, small_params):
        db = PirDatabase.random(small_params, num_records=32, record_bytes=64, seed=10)
        protocol = PirProtocol(small_params, db, seed=11)
        assert protocol.retrieve_compressed(17, num_moduli=2) == db.record(17)


class TestPublicKeyEncryption:
    def test_roundtrip(self, ring, bfv, secret_key):
        pk = PublicKey.generate(bfv, secret_key)
        rng = np.random.default_rng(3)
        m = rng.integers(0, ring.params.plain_modulus, size=ring.n, dtype=np.int64)
        ct = encrypt_public(bfv, pk, m)
        assert np.array_equal(bfv.decrypt(ct, secret_key), m)

    def test_noise_larger_than_secret_key_but_bounded(self, ring, bfv, secret_key):
        pk = PublicKey.generate(bfv, secret_key)
        m = np.zeros(ring.n, dtype=np.int64)
        sk_noise = bfv.noise(bfv.encrypt(m, secret_key), secret_key)
        pk_noise = bfv.noise(encrypt_public(bfv, pk, m), secret_key)
        assert pk_noise > sk_noise  # u*e + e1*s + e2 vs a single e
        assert pk_noise < 1000 * sk_noise  # still tiny against Δ

    def test_homomorphic_ops_work_on_public_encryptions(
        self, ring, bfv, gadget, secret_key
    ):
        """The PIR pipeline is oblivious to how the query was encrypted."""
        from repro.he.rgsw import external_product, rgsw_encrypt

        pk = PublicKey.generate(bfv, secret_key)
        rng = np.random.default_rng(4)
        m = rng.integers(0, ring.params.plain_modulus, size=ring.n, dtype=np.int64)
        ct = encrypt_public(bfv, pk, m)
        rgsw = rgsw_encrypt(bfv, gadget, 1, secret_key)
        out = external_product(rgsw, ct, gadget)
        assert np.array_equal(bfv.decrypt(out, secret_key), m)

    def test_two_encryptions_differ(self, ring, bfv, secret_key):
        pk = PublicKey.generate(bfv, secret_key)
        m = np.ones(ring.n, dtype=np.int64)
        c1 = encrypt_public(bfv, pk, m)
        c2 = encrypt_public(bfv, pk, m)
        assert not np.array_equal(c1.a.residues, c2.a.residues)
