"""Gadget decomposition, RGSW external products, and CMUX selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.he.bfv import BfvContext, SecretKey
from repro.he.gadget import Gadget
from repro.he.poly import Domain, RingContext
from repro.he.rgsw import RgswCiphertext, cmux, external_product, rgsw_encrypt
from repro.he.sampling import Sampler
from repro.params import PirParams


class TestGadget:
    def test_decompose_recompose(self, ring, gadget):
        sampler = Sampler(ring, seed=7)
        poly = sampler.uniform_poly(Domain.COEFF)
        digits = gadget.decompose(poly)
        assert len(digits) == gadget.length
        back = gadget.recompose(digits)
        assert np.array_equal(back.residues, poly.residues)

    def test_digits_are_small(self, ring, gadget):
        sampler = Sampler(ring, seed=8)
        poly = sampler.uniform_poly(Domain.COEFF)
        for digit in gadget.decompose(poly):
            # Every residue row holds the same digit value, < z.
            assert digit.residues.max() < gadget.base
            assert np.array_equal(digit.residues[0], digit.residues[-1])

    def test_decompose_accepts_ntt_input(self, ring, gadget):
        sampler = Sampler(ring, seed=9)
        poly = sampler.uniform_poly(Domain.COEFF)
        via_ntt = gadget.decompose(poly.to_ntt())
        direct = gadget.decompose(poly)
        for a, b in zip(via_ntt, direct):
            assert np.array_equal(a.residues, b.residues)

    def test_recompose_wrong_length_rejected(self, ring, gadget):
        with pytest.raises(ParameterError):
            gadget.recompose([ring.zero(Domain.COEFF)])

    def test_zero_decomposes_to_zero(self, ring, gadget):
        for digit in gadget.decompose(ring.zero(Domain.COEFF)):
            assert not digit.residues.any()


class TestRgsw:
    def test_external_product_selects_bit_one(self, ring, bfv, gadget, secret_key):
        rng = np.random.default_rng(10)
        m = rng.integers(0, ring.params.plain_modulus, size=ring.n, dtype=np.int64)
        ct = bfv.encrypt(m, secret_key)
        rgsw_one = rgsw_encrypt(bfv, gadget, 1, secret_key)
        out = external_product(rgsw_one, ct, gadget)
        assert np.array_equal(bfv.decrypt(out, secret_key), m)

    def test_external_product_kills_bit_zero(self, ring, bfv, gadget, secret_key):
        rng = np.random.default_rng(11)
        m = rng.integers(0, ring.params.plain_modulus, size=ring.n, dtype=np.int64)
        ct = bfv.encrypt(m, secret_key)
        rgsw_zero = rgsw_encrypt(bfv, gadget, 0, secret_key)
        out = external_product(rgsw_zero, ct, gadget)
        assert np.all(bfv.decrypt(out, secret_key) == 0)

    def test_external_product_error_is_additive(self, ring, bfv, gadget, secret_key):
        """Section II-C: noise grows additively, not multiplicatively."""
        rng = np.random.default_rng(12)
        m = rng.integers(0, ring.params.plain_modulus, size=ring.n, dtype=np.int64)
        ct = bfv.encrypt(m, secret_key)
        rgsw_one = rgsw_encrypt(bfv, gadget, 1, secret_key)
        noise_before = bfv.noise(ct, secret_key)
        out = ct
        per_step = []
        for _ in range(3):
            prev = bfv.noise(out, secret_key)
            out = external_product(rgsw_one, out, gadget)
            per_step.append(bfv.noise(out, secret_key) - prev)
        # Additive: each application adds about the same absolute noise.
        assert max(per_step) < 4 * (abs(min(per_step)) + 1) + 64 * noise_before
        assert np.array_equal(bfv.decrypt(out, secret_key), m)

    def test_cmux(self, ring, bfv, gadget, secret_key):
        rng = np.random.default_rng(13)
        p = ring.params.plain_modulus
        m0 = rng.integers(0, p, size=ring.n, dtype=np.int64)
        m1 = rng.integers(0, p, size=ring.n, dtype=np.int64)
        ct0 = bfv.encrypt(m0, secret_key)
        ct1 = bfv.encrypt(m1, secret_key)
        for bit, expected in ((0, m0), (1, m1)):
            rgsw = rgsw_encrypt(bfv, gadget, bit, secret_key)
            out = cmux(rgsw, ct0, ct1, gadget)
            assert np.array_equal(bfv.decrypt(out, secret_key), expected)

    def test_row_count_validation(self, ring, bfv, gadget, secret_key):
        rgsw = rgsw_encrypt(bfv, gadget, 1, secret_key)
        bad = RgswCiphertext(rgsw.a_rows[:-1], rgsw.b_rows[:-1])
        ct = bfv.encrypt_zero(secret_key)
        with pytest.raises(ParameterError):
            external_product(bad, ct, gadget)

    def test_chained_cmux_tree(self, ring, bfv, gadget, secret_key):
        """A 2-level ColTor-style tournament selects the right leaf."""
        rng = np.random.default_rng(14)
        p = ring.params.plain_modulus
        leaves = [rng.integers(0, p, size=ring.n, dtype=np.int64) for _ in range(4)]
        cts = [bfv.encrypt(m, secret_key) for m in leaves]
        for target in range(4):
            bits = [(target >> k) & 1 for k in range(2)]
            rgsws = [rgsw_encrypt(bfv, gadget, b, secret_key) for b in bits]
            row = [cmux(rgsws[0], cts[i], cts[i + 1], gadget) for i in (0, 2)]
            final = cmux(rgsws[1], row[0], row[1], gadget)
            assert np.array_equal(bfv.decrypt(final, secret_key), leaves[target])


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=1), st.integers(min_value=0, max_value=2**16 - 1))
def test_external_product_property(bit, value):
    params = PirParams.small(n=64, d0=4, num_dims=1)
    ring = RingContext(params)
    sampler = Sampler(ring, seed=bit * 100003 + value)
    bfv = BfvContext(ring, sampler)
    gadget = Gadget(ring)
    key = SecretKey.generate(ring, sampler)
    m = np.full(ring.n, value % params.plain_modulus, dtype=np.int64)
    ct = bfv.encrypt(m, key)
    rgsw = rgsw_encrypt(bfv, gadget, bit, key)
    out = external_product(rgsw, ct, gadget)
    expected = m if bit else np.zeros_like(m)
    assert np.array_equal(bfv.decrypt(out, key), expected)
