"""Property tests pinning the Barrett/Montgomery forms against plain ``%``.

The planned backend's exactness rests entirely on these two reductions
(:mod:`repro.he.modred`): every GEMM-NTT accumulator is finished by
``barrett_reduce``, so an off-by-one anywhere in the float/int64 dance
would corrupt transcripts silently.  Hypothesis drives both forms across
the full :class:`~repro.params.PirParams` modulus range *and* the
adversarial edges — accumulators hugging the float64-exact bound, moduli
just below the Montgomery/Barrett limits — where a rounding bug would
hide from the fixed-seed pipeline tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.he.modred import (
    FLOAT64_EXACT_MAX,
    MontgomeryContext,
    barrett_reduce,
    barrett_reduce_nonneg,
)
from repro.params import PirParams

#: Every NTT modulus the parameter sets can produce, plus edge moduli:
#: tiny, the largest odd modulus under the Montgomery 2^31 bound, and a
#: Barrett-only modulus just under the float64-exact bound.
PIR_MODULI = sorted(set(PirParams.paper().moduli) | set(PirParams.small().moduli))
EDGE_MODULI = [3, 17, (1 << 31) - 1, (1 << 52) + 1]

#: Accumulators the GEMM plans feed Barrett: anywhere in the exact range,
#: including negative values (the hi/lo split transform is canonical but
#: signed inputs must still reduce correctly).
accumulators = st.integers(
    min_value=-(FLOAT64_EXACT_MAX - 1), max_value=FLOAT64_EXACT_MAX - 1
)


class TestBarrett:
    @given(
        acc=st.lists(accumulators, min_size=1, max_size=32),
        q=st.sampled_from(PIR_MODULI + EDGE_MODULI),
    )
    @settings(max_examples=300, deadline=None)
    def test_matches_plain_modulo(self, acc, q):
        arr = np.array(acc, dtype=np.float64)
        got = barrett_reduce(arr, q)
        want = np.array(acc, dtype=object) % q  # big-int oracle
        assert got.dtype == np.int64
        assert np.array_equal(got, want.astype(np.int64))

    @given(q=st.sampled_from(PIR_MODULI + EDGE_MODULI))
    @settings(max_examples=50, deadline=None)
    def test_exact_at_the_float64_bound(self, q):
        """The worst case: |acc| hugging 2^53 where float spacing is 2."""
        edge = FLOAT64_EXACT_MAX - 2  # largest even exactly-representable
        acc = np.array(
            [edge, -edge, edge - 1, -(edge - 1), q - 1, -(q - 1), 0],
            dtype=np.float64,
        )
        want = acc.astype(object).astype(int)
        got = barrett_reduce(acc, q)
        assert np.array_equal(got, np.array([v % q for v in want]))

    @given(
        acc=st.lists(accumulators, min_size=1, max_size=16),
        q=st.integers(min_value=2, max_value=FLOAT64_EXACT_MAX - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_moduli(self, acc, q):
        got = barrett_reduce(np.array(acc, dtype=np.float64), q)
        assert np.array_equal(got, np.array([v % q for v in acc]))

    def test_rejects_out_of_range_moduli(self):
        with pytest.raises(ParameterError, match="at least 2"):
            barrett_reduce(np.zeros(1), 1)
        with pytest.raises(ParameterError, match="float64-exact"):
            barrett_reduce(np.zeros(1), FLOAT64_EXACT_MAX)

    @given(
        acc=st.lists(accumulators, min_size=2, max_size=8),
        data=st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_array_moduli_match_per_modulus_calls(self, acc, data):
        """An (rns, 1)-style modulus column reduces like a scalar loop."""
        qs = data.draw(
            st.lists(
                st.sampled_from(PIR_MODULI + EDGE_MODULI),
                min_size=len(acc),
                max_size=len(acc),
            )
        )
        arr = np.array(acc, dtype=np.float64)[:, None]
        q_col = np.array(qs, dtype=np.int64)[:, None]
        got = barrett_reduce(arr, q_col)
        want = np.array(
            [barrett_reduce(np.array([a], dtype=np.float64), q)[0]
             for a, q in zip(acc, qs)]
        )
        assert np.array_equal(got[:, 0], want)

    def test_array_moduli_rejected_out_of_range(self):
        with pytest.raises(ParameterError, match="at least 2"):
            barrett_reduce(np.zeros((2, 1)), np.array([[5], [1]]))
        with pytest.raises(ParameterError, match="float64-exact"):
            barrett_reduce(
                np.zeros((2, 1)), np.array([[5], [FLOAT64_EXACT_MAX]])
            )


#: Non-negative accumulators for the biased-reciprocal fast path.
nonneg_accumulators = st.integers(min_value=0, max_value=FLOAT64_EXACT_MAX - 1)


class TestBarrettNonneg:
    @given(
        acc=st.lists(nonneg_accumulators, min_size=1, max_size=32),
        q=st.sampled_from(
            [m for m in PIR_MODULI + EDGE_MODULI if m >= (1 << 14)]
        ),
    )
    @settings(max_examples=300, deadline=None)
    def test_canonical_matches_plain_modulo(self, acc, q):
        got = barrett_reduce_nonneg(np.array(acc, dtype=np.float64), q)
        assert np.array_equal(got, np.array(acc, dtype=object) % q)

    @given(
        acc=st.lists(nonneg_accumulators, min_size=1, max_size=32),
        q=st.sampled_from(
            [m for m in PIR_MODULI + EDGE_MODULI if m >= (1 << 14)]
        ),
    )
    @settings(max_examples=300, deadline=None)
    def test_partial_is_congruent_and_below_2q(self, acc, q):
        """partial=True may stop in [0, 2q) but must stay congruent."""
        got = barrett_reduce_nonneg(
            np.array(acc, dtype=np.float64), q, partial=True
        )
        assert np.all(got >= 0) and np.all(got < 2 * q)
        assert np.array_equal(got % q, np.array(acc, dtype=object) % q)

    @given(q=st.sampled_from([m for m in PIR_MODULI if m >= (1 << 14)]))
    @settings(max_examples=50, deadline=None)
    def test_exact_at_the_float64_bound(self, q):
        edge = FLOAT64_EXACT_MAX - 2
        acc = np.array([edge, edge - 1, q - 1, q, 2 * q - 1, 0], dtype=np.float64)
        got = barrett_reduce_nonneg(acc, q)
        assert np.array_equal(got, np.array([int(v) % q for v in acc]))

    def test_rejects_out_of_range_moduli(self):
        with pytest.raises(ParameterError, match="2\\^14"):
            barrett_reduce_nonneg(np.zeros(1), (1 << 14) - 1)
        with pytest.raises(ParameterError, match="float64-exact"):
            barrett_reduce_nonneg(np.zeros(1), FLOAT64_EXACT_MAX)


#: Montgomery moduli: odd, in [3, 2^31).  Bias half the examples toward
#: the real NTT primes, half anywhere in range.
mont_moduli = st.one_of(
    st.sampled_from(PIR_MODULI),
    st.integers(min_value=1, max_value=(1 << 30) - 1).map(lambda k: 2 * k + 1),
)


class TestMontgomery:
    @given(
        q=mont_moduli,
        data=st.data(),
    )
    @settings(max_examples=300, deadline=None)
    def test_modmul_matches_plain_modulo(self, q, data):
        ctx = MontgomeryContext(q)
        residues = st.integers(min_value=0, max_value=q - 1)
        a = np.array(
            data.draw(st.lists(residues, min_size=1, max_size=16)), dtype=np.int64
        )
        b = np.array(
            data.draw(st.lists(residues, min_size=len(a), max_size=len(a))),
            dtype=np.int64,
        )
        assert np.array_equal(ctx.modmul(a, b), (a * b.astype(object)) % q)

    @given(q=mont_moduli)
    @settings(max_examples=100, deadline=None)
    def test_round_trip_is_identity(self, q):
        ctx = MontgomeryContext(q)
        x = np.array([0, 1, q // 2, q - 2, q - 1], dtype=np.int64)
        assert np.array_equal(ctx.from_mont(ctx.to_mont(x)), x)

    @given(q=mont_moduli, t=st.data())
    @settings(max_examples=200, deadline=None)
    def test_redc_in_domain(self, q, t):
        """REDC(t) == t * R^{-1} mod q for any t in [0, q*R)."""
        ctx = MontgomeryContext(q)
        vals = t.draw(
            st.lists(
                st.integers(min_value=0, max_value=q * ctx.r - 1),
                min_size=1,
                max_size=8,
            )
        )
        r_inv = pow(ctx.r, -1, q)
        got = ctx.reduce(np.array(vals, dtype=np.uint64))
        assert np.array_equal(got, np.array([(v * r_inv) % q for v in vals]))

    def test_rejects_unusable_moduli(self):
        for bad in (1, 2, 4, 65536, 1 << 31, (1 << 31) + 1):
            with pytest.raises(ParameterError):
                MontgomeryContext(bad)
