"""Noise model (Section II-C): estimates bound measurements; errors additive."""

import pytest

from repro.he import noise
from repro.params import PirParams
from repro.pir.database import PirDatabase
from repro.pir.protocol import PirProtocol


class TestEstimates:
    def test_estimates_are_ordered(self, small_params):
        est = noise.estimate(small_params)
        assert 0 < est.fresh < est.after_expand < est.after_coltor
        assert est.after_rowsel <= est.after_coltor

    def test_functional_params_close(self):
        """The runnable functional preset closes with comfortable margin."""
        params = PirParams.functional()
        assert noise.tightness_bits(params) > 8.0

    def test_paper_params_margin_is_tight_but_near(self):
        """Table I with a single base is within a few bits of closing.

        OnionPIR-family implementations use a finer base for expansion evks
        (hence the z/ℓ ranges in Table I); we document the single-base margin.
        """
        params = PirParams.paper()
        margin = noise.tightness_bits(params)
        assert -8.0 < margin < 8.0

    def test_finer_expansion_base_closes_paper_params(self):
        """z = 2^14, ℓ = 8 (within Table I's quoted ranges) closes the budget."""
        from dataclasses import replace

        params = replace(PirParams.paper(), gadget_base_log2=14, gadget_len=8)
        assert noise.tightness_bits(params) > 4.0

    def test_error_stable_in_db_size(self):
        """Section II-C: error variance grows only linearly in d (log DB size)."""
        base = PirParams.small(num_dims=2)
        big = PirParams.small(num_dims=6)
        est_base = noise.estimate(base)
        est_big = noise.estimate(big)
        var_delta = est_big.after_coltor**2 - est_base.after_coltor**2
        # rel=1e-2: the subtraction of two large variances loses precision
        assert var_delta == pytest.approx(4 * est_base.per_external_product**2, rel=1e-2)


class TestMeasuredNoise:
    def test_response_noise_within_estimate(self, small_params):
        db = PirDatabase.random(small_params, num_records=32, record_bytes=64, seed=0)
        protocol = PirProtocol(small_params, db, seed=1)
        result = protocol.retrieve(13)
        client = protocol.client
        measured = max(
            client.bfv.noise(ct, client.secret_key) for ct in result.response.plane_cts
        )
        est = noise.estimate(small_params)
        assert measured < est.response_bound()
        assert noise.decryptable(small_params, measured)

    def test_noise_budget_positive_after_full_pipeline(self, small_params):
        db = PirDatabase.random(small_params, num_records=32, record_bytes=64, seed=2)
        protocol = PirProtocol(small_params, db, seed=3)
        result = protocol.retrieve(7)
        client = protocol.client
        for ct in result.response.plane_cts:
            assert client.bfv.noise_budget_bits(ct, client.secret_key) > 1.0
