"""Scale-up placement, cluster RLP, and capacity rules (Section V)."""

import pytest

from repro.arch.config import GB
from repro.errors import ParameterError
from repro.params import PirParams
from repro.systems import DbPlacement, IveCluster, ScaleUpSystem


def params_for(gb: int) -> PirParams:
    import math

    dims = int(math.log2(gb * GB / (16 * 1024) / 256))
    return PirParams.paper(d0=256, num_dims=dims)


class TestScaleUp:
    def test_small_db_lives_in_hbm(self):
        system = ScaleUpSystem(params_for(16))
        assert system.placement is DbPlacement.HBM

    def test_large_db_offloads_to_lpddr(self):
        system = ScaleUpSystem(params_for(128))
        assert system.placement is DbPlacement.LPDDR

    def test_oversized_db_rejected(self):
        with pytest.raises(ParameterError):
            ScaleUpSystem(params_for(256))

    def test_max_raw_db_matches_paper(self):
        """Section V: one IVE system supports up to ~128 GB of raw DB."""
        system = ScaleUpSystem(params_for(16))
        assert 120 * GB < system.max_raw_db_bytes < 160 * GB

    def test_lpddr_saturates_at_larger_batch(self):
        """Fig. 13d: LPDDR systems need batch ~128 to saturate."""
        hbm = ScaleUpSystem(params_for(16))
        lpddr = ScaleUpSystem(params_for(128))
        assert hbm.saturation_batch() <= lpddr.saturation_batch()

    def test_hbm_faster_than_lpddr_at_small_batch(self):
        hbm = ScaleUpSystem(params_for(16))
        # Same geometry, forced LPDDR via a bigger twin on the same DB size
        lpddr = ScaleUpSystem(params_for(128))
        # At batch 1, latency is dominated by the DB stream: LPDDR's larger
        # DB and lower bandwidth must be slower than HBM's smaller DB by
        # more than the size ratio alone.
        size_ratio = 128 / 16
        t_ratio = lpddr.latency(1).total_s / hbm.latency(1).total_s
        assert t_ratio > size_ratio * 2  # 4x bandwidth gap on top of size

    def test_min_db_read_floor(self):
        system = ScaleUpSystem(params_for(16))
        # 16 GB raw -> 56 GB preprocessed over 2 TB/s HBM: ~27 ms.
        assert 0.02 < system.min_db_read_seconds() < 0.04


class TestCluster:
    def test_per_system_qps_times_db_size_constant(self):
        """Section VI-C: QPS x DB-size stays ~constant at saturation."""
        single = ScaleUpSystem(params_for(128))
        cluster = IveCluster(params_for(1024), 16)
        single_product = single.qps(128) * 128
        cluster_product = cluster.latency(128).per_system_qps * 1024
        assert cluster_product == pytest.approx(single_product, rel=0.35)

    def test_cluster_gather_overhead_negligible(self):
        """Fig. 13d: Comm.(Sys.<->Sys.) < 8% of end-to-end latency."""
        cluster = IveCluster(params_for(1024), 16)
        lat = cluster.latency(128)
        assert lat.gather_s / lat.total_s < 0.08

    def test_cluster_scales_nearly_linearly(self):
        """Doubling systems on the same DB nearly doubles throughput."""
        p = params_for(256)
        q8 = IveCluster(p, 8).qps(128)
        q16 = IveCluster(p, 16).qps(128)
        assert 1.5 < q16 / q8 <= 2.05

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ParameterError):
            IveCluster(params_for(128), 3)

    def test_too_many_systems_rejected(self):
        with pytest.raises(ParameterError):
            IveCluster(PirParams.paper(num_dims=2), 16)

    def test_paper_1tb_qps(self):
        """Fig. 13d: 1 TB DB on 16 systems -> ~9.89 QPS per system."""
        cluster = IveCluster(params_for(1024), 16)
        per_system = cluster.latency(128).per_system_qps
        assert 6.0 < per_system < 16.0

    def test_paper_128gb_qps(self):
        """Fig. 13d: 128 GB DB on one system -> ~79.9 QPS at batch 128."""
        system = ScaleUpSystem(params_for(128))
        assert 55.0 < system.qps(128) < 110.0
