"""Boundary behavior of the waiting-window dispatch rule (Section V)."""

import pytest

from repro.errors import ParameterError
from repro.systems.batching import BatchPolicy, window_from_db_read


class TestShouldDispatchBoundaries:
    def test_window_exactly_reached(self):
        policy = BatchPolicy(waiting_window_s=0.010, max_batch=8)
        assert not policy.should_dispatch(queued=1, oldest_wait_s=0.010 - 1e-9)
        assert policy.should_dispatch(queued=1, oldest_wait_s=0.010)

    def test_queue_exactly_max_batch(self):
        policy = BatchPolicy(waiting_window_s=1.0, max_batch=4)
        assert not policy.should_dispatch(queued=3, oldest_wait_s=0.0)
        assert policy.should_dispatch(queued=4, oldest_wait_s=0.0)
        assert policy.should_dispatch(queued=5, oldest_wait_s=0.0)

    def test_zero_window_dispatches_any_nonempty_queue(self):
        policy = BatchPolicy(waiting_window_s=0.0, max_batch=128)
        assert policy.should_dispatch(queued=1, oldest_wait_s=0.0)
        assert not policy.should_dispatch(queued=0, oldest_wait_s=0.0)

    def test_empty_queue_never_dispatches(self):
        policy = BatchPolicy(waiting_window_s=0.0, max_batch=1)
        assert not policy.should_dispatch(queued=0, oldest_wait_s=99.0)
        assert not policy.should_dispatch(queued=-1, oldest_wait_s=99.0)

    def test_max_batch_one_is_fifo(self):
        policy = BatchPolicy(waiting_window_s=5.0, max_batch=1)
        assert policy.should_dispatch(queued=1, oldest_wait_s=0.0)

    def test_rejects_negative_window(self):
        with pytest.raises(ParameterError):
            BatchPolicy(waiting_window_s=-0.001)

    def test_rejects_zero_max_batch(self):
        with pytest.raises(ParameterError):
            BatchPolicy(waiting_window_s=0.0, max_batch=0)


def test_window_from_db_read_is_identity():
    assert window_from_db_read(0.0037) == 0.0037
