"""Batch scheduler + Poisson queue simulation (Fig. 14b, Section VI-F)."""

import pytest

from repro.errors import ParameterError
from repro.systems import (
    BatchPolicy,
    break_even_rate,
    simulate_batching,
    simulate_fifo,
    window_from_db_read,
)


def linear_service(batch: int) -> float:
    """Toy service model: fixed overhead + per-query cost."""
    return 0.010 + 0.001 * batch


class TestPolicy:
    def test_dispatch_on_window_expiry(self):
        policy = BatchPolicy(waiting_window_s=0.03, max_batch=64)
        assert not policy.should_dispatch(queued=5, oldest_wait_s=0.01)
        assert policy.should_dispatch(queued=5, oldest_wait_s=0.03)

    def test_dispatch_on_full_batch(self):
        policy = BatchPolicy(waiting_window_s=0.03, max_batch=64)
        assert policy.should_dispatch(queued=64, oldest_wait_s=0.0)

    def test_no_dispatch_when_empty(self):
        policy = BatchPolicy(waiting_window_s=0.0, max_batch=64)
        assert not policy.should_dispatch(queued=0, oldest_wait_s=1.0)

    def test_invalid_policy(self):
        with pytest.raises(ParameterError):
            BatchPolicy(waiting_window_s=-1.0)
        with pytest.raises(ParameterError):
            BatchPolicy(waiting_window_s=0.1, max_batch=0)

    def test_window_from_db_read(self):
        assert window_from_db_read(0.027) == 0.027


class TestFifo:
    def test_light_load_latency_is_service_time(self):
        point = simulate_fifo(single_query_time=0.05, arrival_qps=0.5, seed=1)
        assert point.mean_latency_s == pytest.approx(0.05, rel=0.15)

    def test_overload_blows_up(self):
        """Past 1/service the queue grows without bound."""
        service = 0.05  # 20 QPS capacity
        light = simulate_fifo(service, arrival_qps=10, num_queries=3000, seed=2)
        heavy = simulate_fifo(service, arrival_qps=40, num_queries=3000, seed=2)
        assert heavy.mean_latency_s > 10 * light.mean_latency_s

    def test_latency_never_below_service(self):
        point = simulate_fifo(0.05, arrival_qps=15, seed=3)
        assert point.mean_latency_s >= 0.05


class TestBatching:
    def test_latency_bounded_by_window_plus_service(self):
        policy = BatchPolicy(waiting_window_s=0.03, max_batch=64)
        point = simulate_batching(linear_service, policy, arrival_qps=100, seed=4)
        worst_service = linear_service(64)
        assert point.p95_latency_s <= 0.03 + 2 * worst_service

    def test_mean_batch_grows_with_load(self):
        policy = BatchPolicy(waiting_window_s=0.03, max_batch=64)
        low = simulate_batching(linear_service, policy, arrival_qps=20, seed=5)
        high = simulate_batching(linear_service, policy, arrival_qps=400, seed=5)
        assert high.mean_batch > 2 * low.mean_batch

    def test_all_queries_served(self):
        policy = BatchPolicy(waiting_window_s=0.02, max_batch=32)
        point = simulate_batching(
            linear_service, policy, arrival_qps=50, num_queries=500, seed=6
        )
        assert point.served == 500

    def test_sustains_load_beyond_fifo_limit(self):
        """The Section VI-F claim: batching extends the stable region."""
        single = linear_service(1)  # 11 ms -> FIFO caps at ~90 QPS
        policy = BatchPolicy(waiting_window_s=0.02, max_batch=64)
        rate = 300.0  # far beyond FIFO capacity, well within batched capacity
        fifo = simulate_fifo(single, rate, num_queries=3000, seed=7)
        batched = simulate_batching(
            linear_service, policy, rate, num_queries=3000, seed=7
        )
        assert batched.mean_latency_s < fifo.mean_latency_s / 5

    def test_break_even_exists(self):
        policy = BatchPolicy(waiting_window_s=0.02, max_batch=64)
        rates = [2.0, 5.0, 20.0, 60.0, 120.0]
        batching = [
            simulate_batching(linear_service, policy, r, num_queries=800, seed=8)
            for r in rates
        ]
        fifo = [
            simulate_fifo(linear_service(1), r, num_queries=800, seed=8)
            for r in rates
        ]
        rate = break_even_rate(batching, fifo)
        assert rate is not None
        # At very light load FIFO wins (no waiting window).
        assert rate > rates[0]

    def test_invalid_rate_rejected(self):
        policy = BatchPolicy(waiting_window_s=0.02, max_batch=64)
        with pytest.raises(ParameterError):
            simulate_batching(linear_service, policy, arrival_qps=0)
        with pytest.raises(ParameterError):
            simulate_fifo(0.05, arrival_qps=-1)
