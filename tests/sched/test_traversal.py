"""Scheduling invariants: op-equivalence, capacity bounds, traffic ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.params import PirParams
from repro.sched import (
    ScheduleConfig,
    StepKind,
    Traversal,
    dcp_transient_bytes,
    max_subtree_depth,
    schedule_coltor,
    schedule_expand,
)

PAPER = PirParams.paper(d0=256, num_dims=11)  # the 8 GB Fig. 8 geometry
CAP_4MB = 4 << 20
CAP_2MB = 2 << 20

ALL_TRAVERSALS = [Traversal.BFS, Traversal.DFS, Traversal.HS_BFS, Traversal.HS_DFS]


def _cfg(traversal, cap=CAP_4MB, ro=False):
    return ScheduleConfig(capacity_bytes=cap, traversal=traversal, reduction_overlap=ro)


class TestOpEquivalence:
    """HS reorders scheduling but never changes the computed operations."""

    @pytest.mark.parametrize("traversal", ALL_TRAVERSALS)
    def test_coltor_node_count(self, traversal):
        sched = schedule_coltor(PAPER, _cfg(traversal))
        assert sched.num_compute_steps == (1 << PAPER.num_dims) - 1

    @pytest.mark.parametrize("traversal", ALL_TRAVERSALS)
    def test_coltor_level_multiset(self, traversal):
        """Each tree level contributes exactly its node count, any order."""
        sched = schedule_coltor(PAPER, _cfg(traversal))
        by_level = {}
        for step in sched.steps:
            by_level[step.level] = by_level.get(step.level, 0) + 1
        for level in range(PAPER.num_dims):
            assert by_level[level] == 1 << (PAPER.num_dims - level - 1)

    @pytest.mark.parametrize("traversal", ALL_TRAVERSALS)
    def test_expand_node_count(self, traversal):
        sched = schedule_expand(PAPER, _cfg(traversal))
        assert sched.num_compute_steps == PAPER.d0 - 1

    @pytest.mark.parametrize("traversal", ALL_TRAVERSALS)
    def test_expand_level_multiset(self, traversal):
        sched = schedule_expand(PAPER, _cfg(traversal))
        by_level = {}
        for step in sched.steps:
            by_level[step.level] = by_level.get(step.level, 0) + 1
        for level in range(PAPER.num_evks):
            assert by_level[level] == 1 << level

    @pytest.mark.parametrize("traversal", ALL_TRAVERSALS)
    def test_coltor_leaf_loads_complete(self, traversal):
        """Every policy must fetch all 2^d RowSel outputs exactly once."""
        sched = schedule_coltor(PAPER, _cfg(traversal))
        leaf_loads = sum(s.ct_loads for s in sched.steps if s.level == 0)
        assert leaf_loads == 1 << PAPER.num_dims


class TestTrafficOrdering:
    """The paper's Fig. 8 ordering: HS+RO <= HS <= min(BFS, DFS)."""

    def test_hs_beats_bfs_coltor(self):
        bfs = schedule_coltor(PAPER, _cfg(Traversal.BFS)).traffic().total_bytes
        hs = schedule_coltor(PAPER, _cfg(Traversal.HS_DFS)).traffic().total_bytes
        assert hs < bfs

    def test_hs_beats_bfs_expand(self):
        bfs = schedule_expand(PAPER, _cfg(Traversal.BFS)).traffic().total_bytes
        hs = schedule_expand(PAPER, _cfg(Traversal.HS_DFS)).traffic().total_bytes
        assert hs < bfs

    def test_ro_no_worse_than_plain_hs(self):
        plain = schedule_coltor(PAPER, _cfg(Traversal.HS_DFS)).traffic().total_bytes
        ro = (
            schedule_coltor(PAPER, _cfg(Traversal.HS_DFS, ro=True)).traffic().total_bytes
        )
        assert ro <= plain

    def test_dfs_thrashes_keys_in_coltor(self):
        """Fig. 7b: DFS reloads ct_RGSW, limiting its benefit."""
        bfs = schedule_coltor(PAPER, _cfg(Traversal.BFS)).traffic()
        dfs = schedule_coltor(PAPER, _cfg(Traversal.DFS)).traffic()
        assert dfs.key_load_bytes > bfs.key_load_bytes
        assert dfs.ct_load_bytes < bfs.ct_load_bytes

    def test_paper_reduction_ratios_ballpark(self):
        """Overall HS+RO reduction: paper reports 1.87x (Expand), 2.24x (ColTor)."""
        for builder, reported in (
            (schedule_expand, 1.87),
            (schedule_coltor, 2.24),
        ):
            bfs = builder(PAPER, _cfg(Traversal.BFS)).traffic().total_bytes
            best = builder(PAPER, _cfg(Traversal.HS_DFS, ro=True)).traffic().total_bytes
            ratio = bfs / best
            assert reported / 2 < ratio < reported * 2

    def test_smaller_capacity_never_reduces_traffic(self):
        for builder in (schedule_coltor, schedule_expand):
            big = builder(PAPER, _cfg(Traversal.HS_DFS, cap=CAP_4MB)).traffic()
            small = builder(PAPER, _cfg(Traversal.HS_DFS, cap=CAP_2MB)).traffic()
            assert small.total_bytes >= big.total_bytes


class TestSubtreeDepth:
    def test_paper_working_set_formulas(self):
        """Section IV-A: DFS subtrees fit deeper than BFS at equal capacity."""
        transient = dcp_transient_bytes(PAPER, StepKind.CMUX, reduction_overlap=True)
        dfs_depth = max_subtree_depth(
            11, CAP_4MB, PAPER.ct_bytes, PAPER.rgsw_bytes, transient, inner_dfs=True
        )
        bfs_depth = max_subtree_depth(
            11, CAP_4MB, PAPER.ct_bytes, PAPER.rgsw_bytes, transient, inner_dfs=False
        )
        assert dfs_depth >= bfs_depth

    def test_ro_allows_deeper_subtrees(self):
        """R.O. shrinks the Dcp transient, permitting a larger subtree."""
        without = dcp_transient_bytes(PAPER, StepKind.CMUX, reduction_overlap=False)
        with_ro = dcp_transient_bytes(PAPER, StepKind.CMUX, reduction_overlap=True)
        assert with_ro < without
        d_without = max_subtree_depth(
            11, CAP_4MB, PAPER.ct_bytes, PAPER.rgsw_bytes, without, inner_dfs=True
        )
        d_with = max_subtree_depth(
            11, CAP_4MB, PAPER.ct_bytes, PAPER.rgsw_bytes, with_ro, inner_dfs=True
        )
        assert d_with >= d_without

    def test_capacity_too_small_raises(self):
        with pytest.raises(ParameterError):
            max_subtree_depth(
                8, 1 << 10, PAPER.ct_bytes, PAPER.rgsw_bytes, 0, inner_dfs=True
            )

    def test_explicit_subtree_depth_respected(self):
        cfg = ScheduleConfig(
            capacity_bytes=CAP_4MB, traversal=Traversal.HS_DFS, subtree_depth=2
        )
        sched = schedule_coltor(PAPER, cfg)
        assert sched.subtree_depth == 2


class TestEdgeCases:
    def test_zero_dims_empty_coltor(self):
        params = PirParams.paper(num_dims=0)
        sched = schedule_coltor(params, _cfg(Traversal.BFS))
        assert sched.num_compute_steps == 0
        assert sched.traffic().total_bytes == 0

    def test_dfs_capacity_too_small(self):
        with pytest.raises(ParameterError):
            schedule_coltor(PAPER, _cfg(Traversal.DFS, cap=1 << 20))

    def test_invalid_config(self):
        with pytest.raises(ParameterError):
            ScheduleConfig(capacity_bytes=0, traversal=Traversal.BFS)
        with pytest.raises(ParameterError):
            ScheduleConfig(
                capacity_bytes=CAP_4MB, traversal=Traversal.HS_DFS, subtree_depth=0
            )


@settings(max_examples=20, deadline=None)
@given(
    dims=st.integers(min_value=1, max_value=8),
    log_cap=st.integers(min_value=22, max_value=27),
    traversal=st.sampled_from(ALL_TRAVERSALS),
)
def test_schedule_property(dims, log_cap, traversal):
    """Node counts and leaf loads hold for arbitrary geometry/capacity."""
    params = PirParams.paper(d0=64, num_dims=dims)
    try:
        sched = schedule_coltor(
            params,
            ScheduleConfig(capacity_bytes=1 << log_cap, traversal=traversal),
        )
    except ParameterError:
        return  # capacity legitimately too small for this policy
    assert sched.num_compute_steps == (1 << dims) - 1
    leaf_loads = sum(s.ct_loads for s in sched.steps if s.level == 0)
    assert leaf_loads == 1 << dims
    assert sum(s.ct_stores for s in sched.steps) >= 1
