"""Bench-guard classification: correctness keys fail hard, perf only warns.

The guard is what keeps a silently-diverging compute backend from
slipping through CI: BENCH_hotpath's ``identical`` / ``byte_identical``
/ ``decoded_ok`` leaves must be *hard* failures on any drift, while
timing leaves merely warn.  These tests pin that classification so a
refactor of the guard cannot quietly demote a correctness key.
"""

import importlib.util
import pathlib

_GUARD = (
    pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "bench_guard.py"
)
_spec = importlib.util.spec_from_file_location("bench_guard", _GUARD)
bench_guard = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_guard)


class TestClassification:
    def test_correctness_leaves_are_hard_keys(self):
        for path in (
            "answer.byte_identical",
            "answer.eager.byte_identical",
            "answer.planned.byte_identical",
            "answer.decoded_ok",
            "preprocess.identical",
            "correct",
            "bare_correct",
            "errored",
            "failed",
            "wrong_bytes",
        ):
            assert bench_guard._is_correctness(path), path

    def test_perf_leaves_are_advisory(self):
        for path in (
            "answer.speedup",
            "answer.planned.s_per_query",
            "preprocess.fast_s",
            "qps",
            "latency.p99_s",
            "identical_twin_count",  # prefix match must not trigger
        ):
            assert not bench_guard._is_correctness(path), path


class TestCompare:
    def test_correctness_regression_fails(self):
        base = {"answer": {"byte_identical": True, "speedup": 5.0}}
        fresh = {"answer": {"byte_identical": False, "speedup": 5.0}}
        failures, warnings = bench_guard.compare("x.json", base, fresh, 0.25)
        assert len(failures) == 1 and "byte_identical" in failures[0]
        assert not warnings

    def test_decoded_ok_regression_fails(self):
        base = {"answer": {"decoded_ok": True}}
        fresh = {"answer": {"decoded_ok": False}}
        failures, _ = bench_guard.compare("x.json", base, fresh, 0.25)
        assert len(failures) == 1 and "decoded_ok" in failures[0]

    def test_perf_drift_only_warns(self):
        base = {"answer": {"byte_identical": True, "speedup": 5.0}}
        fresh = {"answer": {"byte_identical": True, "speedup": 2.0}}
        failures, warnings = bench_guard.compare("x.json", base, fresh, 0.25)
        assert not failures
        assert len(warnings) == 1 and "speedup" in warnings[0]
