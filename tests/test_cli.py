"""CLI smoke tests (python -m repro ...)."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo", "--records", "16", "--record-bytes", "32"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "query" in out

    def test_demo_index_wraps(self, capsys):
        assert main(["demo", "--records", "8", "--record-bytes", "16", "--index", "100"]) == 0

    def test_qps(self, capsys):
        assert main(["qps", "--db-gib", "2", "--batch", "64"]) == 0
        out = capsys.readouterr().out
        assert "QPS" in out and "RowSel" in out

    def test_qps_rejects_unknown_size(self, capsys):
        assert main(["qps", "--db-gib", "3"]) == 2

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out and "bench_fig12_throughput" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "sysNTTU" in out and "chip total" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("Vcall", "Comm", "Fsys"):
            assert name in out

    def test_serve_real_crypto_smoke(self, capsys):
        assert (
            main(["serve", "--records", "8", "--shards", "2", "--queries", "8"]) == 0
        )
        out = capsys.readouterr().out
        assert "byte-correct" in out and "OK" in out

    def test_loadtest_sim_reports_json_metrics(self, capsys):
        import json

        assert main(["loadtest", "--mode", "sim", "--queries", "500"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["completed"] == 500
        lat = out["metrics"]["latency"]
        assert 0 < lat["p50_s"] <= lat["p95_s"] <= lat["p99_s"]
        assert out["metrics"]["achieved_qps"] > 0

    def test_loadtest_real_crypto(self, capsys):
        import json

        assert (
            main(
                [
                    "loadtest",
                    "--mode",
                    "real",
                    "--queries",
                    "6",
                    "--records",
                    "8",
                    "--rate",
                    "100",
                ]
            )
            == 0
        )
        out = json.loads(capsys.readouterr().out)
        assert out["completed"] == 6 and out["errored"] == 0

    def test_loadtest_sim_rejects_unknown_db_size(self, capsys):
        assert main(["loadtest", "--mode", "sim", "--db-gib", "3"]) == 2

    def test_loadtest_zipf_distribution(self, capsys):
        import json

        assert (
            main(
                [
                    "loadtest",
                    "--mode",
                    "sim",
                    "--queries",
                    "500",
                    "--distribution",
                    "zipf",
                    "--zipf-a",
                    "1.5",
                ]
            )
            == 0
        )
        out = json.loads(capsys.readouterr().out)
        assert out["distribution"] == "zipf"
        assert out["completed"] == 500

    def test_batchpir_round_trip_and_model(self, capsys):
        assert (
            main(["batchpir", "--records", "64", "--record-bytes", "16", "--k", "8"])
            == 0
        )
        out = capsys.readouterr().out
        assert "OK" in out
        assert "speedup" in out

    def test_batchpir_rejects_unknown_db_size(self, capsys):
        assert (
            main(["batchpir", "--records", "32", "--k", "4", "--db-gib", "3"]) == 2
        )

    def test_batchpir_seed_threads_into_cuckoo_config(self, capsys):
        assert (
            main(
                [
                    "batchpir", "--records", "64", "--record-bytes", "16",
                    "--k", "4", "--seed", "7",
                ]
            )
            == 0
        )
        assert "OK" in capsys.readouterr().out

    def test_serve_accepts_backend(self, capsys):
        assert (
            main(
                ["serve", "--records", "8", "--shards", "2", "--queries", "4",
                 "--backend", "eager"]
            )
            == 0
        )
        assert "OK" in capsys.readouterr().out

    def test_unknown_backend_exits_2_listing_registered(self, capsys):
        from repro.he.backend import backend_names

        assert (
            main(["serve", "--records", "8", "--queries", "2",
                  "--backend", "warp-drive"])
            == 2
        )
        err = capsys.readouterr().err
        assert "unknown compute backend 'warp-drive'" in err
        for name in backend_names():
            assert name in err

    def test_loadtest_unknown_backend_exits_2(self, capsys):
        assert (
            main(["loadtest", "--mode", "real", "--queries", "2",
                  "--records", "8", "--backend", "nope"])
            == 2
        )
        assert "unknown compute backend" in capsys.readouterr().err

    def test_serve_accepts_seed(self, capsys):
        assert (
            main(
                ["serve", "--records", "8", "--shards", "2", "--queries", "4",
                 "--seed", "11"]
            )
            == 0
        )
        assert "OK" in capsys.readouterr().out

    def test_kvpir_round_trip_and_model(self, capsys):
        assert (
            main(["kvpir", "--keys", "64", "--value-bytes", "16", "--k", "4"]) == 0
        )
        out = capsys.readouterr().out
        assert "OK" in out
        assert "KeyNotFound" in out
        assert "overhead" in out

    def test_kvpir_rejects_unknown_db_size(self, capsys):
        assert main(["kvpir", "--keys", "32", "--k", "4", "--db-gib", "3"]) == 2

    def test_loadtest_sim_kvpir_serving(self, capsys):
        import json

        assert (
            main(
                ["loadtest", "--mode", "sim", "--queries", "400",
                 "--serving", "kvpir"]
            )
            == 0
        )
        out = json.loads(capsys.readouterr().out)
        assert out["serving"] == "kvpir"
        assert out["completed"] == 400

    def test_loadtest_real_rejects_model_serving(self, capsys):
        assert (
            main(["loadtest", "--mode", "real", "--serving", "batchpir"]) == 2
        )

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
