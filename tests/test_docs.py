"""Documentation guards: the README snippets and package docstring run."""

import doctest
import pathlib
import re

import repro


class TestPackageDoctest:
    def test_module_docstring_examples(self):
        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted >= 1


class TestReadmeSnippets:
    def _python_blocks(self) -> list[str]:
        readme = pathlib.Path(__file__).resolve().parents[1] / "README.md"
        text = readme.read_text()
        return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)

    def test_readme_has_python_examples(self):
        assert len(self._python_blocks()) >= 2

    def test_readme_python_blocks_execute(self):
        for block in self._python_blocks():
            namespace: dict = {}
            exec(compile(block, "<README>", "exec"), namespace)  # noqa: S102

    def test_readme_mentions_all_layers(self):
        readme = pathlib.Path(__file__).resolve().parents[1] / "README.md"
        text = readme.read_text()
        for layer in ("he/", "pir/", "sched/", "arch/", "systems/", "baselines/"):
            assert layer in text

    def test_design_and_experiments_exist(self):
        root = pathlib.Path(__file__).resolve().parents[1]
        assert (root / "DESIGN.md").read_text().startswith("# DESIGN")
        experiments = (root / "EXPERIMENTS.md").read_text()
        for anchor in ("Fig. 8", "Table II", "Fig. 12", "Table IV", "Fig. 14"):
            assert anchor in experiments
