"""Complexity model (Fig. 4, Fig. 7d) and arithmetic intensity (Fig. 6)."""

import pytest

from repro.analysis import complexity, intensity, workloads
from repro.params import PirParams


def params_for(gb: int) -> PirParams:
    dims = {2: 9, 4: 10, 8: 11, 16: 12}[gb]
    return PirParams.paper(d0=256, num_dims=dims)


class TestOpCounts:
    def test_counts_are_positive_and_additive(self):
        p = params_for(2)
        a = complexity.subs_counts(p)
        b = complexity.external_product_counts(p)
        both = a + b
        assert both.total_mults == pytest.approx(a.total_mults + b.total_mults)
        assert both.ntt > 0 and both.gemm > 0 and both.icrt > 0

    def test_scale(self):
        p = params_for(2)
        a = complexity.subs_counts(p)
        assert a.scale(3).total_mults == pytest.approx(3 * a.total_mults)

    def test_unit_shares_sum_to_one(self):
        p = params_for(2)
        for counts in complexity.pir_step_counts(p).values():
            assert sum(counts.unit_shares().values()) == pytest.approx(1.0)

    def test_external_product_costs_more_than_subs(self):
        """Section II-C: ⊡ decomposes both halves, Subs only a."""
        p = params_for(2)
        assert (
            complexity.external_product_counts(p).total_mults
            > 1.5 * complexity.subs_counts(p).total_mults
        )

    def test_expand_is_ntt_dominated(self):
        """Fig. 7d: ExpandQuery is dominated by (i)NTT work."""
        p = params_for(2)
        shares = complexity.expand_query_counts(p).unit_shares()
        assert shares["ntt"] > 0.5
        assert shares["ntt"] > shares["gemm"] > 0

    def test_rowsel_is_pure_gemm(self):
        p = params_for(2)
        shares = complexity.rowsel_counts(p).unit_shares()
        assert shares["gemm"] == pytest.approx(1.0)


class TestFig4Shape:
    def test_rowsel_dominates_and_grows(self):
        """Fig. 4a: RowSel is the largest share and grows with DB size."""
        share2 = complexity.step_shares(params_for(2))
        share16 = complexity.step_shares(params_for(16))
        assert share2["RowSel"] > share2["ColTor"] > share2["ExpandQuery"]
        assert share16["RowSel"] >= share2["RowSel"]
        assert share16["ExpandQuery"] < share2["ExpandQuery"]

    def test_shares_sum_to_one(self):
        shares = complexity.step_shares(params_for(8))
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_preferable_d0_in_paper_band(self):
        """Fig. 4b: total complexity is minimized around D0 = 256-512."""
        p = params_for(2)
        sweep = complexity.relative_complexity_vs_d0(p, [128, 256, 512, 1024])
        best_d0 = min(sweep, key=sweep.get)
        assert best_d0 in (256, 512)

    def test_d0_sweep_normalized(self):
        p = params_for(2)
        sweep = complexity.relative_complexity_vs_d0(p, [128, 256, 512, 1024])
        assert max(sweep.values()) == pytest.approx(1.0)
        assert all(0 < v <= 1.0 for v in sweep.values())


class TestIntensity:
    def test_rowsel_intensity_scales_with_batch(self):
        """Fig. 6 left: batching raises RowSel's ops/byte nearly linearly."""
        p = params_for(2)
        i1 = intensity.step_intensities(p, batch=1)["RowSel"].intensity
        i64 = intensity.step_intensities(p, batch=64)["RowSel"].intensity
        assert 30 < i64 / i1 <= 64

    def test_client_steps_intensity_flat(self):
        """ExpandQuery/ColTor intensity does not improve with batching."""
        p = params_for(2)
        for step in ("ExpandQuery", "ColTor"):
            i1 = intensity.step_intensities(p, batch=1)[step].intensity
            i64 = intensity.step_intensities(p, batch=64)[step].intensity
            assert i64 == pytest.approx(i1, rel=0.01)

    def test_unbatched_rowsel_below_gpu_ridge(self):
        """The Fig. 6 premise: unbatched RowSel sits in the memory-bound zone."""
        from repro.baselines.roofline import RTX4090

        p = params_for(2)
        rowsel = intensity.step_intensities(p, batch=1)["RowSel"]
        assert rowsel.intensity < RTX4090.ridge_intensity


class TestWorkloads:
    def test_paper_sizes(self):
        assert workloads.VCALL.db_bytes == 384 << 30
        assert workloads.COMM.db_bytes == 288 << 30
        assert workloads.FSYS.db_bytes == int(1.25 * (1 << 40))

    def test_geometry_preserves_scale(self):
        base = PirParams.paper()
        geo = workloads.COMM.geometry(base)
        modeled = geo.num_db_polys * base.plain_poly_bytes
        assert 0.5 * workloads.COMM.db_bytes < modeled < 2 * workloads.COMM.db_bytes

    def test_synthesized(self):
        wl = workloads.synthesized(2)
        assert wl.db_bytes == 2 << 30
        assert wl.num_records * wl.record_bytes == wl.db_bytes
