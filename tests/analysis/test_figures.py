"""Figure-series generators: structure and JSON-serializability."""

import json

import pytest

from repro.analysis import figures


class TestSeriesShapes:
    def test_fig4a(self):
        data = figures.fig4a(db_gibs=(2, 4))
        assert set(data) == {2, 4}
        for shares in data.values():
            assert sum(shares.values()) == pytest.approx(1.0)

    def test_fig4b(self):
        data = figures.fig4b()
        assert max(data.values()) == pytest.approx(1.0)

    def test_fig6(self):
        left = figures.fig6_left(batches=(1, 16))
        assert left[16]["RowSel"] > left[1]["RowSel"]
        right = figures.fig6_right(batches=(1, 16))
        assert right[16]["RowSel"] < right[1]["RowSel"]

    def test_fig8(self):
        data = figures.fig8()
        assert set(data) == {"ExpandQuery", "ColTor"}
        for caps in data.values():
            for payload in caps.values():
                assert payload["reduction_vs_bfs"]["BFS"] == 1.0

    def test_fig12(self):
        data = figures.fig12(db_gibs=(2,))
        assert data[2]["IVE"]["qps"] > data[2]["CPU"]["qps"]

    def test_fig13c(self):
        data = figures.fig13c(batches=(1, 64))
        assert data[64]["qps"] > data[1]["qps"]

    def test_fig14a(self):
        data = figures.fig14a()
        assert data["ARK-like"]["edap"] > data["IVE"]["edap"]

    def test_everything_is_json_serializable(self):
        payload = {
            "fig4a": figures.fig4a(db_gibs=(2,)),
            "fig6_left": figures.fig6_left(batches=(1,)),
            "fig13c": figures.fig13c(batches=(1,)),
        }
        assert json.loads(json.dumps(payload))
