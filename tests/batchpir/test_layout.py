"""Bucket layout: geometry selection, membership, replication accounting."""

import pytest

from repro.batchpir.hashing import CuckooConfig
from repro.batchpir.layout import BatchDatabase, BatchLayout, bucket_geometry
from repro.errors import LayoutError
from repro.params import PirParams


@pytest.fixture(scope="module")
def params():
    return PirParams.small(n=256, d0=8, num_dims=2)


class TestBucketGeometry:
    def test_capacity_fits_bucket(self, params):
        for records in (1, 5, 16, 100, 500):
            p = bucket_geometry(params, records, record_bytes=32)
            cap_bytes = p.num_db_polys * p.poly_payload_bytes
            assert cap_bytes >= records * 32

    def test_balances_expand_against_coltor(self, params):
        # 64 polys worth of records: D0=8, d=3 beats D0=64, d=0 on tree ops.
        coeff = params.payload_bits_per_coeff // 8
        per_poly = params.n * coeff // 32
        p = bucket_geometry(params, 64 * per_poly, record_bytes=32)
        assert p.d0 + (1 << p.num_dims) <= 64 + 1

    def test_single_record_bucket(self, params):
        p = bucket_geometry(params, 1, record_bytes=32)
        assert p.num_db_polys >= 1
        assert p.d0 == 1 and p.num_dims == 0


class TestBatchLayout:
    def test_members_cover_every_record_with_replication(self, params):
        config = CuckooConfig(num_buckets=12, seed=4)
        layout = BatchLayout.build(params, 100, 16, config)
        seen = set()
        for bucket, members in enumerate(layout.bucket_members):
            assert members == sorted(set(members))
            for g in members:
                seen.add(g)
                assert bucket in config.candidates(g)
        assert seen == set(range(100))
        assert 1.0 < layout.replication_factor <= config.num_hashes

    def test_client_and_server_derive_identical_layouts(self, params):
        config = CuckooConfig(num_buckets=12, seed=4)
        a = BatchLayout.build(params, 100, 16, config)
        b = BatchLayout.build(params, 100, 16, config)
        assert a.bucket_members == b.bucket_members
        assert a.bucket_params == b.bucket_params

    def test_local_index_round_trip(self, params):
        layout = BatchLayout.build(params, 64, 16, CuckooConfig(num_buckets=8))
        for g in range(64):
            for bucket in set(layout.config.candidates(g)):
                local = layout.local_index(bucket, g)
                assert layout.bucket_members[bucket][local] == g

    def test_local_index_rejects_non_member(self, params):
        layout = BatchLayout.build(params, 16, 16, CuckooConfig(num_buckets=64))
        g = 3
        absent = next(
            b for b in range(64) if b not in layout.config.candidates(g)
        )
        with pytest.raises(LayoutError):
            layout.local_index(absent, g)


class TestBatchDatabase:
    def test_buckets_store_their_members(self, params):
        records = [bytes([i]) * 16 for i in range(50)]
        db = BatchDatabase.from_records(
            params, records, CuckooConfig(num_buckets=8, seed=2)
        )
        for bucket, members in enumerate(db.layout.bucket_members):
            bucket_db = db.bucket_dbs[bucket]
            for local, g in enumerate(members):
                assert bucket_db.record(local) == records[g]
        assert db.stored_records == db.layout.replicated_records

    def test_empty_bucket_padded(self, params):
        # 2 records across 64 buckets leaves most buckets empty.
        db = BatchDatabase.from_records(
            params, [b"\x01" * 16, b"\x02" * 16], CuckooConfig(num_buckets=64)
        )
        assert all(b.num_records >= 1 for b in db.bucket_dbs)

    def test_record_count_mismatch(self, params):
        layout = BatchLayout.build(params, 4, 16, CuckooConfig(num_buckets=4))
        with pytest.raises(LayoutError):
            BatchDatabase(layout, [b"\x00" * 16] * 3)
