"""Batch PIR behind the serving runtime: coalesced windows, sim mode."""

import asyncio

import pytest

from repro.batchpir.serving import BatchCryptoBackend, BatchServeRegistry
from repro.params import PirParams
from repro.serve import ServeRuntime, SimShardRegistry
from repro.systems.batching import BatchPolicy


@pytest.fixture(scope="module")
def params():
    return PirParams.small(n=256, d0=8, num_dims=2)


class TestBatchServeRegistry:
    def test_routes_and_decodes(self, params):
        registry = BatchServeRegistry.random(
            params, num_records=64, record_bytes=16, max_batch=8, num_shards=2, seed=1
        )
        request = registry.make_request(40)
        assert request.query is None  # queries are planned per window
        shard_id, local = registry.map.route(40)
        assert (request.shard_id, request.local_index) == (shard_id, local)

    def test_window_coalesces_into_one_batched_pass(self, params):
        registry = BatchServeRegistry.random(
            params, num_records=96, record_bytes=16, max_batch=16, num_shards=1, seed=2
        )
        policy = BatchPolicy(waiting_window_s=0.05, max_batch=16)

        async def main():
            runtime = ServeRuntime(registry, BatchCryptoBackend(registry), policy)
            async with runtime:
                return await runtime.serve_many([3, 77, 41, 3, 90, 12])

        results = asyncio.run(main())
        for r in results:
            assert registry.decode(r.request, r.response) == registry.expected(
                r.request.global_index
            )
        # All six landed in one waiting window -> one dispatch.
        assert {r.batch_size for r in results} == {6}

    def test_window_larger_than_design_batch_chunks(self, params):
        registry = BatchServeRegistry.random(
            params, num_records=48, record_bytes=16, max_batch=4, num_shards=1, seed=3
        )
        policy = BatchPolicy(waiting_window_s=0.05, max_batch=12)

        async def main():
            runtime = ServeRuntime(registry, BatchCryptoBackend(registry), policy)
            async with runtime:
                return await runtime.serve_many(range(10))

        results = asyncio.run(main())
        for r in results:
            assert registry.decode(r.request, r.response) == registry.expected(
                r.request.global_index
            )


class TestSimBatchMode:
    def test_batch_mode_amortizes_window_cost(self):
        paper = PirParams.paper(d0=256, num_dims=9)
        batched = SimShardRegistry(paper, batchpir=True, design_batch=64)
        plain = SimShardRegistry(paper)
        # One coalesced pass serves the whole design batch...
        assert batched.service_seconds(64) == batched.service_seconds(1)
        # ...at >= 4x less per query than 64 independent single queries.
        amortized = batched.service_seconds(64) / 64
        assert plain.service_seconds(1) / amortized >= 4.0
        # Beyond the design batch a second pass is needed.
        assert batched.service_seconds(65) == pytest.approx(
            2 * batched.service_seconds(64)
        )

    def test_batch_mode_window_covers_replicated_set(self):
        paper = PirParams.paper(d0=256, num_dims=9)
        batched = SimShardRegistry(paper, batchpir=True, design_batch=64)
        plain = SimShardRegistry(paper)
        assert batched.waiting_window_s() > 0
        # Replicated bucket set is ~3x the database: window grows with it.
        assert batched.waiting_window_s() > plain.waiting_window_s()

    def test_plain_mode_unchanged(self):
        registry = SimShardRegistry(PirParams.paper(d0=256, num_dims=9))
        assert registry.batch_system is None
        assert registry.service_seconds(16) > 0
