"""Cuckoo hashing: determinism, placement invariants, stash bound."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batchpir.hashing import (
    CuckooConfig,
    cuckoo_assign,
    num_buckets_for,
)
from repro.errors import BatchPlanError, ParameterError


class TestCuckooConfig:
    def test_candidates_deterministic_across_instances(self):
        a = CuckooConfig(num_buckets=64, seed=9)
        b = CuckooConfig(num_buckets=64, seed=9)
        for key in (0, 1, 17, 2**40):
            assert a.candidates(key) == b.candidates(key)

    def test_seed_changes_candidates(self):
        a = CuckooConfig(num_buckets=1024, seed=0)
        b = CuckooConfig(num_buckets=1024, seed=1)
        assert any(a.candidates(k) != b.candidates(k) for k in range(32))

    def test_candidates_in_range(self):
        config = CuckooConfig(num_buckets=7)
        for key in range(100):
            assert all(0 <= c < 7 for c in config.candidates(key))

    def test_num_buckets_for_applies_factor(self):
        assert num_buckets_for(64) == 96
        assert num_buckets_for(1) == 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            CuckooConfig(num_buckets=1)
        with pytest.raises(ParameterError):
            CuckooConfig(num_buckets=8, num_hashes=1)
        with pytest.raises(ParameterError):
            CuckooConfig(num_buckets=8, stash_size=-1)
        with pytest.raises(ParameterError):
            num_buckets_for(0)
        with pytest.raises(ParameterError):
            CuckooConfig(num_buckets=8).candidates(-1)


class TestCuckooAssign:
    def test_rejects_duplicate_keys(self):
        config = CuckooConfig(num_buckets=8)
        with pytest.raises(ParameterError):
            cuckoo_assign([1, 2, 1], config)

    def test_overfull_batch_is_typed_failure(self):
        config = CuckooConfig(num_buckets=4, stash_size=0)
        with pytest.raises(BatchPlanError):
            cuckoo_assign(list(range(5)), config)

    def test_each_key_lands_in_a_candidate_bucket(self):
        config = CuckooConfig(num_buckets=16, seed=3)
        assignment = cuckoo_assign(list(range(10)), config)
        for bucket, key in assignment.slots.items():
            assert bucket in config.candidates(key)

    # -- the satellite property test ------------------------------------
    @settings(max_examples=150, deadline=None)
    @given(
        keys=st.sets(st.integers(min_value=0, max_value=2**32), min_size=1, max_size=64),
        factor_pct=st.integers(min_value=150, max_value=300),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_insertion_succeeds_within_stash_bound(self, keys, factor_pct, seed):
        """k distinct keys place with a bounded stash across table sizes.

        ``cuckoo_assign`` raises BatchPlanError on overflow, so a clean
        return IS the bound holding; the remaining asserts check the
        partition is exact: every key exactly once, in a candidate bucket.
        """
        keys = sorted(keys)
        config = CuckooConfig(
            num_buckets=num_buckets_for(len(keys), factor=factor_pct / 100),
            seed=seed,
        )
        assignment = cuckoo_assign(keys, config)
        assert len(assignment.stash) <= config.stash_size
        placed = sorted(list(assignment.slots.values()) + list(assignment.stash))
        assert placed == keys
        for bucket, key in assignment.slots.items():
            assert bucket in config.candidates(key)
