"""Amortized accelerator cost model: speedups, placement, geometry."""

import pytest

from repro.batchpir.model import amortized_cost_curve, model_bucket_params
from repro.errors import ParameterError
from repro.params import PirParams
from repro.systems.scale_up import BatchScaleUpSystem, ScaleUpSystem


@pytest.fixture(scope="module")
def paper():
    return PirParams.paper(d0=256, num_dims=9)  # 2 GiB Table I database


class TestModelGeometry:
    def test_bucket_capacity_covers_mean_occupancy(self, paper):
        config, bucket_params = model_bucket_params(paper, k=64)
        need = config.num_hashes * paper.num_db_polys / config.num_buckets
        assert bucket_params.num_db_polys >= need
        assert config.num_buckets == 96

    def test_shares_ring_with_base(self, paper):
        _, bucket_params = model_bucket_params(paper, k=16)
        assert bucket_params.n == paper.n
        assert bucket_params.moduli == paper.moduli


class TestBatchScaleUpSystem:
    def test_replicated_footprint_drives_placement(self, paper):
        config, bucket_params = model_bucket_params(paper, k=64)
        system = BatchScaleUpSystem(bucket_params, config.num_buckets)
        single = ScaleUpSystem(paper)
        assert system.preprocessed_db_bytes > single.preprocessed_db_bytes
        assert system.preprocessed_db_bytes == (
            config.num_buckets
            * bucket_params.num_db_polys
            * bucket_params.poly_bytes
        )

    def test_pass_latency_positive_breakdown(self, paper):
        config, bucket_params = model_bucket_params(paper, k=16)
        system = BatchScaleUpSystem(bucket_params, config.num_buckets)
        lat = system.pass_latency()
        assert lat.batch == config.num_buckets
        assert lat.total_s > 0
        assert lat.rowsel_s > 0

    def test_amortized_needs_positive_k(self, paper):
        config, bucket_params = model_bucket_params(paper, k=4)
        system = BatchScaleUpSystem(bucket_params, config.num_buckets)
        with pytest.raises(ParameterError):
            system.amortized_per_query_s(0)


class TestAmortizedCurve:
    def test_k64_speedup_clears_4x(self, paper):
        (point,) = amortized_cost_curve(paper, ks=(64,))
        assert point.speedup >= 4.0

    def test_speedup_grows_with_k(self, paper):
        points = amortized_cost_curve(paper, ks=(4, 16, 64))
        speedups = [p.speedup for p in points]
        assert speedups == sorted(speedups)
        assert all(p.single_query_s == points[0].single_query_s for p in points)

    def test_pass_cost_is_sublinear_in_k(self, paper):
        points = amortized_cost_curve(paper, ks=(4, 64))
        # 16x the batch should cost far less than 16x the pass time.
        assert points[1].batch_pass_s < 4 * points[0].batch_pass_s
