"""End-to-end batch retrieval: byte-correct records through real crypto."""

import numpy as np
import pytest

from repro.batchpir import BatchPirProtocol
from repro.batchpir.client import BatchPirClient
from repro.batchpir.hashing import CuckooConfig
from repro.batchpir.layout import BatchLayout
from repro.errors import LayoutError, ParameterError
from repro.params import PirParams


@pytest.fixture(scope="module")
def params():
    return PirParams.small(n=256, d0=8, num_dims=2)


@pytest.fixture(scope="module")
def protocol(params):
    rng = np.random.default_rng(11)
    records = [rng.bytes(24) for _ in range(1024)]
    return BatchPirProtocol(params, records, max_batch=64, seed=11)


class TestBatchRetrieval:
    def test_k64_round_trip(self, protocol):
        """Acceptance: a batch of 64 records decodes all 64 correctly."""
        rng = np.random.default_rng(5)
        indices = [int(i) for i in rng.choice(1024, size=64, replace=False)]
        result = protocol.retrieve_batch(indices)
        assert len(result.records) == 64
        for rec, g in zip(result.records, indices):
            assert rec == protocol.db.record(g)

    def test_small_batch_on_large_deployment(self, protocol):
        result = protocol.retrieve_batch([0, 1023, 512])
        assert [result.records[0], result.records[1], result.records[2]] == [
            protocol.db.record(0),
            protocol.db.record(1023),
            protocol.db.record(512),
        ]

    def test_transcript_counts_batch(self, protocol):
        served_before = protocol.transcript.queries_served
        protocol.retrieve_batch([1, 2])
        assert protocol.transcript.queries_served == served_before + 2
        assert protocol.transcript.query_bytes > 0
        assert protocol.transcript.response_bytes > 0

    def test_rejects_out_of_range_and_empty(self, protocol):
        with pytest.raises(LayoutError):
            protocol.retrieve_batch([0, 4096])
        with pytest.raises(ParameterError):
            protocol.retrieve_batch([])


class TestStashRounds:
    def test_overfull_plan_spills_into_extra_rounds(self, params):
        """A deliberately tight table forces the stash; extra rounds serve it.

        8 keys into 8 buckets (load 1.0 instead of the 1/1.5 design point)
        makes cuckoo failures likely; scan hash seeds until one yields a
        multi-round plan, then check the retrieval is still byte-correct.
        """
        rng = np.random.default_rng(3)
        records = [rng.bytes(16) for _ in range(64)]
        for hash_seed in range(64):
            config = CuckooConfig(num_buckets=8, seed=hash_seed, stash_size=4)
            layout = BatchLayout.build(params, 64, 16, config)
            client = BatchPirClient(layout, seed=1)
            plan = client.plan(list(range(8)))
            if plan.num_rounds > 1:
                break
        else:
            pytest.skip("no hash seed produced a stash at load 1.0")
        protocol = BatchPirProtocol(
            params, records, max_batch=8, record_bytes=16, seed=1, config=config
        )
        result = protocol.retrieve_batch(list(range(8)))
        assert result.num_rounds > 1
        for rec, g in zip(result.records, range(8)):
            assert rec == records[g]

    def test_plan_places_every_index_exactly_once(self, protocol):
        indices = list(range(40))
        plan = protocol.client.plan(indices)
        assert sorted(plan.indices) == indices
        for slots in plan.rounds:
            assert len(set(slots.keys())) == len(slots)


class TestRecordShapes:
    def test_multi_plane_records(self, params):
        """Records bigger than one polynomial stripe across planes."""
        coeff_bytes = params.payload_bits_per_coeff // 8
        big = params.n * coeff_bytes + 40  # forces plane_count >= 2
        rng = np.random.default_rng(2)
        records = [rng.bytes(big) for _ in range(32)]
        protocol = BatchPirProtocol(params, records, max_batch=4, seed=2)
        assert protocol.layout.bucket_layouts[0].plane_count >= 2
        result = protocol.retrieve_batch([3, 17, 30])
        for rec, g in zip(result.records, (3, 17, 30)):
            assert rec == records[g]

    def test_over_database_rebuckets_existing_db(self, params):
        from repro.pir.database import PirDatabase

        db = PirDatabase.random(params, num_records=64, record_bytes=16, seed=6)
        protocol = BatchPirProtocol.over_database(db, max_batch=8, seed=6)
        result = protocol.retrieve_batch([5, 60])
        assert result.records == [db.record(5), db.record(60)]
