"""Shared fixtures: small parameter sets and HE contexts for fast tests."""

import pytest

from repro.he.bfv import BfvContext, SecretKey
from repro.he.gadget import Gadget
from repro.he.poly import RingContext
from repro.he.sampling import Sampler
from repro.params import PirParams


@pytest.fixture(scope="session")
def small_params():
    """Odd-P small parameters (full payload, inverse-scaled expansion)."""
    return PirParams.small(n=256, d0=8, num_dims=2, plain_modulus=65537)


@pytest.fixture(scope="session")
def pow2_params():
    """Power-of-two-P small parameters (Table I style, reduced payload)."""
    return PirParams.small(n=256, d0=8, num_dims=2, plain_modulus=1 << 16)


@pytest.fixture(scope="session")
def ring(small_params):
    return RingContext(small_params)


@pytest.fixture()
def sampler(ring):
    return Sampler(ring, seed=1234)


@pytest.fixture()
def bfv(ring, sampler):
    return BfvContext(ring, sampler)


@pytest.fixture()
def secret_key(ring, bfv, sampler):
    return SecretKey.generate(ring, sampler)


@pytest.fixture()
def gadget(ring):
    return Gadget(ring)
