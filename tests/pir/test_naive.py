"""Naive one-hot PIR (Section II-A) and its communication blow-up."""

import pytest

from repro.errors import LayoutError
from repro.params import PirParams
from repro.pir.database import PirDatabase
from repro.pir.naive import NaiveOneHotPir, query_size_ratio
from repro.pir.protocol import PirProtocol


@pytest.fixture(scope="module")
def naive_setup():
    # D = 64 polynomials: large enough that the one-hot query's D
    # ciphertexts dwarf the packed query's single ct + 2 RGSW bits.
    params = PirParams.small(n=128, d0=16, num_dims=2)
    db = PirDatabase.random(params, num_records=64, record_bytes=64, seed=41)
    return params, db, NaiveOneHotPir(params, db, seed=42)


class TestNaivePir:
    def test_retrieves_correct_record(self, naive_setup):
        params, db, pir = naive_setup
        for index in (0, 7, 15):
            assert pir.retrieve(index) == db.record(index)

    def test_query_is_one_hot_sized(self, naive_setup):
        params, db, pir = naive_setup
        query = pir.build_query(3)
        assert len(query.cts) == params.num_db_polys
        assert query.size_bytes(params) == params.num_db_polys * params.ct_bytes

    def test_wrong_query_length_rejected(self, naive_setup):
        params, db, pir = naive_setup
        query = pir.build_query(0)
        query.cts.pop()
        with pytest.raises(LayoutError):
            pir.answer(query)

    def test_noise_stays_low(self, naive_setup):
        """A single Eq. 1 pass adds only plaintext-product noise."""
        params, db, pir = naive_setup
        response = pir.answer(pir.build_query(5))
        assert pir.bfv.noise_budget_bits(response, pir.secret_key) > 10

    def test_multi_plane_rejected(self):
        params = PirParams.small(n=128, d0=4, num_dims=1)
        db = PirDatabase.random(params, num_records=8, record_bytes=600, seed=43)
        assert db.layout.plane_count > 1
        with pytest.raises(LayoutError):
            NaiveOneHotPir(params, db)


class TestCommunicationBlowUp:
    """Section II-A: packing cuts the query from D cts to one ct (+ bits)."""

    def test_packed_query_is_much_smaller(self, naive_setup):
        params, db, pir = naive_setup
        protocol = PirProtocol(params, db, seed=44)
        naive_bytes = pir.build_query(3).size_bytes(params)
        packed_bytes = protocol.client.build_query(3, db.layout).size_bytes(params)
        assert naive_bytes > 1.3 * packed_bytes
        assert naive_bytes / packed_bytes == pytest.approx(
            query_size_ratio(params), rel=1e-6
        )

    def test_ratio_grows_with_db(self):
        """The naive query scales with D; the packed query with log D."""
        small = query_size_ratio(PirParams.small(n=256, d0=8, num_dims=2))
        large = query_size_ratio(PirParams.small(n=256, d0=8, num_dims=5))
        assert large > 2 * small

    def test_paper_scale_ratio(self):
        """At Table I scale the naive query would be ~3 GB more upload."""
        params = PirParams.paper(d0=256, num_dims=9)  # 2 GB DB
        ratio = query_size_ratio(params)
        assert ratio > 1000  # 2^17 ciphertexts vs 1 ct + 9 RGSW

    def test_same_answer_as_full_protocol(self, naive_setup):
        """Both constructions retrieve the same record."""
        params, db, pir = naive_setup
        protocol = PirProtocol(params, db, seed=45)
        for index in (2, 9):
            assert pir.retrieve(index) == protocol.retrieve(index).record
