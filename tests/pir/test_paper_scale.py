"""Integration at paper-shaped ring degree (N = 2^12).

One full retrieval on the ``PirParams.functional()`` preset — the same
ring/moduli/gadget the paper's Table I uses (with the odd plaintext
modulus noted in DESIGN.md).  Slow (~tens of seconds), so only the
essential end-to-end properties are checked here; breadth lives in the
fast small-ring suites.
"""

import pytest

from repro.he import noise
from repro.params import PirParams
from repro.pir.database import PirDatabase
from repro.pir.protocol import PirProtocol


@pytest.fixture(scope="module")
def paper_scale():
    params = PirParams.functional(d0=16, num_dims=2)  # 64 polynomials, N=4096
    db = PirDatabase.random(params, num_records=64, record_bytes=1024, seed=77)
    protocol = PirProtocol(params, db, seed=78)
    return params, db, protocol


@pytest.mark.slow
class TestPaperScale:
    def test_retrieval(self, paper_scale):
        params, db, protocol = paper_scale
        result = protocol.retrieve(37)
        assert result.record == db.record(37)

    def test_noise_margin_comfortable(self, paper_scale):
        """At N=2^12 / 4 moduli the response keeps a wide noise budget."""
        params, db, protocol = paper_scale
        result = protocol.retrieve(5)
        client = protocol.client
        budget = min(
            client.bfv.noise_budget_bits(ct, client.secret_key)
            for ct in result.response.plane_cts
        )
        assert budget > 20.0
        est = noise.estimate(params)
        measured = max(
            client.bfv.noise(ct, client.secret_key)
            for ct in result.response.plane_cts
        )
        assert measured < est.response_bound()

    def test_communication_sizes_match_table1_formulas(self, paper_scale):
        params, db, protocol = paper_scale
        # ct = 112 KB, RGSW = 1120 KB, evk = 560 KB at the paper's ring.
        assert params.ct_bytes == 112 * 1024
        assert params.rgsw_bytes == 1120 * 1024
        assert params.evk_bytes == 560 * 1024
        query = protocol.client.build_query(0, db.layout)
        assert query.size_bytes(params) == params.ct_bytes + 2 * params.rgsw_bytes
