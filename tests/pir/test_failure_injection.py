"""Failure injection: the protocol must fail loudly or soundly, not silently.

These tests deliberately corrupt queries, keys, and responses to verify
(a) wrong inputs produce wrong-but-well-formed results (PIR gives no
integrity guarantee — corruption must not crash the pipeline), and
(b) structurally invalid inputs are rejected with clear errors.
"""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.he.rgsw import rgsw_encrypt
from repro.pir.client import PirClient
from repro.pir.database import PirDatabase
from repro.pir.protocol import PirProtocol


@pytest.fixture()
def setup(small_params):
    db = PirDatabase.random(small_params, num_records=32, record_bytes=64, seed=21)
    protocol = PirProtocol(small_params, db, seed=22)
    return protocol, db


class TestCorruptedInputs:
    def test_flipped_selection_bit_fetches_sibling(self, small_params):
        """Flipping a ColTor bit retrieves the neighbouring column."""
        # One record per polynomial so poly index == record index.
        db = PirDatabase.random(small_params, num_records=32, record_bytes=512, seed=23)
        protocol = PirProtocol(small_params, db, seed=24)
        client, layout = protocol.client, db.layout
        index = 5  # poly 5: row 5, col 0 -> flipping bit 0 selects col 1
        query = client.build_query(index, layout)
        flipped = rgsw_encrypt(client.bfv, client.gadget, 1, client.secret_key)
        query.selection_bits[0] = flipped
        response = protocol.server.answer(query)
        record = client.decode_response(response, index, layout)
        sibling = index + small_params.d0  # same row, next column
        assert record == db.record(sibling)
        assert record != db.record(index)

    def test_garbage_query_ct_decodes_to_garbage_not_crash(self, setup):
        protocol, db = setup
        client, layout = protocol.client, db.layout
        query = client.build_query(3, layout)
        # Replace the packed ct with an encryption of a non-one-hot mess.
        noise = np.arange(protocol.params.n, dtype=np.int64) % 7
        query = type(query)(
            packed=client.bfv.encrypt(noise, client.secret_key),
            selection_bits=query.selection_bits,
        )
        response = protocol.server.answer(query)
        record = client.decode_response(response, 3, layout)
        assert record != db.record(3)

    def test_wrong_client_cannot_decode(self, setup):
        """A different key holder decrypts noise, not the record."""
        protocol, db = setup
        other = PirClient(protocol.params, seed=999)
        query = protocol.client.build_query(7, db.layout)
        response = protocol.server.answer(query)
        record = other.decode_response(response, 7, db.layout)
        assert record != db.record(7)

    def test_decoding_wrong_slot_returns_wrong_record(self, setup):
        """Packed records: the offset is the client's responsibility."""
        protocol, db = setup
        params = protocol.params
        if db.layout.records_per_poly < 2:
            pytest.skip("geometry does not pack multiple records per poly")
        query = protocol.client.build_query(0, db.layout)
        response = protocol.server.answer(query)
        wrong = protocol.client.decode_response(response, 1, db.layout)
        assert wrong == db.record(1)  # same poly, different slot


def small_params_d0(protocol) -> int:
    return protocol.params.d0


class TestStructuralRejection:
    def test_missing_selection_bits(self, setup):
        protocol, db = setup
        query = protocol.client.build_query(0, db.layout)
        query.selection_bits.clear()
        with pytest.raises(ParameterError):
            protocol.server.answer(query)

    def test_extra_selection_bits(self, setup):
        protocol, db = setup
        client = protocol.client
        query = client.build_query(0, db.layout)
        query.selection_bits.append(
            rgsw_encrypt(client.bfv, client.gadget, 0, client.secret_key)
        )
        with pytest.raises(ParameterError):
            protocol.server.answer(query)

    def test_response_plane_mismatch_rejected(self, setup):
        from repro.errors import LayoutError

        protocol, db = setup
        query = protocol.client.build_query(0, db.layout)
        response = protocol.server.answer(query)
        response.plane_cts.append(response.plane_cts[0])
        with pytest.raises(LayoutError):
            protocol.client.decode_response(response, 0, db.layout)


class TestNoiseExhaustion:
    def test_noise_overflow_corrupts_decryption(self, small_params):
        """Scalar-multiplying the error past Δ/2 destroys the plaintext and
        leaves (nearly) no measurable budget."""
        from repro.errors import NoiseOverflowError
        from repro.he.bfv import BfvContext, SecretKey
        from repro.he.poly import RingContext
        from repro.he.sampling import Sampler

        ring = RingContext(small_params)
        sampler = Sampler(ring, seed=33)
        bfv = BfvContext(ring, sampler)
        key = SecretKey.generate(ring, sampler)
        ct = bfv.encrypt_zero(key)
        for _ in range(12):
            ct = ct.scalar_mul(1 << 8)
        # Decryption of the once-zero plaintext is now garbage.
        assert np.count_nonzero(bfv.decrypt(ct, key)) > small_params.n // 2
        # The headroom is (near) exhausted: either the check fires or at
        # most a couple of bits remain (the wrapped error aliases below Δ/2).
        try:
            assert bfv.noise_budget_bits(ct, key) < 2.0
        except NoiseOverflowError:
            pass
