"""ExpandQuery: the binary-tree one-hot expansion (Fig. 2-(1))."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.he import modmath
from repro.pir.expand import expand_query, expansion_powers


class TestExpansionPowers:
    def test_powers_sequence(self):
        assert expansion_powers(256, 3) == [257, 129, 65]

    def test_too_many_levels_rejected(self):
        with pytest.raises(ParameterError):
            expansion_powers(8, 4)

    def test_zero_levels(self):
        assert expansion_powers(64, 0) == []


class TestExpandQuery:
    @pytest.fixture()
    def evks(self, ring, bfv, gadget, secret_key):
        from repro.he.subs import generate_subs_key

        levels = 3
        return {
            r: generate_subs_key(bfv, gadget, secret_key, r)
            for r in expansion_powers(ring.n, levels)
        }

    def test_expand_one_hot(self, ring, bfv, gadget, secret_key, evks):
        """Expanding Enc(X^t) yields Enc(2^levels) at slot t, 0 elsewhere."""
        levels = 3
        for target in (0, 1, 5, 7):
            coeffs = np.zeros(ring.n, dtype=np.int64)
            coeffs[target] = 1
            ct = bfv.encrypt(coeffs, secret_key)
            outs = expand_query(ct, evks, levels, gadget)
            assert len(outs) == 1 << levels
            for j, out in enumerate(outs):
                dec = bfv.decrypt(out, secret_key)
                expected = (1 << levels) if j == target else 0
                assert dec[0] == expected
                assert np.all(dec[1:] == 0)

    def test_expand_dense_query(self, ring, bfv, gadget, secret_key, evks):
        """Every slot j receives 2^levels * c_j — general coefficients."""
        levels = 3
        rng = np.random.default_rng(0)
        p = ring.params.plain_modulus
        coeffs = np.zeros(ring.n, dtype=np.int64)
        coeffs[: 1 << levels] = rng.integers(0, p, size=1 << levels)
        ct = bfv.encrypt(coeffs, secret_key)
        outs = expand_query(ct, evks, levels, gadget)
        for j, out in enumerate(outs):
            dec = bfv.decrypt(out, secret_key)
            assert dec[0] == ((1 << levels) * coeffs[j]) % p

    def test_inverse_scaling_recovers_exact_one_hot(
        self, ring, bfv, gadget, secret_key, evks
    ):
        """Client-side D0^{-1} pre-scaling (odd P) cancels the 2^levels factor."""
        levels = 3
        p = ring.params.plain_modulus
        inv = modmath.mod_inverse(1 << levels, p)
        coeffs = np.zeros(ring.n, dtype=np.int64)
        coeffs[5] = inv
        ct = bfv.encrypt(coeffs, secret_key)
        outs = expand_query(ct, evks, levels, gadget)
        for j, out in enumerate(outs):
            dec = bfv.decrypt(out, secret_key)
            assert dec[0] == (1 if j == 5 else 0)

    def test_missing_evk_rejected(self, ring, bfv, gadget, secret_key, evks):
        ct = bfv.encrypt_zero(secret_key)
        partial = {r: k for r, k in evks.items() if r != ring.n + 1}
        with pytest.raises(ParameterError):
            expand_query(ct, partial, 3, gadget)

    def test_single_level(self, ring, bfv, gadget, secret_key, evks):
        coeffs = np.zeros(ring.n, dtype=np.int64)
        coeffs[1] = 3
        ct = bfv.encrypt(coeffs, secret_key)
        outs = expand_query(ct, evks, 1, gadget)
        assert bfv.decrypt(outs[0], secret_key)[0] == 0
        assert bfv.decrypt(outs[1], secret_key)[0] == 6
