"""Backend / reference-path equivalence and RowSel geometry guards.

The batched tensor hot path must be *byte-identical* to the per-poly
oracle — this is the tier-1 smoke that keeps any compute backend from
ever silently diverging (the full-size check also runs in
``benchmarks/bench_hotpath.py``).  ``REPRO_BACKEND`` selects the backend
under test so CI can run the whole file once per registered backend.
"""

import os

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.he.backend import DEFAULT_BACKEND, get_backend
from repro.he.batched import BfvCiphertextVec
from repro.he.poly import RingContext
from repro.pir.database import PirDatabase, PreprocessedDatabase
from repro.pir.expand import expand_query, expand_query_batched
from repro.pir.protocol import PirProtocol
from repro.pir.rowsel import num_rowsel_cols, row_select, row_select_vec
from repro.pir.server import PirServer

#: Backend under test; CI sets REPRO_BACKEND=eager / =planned.
BACKEND = os.environ.get("REPRO_BACKEND", DEFAULT_BACKEND)


@pytest.fixture(scope="module")
def pipeline(small_params):
    db = PirDatabase.random(small_params, num_records=24, record_bytes=96, seed=21)
    protocol = PirProtocol(small_params, db, seed=22, backend=BACKEND)
    return small_params, db, protocol


def _assert_responses_equal(fast, ref):
    assert len(fast.plane_cts) == len(ref.plane_cts)
    for f, r in zip(fast.plane_cts, ref.plane_cts):
        assert np.array_equal(f.a.residues, r.a.residues)
        assert np.array_equal(f.b.residues, r.b.residues)


class TestTranscriptEquality:
    def test_fast_answers_byte_identical_to_reference(self, pipeline):
        params, db, protocol = pipeline
        server = protocol.server
        assert server.backend is get_backend(BACKEND)
        for index in (0, 7, 23):
            query = protocol.client.build_query(index, db.layout)
            fast = server.answer(query)
            ref = server.answer_reference(query)
            _assert_responses_equal(fast, ref)
            assert protocol.client.decode_response(fast, index, db.layout) == (
                db.record(index)
            )

    def test_expand_query_batched_matches_reference(self, pipeline):
        params, db, protocol = pipeline
        server = protocol.server
        query = protocol.client.build_query(3, db.layout)
        vec = expand_query_batched(
            query.packed, server.evks, server._levels, server.gadget,
            backend=BACKEND,
        )
        ref = expand_query(query.packed, server.evks, server._levels, server.gadget)
        assert vec.batch == len(ref) == params.d0
        for i, ct in enumerate(ref):
            assert np.array_equal(vec.a.residues[i], ct.a.residues)
            assert np.array_equal(vec.b.residues[i], ct.b.residues)

    def test_row_select_vec_matches_reference(self, pipeline):
        params, db, protocol = pipeline
        server = protocol.server
        query = protocol.client.build_query(5, db.layout)
        ref_expanded = expand_query(
            query.packed, server.evks, server._levels, server.gadget
        )
        vec = BfvCiphertextVec.from_cts(ref_expanded)
        for plane in range(server.db.plane_count):
            ref = row_select(ref_expanded, server.db, plane)
            fast = row_select_vec(vec, server.db, plane, backend=BACKEND)
            assert len(fast) == len(ref)
            for f, r in zip(fast, ref):
                assert np.array_equal(f.a.residues, r.a.residues)
                assert np.array_equal(f.b.residues, r.b.residues)

    def test_eager_server_byte_identical(self, pipeline):
        params, db, protocol = pipeline
        eager = PirServer(
            protocol.server.db, protocol.client.setup_message(), backend="eager"
        )
        query = protocol.client.build_query(9, db.layout)
        _assert_responses_equal(eager.answer(query), protocol.server.answer(query))


class TestRowselGeometryGuard:
    def _truncated_db(self, protocol) -> PreprocessedDatabase:
        """A preprocessed DB whose poly count is not a multiple of D0."""
        pre = protocol.server.db
        return PreprocessedDatabase(
            pre.layout, pre.ring, [row[:-1] for row in pre.planes]
        )

    def test_non_divisible_geometry_rejected(self, pipeline):
        params, db, protocol = pipeline
        bad = self._truncated_db(protocol)
        assert bad.num_polys % params.d0 != 0
        query = protocol.client.build_query(1, db.layout)
        expanded = expand_query(
            query.packed, protocol.server.evks, protocol.server._levels,
            protocol.server.gadget,
        )
        with pytest.raises(ParameterError, match="not a multiple of D0"):
            row_select(expanded, bad, 0)
        with pytest.raises(ParameterError, match="silently dropped"):
            row_select_vec(BfvCiphertextVec.from_cts(expanded), bad, 0)

    def test_divisible_geometry_accepted(self, pipeline):
        params, db, protocol = pipeline
        assert num_rowsel_cols(protocol.server.db) == (
            protocol.server.db.num_polys // params.d0
        )


class TestPlaneTensorCache:
    def test_preprocess_seeds_cache_and_set_poly_keeps_it_coherent(self, small_params):
        db = PirDatabase.random(small_params, num_records=8, record_bytes=96, seed=5)
        ring = RingContext(small_params)
        pre = db.preprocess(ring)
        tensor = pre.plane_tensor(0)
        assert tensor.shape == (pre.num_polys, ring.rns_count, ring.n)
        for i, poly in enumerate(pre.planes[0]):
            assert np.array_equal(tensor[i], poly.residues)
        replacement = ring.constant(41)
        pre.set_poly(0, 2, replacement)
        assert pre.planes[0][2] is replacement
        assert np.array_equal(pre.plane_tensor(0)[2], replacement.residues)

    def test_lazy_stack_matches_per_poly_preprocess(self, small_params):
        db = PirDatabase.random(small_params, num_records=8, record_bytes=96, seed=6)
        ring = RingContext(small_params)
        pre = db.preprocess(ring)
        lazy = PreprocessedDatabase(pre.layout, ring, [list(r) for r in pre.planes])
        assert np.array_equal(lazy.plane_tensor(0), pre.plane_tensor(0))
