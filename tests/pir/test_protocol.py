"""End-to-end PIR: the headline correctness property of the whole stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.params import PirParams
from repro.pir.database import PirDatabase
from repro.pir.protocol import PirProtocol


@pytest.fixture(scope="module")
def session(small_params):
    db = PirDatabase.random(small_params, num_records=32, record_bytes=512, seed=11)
    return PirProtocol(small_params, db, seed=42), db


class TestEndToEnd:
    def test_retrieves_correct_record(self, session):
        protocol, db = session
        for index in (0, 1, 9, 31):
            result = protocol.retrieve(index)
            assert result.record == db.record(index)

    def test_all_indices_random_sample(self, session):
        protocol, db = session
        rng = np.random.default_rng(0)
        for index in rng.choice(32, size=4, replace=False):
            assert protocol.retrieve(int(index)).record == db.record(int(index))

    def test_batch_retrieval(self, session):
        protocol, db = session
        indices = [3, 17, 3, 28]
        records = protocol.retrieve_batch(indices)
        for idx, rec in zip(indices, records):
            assert rec == db.record(idx)

    def test_transcript_accounting(self, small_params):
        db = PirDatabase.random(small_params, num_records=8, record_bytes=64, seed=1)
        protocol = PirProtocol(small_params, db, seed=7)
        assert protocol.transcript.setup_bytes == (
            small_params.num_evks * small_params.evk_bytes
        )
        protocol.retrieve(2)
        t = protocol.transcript
        assert t.queries_served == 1
        expected_query = (
            small_params.ct_bytes + small_params.num_dims * small_params.rgsw_bytes
        )
        assert t.query_bytes == expected_query
        assert t.response_bytes == small_params.ct_bytes
        assert t.per_query_online_bytes() == expected_query + small_params.ct_bytes


class TestVariantGeometries:
    def test_power_of_two_plaintext(self, pow2_params):
        """Table I style P = 2^16: payload headroom absorbs the D0 factor."""
        db = PirDatabase.random(pow2_params, num_records=16, record_bytes=96, seed=2)
        protocol = PirProtocol(pow2_params, db, seed=3)
        for index in (0, 5, 15):
            assert protocol.retrieve(index).record == db.record(index)

    def test_single_dimension_no_coltor(self):
        params = PirParams.small(n=256, d0=8, num_dims=0)
        db = PirDatabase.random(params, num_records=8, record_bytes=128, seed=4)
        protocol = PirProtocol(params, db, seed=5)
        for index in (0, 7):
            assert protocol.retrieve(index).record == db.record(index)

    def test_deep_coltor_tree(self):
        params = PirParams.small(n=256, d0=4, num_dims=3)
        db = PirDatabase.random(params, num_records=32, record_bytes=64, seed=6)
        protocol = PirProtocol(params, db, seed=7)
        for index in (0, 13, 31):
            assert protocol.retrieve(index).record == db.record(index)

    def test_packed_small_records(self, small_params):
        """Several records share one polynomial; offsets must resolve."""
        db = PirDatabase.random(small_params, num_records=20, record_bytes=100, seed=8)
        protocol = PirProtocol(small_params, db, seed=9)
        for index in (0, 4, 5, 19):
            assert protocol.retrieve(index).record == db.record(index)

    def test_striped_large_records(self):
        """A record larger than one polynomial spans multiple planes."""
        params = PirParams.small(n=128, d0=4, num_dims=1)
        db = PirDatabase.random(params, num_records=8, record_bytes=600, seed=10)
        protocol = PirProtocol(params, db, seed=11)
        result = protocol.retrieve(3)
        assert result.record == db.record(3)
        assert len(result.response.plane_cts) == db.layout.plane_count
        assert db.layout.plane_count > 1

    def test_wrong_bit_count_rejected(self, session):
        protocol, _ = session
        query = protocol.client.build_query(0, protocol.db.layout)
        query.selection_bits.pop()
        with pytest.raises(ParameterError):
            protocol.server.answer(query)


class TestPrivacyShape:
    def test_queries_for_different_indices_have_same_size(self, session):
        protocol, _ = session
        params = protocol.params
        sizes = {
            protocol.client.build_query(i, protocol.db.layout).size_bytes(params)
            for i in (0, 13, 31)
        }
        assert len(sizes) == 1

    def test_query_ciphertexts_differ_between_builds(self, session):
        """Fresh encryption randomness: two queries for the same index differ."""
        protocol, _ = session
        q1 = protocol.client.build_query(5, protocol.db.layout)
        q2 = protocol.client.build_query(5, protocol.db.layout)
        assert not np.array_equal(q1.packed.a.residues, q2.packed.a.residues)


@settings(max_examples=5, deadline=None)
@given(st.integers(min_value=0, max_value=15))
def test_retrieval_property(index):
    params = PirParams.small(n=128, d0=4, num_dims=2)
    db = PirDatabase.random(params, num_records=16, record_bytes=32, seed=99)
    protocol = PirProtocol(params, db, seed=100)
    assert protocol.retrieve(index).record == db.record(index)
