"""Backend parity matrix: every backend, every serving mode, byte-identical.

The compute-backend contract (:mod:`repro.he.backend`) is that backends
differ only in *how* they compute — never in what.  For each serving
mode (plain PIR, batch PIR, keyword PIR, hint PIR) this runs one seeded
end-to-end query per registered backend and asserts the server-side
transcript equals the ``eager`` oracle's byte for byte, then that the
client decodes the right record.  A new backend registered later is
picked up automatically and held to the same bar.
"""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.he.backend import backend_names, get_backend, resolve_backend
from repro.params import PirParams

BACKENDS = backend_names()
NON_EAGER = [name for name in BACKENDS if name != "eager"]


def _assert_ct_equal(fast, ref):
    assert np.array_equal(fast.a.residues, ref.a.residues)
    assert np.array_equal(fast.b.residues, ref.b.residues)


def _assert_pir_responses_equal(fast, ref):
    assert len(fast.plane_cts) == len(ref.plane_cts)
    for f, r in zip(fast.plane_cts, ref.plane_cts):
        _assert_ct_equal(f, r)


class TestRegistry:
    def test_both_builtin_backends_registered(self):
        assert {"eager", "planned"} <= set(BACKENDS)

    def test_unknown_backend_is_a_typed_error_listing_the_registry(self):
        with pytest.raises(ParameterError, match="unknown compute backend"):
            get_backend("warp-drive")
        with pytest.raises(ParameterError, match=", ".join(BACKENDS)):
            get_backend("warp-drive")

    def test_resolve_accepts_names_instances_and_none(self):
        eager = get_backend("eager")
        assert resolve_backend("eager") is eager
        assert resolve_backend(eager) is eager
        assert resolve_backend(None).name in BACKENDS


@pytest.mark.parametrize("backend", NON_EAGER)
class TestParityMatrix:
    def test_plain_pir(self, small_params, backend):
        from repro.pir.database import PirDatabase
        from repro.pir.protocol import PirProtocol

        db = PirDatabase.random(
            small_params, num_records=24, record_bytes=96, seed=31
        )
        oracle = PirProtocol(small_params, db, seed=32, backend="eager")
        under_test = PirProtocol(small_params, db, seed=32, backend=backend)
        for index in (0, 11, 23):
            query = oracle.client.build_query(index, db.layout)
            ref = oracle.server.answer(query)
            fast = under_test.server.answer(query)
            _assert_pir_responses_equal(fast, ref)
            assert under_test.client.decode_response(
                fast, index, db.layout
            ) == db.record(index)

    def test_batchpir(self, backend):
        from repro.batchpir import BatchPirProtocol

        params = PirParams.small(n=256, d0=8, num_dims=2)
        rng = np.random.default_rng(33)
        records = [rng.bytes(24) for _ in range(256)]
        oracle = BatchPirProtocol(
            params, records, max_batch=8, seed=33, backend="eager"
        )
        under_test = BatchPirProtocol(
            params, records, max_batch=8, seed=33, backend=backend
        )
        indices = [0, 17, 101, 255]
        plan = oracle.client.plan(indices)
        query = oracle.client.build_queries(plan)
        ref = oracle.server.answer(query)
        fast = under_test.server.answer(query)
        assert len(fast.rounds) == len(ref.rounds)
        for fast_round, ref_round in zip(fast.rounds, ref.rounds):
            for f, r in zip(fast_round, ref_round):
                _assert_pir_responses_equal(f, r)
        decoded = oracle.client.decode(plan, fast)
        for g in indices:
            assert decoded[g] == records[g]

    def test_kvpir(self, backend):
        from repro.kvpir import KvPirProtocol

        params = PirParams.small(n=256, d0=8, num_dims=2)
        items = {
            f"user-{i:05d}".encode(): i.to_bytes(4, "big") * 3 for i in range(48)
        }
        oracle = KvPirProtocol(
            params, items, max_lookup_batch=4, seed=34, backend="eager"
        )
        under_test = KvPirProtocol(
            params, items, max_lookup_batch=4, seed=34, backend=backend
        )
        keys = list(items)[:3]
        plan = oracle.client.plan(keys)
        query = oracle.client.build_queries(plan)
        ref = oracle.server.answer(query)
        fast = under_test.server.answer(query)
        assert len(fast.chunks) == len(ref.chunks)
        for fast_chunk, ref_chunk in zip(fast.chunks, ref.chunks):
            for fast_round, ref_round in zip(fast_chunk.rounds, ref_chunk.rounds):
                for f, r in zip(fast_round, ref_round):
                    _assert_pir_responses_equal(f, r)
        values = oracle.client.decode(plan, fast)
        for key in keys:
            assert values[key] == items[key]

    def test_hintpir(self, backend):
        from repro.hintpir.protocol import HintPirProtocol
        from repro.pir.simplepir import SimplePirParams

        lwe = SimplePirParams(lwe_dim=64)
        rng = np.random.default_rng(35)
        records = [rng.bytes(24) for _ in range(32)]
        oracle = HintPirProtocol(records, 24, lwe, seed=35, backend="eager")
        under_test = HintPirProtocol(records, 24, lwe, seed=35, backend=backend)
        assert np.array_equal(oracle.server.hint(), under_test.server.hint())
        for index in (0, 15, 31):
            query = oracle.client.build_query(index)
            ref = oracle.server.answer(query)
            fast = under_test.server.answer(query)
            assert np.array_equal(fast.vector, ref.vector)
            assert oracle.client.decode(query, fast) == records[index]
