"""SimplePIR functional baseline (Table IV substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError, ParameterError
from repro.pir.simplepir import (
    SimplePirClient,
    SimplePirParams,
    SimplePirServer,
    db_matrix_shape,
)


@pytest.fixture(scope="module")
def setup():
    params = SimplePirParams(lwe_dim=128)
    rng = np.random.default_rng(0)
    db = rng.integers(0, params.p, size=(32, 32), dtype=np.int64)
    server = SimplePirServer(db, params, seed=1)
    client = SimplePirClient(server, seed=2)
    return db, server, client


class TestSimplePir:
    def test_retrieves_entries(self, setup):
        db, server, client = setup
        for row, col in ((0, 0), (5, 9), (31, 31), (12, 0)):
            query, secret = client.build_query(col)
            answer = server.answer(query)
            assert client.recover(answer, secret, row) == db[row, col]

    def test_whole_column_recoverable(self, setup):
        """One query yields every row of the column — SimplePIR's rate."""
        db, server, client = setup
        query, secret = client.build_query(7)
        answer = server.answer(query)
        for row in range(db.shape[0]):
            assert client.recover(answer, secret, row) == db[row, 7]

    def test_query_size_independent_of_target(self, setup):
        _, server, client = setup
        q1, _ = client.build_query(0)
        q2, _ = client.build_query(31)
        assert q1.shape == q2.shape

    def test_bad_column_rejected(self, setup):
        _, _, client = setup
        with pytest.raises(LayoutError):
            client.build_query(32)

    def test_bad_query_shape_rejected(self, setup):
        _, server, _ = setup
        with pytest.raises(LayoutError):
            server.answer(np.zeros(5, dtype=np.int64))

    def test_oversized_entries_rejected(self):
        params = SimplePirParams()
        with pytest.raises(LayoutError):
            SimplePirServer(np.full((4, 4), params.p, dtype=np.int64), params)

    def test_non_matrix_rejected(self):
        params = SimplePirParams()
        with pytest.raises(LayoutError):
            SimplePirServer(np.zeros(16, dtype=np.int64), params)

    def test_overflow_guard(self):
        with pytest.raises(ParameterError):
            SimplePirParams(q_log2=40, p_log2=24)


class TestShapeHelper:
    def test_square(self):
        assert db_matrix_shape(1024) == (32, 32)

    def test_non_square(self):
        rows, cols = db_matrix_shape(48)
        assert rows * cols == 48
        assert rows <= cols

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=10000))
    def test_factorization_property(self, n):
        rows, cols = db_matrix_shape(n)
        assert rows * cols == n
        assert 1 <= rows <= cols
