"""SimplePIR functional baseline (Table IV substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError, ParameterError
from repro.pir.simplepir import (
    SimplePirClient,
    SimplePirParams,
    SimplePirServer,
    db_matrix_shape,
    modular_gemm,
)


@pytest.fixture(scope="module")
def setup():
    params = SimplePirParams(lwe_dim=128)
    rng = np.random.default_rng(0)
    db = rng.integers(0, params.p, size=(32, 32), dtype=np.int64)
    server = SimplePirServer(db, params, seed=1)
    client = SimplePirClient(server, seed=2)
    return db, server, client


class TestSimplePir:
    def test_retrieves_entries(self, setup):
        db, server, client = setup
        for row, col in ((0, 0), (5, 9), (31, 31), (12, 0)):
            query, secret = client.build_query(col)
            answer = server.answer(query)
            assert client.recover(answer, secret, row) == db[row, col]

    def test_whole_column_recoverable(self, setup):
        """One query yields every row of the column — SimplePIR's rate."""
        db, server, client = setup
        query, secret = client.build_query(7)
        answer = server.answer(query)
        for row in range(db.shape[0]):
            assert client.recover(answer, secret, row) == db[row, 7]

    def test_query_size_independent_of_target(self, setup):
        _, server, client = setup
        q1, _ = client.build_query(0)
        q2, _ = client.build_query(31)
        assert q1.shape == q2.shape

    def test_bad_column_rejected(self, setup):
        _, _, client = setup
        with pytest.raises(LayoutError):
            client.build_query(32)

    def test_bad_query_shape_rejected(self, setup):
        _, server, _ = setup
        with pytest.raises(LayoutError):
            server.answer(np.zeros(5, dtype=np.int64))

    def test_oversized_entries_rejected(self):
        params = SimplePirParams()
        with pytest.raises(LayoutError):
            SimplePirServer(np.full((4, 4), params.p, dtype=np.int64), params)

    def test_non_matrix_rejected(self):
        params = SimplePirParams()
        with pytest.raises(LayoutError):
            SimplePirServer(np.zeros(16, dtype=np.int64), params)

    def test_overflow_guard(self):
        with pytest.raises(ParameterError):
            SimplePirParams(q_log2=40, p_log2=24)


class TestAnswerBatch:
    def test_byte_identical_to_per_query_loop(self, setup):
        """The vectorized window (one DB @ Q GEMM) must be bit-for-bit the
        looped per-query path — chunked accumulation is exact mod q."""
        db, server, client = setup
        queries = [client.build_query(col)[0] for col in (0, 7, 31, 7, 15)]
        stacked = np.stack(queries, axis=1)
        batched = server.answer_batch(stacked)
        assert batched.shape == (db.shape[0], len(queries))
        for j, query in enumerate(queries):
            assert batched[:, j].tobytes() == server.answer(query).tobytes()

    def test_batch_of_one_matches_single(self, setup):
        _, server, client = setup
        query, _ = client.build_query(3)
        assert np.array_equal(server.answer_batch(query[:, None])[:, 0],
                              server.answer(query))

    def test_rejects_wrong_shapes(self, setup):
        _, server, _ = setup
        with pytest.raises(LayoutError):
            server.answer_batch(np.zeros((5, 2), dtype=np.int64))
        with pytest.raises(LayoutError):
            server.answer_batch(np.zeros(32, dtype=np.int64))


class TestModularGemm:
    @settings(max_examples=40, deadline=None)
    @given(
        q_log2=st.integers(min_value=2, max_value=62),
        inner=st.integers(min_value=1, max_value=48),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_matches_arbitrary_precision(self, q_log2, inner, seed):
        """Chunked int64 accumulation == exact bignum arithmetic, including
        regimes where a single product term would overflow int64."""
        q = 1 << q_log2
        rng = np.random.default_rng(seed)
        a = rng.integers(0, q, size=(3, inner), dtype=np.int64)
        b = rng.integers(0, q, size=(inner, 2), dtype=np.int64)
        exact = (a.astype(object) @ b.astype(object)) % q
        assert np.array_equal(modular_gemm(a, b, q), exact.astype(np.int64))

    def test_signed_delta_operands(self):
        q = 1 << 28
        rng = np.random.default_rng(0)
        a = rng.integers(-255, 256, size=(4, 20), dtype=np.int64)
        b = rng.integers(0, q, size=(20, 4), dtype=np.int64)
        exact = (a.astype(object) @ b.astype(object)) % q
        assert np.array_equal(modular_gemm(a, b, q), exact.astype(np.int64))

    def test_empty_inner_dimension(self):
        out = modular_gemm(np.zeros((3, 0), dtype=np.int64),
                           np.zeros((0, 2), dtype=np.int64), 1 << 20)
        assert out.shape == (3, 2) and not out.any()


class TestAdversarialDecode:
    """Decode correctness at parameter corners (satellite: hypothesis
    sweep near the int64 accumulation bound and degenerate layouts)."""

    @settings(max_examples=25, deadline=None)
    @given(
        q_log2=st.integers(min_value=45, max_value=51),
        p_log2=st.integers(min_value=4, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_near_int64_bound(self, q_log2, p_log2, seed):
        params = SimplePirParams(lwe_dim=16, q_log2=q_log2, p_log2=p_log2)
        rng = np.random.default_rng(seed)
        db = rng.integers(0, params.p, size=(4, 6), dtype=np.int64)
        server = SimplePirServer(db, params, seed=seed)
        client = SimplePirClient(server, seed=seed + 1)
        col = int(rng.integers(0, db.shape[1]))
        query, secret = client.build_query(col)
        answer = server.answer(query)
        for row in range(db.shape[0]):
            assert client.recover(answer, secret, row) == db[row, col]

    @settings(max_examples=25, deadline=None)
    @given(
        num_records=st.integers(min_value=1, max_value=97),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_non_square_record_counts(self, num_records, seed):
        params = SimplePirParams(lwe_dim=32)
        rows, cols = db_matrix_shape(num_records)
        rng = np.random.default_rng(seed)
        db = rng.integers(0, params.p, size=(rows, cols), dtype=np.int64)
        server = SimplePirServer(db, params, seed=seed)
        client = SimplePirClient(server, seed=seed + 1)
        col = int(rng.integers(0, cols))
        row = int(rng.integers(0, rows))
        query, secret = client.build_query(col)
        assert client.recover(server.answer(query), secret, row) == db[row, col]

    def test_single_column_database(self):
        params = SimplePirParams(lwe_dim=32)
        rng = np.random.default_rng(3)
        db = rng.integers(0, params.p, size=(16, 1), dtype=np.int64)
        server = SimplePirServer(db, params, seed=4)
        client = SimplePirClient(server, seed=5)
        query, secret = client.build_query(0)
        answer = server.answer(query)
        for row in range(16):
            assert client.recover(answer, secret, row) == db[row, 0]


class TestShapeHelper:
    def test_square(self):
        assert db_matrix_shape(1024) == (32, 32)

    def test_non_square(self):
        rows, cols = db_matrix_shape(48)
        assert rows * cols == 48
        assert rows <= cols

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=10000))
    def test_factorization_property(self, n):
        rows, cols = db_matrix_shape(n)
        assert rows * cols == n
        assert 1 <= rows <= cols
