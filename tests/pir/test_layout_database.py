"""Record layout, packing roundtrips, database preprocessing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.he.poly import RingContext
from repro.params import PirParams
from repro.pir.database import PirDatabase
from repro.pir.layout import RecordLayout


class TestLayoutGeometry:
    def test_single_record_per_poly(self, small_params):
        lay = RecordLayout(small_params, record_bytes=512, num_records=16)
        assert lay.coeff_bytes == 2
        assert lay.poly_capacity_bytes == 512
        assert lay.plane_count == 1
        assert lay.records_per_poly == 1
        assert lay.poly_index(7) == 7

    def test_packed_small_records(self, small_params):
        lay = RecordLayout(small_params, record_bytes=64, num_records=32)
        assert lay.records_per_poly == 8
        assert lay.poly_index(0) == 0
        assert lay.poly_index(7) == 0
        assert lay.poly_index(8) == 1
        assert lay.slot_offset_bytes(9) == 64

    def test_striped_large_records(self, small_params):
        lay = RecordLayout(small_params, record_bytes=1200, num_records=8)
        assert lay.plane_count == 3
        assert lay.records_per_poly == 1
        assert lay.bytes_per_plane_poly == 400
        chunks = lay.record_to_plane_chunks(bytes(range(0, 200)) * 6)
        assert len(chunks) == 3
        assert sum(len(c) for c in chunks) == 1200

    def test_capacity_overflow_rejected(self, small_params):
        # small_params: D = 8 * 2^2 = 32 polys
        with pytest.raises(LayoutError):
            RecordLayout(small_params, record_bytes=512, num_records=33)

    def test_invalid_sizes_rejected(self, small_params):
        with pytest.raises(LayoutError):
            RecordLayout(small_params, record_bytes=0, num_records=4)
        with pytest.raises(LayoutError):
            RecordLayout(small_params, record_bytes=16, num_records=0)

    def test_index_bounds(self, small_params):
        lay = RecordLayout(small_params, record_bytes=512, num_records=16)
        with pytest.raises(LayoutError):
            lay.poly_index(16)
        with pytest.raises(LayoutError):
            lay.poly_index(-1)

    def test_dimension_indices(self, small_params):
        lay = RecordLayout(small_params, record_bytes=512, num_records=32)
        row, bits = lay.dimension_indices(0)
        assert (row, bits) == (0, [0, 0])
        row, bits = lay.dimension_indices(9)  # poly 9 = col 1, row 1
        assert (row, bits) == (1, [1, 0])
        row, bits = lay.dimension_indices(31)  # poly 31 = col 3, row 7
        assert (row, bits) == (7, [1, 1])


class TestPacking:
    def test_pack_unpack_roundtrip(self, small_params):
        lay = RecordLayout(small_params, record_bytes=512, num_records=4)
        rng = np.random.default_rng(0)
        data = rng.bytes(512)
        coeffs = lay.pack_poly(data)
        assert coeffs.max() < small_params.plain_modulus
        assert lay.unpack_poly(coeffs, 512) == data

    def test_pack_partial_poly_pads_zero(self, small_params):
        lay = RecordLayout(small_params, record_bytes=100, num_records=4)
        coeffs = lay.pack_poly(b"\xff" * 100)
        assert lay.unpack_poly(coeffs, 100) == b"\xff" * 100
        assert np.all(coeffs[50:] == 0)

    def test_pack_too_large_rejected(self, small_params):
        lay = RecordLayout(small_params, record_bytes=512, num_records=4)
        with pytest.raises(LayoutError):
            lay.pack_poly(b"\0" * 513)

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=1, max_size=512))
    def test_pack_roundtrip_property(self, data):
        lay = RecordLayout(
            PirParams.small(n=256, d0=8, num_dims=2), record_bytes=512, num_records=4
        )
        coeffs = lay.pack_poly(data)
        assert lay.unpack_poly(coeffs, len(data)) == data

    @settings(max_examples=25, deadline=None)
    @given(
        blobs=st.lists(st.binary(min_size=0, max_size=512), min_size=0, max_size=6)
    )
    def test_vectorized_pack_is_byte_identical_to_reference(self, blobs):
        """The np.frombuffer fast path must match the per-coefficient loop
        bit for bit — the invariant the delta re-packer leans on."""
        lay = RecordLayout(
            PirParams.small(n=256, d0=8, num_dims=2), record_bytes=512, num_records=4
        )
        vectorized = lay.pack_polys(blobs)
        reference = [lay._pack_poly_scalar(b) for b in blobs]
        assert vectorized.shape == (len(blobs), lay.params.n)
        assert vectorized.dtype == np.int64
        for got, want in zip(vectorized, reference):
            assert np.array_equal(got, want)

    def test_vectorized_pack_across_coeff_widths(self):
        """Byte-identical packing at 1-, 2-, 3-, and 4-byte coefficients."""
        rng = np.random.default_rng(9)
        for plain in (1 << 12, 65537, 1 << 33, 1 << 35):
            params = PirParams.small(n=256, d0=8, num_dims=2, plain_modulus=plain)
            cap = params.n * (params.payload_bits_per_coeff // 8)
            lay = RecordLayout(params, record_bytes=cap, num_records=2)
            blob = rng.bytes(cap)
            assert np.array_equal(lay.pack_poly(blob), lay._pack_poly_scalar(blob))

    def test_database_pack_matches_per_record_reference(self, small_params):
        """Whole-database vectorized packing (packed AND striped layouts)
        equals a record-by-record reference build."""
        rng = np.random.default_rng(10)
        for record_bytes, num in ((64, 24), (1200, 6)):  # 8/poly and 3 planes
            records = [rng.bytes(record_bytes) for _ in range(num)]
            db = PirDatabase.from_records(records, small_params, record_bytes)
            lay = db.layout
            want = np.zeros_like(db.planes)
            if lay.plane_count == 1:
                for poly in range(lay.polys_needed):
                    start = poly * lay.records_per_poly
                    chunk = b"".join(records[start : start + lay.records_per_poly])
                    want[0, poly] = lay._pack_poly_scalar(chunk)
            else:
                for idx, record in enumerate(records):
                    for plane, chunk in enumerate(lay.record_to_plane_chunks(record)):
                        want[plane, lay.poly_index(idx)] = lay._pack_poly_scalar(chunk)
            assert np.array_equal(db.planes, want)


class TestDatabase:
    def test_random_db_records_accessible(self, small_params):
        db = PirDatabase.random(small_params, num_records=16, record_bytes=128, seed=3)
        assert db.num_records == 16
        assert len(db.record(5)) == 128
        assert db.raw_bytes == 16 * 128

    def test_mismatched_record_sizes_rejected(self, small_params):
        with pytest.raises(LayoutError):
            PirDatabase.from_records([b"ab", b"a"], small_params)

    def test_empty_db_rejected(self, small_params):
        with pytest.raises(LayoutError):
            PirDatabase.from_records([], small_params)

    def test_preprocess_shape_and_expansion(self, small_params):
        db = PirDatabase.random(small_params, num_records=8, record_bytes=512, seed=4)
        ring = RingContext(small_params)
        pre = db.preprocess(ring)
        assert pre.plane_count == 1
        assert pre.num_polys == small_params.num_db_polys
        # Preprocessed form stores RNS residues: logQ/logP blowup.
        assert pre.stored_bytes > db.raw_bytes
        ratio = small_params.db_expansion_ratio
        assert ratio == pytest.approx(
            small_params.poly_bytes / small_params.plain_poly_bytes
        )  # the paper-parameter bound (< 3.5x) is checked in test_paper_sizes

    def test_preprocessed_poly_indexing(self, small_params):
        db = PirDatabase.random(small_params, num_records=32, record_bytes=512, seed=5)
        ring = RingContext(small_params)
        pre = db.preprocess(ring)
        d0 = small_params.d0
        flat = pre.planes[0][1 * d0 + 3]
        assert pre.poly(0, 3, 1) is flat

    def test_paper_sizes_match_table(self):
        """Table I / Section II sizes: ct 112 KB, RGSW 1120 KB, evk 560 KB."""
        params = PirParams.paper()
        assert params.poly_bytes == 56 * 1024
        assert params.ct_bytes == 112 * 1024
        assert params.rgsw_bytes == 1120 * 1024
        assert params.evk_bytes == 560 * 1024
        assert params.plain_poly_bytes == 16 * 1024
        assert params.db_expansion_ratio == 3.5
