"""Unit coverage for the bounded-memory metrics substrate."""

import json

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.obs import (
    CounterMetric,
    GaugeMetric,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
    TimeSeries,
)


class TestCounterAndGauge:
    def test_counter_increments_and_rejects_decrease(self):
        c = CounterMetric("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ParameterError):
            c.inc(-1)
        assert c.value == 5

    def test_gauge_tracks_value_and_max(self):
        g = GaugeMetric("depth")
        g.set(3.0)
        g.set(9.0)
        g.set(2.0)
        assert g.value == 2.0
        assert g.max == 9.0


class TestQuantileSketch:
    def test_empty_sketch_reports_none_not_zero(self):
        s = QuantileSketch()
        assert s.quantile(0.5) is None
        assert s.mean is None
        summary = s.summary()
        assert summary["count"] == 0
        assert summary["p99"] is None
        # None must survive a JSON round-trip as null, not 0.
        assert json.loads(json.dumps(summary))["p99"] is None

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            QuantileSketch(relative_accuracy=0.0)
        s = QuantileSketch()
        with pytest.raises(ParameterError):
            s.record(-1.0)
        with pytest.raises(ParameterError):
            s.quantile(1.5)

    def test_extremes_are_exact(self):
        s = QuantileSketch()
        for v in (0.25, 1.0, 7.5):
            s.record(v)
        assert s.quantile(0.0) == 0.25
        assert s.quantile(1.0) == 7.5
        assert s.min == 0.25 and s.max == 7.5

    def test_zero_values_land_in_zero_bucket(self):
        s = QuantileSketch()
        for _ in range(9):
            s.record(0.0)
        s.record(100.0)
        assert s.quantile(0.5) == 0.0
        assert s.quantile(1.0) == 100.0

    def test_accuracy_bound_against_numpy(self):
        rng = np.random.default_rng(17)
        values = rng.lognormal(mean=-3.0, sigma=1.5, size=20_000)
        s = QuantileSketch(relative_accuracy=0.01)
        for v in values:
            s.record(float(v))
        for q in (0.5, 0.9, 0.95, 0.99):
            exact = float(np.percentile(values, q * 100))
            estimate = s.quantile(q)
            assert abs(estimate - exact) <= 0.02 * exact + 1e-12

    def test_merge_matches_single_stream(self):
        rng = np.random.default_rng(5)
        values = rng.exponential(scale=0.01, size=4_000)
        whole, left, right = (QuantileSketch() for _ in range(3))
        for v in values:
            whole.record(float(v))
        for v in values[:1000]:
            left.record(float(v))
        for v in values[1000:]:
            right.record(float(v))
        left.merge(right)
        assert left.count == whole.count
        assert left.sum == pytest.approx(whole.sum)
        assert left.min == whole.min and left.max == whole.max
        for q in (0.5, 0.99):
            assert left.quantile(q) == pytest.approx(whole.quantile(q))

    def test_merge_rejects_mismatched_accuracy(self):
        with pytest.raises(ParameterError):
            QuantileSketch(0.01).merge(QuantileSketch(0.05))

    def test_memory_stays_bounded(self):
        s = QuantileSketch(relative_accuracy=0.01)
        for i in range(50_000):
            s.record(1e-6 * (1 + i % 997))
        # 50k samples over three decades: bucket count is O(log range),
        # not O(samples) — the whole point of replacing the reservoir.
        assert len(s._buckets) < 2_000
        assert s.count == 50_000


class TestHistogramAndSeries:
    def test_histogram_delegates_to_sketch(self):
        h = Histogram("lat")
        for v in (0.1, 0.2, 0.3):
            h.record(v)
        assert h.count == 3
        assert h.mean == pytest.approx(0.2)
        assert h.summary()["min"] == pytest.approx(0.1)

    def test_series_windows_and_rows(self):
        ts = TimeSeries(window_s=1.0)
        ts.record_submit(accepted=True, t_s=0.2)
        ts.record_submit(accepted=False, t_s=0.7)
        ts.record_served(latency_s=0.05, t_s=0.9)
        ts.record_served(latency_s=0.07, t_s=1.4)
        ts.record_failed(t_s=1.6, count=2)
        rows = ts.rows()
        assert [row["t_s"] for row in rows] == [0.0, 1.0]
        first, second = rows
        assert first["submitted"] == 2 and first["served"] == 1
        assert first["rejection_rate"] == pytest.approx(0.5)
        assert first["qps"] == pytest.approx(1.0)
        assert second["failed"] == 2
        assert second["p99_s"] == pytest.approx(0.07, rel=0.03)
        json.dumps(rows)

    def test_series_retention_is_bounded(self):
        ts = TimeSeries(window_s=1.0, max_windows=10)
        for t in range(50):
            ts.record_submit(accepted=True, t_s=float(t))
        rows = ts.rows()
        assert len(rows) == 10
        assert rows[0]["t_s"] == 40.0  # oldest windows dropped

    def test_series_validates_parameters(self):
        with pytest.raises(ParameterError):
            TimeSeries(window_s=0.0)
        with pytest.raises(ParameterError):
            TimeSeries(max_windows=0)


class TestMetricsRegistry:
    def test_create_or_get_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_is_a_typed_error(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ParameterError):
            reg.gauge("a")

    def test_snapshot_covers_every_kind(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(2.5)
        reg.histogram("h").record(0.1)
        reg.series("s").record_served(0.2, t_s=0.0)
        snap = reg.snapshot()
        assert snap["c"] == 3
        assert snap["g"] == {"value": 2.5, "max": 2.5}
        assert snap["h"]["count"] == 1
        assert snap["s"][0]["served"] == 1
        assert reg.names() == ["c", "g", "h", "s"]
        json.dumps(snap)
