"""Concurrency and accuracy pressure on the serving-metrics facade.

The registry records from event-loop callbacks while backend threads
finish batches; nothing here may drop counts, deadlock, or report a
quantile outside the sketch's advertised relative accuracy.
"""

import json
import threading

import numpy as np
import pytest

from repro.obs import QuantileSketch
from repro.serve.metrics import ServeMetrics


class TestInterleavedRecording:
    def test_counters_exact_under_thread_interleaving(self):
        """Four "dispatchers" hammer one ServeMetrics; totals stay exact."""
        num_shards, per_thread = 4, 500
        m = ServeMetrics(num_shards)
        barrier = threading.Barrier(num_shards)

        def dispatcher(shard: int):
            barrier.wait()
            for i in range(per_thread):
                t = i * 1e-3
                m.record_submit(accepted=(i % 10 != 0), now_s=t)
                if i % 10 == 0:
                    continue
                m.record_dispatch(shard, batch_size=1, depth_after=i % 7)
                if i % 13 == 0:
                    m.record_failed(shard, count=1, finish_s=t + 0.01)
                else:
                    m.record_served(
                        shard, latency_s=0.01, queue_wait_s=0.002, finish_s=t + 0.01
                    )

        threads = [
            threading.Thread(target=dispatcher, args=(s,)) for s in range(num_shards)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        rejected_per = per_thread // 10  # i % 10 == 0
        accepted_per = per_thread - rejected_per
        failed_per = sum(
            1 for i in range(per_thread) if i % 10 != 0 and i % 13 == 0
        )
        assert m.submitted == num_shards * per_thread
        assert m.rejected == num_shards * rejected_per
        assert m.accepted == num_shards * accepted_per
        assert m.failed == num_shards * failed_per
        assert m.served == num_shards * (accepted_per - failed_per)
        snap = m.snapshot()
        assert snap["served_by_shard"] == {
            str(s): accepted_per - failed_per for s in range(num_shards)
        }
        assert snap["failed_by_shard"] == {
            str(s): failed_per for s in range(num_shards)
        }
        assert snap["latency"]["p50_s"] == pytest.approx(0.01, rel=0.02)
        assert snap["queue_wait"]["p99_s"] == pytest.approx(0.002, rel=0.02)

    def test_snapshot_readable_while_writers_run(self):
        """Snapshots taken mid-stream are self-consistent and serializable."""
        m = ServeMetrics(1)
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                m.record_submit(accepted=True, now_s=i * 1e-4)
                m.record_served(
                    0, latency_s=1e-3, queue_wait_s=1e-4, finish_s=i * 1e-4
                )
                i += 1

        t = threading.Thread(target=writer)
        t.start()
        try:
            for _ in range(50):
                snap = m.snapshot()
                json.dumps(snap)
                assert snap["served"] <= snap["submitted"]
        finally:
            stop.set()
            t.join()


class TestEmptyRun:
    def test_empty_snapshot_has_null_percentiles(self):
        """A run that served nothing reports null, never a fake 0.0."""
        snap = ServeMetrics(2).snapshot()
        assert snap["submitted"] == 0 and snap["served"] == 0
        for key in ("p50_s", "p95_s", "p99_s", "mean_s"):
            assert snap["latency"][key] is None
            assert snap["queue_wait"][key] is None
        assert snap["achieved_qps"] == 0.0
        decoded = json.loads(json.dumps(snap))
        assert decoded["latency"]["p99_s"] is None


class TestSketchAccuracyAdversarial:
    """The 1%-relative-accuracy guarantee on distributions built to hurt."""

    @pytest.mark.parametrize(
        "name,values",
        [
            (
                "heavy-tail-pareto",
                (np.random.default_rng(3).pareto(1.2, 30_000) + 1.0) * 1e-4,
            ),
            (
                "lognormal-wide",
                np.random.default_rng(4).lognormal(-4.0, 2.5, 30_000),
            ),
            ("constant", np.full(10_000, 0.0375)),
            (
                "bimodal",
                np.concatenate(
                    [
                        np.random.default_rng(5).normal(1e-3, 1e-5, 15_000),
                        np.random.default_rng(6).normal(2.0, 1e-2, 15_000),
                    ]
                ).clip(min=0.0),
            ),
        ],
    )
    def test_quantiles_within_relative_accuracy(self, name, values):
        sketch = QuantileSketch(relative_accuracy=0.01)
        for v in values:
            sketch.record(float(v))
        for q in (0.5, 0.9, 0.99, 0.999):
            exact = float(np.quantile(values, q, method="inverted_cdf"))
            estimate = sketch.quantile(q)
            assert estimate is not None
            # Nearest-rank target, 1% relative bound (2% slack covers the
            # numpy-vs-sketch rank rounding at the distribution spikes).
            assert abs(estimate - exact) <= 0.02 * exact + 1e-12, (
                f"{name}: q={q} estimate {estimate} vs exact {exact}"
            )
