"""Export plane: Prometheus exposition, health JSONL, obs-watch rendering."""

import json

import pytest

from repro.cli import main
from repro.errors import ObsError
from repro.obs import (
    MetricsRegistry,
    append_health_jsonl,
    health_snapshot,
    read_health_jsonl,
    render_prometheus,
    render_watch_rows,
)
from repro.serve.metrics import ServeMetrics


def populated_metrics():
    metrics = ServeMetrics(num_shards=2)
    for i in range(20):
        metrics.record_submit(True, now_s=0.1 + i * 0.01)
        metrics.record_served(0, 0.005, 0.001, finish_s=0.2 + i * 0.01)
    metrics.record_submit(False, now_s=0.5)
    metrics.record_queue_depth(3)
    return metrics


class TestPrometheus:
    def test_counters_gauges_summaries_series(self):
        metrics = populated_metrics()
        text = render_prometheus(metrics.registry.snapshot())
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "# TYPE repro_serve_served_total counter" in lines
        assert "repro_serve_served_total 20" in lines
        assert "repro_serve_rejected_total 1" in lines
        assert "# TYPE repro_serve_queue_depth gauge" in lines
        assert "repro_serve_queue_depth 3" in lines
        assert any(
            line.startswith('repro_serve_latency_s{quantile="0.99"} ')
            for line in lines
        )
        assert "repro_serve_latency_s_count 20" in lines
        # The live series contributes last-window gauges.
        assert any(line.startswith("repro_serve_live_qps ") for line in lines)

    def test_empty_sketch_renders_without_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("empty.hist")
        lines = render_prometheus(registry.snapshot()).splitlines()
        assert "repro_empty_hist_count 0" in lines
        assert not any("quantile" in line for line in lines)

    def test_cluster_counters_and_worker_liveness(self):
        cluster = {
            "live_workers": [1],
            "worker_deaths": 1,
            "batches_retried": 2,
            "workers": {
                "0": {"alive": False, "inflight": 0},
                "1": {"alive": True, "inflight": 3},
            },
        }
        lines = render_prometheus({}, cluster=cluster).splitlines()
        assert "repro_cluster_worker_deaths_total 1" in lines
        assert "repro_cluster_live_workers 1" in lines
        assert 'repro_cluster_worker_up{worker="0"} 0' in lines
        assert 'repro_cluster_worker_up{worker="1"} 1' in lines
        assert 'repro_cluster_worker_inflight{worker="1"} 3' in lines

    def test_metric_names_are_sanitized(self):
        lines = render_prometheus({"serve.latency_s": 1}).splitlines()
        assert "repro_serve_latency_s_total 1" in lines

    def test_unexportable_shape_is_typed(self):
        with pytest.raises(ObsError):
            render_prometheus({"weird": "a string"})


class TestHealthJsonl:
    def test_snapshot_roundtrips_through_strict_reader(self, tmp_path):
        metrics = populated_metrics()
        row = health_snapshot(1.0, metrics, interval_s=1.0)
        path = tmp_path / "health.jsonl"
        append_health_jsonl(path, row)
        append_health_jsonl(path, row)
        rows = read_health_jsonl(path)
        assert len(rows) == 2
        assert rows[0]["served"] == 20
        assert rows[0]["rejected"] == 1
        assert rows[0]["queue_depth"] == 3
        assert rows[0]["qps"] == pytest.approx(20.0)
        assert rows[0]["worst_state"] == "ok"

    def test_missing_file_and_bad_rows_are_typed(self, tmp_path):
        with pytest.raises(ObsError, match="cannot read"):
            read_health_jsonl(tmp_path / "nope.jsonl")
        path = tmp_path / "health.jsonl"
        path.write_text('{"t_s": 1.0}\n')
        with pytest.raises(ObsError, match=":1:"):
            read_health_jsonl(path)
        path.write_text("not json\n")
        with pytest.raises(ObsError, match="not valid JSON"):
            read_health_jsonl(path)

    def test_bad_line_is_named_precisely(self, tmp_path):
        metrics = populated_metrics()
        path = tmp_path / "health.jsonl"
        append_health_jsonl(path, health_snapshot(1.0, metrics, 1.0))
        with open(path, "a") as fh:
            fh.write('{"t_s": "not a number"}\n')
        with pytest.raises(ObsError, match=":2:"):
            read_health_jsonl(path)


class TestWatchRendering:
    def row(self, **overrides):
        base = {
            "t_s": 1.0, "qps": 100.0, "p99_s": 0.004, "rejection_rate": 0.0,
            "submitted": 100, "rejected": 0, "served": 100, "failed": 0,
            "queue_depth": 2, "slo": [], "worst_state": "ok",
        }
        base.update(overrides)
        return base

    def test_rows_render_with_summary(self):
        lines = render_watch_rows([self.row(), self.row(t_s=2.0, served=200)])
        assert "t_s" in lines[0]  # header
        assert "2 snapshots: 0 breach, 0 warn" in lines[-1]
        assert "final 200 served" in lines[-1]

    def test_breach_rows_show_slo_detail(self):
        verdict = {
            "name": "p99<=0.25", "state": "breach", "burn_fast": 5.0,
            "burn_slow": 3.0, "measured": 0.5, "objective": 0.25,
        }
        lines = render_watch_rows(
            [self.row(worst_state="breach", slo=[verdict])]
        )
        joined = "\n".join(lines)
        assert "BREACH" in joined
        assert "!! p99<=0.25" in joined
        assert "1 breach" in joined

    def test_cluster_tail_renders(self):
        cluster = {
            "live_workers": [1], "worker_deaths": 1,
            "batches_retried": 2, "rebalanced_shards": 1,
        }
        lines = render_watch_rows([self.row(cluster=cluster)])
        assert any("1 death(s)" in line for line in lines)

    def test_empty_file_renders_placeholder(self):
        assert "no health snapshots" in render_watch_rows([])[-1]


class TestObsWatchCli:
    def write_health(self, tmp_path, states=("ok", "ok")):
        metrics = populated_metrics()
        path = tmp_path / "health.jsonl"
        for i, state in enumerate(states):
            row = health_snapshot(float(i), metrics, 1.0)
            row["worst_state"] = state
            append_health_jsonl(path, row)
        return path

    def test_replay_renders_and_exits_zero(self, capsys, tmp_path):
        path = self.write_health(tmp_path)
        assert main(["obs-watch", str(path), "--replay"]) == 0
        out = capsys.readouterr().out
        assert "2 snapshots" in out

    def test_replay_fail_on_breach(self, capsys, tmp_path):
        path = self.write_health(tmp_path, states=("ok", "breach"))
        assert main(["obs-watch", str(path), "--replay"]) == 0
        assert (
            main(["obs-watch", str(path), "--replay", "--fail-on-breach"]) == 1
        )

    def test_replay_is_strict_about_corruption(self, capsys, tmp_path):
        path = self.write_health(tmp_path)
        with open(path, "a") as fh:
            fh.write("{torn row\n")
        assert main(["obs-watch", str(path), "--replay"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and ":3:" in err

    def test_live_tail_picks_up_appended_rows(self, capsys, tmp_path):
        path = self.write_health(tmp_path)
        # A short timeout bounds the tail; rows present before the first
        # poll are rendered exactly once.
        assert main(
            ["obs-watch", str(path), "--interval", "0.05", "--timeout", "0.2"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 3  # header + 2 rows
        json.dumps(out)  # sanity: printable
