"""Tracer unit tests: ids, spans, exports, and cross-process attribution."""

import json
import pickle

import pytest

from repro.errors import ObsError
from repro.obs import (
    Span,
    Tracer,
    cross_process_traces,
    validate_chrome_trace,
    validate_spans_jsonl,
)


def span(trace_id, name="op", start=1.0, dur=0.5, pid=100, tid="main"):
    return Span(
        trace_id=trace_id, name=name, start_s=start, dur_s=dur, pid=pid, tid=tid
    )


class TestTracer:
    def test_mint_is_monotonic_and_unique(self):
        tracer = Tracer()
        ids = [tracer.mint() for _ in range(10)]
        assert ids == sorted(set(ids))
        assert ids[0] == 1

    def test_record_span_clamps_negative_duration(self):
        tracer = Tracer()
        tracer.record_span("op", start_s=2.0, end_s=1.5, trace_id=1)
        assert tracer.spans[0].dur_s == 0.0

    def test_record_instant_has_zero_duration(self):
        tracer = Tracer()
        tracer.record_instant("serve.reject", at_s=3.0, reason="queue-full")
        only = tracer.spans[0]
        assert only.dur_s == 0.0
        assert only.args == {"reason": "queue-full"}

    def test_extend_folds_in_foreign_process_spans(self):
        tracer = Tracer()
        tracer.record_span("serve.request", 0.0, 1.0, trace_id=7)
        tracer.extend([span(7, name="worker.answer", pid=tracer.pid + 1)])
        assert tracer.pids() == {tracer.pid, tracer.pid + 1}
        assert tracer.trace_pids()[7] == {tracer.pid, tracer.pid + 1}

    def test_spans_pickle_across_the_cluster_pipe(self):
        original = span(3, name="worker.batch", tid="worker-1")
        assert pickle.loads(pickle.dumps(original)) == original


class TestExports:
    def _tracer(self):
        tracer = Tracer()
        tracer.record_span("serve.request", 10.0, 10.5, trace_id=1)
        tracer.record_span("serve.batch", 10.1, 10.4, shard=0)
        tracer.extend([span(1, name="worker.answer", start=10.2, pid=tracer.pid + 1)])
        return tracer

    def test_jsonl_round_trips_through_validator(self, tmp_path):
        tracer = self._tracer()
        path = tmp_path / "run.spans.jsonl"
        assert tracer.export_jsonl(path) == 3
        spans = validate_spans_jsonl(path)
        assert len(spans) == 3
        assert cross_process_traces(spans) == [1]

    def test_chrome_trace_normalized_with_process_metadata(self, tmp_path):
        tracer = self._tracer()
        trace = tracer.chrome_trace()
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        ms = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert min(e["ts"] for e in xs) == 0.0  # normalized to t0
        assert {e["pid"] for e in ms} == {tracer.pid, tracer.pid + 1}
        names = {e["args"]["name"] for e in ms}
        assert f"serve (pid {tracer.pid})" in names
        assert f"cluster-worker (pid {tracer.pid + 1})" in names
        path = tmp_path / "run.trace.json"
        assert tracer.export_chrome(path) == 3
        validate_chrome_trace(path)

    def test_validator_rejects_corrupt_spans(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "op"}\n')
        with pytest.raises(ObsError):
            validate_spans_jsonl(path)
        path.write_text("not json\n")
        with pytest.raises(ObsError):
            validate_spans_jsonl(path)
        with pytest.raises(ObsError):
            validate_spans_jsonl(tmp_path / "missing.jsonl")

    def test_validator_rejects_negative_duration(self, tmp_path):
        path = tmp_path / "neg.jsonl"
        record = span(1).to_json()
        record["dur_s"] = -0.1
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ObsError):
            validate_spans_jsonl(path)

    def test_chrome_validator_rejects_unknown_phase(self, tmp_path):
        path = tmp_path / "bad.trace.json"
        path.write_text(json.dumps({"traceEvents": [{"ph": "B", "name": "x"}]}))
        with pytest.raises(ObsError):
            validate_chrome_trace(path)
