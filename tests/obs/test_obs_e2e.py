"""End-to-end observability: traced loadtests export valid artifacts.

The acceptance bar for the cluster path: one trace id must appear in
spans from at least two processes — the coordinator that admitted the
request and the spawned worker that answered it — and the exported
Chrome trace must be loadable by the strict validators.
"""

import json

import pytest

from repro.cli import main
from repro.obs import (
    cross_process_traces,
    validate_chrome_trace,
    validate_obs_json,
    validate_spans_jsonl,
)
from repro.obs.report import aggregate_kernel_profile


def run_traced(capsys, tmp_path, mode, extra=()):
    prefix = tmp_path / f"{mode}-run"
    argv = [
        "loadtest", "--mode", mode, "--trace", "--obs-out", str(prefix),
        *extra,
    ]
    assert main(argv) == 0
    out = json.loads(capsys.readouterr().out)
    assert out["obs_files"] == {
        "spans": f"{prefix}.spans.jsonl",
        "trace": f"{prefix}.trace.json",
        "obs": f"{prefix}.obs.json",
    }
    spans = validate_spans_jsonl(out["obs_files"]["spans"])
    trace = validate_chrome_trace(out["obs_files"]["trace"])
    obs = validate_obs_json(out["obs_files"]["obs"])
    return prefix, out, spans, trace, obs


class TestTracedLoadtest:
    def test_sim_mode_exports_valid_artifacts(self, capsys, tmp_path):
        prefix, out, spans, trace, obs = run_traced(
            capsys, tmp_path, "sim", ["--queries", "200"]
        )
        assert out["completed"] == 200
        assert obs["mode"] == "sim"
        # Every request leaves a traced span; ids start at 1.
        ids = {s["trace_id"] for s in spans if s["trace_id"] is not None}
        assert len(ids) == 200
        assert min(ids) == 1
        names = {s["name"] for s in spans}
        assert {"serve.request", "serve.queue", "serve.batch", "backend.sim"} <= names
        # Sim mode runs in-process on the virtual clock: one pid, no kernels.
        assert len({s["pid"] for s in spans}) == 1
        assert obs["kernel_profile"] == {}
        assert obs["live_series"]  # the windowed feed is populated
        assert main(["obs-report", str(prefix)]) == 0
        assert "mode sim" in capsys.readouterr().out

    def test_real_mode_profiles_kernels_and_models(self, capsys, tmp_path):
        prefix, out, spans, trace, obs = run_traced(
            capsys,
            tmp_path,
            "real",
            ["--queries", "4", "--records", "8", "--rate", "100"],
        )
        assert out["completed"] == 4 and out["errored"] == 0
        # Raw profile keys carry the backend that spent the time; the
        # aggregated view folds stage@backend back to the base stage.
        raw = obs["kernel_profile"]
        assert any("@" in name for name in raw), sorted(raw)
        profile = aggregate_kernel_profile(raw)
        # The full PIR pipeline ran under the hooks.
        for stage in ("expand", "rowsel", "coltor", "gemm", "ntt_fwd", "subs"):
            assert profile[stage]["calls"] > 0, stage
            assert profile[stage]["seconds"] > 0.0
        assert profile["expand"]["calls"] == 4  # one per query
        mvm = obs["measured_vs_modeled"]
        assert [row["stage"] for row in mvm] == ["expand", "rowsel", "coltor"]
        assert sum(row["measured_share"] for row in mvm) == pytest.approx(1.0)
        assert main(["obs-report", str(prefix)]) == 0
        report = capsys.readouterr().out
        assert "kernel stage" in report
        assert "measured CPU vs modeled IVE" in report

    def test_cluster_mode_traces_cross_the_process_boundary(
        self, capsys, tmp_path
    ):
        """Acceptance: same trace id on both sides of the spawn pipe."""
        prefix, out, spans, trace, obs = run_traced(
            capsys,
            tmp_path,
            "cluster",
            [
                "--queries", "8", "--records", "16", "--shards", "2",
                "--workers", "2", "--rate", "100",
            ],
        )
        assert out["completed"] == 8 and out["errored"] == 0
        pids = {s["pid"] for s in spans}
        assert len(pids) >= 2, "need coordinator + worker processes"
        crossing = cross_process_traces(spans)
        assert crossing, "no trace id crossed the process boundary"
        assert set(crossing) <= {s["trace_id"] for s in spans}
        names = {s["name"] for s in spans}
        assert {"cluster.rpc", "worker.answer", "worker.batch"} <= names
        # Worker-side kernel stats came home in WorkerStopped.
        profile = aggregate_kernel_profile(obs["kernel_profile"])
        assert profile["expand"]["calls"] == 8
        # The Chrome trace names both process kinds.
        meta = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert any(name.startswith("serve") for name in meta)
        assert any(name.startswith("cluster-worker") for name in meta)
        assert obs["cluster"]["live_workers"] == [0, 1]
        assert obs["cluster"]["worker_deaths"] == 0
        assert main(["obs-report", str(prefix)]) == 0
        report = capsys.readouterr().out
        assert "crossing a process boundary" in report
        assert "cluster: workers" in report

    def test_untraced_loadtest_exports_nothing(self, capsys, tmp_path):
        prefix = tmp_path / "plain"
        assert (
            main(
                ["loadtest", "--mode", "sim", "--queries", "50",
                 "--obs-out", str(prefix)]
            )
            == 0
        )
        out = json.loads(capsys.readouterr().out)
        assert "obs_files" not in out
        assert not (tmp_path / "plain.spans.jsonl").exists()


class TestObsReportErrors:
    def test_missing_prefix_is_a_typed_failure(self, capsys, tmp_path):
        assert main(["obs-report", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupted_artifact_fails_validation(self, capsys, tmp_path):
        prefix, *_ = run_traced(capsys, tmp_path, "sim", ["--queries", "50"])
        (tmp_path / "sim-run.obs.json").write_text('{"mode": "sim"}')
        assert main(["obs-report", str(prefix)]) == 2
        assert "digest missing" in capsys.readouterr().err
