"""obs-report failure paths: every bad artifact dies typed, naming its file.

The CLI contract under test: any validation failure exits 2 via a typed
:class:`~repro.errors.ObsError` whose message names the offending file —
an operator pointed at a corrupt export must learn *which* artifact to
regenerate, not just that "validation failed".
"""

import json

import pytest

from repro.cli import main
from repro.errors import ObsError
from repro.obs import validate_spans_jsonl


def export_valid_artifacts(capsys, tmp_path):
    """One small traced sim loadtest: the three-artifact happy path."""
    prefix = tmp_path / "run"
    assert main(
        ["loadtest", "--mode", "sim", "--queries", "50", "--trace",
         "--obs-out", str(prefix)]
    ) == 0
    capsys.readouterr()
    return prefix


class TestEmptyDirectory:
    def test_prefix_into_empty_directory_names_the_missing_file(
        self, capsys, tmp_path
    ):
        prefix = tmp_path / "empty" / "run"
        (tmp_path / "empty").mkdir()
        assert main(["obs-report", str(prefix)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        # The first artifact checked is the spans file; the message names it.
        assert f"{prefix}.spans.jsonl" in err


class TestTruncatedSpans:
    def test_mid_line_truncation_is_typed_with_line_number(
        self, capsys, tmp_path
    ):
        prefix = export_valid_artifacts(capsys, tmp_path)
        spans_path = tmp_path / "run.spans.jsonl"
        lines = spans_path.read_text().splitlines()
        assert len(lines) > 3
        # Chop the last line mid-JSON: the classic crashed-writer artifact.
        truncated = "\n".join(lines[:-1] + [lines[-1][: len(lines[-1]) // 2]])
        spans_path.write_text(truncated)
        with pytest.raises(ObsError) as excinfo:
            validate_spans_jsonl(spans_path)
        message = str(excinfo.value)
        assert str(spans_path) in message
        assert f":{len(lines)}:" in message  # the exact bad line
        assert main(["obs-report", str(prefix)]) == 2
        assert "not valid JSON" in capsys.readouterr().err


class TestMixedValidAndCorrupt:
    def test_valid_spans_but_corrupt_trace_names_the_trace_file(
        self, capsys, tmp_path
    ):
        prefix = export_valid_artifacts(capsys, tmp_path)
        trace_path = tmp_path / "run.trace.json"
        trace_path.write_text('{"traceEvents": "not a list"}')
        assert main(["obs-report", str(prefix)]) == 2
        err = capsys.readouterr().err
        assert str(trace_path) in err

    def test_valid_trace_but_wrong_typed_span_field_names_spans(
        self, capsys, tmp_path
    ):
        prefix = export_valid_artifacts(capsys, tmp_path)
        spans_path = tmp_path / "run.spans.jsonl"
        spans = [json.loads(line) for line in spans_path.read_text().splitlines()]
        spans[1]["dur_s"] = "fast"  # wrong type, still valid JSON
        spans_path.write_text("\n".join(json.dumps(s) for s in spans) + "\n")
        assert main(["obs-report", str(prefix)]) == 2
        err = capsys.readouterr().err
        assert str(spans_path) in err
        assert ":2:" in err and "dur_s" in err

    def test_digest_with_missing_metrics_keys_names_the_digest(
        self, capsys, tmp_path
    ):
        prefix = export_valid_artifacts(capsys, tmp_path)
        obs_path = tmp_path / "run.obs.json"
        doc = json.loads(obs_path.read_text())
        del doc["metrics"]["latency"]
        obs_path.write_text(json.dumps(doc))
        assert main(["obs-report", str(prefix)]) == 2
        err = capsys.readouterr().err
        assert str(obs_path) in err and "latency" in err
