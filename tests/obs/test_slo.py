"""SLO engine: spec validation, burn-rate math, multi-window gating.

All tests drive the evaluator over a :class:`TimeSeries` with explicit
timestamps — the same clock-agnostic contract the serving stack uses —
so the arithmetic is checked exactly, without a running event loop.
"""

import pytest

from repro.errors import ParameterError, SloError
from repro.obs import FlightRecorder, SloEvaluator, SloSpec, TimeSeries, parse_slo


def series_with(window_s=1.0):
    return TimeSeries(window_s=window_s)


def fill(series, t0, t1, latency_s, qps=100, reject_every=0, fail_every=0):
    """Uniform load on [t0, t1): ``qps`` submits per second at ``latency_s``."""
    t = t0
    i = 0
    while t < t1:
        i += 1
        if reject_every and i % reject_every == 0:
            series.record_submit(False, t)
        elif fail_every and i % fail_every == 0:
            series.record_submit(True, t)
            series.record_failed(t)
        else:
            series.record_submit(True, t)
            series.record_served(latency_s, t)
        t = t0 + i / qps
    return series


class TestTimeSeriesSubstrate:
    def test_rows_carry_the_raw_rejected_count(self):
        """Regression: burn-rate math needs counts, not just rounded rates."""
        series = series_with()
        for i in range(10):
            series.record_submit(i % 3 != 0, 0.5)
        rows = series.rows()
        assert len(rows) == 1
        assert rows[0]["submitted"] == 10
        assert rows[0]["rejected"] == 4
        assert rows[0]["rejection_rate"] == pytest.approx(0.4)

    def test_aggregate_merges_windows_in_span(self):
        series = fill(series_with(), 0.0, 5.0, latency_s=0.010)
        agg = series.aggregate(1.0, 4.0)
        assert agg.submitted == 300
        assert agg.served == 300
        assert agg.rejected == 0
        assert agg.latency.count == 300
        assert agg.latency.quantile(0.99) == pytest.approx(0.010, rel=0.05)
        # The full span sees everything; an empty span sees nothing.
        assert series.aggregate(0.0, 5.0).submitted == 500
        assert series.aggregate(10.0, 20.0).submitted == 0

    def test_aggregate_rejects_negative_span(self):
        with pytest.raises(ParameterError):
            series_with().aggregate(5.0, 1.0)

    def test_count_above_matches_recorded_split(self):
        series = series_with()
        for _ in range(90):
            series.record_served(0.010, 0.5)
        for _ in range(10):
            series.record_served(0.800, 0.5)
        agg = series.aggregate(0.0, 1.0)
        # 0.1 sits far from both populations: the sketch's 1% relative
        # accuracy cannot blur the split.
        assert agg.latency.count_above(0.1) == 10
        assert agg.latency.count_above(1.0) == 0
        assert agg.latency.count_above(0.001) == 100
        assert agg.latency.count_above(-1.0) == 100


class TestSloSpec:
    def test_latency_burn_rate_from_counts(self):
        spec = SloSpec(name="p99", kind="latency", objective=0.1, quantile=0.99)
        series = series_with()
        for _ in range(97):
            series.record_served(0.010, 0.5)
        for _ in range(3):
            series.record_served(0.900, 0.5)
        agg = series.aggregate(0.0, 1.0)
        # 3% slow against a 1% budget: burning 3x too fast.
        assert spec.budget == pytest.approx(0.01)
        assert spec.bad_total(agg) == (3, 100)
        assert spec.burn_rate(agg) == pytest.approx(3.0)

    def test_rejection_and_error_burn_rates(self):
        series = fill(series_with(), 0.0, 1.0, 0.01, reject_every=10)
        agg = series.aggregate(0.0, 1.0)
        reject = SloSpec(name="rej", kind="rejection", objective=0.05)
        assert reject.burn_rate(agg) == pytest.approx((10 / 100) / 0.05)
        series2 = fill(series_with(), 0.0, 1.0, 0.01, fail_every=4)
        agg2 = series2.aggregate(0.0, 1.0)
        err = SloSpec(name="err", kind="error", objective=0.5)
        assert err.bad_total(agg2) == (25, 100)
        assert err.burn_rate(agg2) == pytest.approx(0.25 / 0.5)

    def test_idle_window_burns_nothing(self):
        spec = SloSpec(name="p99", kind="latency", objective=0.1)
        agg = series_with().aggregate(0.0, 1.0)
        assert spec.burn_rate(agg) == 0.0
        assert spec.measured(agg) is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kind="nope", objective=0.1),
            dict(kind="latency", objective=0.0),
            dict(kind="latency", objective=0.1, quantile=1.0),
            dict(kind="rejection", objective=1.5),
            dict(kind="error", objective=0.0),
            dict(kind="latency", objective=0.1, fast_window_s=0.0),
            dict(kind="latency", objective=0.1, fast_window_s=10.0, slow_window_s=5.0),
            dict(kind="latency", objective=0.1, warn_burn=3.0, breach_burn=2.0),
        ],
    )
    def test_invalid_specs_raise_typed_errors(self, kwargs):
        with pytest.raises(SloError):
            SloSpec(name="bad", **kwargs)


class TestParseSlo:
    def test_parses_latency_rejection_error_forms(self):
        p99 = parse_slo("p99<=0.25")
        assert (p99.kind, p99.quantile, p99.objective) == ("latency", 0.99, 0.25)
        p50 = parse_slo("p50<=0.02@2/30")
        assert (p50.quantile, p50.fast_window_s, p50.slow_window_s) == (
            0.5, 2.0, 30.0,
        )
        rej = parse_slo("reject<=0.01")
        assert (rej.kind, rej.objective) == ("rejection", 0.01)
        err = parse_slo("error<=0.001")
        assert (err.kind, err.objective) == ("error", 0.001)

    @pytest.mark.parametrize(
        "text", ["p99<0.25", "p42<=0.1", "reject<=", "latency<=0.1", "", "p99<=x"]
    )
    def test_garbage_is_a_typed_error(self, text):
        with pytest.raises(SloError):
            parse_slo(text)

    def test_overrides_win(self):
        spec = parse_slo("p99<=0.25", breach_burn=10.0)
        assert spec.breach_burn == 10.0


class TestSloEvaluator:
    def spec(self, **overrides):
        kwargs = dict(
            name="p99",
            kind="latency",
            objective=0.1,
            quantile=0.99,
            fast_window_s=2.0,
            slow_window_s=10.0,
            warn_burn=1.0,
            breach_burn=2.0,
        )
        kwargs.update(overrides)
        return SloSpec(**kwargs)

    def test_healthy_traffic_is_ok(self):
        series = fill(series_with(), 0.0, 10.0, latency_s=0.010)
        ev = SloEvaluator(series, [self.spec()])
        (verdict,) = ev.evaluate(10.0)
        assert verdict.state == "ok"
        assert verdict.burn_fast == 0.0
        assert verdict.measured == pytest.approx(0.010, rel=0.05)

    def test_sustained_badness_breaches(self):
        # 10% of requests slow against a 1% budget, for the whole slow
        # window: both burns are ~10x, far over breach_burn=2.
        series = series_with()
        for t in range(10):
            for i in range(100):
                lat = 0.900 if i < 10 else 0.010
                series.record_served(lat, t + 0.5)
        ev = SloEvaluator(series, [self.spec()])
        (verdict,) = ev.evaluate(10.0)
        assert verdict.state == "breach"
        assert verdict.burn_fast == pytest.approx(10.0, rel=0.05)
        assert verdict.burn_slow == pytest.approx(10.0, rel=0.05)

    def test_transient_spike_is_gated_by_the_slow_window(self):
        """One bad blip in a long healthy run: fast burns, slow absolves."""
        series = fill(series_with(), 0.0, 9.0, latency_s=0.010)
        # 5 slow of ~105 in the fast window (burn ~4.8x) but 5 of ~905
        # across the slow window (burn ~0.55x): not sustained, no breach.
        for _ in range(5):
            series.record_served(0.900, 9.5)
        ev = SloEvaluator(series, [self.spec()])
        (verdict,) = ev.evaluate(10.0)
        assert verdict.burn_fast > 2.0  # the fast window alone would page
        assert verdict.burn_slow < 2.0  # ...but it is not sustained
        assert verdict.state in ("ok", "warn")
        assert verdict.state != "breach"

    def test_poll_counts_transitions_once_and_records_events(self):
        recorder = FlightRecorder()
        series = series_with()
        ev = SloEvaluator(series, [self.spec()], recorder=recorder)
        ev.poll(1.0)  # idle: ok
        for t in range(12):
            for _ in range(100):
                series.record_served(0.900, t + 0.5)
        ev.poll(12.0)  # everything slow: breach
        ev.poll(12.5)  # still breached: no new transition
        assert ev.breaches == 1
        assert ev.worst_state == "breach"
        assert ev.transitions("p99") == {"ok->breach": 1}
        (event,) = recorder.events_of("slo.breach")
        assert event.args["slo"] == "p99"
        assert event.args["previous"] == "ok"
        summary = ev.summary()
        assert summary["breaches"] == 1
        assert summary["slos"][0]["last"]["state"] == "breach"

    def test_recovery_records_the_return_transition(self):
        series = series_with()
        spec = self.spec(fast_window_s=1.0, slow_window_s=2.0)
        recorder = FlightRecorder()
        ev = SloEvaluator(series, [spec], recorder=recorder)
        for _ in range(100):
            series.record_served(0.900, 0.5)
            series.record_served(0.900, 1.5)
        ev.poll(2.0)
        fill(series, 10.0, 12.0, latency_s=0.010)
        ev.poll(12.0)
        assert ev.transitions(spec.name) == {"ok->breach": 1, "breach->ok": 1}
        assert [e.kind for e in recorder.events()] == ["slo.breach", "slo.recover"]

    def test_duplicate_or_empty_specs_are_typed_errors(self):
        series = series_with()
        with pytest.raises(SloError):
            SloEvaluator(series, [])
        with pytest.raises(SloError):
            SloEvaluator(series, [self.spec(), self.spec()])
