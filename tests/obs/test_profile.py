"""Kernel-profiling hooks: no-op fast path, accumulation, and the model table."""

import json

import numpy as np
import pytest

from repro.obs import (
    KernelProfiler,
    active,
    install,
    kernel_stage,
    measured_vs_modeled,
    profiled,
)
from repro.obs.profile import _NULL
from repro.obs.report import STAGE_TO_MODEL


class TestHookFastPath:
    def test_uninstalled_hook_is_the_shared_noop(self):
        assert active() is None
        # No profiler installed: every call returns the *same* object, so
        # the uninstrumented hot path allocates nothing.
        assert kernel_stage("gemm", 123) is _NULL
        assert kernel_stage("ntt_fwd") is _NULL
        with kernel_stage("gemm", 1):
            pass  # and it works as a context manager

    def test_install_returns_previous(self):
        first, second = KernelProfiler(), KernelProfiler()
        assert install(first) is None
        try:
            assert active() is first
            assert install(second) is first
            assert active() is second
        finally:
            install(None)
        assert active() is None

    def test_profiled_scope_restores_on_exit(self):
        outer = KernelProfiler()
        install(outer)
        try:
            with profiled() as inner:
                assert active() is inner
                with kernel_stage("gemm", 10):
                    pass
            assert active() is outer
            assert inner.stages["gemm"].calls == 1
            assert "gemm" not in outer.stages
        finally:
            install(None)


class TestAccumulation:
    def test_stage_accumulates_calls_seconds_bytes(self):
        with profiled() as profiler:
            for _ in range(3):
                with kernel_stage("rowsel", 1000):
                    np.dot(np.ones((50, 50)), np.ones((50, 50)))
        stats = profiler.stages["rowsel"]
        assert stats.calls == 3
        assert stats.seconds > 0.0
        assert stats.bytes_moved == 3000

    def test_real_kernel_records_under_profiled(self):
        from repro.he.batched import lazy_modular_gemm

        rng = np.random.default_rng(0)
        db = rng.integers(0, 97, size=(2, 4, 1, 8), dtype=np.int64)
        query = rng.integers(0, 97, size=(4, 1, 8), dtype=np.int64)
        moduli = np.array([[97]], dtype=np.int64)
        with profiled() as profiler:
            lazy_modular_gemm(db, query, moduli)
        stats = profiler.stages["gemm"]
        assert stats.calls == 1
        assert stats.bytes_moved == db.nbytes + query.nbytes

    def test_stats_tuple_merge_round_trip(self):
        with profiled() as worker:
            with kernel_stage("expand", 64):
                pass
            with kernel_stage("gemm", 32):
                pass
        shipped = worker.stats_tuple()  # what WorkerStopped carries
        assert [name for name, *_ in shipped] == ["expand", "gemm"]
        coordinator = KernelProfiler()
        coordinator.merge_tuples(shipped)
        coordinator.merge_tuples(shipped)  # second worker, same shape
        assert coordinator.stages["expand"].calls == 2
        assert coordinator.stages["gemm"].bytes_moved == 64

    def test_snapshot_derives_bandwidth(self):
        profiler = KernelProfiler()
        profiler.merge_tuples((("coltor", 4, 2.0, 4 << 30),))
        snap = profiler.snapshot()
        assert snap["coltor"]["calls"] == 4
        assert snap["coltor"]["gib_per_s"] == pytest.approx(2.0)
        empty = KernelProfiler()
        empty.merge_tuples((("x", 1, 0.0, 10),))
        assert empty.snapshot()["x"]["gib_per_s"] == 0.0
        json.dumps(snap)


class TestMeasuredVsModeled:
    def test_rows_compare_shares(self, small_params):
        profile = {
            "expand": {"calls": 8, "seconds": 0.6, "bytes_moved": 100},
            "rowsel": {"calls": 8, "seconds": 0.3, "bytes_moved": 200},
            "coltor": {"calls": 8, "seconds": 0.1, "bytes_moved": 50},
            "gemm": {"calls": 16, "seconds": 0.2, "bytes_moved": 150},
        }
        rows = measured_vs_modeled(profile, small_params, queries=8)
        assert [row["stage"] for row in rows] == list(STAGE_TO_MODEL)
        assert sum(row["measured_share"] for row in rows) == pytest.approx(1.0)
        assert sum(row["modeled_share"] for row in rows) == pytest.approx(1.0)
        by_stage = {row["stage"]: row for row in rows}
        assert by_stage["expand"]["measured_share"] == pytest.approx(0.6)
        assert by_stage["expand"]["model_component"] == "ExpandQuery"
        # Modeled seconds scale with the measured query count.
        assert by_stage["rowsel"]["modeled_s"] > 0.0
        json.dumps(rows)

    def test_missing_stages_report_zero_not_crash(self, small_params):
        rows = measured_vs_modeled({}, small_params, queries=1)
        for row in rows:
            assert row["measured_calls"] == 0
            assert row["measured_s"] == 0.0
            assert row["measured_share"] == 0.0
            assert row["modeled_share"] > 0.0
