"""E2E acceptance: SLO engine + flight recorder + health plane on a cluster.

One real failure drill: a cluster serves healthy traffic (SLO ok), then a
worker is SIGSTOP'd with a batch in flight — the heartbeat monitor
declares it dead, the victim batch retries onto a rebalanced replica, and
the added ~heartbeat-timeout of latency pushes the p99 SLO into breach.
Everything the observability plane promises must line up afterwards:

* the auto post-mortem names the death and cross-links the victim
  batch's trace ids;
* the flight recorder holds death + retry + rebalance events;
* the SLO evaluator reports ok before the kill, breach after;
* the health JSONL replays through ``repro obs-watch``.
"""

import asyncio
import os
import signal

import pytest

from repro.cli import main
from repro.cluster import ClusterBackend, ClusterCoordinator, ClusterRegistry
from repro.obs import (
    FlightRecorder,
    SloEvaluator,
    Tracer,
    append_health_jsonl,
    health_snapshot,
    parse_slo,
    validate_postmortem,
)
from repro.serve import ServeRuntime
from repro.systems.batching import BatchPolicy

NUM_RECORDS = 8
RECORD_BYTES = 48
HEARTBEAT_TIMEOUT_S = 0.5


@pytest.fixture(scope="module")
def drill(small_params, tmp_path_factory):
    """Run the failure drill once; every test asserts on its artifacts."""
    tmp_path = tmp_path_factory.mktemp("slo-e2e")
    registry = ClusterRegistry.random(
        small_params,
        num_records=NUM_RECORDS,
        record_bytes=RECORD_BYTES,
        num_shards=2,
        seed=77,
    )
    dump_dir = tmp_path / "postmortems"
    health_path = tmp_path / "health.jsonl"
    recorder = FlightRecorder(dump_dir=str(dump_dir))
    tracer = Tracer()
    policy = BatchPolicy(waiting_window_s=0.005, max_batch=4)
    # Latency SLO between healthy (~ms) and victim (>= heartbeat timeout):
    # deterministic ok-before / breach-after, short windows so the drill's
    # few seconds of traffic are what gets judged.
    spec = parse_slo("p99<=0.3@1/2")

    async def run():
        coordinator = ClusterCoordinator(
            registry,
            num_workers=2,
            replication=1,
            heartbeat_interval_s=0.05,
            heartbeat_timeout_s=HEARTBEAT_TIMEOUT_S,
            tracer=tracer,
            recorder=recorder,
        )
        async with coordinator:
            runtime = ServeRuntime(
                registry,
                ClusterBackend(coordinator),
                policy,
                tracer=tracer,
                recorder=recorder,
            )
            evaluator = SloEvaluator(
                runtime.metrics.series, [spec], recorder=recorder
            )
            loop = asyncio.get_running_loop()
            async with runtime:
                healthy = await asyncio.gather(
                    *(runtime.serve_index(i) for i in range(NUM_RECORDS))
                )
                verdict_before = evaluator.poll(loop.time())[0]
                append_health_jsonl(
                    health_path,
                    health_snapshot(
                        loop.time(), runtime.metrics, 1.0, [verdict_before],
                        coordinator.cluster_snapshot(),
                    ),
                )
                # Stall worker 0 *before* the second sweep: its shard-0
                # batch lands on a frozen process and can only complete
                # after the heartbeat monitor declares the death.
                os.kill(
                    coordinator._workers[0].process.pid, signal.SIGSTOP
                )
                victims = await asyncio.gather(
                    *(runtime.serve_index(i) for i in range(NUM_RECORDS))
                )
                verdict_after = evaluator.poll(loop.time())[0]
                append_health_jsonl(
                    health_path,
                    health_snapshot(
                        loop.time(), runtime.metrics, 1.0, [verdict_after],
                        coordinator.cluster_snapshot(),
                    ),
                )
            return {
                "healthy": healthy,
                "victims": victims,
                "before": verdict_before,
                "after": verdict_after,
                "stats": coordinator.stats,
            }

    out = asyncio.run(run())
    out.update(
        registry=registry,
        recorder=recorder,
        dump_dir=dump_dir,
        health_path=health_path,
    )
    return out


class TestFailureDrill:
    def test_every_response_is_byte_correct(self, drill):
        registry = drill["registry"]
        for result in drill["healthy"] + drill["victims"]:
            record = registry.decode(result.request, result.response)
            assert record == registry.expected(result.request.global_index)

    def test_death_was_a_heartbeat_timeout_with_retry_and_rebalance(self, drill):
        stats = drill["stats"]
        assert stats.worker_deaths == 1
        assert stats.heartbeat_timeouts == 1
        assert stats.batches_retried >= 1
        assert stats.rebalanced_shards >= 1

    def test_slo_ok_before_breach_after(self, drill):
        assert drill["before"].state == "ok"
        assert drill["before"].burn_fast == 0.0
        assert drill["after"].state == "breach"
        # The victim batch waited out the heartbeat timeout, so the
        # measured p99 is at least that.
        assert drill["after"].measured >= HEARTBEAT_TIMEOUT_S
        assert drill["after"].burn_fast >= 2.0
        assert drill["after"].burn_slow >= 2.0

    def test_recorder_holds_the_whole_incident(self, drill):
        recorder = drill["recorder"]
        kinds = {e.kind for e in recorder.events()}
        assert {
            "batch.dispatch",
            "heartbeat.timeout",
            "worker.death",
            "batch.retry",
            "shard.rebalance",
            "slo.breach",
        } <= kinds
        (death,) = recorder.events_of("worker.death")
        (retry,) = recorder.events_of("batch.retry")
        assert death.args["worker"] == 0
        assert death.trace_ids, "death event lost its victim trace ids"
        # The retried batch is the one the death victimized.
        assert set(retry.trace_ids) <= set(death.trace_ids)
        (rebalance,) = recorder.events_of("shard.rebalance")
        assert rebalance.args["target_worker"] == 1

    def test_postmortem_dump_cross_links_the_victim_batch(self, drill):
        dumps = sorted(drill["dump_dir"].glob("postmortem-*.json"))
        assert len(dumps) == 2  # heartbeat.timeout, then worker.death
        doc = validate_postmortem(dumps[1])
        assert "worker-death" in dumps[1].name
        events = {e["kind"]: e for e in doc["events"]}
        death = events["worker.death"]
        assert death["trace_ids"], "dump lost the victim trace ids"
        for trace_id in death["trace_ids"]:
            assert death["seq"] in doc["trace_index"][str(trace_id)]
        # The attached cluster source captured the fleet *at* the death.
        cluster = doc["sources"]["cluster"]
        assert cluster["workers"]["0"]["inflight"] >= 1
        # The serving metrics source rode along from the runtime.
        assert doc["sources"]["serve_metrics"]["submitted"] >= NUM_RECORDS

    def test_postmortem_renders_through_the_cli(self, drill, capsys):
        dumps = sorted(drill["dump_dir"].glob("postmortem-*.json"))
        assert main(["obs-report", "--postmortem", str(dumps[1])]) == 0
        out = capsys.readouterr().out
        assert "worker.death" in out
        assert "trace(s) cross-linked" in out

    def test_health_jsonl_replays_through_obs_watch(self, drill, capsys):
        path = str(drill["health_path"])
        assert main(["obs-watch", path, "--replay"]) == 0
        out = capsys.readouterr().out
        assert "2 snapshots: 1 breach" in out
        assert "BREACH" in out
        assert "!! p99<=0.3@1/2" in out
        assert "1 death(s)" in out  # the cluster tail from the last row
        # And the breach is machine-detectable for CI gating.
        assert main(["obs-watch", path, "--replay", "--fail-on-breach"]) == 1
