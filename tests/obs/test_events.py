"""Flight recorder: ring bounds, trace cross-links, post-mortem dumps."""

import json

import pytest

from repro.cli import main
from repro.errors import ObsError, ParameterError
from repro.obs import FlightRecorder, render_postmortem, validate_postmortem


class TestRing:
    def test_records_in_order_with_severities(self):
        rec = FlightRecorder()
        rec.record("admission.reject", 1.0, trace_ids=(7,), reason="queue-full")
        rec.record("epoch.publish", 2.0, epoch=3)
        rec.record("worker.death", 3.0, worker=1)
        kinds = [e.kind for e in rec.events()]
        assert kinds == ["admission.reject", "epoch.publish", "worker.death"]
        severities = [e.severity for e in rec.events()]
        assert severities == ["warn", "info", "error"]
        assert [e.seq for e in rec.events()] == [1, 2, 3]

    def test_ring_is_bounded_and_counts_drops(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("batch.dispatch", float(i), batch=i)
        events = rec.events()
        assert len(events) == 4
        assert [e.args["batch"] for e in events] == [6, 7, 8, 9]
        assert rec.dropped == 6
        # Sequence numbers keep counting through evictions.
        assert events[-1].seq == 10

    def test_none_trace_ids_are_filtered(self):
        rec = FlightRecorder()
        event = rec.record("batch.retry", 1.0, trace_ids=(None, 4, None, 9))
        assert event.trace_ids == (4, 9)

    def test_trace_index_cross_links(self):
        rec = FlightRecorder()
        rec.record("batch.dispatch", 1.0, trace_ids=(4,))
        rec.record("worker.death", 2.0, trace_ids=(4, 9))
        rec.record("batch.retry", 3.0, trace_ids=(9,))
        assert rec.trace_index() == {4: [1, 2], 9: [2, 3]}

    def test_events_of_filters_by_kind(self):
        rec = FlightRecorder()
        rec.record("batch.dispatch", 1.0)
        rec.record("worker.death", 2.0)
        rec.record("batch.dispatch", 3.0)
        assert len(rec.events_of("batch.dispatch")) == 2
        assert len(rec.events_of("worker.death")) == 1

    def test_bad_capacity_is_typed(self):
        with pytest.raises(ParameterError):
            FlightRecorder(capacity=0)
        with pytest.raises(ParameterError):
            FlightRecorder(max_dumps=0)


class TestPostmortem:
    def test_trigger_kind_dumps_automatically(self, tmp_path):
        rec = FlightRecorder(dump_dir=str(tmp_path))
        rec.record("batch.dispatch", 1.0, trace_ids=(3,))
        rec.record("worker.death", 2.0, trace_ids=(3,), worker=0)
        assert rec.dumps_written == 1
        (path,) = tmp_path.glob("postmortem-*.json")
        assert "worker-death" in path.name
        doc = validate_postmortem(path)
        assert doc["reason"].startswith("worker.death")
        assert [e["kind"] for e in doc["events"]] == [
            "batch.dispatch", "worker.death",
        ]
        assert doc["trace_index"] == {"3": [1, 2]}

    def test_non_trigger_kinds_do_not_dump(self, tmp_path):
        rec = FlightRecorder(dump_dir=str(tmp_path))
        rec.record("batch.retry", 1.0)
        rec.record("slo.breach", 2.0)
        assert rec.dumps_written == 0
        assert list(tmp_path.glob("*.json")) == []

    def test_dump_budget_is_bounded(self, tmp_path):
        rec = FlightRecorder(dump_dir=str(tmp_path), max_dumps=2)
        for t in range(5):
            rec.record("worker.death", float(t), worker=t)
        assert rec.dumps_written == 2
        assert len(list(tmp_path.glob("postmortem-*.json"))) == 2

    def test_sources_are_snapshotted_and_failures_contained(self, tmp_path):
        rec = FlightRecorder()
        rec.attach_source("cluster", lambda: {"live_workers": [1]})

        def broken():
            raise RuntimeError("snapshot race")

        rec.attach_source("broken", broken)
        doc = rec.postmortem("test", at_s=1.0)
        assert doc["sources"]["cluster"] == {"live_workers": [1]}
        assert "RuntimeError" in doc["sources"]["broken"]["error"]

    def test_failed_auto_dump_becomes_its_own_event(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("a file where the dump dir should be")
        rec = FlightRecorder(dump_dir=str(target))
        rec.record("worker.death", 1.0, worker=0)
        (marker,) = rec.events_of("postmortem.error")
        assert marker.severity == "error"
        assert rec.dumps_written == 0

    def test_manual_dump_roundtrips_through_validator(self, tmp_path):
        rec = FlightRecorder()
        rec.record("epoch.publish", 1.0, epoch=1, acked_workers=[0, 1])
        path = tmp_path / "pm.json"
        rec.dump(str(path), reason="manual", at_s=2.0)
        doc = validate_postmortem(path)
        lines = render_postmortem(doc)
        assert any("manual" in line for line in lines)
        assert any("epoch.publish" in line for line in lines)


class TestPostmortemValidation:
    def make_valid(self, tmp_path):
        rec = FlightRecorder()
        rec.record("worker.death", 1.0, worker=0)
        path = tmp_path / "pm.json"
        rec.dump(str(path), reason="r", at_s=1.0)
        return path

    def test_missing_keys_and_bad_events_are_typed(self, tmp_path):
        path = self.make_valid(tmp_path)
        doc = json.loads(path.read_text())
        del doc["trace_index"]
        path.write_text(json.dumps(doc))
        with pytest.raises(ObsError, match="trace_index"):
            validate_postmortem(path)
        doc["trace_index"] = {}
        doc["events"] = [{"seq": 1}]
        path.write_text(json.dumps(doc))
        with pytest.raises(ObsError, match="events\\[0\\]"):
            validate_postmortem(path)

    def test_unknown_version_is_rejected(self, tmp_path):
        path = self.make_valid(tmp_path)
        doc = json.loads(path.read_text())
        doc["postmortem_version"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(ObsError, match="version"):
            validate_postmortem(path)

    def test_cli_renders_a_postmortem(self, capsys, tmp_path):
        path = self.make_valid(tmp_path)
        assert main(["obs-report", "--postmortem", str(path)]) == 0
        out = capsys.readouterr().out
        assert "post-mortem" in out
        assert "worker.death" in out

    def test_cli_rejects_corrupt_postmortem(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["obs-report", "--postmortem", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_cli_needs_prefix_or_postmortem(self, capsys):
        assert main(["obs-report"]) == 2
        assert "PREFIX" in capsys.readouterr().err
