"""Kv layout/database: slot placement, tags, encoding invariants."""

import pytest

from repro.errors import KvBuildError, ParameterError
from repro.hashing.cuckoo import CuckooConfig
from repro.kvpir.layout import KvDatabase, KvLayout, key_tag
from repro.params import PirParams


@pytest.fixture(scope="module")
def params():
    return PirParams.small(n=256, d0=8, num_dims=2)


def items_for(n, value_bytes=16):
    return {f"key-{i:04d}".encode(): bytes([i % 251]) * value_bytes for i in range(n)}


class TestKvLayout:
    def test_build_validates_widths(self, params):
        table = CuckooConfig(num_buckets=16)
        with pytest.raises(ParameterError):
            KvLayout.build(params, table, 8, value_bytes=16, tag_bytes=0, stash_slots=0)
        with pytest.raises(ParameterError):
            KvLayout.build(params, table, 8, value_bytes=0, tag_bytes=4, stash_slots=0)

    def test_candidate_slots_need_no_directory(self, params):
        """Candidates come from the key alone and include every stash slot."""
        table = CuckooConfig(num_buckets=32, seed=2)
        layout = KvLayout.build(
            params, table, 20, value_bytes=8, tag_bytes=4, stash_slots=2
        )
        slots = layout.candidate_slots(b"anything")
        assert len(slots) == len(set(slots))  # deduped
        assert set(slots[-2:]) == {32, 33}  # stash slots always probed
        assert all(s < layout.num_slots for s in slots)
        assert layout.num_slots == 34
        assert layout.candidates_per_lookup == table.num_hashes + 2

    def test_tag_is_keyed_and_domain_separated(self, params):
        assert key_tag(b"k", 8, seed=0) != key_tag(b"k", 8, seed=1)
        assert key_tag(b"k", 8, seed=0) != key_tag(b"j", 8, seed=0)
        # The tag hash never collides with a candidate-hash suffix.
        table = CuckooConfig(num_buckets=256, seed=0)
        layout = KvLayout.build(
            params, table, 100, value_bytes=8, tag_bytes=8, stash_slots=0
        )
        assert layout.tag(b"k") == key_tag(b"k", 8, seed=0)

    def test_match_recognizes_only_the_right_tag(self, params):
        table = CuckooConfig(num_buckets=16, seed=1)
        layout = KvLayout.build(
            params, table, 8, value_bytes=4, tag_bytes=8, stash_slots=0
        )
        record = layout.encode(b"alice", b"\x01\x02\x03\x04")
        assert layout.match(b"alice", record) == b"\x01\x02\x03\x04"
        assert layout.match(b"bob", record) is None
        assert layout.match(b"alice", b"\0" * layout.record_bytes) is None


class TestKvDatabase:
    def test_every_key_lands_in_a_candidate_or_stash_slot(self, params):
        db = KvDatabase.from_items(params, items_for(40), max_lookup_batch=4)
        layout = db.layout
        for slot, key in db.assignment.slots.items():
            assert slot in layout.table.candidates(key)
        assert layout.stash_slots == len(db.assignment.stash)
        placed = len(db.assignment.slots) + len(db.assignment.stash)
        assert placed == layout.num_keys == 40

    def test_slot_records_encode_tag_then_value(self, params):
        db = KvDatabase.from_items(params, items_for(12), max_lookup_batch=2)
        layout = db.layout
        for slot, key in db.assignment.slots.items():
            record = db.batch_db.record(slot)
            assert record == layout.tag(key) + db.value(key)
        # Unoccupied slots stay zeroed (cannot tag-match w.h.p.).
        occupied = set(db.assignment.slots)
        empties = [
            s for s in range(layout.table.num_buckets) if s not in occupied
        ]
        assert db.batch_db.record(empties[0]) == b"\0" * layout.record_bytes

    def test_rejects_bad_inputs(self, params):
        with pytest.raises(KvBuildError):
            KvDatabase.from_items(params, {})
        with pytest.raises(KvBuildError):
            KvDatabase.from_items(params, {b"a": b"xx", b"b": b"xyz"})

    def test_random_builds_distinct_keys(self, params):
        db = KvDatabase.random(params, num_keys=30, value_bytes=8, seed=3)
        assert len(db.keys()) == 30
        assert db.layout.slot_expansion >= 1.5
