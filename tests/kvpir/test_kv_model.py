"""Keyword-PIR cost model: slot inflation, placement, bounded overhead."""

import pytest

from repro.errors import ParameterError, SimulationError
from repro.kvpir.model import (
    DEFAULT_MODEL_CANDIDATES,
    keyword_overhead_curve,
    kv_cost_point,
    model_kv_slot_params,
)
from repro.params import PirParams
from repro.systems.scale_up import KvScaleUpSystem, ScaleUpSystem


@pytest.fixture(scope="module")
def paper():
    return PirParams.paper(d0=256, num_dims=9)  # the 2 GiB Table I DB


class TestSlotParams:
    def test_slot_table_rounds_up_to_power_of_two(self, paper):
        slot = model_kv_slot_params(paper)
        assert slot.num_db_polys == 2 * paper.num_db_polys  # 1.5x -> next pow2
        assert slot.n == paper.n and slot.d0 == paper.d0

    def test_slot_factor_one_keeps_geometry(self, paper):
        assert model_kv_slot_params(paper, slot_factor=1.0).num_db_polys == (
            paper.num_db_polys
        )


class TestKvScaleUpSystem:
    def test_lookup_costs_more_than_single_query(self, paper):
        slot = model_kv_slot_params(paper)
        system = KvScaleUpSystem(slot, DEFAULT_MODEL_CANDIDATES)
        single = ScaleUpSystem(paper).latency(1).total_s
        lookup = system.lookup_latency().total_s
        assert lookup > single  # more probes over a bigger table
        assert lookup < DEFAULT_MODEL_CANDIDATES * 2 * single  # but amortized scan

    def test_footprint_is_tag_inflated(self, paper):
        slot = model_kv_slot_params(paper)
        kv = KvScaleUpSystem(slot, 4)
        dense = ScaleUpSystem(paper)
        assert kv.preprocessed_db_bytes == 2 * dense.preprocessed_db_bytes

    def test_rejects_zero_candidates(self, paper):
        with pytest.raises(ParameterError):
            KvScaleUpSystem(paper, 0)

    def test_simulator_hook_validates(self, paper):
        system = KvScaleUpSystem(paper, 3)
        with pytest.raises(SimulationError):
            system.simulator.kvpir_lookup_latency(0)

    def test_inflation_can_push_placement_to_lpddr(self):
        # 16 GiB of live records fits HBM densely (56 GiB preprocessed);
        # the 2x keyword slot table (112 GiB) spills to the LPDDR expander.
        params = PirParams.paper(d0=256, num_dims=12)
        dense = ScaleUpSystem(params)
        kv = KvScaleUpSystem(model_kv_slot_params(params), 4)
        assert dense.placement.value == "hbm"
        assert kv.placement.value == "lpddr"


class TestCostCurve:
    def test_overheads_stay_bounded(self, paper):
        points = keyword_overhead_curve(paper, ks=(8, 64))
        for p in points:
            assert p.amortized_lookup_s > p.amortized_index_s
            assert 1.0 < p.amortized_overhead <= 2 * DEFAULT_MODEL_CANDIDATES
            assert 1.0 < p.standalone_overhead <= 2 * DEFAULT_MODEL_CANDIDATES

    def test_amortization_still_wins_over_standalone_lookup(self, paper):
        p = kv_cost_point(paper, k=64)
        assert p.amortized_lookup_s < p.lookup_s
        assert p.kv_replicated_db_bytes > p.slot_db_bytes
