"""Keyword PIR end to end: round-trips, typed misses, zero false decodes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyNotFound, ParameterError
from repro.hashing.cuckoo import CuckooConfig
from repro.kvpir import KvPirProtocol
from repro.kvpir.layout import DEFAULT_TAG_BYTES, KvDatabase
from repro.params import PirParams


@pytest.fixture(scope="module")
def params():
    return PirParams.small(n=256, d0=8, num_dims=2)


def items_for(n, value_bytes=12):
    return {
        f"user-{i:05d}".encode(): i.to_bytes(4, "big") * (value_bytes // 4)
        for i in range(n)
    }


class TestLookup:
    def test_present_keys_round_trip(self, params):
        items = items_for(48)
        protocol = KvPirProtocol(params, items, max_lookup_batch=4, seed=1)
        for key in list(items)[:5]:
            assert protocol.lookup(key) == items[key]

    def test_absent_key_raises_typed_miss(self, params):
        protocol = KvPirProtocol(params, items_for(16), seed=2)
        with pytest.raises(KeyNotFound) as exc:
            protocol.lookup(b"never-inserted")
        assert exc.value.key == b"never-inserted"

    def test_lookup_many_mixes_hits_and_misses(self, params):
        items = items_for(32)
        protocol = KvPirProtocol(params, items, max_lookup_batch=8, seed=3)
        present = list(items)[:4]
        result = protocol.lookup_many(present + [b"ghost-1", b"ghost-2"])
        assert result.found == 4
        assert set(result.missing) == {b"ghost-1", b"ghost-2"}
        for key in present:
            assert result.values[key] == items[key]
        with pytest.raises(KeyNotFound):
            protocol.lookup_many([present[0], b"ghost-1"], strict=True)

    def test_duplicate_lookup_keys_probe_once(self, params):
        items = items_for(24)
        protocol = KvPirProtocol(params, items, max_lookup_batch=4, seed=4)
        key = list(items)[7]
        result = protocol.lookup_many([key, key, key])
        assert result.values == {key: items[key]}
        assert len(result.plan.keys) == 1

    def test_lookups_beyond_design_batch_chunk(self, params):
        items = items_for(64)
        protocol = KvPirProtocol(params, items, max_lookup_batch=2, seed=5)
        wanted = list(items)[:10]  # ~30 probes >> one design chunk
        result = protocol.lookup_many(wanted)
        assert len(result.plan.chunks) > 1
        assert all(result.values[k] == items[k] for k in wanted)

    def test_transcript_accounts_per_lookup(self, params):
        protocol = KvPirProtocol(params, items_for(16), seed=6)
        protocol.lookup(list(items_for(16))[0])
        t = protocol.transcript
        assert t.queries_served == 1
        assert t.query_bytes > 0 and t.response_bytes > 0
        assert t.per_query_online_bytes() == t.total_online_bytes

    def test_empty_lookup_rejected(self, params):
        protocol = KvPirProtocol(params, items_for(8), seed=7)
        with pytest.raises(ParameterError):
            protocol.lookup_many([])


class TestStashPath:
    def test_stashed_keys_still_resolve(self, params):
        """An over-full table spills to stash slots every lookup probes."""
        items = items_for(12)
        for seed in range(64):
            table = CuckooConfig(
                num_buckets=12, stash_size=8, max_evictions=64, seed=seed
            )
            db = KvDatabase.from_items(params, items, table=table)
            if db.layout.stash_slots > 0:
                break
        else:  # pragma: no cover — 100% occupancy stashes within 64 seeds
            pytest.fail("no seed produced a stashed key")
        protocol = KvPirProtocol.__new__(KvPirProtocol)
        # Assemble around the custom-table database (constructor rebuilds).
        from repro.kvpir.client import KvPirClient
        from repro.kvpir.server import KvPirServer
        from repro.pir.protocol import Transcript

        protocol.db = db
        protocol.layout = db.layout
        protocol.client = KvPirClient(db.layout, seed=8)
        setup = protocol.client.setup_message()
        protocol.server = KvPirServer(db, protocol.client.batch.pir.ring, setup)
        protocol.transcript = Transcript()
        stashed = db.assignment.stash[0]
        assert protocol.lookup(stashed) == db.value(stashed)
        # Non-stashed keys keep working alongside.
        placed = next(iter(db.assignment.slots.values()))
        assert protocol.lookup(placed) == db.value(placed)


class TestRandomizedSweep:
    """The acceptance sweep: zero false decodes at the default tag width."""

    @settings(max_examples=30, deadline=None)
    @given(
        items=st.dictionaries(
            keys=st.binary(min_size=1, max_size=12),
            values=st.binary(min_size=6, max_size=6),
            min_size=1,
            max_size=24,
        ),
        absent=st.sets(st.binary(min_size=13, max_size=16), min_size=1, max_size=4),
        hash_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_round_trip_and_zero_false_decodes(self, params, items, absent, hash_seed):
        # Absent keys are longer than any stored key, so disjoint by length.
        protocol = KvPirProtocol(
            params, items, max_lookup_batch=4, hash_seed=hash_seed, seed=1
        )
        assert protocol.layout.tag_bytes == DEFAULT_TAG_BYTES
        result = protocol.lookup_many(list(items) + sorted(absent))
        assert result.values == items  # every present key, its exact value
        assert set(result.missing) == absent  # every absent key, no false hit
