"""Keyword PIR behind the serving runtime: key routing, coalesced windows."""

import asyncio

import pytest

from repro.errors import KeyNotFound, KvBuildError
from repro.kvpir.serving import KeyShardMap, KvCryptoBackend, KvServeRegistry
from repro.params import PirParams
from repro.serve import ServeRuntime, SimShardRegistry
from repro.systems.batching import BatchPolicy


@pytest.fixture(scope="module")
def params():
    return PirParams.small(n=256, d0=8, num_dims=2)


class TestKeyShardMap:
    def test_routing_is_deterministic_and_seeded(self):
        a = KeyShardMap(100, 4, seed=1)
        b = KeyShardMap(100, 4, seed=1)
        c = KeyShardMap(100, 4, seed=2)
        keys = [f"k{i}".encode() for i in range(64)]
        assert [a.route(k) for k in keys] == [b.route(k) for k in keys]
        assert [a.route(k) for k in keys] != [c.route(k) for k in keys]
        assert all(0 <= a.route(k) < 4 for k in keys)

    def test_rejects_zero_shards(self):
        with pytest.raises(KvBuildError):
            KeyShardMap(10, 0)


class TestKvServeRegistry:
    def test_requests_carry_keys_not_queries(self, params):
        registry = KvServeRegistry.random(
            params, num_keys=40, value_bytes=16, num_shards=2, seed=1
        )
        key = list(registry._items)[5]
        request = registry.make_request(key)
        assert request.key == key
        assert request.query is None
        assert request.shard_id == registry.map.route(key)

    def test_decode_raises_typed_miss_for_none(self, params):
        registry = KvServeRegistry.random(
            params, num_keys=16, value_bytes=8, seed=2
        )
        request = registry.make_request(b"ghost")
        with pytest.raises(KeyNotFound):
            registry.decode(request, None)
        assert registry.decode(request, b"value") == b"value"
        assert registry.expected(b"ghost") is None


class TestKvServing:
    def test_window_serves_hits_and_misses(self, params):
        registry = KvServeRegistry.random(
            params, num_keys=48, value_bytes=16, num_shards=2, seed=3
        )
        policy = BatchPolicy(waiting_window_s=0.05, max_batch=16)
        present = list(registry._items)[:6]

        async def main():
            runtime = ServeRuntime(registry, KvCryptoBackend(registry), policy)
            async with runtime:
                return await runtime.serve_keys(present + [b"absent-key"])

        results = asyncio.run(main())
        for r, key in zip(results[:-1], present):
            assert registry.decode(r.request, r.response) == registry.expected(key)
        with pytest.raises(KeyNotFound):
            registry.decode(results[-1].request, results[-1].response)

    def test_single_shard_window_coalesces(self, params):
        registry = KvServeRegistry.random(
            params, num_keys=32, value_bytes=16, num_shards=1, seed=4
        )
        policy = BatchPolicy(waiting_window_s=0.05, max_batch=16)
        keys = list(registry._items)[:5]

        async def main():
            runtime = ServeRuntime(registry, KvCryptoBackend(registry), policy)
            async with runtime:
                return await runtime.serve_keys(keys)

        results = asyncio.run(main())
        # One waiting window -> one dispatch for all five lookups.
        assert {r.batch_size for r in results} == {5}

    def test_serve_key_convenience(self, params):
        registry = KvServeRegistry.random(
            params, num_keys=16, value_bytes=8, seed=5
        )
        key = list(registry._items)[0]

        async def main():
            runtime = ServeRuntime(
                registry,
                KvCryptoBackend(registry),
                BatchPolicy(waiting_window_s=0.01, max_batch=4),
            )
            async with runtime:
                return await runtime.serve_key(key)

        result = asyncio.run(main())
        assert registry.decode(result.request, result.response) == registry.expected(key)

    def test_empty_shard_is_a_build_error(self, params):
        with pytest.raises(KvBuildError):
            KvServeRegistry.random(
                params, num_keys=2, value_bytes=8, num_shards=16, seed=6
            )


class TestSimKvMode:
    def test_kv_mode_costs_more_than_plain_batch_mode(self):
        paper = PirParams.paper(d0=256, num_dims=9)
        kv = SimShardRegistry(paper, kvpir=True, design_batch=64)
        batch = SimShardRegistry(paper, batchpir=True, design_batch=64)
        plain = SimShardRegistry(paper)
        # kvpir implies the batched machinery over a bigger replicated set.
        assert kv.batch_system is not None
        assert kv.batch_system.num_buckets > batch.batch_system.num_buckets
        # One pass serves the design batch of lookups; keyword passes cost
        # more than index passes (more probes over an inflated slot table)
        # but still amortize far below per-lookup scans.
        assert kv.service_seconds(64) == kv.service_seconds(1)
        assert kv.service_seconds(64) > batch.service_seconds(64)
        assert kv.service_seconds(64) / 64 < plain.service_seconds(1)
        assert kv.waiting_window_s() > batch.waiting_window_s()
