"""Fig. 14: (a) IVE vs ARK-like EDA comparison, (b) load-latency curve.

Paper: ARK-like is 4.2x slower and 2.4x more energy-hungry at comparable
area -> 9.7x worse EDAP.  The batch scheduler reaches break-even at
9.5 QPS, keeps latency within 2x of the floor up to 420 QPS, and the
non-batching baseline saturates at 17.8 QPS (16 GB DB).
"""

import pytest
from conftest import params_for_gb, run_once

from repro.arch.config import IveConfig
from repro.arch.simulator import IveSimulator
from repro.baselines.ark import figure14a
from repro.systems.batching import BatchPolicy, window_from_db_read
from repro.systems.queueing import break_even_rate, simulate_batching, simulate_fifo


def test_fig14a_ark_comparison(benchmark, report):
    data = run_once(benchmark, figure14a, params_for_gb(16))
    ive, ark = data["IVE"], data["ARK-like"]
    lines = [
        f"{'metric':>10s} {'IVE':>12s} {'ARK-like':>12s} {'ratio':>8s} {'paper':>7s}",
        f"{'delay':>10s} {ive.delay_s * 1e3:>10.1f}ms {ark.delay_s * 1e3:>10.1f}ms "
        f"{ark.delay_s / ive.delay_s:>7.1f}x {'4.2x':>7s}",
        f"{'energy':>10s} {ive.energy_per_query_j:>11.3f}J {ark.energy_per_query_j:>11.3f}J "
        f"{ark.energy_per_query_j / ive.energy_per_query_j:>7.1f}x {'2.4x':>7s}",
        f"{'area':>10s} {ive.area_mm2:>10.1f}mm {ark.area_mm2:>10.1f}mm "
        f"{ark.area_mm2 / ive.area_mm2:>7.1f}x {'~1x':>7s}",
        f"{'EDAP':>10s} {'':>12s} {'':>12s} {ark.edap / ive.edap:>7.1f}x {'9.7x':>7s}",
    ]
    report("Fig. 14a — IVE vs ARK-like HE accelerator (16 GB)", lines)
    assert 2.5 < ark.delay_s / ive.delay_s < 7.0
    assert 1.3 < ark.energy_per_query_j / ive.energy_per_query_j < 5.0
    assert 5.0 < ark.edap / ive.edap < 20.0


def test_fig14b_load_latency(benchmark, report):
    sim = IveSimulator(IveConfig.ive(), params_for_gb(16))
    single = sim.single_query_latency().total_s
    window = window_from_db_read(sim.min_db_read_seconds())
    policy = BatchPolicy(waiting_window_s=window, max_batch=128)
    service_cache: dict[int, float] = {}

    def service(batch: int) -> float:
        if batch not in service_cache:
            service_cache[batch] = sim.latency(batch).total_s
        return service_cache[batch]

    rates = [1.0, 4.0, 9.5, 20.0, 56.0, 112.0, 200.0, 420.0]

    def compute():
        batching = [
            simulate_batching(service, policy, r, num_queries=1200, seed=42)
            for r in rates
        ]
        fifo = [
            simulate_fifo(single, r, num_queries=1200, seed=42) for r in rates
        ]
        return batching, fifo

    batching, fifo = run_once(benchmark, compute)
    lines = [
        f"{'load QPS':>9s} {'batched ms':>11s} {'no-batch ms':>12s} {'mean batch':>11s}"
    ]
    for bp, fp in zip(batching, fifo):
        fifo_ms = fp.mean_latency_s * 1e3
        lines.append(
            f"{bp.arrival_qps:>9.1f} {bp.mean_latency_s * 1e3:>11.1f} "
            f"{min(fifo_ms, 99999):>12.1f} {bp.mean_batch:>11.1f}"
        )
    lines.append(
        f"single-query latency: {single * 1e3:.1f} ms "
        f"(non-batch limit {1 / single:.1f} QPS; paper 17.8); window {window * 1e3:.1f} ms"
    )
    lines.append("paper: break-even 9.5 QPS; batching stays within 2x up to 420 QPS")
    report("Fig. 14b — load-latency under the batch scheduler (16 GB)", lines)

    # Non-batching throughput limit near the paper's 17.8 QPS.
    assert 1 / single == pytest.approx(17.8, rel=0.35)
    # Break-even exists and sits at a modest load.
    be = break_even_rate(batching, fifo)
    assert be is not None and be <= 20.0
    # Past the FIFO limit, batching sustains hundreds of QPS with bounded
    # latency while FIFO diverges.
    heavy_b, heavy_f = batching[-1], fifo[-1]
    assert heavy_b.mean_latency_s < 10 * service(policy.max_batch)
    assert heavy_f.mean_latency_s > 10 * heavy_b.mean_latency_s
    # Latency overhead bound: within ~2x of the max-batch service time.
    assert heavy_b.mean_latency_s < 2.5 * service(policy.max_batch)
