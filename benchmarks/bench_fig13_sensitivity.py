"""Fig. 13: sensitivity studies — DB size, algorithm, batch, memory, arch.

Paper series:
  13a — execution-time breakdown vs DB size (RowSel 63-73% at batch 64).
  13b — scheduling ablation on 16 GB: BFS -> HS+RO is ~1.3x end to end.
  13c — batch sweep on 16 GB: saturation at batch 64, QPS 591, latency
        overhead 3.46x vs min.
  13d — 128 GB (LPDDR) and 1 TB (16-system cluster): saturation at batch
        128 with 79.9 and 9.89 QPS/system; QPS x DB-size ~ constant.
  13e — Base / +Sp / +SysNTTU: -4% then -7% area, energy 0.96 -> 1.05.
"""

import pytest
from conftest import params_for_gb, run_once

from repro.arch.area import area
from repro.arch.config import IveConfig
from repro.arch.energy import batch_energy
from repro.arch.simulator import IveSimulator
from repro.params import PirParams
from repro.sched.tree import Traversal
from repro.systems.cluster import IveCluster
from repro.systems.scale_up import ScaleUpSystem


def test_fig13a_breakdown_vs_db(benchmark, report):
    def compute():
        out = {}
        for gb in (2, 4, 8):
            lat = IveSimulator(IveConfig.ive(), params_for_gb(gb)).latency(64)
            out[gb] = lat
        return out

    data = run_once(benchmark, compute)
    lines = [f"{'DB':>5s} {'Expand':>8s} {'RowSel':>8s} {'ColTor':>8s} {'other':>8s}"]
    for gb, lat in data.items():
        t = lat.total_s
        other = lat.noc_s + lat.comm_s
        lines.append(
            f"{gb:>3d}GB {lat.expand_s / t:>7.0%} {lat.rowsel_s / t:>7.0%} "
            f"{lat.coltor_s / t:>7.0%} {other / t:>7.0%}"
        )
    lines.append("paper: RowSel 63/69/73% for 2/4/8 GB")
    report("Fig. 13a — execution-time breakdown vs DB size (batch 64)", lines)
    for gb, lat in data.items():
        share = lat.rowsel_s / lat.total_s
        assert 0.5 < share < 0.85
    assert data[8].rowsel_s / data[8].total_s > data[2].rowsel_s / data[2].total_s


def test_fig13b_algorithm_ablation(benchmark, report):
    params = params_for_gb(16)

    def compute():
        out = {}
        for label, traversal, ro in (
            ("BFS", Traversal.BFS, False),
            ("DFS", Traversal.DFS, False),
            ("HS (w/ DFS)", Traversal.HS_DFS, False),
            ("HS+RO (w/ DFS)", Traversal.HS_DFS, True),
        ):
            sim = IveSimulator(
                IveConfig.ive(), params, traversal=traversal, reduction_overlap=ro
            )
            out[label] = sim.latency(64)
        return out

    data = run_once(benchmark, compute)
    base = data["BFS"].total_s
    lines = [f"{'policy':>16s} {'latency ms':>11s} {'speedup':>8s}"]
    for label, lat in data.items():
        lines.append(
            f"{label:>16s} {lat.total_s * 1e3:>11.1f} {base / lat.total_s:>7.2f}x"
        )
    lines.append("paper: BFS -> HS+RO gives ~1.26x end-to-end on 16 GB")
    report("Fig. 13b — scheduling-algorithm ablation (16 GB, batch 64)", lines)
    assert data["HS+RO (w/ DFS)"].total_s <= data["HS (w/ DFS)"].total_s
    assert data["HS (w/ DFS)"].total_s < data["BFS"].total_s
    speedup = base / data["HS+RO (w/ DFS)"].total_s
    assert 1.02 < speedup < 2.0


def test_fig13c_batch_sweep_16gb(benchmark, report):
    system = ScaleUpSystem(params_for_gb(16))

    def compute():
        return {b: system.latency(b) for b in (1, 16, 32, 64, 96)}

    data = run_once(benchmark, compute)
    min_read = system.min_db_read_seconds()
    lines = [f"{'batch':>6s} {'latency ms':>11s} {'QPS':>8s}"]
    for b, lat in data.items():
        lines.append(f"{b:>6d} {lat.total_s * 1e3:>11.1f} {lat.qps:>8.1f}")
    lines.append(f"min DB read: {min_read * 1e3:.1f} ms")
    lines.append("paper: QPS saturates at ~591 around batch 64; latency x3.46 vs min")
    report("Fig. 13c — batch-size scaling (16 GB, HBM)", lines)
    assert data[64].qps == pytest.approx(591, rel=0.15)
    assert data[64].qps > 1.05 * data[32].qps  # paper: 1.1x from 32 -> 64
    assert data[96].qps < 1.1 * data[64].qps  # plateau
    overhead = data[64].total_s / data[1].total_s
    assert 1.5 < overhead < 5.0  # paper: 3.46x


def test_fig13d_large_dbs(benchmark, report):
    def compute():
        system = ScaleUpSystem(params_for_gb(128))
        cluster = IveCluster(PirParams.paper(d0=256, num_dims=18), 16)  # 1 TB
        return (
            {b: system.latency(b).qps for b in (32, 64, 128, 160)},
            {b: cluster.latency(b) for b in (32, 64, 128, 160)},
        )

    qps128, cluster_lat = run_once(benchmark, compute)
    lines = [f"{'batch':>6s} {'128GB QPS':>10s} {'1TB QPS/sys':>12s}"]
    for b in (32, 64, 128, 160):
        lines.append(
            f"{b:>6d} {qps128[b]:>10.1f} {cluster_lat[b].per_system_qps:>12.2f}"
        )
    lines.append("paper: 79.9 QPS (128 GB) and 9.89 QPS/system (1 TB) at batch 128")
    report("Fig. 13d — batch scaling for LPDDR-resident DBs", lines)
    assert qps128[128] == pytest.approx(79.9, rel=0.45)
    assert cluster_lat[128].per_system_qps == pytest.approx(9.89, rel=0.6)
    # Saturation needs the larger batch: 128 still improves clearly over 64.
    assert qps128[128] > 1.15 * qps128[64]
    # QPS x DB size roughly constant at saturation (scalability claim).
    product_128 = qps128[128] * 128
    product_1t = cluster_lat[128].per_system_qps * 1024
    assert product_1t == pytest.approx(product_128, rel=0.4)


def test_fig13e_architectural_ablation(benchmark, report):
    params = params_for_gb(16)

    def compute():
        out = {}
        for config in (IveConfig.base(), IveConfig.base_sp(), IveConfig.ive()):
            sim = IveSimulator(config, params)
            lat = sim.latency(64)
            eb = batch_energy(sim, 64)
            out[config.name] = (
                eb.joules_per_query,
                lat.total_s,
                area(config).logic_total,
            )
        return out

    data = run_once(benchmark, compute)
    base_e, base_d, base_a = data["Base"]
    lines = [f"{'config':>10s} {'energy':>8s} {'delay':>8s} {'area':>8s}  (vs Base)"]
    for name, (e, d, a) in data.items():
        lines.append(
            f"{name:>10s} {e / base_e:>7.2f}x {d / base_d:>7.2f}x {a / base_a:>7.2f}x"
        )
    lines.append("paper: +Sp 0.96/1.0/0.96; +SysNTTU(IVE) 1.05/1.0/0.89")
    report("Fig. 13e — architectural ablation (16 GB)", lines)
    e_sp, d_sp, a_sp = data["+Sp"]
    e_ive, d_ive, a_ive = data["IVE"]
    assert a_sp < base_a  # special primes shrink area
    assert a_ive < a_sp  # sysNTTU shrinks it further
    assert d_ive == pytest.approx(d_sp, rel=0.01)  # no performance loss
    assert e_ive > e_sp * 0.99  # unified datapath costs some energy
