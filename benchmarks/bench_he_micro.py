"""Micro-benchmarks of the HE substrate (NTT, ⊡, Subs, ExpandQuery).

These time the functional implementation itself (pure Python + numpy) —
useful for tracking the library's own performance, not for comparing with
the paper's hardware numbers.
"""

import numpy as np
import pytest

from repro.he.bfv import BfvContext, SecretKey
from repro.he.gadget import Gadget
from repro.he.poly import Domain, RingContext
from repro.he.rgsw import external_product, rgsw_encrypt
from repro.he.sampling import Sampler
from repro.he.subs import generate_subs_key, substitute
from repro.params import PirParams


@pytest.fixture(scope="module")
def ctx():
    params = PirParams.small(n=1024, d0=16, num_dims=2)
    ring = RingContext(params)
    sampler = Sampler(ring, seed=7)
    bfv = BfvContext(ring, sampler)
    gadget = Gadget(ring)
    key = SecretKey.generate(ring, sampler)
    return params, ring, sampler, bfv, gadget, key


def test_ntt_forward(benchmark, ctx):
    params, ring, sampler, *_ = ctx
    poly = sampler.uniform_poly(Domain.COEFF)
    result = benchmark(lambda: poly.to_ntt())
    assert result.domain is Domain.NTT


def test_ntt_roundtrip(benchmark, ctx):
    params, ring, sampler, *_ = ctx
    poly = sampler.uniform_poly(Domain.COEFF)
    result = benchmark(lambda: poly.to_ntt().to_coeff())
    assert np.array_equal(result.residues, poly.residues)


def test_encrypt(benchmark, ctx):
    params, ring, sampler, bfv, gadget, key = ctx
    m = np.arange(ring.n, dtype=np.int64) % params.plain_modulus
    ct = benchmark(lambda: bfv.encrypt(m, key))
    assert np.array_equal(bfv.decrypt(ct, key), m)


def test_external_product(benchmark, ctx):
    params, ring, sampler, bfv, gadget, key = ctx
    m = np.arange(ring.n, dtype=np.int64) % params.plain_modulus
    ct = bfv.encrypt(m, key)
    rgsw = rgsw_encrypt(bfv, gadget, 1, key)
    out = benchmark(lambda: external_product(rgsw, ct, gadget))
    assert np.array_equal(bfv.decrypt(out, key), m)


def test_substitution(benchmark, ctx):
    params, ring, sampler, bfv, gadget, key = ctx
    m = np.zeros(ring.n, dtype=np.int64)
    m[2] = 5
    ct = bfv.encrypt(m, key)
    evk = generate_subs_key(bfv, gadget, key, ring.n + 1)
    out = benchmark(lambda: substitute(ct, evk, gadget))
    assert bfv.decrypt(out, key)[2] == 5  # even slot survives X -> X^(N+1)


def test_end_to_end_retrieval(benchmark):
    """Full functional PIR round trip on small parameters."""
    from repro.pir.database import PirDatabase
    from repro.pir.protocol import PirProtocol

    params = PirParams.small(n=256, d0=8, num_dims=2)
    db = PirDatabase.random(params, num_records=32, record_bytes=64, seed=3)
    protocol = PirProtocol(params, db, seed=4)
    record = benchmark.pedantic(
        lambda: protocol.retrieve(21).record, rounds=1, iterations=1
    )
    assert record == db.record(21)
