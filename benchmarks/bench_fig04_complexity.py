"""Fig. 4 + Fig. 7d: computational complexity breakdown of the PIR steps.

Paper series:
  Fig. 4a — per-step share of integer mults vs DB size (D0 = 256):
            ExpandQuery 14/7/4/2 %, RowSel 58/62/65/66 %, ColTor 29/30/31/32 %
            for 2/4/8/16 GB.
  Fig. 4b — total complexity vs D0 at 2 GB, minimized around D0 = 256-512.
  Fig. 7d — per-step unit breakdown: ExpandQuery ~90% (i)NTT, RowSel 100%
            GEMM, ColTor ~83% (i)NTT.
"""

from conftest import params_for_gb, run_once

from repro.analysis import complexity

PAPER_FIG4A = {
    2: {"ExpandQuery": 0.14, "RowSel": 0.58, "ColTor": 0.29},
    4: {"ExpandQuery": 0.07, "RowSel": 0.62, "ColTor": 0.30},
    8: {"ExpandQuery": 0.04, "RowSel": 0.65, "ColTor": 0.31},
    16: {"ExpandQuery": 0.02, "RowSel": 0.66, "ColTor": 0.32},
}


def compute_fig4a():
    return {gb: complexity.step_shares(params_for_gb(gb)) for gb in (2, 4, 8, 16)}


def test_fig4a_step_shares(benchmark, report):
    shares = run_once(benchmark, compute_fig4a)
    lines = [f"{'DB':>5s} {'step':>12s} {'paper':>8s} {'measured':>9s}"]
    for gb, by_step in shares.items():
        for step, value in by_step.items():
            lines.append(
                f"{gb:>3d}GB {step:>12s} {PAPER_FIG4A[gb][step]:>7.0%} {value:>8.0%}"
            )
    report("Fig. 4a — complexity breakdown vs DB size (D0=256)", lines)
    for gb, by_step in shares.items():
        assert by_step["RowSel"] > by_step["ColTor"] > by_step["ExpandQuery"]
    assert shares[16]["ExpandQuery"] < shares[2]["ExpandQuery"]


def test_fig4b_d0_sweep(benchmark, report):
    params = params_for_gb(2)
    sweep = run_once(
        benchmark, complexity.relative_complexity_vs_d0, params, [128, 256, 512, 1024]
    )
    lines = [f"{'D0':>6s} {'relative complexity':>20s}"]
    lines += [f"{d0:>6d} {value:>20.3f}" for d0, value in sweep.items()]
    lines.append("paper: minimum in the D0 = 256-512 band")
    report("Fig. 4b — relative complexity vs D0 (2 GB DB)", lines)
    assert min(sweep, key=sweep.get) in (256, 512)


PAPER_FIG7D_NTT = {"ExpandQuery": 0.90, "RowSel": 0.0, "ColTor": 0.83}


def test_fig7d_unit_breakdown(benchmark, report):
    params = params_for_gb(2)
    counts = run_once(benchmark, complexity.pir_step_counts, params)
    lines = [f"{'step':>12s} {'(i)NTT':>8s} {'GEMM':>8s} {'iCRT':>8s} {'elem':>8s}"]
    for step, c in counts.items():
        s = c.unit_shares()
        lines.append(
            f"{step:>12s} {s['ntt']:>7.0%} {s['gemm']:>7.0%} "
            f"{s['icrt']:>7.0%} {s['elem']:>7.0%}"
        )
    lines.append("paper: ExpandQuery 90% / ColTor 83% (i)NTT, RowSel 100% GEMM")
    report("Fig. 7d — per-step operation-type breakdown", lines)
    assert counts["ExpandQuery"].unit_shares()["ntt"] > 0.5
    assert counts["ColTor"].unit_shares()["ntt"] > 0.5
    assert counts["RowSel"].unit_shares()["gemm"] == 1.0
