"""Fig. 6: roofline + per-step GPU execution time vs multi-client batch.

Paper series (RTX 4090, 41.3 TOPS / 939 GB/s, 2 GB DB):
  left  — RowSel's arithmetic intensity climbs with batch (1-64) toward the
          compute-bound region; ExpandQuery/ColTor intensities stay fixed.
  right — amortized per-query time: RowSel shrinks with batch, the other
          steps stay flat, totalling ~12-14 ms at batch 1.
"""

from conftest import params_for_gb, run_once

from repro.analysis import intensity
from repro.baselines.gpu import GpuPirModel
from repro.baselines.roofline import RTX4090

BATCHES = (1, 4, 16, 64)


def compute_intensities():
    params = params_for_gb(2)
    return {b: intensity.step_intensities(params, batch=b) for b in BATCHES}


def test_fig6_left_intensity(benchmark, report):
    data = run_once(benchmark, compute_intensities)
    ridge = RTX4090.ridge_intensity
    lines = [f"{'batch':>6s} {'ExpandQuery':>12s} {'RowSel':>10s} {'ColTor':>10s}  (ops/byte)"]
    for b, steps in data.items():
        lines.append(
            f"{b:>6d} {steps['ExpandQuery'].intensity:>12.2f} "
            f"{steps['RowSel'].intensity:>10.2f} {steps['ColTor'].intensity:>10.2f}"
        )
    lines.append(f"RTX 4090 ridge point: {ridge:.1f} ops/byte")
    report("Fig. 6 (left) — arithmetic intensity vs batch (2 GB DB)", lines)
    rowsel = [steps["RowSel"].intensity for steps in data.values()]
    assert rowsel[0] < ridge  # unbatched RowSel is memory-bound
    assert rowsel[-1] > 20 * rowsel[0]
    expand = [steps["ExpandQuery"].intensity for steps in data.values()]
    assert max(expand) / min(expand) < 1.05


def compute_step_times():
    model = GpuPirModel(RTX4090, params_for_gb(2))
    return {b: model.step_times(b) for b in BATCHES}


def test_fig6_right_amortized_time(benchmark, report):
    data = run_once(benchmark, compute_step_times)
    lines = [
        f"{'batch':>6s} {'ExpandQuery':>12s} {'RowSel':>10s} {'ColTor':>10s} "
        f"{'total':>8s}  (ms/query)"
    ]
    for b, t in data.items():
        lines.append(
            f"{b:>6d} {t.expand_s / b * 1e3:>12.2f} {t.rowsel_s / b * 1e3:>10.2f} "
            f"{t.coltor_s / b * 1e3:>10.2f} {t.per_query_s * 1e3:>8.2f}"
        )
    lines.append("paper: ~12-14 ms/query at batch 1, RowSel amortizing with batch")
    report("Fig. 6 (right) — per-query GPU time vs batch (RTX 4090, 2 GB)", lines)
    assert data[64].rowsel_s / 64 < 0.25 * data[1].rowsel_s
    assert data[64].per_query_s < data[1].per_query_s
    assert 0.004 < data[1].per_query_s < 0.04
