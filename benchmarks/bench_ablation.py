"""Ablation benches for the design choices DESIGN.md calls out.

Beyond the paper's own figures, these sweep the key internal knobs:

* HS subtree depth (the Section IV-A working-set trade-off),
* batch-scheduler waiting window (latency/throughput trade, Section VI-F),
* cluster size scaling (near-linear RLP claim, Section V),
* special primes' modular-multiplier area (Section IV-G's 9.1%).
"""

import pytest
from conftest import params_for_gb, run_once

from repro.arch.config import IveConfig
from repro.arch.simulator import IveSimulator
from repro.he import modmath
from repro.params import PirParams
from repro.sched.traversal import schedule_coltor
from repro.sched.tree import ScheduleConfig, Traversal
from repro.systems.batching import BatchPolicy
from repro.systems.cluster import IveCluster
from repro.systems.queueing import simulate_batching


def test_ablation_subtree_depth(benchmark, report):
    """Deeper subtrees cut ColTor traffic until the working set overflows."""
    params = params_for_gb(16)

    def compute():
        out = {}
        for depth in (1, 2, 3):
            cfg = ScheduleConfig(
                capacity_bytes=4 << 20,
                traversal=Traversal.HS_DFS,
                reduction_overlap=True,
                subtree_depth=depth,
            )
            out[depth] = schedule_coltor(params, cfg).traffic().total_bytes
        return out

    data = run_once(benchmark, compute)
    lines = [f"{'subtree depth':>14s} {'ColTor DRAM MB/query':>21s}"]
    lines += [f"{d:>14d} {b / 1e6:>21.1f}" for d, b in data.items()]
    lines.append("auto-selected depth at 4 MB/core with R.O.: 3 (Section IV-A)")
    report("Ablation — HS subtree depth vs DRAM traffic (16 GB)", lines)
    assert data[3] < data[2] < data[1]


def test_ablation_waiting_window(benchmark, report):
    """Longer windows trade latency for batch size; beyond the DB-read time
    the throughput gain vanishes (the paper's window-sizing rule)."""
    sim = IveSimulator(IveConfig.ive(), params_for_gb(16))
    cache: dict[int, float] = {}

    def service(batch: int) -> float:
        if batch not in cache:
            cache[batch] = sim.latency(batch).total_s
        return cache[batch]

    db_read = sim.min_db_read_seconds()
    windows = (0.25 * db_read, db_read, 4 * db_read)

    def compute():
        out = {}
        for window in windows:
            policy = BatchPolicy(waiting_window_s=window, max_batch=128)
            point = simulate_batching(service, policy, arrival_qps=200, num_queries=800, seed=3)
            out[window] = point
        return out

    data = run_once(benchmark, compute)
    lines = [f"{'window ms':>10s} {'mean latency ms':>16s} {'mean batch':>11s}"]
    for window, point in data.items():
        lines.append(
            f"{window * 1e3:>10.1f} {point.mean_latency_s * 1e3:>16.1f} "
            f"{point.mean_batch:>11.1f}"
        )
    lines.append(f"paper rule: window = DB read time = {db_read * 1e3:.1f} ms")
    report("Ablation — waiting-window sizing at 200 QPS offered load", lines)
    points = list(data.values())
    assert points[2].mean_batch >= points[0].mean_batch  # longer window, larger batches
    assert points[2].mean_latency_s > points[0].mean_latency_s  # at a latency cost


def test_ablation_cluster_scaling(benchmark, report):
    """Near-linear RLP scaling: 2x systems -> ~2x throughput on a fixed DB."""
    params = PirParams.paper(d0=256, num_dims=15)  # 128 GB

    def compute():
        return {n: IveCluster(params, n).qps(128) for n in (2, 4, 8, 16)}

    data = run_once(benchmark, compute)
    lines = [f"{'systems':>8s} {'QPS':>8s} {'scaling':>8s}"]
    prev = None
    for n, qps in data.items():
        scale = "" if prev is None else f"{qps / prev:>7.2f}x"
        lines.append(f"{n:>8d} {qps:>8.1f} {scale:>8s}")
        prev = qps
    report("Ablation — cluster size scaling (128 GB DB, batch 128)", lines)
    assert data[16] > 4 * data[2]
    assert data[16] / data[8] > 1.4  # near-linear at the top end


def test_ablation_special_prime_area(benchmark, report):
    """Section IV-G: Solinas-like primes cut the modmul circuit by 9.1%."""
    def compute():
        generic = modmath.montgomery_modmul_area_units(28, special=False)
        special = modmath.montgomery_modmul_area_units(28, special=True)
        return generic, special

    generic, special = run_once(benchmark, compute)
    saving = 1 - special / generic
    report(
        "Ablation — special-prime modular multiplier",
        [
            f"generic-prime area units: {generic:.3f}",
            f"special-prime area units: {special:.3f}",
            f"reduction: {saving:.1%} (paper: 9.1%)",
        ],
    )
    assert saving == pytest.approx(0.091)


def test_ablation_d0_vs_throughput(benchmark, report):
    """End-to-end check of Fig. 4b's claim: D0=256-512 maximizes QPS too."""
    def compute():
        out = {}
        total_polys = params_for_gb(8).num_db_polys
        for d0 in (128, 256, 512, 1024):
            dims = (total_polys // d0).bit_length() - 1
            params = PirParams.paper(d0=d0, num_dims=dims)
            out[d0] = IveSimulator(IveConfig.ive(), params).latency(64).qps
        return out

    data = run_once(benchmark, compute)
    lines = [f"{'D0':>6s} {'QPS':>8s}"]
    lines += [f"{d0:>6d} {qps:>8.1f}" for d0, qps in data.items()]
    report("Ablation — D0 sweep end-to-end (8 GB, batch 64)", lines)
    best = max(data, key=data.get)
    assert best in (256, 512, 1024)
    assert data[best] > data[128]
