"""Fig. 12: QPS and energy of CPU / GPU (single & batched) / IVE, 2-8 GB.

Paper values: IVE 4261 / 2350 / 1242 QPS and 0.03 / 0.05 / 0.09 J/query;
687.6x (gmean) over the 32-core CPU, up to 18.7x over the best batched
GPU; CPU energy 72 / 107 / 176 J/query.
"""

import math

from conftest import params_for_gb, run_once

from repro.arch.config import IveConfig
from repro.arch.energy import energy_per_query
from repro.arch.simulator import IveSimulator
from repro.baselines.cpu import CpuModel
from repro.baselines.gpu import GpuPirModel
from repro.baselines.roofline import H100, RTX4090

PAPER_IVE_QPS = {2: 4261.0, 4: 2350.0, 8: 1242.0}
PAPER_IVE_J = {2: 0.03, 4: 0.05, 8: 0.09}
PAPER_CPU_J = {2: 72.0, 4: 107.0, 8: 176.0}


def compute_fig12():
    rows = {}
    for gb in (2, 4, 8):
        params = params_for_gb(gb)
        cpu = CpuModel(params)
        sim = IveSimulator(IveConfig.ive(), params)
        entry = {
            "CPU (32)": (cpu.qps(), cpu.energy_per_query()),
            "IVE": (sim.latency(64).qps, energy_per_query(sim, 64)),
        }
        for device in (RTX4090, H100):
            model = GpuPirModel(device, params)
            if model.preprocessed_db_bytes < device.memory_capacity:
                entry[f"{device.name} (S)"] = (
                    1.0 / model.single_query_latency(),
                    model.energy_per_query(1),
                )
            if model.max_batch() >= 1:
                entry[f"{device.name} (B)"] = (model.qps(), model.energy_per_query())
        rows[gb] = entry
    return rows


def test_fig12(benchmark, report):
    rows = run_once(benchmark, compute_fig12)
    lines = [f"{'DB':>5s} {'system':>12s} {'QPS':>10s} {'J/query':>10s}"]
    for gb, entry in rows.items():
        for system, (qps, joules) in entry.items():
            lines.append(f"{gb:>3d}GB {system:>12s} {qps:>10.2f} {joules:>10.4f}")
    lines.append(
        "paper IVE: 4261/2350/1242 QPS, 0.03/0.05/0.09 J; CPU 72/107/176 J"
    )
    report("Fig. 12 — throughput and energy across platforms", lines)

    cpu_ratios, gpu_ratios = [], []
    for gb, entry in rows.items():
        ive_qps, ive_j = entry["IVE"]
        assert PAPER_IVE_QPS[gb] * 0.85 < ive_qps < PAPER_IVE_QPS[gb] * 1.15
        assert PAPER_IVE_J[gb] * 0.5 < ive_j < PAPER_IVE_J[gb] * 1.5
        cpu_ratios.append(ive_qps / entry["CPU (32)"][0])
        best_gpu = max(
            qps for name, (qps, _) in entry.items() if name.endswith("(B)")
        )
        gpu_ratios.append(ive_qps / best_gpu)
        # Ordering: CPU < GPU < IVE in throughput, reverse in energy.
        assert entry["CPU (32)"][0] < best_gpu < ive_qps
    gmean_cpu = math.exp(sum(map(math.log, cpu_ratios)) / len(cpu_ratios))
    gmean_gpu = math.exp(sum(map(math.log, gpu_ratios)) / len(gpu_ratios))
    assert 450 < gmean_cpu < 1000  # paper: 687.6x
    assert 8 < gmean_gpu < 30  # paper: up to 18.7x


def test_fig12_4090_absent_at_8gb(benchmark):
    """The 28 GB preprocessed 8 GB DB does not fit the 4090's 24 GB."""
    def check():
        return GpuPirModel(RTX4090, params_for_gb(8)).max_batch()

    assert run_once(benchmark, check) == 0
