"""Shared helpers for the figure/table reproduction benchmarks.

Every benchmark prints a paper-vs-measured table straight to the terminal
(bypassing capture) and records its compute time via pytest-benchmark.
"""

import pytest

from repro.params import PirParams

#: DB size (GiB) -> ColTor dimensions at D0 = 256, 16 KB records.
DIMS_BY_GB = {2: 9, 4: 10, 8: 11, 16: 12, 32: 13, 64: 14, 128: 15}


def params_for_gb(gb: int) -> PirParams:
    return PirParams.paper(d0=256, num_dims=DIMS_BY_GB[gb])


@pytest.fixture()
def report(capsys):
    """Print a rendered table to the real terminal, bypassing capture."""

    def _print(title: str, lines):
        with capsys.disabled():
            print()
            print("=" * 78)
            print(title)
            print("-" * 78)
            for line in lines:
                print(line)
            print("=" * 78)

    return _print


def run_once(benchmark, func, *args, **kwargs):
    """Time one execution (these are model evaluations, not microkernels)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
