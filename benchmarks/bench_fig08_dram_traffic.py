"""Fig. 8: DRAM traffic of ExpandQuery/ColTor under each scheduling policy.

Paper setup: 32 batched queries, 8 GB DB, 64 MB and 128 MB on-chip caches.
Headline ratios vs the BFS baseline (128 MB):
  ExpandQuery — BFS-HS 1.75x, DFS-HS 1.87x (+7%)
  ColTor      — BFS-HS 1.81x, +R.O. 2.24x (1.23x over DFS-HS at depth gain)
"""

from conftest import run_once

from repro.params import PirParams
from repro.sched import figure8, reduction_vs_bfs

PAPER_REDUCTIONS = {
    ("ExpandQuery", "HS (w/ BFS)"): 1.75,
    ("ExpandQuery", "HS+R.O. (w/ DFS)"): 1.87,
    ("ColTor", "HS (w/ BFS)"): 1.81,
    ("ColTor", "HS+R.O. (w/ DFS)"): 2.24,
}


def compute_fig8():
    params = PirParams.paper(d0=256, num_dims=11)  # 8 GB
    return figure8(params, batch=32, chip_capacities=(64 << 20, 128 << 20))


def test_fig8_traffic(benchmark, report):
    data = run_once(benchmark, compute_fig8)
    lines = []
    for step, caps in data.items():
        for cap, results in caps.items():
            reductions = reduction_vs_bfs(results)
            lines.append(f"--- {step} @ {cap >> 20} MB chip cache ---")
            lines.append(
                f"{'policy':>18s} {'ct load':>9s} {'ct store':>9s} "
                f"{'key load':>9s} {'total':>8s} {'vs BFS':>7s}"
            )
            for r in results:
                t = r.traffic
                lines.append(
                    f"{r.label:>18s} {t.ct_load_bytes / 1e9:>8.2f}G "
                    f"{t.ct_store_bytes / 1e9:>8.2f}G {t.key_load_bytes / 1e9:>8.2f}G "
                    f"{r.total_gb:>7.2f}G {reductions[r.label]:>6.2f}x"
                )
    lines.append("paper @128MB: Expand BFS-HS 1.75x / DFS-HS 1.87x; "
                 "ColTor BFS-HS 1.81x / +R.O. 2.24x")
    report("Fig. 8 — DRAM traffic by scheduling policy (8 GB, batch 32)", lines)

    at_128 = {step: reduction_vs_bfs(caps[128 << 20]) for step, caps in data.items()}
    for (step, policy), paper in PAPER_REDUCTIONS.items():
        measured = at_128[step][policy]
        assert paper / 1.6 < measured < paper * 1.6, (step, policy, measured)
    # Ordering claims: HS beats BFS; R.O. never hurts.
    for step in ("ExpandQuery", "ColTor"):
        r = at_128[step]
        assert r["HS (w/ DFS)"] > 1.0
        assert r["HS+R.O. (w/ DFS)"] >= r["HS (w/ DFS)"] * 0.999
