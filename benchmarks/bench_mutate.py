"""Online database updates: delta apply vs full re-preprocess, under churn.

Three halves, one claim: update cost must scale with the delta, not the
database.  The real-crypto half measures ``repro.mutate`` dirty-plane
delta application against a from-scratch ``preprocess()`` across churn
rate x apply-batch splits (coalescing a churn window into one apply beats
applying it write by write).  The serving half runs an open-loop load
test over the epoch-versioned registry while hot-swapping epochs mid-run:
every admitted request must decode byte-correct against the epoch it was
admitted under, with tail latency stable across the swaps.  The model
half prices the same delta path on IVE at paper scale (2 GiB DB).
Results land in BENCH_mutate.json so future PRs have a trajectory.
"""

import asyncio
import json
import os
import pathlib
import time

import numpy as np

from conftest import params_for_gb, run_once

from repro.errors import ServeError
from repro.he.poly import RingContext
from repro.mutate import (
    UpdateLog,
    VersionedCryptoBackend,
    VersionedDatabase,
    VersionedShardRegistry,
    churn_update_curve,
)
from repro.params import PirParams
from repro.pir.database import PirDatabase
from repro.serve.dispatcher import AdmissionConfig, ServeRuntime
from repro.serve.loadgen import poisson_arrivals
from repro.serve.metrics import percentile
from repro.systems.batching import BatchPolicy

#: BENCH_SMOKE=1 shrinks every knob for the CI smoke job: the scripts
#: must still run end to end, but results are not written or compared.
SMOKE = bool(os.environ.get("BENCH_SMOKE"))

# -- real-crypto delta sweep: one record per polynomial --------------------
DELTA_DIMS = 4 if SMOKE else 7  # 256 / 2048 polys at d0=16
RECORD_BYTES = 512  # exactly one 512 B record per n=256 polynomial
CHURNS = (0.01,) if SMOKE else (0.0025, 0.01)
SPLITS = (1,) if SMOKE else (1, 4)  # apply the window as 1 log vs 4 logs
SPEEDUP_BOUND = 3.0 if SMOKE else 10.0

# -- epoch-swap load test --------------------------------------------------
SWAP_RECORDS = 16 if SMOKE else 24
SWAP_QUERIES = 24 if SMOKE else 60
SWAP_EVERY = 8 if SMOKE else 15  # publish an epoch every N admissions
SWAP_RATE_QPS = 30.0  # below saturation, so swap lag (not queueing) is visible

_OUT = pathlib.Path(__file__).resolve().parent / "BENCH_mutate.json"


def _delta_sweep() -> dict:
    """Measured delta apply vs full preprocess at tiny real parameters."""
    params = PirParams.small(n=256, d0=16, num_dims=DELTA_DIMS)
    num_records = params.num_db_polys  # one record per polynomial
    rng = np.random.default_rng(11)
    records = [rng.bytes(RECORD_BYTES) for _ in range(num_records)]
    ring = RingContext(params)

    vdb = VersionedDatabase(params, records, RECORD_BYTES, ring=ring)
    start = time.monotonic()
    vdb.current.db.preprocess(ring)  # the full-rebuild baseline, timed
    full_s = time.monotonic() - start

    points = []
    for churn in CHURNS:
        updates = max(1, round(churn * num_records))
        for splits in SPLITS:
            indices = rng.choice(num_records, size=updates, replace=False)
            chunks = np.array_split(indices, min(splits, updates))
            start = time.monotonic()
            dirty = 0
            for chunk in chunks:
                log = UpdateLog()
                for idx in chunk:
                    log.put(int(idx), rng.bytes(RECORD_BYTES))
                dirty += vdb.apply(log).cost.polys_repacked
            apply_s = time.monotonic() - start
            cost = vdb.current.cost
            points.append(
                {
                    "churn": churn,
                    "updates": updates,
                    "splits": len(chunks),
                    "dirty_polys": dirty,
                    "apply_s": apply_s,
                    "speedup_vs_full": full_s / apply_s,
                    "counted_speedup": cost.full_polys / max(1, dirty),
                }
            )
    # Correctness: the churned database matches a from-scratch rebuild.
    fresh = PirDatabase.from_records(
        [vdb.record(i) for i in range(num_records)], params, RECORD_BYTES
    )
    identical = bool(np.array_equal(fresh.planes, vdb.current.db.planes))
    return {
        "num_records": num_records,
        "record_bytes": RECORD_BYTES,
        "full_preprocess_s": full_s,
        "byte_identical": identical,
        "points": points,
    }


def _epoch_swap_run() -> dict:
    """Open-loop load test with hot swaps mid-run (real crypto)."""
    params = PirParams.small(n=256, d0=8, num_dims=2)
    registry = VersionedShardRegistry.random(
        params,
        num_records=SWAP_RECORDS,
        record_bytes=32,
        num_shards=2,
        seed=7,
        retain=2,
    )
    policy = BatchPolicy(waiting_window_s=0.01, max_batch=8)
    arrivals = poisson_arrivals(SWAP_RATE_QPS, SWAP_QUERIES, seed=13)
    rng = np.random.default_rng(14)
    indices = rng.integers(0, SWAP_RECORDS, size=SWAP_QUERIES)

    truth = {0: [registry.expected(i) for i in range(SWAP_RECORDS)]}
    swap_costs = []

    async def main():
        runtime = ServeRuntime(
            registry,
            VersionedCryptoBackend(registry),
            policy,
            AdmissionConfig(max_queue_depth=1024),
        )
        runtime.start()
        loop = asyncio.get_running_loop()
        epoch_start = loop.time()
        futures = []
        for at, (offset, index) in enumerate(zip(arrivals, indices)):
            delay = epoch_start + float(offset) - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            if at and at % SWAP_EVERY == 0:
                log = UpdateLog()
                for idx in rng.choice(SWAP_RECORDS, size=3, replace=False):
                    log.put(int(idx), rng.bytes(32))
                published = registry.publish(log)
                swap_costs.append(published.cost.polys_repacked)
                truth[published.epoch] = [
                    registry.expected(i) for i in range(SWAP_RECORDS)
                ]
            request = registry.make_request(int(index))
            try:
                futures.append(runtime.submit(request))
            except ServeError:
                registry.release(request)  # a shed request must unpin
        await runtime.drain()
        return await asyncio.gather(*futures)

    results = asyncio.run(main())
    correct = 0
    latencies_by_epoch: dict[int, list[float]] = {}
    for result in results:
        request = result.request
        decoded = registry.decode(request, result.response)
        correct += decoded == truth[request.epoch][request.global_index]
        latencies_by_epoch.setdefault(request.epoch, []).append(result.latency_s)
    p99_by_epoch = {
        epoch: percentile(lats, 99) for epoch, lats in sorted(latencies_by_epoch.items())
    }
    return {
        "queries": SWAP_QUERIES,
        "swaps": len(swap_costs),
        "completed": len(results),
        "correct": correct,
        "dirty_polys_per_swap": swap_costs,
        "p99_ms_by_epoch": {str(e): p * 1e3 for e, p in p99_by_epoch.items()},
    }


def _model_points() -> list[dict]:
    """Paper-scale IVE update model on the 2 GiB Table I database."""
    return [
        {
            "churn": p.churn,
            "dirty_polys": p.dirty_polys,
            "apply_ms": p.apply_s * 1e3,
            "full_ms": p.full_s * 1e3,
            "speedup_vs_full": p.speedup,
            "placement": p.placement,
        }
        for p in churn_update_curve(params_for_gb(2), churns=(0.001, 0.01, 0.1))
    ]


def test_mutate_churn_and_epoch_swap(benchmark, report):
    real, swap, model = run_once(
        benchmark, lambda: (_delta_sweep(), _epoch_swap_run(), _model_points())
    )
    if not SMOKE:
        payload = {"real_crypto": real, "epoch_swap": swap, "model_2gib": model}
        _OUT.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"real crypto, {real['num_records']} x {real['record_bytes']} B records: "
        f"full preprocess {real['full_preprocess_s'] * 1e3:.0f} ms"
    ]
    lines.append(
        f"{'churn':>7s} {'splits':>6s} {'dirty':>6s} {'apply ms':>9s} {'speedup':>8s}"
    )
    for p in real["points"]:
        lines.append(
            f"{p['churn']:>6.2%} {p['splits']:>6d} {p['dirty_polys']:>6d} "
            f"{p['apply_s'] * 1e3:>9.2f} {p['speedup_vs_full']:>7.1f}x"
        )
    lines.append(
        f"epoch swaps under load: {swap['swaps']} swaps, "
        f"{swap['correct']}/{swap['completed']} byte-correct against the "
        "admitted epoch"
    )
    lines.append(
        "p99 by epoch (ms): "
        + ", ".join(f"{e}: {p:.1f}" for e, p in swap["p99_ms_by_epoch"].items())
    )
    lines.append("IVE model, 2 GiB DB:")
    for p in model:
        lines.append(
            f"{p['churn']:>6.2%} {p['dirty_polys']:>12d} polys "
            f"{p['apply_ms']:>8.2f} ms vs {p['full_ms']:>6.1f} ms "
            f"= {p['speedup_vs_full']:>7.1f}x ({p['placement']})"
        )
    lines.append("JSON skipped (smoke)" if SMOKE else f"JSON written to {_OUT.name}")
    report("Mutable PIR databases — delta apply, epoch swaps, update model", lines)

    # The churned database is byte-identical to a from-scratch rebuild...
    assert real["byte_identical"]
    # ...delta apply clears the speedup bound at <=1% churn (measured AND
    # counted work), in the real half and the paper-scale model...
    for p in real["points"]:
        if p["churn"] <= 0.01:
            assert p["speedup_vs_full"] >= SPEEDUP_BOUND, p
            assert p["counted_speedup"] >= SPEEDUP_BOUND, p
    model_1pct = next(p for p in model if p["churn"] == 0.01)
    assert model_1pct["speedup_vs_full"] >= 10.0
    # ...and no admitted request is lost or decoded against the wrong epoch
    # across hot swaps, with a sane tail in every epoch.
    assert swap["completed"] == swap["queries"]
    assert swap["correct"] == swap["completed"]
    assert swap["swaps"] >= 1
    p99s = list(swap["p99_ms_by_epoch"].values())
    assert all(p > 0 for p in p99s)
    if not SMOKE and min(p99s) > 0:
        assert max(p99s) / min(p99s) < 10.0  # stable tail across swaps
