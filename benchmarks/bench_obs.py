"""Observability overhead: a traced+profiled run vs the bare hot path.

One claim, measured end to end: switching on per-request tracing and
kernel profiling (``--trace``) must cost at most 10% of the real-crypto
serving throughput.  The bare run and the instrumented run drive the
same closed burst through ``ServeRuntime`` + ``RealCryptoBackend``;
QPS is best-of-N to shave scheduler noise.  The instrumented run's
artifacts are sanity-checked inline — spans for every request, kernel
stages populated — so the benchmark cannot "win" by silently tracing
nothing.  Results land in BENCH_obs.json.
"""

import asyncio
import json
import os
import pathlib
import time

import numpy as np

from conftest import run_once

from repro.obs import KernelProfiler, Tracer
from repro.obs.profile import install as install_profiler
from repro.params import PirParams
from repro.serve import RealCryptoBackend, RealShardRegistry, ServeRuntime
from repro.systems.batching import BatchPolicy

#: BENCH_SMOKE=1 shrinks every knob for the CI smoke job: the scripts
#: must still run end to end, but results are not written or compared.
SMOKE = bool(os.environ.get("BENCH_SMOKE"))

NUM_RECORDS = 16
RECORD_BYTES = 64
NUM_SHARDS = 2
NUM_QUERIES = 8 if SMOKE else 48
REPEATS = 1 if SMOKE else 3
OVERHEAD_BOUND = 0.10  # the ISSUE's bar: tracing costs <= 10% QPS

_OUT = pathlib.Path(__file__).resolve().parent / "BENCH_obs.json"


def _registry() -> RealShardRegistry:
    params = PirParams.small(n=256, d0=8, num_dims=2)
    rng = np.random.default_rng(97)
    records = [rng.bytes(RECORD_BYTES) for _ in range(NUM_RECORDS)]
    return RealShardRegistry(params, records, NUM_SHARDS, RECORD_BYTES, seed=7)


def _policy() -> BatchPolicy:
    return BatchPolicy(
        waiting_window_s=0.005, max_batch=max(4, NUM_QUERIES // NUM_SHARDS)
    )


def _burst(registry, traced: bool) -> dict:
    """One closed burst; returns QPS plus the run's obs artifacts."""
    tracer = Tracer() if traced else None
    profiler = KernelProfiler() if traced else None
    previous = install_profiler(profiler) if traced else None

    async def main():
        backend = RealCryptoBackend(registry, tracer=tracer)
        runtime = ServeRuntime(registry, backend, _policy(), tracer=tracer)
        async with runtime:
            start = time.monotonic()
            results = await asyncio.gather(
                *(
                    runtime.serve_index(i % registry.num_records)
                    for i in range(NUM_QUERIES)
                )
            )
            elapsed = time.monotonic() - start
        return elapsed, results

    try:
        elapsed, results = asyncio.run(main())
    finally:
        if traced:
            install_profiler(previous)
    correct = sum(
        registry.decode(r.request, r.response)
        == registry.expected(r.request.global_index)
        for r in results
    )
    return {
        "qps": NUM_QUERIES / elapsed,
        "correct": correct,
        "spans": len(tracer.spans) if traced else 0,
        "kernel_profile": profiler.snapshot() if traced else {},
    }


def _best_of(registry, traced: bool) -> dict:
    runs = [_burst(registry, traced) for _ in range(REPEATS)]
    return max(runs, key=lambda r: r["qps"])


def test_observability_overhead(benchmark, report):
    registry = _registry()

    def sweep():
        # Interleave-free ordering: bare first, instrumented second, so a
        # warm page cache if anything *favors* the instrumented run.
        return _best_of(registry, traced=False), _best_of(registry, traced=True)

    bare, traced = run_once(benchmark, sweep)
    overhead = 1.0 - traced["qps"] / bare["qps"]

    if not SMOKE:
        _OUT.write_text(
            json.dumps(
                {
                    "records": NUM_RECORDS,
                    "shards": NUM_SHARDS,
                    "queries": NUM_QUERIES,
                    "repeats": REPEATS,
                    "sched_cores": len(os.sched_getaffinity(0)),
                    "bare_qps": bare["qps"],
                    "traced_qps": traced["qps"],
                    "overhead": overhead,
                    "overhead_bound": OVERHEAD_BOUND,
                    "spans": traced["spans"],
                    "kernel_profile": traced["kernel_profile"],
                },
                indent=2,
            )
            + "\n"
        )

    lines = [
        f"{'run':>12s} {'QPS':>8s} {'ok':>6s} {'spans':>7s}",
        f"{'bare':>12s} {bare['qps']:>8.1f} "
        f"{bare['correct']:>3d}/{NUM_QUERIES} {bare['spans']:>7d}",
        f"{'traced':>12s} {traced['qps']:>8.1f} "
        f"{traced['correct']:>3d}/{NUM_QUERIES} {traced['spans']:>7d}",
        f"overhead {overhead:+.1%} (bound {OVERHEAD_BOUND:.0%})",
        "JSON skipped (smoke)" if SMOKE else f"JSON written to {_OUT.name}",
    ]
    report(
        "Observability — tracing + kernel profiling overhead on the "
        "real-crypto serving path",
        lines,
    )

    # Correctness is unconditional, instrumented or not.
    assert bare["correct"] == NUM_QUERIES
    assert traced["correct"] == NUM_QUERIES
    # The instrumented run actually observed the work it claims to.
    assert traced["spans"] >= NUM_QUERIES  # at least one span per request
    for stage in ("expand", "rowsel", "coltor", "gemm"):
        assert traced["kernel_profile"][stage]["calls"] > 0, stage
    assert bare["spans"] == 0 and bare["kernel_profile"] == {}
    # The ISSUE's overhead bar (skipped in smoke: one tiny burst is noise).
    if not SMOKE:
        assert traced["qps"] >= (1.0 - OVERHEAD_BOUND) * bare["qps"], (
            f"instrumented {traced['qps']:.1f} QPS lost more than "
            f"{OVERHEAD_BOUND:.0%} vs bare {bare['qps']:.1f} QPS"
        )
