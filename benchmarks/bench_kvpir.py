"""Keyword PIR: per-lookup server cost vs dense index PIR, matched scale.

Two halves, one claim.  The real-crypto half serves k keyword lookups
(tag-matched, directory-free) and k index retrievals over stores with the
SAME number of live records, both through the cuckoo-batched engine, and
reports the keyword overhead factor — the price of key addressing: ~1.5x
slot provisioning, tag bytes per record, and ~num_hashes probes per
lookup.  The model half prices the same comparison on the IVE accelerator
at paper scale (2 GiB of live records) via
:func:`repro.kvpir.model.keyword_overhead_curve`.  Both halves must keep
the overhead within the asserted bound — results land in BENCH_kvpir.json
so future PRs have a trajectory to compare against.

Set ``BENCH_SMOKE=1`` to run a tiny-parameter smoke (CI): smaller store,
smaller batch sizes, no JSON written.
"""

import json
import os
import pathlib
import time

import numpy as np

from conftest import params_for_gb, run_once

from repro.batchpir import BatchPirProtocol
from repro.errors import KeyNotFound
from repro.kvpir import KvPirProtocol, keyword_overhead_curve
from repro.kvpir.layout import random_items
from repro.params import PirParams

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

NUM_KEYS = 1024 if SMOKE else 8192
VALUE_BYTES = 24
REAL_KS = (2, 4) if SMOKE else (4, 8, 16)
MODEL_KS = (8,) if SMOKE else (8, 32, 64)

#: Keyword-vs-index per-retrieval overhead ceiling, both halves.  The
#: mechanism predicts ~probes x slot-inflation (~3 x 1.5); the real-crypto
#: half adds per-bucket pipeline overheads on a noisy shared machine.
OVERHEAD_BOUND = 16.0 if SMOKE else 10.0
MODEL_OVERHEAD_BOUND = 8.0

_OUT = pathlib.Path(__file__).resolve().parent / "BENCH_kvpir.json"


def _real_crypto_points() -> dict:
    """Tiny-parameter measurement: keyword and index stores, matched counts."""
    params = PirParams.small(n=256, d0=16, num_dims=7)
    rng = np.random.default_rng(11)
    items = random_items(NUM_KEYS, VALUE_BYTES, seed=11)
    keys = list(items)
    records = list(items.values())

    points = []
    for k in REAL_KS:
        kv = KvPirProtocol(params, items, max_lookup_batch=k, seed=1)
        dense = BatchPirProtocol(
            params, records, max_batch=k, record_bytes=VALUE_BYTES, seed=1
        )

        wanted_keys = [keys[int(i)] for i in rng.choice(NUM_KEYS, k, replace=False)]
        plan = kv.client.plan(wanted_keys)
        query = kv.client.build_queries(plan)
        start = time.monotonic()
        response = kv.server.answer(query)
        kv_s = time.monotonic() - start
        values = kv.client.decode(plan, response)
        correct = sum(values.get(key) == items[key] for key in wanted_keys)

        wanted_idx = [int(i) for i in rng.choice(NUM_KEYS, k, replace=False)]
        dense_plan = dense.client.plan(wanted_idx)
        dense_query = dense.client.build_queries(dense_plan)
        start = time.monotonic()
        dense_response = dense.server.answer(dense_query)
        dense_s = time.monotonic() - start
        decoded = dense.client.decode(dense_plan, dense_response)
        correct_dense = sum(decoded[g] == records[g] for g in wanted_idx)

        try:  # absent keys must miss cleanly, never decode to bytes
            kv.lookup(rng.bytes(13))
            false_decode = True
        except KeyNotFound:
            false_decode = False

        layout = kv.layout
        points.append(
            {
                "k": k,
                "num_slots": layout.num_slots,
                "stash_slots": layout.stash_slots,
                "probes_per_lookup": layout.candidates_per_lookup,
                "slots_probed": plan.num_slots_probed,
                "kv_pass_s": kv_s,
                "index_pass_s": dense_s,
                "per_lookup_s": kv_s / k,
                "per_index_s": dense_s / k,
                "overhead": (kv_s / k) / (dense_s / k),
                "correct": correct,
                "correct_dense": correct_dense,
                "false_decode": false_decode,
            }
        )
    return {
        "num_keys": NUM_KEYS,
        "value_bytes": VALUE_BYTES,
        "tag_bytes": 8,
        "points": points,
    }


def _model_points() -> list[dict]:
    """Paper-scale accelerator model on the 2 GiB Table I record set."""
    return [
        {
            "k": p.k,
            "candidates": p.candidates,
            "index_query_ms": p.index_query_s * 1e3,
            "lookup_ms": p.lookup_s * 1e3,
            "amortized_index_ms": p.amortized_index_s * 1e3,
            "amortized_lookup_ms": p.amortized_lookup_s * 1e3,
            "standalone_overhead": p.standalone_overhead,
            "amortized_overhead": p.amortized_overhead,
            "index_placement": p.index_placement,
            "kv_placement": p.kv_placement,
            "slot_db_gib": p.slot_db_bytes / (1 << 30),
            "kv_replicated_db_gib": p.kv_replicated_db_bytes / (1 << 30),
        }
        for p in keyword_overhead_curve(params_for_gb(2), ks=MODEL_KS)
    ]


def test_kvpir_keyword_overhead(benchmark, report):
    real, model = run_once(benchmark, lambda: (_real_crypto_points(), _model_points()))
    if not SMOKE:
        _OUT.write_text(
            json.dumps({"real_crypto": real, "model_2gib": model}, indent=2) + "\n"
        )

    lines = [
        f"real crypto, {real['num_keys']} keys of {real['value_bytes']} B "
        f"(+{real['tag_bytes']} B tag):"
    ]
    lines.append(
        f"{'k':>4s} {'slots':>7s} {'probes':>7s} {'lookup ms':>10s} "
        f"{'index ms':>9s} {'overhead':>9s}"
    )
    for p in real["points"]:
        lines.append(
            f"{p['k']:>4d} {p['num_slots']:>7d} {p['slots_probed']:>7d} "
            f"{p['per_lookup_s'] * 1e3:>10.2f} {p['per_index_s'] * 1e3:>9.2f} "
            f"{p['overhead']:>8.1f}x"
        )
    lines.append("IVE model, 2 GiB live records (keyword vs index):")
    for p in model:
        lines.append(
            f"{p['k']:>4d} amortized {p['amortized_lookup_ms']:>7.3f} vs "
            f"{p['amortized_index_ms']:>7.3f} ms -> {p['amortized_overhead']:.1f}x "
            f"(standalone {p['standalone_overhead']:.1f}x, "
            f"{p['index_placement']}->{p['kv_placement']})"
        )
    lines.append(
        "JSON skipped (smoke)" if SMOKE else f"JSON written to {_OUT.name}"
    )
    report("Keyword PIR — per-lookup cost vs dense index PIR", lines)

    for p in real["points"]:
        # Every present key decodes byte-correct; absent keys never decode.
        assert p["correct"] == p["k"]
        assert p["correct_dense"] == p["k"]
        assert not p["false_decode"]
        # The keyword layer pays, but within the asserted bound (acceptance).
        assert 1.0 <= p["overhead"] <= OVERHEAD_BOUND
    for p in model:
        assert 1.0 < p["amortized_overhead"] <= MODEL_OVERHEAD_BOUND
        assert 1.0 < p["standalone_overhead"] <= MODEL_OVERHEAD_BOUND
