"""Serving-runtime load test: QPS and latency percentiles vs arrival rate.

Drives the async multi-shard runtime (repro.serve) on the virtual-time
event loop with the per-shard ScaleUpSystem latency model, sweeping the
offered Poisson rate from light load to past saturation.  Emits the
results as JSON (BENCH_serve_loadtest.json next to this file) so future
scaling PRs have a trajectory to compare against.
"""

import json
import pathlib

from conftest import params_for_gb, run_once

from repro.serve import (
    ServeRuntime,
    SimShardRegistry,
    SimulatedBackend,
    poisson_arrivals,
    run_in_virtual_time,
    run_open_loop,
    uniform_indices,
)
from repro.serve.dispatcher import AdmissionConfig
from repro.systems.batching import BatchPolicy

RATES_QPS = [500.0, 2000.0, 8000.0, 32000.0]
QUERIES_PER_RATE = 3000
NUM_SHARDS = 4

_OUT = pathlib.Path(__file__).resolve().parent / "BENCH_serve_loadtest.json"


def _one_rate(registry: SimShardRegistry, rate: float) -> dict:
    policy = BatchPolicy(waiting_window_s=registry.waiting_window_s(), max_batch=128)

    async def main():
        runtime = ServeRuntime(
            registry,
            SimulatedBackend(registry),
            policy,
            AdmissionConfig(max_queue_depth=512),
        )
        runtime.start()
        arrivals = poisson_arrivals(rate, QUERIES_PER_RATE, seed=17)
        indices = uniform_indices(registry.num_records, QUERIES_PER_RATE, seed=18)
        return await run_open_loop(runtime, arrivals, indices)

    report, virtual_s = run_in_virtual_time(main())
    m = report.metrics
    return {
        "offered_qps": rate,
        "achieved_qps": m["achieved_qps"],
        "p50_ms": m["latency"]["p50_s"] * 1e3,
        "p95_ms": m["latency"]["p95_s"] * 1e3,
        "p99_ms": m["latency"]["p99_s"] * 1e3,
        "mean_batch": m["mean_batch"],
        "rejected": report.rejected,
        "virtual_s": virtual_s,
    }


def test_serve_loadtest_rate_sweep(benchmark, report):
    registry = SimShardRegistry(params_for_gb(2), num_shards=NUM_SHARDS)

    def sweep():
        return [_one_rate(registry, rate) for rate in RATES_QPS]

    points = run_once(benchmark, sweep)
    payload = {
        "db_gib": 2,
        "shards": NUM_SHARDS,
        "queries_per_rate": QUERIES_PER_RATE,
        "points": points,
    }
    _OUT.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"{'offered':>9s} {'achieved':>9s} {'p50 ms':>8s} {'p95 ms':>8s} "
        f"{'p99 ms':>8s} {'batch':>6s} {'shed':>6s}"
    ]
    for p in points:
        lines.append(
            f"{p['offered_qps']:>9.0f} {p['achieved_qps']:>9.0f} "
            f"{p['p50_ms']:>8.2f} {p['p95_ms']:>8.2f} {p['p99_ms']:>8.2f} "
            f"{p['mean_batch']:>6.1f} {p['rejected']:>6d}"
        )
    lines.append(f"JSON written to {_OUT.name}")
    report("Serving runtime — open-loop Poisson rate sweep (2 GiB, 4 shards)", lines)

    # Light load keeps up with the offered rate...
    assert points[0]["achieved_qps"] > 0.85 * points[0]["offered_qps"]
    # ...percentiles are ordered and non-degenerate...
    for p in points:
        assert 0 < p["p50_ms"] <= p["p95_ms"] <= p["p99_ms"]
    # ...and batching amortization grows with load.
    assert points[-1]["mean_batch"] > points[0]["mean_batch"]
