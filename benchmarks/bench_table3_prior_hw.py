"""Table III: IVE vs prior PIR hardware (CIP-PIR, DPF-PIR, INSPIRE).

Synthesized DBs run on one IVE (batch 64); the application workloads run
on a 16-system IVE cluster at batch 128.  Paper: 413.0 / 544.6 / 127.5
cluster QPS for Vcall / Comm / Fsys, i.e. ~1,229x / 1,225x / 1,275x per
system over INSPIRE, and 150x lower latency on Comm despite batching.
"""

from conftest import params_for_gb, run_once

from repro.analysis.workloads import COMM, FSYS, VCALL
from repro.arch.config import IveConfig
from repro.arch.simulator import IveSimulator
from repro.baselines.reported import (
    CIP_PIR,
    DPF_PIR,
    INSPIRE,
    INSPIRE_COMM_LATENCY_S,
    PAPER_IVE_QPS,
)
from repro.params import PirParams
from repro.systems.cluster import IveCluster


def compute_table3():
    config = IveConfig.ive()
    synth = {}
    for gb in (2, 4, 8):
        sim = IveSimulator(config, params_for_gb(gb))
        synth[f"Synth-{gb}GB"] = sim.latency(64).qps
    apps = {}
    base = PirParams.paper()
    for workload in (VCALL, COMM, FSYS):
        cluster = IveCluster(workload.geometry(base), 16)
        apps[workload.name] = cluster.latency(128)
    return synth, apps


def test_table3(benchmark, report):
    synth, apps = run_once(benchmark, compute_table3)
    lines = [
        f"{'workload':>12s} {'prior QPS':>12s} {'IVE QPS':>10s} "
        f"{'paper IVE':>10s} {'per-sys':>9s} {'vs INSPIRE':>11s}"
    ]
    for name, qps in synth.items():
        prior = DPF_PIR.qps(name) or CIP_PIR.qps(name)
        lines.append(
            f"{name:>12s} {prior or float('nan'):>12.1f} {qps:>10.1f} "
            f"{PAPER_IVE_QPS[name]:>10.1f} {'-':>9s} {'-':>11s}"
        )
    for name, lat in apps.items():
        inspire = INSPIRE.qps(name)
        per_sys = lat.per_system_qps
        lines.append(
            f"{name:>12s} {inspire:>12.3f} {lat.qps:>10.1f} "
            f"{PAPER_IVE_QPS[name]:>10.1f} {per_sys:>9.2f} {per_sys / inspire:>10.0f}x"
        )
    lines.append("paper speedups vs INSPIRE: 1229x / 1225x / 1275x per system")
    report("Table III — QPS vs prior PIR hardware", lines)

    # Synthesized: IVE beats the strongest prior (DPF-PIR) by >4x everywhere.
    for name, qps in synth.items():
        prior = DPF_PIR.qps(name) or CIP_PIR.qps(name)
        assert qps > 4 * prior
    # Applications: three orders of magnitude over INSPIRE per system, and
    # cluster QPS within 2x of the paper's reported values (geometry is
    # rounded to the nearest power-of-two polynomial count).
    for name, lat in apps.items():
        speedup = lat.per_system_qps / INSPIRE.qps(name)
        assert speedup > 300, (name, speedup)
        ratio = lat.qps / PAPER_IVE_QPS[name]
        assert 0.5 < ratio < 2.0, (name, lat.qps, PAPER_IVE_QPS[name])


def test_comm_latency_vs_inspire(benchmark, report):
    """IVE answers Comm in well under a second; INSPIRE needs 36 s."""
    def compute():
        cluster = IveCluster(COMM.geometry(PirParams.paper()), 16)
        return cluster.latency(128).total_s

    latency = run_once(benchmark, compute)
    speedup = INSPIRE_COMM_LATENCY_S / latency
    report(
        "Table III note — Comm latency",
        [
            f"IVE cluster batch-128 latency: {latency:.3f} s (paper: 0.24 s)",
            f"INSPIRE single query: {INSPIRE_COMM_LATENCY_S:.0f} s -> {speedup:.0f}x"
            " (paper: 150x)",
        ],
    )
    assert latency < 1.0
    assert speedup > 50
