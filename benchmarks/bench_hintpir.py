"""Hint tier: batched online answering, epoch refresh under load, economics.

Three halves, one claim: preprocessing moves the server's per-query work
offline without ever risking a wrong byte.  The real-crypto half measures
the batched online window (one ``DB @ Q`` GEMM) against per-query
answering and checks bit-identity.  The serving half runs an open-loop
load test over :class:`~repro.hintpir.serving.HintServeRegistry` while
publishing epochs mid-run: every completed request must decode
byte-correct against the ground truth *of its answering epoch*, or be
refused with a typed ``HintStale`` — never silently wrong.  The model
half prices the hint tier's online phase on IVE at paper scale against a
full RowSel/ColTor pass (the ROADMAP >=10x gate) and sweeps churn to
locate where hint refresh starts to dominate the client's wire budget.
Results land in BENCH_hintpir.json so future PRs have a trajectory.
"""

import asyncio
import json
import os
import pathlib
import time

import numpy as np

from conftest import run_once

from repro.errors import HintStale, ServeError
from repro.hintpir import (
    HintCryptoBackend,
    HintPirClient,
    HintPirServer,
    HintServeRegistry,
    churn_refresh_curve,
    crossover_churn,
    hintpir_vs_full,
)
from repro.mutate import UpdateLog
from repro.pir.simplepir import SimplePirParams
from repro.serve.dispatcher import AdmissionConfig, ServeRuntime
from repro.serve.loadgen import poisson_arrivals
from repro.systems.batching import BatchPolicy

#: BENCH_SMOKE=1 shrinks every knob for the CI smoke job: the scripts
#: must still run end to end, but results are not written or compared.
SMOKE = bool(os.environ.get("BENCH_SMOKE"))

# -- real-crypto batched window -------------------------------------------
BATCH_RECORDS = 128 if SMOKE else 512
RECORD_BYTES = 64
BATCHES = (1, 8) if SMOKE else (1, 8, 32, 64)
PARAMS = SimplePirParams(lwe_dim=64 if SMOKE else 256)

# -- epoch-publish load test ----------------------------------------------
SERVE_RECORDS = 16 if SMOKE else 32
SERVE_QUERIES = 24 if SMOKE else 80
PUBLISH_EVERY = 8 if SMOKE else 16  # publish an epoch every N admissions
SERVE_RATE_QPS = 120.0
RETAIN_EPOCHS = 2

# -- model gate ------------------------------------------------------------
DESIGN_BATCH = 64
SPEEDUP_BOUND = 10.0

_OUT = pathlib.Path(__file__).resolve().parent / "BENCH_hintpir.json"


def _batched_online() -> dict:
    """Batched window vs per-query answering, with bit-identity check."""
    rng = np.random.default_rng(5)
    records = [rng.bytes(RECORD_BYTES) for _ in range(BATCH_RECORDS)]
    server = HintPirServer(records, RECORD_BYTES, PARAMS, seed=1)
    client = HintPirClient(server, seed=2)
    t = server.transcript()

    points = []
    identical = True
    for batch in BATCHES:
        targets = rng.integers(0, BATCH_RECORDS, size=batch)
        queries = [client.build_query(int(i)) for i in targets]
        start = time.monotonic()
        window = server.answer_window(queries)
        window_s = time.monotonic() - start
        start = time.monotonic()
        singles = [server.answer(q) for q in queries]
        loop_s = time.monotonic() - start
        for query, got, want in zip(queries, window, singles):
            identical &= bool(np.array_equal(got.vector, want.vector))
            identical &= client.decode(query, got) == records[query.col]
        points.append(
            {
                "batch": batch,
                "window_ms": window_s * 1e3,
                "loop_ms": loop_s * 1e3,
                "per_query_us": window_s / batch * 1e6,
            }
        )
    return {
        "num_records": BATCH_RECORDS,
        "record_bytes": RECORD_BYTES,
        "offline_bytes": t.offline_bytes,
        "online_bytes": t.online_bytes,
        "db_bytes": t.db_bytes,
        "identical": identical,
        "points": points,
    }


def _epoch_publish_run() -> dict:
    """Open-loop load test with epoch publishes mid-run (real crypto).

    The acceptance invariant: across publishes, every completed request
    decodes byte-correct against its answering epoch's ground truth or
    raises the typed ``HintStale`` — ``wrong_bytes`` must stay zero.
    """
    registry = HintServeRegistry.random(
        num_records=SERVE_RECORDS,
        record_bytes=32,
        num_shards=2,
        params=SimplePirParams(lwe_dim=64),
        seed=7,
        retain_epochs=RETAIN_EPOCHS,
        client_history=1 << 20,
    )
    policy = BatchPolicy(waiting_window_s=0.01, max_batch=8)
    arrivals = poisson_arrivals(SERVE_RATE_QPS, SERVE_QUERIES, seed=13)
    rng = np.random.default_rng(14)
    indices = rng.integers(0, SERVE_RECORDS, size=SERVE_QUERIES)
    publishes = []

    async def main():
        backend = HintCryptoBackend(registry)
        runtime = ServeRuntime(
            registry, backend, policy, AdmissionConfig(max_queue_depth=1024)
        )
        runtime.start()
        loop = asyncio.get_running_loop()
        epoch_start = loop.time()
        futures = []
        for at, (offset, index) in enumerate(zip(arrivals, indices)):
            delay = epoch_start + float(offset) - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            if at and at % PUBLISH_EVERY == 0:
                log = UpdateLog()
                for idx in rng.choice(SERVE_RECORDS, size=3, replace=False):
                    log.put(int(idx), rng.bytes(32))
                reports = registry.publish(log)
                publishes.append(sum(r.patch_bytes for r in reports))
            try:
                futures.append(runtime.submit(registry.make_request(int(index))))
            except ServeError:
                pass
        await runtime.drain()
        results = await asyncio.gather(*futures)
        backend.close()
        return results

    results = asyncio.run(main())
    # Decode in answering-epoch order so bundled delta chains apply in
    # sequence (the same audit the CLI loadtest performs).
    results = sorted(results, key=lambda r: getattr(r.response, "epoch", -1))
    correct = wrong = stale = 0
    for result in results:
        try:
            decoded = registry.decode(result.request, result.response)
        except HintStale:
            stale += 1
            continue
        want = registry.expected(
            result.request.global_index, epoch=result.response.epoch
        )
        if decoded == want:
            correct += 1
        else:
            wrong += 1
    client_patches = sum(c.patched_epochs for c in registry._clients)
    return {
        "queries": SERVE_QUERIES,
        "completed": len(results),
        "decoded_live": correct,
        "wrong_bytes": wrong,
        "stale_rejections": stale,
        "epochs_published": len(publishes),
        "patch_bytes_per_publish": publishes,
        "client_patched_epochs": client_patches,
    }


def _model() -> dict:
    """Paper-scale online gate and churn refresh economics."""
    online = [
        {
            "batch": p.batch,
            "online_ms": p.online_s * 1e3,
            "per_query_us": p.per_query_s * 1e6,
            "full_pass_ms": p.full_pass_s * 1e3,
            "speedup": p.speedup,
        }
        for p in hintpir_vs_full(batches=(1, 16, DESIGN_BATCH, 256))
    ]
    curve = churn_refresh_curve()
    refresh = [
        {
            "churn": p.churn,
            "dirty_records": p.dirty_records,
            "patch_bytes": p.patch_bytes,
            "refresh_mode": p.refresh_mode,
            "refresh_fraction": p.refresh_fraction,
        }
        for p in curve
    ]
    return {
        "online": online,
        "refresh_curve": refresh,
        "crossover_churn": crossover_churn(curve),
    }


def test_hintpir_online_and_refresh(benchmark, report):
    real, serve, model = run_once(
        benchmark, lambda: (_batched_online(), _epoch_publish_run(), _model())
    )
    if not SMOKE:
        payload = {"real_crypto": real, "epoch_publish": serve, "model_paper": model}
        _OUT.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"real crypto, {real['num_records']} x {real['record_bytes']} B records: "
        f"offline {real['offline_bytes'] / 1024:.0f} KiB, "
        f"online {real['online_bytes']} B/query "
        f"({real['db_bytes'] / real['online_bytes']:.0f}x below the DB)"
    ]
    lines.append(f"{'batch':>6s} {'window ms':>10s} {'loop ms':>9s} {'us/query':>9s}")
    for p in real["points"]:
        lines.append(
            f"{p['batch']:>6d} {p['window_ms']:>10.2f} {p['loop_ms']:>9.2f} "
            f"{p['per_query_us']:>9.1f}"
        )
    lines.append(
        f"epoch publishes under load: {serve['epochs_published']} publishes, "
        f"{serve['decoded_live']} live-decoded + {serve['stale_rejections']} typed "
        f"stale of {serve['completed']} ({serve['wrong_bytes']} wrong bytes)"
    )
    lines.append("IVE model, paper scale:")
    for p in model["online"]:
        lines.append(
            f"batch {p['batch']:>4d}: {p['per_query_us']:>8.1f} us/query vs "
            f"full pass {p['full_pass_ms']:.2f} ms = {p['speedup']:>6.1f}x"
        )
    lines.append(
        "refresh crossover (churn where refresh > half the wire budget): "
        f"{model['crossover_churn']:.1%}"
    )
    lines.append("JSON skipped (smoke)" if SMOKE else f"JSON written to {_OUT.name}")
    report("Hint-PIR tier — batched online phase, epoch refresh, economics", lines)

    # The batched window is bit-identical to per-query answering and every
    # decode returned the exact record bytes...
    assert real["identical"]
    # ...the ROADMAP gate holds: hint-tier online service at the design
    # batch is >=10x below one full RowSel/ColTor pass at paper scale...
    design = next(p for p in model["online"] if p["batch"] == DESIGN_BATCH)
    assert design["speedup"] >= SPEEDUP_BOUND, design
    # ...the churn sweep exposes a refresh-dominated regime (crossover
    # exists strictly inside the swept range)...
    assert model["crossover_churn"] is not None
    assert 0.0 < model["crossover_churn"] < 1.0
    # ...and publishes mid-traffic never produce a wrong byte: every
    # completed request decodes correct against its epoch or is refused
    # with the typed HintStale.
    assert serve["completed"] == serve["queries"]
    assert serve["wrong_bytes"] == 0
    assert serve["epochs_published"] >= 1
    assert serve["decoded_live"] + serve["stale_rejections"] == serve["completed"]
    assert serve["decoded_live"] > 0
