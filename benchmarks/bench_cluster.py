"""Multi-process cluster QPS vs the single-process thread pool.

One claim, measured end to end: moving real-crypto shard replicas into
worker processes (``repro.cluster``) must scale aggregate QPS with cores
instead of saturating on one GIL, while staying *byte-correct* — every
decoded record equals ground truth, on every backend, even with a worker
killed mid-run.  The ISSUE's bar — >= 1.6x over the thread pool at two
workers — is asserted only on CI-class hardware (two or more schedulable
cores); on a single-core box the measurement is still taken and recorded
so the trajectory exists, but the scaling assertion cannot physically
hold and is skipped.

Also recorded: the analytic twin ``repro.systems.cluster.scaling_curve``
(gather + final-tournament serial tail), so model-vs-measured drift is
visible in one JSON artifact (BENCH_cluster.json).
"""

import asyncio
import json
import os
import pathlib
import time

import numpy as np

from conftest import params_for_gb, run_once

from repro.cluster import ClusterBackend, ClusterCoordinator, ClusterRegistry
from repro.params import PirParams
from repro.serve import RealCryptoBackend, RealShardRegistry, ServeRuntime
from repro.systems.batching import BatchPolicy
from repro.systems.cluster import scaling_curve

#: BENCH_SMOKE=1 shrinks every knob for the CI smoke job: the scripts
#: must still run end to end, but results are not written or compared.
SMOKE = bool(os.environ.get("BENCH_SMOKE"))

NUM_RECORDS = 16 if SMOKE else 32
RECORD_BYTES = 64
NUM_SHARDS = 2 if SMOKE else 4
NUM_QUERIES = 16 if SMOKE else 64
WORKER_COUNTS = (1, 2) if SMOKE else (1, 2, 4)
SPEEDUP_BOUND = 1.6  # the ISSUE's 2-worker bar (CI-class hardware only)
MULTICORE = len(os.sched_getaffinity(0)) >= 2

_OUT = pathlib.Path(__file__).resolve().parent / "BENCH_cluster.json"


def _params() -> PirParams:
    return PirParams.small(n=256, d0=8, num_dims=2)


def _records() -> list[bytes]:
    rng = np.random.default_rng(97)
    return [rng.bytes(RECORD_BYTES) for _ in range(NUM_RECORDS)]


def _policy() -> BatchPolicy:
    return BatchPolicy(
        waiting_window_s=0.005, max_batch=max(4, NUM_QUERIES // NUM_SHARDS)
    )


async def _drive(registry, backend) -> tuple[float, list]:
    """Closed burst of NUM_QUERIES through the runtime; returns (s, results)."""
    runtime = ServeRuntime(registry, backend, _policy())
    async with runtime:
        start = time.monotonic()
        results = await asyncio.gather(
            *(
                runtime.serve_index(i % registry.num_records)
                for i in range(NUM_QUERIES)
            )
        )
        elapsed = time.monotonic() - start
    return elapsed, results


def _num_correct(registry, results) -> int:
    return sum(
        registry.decode(r.request, r.response)
        == registry.expected(r.request.global_index)
        for r in results
    )


def _thread_pool_point(params, records) -> dict:
    registry = RealShardRegistry(params, records, NUM_SHARDS, RECORD_BYTES, seed=7)

    async def main():
        return await _drive(registry, RealCryptoBackend(registry))

    elapsed, results = asyncio.run(main())
    return {
        "backend": "thread-pool",
        "workers": 1,
        "qps": NUM_QUERIES / elapsed,
        "correct": _num_correct(registry, results),
    }


def _cluster_point(params, records, workers: int) -> dict:
    registry = ClusterRegistry(params, records, NUM_SHARDS, RECORD_BYTES, seed=7)

    async def main():
        async with ClusterCoordinator(registry, num_workers=workers) as coord:
            elapsed, results = await _drive(registry, ClusterBackend(coord))
            return elapsed, results, coord.stats

    elapsed, results, stats = asyncio.run(main())
    return {
        "backend": "cluster",
        "workers": workers,
        "qps": NUM_QUERIES / elapsed,
        "correct": _num_correct(registry, results),
        "batches_sent": stats.batches_sent,
    }


def _chaos_point(params, records) -> dict:
    """Kill a worker mid-run: retries must leave zero incorrect responses."""
    registry = ClusterRegistry(params, records, NUM_SHARDS, RECORD_BYTES, seed=7)

    async def main():
        coord = ClusterCoordinator(registry, num_workers=2, replication=2)
        async with coord:
            runtime = ServeRuntime(registry, ClusterBackend(coord), _policy())
            async with runtime:
                serves = asyncio.gather(
                    *(
                        runtime.serve_index(i % registry.num_records)
                        for i in range(NUM_QUERIES)
                    )
                )

                async def killer():
                    worker = coord._workers[0]
                    loop = asyncio.get_running_loop()
                    deadline = loop.time() + 10.0
                    while not worker.inflight and loop.time() < deadline:
                        await asyncio.sleep(0.001)
                    worker.process.kill()

                _, results = await asyncio.gather(killer(), serves)
            return results, coord.stats

    results, stats = asyncio.run(main())
    return {
        "backend": "cluster-chaos",
        "workers": 2,
        "correct": _num_correct(registry, results),
        "total": len(results),
        "worker_deaths": stats.worker_deaths,
        "batches_retried": stats.batches_retried,
    }


def _model_points() -> list[dict]:
    return [
        {
            "num_systems": p.num_systems,
            "qps": p.qps,
            "speedup": p.speedup,
            "efficiency": p.efficiency,
        }
        for p in scaling_curve(params_for_gb(2), sizes=(1, 2, 4, 8))
    ]


def test_cluster_scaling(benchmark, report):
    params = _params()
    records = _records()

    def sweep():
        baseline = _thread_pool_point(params, records)
        cluster = [_cluster_point(params, records, w) for w in WORKER_COUNTS]
        chaos = _chaos_point(params, records)
        return baseline, cluster, chaos

    baseline, cluster, chaos = run_once(benchmark, sweep)
    model = _model_points()

    if not SMOKE:
        _OUT.write_text(
            json.dumps(
                {
                    "records": NUM_RECORDS,
                    "record_bytes": RECORD_BYTES,
                    "shards": NUM_SHARDS,
                    "queries": NUM_QUERIES,
                    "sched_cores": len(os.sched_getaffinity(0)),
                    "thread_pool": baseline,
                    "cluster": cluster,
                    "chaos": chaos,
                    "model_scaling": model,
                },
                indent=2,
            )
            + "\n"
        )

    lines = [f"{'backend':>12s} {'workers':>8s} {'QPS':>8s} {'vs pool':>8s} {'ok':>6s}"]
    for point in [baseline] + cluster:
        lines.append(
            f"{point['backend']:>12s} {point['workers']:>8d} "
            f"{point['qps']:>8.1f} {point['qps'] / baseline['qps']:>7.2f}x "
            f"{point['correct']:>3d}/{NUM_QUERIES}"
        )
    lines.append(
        f"chaos: {chaos['correct']}/{chaos['total']} correct after "
        f"{chaos['worker_deaths']} death(s), {chaos['batches_retried']} retried"
    )
    lines.append("model: " + ", ".join(
        f"{p['num_systems']}sys {p['speedup']:.2f}x" for p in model
    ))
    lines.append(
        "JSON skipped (smoke)" if SMOKE else f"JSON written to {_OUT.name}"
    )
    report(
        f"Cluster runtime — measured scaling on "
        f"{len(os.sched_getaffinity(0))} core(s) vs thread pool",
        lines,
    )

    # Byte-correctness is unconditional: every backend, every run.
    assert baseline["correct"] == NUM_QUERIES
    for point in cluster:
        assert point["correct"] == NUM_QUERIES
    # Zero incorrect responses under a mid-run worker kill.
    assert chaos["correct"] == chaos["total"]
    assert chaos["worker_deaths"] == 1
    # Modeled scaling is monotone and sublinear (serial gather tail).
    for prev, nxt in zip(model, model[1:]):
        assert nxt["speedup"] > prev["speedup"]
        assert nxt["efficiency"] <= prev["efficiency"] + 1e-9
    # The ISSUE's scaling bar, only where the hardware can express it.
    if MULTICORE and not SMOKE:
        two = next(p for p in cluster if p["workers"] == 2)
        assert two["qps"] >= SPEEDUP_BOUND * baseline["qps"], (
            f"2-worker cluster {two['qps']:.1f} QPS < "
            f"{SPEEDUP_BOUND}x thread pool {baseline['qps']:.1f} QPS"
        )
