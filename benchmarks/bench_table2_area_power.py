"""Table II: area and peak power of the 32-core IVE configuration."""

from conftest import run_once

from repro.arch.area import TABLE2_AREA, area
from repro.arch.config import IveConfig
from repro.arch.power import TABLE2_POWER, power

PAPER_ROWS = {
    "sysNTTU": (0.77, 2.17),
    "iCRTU": (0.05, 0.13),
    "EWU": (0.10, 0.37),
    "AutoU": (0.07, 0.11),
    "RF & buffers": (1.38, 1.63),
}
PAPER_TOTALS = {
    "1 core": (2.91, 5.12),
    "32 cores": (93.1, 163.8),
    "NoC": (2.6, 6.7),
    "HBM": (59.6, 68.6),
    "Sum": (155.3, 239.1),
}


def compute_table2():
    config = IveConfig.ive()
    return area(config), power(config)


def test_table2(benchmark, report):
    a, p = run_once(benchmark, compute_table2)
    lines = [f"{'component':>14s} {'area mm2':>16s} {'peak W':>16s}   (measured / paper)"]
    for row, (pa, pw) in PAPER_ROWS.items():
        lines.append(
            f"{row:>14s} {a.per_core[row]:>7.2f} / {pa:<6.2f} "
            f"{p.per_core[row]:>7.2f} / {pw:<6.2f}"
        )
    measured_totals = {
        "1 core": (a.core_total, p.core_total),
        "32 cores": (a.cores_total, p.cores_total),
        "NoC": (a.noc, p.noc),
        "HBM": (a.hbm, p.hbm),
        "Sum": (a.total, p.total),
    }
    for row, (pa, pw) in PAPER_TOTALS.items():
        ma, mp = measured_totals[row]
        lines.append(f"{row:>14s} {ma:>7.1f} / {pa:<6.1f} {mp:>7.1f} / {pw:<6.1f}")
    report("Table II — area and peak power of 32-core IVE", lines)
    assert abs(a.total - 155.3) / 155.3 < 0.02
    assert abs(p.total - 239.1) / 239.1 < 0.02


def test_table2_anchors_match_paper_constants(benchmark):
    """The model's anchor constants are the published Table II rows."""
    def check():
        for row, (pa, pw) in PAPER_ROWS.items():
            assert TABLE2_AREA[row] == pa
            assert TABLE2_POWER[row] == pw
        return True

    assert run_once(benchmark, check)
