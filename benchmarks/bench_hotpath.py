"""Compute-backend hot path: reference vs ``eager`` vs ``planned``.

One claim, measured end to end, at a mid-size RowSel-dominated geometry:

* the ``eager`` backend (stacked tensor kernels in ``repro.he.batched``)
  must keep its >= 5x over the per-poly reference oracle;
* the ``planned`` backend (GEMM-form NTT plans + Barrett reduction +
  tensor-resident ColTor, ``repro.he.backend``) must be >= 2x faster
  again than ``eager`` on ``PirServer.answer``;
* every backend produces *byte-identical* ``PirResponse`` transcripts —
  backends only reassociate exact modular arithmetic, so any divergence
  is a bug, not noise.

Also timed: database preprocessing (one batched CRT+NTT per plane vs one
call per polynomial), the speedup the serving layer sees on every epoch
build.  Results land in BENCH_hotpath.json so future PRs have a
trajectory; ``bench_guard`` holds the ``byte_identical`` / ``decoded_ok``
/ ``identical`` leaves to exact match.
"""

import json
import os
import pathlib
import time

import numpy as np

from conftest import run_once

from repro.he.poly import Domain, RingContext
from repro.params import PirParams
from repro.pir.database import PirDatabase, PreprocessedDatabase
from repro.pir.protocol import PirProtocol
from repro.pir.server import PirServer

#: BENCH_SMOKE=1 shrinks every knob for the CI smoke job: the scripts
#: must still run end to end, but results are not written or compared.
SMOKE = bool(os.environ.get("BENCH_SMOKE"))

# Mid-size, RowSel-dominated geometry: 2048 polynomials (D0=32 x 2^6
# columns) of 512 B records at n=256 — a 1 MiB database whose answer
# path spends most of its time in the RowSel GEMM and ColTor rounds.
DIMS = 3 if SMOKE else 6
D0 = 8 if SMOKE else 32
NUM_QUERIES = 1 if SMOKE else 3
RECORD_BYTES = 512
EAGER_BOUND = 5.0  # eager over the per-poly oracle (pre-backend ISSUE bound)
PLANNED_BOUND = 2.0  # planned over eager (this ISSUE's gate)
PREPROCESS_BOUND = 3.0  # per-poly preprocess is already vectorised

_OUT = pathlib.Path(__file__).resolve().parent / "BENCH_hotpath.json"


def _preprocess_reference(db: PirDatabase, ring: RingContext) -> tuple[float, object]:
    """The pre-batching preprocess: one CRT+NTT call per polynomial."""
    start = time.monotonic()
    planes = [
        [ring.from_small_coeffs(coeffs, domain=Domain.NTT) for coeffs in plane]
        for plane in db.planes
    ]
    elapsed = time.monotonic() - start
    return elapsed, PreprocessedDatabase(db.layout, ring, planes)


def _identical(responses, oracle_responses) -> bool:
    return all(
        np.array_equal(f.a.residues, r.a.residues)
        and np.array_equal(f.b.residues, r.b.residues)
        for fr, rr in zip(responses, oracle_responses)
        for f, r in zip(fr.plane_cts, rr.plane_cts)
    )


def _run() -> dict:
    params = PirParams.small(n=256, d0=D0, num_dims=DIMS)
    num_records = params.num_db_polys  # one record per polynomial
    db = PirDatabase.random(params, num_records, RECORD_BYTES, seed=31)
    protocol = PirProtocol(params, db, seed=32, backend="planned")
    ring = protocol.server.ring
    setup = protocol.client.setup_message()
    servers = {
        "eager": PirServer(protocol.server.db, setup, backend="eager"),
        "planned": protocol.server,
    }

    # -- preprocessing: batched (current) vs per-poly (reference) ---------
    start = time.monotonic()
    pre_fast = db.preprocess(ring)
    pre_fast_s = time.monotonic() - start
    pre_ref_s, pre_ref = _preprocess_reference(db, ring)
    pre_identical = all(
        np.array_equal(a.residues, b.residues)
        for fast_row, ref_row in zip(pre_fast.planes, pre_ref.planes)
        for a, b in zip(fast_row, ref_row)
    )

    # -- answer path: reference oracle, then each backend -----------------
    rng = np.random.default_rng(33)
    indices = [int(i) for i in rng.choice(num_records, size=NUM_QUERIES, replace=False)]
    queries = [protocol.client.build_query(i, db.layout) for i in indices]
    for server in servers.values():
        server.answer(queries[0])  # warm caches (twiddles, plans, tensors)
    protocol.server.answer_reference(queries[0])

    start = time.monotonic()
    ref = [protocol.server.answer_reference(q) for q in queries]
    ref_s = time.monotonic() - start

    # Interleaved passes, best-of: a load spike on the shared runner
    # should not land entirely on one backend's sample.
    passes = 1 if SMOKE else 2
    timings = {name: float("inf") for name in servers}
    responses: dict[str, list] = {}
    for _ in range(passes):
        for name, server in servers.items():
            start = time.monotonic()
            responses[name] = [server.answer(q) for q in queries]
            timings[name] = min(timings[name], time.monotonic() - start)

    decoded_ok = all(
        protocol.client.decode_response(resp, idx, db.layout) == db.record(idx)
        for resp, idx in zip(responses["planned"], indices)
    )
    return {
        "params": {
            "n": params.n,
            "d0": params.d0,
            "num_dims": params.num_dims,
            "num_polys": params.num_db_polys,
            "record_bytes": RECORD_BYTES,
            "db_bytes": num_records * RECORD_BYTES,
        },
        "answer": {
            "queries": NUM_QUERIES,
            "reference_s_per_query": ref_s / NUM_QUERIES,
            "eager": {
                "s_per_query": timings["eager"] / NUM_QUERIES,
                "speedup_vs_reference": ref_s / timings["eager"],
                "byte_identical": _identical(responses["eager"], ref),
            },
            "planned": {
                "s_per_query": timings["planned"] / NUM_QUERIES,
                "speedup_vs_reference": ref_s / timings["planned"],
                "speedup_vs_eager": timings["eager"] / timings["planned"],
                "byte_identical": _identical(responses["planned"], ref),
            },
            "decoded_ok": decoded_ok,
        },
        "preprocess": {
            "fast_s": pre_fast_s,
            "reference_s": pre_ref_s,
            "speedup": pre_ref_s / pre_fast_s,
            "identical": pre_identical,
        },
    }


def test_hotpath_speedup_and_equivalence(benchmark, report):
    result = run_once(benchmark, _run)
    if not SMOKE:
        _OUT.write_text(json.dumps(result, indent=2) + "\n")

    p, ans, pre = result["params"], result["answer"], result["preprocess"]
    eager, planned = ans["eager"], ans["planned"]
    report(
        "Compute-backend hot path — answer pipeline and preprocessing",
        [
            f"geometry: D0={p['d0']} x 2^{p['num_dims']} = {p['num_polys']} polys, "
            f"n={p['n']}, {p['db_bytes'] / 2**20:.1f} MiB raw DB",
            f"answer (per query): reference {ans['reference_s_per_query'] * 1e3:.1f} ms"
            f" -> eager {eager['s_per_query'] * 1e3:.1f} ms"
            f" ({eager['speedup_vs_reference']:.1f}x)"
            f" -> planned {planned['s_per_query'] * 1e3:.1f} ms"
            f" ({planned['speedup_vs_eager']:.1f}x over eager,"
            f" {planned['speedup_vs_reference']:.1f}x over reference)",
            f"transcripts byte-identical: eager {eager['byte_identical']}, "
            f"planned {planned['byte_identical']}; "
            f"decoded correctly: {ans['decoded_ok']}",
            f"preprocess: per-poly {pre['reference_s'] * 1e3:.0f} ms -> batched "
            f"{pre['fast_s'] * 1e3:.0f} ms = {pre['speedup']:.1f}x "
            f"(identical: {pre['identical']})",
            "JSON skipped (smoke)" if SMOKE else f"JSON written to {_OUT.name}",
        ],
    )

    # No backend may ever diverge from the oracle...
    assert eager["byte_identical"]
    assert planned["byte_identical"]
    assert ans["decoded_ok"]
    assert pre["identical"]
    # ...and each must clear its speedup bound end to end.  A single tiny
    # query on a shared CI runner is not a stable timing sample, so the
    # smoke job only checks equivalence — the speedup claims are asserted
    # at full size.
    if not SMOKE:
        assert eager["speedup_vs_reference"] >= EAGER_BOUND, eager
        assert planned["speedup_vs_eager"] >= PLANNED_BOUND, planned
        assert pre["speedup"] >= PREPROCESS_BOUND, pre
