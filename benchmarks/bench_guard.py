"""Bench-regression guard: diff fresh BENCH_*.json against git baselines.

CI (and a human about to commit) runs the benchmarks, then this script.
It compares every working-tree ``benchmarks/BENCH_*.json`` against the
version committed at a git ref (HEAD by default):

* **Byte-correctness keys** — ``correct``, ``correct_dense``,
  ``bare_correct``, ``errored``, ``failed``, … — must match the
  baseline exactly.  A drift here means a benchmark started returning
  wrong bytes (or started failing requests), which is a bug, not a perf
  wobble: the guard exits 1.
* **Everything else** (QPS, overheads, latencies, counts) is hardware-
  and load-dependent, so drift beyond the tolerance band only prints a
  warning.  Perf regressions deserve eyes, not a red CI that trains
  people to bump baselines blindly.

Usage::

    python benchmarks/bench_guard.py [--ref HEAD] [--tolerance 0.25]

Exit status: 0 clean or warnings only, 1 on a byte-correctness
regression, 2 on a usage/IO error (unreadable JSON, bad ref).
"""

import argparse
import json
import pathlib
import re
import subprocess
import sys

_BENCH_DIR = pathlib.Path(__file__).resolve().parent

#: Leaf names whose values assert *correctness*, not speed.  Exact match
#: against the baseline is mandatory; anything else is advisory.
#: ``identical`` / ``byte_identical`` flag bit-exact recomputation checks
#: (the compute-backend parity gate in BENCH_hotpath rides on these);
#: ``decoded_ok`` flags end-to-end decode correctness; ``wrong_bytes``
#: counts responses that decoded to the wrong record (the hint tier's
#: never-a-wrong-byte invariant) — any drift is a bug.
_CORRECTNESS_RE = re.compile(
    r"(^|_)correct(_|$)|^errored$|^failed$|(^|_)identical$|^decoded_ok$"
    r"|^wrong_bytes$"
)


def _flatten(doc, prefix=""):
    """``{"a": {"b": [1]}} -> {"a.b[0]": 1}`` — leaf paths to values."""
    leaves = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            leaves.update(_flatten(value, f"{prefix}.{key}" if prefix else key))
    elif isinstance(doc, list):
        for i, value in enumerate(doc):
            leaves.update(_flatten(value, f"{prefix}[{i}]"))
    else:
        leaves[prefix] = doc
    return leaves


def _leaf_name(path: str) -> str:
    return re.split(r"[.\[]", path)[-1] if "." in path or "[" in path else path


def _is_correctness(path: str) -> bool:
    return bool(_CORRECTNESS_RE.search(_leaf_name(path.split(".")[-1])))


def _baseline(name: str, ref: str) -> dict | None:
    """The committed version of ``benchmarks/{name}`` at ``ref``."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:benchmarks/{name}"],
        cwd=_BENCH_DIR.parent,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def compare(name: str, baseline: dict, fresh: dict, tolerance: float):
    """Returns (correctness_failures, warnings) for one result file."""
    failures: list[str] = []
    warnings: list[str] = []
    base_leaves = _flatten(baseline)
    fresh_leaves = _flatten(fresh)
    for path in sorted(base_leaves.keys() | fresh_leaves.keys()):
        if path not in fresh_leaves:
            warnings.append(f"{name}: {path} vanished from the fresh run")
            continue
        if path not in base_leaves:
            warnings.append(f"{name}: {path} is new (no baseline)")
            continue
        base, new = base_leaves[path], fresh_leaves[path]
        if _is_correctness(path):
            if base != new:
                failures.append(
                    f"{name}: {path} regressed: baseline {base!r}, "
                    f"fresh {new!r}"
                )
            continue
        if isinstance(base, bool) or isinstance(new, bool):
            if base != new:
                warnings.append(f"{name}: {path} flipped {base!r} -> {new!r}")
        elif isinstance(base, (int, float)) and isinstance(new, (int, float)):
            scale = max(abs(base), abs(new))
            if scale > 0 and abs(new - base) / scale > tolerance:
                warnings.append(
                    f"{name}: {path} drifted {base:g} -> {new:g} "
                    f"({(new - base) / scale:+.0%}, band {tolerance:.0%})"
                )
        elif base != new:
            warnings.append(f"{name}: {path} changed {base!r} -> {new!r}")
    return failures, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff fresh BENCH_*.json results against git baselines."
    )
    parser.add_argument(
        "--ref", default="HEAD", help="git ref holding the baselines"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="relative drift band for perf numbers (warning-only)",
    )
    args = parser.parse_args(argv)

    fresh_files = sorted(_BENCH_DIR.glob("BENCH_*.json"))
    if not fresh_files:
        print("bench-guard: no BENCH_*.json in the working tree", file=sys.stderr)
        return 2

    failures: list[str] = []
    warnings: list[str] = []
    compared = 0
    for path in fresh_files:
        try:
            fresh = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"bench-guard: cannot read {path.name}: {exc}", file=sys.stderr)
            return 2
        try:
            baseline = _baseline(path.name, args.ref)
        except json.JSONDecodeError as exc:
            print(
                f"bench-guard: baseline {args.ref}:{path.name} is not "
                f"valid JSON: {exc}",
                file=sys.stderr,
            )
            return 2
        if baseline is None:
            warnings.append(
                f"{path.name}: no baseline at {args.ref} (new benchmark?)"
            )
            continue
        compared += 1
        file_failures, file_warnings = compare(
            path.name, baseline, fresh, args.tolerance
        )
        failures.extend(file_failures)
        warnings.extend(file_warnings)

    for line in warnings:
        print(f"warning: {line}")
    for line in failures:
        print(f"FAIL: {line}")
    verdict = "FAIL" if failures else "ok"
    print(
        f"bench-guard: {verdict} — {compared} file(s) compared, "
        f"{len(failures)} correctness regression(s), "
        f"{len(warnings)} warning(s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
