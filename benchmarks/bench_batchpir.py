"""Batch PIR amortization: per-query server cost vs batch size k.

Two halves, one claim.  The real-crypto half runs the full cuckoo-batched
pipeline at tiny parameters (n=256, 32 K records) and times the server's
per-bucket passes against k independent single-query retrievals over the
same database.  The model half prices the same amortization on the IVE
accelerator at paper scale (2 GiB DB) via the cycle simulator's batched
pass.  Both halves must show the k=64 amortized per-query cost at least
4x below a single query — results land in BENCH_batchpir.json so future
PRs have a trajectory to compare against.
"""

import json
import os
import pathlib
import time

import numpy as np

from conftest import params_for_gb, run_once

from repro.batchpir import BatchPirProtocol, amortized_cost_curve
from repro.params import PirParams
from repro.pir.database import PirDatabase
from repro.pir.protocol import PirProtocol

#: BENCH_SMOKE=1 shrinks every knob for the CI smoke job: the scripts
#: must still run end to end, but results are not written or compared.
SMOKE = bool(os.environ.get("BENCH_SMOKE"))

NUM_RECORDS = 2048 if SMOKE else 32768
RECORD_BYTES = 32
REAL_KS = (8, 16) if SMOKE else (8, 32, 64)
MODEL_KS = (8, 16) if SMOKE else (8, 32, 64, 256)
ASSERT_K = REAL_KS[-1]
SPEEDUP_BOUND = 1.5 if SMOKE else 4.0

_OUT = pathlib.Path(__file__).resolve().parent / "BENCH_batchpir.json"


def _real_crypto_points() -> dict:
    """Tiny-parameter measurement: one batch deployment per design k."""
    params = PirParams.small(n=256, d0=16, num_dims=7)
    rng = np.random.default_rng(7)
    records = [rng.bytes(RECORD_BYTES) for _ in range(NUM_RECORDS)]

    # Baseline: independent single queries over the unbucketed database.
    single = PirProtocol(params, PirDatabase.from_records(records, params), seed=1)
    query = single.client.build_query(NUM_RECORDS // 2, single.db.layout)
    single.server.answer(query)  # warm numpy caches
    start = time.monotonic()
    reps = 2
    for _ in range(reps):
        single.server.answer(query)
    single_s = (time.monotonic() - start) / reps

    points = []
    for k in REAL_KS:
        protocol = BatchPirProtocol(
            params, records, max_batch=k, record_bytes=RECORD_BYTES, seed=1
        )
        indices = [int(i) for i in rng.choice(NUM_RECORDS, size=k, replace=False)]
        plan = protocol.client.plan(indices)
        batch_query = protocol.client.build_queries(plan)
        start = time.monotonic()
        response = protocol.server.answer(batch_query)
        batch_s = time.monotonic() - start
        decoded = protocol.client.decode(plan, response)
        correct = sum(decoded[g] == records[g] for g in indices)
        bucket = protocol.layout.bucket_params
        points.append(
            {
                "k": k,
                "num_buckets": protocol.layout.num_buckets,
                "rounds": plan.num_rounds,
                "bucket_d0": bucket.d0,
                "bucket_dims": bucket.num_dims,
                "replication": protocol.layout.replication_factor,
                "batch_pass_s": batch_s,
                "amortized_per_query_s": batch_s / k,
                "speedup_vs_single": single_s / (batch_s / k),
                "correct": correct,
            }
        )
    return {
        "num_records": NUM_RECORDS,
        "record_bytes": RECORD_BYTES,
        "single_query_s": single_s,
        "points": points,
    }


def _model_points() -> list[dict]:
    """Paper-scale accelerator model on the 2 GiB Table I database."""
    return [
        {
            "k": p.k,
            "num_buckets": p.num_buckets,
            "single_query_ms": p.single_query_s * 1e3,
            "batch_pass_ms": p.batch_pass_s * 1e3,
            "amortized_per_query_ms": p.amortized_per_query_s * 1e3,
            "speedup_vs_single": p.speedup,
            "placement": p.placement,
            "replicated_db_gib": p.replicated_db_bytes / (1 << 30),
        }
        for p in amortized_cost_curve(params_for_gb(2), ks=MODEL_KS)
    ]


def test_batchpir_amortization(benchmark, report):
    real, model = run_once(benchmark, lambda: (_real_crypto_points(), _model_points()))
    if not SMOKE:
        payload = {"real_crypto": real, "model_2gib": model}
        _OUT.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [f"real crypto, {NUM_RECORDS} records: single query "
             f"{real['single_query_s'] * 1e3:.0f} ms"]
    lines.append(
        f"{'k':>4s} {'buckets':>8s} {'pass s':>7s} {'amort ms':>9s} {'speedup':>8s}"
    )
    for p in real["points"]:
        lines.append(
            f"{p['k']:>4d} {p['num_buckets']:>8d} {p['batch_pass_s']:>7.2f} "
            f"{p['amortized_per_query_s'] * 1e3:>9.2f} "
            f"{p['speedup_vs_single']:>7.1f}x"
        )
    lines.append("IVE model, 2 GiB DB:")
    for p in model:
        lines.append(
            f"{p['k']:>4d} {p['num_buckets']:>8d} "
            f"{p['batch_pass_ms'] / 1e3:>7.4f} {p['amortized_per_query_ms']:>9.3f} "
            f"{p['speedup_vs_single']:>7.1f}x  ({p['placement']})"
        )
    lines.append("JSON skipped (smoke)" if SMOKE else f"JSON written to {_OUT.name}")
    report("Batch PIR — amortized per-query server cost vs k", lines)

    # Every batched record decodes byte-correct at every k...
    for p in real["points"]:
        assert p["correct"] == p["k"]
    # ...and the largest-k amortization clears the bound in BOTH halves
    # (acceptance: 4x at k=64; the smoke run asserts a looser bound at its
    # smaller k, where fewer queries share each pass).
    real_top = next(p for p in real["points"] if p["k"] == ASSERT_K)
    model_top = next(p for p in model if p["k"] == ASSERT_K)
    assert real_top["speedup_vs_single"] >= SPEEDUP_BOUND
    assert model_top["speedup_vs_single"] >= SPEEDUP_BOUND
    # Amortization improves monotonically with k in the model.
    model_speedups = [p["speedup_vs_single"] for p in model]
    assert model_speedups == sorted(model_speedups)
