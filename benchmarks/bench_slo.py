"""SLO engine + flight recorder overhead on the serving hot path.

One claim, measured end to end: running the full health plane — flight
recorder wired into the dispatcher, SLO evaluator polling burn rates,
health snapshots sampled alongside — must cost at most 2% of the
real-crypto serving throughput.  The bare run and the observed run
drive the same closed burst through ``ServeRuntime`` +
``RealCryptoBackend``; QPS is best-of-N to shave scheduler noise.  The
observed run's plane is sanity-checked inline — dispatch events in the
ring, verdicts from every poll, health rows populated — so the
benchmark cannot "win" by silently observing nothing.  Results land in
BENCH_slo.json.
"""

import asyncio
import json
import os
import pathlib
import time

import numpy as np

from conftest import run_once

from repro.obs import FlightRecorder, SloEvaluator, health_snapshot, parse_slo
from repro.params import PirParams
from repro.serve import RealCryptoBackend, RealShardRegistry, ServeRuntime
from repro.systems.batching import BatchPolicy

#: BENCH_SMOKE=1 shrinks every knob for the CI smoke job: the scripts
#: must still run end to end, but results are not written or compared.
SMOKE = bool(os.environ.get("BENCH_SMOKE"))

NUM_RECORDS = 16
RECORD_BYTES = 64
NUM_SHARDS = 2
NUM_QUERIES = 8 if SMOKE else 48
REPEATS = 1 if SMOKE else 5
POLL_INTERVAL_S = 0.02
OVERHEAD_BOUND = 0.02  # the ISSUE's bar: the health plane costs <= 2% QPS
MULTICORE = len(os.sched_getaffinity(0)) >= 2

_OUT = pathlib.Path(__file__).resolve().parent / "BENCH_slo.json"


def _registry() -> RealShardRegistry:
    params = PirParams.small(n=256, d0=8, num_dims=2)
    rng = np.random.default_rng(97)
    records = [rng.bytes(RECORD_BYTES) for _ in range(NUM_RECORDS)]
    return RealShardRegistry(params, records, NUM_SHARDS, RECORD_BYTES, seed=7)


def _policy() -> BatchPolicy:
    return BatchPolicy(
        waiting_window_s=0.005, max_batch=max(4, NUM_QUERIES // NUM_SHARDS)
    )


def _burst(registry, observed: bool) -> dict:
    """One closed burst; returns QPS plus the health plane's artifacts."""
    recorder = FlightRecorder() if observed else None

    async def main():
        backend = RealCryptoBackend(registry)
        runtime = ServeRuntime(
            registry, backend, _policy(), recorder=recorder
        )
        evaluator = (
            SloEvaluator(
                runtime.metrics.series,
                [parse_slo("p99<=1.0"), parse_slo("reject<=0.05")],
                recorder=recorder,
            )
            if observed
            else None
        )
        verdicts: list = []
        health_rows: list = []
        stop = asyncio.Event()

        async def poll_loop():
            loop = asyncio.get_running_loop()
            while True:
                try:
                    await asyncio.wait_for(stop.wait(), POLL_INTERVAL_S)
                except asyncio.TimeoutError:
                    pass
                now = loop.time()
                polled = evaluator.poll(now)
                verdicts.extend(polled)
                health_rows.append(
                    health_snapshot(
                        now, runtime.metrics, POLL_INTERVAL_S, polled
                    )
                )
                if stop.is_set():
                    return

        async with runtime:
            poller = (
                asyncio.ensure_future(poll_loop()) if observed else None
            )
            start = time.monotonic()
            results = await asyncio.gather(
                *(
                    runtime.serve_index(i % registry.num_records)
                    for i in range(NUM_QUERIES)
                )
            )
            elapsed = time.monotonic() - start
            if poller is not None:
                stop.set()
                await poller
        return elapsed, results, verdicts, health_rows

    elapsed, results, verdicts, health_rows = asyncio.run(main())
    correct = sum(
        registry.decode(r.request, r.response)
        == registry.expected(r.request.global_index)
        for r in results
    )
    return {
        "qps": NUM_QUERIES / elapsed,
        "correct": correct,
        "events": len(recorder.events()) if observed else 0,
        "verdicts": len(verdicts),
        "health_rows": len(health_rows),
        "worst_state": max(
            (v.state for v in verdicts), default="ok",
            key=("ok", "warn", "breach").index,
        ),
    }


def _best_of(registry, observed: bool) -> dict:
    runs = [_burst(registry, observed) for _ in range(REPEATS)]
    return max(runs, key=lambda r: r["qps"])


def test_slo_engine_overhead(benchmark, report):
    registry = _registry()

    def sweep():
        # Bare first, observed second: a warm page cache if anything
        # *favors* the observed run.
        return _best_of(registry, observed=False), _best_of(
            registry, observed=True
        )

    bare, observed = run_once(benchmark, sweep)
    overhead = 1.0 - observed["qps"] / bare["qps"]

    if not SMOKE:
        _OUT.write_text(
            json.dumps(
                {
                    "records": NUM_RECORDS,
                    "shards": NUM_SHARDS,
                    "queries": NUM_QUERIES,
                    "repeats": REPEATS,
                    "sched_cores": len(os.sched_getaffinity(0)),
                    "bare_qps": bare["qps"],
                    "observed_qps": observed["qps"],
                    "overhead": overhead,
                    "overhead_bound": OVERHEAD_BOUND,
                    "bare_correct": bare["correct"],
                    "observed_correct": observed["correct"],
                    "events": observed["events"],
                    "verdicts": observed["verdicts"],
                    "health_rows": observed["health_rows"],
                    "worst_state": observed["worst_state"],
                },
                indent=2,
            )
            + "\n"
        )

    lines = [
        f"{'run':>12s} {'QPS':>8s} {'ok':>6s} {'events':>7s} {'polls':>6s}",
        f"{'bare':>12s} {bare['qps']:>8.1f} "
        f"{bare['correct']:>3d}/{NUM_QUERIES} {bare['events']:>7d} "
        f"{0:>6d}",
        f"{'observed':>12s} {observed['qps']:>8.1f} "
        f"{observed['correct']:>3d}/{NUM_QUERIES} {observed['events']:>7d} "
        f"{observed['health_rows']:>6d}",
        f"overhead {overhead:+.1%} (bound {OVERHEAD_BOUND:.0%})",
        "JSON skipped (smoke)" if SMOKE else f"JSON written to {_OUT.name}",
    ]
    report(
        "SLO engine — burn-rate evaluation + flight recording overhead on "
        "the real-crypto serving path",
        lines,
    )

    # Correctness is unconditional, observed or not.
    assert bare["correct"] == NUM_QUERIES
    assert observed["correct"] == NUM_QUERIES
    # The observed run actually ran the plane it claims to.
    assert observed["events"] >= NUM_SHARDS  # >= one dispatch per shard
    assert observed["verdicts"] >= 2  # both specs, every poll
    assert observed["health_rows"] >= 1  # the final flush at minimum
    assert observed["worst_state"] == "ok"  # a healthy burst stays healthy
    assert bare["events"] == 0 and bare["verdicts"] == 0
    # The ISSUE's overhead bar (skipped in smoke and on single-core
    # runners: one tiny contended burst is noise, not a measurement).
    if not SMOKE and MULTICORE:
        assert observed["qps"] >= (1.0 - OVERHEAD_BOUND) * bare["qps"], (
            f"observed {observed['qps']:.1f} QPS lost more than "
            f"{OVERHEAD_BOUND:.0%} vs bare {bare['qps']:.1f} QPS"
        )
