"""Table IV: SimplePIR and KsPIR on CPU vs IVE (Section VI-D).

Paper: SimplePIR 6.2 -> 11,766 QPS (2 GB) and 2.9 -> 5,883 (4 GB);
KsPIR 0.8 -> 2,555 and 0.4 -> 1,288; speedups 1,904-2,063x and
3,246-3,347x.
"""

from conftest import run_once

from repro.baselines.other_schemes import PAPER_TABLE4, table4


def test_table4(benchmark, report):
    rows = run_once(benchmark, table4)
    lines = [
        f"{'scheme':>10s} {'DB':>5s} {'CPU QPS':>9s} {'IVE QPS':>9s} "
        f"{'speedup':>9s} {'paper':>16s}"
    ]
    for row in rows:
        gb = row.db_bytes >> 30
        paper_cpu, paper_ive = PAPER_TABLE4[(row.scheme, gb)]
        lines.append(
            f"{row.scheme:>10s} {gb:>3d}GB {row.cpu_qps:>9.1f} {row.ive_qps:>9.0f} "
            f"{row.speedup:>8.0f}x {paper_cpu:>6.1f} / {paper_ive:>7.0f}"
        )
    report("Table IV — other single-server PIR schemes on IVE", lines)

    by_key = {(r.scheme, r.db_bytes >> 30): r for r in rows}
    for key, row in by_key.items():
        paper_cpu, paper_ive = PAPER_TABLE4[key]
        assert 0.4 < row.cpu_qps / paper_cpu < 2.5, key
        assert 0.3 < row.ive_qps / paper_ive < 3.5, key
    # SimplePIR gains come from batched GEMM; KsPIR from the HE pipeline.
    assert by_key[("SimplePIR", 2)].speedup > 900
    assert by_key[("KsPIR", 2)].speedup > 1500


def test_simplepir_functional_substrate(benchmark):
    """The Table IV row is backed by a working SimplePIR implementation."""
    import numpy as np

    from repro.pir.simplepir import SimplePirClient, SimplePirParams, SimplePirServer

    params = SimplePirParams(lwe_dim=128)
    rng = np.random.default_rng(0)
    db = rng.integers(0, params.p, size=(16, 16), dtype=np.int64)
    server = SimplePirServer(db, params, seed=1)
    client = SimplePirClient(server, seed=2)

    def retrieve():
        query, secret = client.build_query(5)
        return client.recover(server.answer(query), secret, 3)

    value = benchmark(retrieve)
    assert value == db[3, 5]
