#!/usr/bin/env python3
"""Quickstart: retrieve a record privately with the full OnionPIR pipeline.

Runs the real cryptographic protocol end to end on small (insecure, fast)
parameters: the client packs its index into one BFV ciphertext plus a few
RGSW selection bits, the server expands the query (ExpandQuery), scans the
whole database obliviously (RowSel), reduces the candidates in a
tournament of external products (ColTor), and the client decrypts the
single returned ciphertext.

    python examples/quickstart.py
"""

from repro import PirDatabase, PirParams, PirProtocol


def main() -> None:
    # Small ring for speed; PirParams.functional() is the paper-shaped set.
    params = PirParams.small(n=256, d0=8, num_dims=2)
    print(f"ring degree N={params.n}, moduli={len(params.moduli)}x~28-bit, "
          f"P={params.plain_modulus}, DB geometry D0={params.d0} x 2^{params.num_dims}")

    db = PirDatabase.random(params, num_records=32, record_bytes=256, seed=7)
    print(f"database: {db.num_records} records x {db.layout.record_bytes} B "
          f"({db.raw_bytes} B raw)")

    protocol = PirProtocol(params, db, seed=11)
    target = 23
    result = protocol.retrieve(target)

    assert result.record == db.record(target), "retrieval mismatch!"
    print(f"retrieved record {target}: {result.record[:16].hex()}... OK")

    t = protocol.transcript
    print(f"communication: setup {t.setup_bytes / 1024:.0f} KiB (one-time), "
          f"query {t.query_bytes / 1024:.0f} KiB, "
          f"response {t.response_bytes / 1024:.0f} KiB")

    # The server never sees the index: queries for any index have identical
    # size and fresh randomness.
    q_a = protocol.client.build_query(0, db.layout)
    q_b = protocol.client.build_query(31, db.layout)
    assert q_a.size_bytes(params) == q_b.size_bytes(params)
    print("queries for different indices are indistinguishable in shape ✓")


if __name__ == "__main__":
    main()
