#!/usr/bin/env python3
"""Vcall: metadata-private voice calling (Addra-style), two views.

1. Functional: a miniature mailbox database where each user fetches their
   contact's latest voice packet without revealing whom they talk to.
2. Performance: the paper's full 384 GB Vcall workload projected onto a
   16-system IVE cluster at batch 128 (Table III row).

    python examples/voice_calling.py
"""

from repro import PirDatabase, PirParams, PirProtocol
from repro.analysis.workloads import VCALL
from repro.baselines.reported import INSPIRE, PAPER_IVE_QPS
from repro.systems.cluster import IveCluster


def functional_demo() -> None:
    print("--- functional miniature (64 mailboxes of 288 B) ---")
    params = PirParams.small(n=256, d0=16, num_dims=2)
    packets = [f"voice-packet-from-user-{i:03d}".encode().ljust(288, b"\0")
               for i in range(64)]
    db = PirDatabase.from_records(packets, params, record_bytes=288)
    protocol = PirProtocol(params, db, seed=3)

    caller_contact = 41  # whom we call — hidden from the server
    record = protocol.retrieve(caller_contact).record
    print(f"fetched mailbox {caller_contact}: {record.rstrip(bytes(1)).decode()}")
    assert record == db.record(caller_contact)


def cluster_projection() -> None:
    print("\n--- full-scale projection: 384 GB on a 16-system IVE cluster ---")
    geometry = VCALL.geometry(PirParams.paper())
    cluster = IveCluster(geometry, num_systems=16)
    lat = cluster.latency(batch=128)
    inspire = INSPIRE.qps("Vcall")
    print(f"modeled DB: 2^{geometry.num_dims} x {geometry.d0} polynomials "
          f"({cluster.raw_db_bytes / (1 << 30):.0f} GiB raw, rounded geometry)")
    print(f"batch-128 latency: {lat.total_s:.2f} s  "
          f"(gather {lat.gather_s * 1e3:.1f} ms, final ColTor "
          f"{lat.final_coltor_s * 1e3:.1f} ms)")
    print(f"throughput: {lat.qps:.0f} QPS cluster-wide "
          f"({lat.per_system_qps:.1f} per system; paper reports "
          f"{PAPER_IVE_QPS['Vcall']:.0f})")
    print(f"vs INSPIRE in-storage ASIC ({inspire} QPS/system): "
          f"{lat.per_system_qps / inspire:.0f}x per system")


if __name__ == "__main__":
    functional_demo()
    cluster_projection()
