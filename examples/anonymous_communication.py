#!/usr/bin/env python3
"""Comm: anonymous communication mailboxes + the batch scheduler in action.

1. Functional: recipients poll their dead-drop mailbox obliviously; the
   server cannot tell which sender-receiver pairs communicate.
2. Operational: Poisson query arrivals against one IVE system with the
   waiting-window batch scheduler (the Fig. 14b deployment story) —
   showing the latency users would actually see at several load levels.

    python examples/anonymous_communication.py
"""

from repro import PirDatabase, PirParams, PirProtocol
from repro.arch.config import IveConfig
from repro.arch.simulator import IveSimulator
from repro.params import PirParams as Params
from repro.systems.batching import BatchPolicy, window_from_db_read
from repro.systems.queueing import simulate_batching, simulate_fifo


def functional_demo() -> None:
    print("--- functional miniature: dead-drop mailboxes ---")
    params = PirParams.small(n=256, d0=8, num_dims=2)
    mailboxes = [b"\0" * 128 for _ in range(32)]
    mailboxes[17] = b"meet at the usual place at nine".ljust(128, b"\0")
    db = PirDatabase.from_records(mailboxes, params, record_bytes=128)
    protocol = PirProtocol(params, db, seed=5)

    message = protocol.retrieve(17).record.rstrip(b"\0")
    print(f"recipient fetched mailbox 17: {message.decode()!r}")
    # The server answered without learning *which* mailbox was read.


def scheduler_demo() -> None:
    print("\n--- batch scheduler under load (16 GB DB, one IVE system) ---")
    sim = IveSimulator(IveConfig.ive(), Params.paper(d0=256, num_dims=12))
    single = sim.single_query_latency().total_s
    window = window_from_db_read(sim.min_db_read_seconds())
    policy = BatchPolicy(waiting_window_s=window, max_batch=128)
    cache: dict[int, float] = {}

    def service(batch: int) -> float:
        if batch not in cache:
            cache[batch] = sim.latency(batch).total_s
        return cache[batch]

    print(f"single-query latency {single * 1e3:.1f} ms "
          f"(non-batching limit {1 / single:.1f} QPS); window {window * 1e3:.1f} ms")
    print(f"{'load QPS':>9s} {'batched ms':>11s} {'no-batch ms':>12s} {'avg batch':>10s}")
    for rate in (5, 20, 100, 300):
        batched = simulate_batching(service, policy, rate, num_queries=800, seed=1)
        fifo = simulate_fifo(single, rate, num_queries=800, seed=1)
        fifo_ms = fifo.mean_latency_s * 1e3
        fifo_str = f"{fifo_ms:>12.1f}" if fifo_ms < 1e5 else f"{'diverges':>12s}"
        print(f"{rate:>9.0f} {batched.mean_latency_s * 1e3:>11.1f} "
              f"{fifo_str} {batched.mean_batch:>10.1f}")
    print("batching keeps latency bounded far beyond the FIFO limit (Fig. 14b)")


if __name__ == "__main__":
    functional_demo()
    scheduler_demo()
