#!/usr/bin/env python3
"""Serving demo: the same runtime with real crypto and at simulated scale.

Part 1 shards a small database across two real ``PirServer`` replicas and
serves concurrent queries through the admission-controlled waiting-window
dispatcher, verifying every record byte for byte.

Part 2 swaps the event loop for virtual time and replays a 5,000-query
Poisson workload against the paper-scale accelerator latency model — a
load test that would take minutes of "real" traffic finishes in about a
second.

    python examples/serving.py
"""

import asyncio

from repro.params import PirParams
from repro.serve import (
    RealCryptoBackend,
    RealShardRegistry,
    ServeRuntime,
    SimShardRegistry,
    SimulatedBackend,
    poisson_arrivals,
    run_in_virtual_time,
    run_open_loop,
    uniform_indices,
)
from repro.systems.batching import BatchPolicy


def real_crypto_serve() -> None:
    params = PirParams.small(n=256, d0=8, num_dims=2)
    registry = RealShardRegistry.random(
        params, num_records=12, record_bytes=64, num_shards=2, seed=13
    )
    policy = BatchPolicy(waiting_window_s=0.01, max_batch=4)

    async def main():
        runtime = ServeRuntime(registry, RealCryptoBackend(registry), policy)
        async with runtime:
            return (
                await asyncio.gather(
                    *(runtime.serve_index(i) for i in range(registry.num_records))
                ),
                runtime.metrics,
            )

    results, metrics = asyncio.run(main())
    correct = sum(
        registry.decode(r.request, r.response)
        == registry.expected(r.request.global_index)
        for r in results
    )
    print(
        f"[real] {correct}/{len(results)} records byte-correct across "
        f"{registry.num_shards} shards, mean batch {metrics.mean_batch:.1f}"
    )
    assert correct == len(results)


def simulated_loadtest() -> None:
    registry = SimShardRegistry(PirParams.paper(d0=256, num_dims=9), num_shards=4)
    policy = BatchPolicy(waiting_window_s=registry.waiting_window_s(), max_batch=128)
    num = 5000

    async def main():
        runtime = ServeRuntime(registry, SimulatedBackend(registry), policy)
        runtime.start()
        arrivals = poisson_arrivals(4000.0, num, seed=1)
        indices = uniform_indices(registry.num_records, num, seed=2)
        return await run_open_loop(runtime, arrivals, indices)

    report, virtual_s = run_in_virtual_time(main())
    m = report.metrics
    lat = m["latency"]
    print(
        f"[sim]  {report.completed} queries in {virtual_s:.2f} virtual s: "
        f"{m['achieved_qps']:.0f} QPS, p50 {lat['p50_s'] * 1e3:.2f} ms, "
        f"p95 {lat['p95_s'] * 1e3:.2f} ms, p99 {lat['p99_s'] * 1e3:.2f} ms, "
        f"mean batch {m['mean_batch']:.1f}"
    )


def main() -> None:
    real_crypto_serve()
    simulated_loadtest()


if __name__ == "__main__":
    main()
