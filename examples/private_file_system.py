#!/usr/bin/env python3
"""Fsys: private file retrieval (XPIR-style) with records larger than one
plaintext polynomial, plus the heterogeneous-memory placement decision.

1. Functional: file chunks are striped across database planes; one query
   retrieves every plane's share and the client reassembles the file.
2. Scale-up: where the paper's 1.25 TB Fsys DB lives — per-system slices
   stream from LPDDR while HBM serves the client-specific working set.

    python examples/private_file_system.py
"""

from repro import PirDatabase, PirParams, PirProtocol
from repro.analysis.workloads import FSYS
from repro.systems.cluster import IveCluster
from repro.systems.scale_up import DbPlacement, ScaleUpSystem


def functional_demo() -> None:
    print("--- functional miniature: striped 600 B files ---")
    params = PirParams.small(n=128, d0=4, num_dims=1)
    files = [bytes([i]) * 600 for i in range(8)]
    db = PirDatabase.from_records(files, params, record_bytes=600)
    print(f"each file spans {db.layout.plane_count} planes "
          f"({db.layout.bytes_per_plane_poly} B per plane)")
    protocol = PirProtocol(params, db, seed=9)
    result = protocol.retrieve(5)
    assert result.record == files[5]
    print(f"retrieved file 5 intact ({len(result.record)} B) from "
          f"{len(result.response.plane_cts)} response ciphertexts")


def placement_demo() -> None:
    print("\n--- memory placement across DB scales ---")
    for dims, label in ((12, "16 GB"), (15, "128 GB")):
        params = PirParams.paper(d0=256, num_dims=dims)
        system = ScaleUpSystem(params)
        qps = system.qps(128)
        print(f"{label:>7s}: placement={system.placement.value:6s} "
              f"min-DB-read={system.min_db_read_seconds() * 1e3:7.1f} ms  "
              f"QPS@128={qps:7.1f}")
    print("(LPDDR's 4x lower bandwidth costs little once batching amortizes "
          "the scan — Fig. 13d)")


def cluster_demo() -> None:
    print("\n--- the full 1.25 TB Fsys workload on 16 systems ---")
    geometry = FSYS.geometry(PirParams.paper())
    cluster = IveCluster(geometry, num_systems=16)
    assert cluster.system.placement is DbPlacement.LPDDR
    lat = cluster.latency(batch=128)
    print(f"per-system slice: 2^{cluster.slice_params.num_dims} x 256 polynomials, "
          "streamed from LPDDR")
    print(f"batch-128 latency {lat.total_s:.2f} s -> {lat.qps:.0f} QPS "
          f"({lat.per_system_qps:.1f}/system; paper reports 127.5 total)")


if __name__ == "__main__":
    functional_demo()
    placement_demo()
    cluster_demo()
