#!/usr/bin/env python3
"""Design-space exploration with the IVE cost models.

Sweeps core count, scratchpad size, and the scheduling policy on the
16 GB workload, reporting throughput, area, and energy-delay-area product
— the loop an architect would run before committing to a configuration.

    python examples/design_space_exploration.py
"""

from dataclasses import replace

from repro.arch.area import area
from repro.arch.config import MB, IveConfig
from repro.arch.energy import batch_energy, edap
from repro.arch.simulator import IveSimulator
from repro.params import PirParams
from repro.sched.tree import Traversal


def evaluate(config: IveConfig, params: PirParams, traversal=Traversal.HS_DFS):
    sim = IveSimulator(config, params, traversal=traversal)
    lat = sim.latency(64)
    eb = batch_energy(sim, 64)
    a = area(config).total
    return {
        "qps": lat.qps,
        "latency_ms": lat.total_s * 1e3,
        "area_mm2": a,
        "j_per_query": eb.joules_per_query,
        "edap": edap(eb.joules_per_query, lat.total_s, a),
    }


def sweep_cores(params: PirParams) -> None:
    print("--- core-count sweep (HBM bandwidth fixed) ---")
    print(f"{'cores':>6s} {'QPS':>8s} {'area mm2':>9s} {'J/query':>9s} {'EDAP':>10s}")
    for cores in (16, 32, 64):
        config = replace(IveConfig.ive(), num_cores=cores)
        r = evaluate(config, params)
        print(f"{cores:>6d} {r['qps']:>8.0f} {r['area_mm2']:>9.1f} "
              f"{r['j_per_query']:>9.3f} {r['edap']:>10.2e}")


def sweep_scratchpad(params: PirParams) -> None:
    print("\n--- per-core register-file sweep (HS subtree depth follows) ---")
    print(f"{'RF MB':>6s} {'QPS':>8s} {'area mm2':>9s} {'J/query':>9s}")
    for rf_mb in (2, 4, 8):
        config = replace(IveConfig.ive(), rf_bytes=rf_mb * MB)
        r = evaluate(config, params)
        print(f"{rf_mb:>6d} {r['qps']:>8.0f} {r['area_mm2']:>9.1f} "
              f"{r['j_per_query']:>9.3f}")


def sweep_scheduling(params: PirParams) -> None:
    print("\n--- scheduling policy (the Fig. 13b ablation) ---")
    print(f"{'policy':>14s} {'QPS':>8s} {'latency ms':>11s}")
    for label, traversal in (
        ("BFS", Traversal.BFS),
        ("DFS", Traversal.DFS),
        ("HS (w/ DFS)", Traversal.HS_DFS),
    ):
        r = evaluate(IveConfig.ive(), params, traversal)
        print(f"{label:>14s} {r['qps']:>8.0f} {r['latency_ms']:>11.1f}")


def main() -> None:
    params = PirParams.paper(d0=256, num_dims=12)  # 16 GB
    sweep_cores(params)
    sweep_scratchpad(params)
    sweep_scheduling(params)
    print("\nnote: doubling cores helps until RowSel hits the HBM roofline; "
          "scratchpad beyond the HS working set buys little (Section IV-A).")


if __name__ == "__main__":
    main()
