"""Refresh economics of the hint tier: when does churn eat the savings?

The hint tier trades a large offline download for a cheap online phase.
Mutations tax that trade: every epoch publish forces each client to
either fetch a delta-hint (churn-proportional) or re-download the full
hint.  This module sweeps churn rates at paper scale and locates the
crossover where refresh traffic starts to dominate the client's wire
budget — the operating envelope the serving tier must respect.

Geometry maps the repo's standard database onto SimplePIR terms: one
record per preprocessed polynomial payload (``num_db_polys`` columns of
``poly_payload_bytes``-byte records), ``entry_bits``-bit Z_p limbs, and
the paper-scale LWE dimension (2^10) rather than the test-friendly
default of :class:`~repro.pir.simplepir.SimplePirParams`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import IveConfig
from repro.arch.simulator import IveSimulator
from repro.errors import ParameterError
from repro.params import PirParams

#: Paper-scale LWE secret dimension (SimplePIR uses 2^10).
DEFAULT_LWE_DIM = 1024
#: Z_p limb width: one byte per entry (p = 2^8).
DEFAULT_ENTRY_BITS = 8
#: Z_q wire word (q fits 32 bits).
WORD_BYTES = 4
#: Default online traffic per epoch used by the churn sweep: one design
#: batch of queries between consecutive publishes.
DEFAULT_QUERIES_PER_EPOCH = 64


@dataclass(frozen=True)
class HintGeometry:
    """SimplePIR matrix geometry for one parameter set."""

    num_records: int
    record_bytes: int
    lwe_dim: int
    entry_bits: int

    @property
    def rows(self) -> int:
        return -(-self.record_bytes * 8 // self.entry_bits)

    @property
    def cols(self) -> int:
        return self.num_records

    @property
    def hint_bytes(self) -> int:
        return self.rows * self.lwe_dim * WORD_BYTES

    @property
    def query_bytes(self) -> int:
        return self.cols * WORD_BYTES

    @property
    def answer_bytes(self) -> int:
        return self.rows * WORD_BYTES

    @property
    def delta_entry_bytes(self) -> int:
        """Signed delta limb: entries in ``(-(p-1), p-1)``."""
        return (self.entry_bits + 1 + 7) // 8

    def patch_bytes(self, dirty_records: int) -> int:
        return (
            self.rows * dirty_records * self.delta_entry_bytes
            + dirty_records * 4
            + 8
        )

    @classmethod
    def from_params(
        cls,
        params: PirParams,
        lwe_dim: int = DEFAULT_LWE_DIM,
        entry_bits: int = DEFAULT_ENTRY_BITS,
    ) -> "HintGeometry":
        return cls(
            num_records=params.num_db_polys,
            record_bytes=params.poly_payload_bytes,
            lwe_dim=lwe_dim,
            entry_bits=entry_bits,
        )


@dataclass(frozen=True)
class HintOnlinePoint:
    """Hint-tier online cost vs a full RowSel/ColTor pass at one batch."""

    batch: int
    online_s: float  # one batched hint-PIR window
    per_query_s: float  # amortized per query
    full_pass_s: float  # one full-pipeline pass at batch 1
    speedup: float  # full_pass_s / per_query_s


def hintpir_vs_full(
    params: PirParams | None = None,
    config: IveConfig | None = None,
    batches=(1, 16, 64, 256),
    entry_bits: int = DEFAULT_ENTRY_BITS,
) -> list[HintOnlinePoint]:
    """Online server cost of the hint tier against the full pipeline.

    The comparison behind the ROADMAP gate: amortized per-query hint-PIR
    service time (one plaintext GEMM shared by the window) against one
    single-query RowSel/ColTor pass on the same simulator.
    """
    params = params or PirParams.paper()
    sim = IveSimulator(config or IveConfig.ive(), params)
    full_pass_s = sim.latency(1).total_s
    points = []
    for batch in batches:
        online_s = sim.hintpir_online_latency(batch, entry_bits).total_s
        per_query_s = online_s / batch
        points.append(
            HintOnlinePoint(
                batch=batch,
                online_s=online_s,
                per_query_s=per_query_s,
                full_pass_s=full_pass_s,
                speedup=full_pass_s / per_query_s,
            )
        )
    return points


@dataclass(frozen=True)
class HintRefreshPoint:
    """Client wire budget at one churn rate: refresh vs online traffic."""

    churn: float  # fraction of records dirtied per epoch
    dirty_records: int
    patch_bytes: int  # delta-hint size for this epoch's churn
    hint_bytes: int  # full re-download alternative
    refresh_bytes: int  # min of the two — what a rational client moves
    refresh_mode: str  # "delta" | "full"
    online_bytes: int  # queries_per_epoch online round trips
    refresh_fraction: float  # refresh share of the total wire budget

    @property
    def total_bytes(self) -> int:
        return self.refresh_bytes + self.online_bytes


def churn_refresh_curve(
    params: PirParams | None = None,
    lwe_dim: int = DEFAULT_LWE_DIM,
    entry_bits: int = DEFAULT_ENTRY_BITS,
    queries_per_epoch: int = DEFAULT_QUERIES_PER_EPOCH,
    churns=(1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1),
) -> list[HintRefreshPoint]:
    """Per-epoch client traffic across churn rates, at paper scale.

    Each point: an epoch dirties ``churn * num_records`` records; the
    client pays ``min(delta patch, full hint)`` to stay current plus its
    ``queries_per_epoch`` online round trips.  The refresh *fraction*
    locates the crossover — churn beyond which keeping the hint fresh
    costs more wire than the queries it accelerates.
    """
    if queries_per_epoch < 1:
        raise ParameterError("queries_per_epoch must be >= 1")
    geometry = HintGeometry.from_params(
        params or PirParams.paper(), lwe_dim, entry_bits
    )
    online_bytes = queries_per_epoch * (geometry.query_bytes + geometry.answer_bytes)
    points = []
    for churn in churns:
        if not 0.0 <= churn <= 1.0:
            raise ParameterError(f"churn must be in [0, 1], got {churn}")
        dirty = max(1, round(churn * geometry.num_records)) if churn > 0 else 0
        patch = geometry.patch_bytes(dirty)
        refresh = min(patch, geometry.hint_bytes)
        points.append(
            HintRefreshPoint(
                churn=churn,
                dirty_records=dirty,
                patch_bytes=patch,
                hint_bytes=geometry.hint_bytes,
                refresh_bytes=refresh,
                refresh_mode="delta" if patch <= geometry.hint_bytes else "full",
                online_bytes=online_bytes,
                refresh_fraction=refresh / (refresh + online_bytes),
            )
        )
    return points


def crossover_churn(points: list[HintRefreshPoint]) -> float | None:
    """First churn rate where refresh traffic dominates (fraction > 1/2)."""
    for point in points:
        if point.refresh_fraction > 0.5:
            return point.churn
    return None
