"""Hint-PIR tier: SimplePIR serving with epoch-aware hint refresh.

Layers:

* :mod:`repro.hintpir.layout` — records as matrix columns, transcript
  byte arithmetic.
* :mod:`repro.hintpir.protocol` — :class:`HintPirServer` /
  :class:`HintPirClient`: offline hint download, batched online
  answering, per-epoch delta-hints, typed :class:`~repro.errors.HintStale`.
* :mod:`repro.hintpir.serving` — keyed shard routing and the
  registry/backend pair plugging the tier into
  :class:`~repro.serve.dispatcher.ServeRuntime` (``--serving hintpir``).
* :mod:`repro.hintpir.model` — refresh economics: online savings vs
  churn-driven hint refresh, and the crossover between them.
"""

from repro.hintpir.layout import HintLayout
from repro.hintpir.model import (
    HintGeometry,
    HintOnlinePoint,
    HintRefreshPoint,
    churn_refresh_curve,
    crossover_churn,
    hintpir_vs_full,
)
from repro.hintpir.protocol import (
    HintAnswer,
    HintDelta,
    HintEpochDelta,
    HintPirClient,
    HintPirProtocol,
    HintPirServer,
    HintPublishReport,
    HintQuery,
    HintTranscript,
)
from repro.hintpir.serving import (
    HintCryptoBackend,
    HintServeRegistry,
    HintShardMap,
)

__all__ = [
    "HintAnswer",
    "HintCryptoBackend",
    "HintDelta",
    "HintEpochDelta",
    "HintGeometry",
    "HintLayout",
    "HintOnlinePoint",
    "HintPirClient",
    "HintPirProtocol",
    "HintPirServer",
    "HintPublishReport",
    "HintQuery",
    "HintRefreshPoint",
    "HintServeRegistry",
    "HintShardMap",
    "HintTranscript",
    "churn_refresh_curve",
    "crossover_churn",
    "hintpir_vs_full",
]
