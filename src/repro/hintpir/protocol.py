"""Hint-PIR protocol: offline hint download, online queries, epoch deltas.

The protocol family wraps the SimplePIR core with the two things a
*served* hint tier needs and a bare PIR scheme lacks:

* **Explicit phase accounting.**  :class:`HintTranscript` sizes the
  offline download (hint + A-seed) and the per-query online traffic so
  the refresh-vs-online trade is a number, not a vibe.

* **Epoch-aware hint refresh.**  A mutation publish
  (:meth:`HintPirServer.publish`) carries a dirty-column summary.  The
  server retains a bounded window of per-epoch deltas; a client holding
  a stale hint is patched with a delta-hint — the signed column changes,
  from which the client recomputes ``ΔDB @ A`` locally over dirty
  columns only — or, past the window, rejected with a typed
  :class:`~repro.errors.HintStale`.  The invariant the serving tier
  builds on: **a stale hint never decodes to a wrong byte**; it is
  either patched or refused.

Epoch bookkeeping mirrors ``repro.mutate`` (monotonic epochs, bounded
retain window, typed staleness), but the versioned artifact here is the
*client-side hint*, not a server-side database snapshot.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.errors import HintPirError, HintStale, LayoutError
from repro.he.backend import ComputeBackend
from repro.hintpir.layout import HintLayout
from repro.mutate.log import UpdateLog
from repro.pir.simplepir import (
    SimplePirParams,
    SimplePirServer,
    lwe_public_matrix,
    modular_gemm,
)


@dataclass(frozen=True)
class HintTranscript:
    """Byte accounting for one deployment: offline vs online traffic."""

    hint_bytes: int
    seed_bytes: int
    query_bytes: int
    answer_bytes: int
    db_bytes: int

    @property
    def offline_bytes(self) -> int:
        return self.hint_bytes + self.seed_bytes

    @property
    def online_bytes(self) -> int:
        """Per-query wire traffic once the hint is in place."""
        return self.query_bytes + self.answer_bytes

    @property
    def online_expansion(self) -> float:
        """Online traffic relative to fetching one record in the clear."""
        return self.online_bytes / max(1, self.db_bytes // max(1, self.query_bytes))


@dataclass(frozen=True)
class HintEpochDelta:
    """The dirty-column summary advancing a hint from ``epoch - 1`` to ``epoch``.

    ``values`` holds ``new - old`` for each dirty column (entries in
    ``(-(p-1), p-1)``); the client folds ``values @ A[dirty_cols]`` into
    its hint locally, so the wire carries churn-proportional bytes.
    """

    epoch: int
    dirty_cols: np.ndarray  # sorted unique column indices, int64
    values: np.ndarray  # (rows, len(dirty_cols)) signed deltas

    @property
    def num_dirty(self) -> int:
        return int(self.dirty_cols.size)


@dataclass(frozen=True)
class HintDelta:
    """A chain of epoch deltas patching a hint from ``from_epoch`` to ``to_epoch``."""

    from_epoch: int
    to_epoch: int
    steps: tuple[HintEpochDelta, ...]
    patch_bytes: int

    @property
    def num_dirty(self) -> int:
        return sum(step.num_dirty for step in self.steps)


@dataclass(frozen=True)
class HintPublishReport:
    """What one epoch publish cost: dirty footprint and delta wire size."""

    epoch: int
    num_dirty: int
    patch_bytes: int


@dataclass
class HintQuery:
    """One online query.  The server reads ``vector`` and ``hint_epoch``;
    ``secret`` and ``col`` never leave the client and exist so the caller
    can decode the answer later."""

    vector: np.ndarray
    secret: np.ndarray = field(repr=False)
    col: int
    hint_epoch: int


@dataclass
class HintAnswer:
    """One online answer: the Regev response plus, when the querying hint
    was stale but patchable, the delta chain bringing it current."""

    vector: np.ndarray
    epoch: int
    delta: HintDelta | None = None


class HintPirServer:
    """SimplePIR server with epoch-versioned hints and batched answering.

    ``records`` are laid out as matrix columns (record ``i`` = column
    ``i``); :meth:`publish` applies an :class:`~repro.mutate.log.UpdateLog`
    as one epoch step, maintaining the cached hint *incrementally* (cost
    proportional to the dirty columns, not the database) and retaining
    the last ``retain_epochs`` delta summaries for stale clients.
    """

    def __init__(
        self,
        records,
        record_bytes: int,
        params: SimplePirParams | None = None,
        seed: int = 0,
        retain_epochs: int = 4,
        backend: str | ComputeBackend | None = None,
    ):
        if retain_epochs < 0:
            raise HintPirError("retain_epochs must be >= 0")
        params = params or SimplePirParams()
        records = [bytes(r) for r in records]
        self.layout = HintLayout(len(records), record_bytes, params)
        self.params = params
        self.seed = seed
        self.retain_epochs = retain_epochs
        self.core = SimplePirServer(
            self.layout.pack_records(records), params, seed, backend=backend
        )
        self.epoch = 0
        self._deltas: dict[int, HintEpochDelta] = {}
        self._hint = self.core.hint()
        self._lock = threading.Lock()

    # -- offline phase ----------------------------------------------------

    def hint(self) -> np.ndarray:
        """The current (rows x lwe_dim) hint — the offline download."""
        with self._lock:
            return self._hint.copy()

    def hint_state(self) -> tuple[int, np.ndarray]:
        """(epoch, hint) read atomically — what a fresh download ships."""
        with self._lock:
            return self.epoch, self._hint.copy()

    def transcript(self) -> HintTranscript:
        layout = self.layout
        return HintTranscript(
            hint_bytes=layout.hint_bytes,
            seed_bytes=8,
            query_bytes=layout.query_bytes,
            answer_bytes=layout.answer_bytes,
            db_bytes=layout.db_bytes,
        )

    # -- epoch publishes --------------------------------------------------

    def publish(self, log: UpdateLog) -> HintPublishReport:
        """Apply one update log as an epoch step with a dirty-column delta.

        Appends are refused: growing the column count changes the query
        geometry (vector length) and would invalidate every outstanding
        hint and in-flight query at once — that is a rebuild, not a
        publish.
        """
        writes, appends = log.coalesced(self.layout.num_records)
        if appends:
            raise HintPirError(
                "hint-PIR publishes cannot append records (query geometry "
                "would change); rebuild the deployment instead"
            )
        with self._lock:
            dirty = np.array(sorted(writes), dtype=np.int64)
            if dirty.size == 0:
                self.epoch += 1
                self._deltas[self.epoch] = HintEpochDelta(
                    epoch=self.epoch,
                    dirty_cols=dirty,
                    values=np.zeros((self.layout.rows, 0), dtype=np.int64),
                )
                self._prune()
                return HintPublishReport(self.epoch, 0, self.layout.patch_bytes(0))
            new_cols = np.empty((self.layout.rows, dirty.size), dtype=np.int64)
            for j, index in enumerate(dirty):
                record = writes[int(index)]
                if record is None:  # tombstone: zeroed slot
                    new_cols[:, j] = 0
                else:
                    new_cols[:, j] = self.layout.pack_record(record)
            old_cols = self.core.db[:, dirty]
            values = new_cols - old_cols
            self.core.db[:, dirty] = new_cols
            # Incremental hint maintenance: Δhint = ΔDB @ A over dirty
            # columns only — the same computation the patched client does.
            self._hint = (
                self._hint
                + self.core.backend.modular_gemm(
                    values, self.core.a_matrix[dirty], self.params.q
                )
            ) % self.params.q
            self.epoch += 1
            self._deltas[self.epoch] = HintEpochDelta(
                epoch=self.epoch, dirty_cols=dirty, values=values
            )
            self._prune()
            return HintPublishReport(
                self.epoch,
                int(dirty.size),
                self.layout.patch_bytes(int(dirty.size)),
            )

    def _prune(self):
        horizon = self.epoch - self.retain_epochs
        for target in [e for e in self._deltas if e <= horizon]:
            del self._deltas[target]

    @property
    def oldest_patchable(self) -> int:
        """The oldest hint epoch a retained delta chain can bring current."""
        epoch = self.epoch
        while epoch > 0 and epoch in self._deltas:
            epoch -= 1
        return epoch

    def delta_since(self, hint_epoch: int) -> HintDelta:
        """The delta chain patching a hint at ``hint_epoch`` to current.

        Raises :class:`HintStale` when the chain has been pruned past the
        retain window, and :class:`HintPirError` for a hint from the
        future (a client bug).
        """
        with self._lock:
            return self._delta_since_locked(hint_epoch)

    def _delta_since_locked(self, hint_epoch: int) -> HintDelta:
        if hint_epoch > self.epoch:
            raise HintPirError(
                f"hint epoch {hint_epoch} is ahead of the server ({self.epoch})"
            )
        oldest = self.oldest_patchable
        if hint_epoch < oldest:
            raise HintStale(hint_epoch, self.epoch, oldest)
        steps = tuple(self._deltas[e] for e in range(hint_epoch + 1, self.epoch + 1))
        patch = sum(self.layout.patch_bytes(step.num_dirty) for step in steps)
        return HintDelta(hint_epoch, self.epoch, steps, patch)

    # -- online phase -----------------------------------------------------

    def answer_window(self, queries) -> list:
        """Answer a waiting window of queries with one ``DB @ Q`` GEMM.

        Returns one entry per query, in order: a :class:`HintAnswer`
        (with the delta chain bundled when the query's hint is behind),
        or a :class:`~repro.errors.HintStale` *value* when the hint is
        past the retain window.  Staleness is per-request data, not an
        exception — one unpatchable client must not fail the rest of the
        window.
        """
        queries = list(queries)
        with self._lock:
            outcomes: list = [None] * len(queries)
            live: list[int] = []
            for i, query in enumerate(queries):
                try:
                    outcomes[i] = self._delta_since_locked(query.hint_epoch)
                except HintStale as stale:
                    outcomes[i] = stale
                else:
                    live.append(i)
            if live:
                stacked = np.stack([queries[i].vector for i in live], axis=1)
                answers = self.core.answer_batch(stacked)
                for j, i in enumerate(live):
                    delta = outcomes[i]
                    outcomes[i] = HintAnswer(
                        vector=answers[:, j],
                        epoch=self.epoch,
                        delta=delta if delta.steps else None,
                    )
            return outcomes

    def answer(self, query: HintQuery):
        """Answer a single query (a window of one)."""
        return self.answer_window([query])[0]


class HintPirClient:
    """Holds the offline hint, builds queries, patches or re-downloads.

    The client keeps a bounded per-epoch hint history so an in-flight
    answer from epoch ``e`` can still be decoded after a later answer
    has already patched the client past ``e``.
    """

    def __init__(self, server: HintPirServer, seed: int = 1, history: int = 8):
        if history < 1:
            raise HintPirError("history must keep at least the current hint")
        self.params = server.params
        self.layout = server.layout
        self.a_matrix = lwe_public_matrix(
            self.layout.cols, self.params.lwe_dim, self.params.q, server.seed
        )
        self.history = history
        self.rng = np.random.default_rng(seed)
        self.downloads = 0
        self.patched_epochs = 0
        self._hints: dict[int, np.ndarray] = {}
        self.hint_epoch = -1
        self.refresh(server)

    # -- hint lifecycle ---------------------------------------------------

    def refresh(self, server: HintPirServer):
        """Full offline re-download of the current hint."""
        epoch, hint = server.hint_state()
        self._hints = {epoch: hint}
        self.hint_epoch = epoch
        self.downloads += 1

    def apply_delta(self, delta: HintDelta):
        """Fold a delta chain into the hint: ``ΔDB @ A`` over dirty columns.

        The chain may start behind the current hint (answers from
        different epochs race in a concurrent session) — steps at or
        below ``hint_epoch`` were already applied and are skipped; each
        step is a self-contained epoch increment, so only the suffix
        matters.  A chain starting *ahead* of the hint cannot bridge the
        gap and is a protocol error.
        """
        if delta.from_epoch > self.hint_epoch:
            raise HintPirError(
                f"delta patches from epoch {delta.from_epoch}, hint is at "
                f"{self.hint_epoch}"
            )
        if delta.to_epoch <= self.hint_epoch:
            return
        hint = self._hints[self.hint_epoch]
        for step in delta.steps:
            if step.epoch <= self.hint_epoch:
                continue
            if step.num_dirty:
                patch = modular_gemm(
                    step.values, self.a_matrix[step.dirty_cols], self.params.q
                )
                hint = (hint + patch) % self.params.q
            self._hints[step.epoch] = hint
            self.patched_epochs += 1
        self.hint_epoch = delta.to_epoch
        self._trim()

    def _trim(self):
        for epoch in sorted(self._hints)[: -self.history]:
            del self._hints[epoch]

    def hint_at(self, epoch: int) -> np.ndarray:
        try:
            return self._hints[epoch]
        except KeyError:
            raise HintPirError(
                f"no hint retained for epoch {epoch} (held: "
                f"{sorted(self._hints)})"
            ) from None

    # -- online phase -----------------------------------------------------

    def build_query(self, record_index: int) -> HintQuery:
        """A Regev query for record ``record_index``, tagged with our epoch."""
        if not 0 <= record_index < self.layout.cols:
            raise LayoutError(f"record index {record_index} out of range")
        params = self.params
        secret = self.rng.integers(0, params.q, size=params.lwe_dim, dtype=np.int64)
        error = np.rint(
            self.rng.normal(0.0, params.error_std, size=self.layout.cols)
        ).astype(np.int64)
        one_hot = np.zeros(self.layout.cols, dtype=np.int64)
        one_hot[record_index] = params.delta
        vector = (
            modular_gemm(self.a_matrix, secret, params.q) + error + one_hot
        ) % params.q
        return HintQuery(
            vector=vector, secret=secret, col=record_index, hint_epoch=self.hint_epoch
        )

    def decode(self, query: HintQuery, answer: HintAnswer) -> bytes:
        """Recover the record bytes from an answer.

        The answer was computed against the database at ``answer.epoch``,
        so decoding needs the hint at that epoch: the bundled delta is
        applied first if we are behind, and the per-epoch history covers
        answers that arrive after a later patch already moved us ahead.
        """
        if (
            answer.delta is not None
            and answer.delta.from_epoch <= self.hint_epoch < answer.delta.to_epoch
        ):
            self.apply_delta(answer.delta)
        hint = self.hint_at(answer.epoch)
        params = self.params
        noisy = (answer.vector - modular_gemm(hint, query.secret, params.q)) % params.q
        values = ((noisy + params.delta // 2) // params.delta) % params.p
        return self.layout.unpack_column(values)


class HintPirProtocol:
    """Single-process convenience wrapper: build, fetch, publish.

    Drives one server and one client through the full offline/online
    handshake — the shape the CLI and the benchmarks exercise.  A
    :class:`HintStale` outcome triggers one full re-download and retry,
    which is the protocol's prescribed recovery.
    """

    def __init__(
        self,
        records,
        record_bytes: int,
        params: SimplePirParams | None = None,
        seed: int = 0,
        retain_epochs: int = 4,
        client_seed: int = 1,
        backend: str | ComputeBackend | None = None,
    ):
        self.server = HintPirServer(
            records, record_bytes, params, seed=seed, retain_epochs=retain_epochs,
            backend=backend,
        )
        self.client = HintPirClient(self.server, seed=client_seed)

    def fetch(self, record_index: int) -> bytes:
        query = self.client.build_query(record_index)
        outcome = self.server.answer(query)
        if isinstance(outcome, HintStale):
            self.client.refresh(self.server)
            query = self.client.build_query(record_index)
            outcome = self.server.answer(query)
            if isinstance(outcome, HintStale):
                raise outcome  # fresh hint still refused: server bug
        return self.client.decode(query, outcome)

    def publish(self, log: UpdateLog) -> HintPublishReport:
        return self.server.publish(log)
