"""Record layout for the hint-PIR tier: records as matrix columns.

SimplePIR serves a (rows x cols) matrix over Z_p.  This layout packs
record ``i`` into **column** ``i`` — ``rows`` entries of ``p_log2`` bits
each — so one online query retrieves a whole record, and a mutation to
record ``i`` dirties exactly one column.  That column alignment is what
makes epoch delta-hints cheap: a publish touching ``k`` records yields a
``ΔDB @ A`` patch over ``k`` columns, not a full re-hint.

The layout also owns the transcript arithmetic: how many bytes the
offline hint, the online query, and the online answer occupy on the
wire for a given parameter set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import LayoutError
from repro.pir.simplepir import SimplePirParams


@dataclass(frozen=True)
class HintLayout:
    """Geometry of a hint-PIR deployment: ``num_records`` x ``record_bytes``."""

    num_records: int
    record_bytes: int
    params: SimplePirParams

    def __post_init__(self):
        if self.num_records < 1:
            raise LayoutError("hint-PIR layout needs at least one record")
        if self.record_bytes < 1:
            raise LayoutError("record_bytes must be positive")

    # -- geometry ---------------------------------------------------------

    @property
    def rows(self) -> int:
        """Entries per record: record bits split into p_log2-bit limbs."""
        bits = self.record_bytes * 8
        return -(-bits // self.params.p_log2)

    @property
    def cols(self) -> int:
        return self.num_records

    # -- transcript arithmetic -------------------------------------------

    @property
    def word_bytes(self) -> int:
        """Wire bytes per Z_q element."""
        return (self.params.q_log2 + 7) // 8

    @property
    def hint_bytes(self) -> int:
        """Offline download: the (rows x lwe_dim) hint matrix."""
        return self.rows * self.params.lwe_dim * self.word_bytes

    @property
    def query_bytes(self) -> int:
        """Online upload: one Z_q element per column."""
        return self.cols * self.word_bytes

    @property
    def answer_bytes(self) -> int:
        """Online download: one Z_q element per row."""
        return self.rows * self.word_bytes

    @property
    def db_bytes(self) -> int:
        return self.num_records * self.record_bytes

    @property
    def delta_entry_bytes(self) -> int:
        """Bytes per delta-hint value: signed, entries in (-(p-1), p-1)."""
        return (self.params.p_log2 + 1 + 7) // 8

    def patch_bytes(self, dirty_cols: int) -> int:
        """Wire size of a delta-hint over ``dirty_cols`` dirty columns.

        The client re-derives ``A`` from the 8-byte seed, so the server
        ships only the signed column deltas plus the dirty column ids —
        sublinear in the database for sparse churn.
        """
        return self.rows * dirty_cols * self.delta_entry_bytes + dirty_cols * 4 + 8

    # -- packing ----------------------------------------------------------

    def pack_record(self, record: bytes) -> np.ndarray:
        """One record -> a length-``rows`` column of Z_p entries."""
        if len(record) > self.record_bytes:
            raise LayoutError(
                f"record of {len(record)} bytes exceeds slot of "
                f"{self.record_bytes}"
            )
        padded = record.ljust(self.record_bytes, b"\x00")
        bits = np.unpackbits(np.frombuffer(padded, dtype=np.uint8), bitorder="little")
        limbs = np.zeros(self.rows * self.params.p_log2, dtype=np.uint8)
        limbs[: bits.size] = bits
        weights = np.int64(1) << np.arange(self.params.p_log2, dtype=np.int64)
        return limbs.reshape(self.rows, self.params.p_log2).astype(np.int64) @ weights

    def pack_records(self, records) -> np.ndarray:
        """All records -> the (rows x cols) database matrix."""
        records = list(records)
        if len(records) != self.num_records:
            raise LayoutError(
                f"layout holds {self.num_records} records, got {len(records)}"
            )
        matrix = np.empty((self.rows, self.cols), dtype=np.int64)
        for i, record in enumerate(records):
            matrix[:, i] = self.pack_record(record)
        return matrix

    def unpack_column(self, column: np.ndarray) -> bytes:
        """A decoded length-``rows`` column -> the record bytes."""
        column = np.asarray(column, dtype=np.int64)
        if column.shape != (self.rows,):
            raise LayoutError(
                f"column must have {self.rows} entries, got {column.shape}"
            )
        bits = (column[:, None] >> np.arange(self.params.p_log2)) & 1
        flat = bits.astype(np.uint8).reshape(-1)[: self.record_bytes * 8]
        return np.packbits(flat, bitorder="little").tobytes()
