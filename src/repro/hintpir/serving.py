"""Hint-PIR behind the serving runtime's dispatch windows.

Requests route by a *keyed* hash of the record index
(:class:`HintShardMap`, mirroring the keyword tier's
:class:`~repro.kvpir.serving.KeyShardMap`): shard placement is
unpredictable without the routing seed, so a client cannot aim load at
one replica, and each shard is an independent :class:`HintPirServer`
over its share of the records with its own LWE matrix and hint.

A dispatch window's queries are answered with one ``DB @ Q`` GEMM per
shard (:meth:`HintPirServer.answer_window`).  Staleness is *per-request
data*: an unpatchable hint resolves to a :class:`~repro.errors.HintStale`
value inside the response list — one stale client cannot fail its whole
batch — and :meth:`HintServeRegistry.decode` re-raises it typed at the
caller, exactly like the keyword tier's ``None`` -> ``KeyNotFound``.
"""

from __future__ import annotations

import asyncio
import hashlib
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.errors import HintPirError, HintStale, RoutingError
from repro.he.backend import ComputeBackend
from repro.hintpir.protocol import (
    HintPirClient,
    HintPirServer,
    HintPublishReport,
    HintTranscript,
)
from repro.mutate.log import UpdateLog
from repro.pir.simplepir import SimplePirParams
from repro.serve.registry import ServeRequest, ShardMap

#: Domain-separation suffix for hint-tier shard routing (keyword routing
#: uses 0xfe; candidate hashes use ``bytes([i])``; the record tag 0xff).
_ROUTE_DOMAIN = b"\xfd"


class HintShardMap:
    """Keyed-hash partition of a record index space across shards.

    The shard of record ``i`` is a keyed blake2b of the index — no
    contiguous ranges to probe — with a per-shard member directory so
    routing still yields a dense shard-local index (the column inside
    that shard's matrix).
    """

    def __init__(self, num_records: int, num_shards: int, seed: int = 0):
        if num_shards < 1:
            raise HintPirError("need at least one shard")
        if num_records < num_shards:
            raise HintPirError(
                f"cannot spread {num_records} records across {num_shards} shards"
            )
        self.num_records = num_records
        self.num_shards = num_shards
        self.seed = seed
        key = seed.to_bytes(8, "little", signed=True) + _ROUTE_DOMAIN
        shard_of = np.empty(num_records, dtype=np.int64)
        for index in range(num_records):
            digest = hashlib.blake2b(
                index.to_bytes(8, "little"), digest_size=8, key=key
            ).digest()
            shard_of[index] = int.from_bytes(digest, "little") % num_shards
        self._shard_of = shard_of
        self._members = [
            np.flatnonzero(shard_of == s).astype(np.int64)
            for s in range(num_shards)
        ]
        for shard_id, members in enumerate(self._members):
            if members.size == 0:
                raise HintPirError(
                    f"shard {shard_id} received no records; use fewer shards "
                    f"for {num_records} records"
                )
        local_of = np.empty(num_records, dtype=np.int64)
        for members in self._members:
            local_of[members] = np.arange(members.size)
        self._local_of = local_of

    def members(self, shard_id: int) -> np.ndarray:
        """Global record indices owned by ``shard_id``, in column order."""
        return self._members[self.check_shard(shard_id)]

    def check_shard(self, shard_id: int) -> int:
        shard_id = ShardMap._as_index(shard_id, "shard id")
        if not 0 <= shard_id < self.num_shards:
            raise RoutingError(
                f"shard {shard_id} out of range [0, {self.num_shards})"
            )
        return shard_id

    def route(self, global_index: int) -> tuple[int, int]:
        """Global record index -> (shard id, shard-local column)."""
        global_index = ShardMap._as_index(global_index, "record index")
        if not 0 <= global_index < self.num_records:
            raise RoutingError(
                f"record {global_index} out of range [0, {self.num_records})"
            )
        return int(self._shard_of[global_index]), int(self._local_of[global_index])

    def global_index(self, shard_id: int, local_index: int) -> int:
        members = self.members(shard_id)
        local_index = ShardMap._as_index(local_index, "local index")
        if not 0 <= local_index < members.size:
            raise RoutingError(
                f"local index {local_index} out of range for shard {shard_id}"
            )
        return int(members[local_index])


class HintServeRegistry:
    """Per-shard hint-PIR deployments over one logical record set.

    Each shard holds a :class:`HintPirServer` over its keyed share of the
    records and one :class:`HintPirClient` session (shared client ring,
    like :class:`~repro.serve.registry.RealShardRegistry`).  A global
    :meth:`publish` splits one update log by routing and advances every
    shard in the same logical epoch, so stale-hint handling is uniform
    across shards.
    """

    def __init__(
        self,
        records,
        record_bytes: int,
        params: SimplePirParams | None = None,
        num_shards: int = 1,
        seed: int = 0,
        retain_epochs: int = 4,
        hash_seed: int = 0,
        client_seed: int = 1,
        client_history: int = 8,
        truth_epochs: int | None = None,
        backend: str | ComputeBackend | None = None,
    ):
        self.params = params or SimplePirParams()
        self.record_bytes = record_bytes
        records = [bytes(r) for r in records]
        self.map = HintShardMap(len(records), num_shards, seed=hash_seed)
        self._records = records
        self.epoch = 0
        self.retain_epochs = retain_epochs
        #: epochs of ground truth to retain for :meth:`expected` audits;
        #: None keeps every epoch (fine at test scale, where the audit —
        #: "an answer from epoch e matches the records as of e" — must
        #: never be limited by bookkeeping).
        self.truth_epochs = truth_epochs
        #: Per-epoch ground truth for correctness audits: an answer from
        #: epoch ``e`` must decode to the record as of ``e`` — "current
        #: truth" would mislabel a correctly-served in-flight answer.
        self._truth: dict[int, list[bytes]] = {0: list(records)}
        self._servers: list[HintPirServer] = []
        self._clients: list[HintPirClient] = []
        for shard_id in range(num_shards):
            members = self.map.members(shard_id)
            server = HintPirServer(
                [records[int(g)] for g in members],
                record_bytes,
                self.params,
                seed=seed + shard_id,
                retain_epochs=retain_epochs,
                backend=backend,
            )
            self._servers.append(server)
            self._clients.append(
                HintPirClient(
                    server, seed=client_seed + shard_id, history=client_history
                )
            )

    @classmethod
    def random(
        cls,
        num_records: int,
        record_bytes: int,
        num_shards: int = 1,
        params: SimplePirParams | None = None,
        seed: int | None = None,
        **kwargs,
    ) -> "HintServeRegistry":
        rng = np.random.default_rng(seed)
        records = [rng.bytes(record_bytes) for _ in range(num_records)]
        return cls(
            records,
            record_bytes,
            params,
            num_shards,
            seed=0 if seed is None else seed,
            **kwargs,
        )

    @property
    def num_shards(self) -> int:
        return self.map.num_shards

    @property
    def num_records(self) -> int:
        return self.map.num_records

    def server(self, shard_id: int) -> HintPirServer:
        return self._servers[self.map.check_shard(shard_id)]

    def client(self, shard_id: int) -> HintPirClient:
        return self._clients[self.map.check_shard(shard_id)]

    # -- request path ------------------------------------------------------

    def make_request(self, global_index: int) -> ServeRequest:
        """Route and build the Regev query, tagged with the client's epoch."""
        shard_id, local = self.map.route(global_index)
        query = self._clients[shard_id].build_query(local)
        return ServeRequest(
            global_index=int(global_index),
            shard_id=shard_id,
            local_index=local,
            query=query,
            epoch=query.hint_epoch,
        )

    def decode(self, request: ServeRequest, response) -> bytes:
        """Record bytes, or the typed staleness the backend resolved to."""
        if isinstance(response, HintStale):
            raise response
        client = self._clients[self.map.check_shard(request.shard_id)]
        return client.decode(request.query, response)

    def refresh(self, shard_id: int | None = None) -> int:
        """Full hint re-download (all shards by default); returns bytes moved."""
        shards = (
            range(self.num_shards) if shard_id is None else [shard_id]
        )
        moved = 0
        for s in shards:
            s = self.map.check_shard(s)
            self._clients[s].refresh(self._servers[s])
            moved += self._servers[s].transcript().offline_bytes
        return moved

    # -- epoch publishes ---------------------------------------------------

    def publish(self, log: UpdateLog) -> list[HintPublishReport]:
        """Apply one global update log as one epoch step on every shard."""
        writes, appends = log.coalesced(self.num_records)
        if appends:
            raise HintPirError(
                "hint-PIR publishes cannot append records (query geometry "
                "would change); rebuild the deployment instead"
            )
        shard_logs = [UpdateLog() for _ in range(self.num_shards)]
        truth = list(self._truth[self.epoch])
        for index in sorted(writes):
            shard_id, local = self.map.route(index)
            record = writes[index]
            if record is None:
                shard_logs[shard_id].delete(local)
                truth[index] = b"\x00" * self.record_bytes
            else:
                shard_logs[shard_id].put(local, record)
                truth[index] = bytes(record).ljust(self.record_bytes, b"\x00")
        reports = [
            self._servers[s].publish(shard_logs[s])
            for s in range(self.num_shards)
        ]
        self.epoch += 1
        self._records = truth
        self._truth[self.epoch] = truth
        if self.truth_epochs is not None:
            horizon = self.epoch - self.truth_epochs - 1
            for epoch in [e for e in self._truth if e <= horizon]:
                del self._truth[epoch]
        return reports

    # -- accounting / ground truth ----------------------------------------

    def transcript(self) -> HintTranscript:
        """Aggregate byte accounting across all shards.

        ``query_bytes``/``answer_bytes`` stay per-query (a query touches
        one shard); the offline fields sum — a client session downloads
        every shard's hint.
        """
        parts = [server.transcript() for server in self._servers]
        return HintTranscript(
            hint_bytes=sum(t.hint_bytes for t in parts),
            seed_bytes=sum(t.seed_bytes for t in parts),
            query_bytes=max(t.query_bytes for t in parts),
            answer_bytes=max(t.answer_bytes for t in parts),
            db_bytes=sum(t.db_bytes for t in parts),
        )

    def expected(self, global_index: int, epoch: int | None = None) -> bytes:
        """Ground truth at ``epoch`` (default: current), for verification."""
        index = ShardMap._as_index(global_index, "record index")
        if not 0 <= index < self.num_records:
            raise RoutingError(
                f"record {index} out of range [0, {self.num_records})"
            )
        epoch = self.epoch if epoch is None else epoch
        if epoch not in self._truth:
            raise HintPirError(
                f"no ground truth retained for epoch {epoch} (held: "
                f"{sorted(self._truth)})"
            )
        return self._truth[epoch][index]


class HintCryptoBackend:
    """Answers each dispatch window with one batched GEMM per shard.

    Crypto runs on a thread pool so the event loop stays responsive,
    like :class:`~repro.kvpir.serving.KvCryptoBackend`.  The response
    list carries :class:`HintAnswer` or :class:`HintStale` values — a
    backend exception would fail the whole window, and staleness is an
    expected per-client condition, not a batch fault.
    """

    def __init__(self, registry: HintServeRegistry, max_workers: int | None = None):
        self.registry = registry
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="hintpir-worker"
        )

    def _serve_window(self, shard_id: int, queries: list) -> list:
        return self.registry.server(shard_id).answer_window(queries)

    async def answer(self, shard_id: int, requests: list[ServeRequest]) -> list:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool,
            self._serve_window,
            shard_id,
            [r.query for r in requests],
        )

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)
