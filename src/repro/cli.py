"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``        run a functional private retrieval end to end
``qps``         model IVE throughput for a DB size and batch
``figures``     list every reproduced table/figure and its bench target
``workloads``   show the Table III application workloads on the cluster
``area``        print the Table II area/power breakdown
"""

from __future__ import annotations

import argparse
import sys

from repro.params import PirParams

_FIGURES = {
    "Fig. 4a/4b": "benchmarks/bench_fig04_complexity.py",
    "Fig. 6": "benchmarks/bench_fig06_roofline.py",
    "Fig. 7d": "benchmarks/bench_fig04_complexity.py",
    "Fig. 8": "benchmarks/bench_fig08_dram_traffic.py",
    "Table II": "benchmarks/bench_table2_area_power.py",
    "Fig. 12": "benchmarks/bench_fig12_throughput.py",
    "Table III": "benchmarks/bench_table3_prior_hw.py",
    "Fig. 13a-e": "benchmarks/bench_fig13_sensitivity.py",
    "Table IV": "benchmarks/bench_table4_other_schemes.py",
    "Fig. 14a/14b": "benchmarks/bench_fig14_ark_scheduler.py",
}

#: DB size (GiB) -> ColTor dimensions at D0=256 with 16 KB records.
_DIMS = {2: 9, 4: 10, 8: 11, 16: 12, 32: 13, 64: 14, 128: 15}


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.pir.database import PirDatabase
    from repro.pir.protocol import PirProtocol

    params = PirParams.small(n=256, d0=8, num_dims=2)
    db = PirDatabase.random(
        params, num_records=args.records, record_bytes=args.record_bytes, seed=0
    )
    protocol = PirProtocol(params, db, seed=1)
    index = args.index % db.num_records
    result = protocol.retrieve(index)
    ok = result.record == db.record(index)
    print(f"retrieved record {index}: {'OK' if ok else 'MISMATCH'}")
    t = protocol.transcript
    print(
        f"query {t.query_bytes / 1024:.0f} KiB, response "
        f"{t.response_bytes / 1024:.0f} KiB, setup {t.setup_bytes / 1024:.0f} KiB"
    )
    return 0 if ok else 1


def cmd_qps(args: argparse.Namespace) -> int:
    from repro.arch.energy import energy_per_query
    from repro.systems.scale_up import ScaleUpSystem

    if args.db_gib not in _DIMS:
        print(f"supported DB sizes: {sorted(_DIMS)} GiB", file=sys.stderr)
        return 2
    params = PirParams.paper(d0=256, num_dims=_DIMS[args.db_gib])
    system = ScaleUpSystem(params)  # picks HBM or LPDDR placement
    lat = system.latency(args.batch)
    print(f"IVE, {args.db_gib} GiB DB ({system.placement.value}), batch {args.batch}:")
    print(f"  latency  {lat.total_s * 1e3:8.2f} ms")
    print(f"  QPS      {lat.qps:8.1f}")
    for name, value in lat.breakdown().items():
        print(f"  {name:<12s} {value * 1e3:8.2f} ms")
    print(f"  energy   {energy_per_query(system.simulator, args.batch):8.4f} J/query")
    return 0


def cmd_figures(_: argparse.Namespace) -> int:
    width = max(len(k) for k in _FIGURES)
    for figure, target in _FIGURES.items():
        print(f"{figure:<{width}}  {target}")
    print("\nrun all:  pytest benchmarks/ --benchmark-only")
    return 0


def cmd_workloads(_: argparse.Namespace) -> int:
    from repro.analysis.workloads import REAL_WORKLOADS
    from repro.systems.cluster import IveCluster

    base = PirParams.paper()
    print(f"{'workload':>8s} {'DB':>9s} {'record':>7s} {'QPS':>8s} {'latency':>9s}")
    for workload in REAL_WORKLOADS:
        cluster = IveCluster(workload.geometry(base), 16)
        lat = cluster.latency(128)
        print(
            f"{workload.name:>8s} {workload.db_bytes / (1 << 30):>6.0f}GiB "
            f"{workload.record_bytes:>6d}B {lat.qps:>8.1f} {lat.total_s:>8.2f}s"
        )
    print("(16-system IVE cluster, batch 128 — Table III)")
    return 0


def cmd_area(_: argparse.Namespace) -> int:
    from repro.arch.area import area
    from repro.arch.config import IveConfig
    from repro.arch.power import power

    a, p = area(IveConfig.ive()), power(IveConfig.ive())
    print(f"{'component':>14s} {'area mm2':>9s} {'peak W':>7s}")
    for name in a.per_core:
        print(f"{name:>14s} {a.per_core[name]:>9.2f} {p.per_core.get(name, 0):>7.2f}")
    print(f"{'1 core':>14s} {a.core_total:>9.2f} {p.core_total:>7.2f}")
    print(f"{'chip total':>14s} {a.total:>9.1f} {p.total:>7.1f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IVE (HPCA 2026) reproduction — functional PIR and accelerator models",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a functional private retrieval")
    demo.add_argument("--records", type=int, default=32)
    demo.add_argument("--record-bytes", type=int, default=128)
    demo.add_argument("--index", type=int, default=7)
    demo.set_defaults(func=cmd_demo)

    qps = sub.add_parser("qps", help="model IVE throughput")
    qps.add_argument("--db-gib", type=int, default=2)
    qps.add_argument("--batch", type=int, default=64)
    qps.set_defaults(func=cmd_qps)

    figures = sub.add_parser("figures", help="list reproduced tables/figures")
    figures.set_defaults(func=cmd_figures)

    workloads = sub.add_parser("workloads", help="Table III application workloads")
    workloads.set_defaults(func=cmd_workloads)

    area_cmd = sub.add_parser("area", help="Table II area/power breakdown")
    area_cmd.set_defaults(func=cmd_area)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
