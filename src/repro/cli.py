"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``        run a functional private retrieval end to end
``qps``         model IVE throughput for a DB size and batch
``figures``     list every reproduced table/figure and its bench target
``workloads``   show the Table III application workloads on the cluster
``area``        print the Table II area/power breakdown
``serve``       real-crypto smoke of the multi-shard serving runtime
``cluster``     multi-process coordinator/worker serving smoke (real crypto)
``loadtest``    open-loop load test (sim clock, real crypto, or cluster)
``obs-report``  validate + render a traced loadtest's exported artifacts
``obs-watch``   live (or --replay) terminal dashboard over a health JSONL
``batchpir``    cuckoo-batched multi-record retrieval + amortization model
``kvpir``       keyword PIR over a key-value store + keyword-overhead model
``hintpir``     hint-tier PIR (SimplePIR) + epoch refresh economics model
``update-churn``  online delta-apply vs full re-preprocess under churn
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.params import PirParams

_FIGURES = {
    "Fig. 4a/4b": "benchmarks/bench_fig04_complexity.py",
    "Fig. 6": "benchmarks/bench_fig06_roofline.py",
    "Fig. 7d": "benchmarks/bench_fig04_complexity.py",
    "Fig. 8": "benchmarks/bench_fig08_dram_traffic.py",
    "Table II": "benchmarks/bench_table2_area_power.py",
    "Fig. 12": "benchmarks/bench_fig12_throughput.py",
    "Table III": "benchmarks/bench_table3_prior_hw.py",
    "Fig. 13a-e": "benchmarks/bench_fig13_sensitivity.py",
    "Table IV": "benchmarks/bench_table4_other_schemes.py",
    "Table IV (hintpir)": "benchmarks/bench_hintpir.py",
    "Fig. 14a/14b": "benchmarks/bench_fig14_ark_scheduler.py",
}

#: DB size (GiB) -> ColTor dimensions at D0=256 with 16 KB records.
_DIMS = {2: 9, 4: 10, 8: 11, 16: 12, 32: 13, 64: 14, 128: 15}


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.pir.database import PirDatabase
    from repro.pir.protocol import PirProtocol

    params = PirParams.small(n=256, d0=8, num_dims=2)
    db = PirDatabase.random(
        params, num_records=args.records, record_bytes=args.record_bytes, seed=0
    )
    protocol = PirProtocol(params, db, seed=1)
    index = args.index % db.num_records
    result = protocol.retrieve(index)
    ok = result.record == db.record(index)
    print(f"retrieved record {index}: {'OK' if ok else 'MISMATCH'}")
    t = protocol.transcript
    print(
        f"query {t.query_bytes / 1024:.0f} KiB, response "
        f"{t.response_bytes / 1024:.0f} KiB, setup {t.setup_bytes / 1024:.0f} KiB"
    )
    return 0 if ok else 1


def cmd_qps(args: argparse.Namespace) -> int:
    from repro.arch.energy import energy_per_query
    from repro.systems.scale_up import ScaleUpSystem

    if args.db_gib not in _DIMS:
        print(f"supported DB sizes: {sorted(_DIMS)} GiB", file=sys.stderr)
        return 2
    params = PirParams.paper(d0=256, num_dims=_DIMS[args.db_gib])
    system = ScaleUpSystem(params)  # picks HBM or LPDDR placement
    lat = system.latency(args.batch)
    print(f"IVE, {args.db_gib} GiB DB ({system.placement.value}), batch {args.batch}:")
    print(f"  latency  {lat.total_s * 1e3:8.2f} ms")
    print(f"  QPS      {lat.qps:8.1f}")
    for name, value in lat.breakdown().items():
        print(f"  {name:<12s} {value * 1e3:8.2f} ms")
    print(f"  energy   {energy_per_query(system.simulator, args.batch):8.4f} J/query")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Byte-correct records through the full serve path (real crypto)."""
    import asyncio

    from repro.serve import RealCryptoBackend, RealShardRegistry, ServeRuntime
    from repro.systems.batching import BatchPolicy

    params = PirParams.small(n=256, d0=8, num_dims=2)
    registry = RealShardRegistry.random(
        params,
        num_records=args.records,
        record_bytes=args.record_bytes,
        num_shards=args.shards,
        seed=args.seed,
        backend=args.backend,
    )
    policy = BatchPolicy(
        waiting_window_s=args.window_ms / 1e3, max_batch=args.max_batch
    )

    async def run() -> list:
        runtime = ServeRuntime(registry, RealCryptoBackend(registry), policy)
        indices = [i % registry.num_records for i in range(args.queries)]
        async with runtime:
            results = await asyncio.gather(
                *(runtime.serve_index(i) for i in indices)
            )
        return [runtime.metrics, results]

    metrics, results = asyncio.run(run())
    correct = sum(
        registry.decode(r.request, r.response)
        == registry.expected(r.request.global_index)
        for r in results
    )
    print(
        f"served {metrics.served} queries on {registry.num_shards} shards: "
        f"{correct}/{len(results)} byte-correct "
        f"({'OK' if correct == len(results) else 'MISMATCH'})"
    )
    lat = metrics.latency_percentiles()

    def ms(value: float | None) -> str:
        # Percentiles are None (not 0.0) when nothing was served.
        return "n/a" if value is None else f"{value * 1e3:.0f} ms"

    print(
        f"mean batch {metrics.mean_batch:.1f}, p50 {ms(lat['p50_s'])}, "
        f"p95 {ms(lat['p95_s'])}, achieved {metrics.achieved_qps:.1f} QPS"
    )
    return 0 if correct == len(results) else 1


def cmd_cluster(args: argparse.Namespace) -> int:
    """Byte-correct records through the multi-process cluster runtime."""
    import asyncio

    from repro.cluster import ClusterBackend, ClusterCoordinator, ClusterRegistry
    from repro.mutate import UpdateLog
    from repro.serve import ServeRuntime
    from repro.systems.batching import BatchPolicy

    params = PirParams.small(n=256, d0=8, num_dims=2)
    registry = ClusterRegistry.random(
        params,
        num_records=args.records,
        record_bytes=args.record_bytes,
        num_shards=args.shards,
        seed=args.seed,
    )
    policy = BatchPolicy(
        waiting_window_s=args.window_ms / 1e3, max_batch=args.max_batch
    )

    async def run():
        coordinator = ClusterCoordinator(
            registry,
            num_workers=args.workers,
            replication=args.replication,
            backend=args.backend,
        )
        async with coordinator:
            backend = ClusterBackend(coordinator)
            runtime = ServeRuntime(registry, backend, policy)
            async with runtime:
                results = await asyncio.gather(
                    *(
                        runtime.serve_index(i % registry.num_records)
                        for i in range(args.queries)
                    )
                )
            correct = sum(
                registry.decode(r.request, r.response)
                == registry.expected(r.request.global_index)
                for r in results
            )
            publish_ok = True
            if args.publish:
                target = 0
                log = UpdateLog().put(target, b"\x42" * registry.record_bytes)
                await coordinator.publish(log)
                runtime = ServeRuntime(registry, backend, policy)
                async with runtime:
                    fresh = await runtime.serve_index(target)
                publish_ok = (
                    registry.decode(fresh.request, fresh.response)
                    == registry.expected(target)
                )
            return correct, len(results), publish_ok, coordinator.stats

    correct, total, publish_ok, stats = asyncio.run(run())
    ok = correct == total and publish_ok
    print(
        f"served {total} queries on {registry.num_shards} shards across "
        f"{args.workers} worker processes: {correct}/{total} byte-correct"
    )
    if args.publish:
        print(
            f"epoch publish to {registry.current_epoch}: "
            f"{'OK' if publish_ok else 'MISMATCH'}"
        )
    print(
        f"batches {stats.batches_sent}, retried {stats.batches_retried}, "
        f"deaths {stats.worker_deaths}, epochs {stats.epochs_published} "
        f"({'OK' if ok else 'MISMATCH'})"
    )
    return 0 if ok else 1


def cmd_loadtest(args: argparse.Namespace) -> int:
    """Open-loop load test; prints a JSON report to stdout."""
    import asyncio
    import json
    import time

    from repro.serve import loadgen
    from repro.serve.dispatcher import AdmissionConfig, ServeRuntime
    from repro.systems.batching import BatchPolicy

    if args.queries is None:
        args.queries = 10000 if args.mode == "sim" else 24
    if args.rate is None:
        args.rate = 2000.0 if args.mode == "sim" else 50.0
    coordinator = None
    if args.pattern == "poisson":
        arrivals = loadgen.poisson_arrivals(args.rate, args.queries, seed=args.seed)
    elif args.pattern == "bursty":
        arrivals = loadgen.bursty_arrivals(
            args.rate / 2, 2 * args.rate, args.queries, seed=args.seed
        )
    else:
        arrivals = loadgen.diurnal_arrivals(
            args.rate, args.queries, period_s=60.0, seed=args.seed
        )
    admission = AdmissionConfig(max_queue_depth=args.max_queue)
    wall_start = time.monotonic()

    recorder = None
    if args.postmortem_dir or args.slo or args.health_out:
        from repro.obs.events import FlightRecorder

        recorder = FlightRecorder(dump_dir=args.postmortem_dir)
    slo_specs = []
    if args.slo:
        from repro.obs.slo import parse_slo

        slo_specs = [parse_slo(text) for text in args.slo]
    if args.health_out:
        open(args.health_out, "w").close()  # truncate: one run, one file

    tracer = None
    profiler = None
    previous_profiler = None
    if args.trace:
        from repro.obs import KernelProfiler, Tracer
        from repro.obs.profile import install as install_profiler

        tracer = Tracer()
        profiler = KernelProfiler()
        # In-process kernels (real-mode serving, cluster-mode query
        # building) accumulate here; worker-process kernels are merged in
        # by the coordinator at shutdown.
        previous_profiler = install_profiler(profiler)

    if args.serving in ("batchpir", "kvpir") and args.mode != "sim":
        print("--serving batchpir/kvpir is a sim-mode model", file=sys.stderr)
        return 2
    if args.serving == "hintpir" and args.mode == "cluster":
        print("--serving hintpir runs in sim or real mode", file=sys.stderr)
        return 2
    if args.publish_period is not None and not (
        args.serving == "hintpir" and args.mode == "real"
    ):
        print(
            "--publish-period requires --serving hintpir --mode real",
            file=sys.stderr,
        )
        return 2
    if args.mode == "sim":
        from repro.serve import SimShardRegistry, SimulatedBackend

        if args.db_gib not in _DIMS:
            print(f"supported DB sizes: {sorted(_DIMS)} GiB", file=sys.stderr)
            return 2
        registry = SimShardRegistry(
            PirParams.paper(d0=256, num_dims=_DIMS[args.db_gib]),
            num_shards=args.shards,
            batchpir=args.serving == "batchpir",
            kvpir=args.serving == "kvpir",
            hintpir=args.serving == "hintpir",
        )
        policy = BatchPolicy(
            waiting_window_s=registry.waiting_window_s(), max_batch=args.max_batch
        )
        backend = SimulatedBackend(registry, tracer=tracer)
    elif args.serving == "hintpir":
        # Real hint-tier serving: per-shard SimplePIR deployments behind
        # the dispatch windows, with optional mid-traffic epoch publishes
        # (the stale-hint path a production hint tier must survive).
        from repro.hintpir import HintCryptoBackend, HintServeRegistry
        from repro.pir.simplepir import SimplePirParams

        registry = HintServeRegistry.random(
            num_records=args.records,
            record_bytes=args.record_bytes,
            num_shards=args.shards,
            params=SimplePirParams(lwe_dim=64),
            seed=args.seed,
            client_history=1 << 20,  # decode audit replays every epoch
            backend=args.backend,
        )
        policy = BatchPolicy(
            waiting_window_s=args.window_ms / 1e3, max_batch=args.max_batch
        )
        backend = HintCryptoBackend(registry)
    elif args.mode == "cluster":
        from repro.cluster import ClusterBackend, ClusterCoordinator, ClusterRegistry

        params = PirParams.small(n=256, d0=8, num_dims=2)
        registry = ClusterRegistry.random(
            params,
            num_records=args.records,
            record_bytes=args.record_bytes,
            num_shards=args.shards,
            seed=args.seed,
        )
        policy = BatchPolicy(
            waiting_window_s=args.window_ms / 1e3, max_batch=args.max_batch
        )
        coordinator = ClusterCoordinator(
            registry,
            num_workers=args.workers,
            backend=args.backend,
            tracer=tracer,
            profiler=profiler,
            recorder=recorder,
        )
        backend = ClusterBackend(coordinator)
    else:
        from repro.serve import RealCryptoBackend, RealShardRegistry

        params = PirParams.small(n=256, d0=8, num_dims=2)
        registry = RealShardRegistry.random(
            params,
            num_records=args.records,
            record_bytes=args.record_bytes,
            num_shards=args.shards,
            seed=args.seed,
            backend=args.backend,
        )
        policy = BatchPolicy(
            waiting_window_s=args.window_ms / 1e3, max_batch=args.max_batch
        )
        backend = RealCryptoBackend(registry, tracer=tracer)

    async def run():
        if coordinator is not None:
            await coordinator.start()
        try:
            runtime = ServeRuntime(
                registry, backend, policy, admission, tracer=tracer,
                recorder=recorder,
            )
            runtime.start()
            evaluator = None
            if slo_specs:
                from repro.obs.slo import SloEvaluator

                evaluator = SloEvaluator(
                    runtime.metrics.series, slo_specs, recorder=recorder
                )
            sampler_task = None
            stop_sampling = asyncio.Event()
            if evaluator is not None or args.health_out:
                from repro.obs.export import append_health_jsonl, health_snapshot

                async def sample_health() -> None:
                    loop = asyncio.get_running_loop()
                    while True:
                        try:
                            # Timer-based wait: advances the virtual clock in
                            # sim mode exactly like a real sleep would.
                            await asyncio.wait_for(
                                stop_sampling.wait(), args.health_interval
                            )
                        except asyncio.TimeoutError:
                            pass
                        now = loop.time()
                        verdicts = (
                            evaluator.poll(now) if evaluator is not None else []
                        )
                        if args.health_out:
                            append_health_jsonl(
                                args.health_out,
                                health_snapshot(
                                    now,
                                    runtime.metrics,
                                    args.health_interval,
                                    verdicts,
                                    coordinator.cluster_snapshot()
                                    if coordinator is not None
                                    else None,
                                ),
                            )
                        if stop_sampling.is_set():
                            return

                sampler_task = asyncio.create_task(
                    sample_health(), name="health-sampler"
                )
            if args.distribution == "zipf":
                indices = loadgen.zipf_indices(
                    registry.num_records, args.queries, a=args.zipf_a, seed=args.seed
                )
            else:
                indices = loadgen.uniform_indices(
                    registry.num_records, args.queries, seed=args.seed
                )
            publisher_task = None
            stop_publishing = asyncio.Event()
            if args.publish_period is not None:
                import numpy as np

                from repro.mutate import UpdateLog

                pub_rng = np.random.default_rng(args.seed + 1)

                async def publish_epochs() -> None:
                    while True:
                        try:
                            await asyncio.wait_for(
                                stop_publishing.wait(), args.publish_period
                            )
                            return
                        except asyncio.TimeoutError:
                            pass
                        dirty = max(
                            1, round(args.publish_churn * registry.num_records)
                        )
                        log = UpdateLog()
                        for idx in pub_rng.choice(
                            registry.num_records, size=dirty, replace=False
                        ):
                            log.put(int(idx), pub_rng.bytes(args.record_bytes))
                        registry.publish(log)

                publisher_task = asyncio.create_task(
                    publish_epochs(), name="epoch-publisher"
                )
            report = await loadgen.run_open_loop(
                runtime,
                arrivals,
                indices,
                collect_results=args.serving == "hintpir" and args.mode == "real",
            )
            if publisher_task is not None:
                stop_publishing.set()
                await publisher_task
            if sampler_task is not None:
                stop_sampling.set()  # one final sample fires on the way out
                await sampler_task
            cluster_snap = (
                coordinator.cluster_snapshot() if coordinator is not None else None
            )
            return report, runtime, cluster_snap, evaluator
        finally:
            if coordinator is not None:
                await coordinator.aclose()

    try:
        if args.mode == "sim":
            from repro.serve import run_in_virtual_time

            (report, runtime, cluster_snap, evaluator), virtual_s = (
                run_in_virtual_time(run())
            )
        else:
            report, runtime, cluster_snap, evaluator = asyncio.run(run())
            virtual_s = None
    finally:
        if args.trace:
            install_profiler(previous_profiler)

    out = {
        "mode": args.mode,
        "pattern": args.pattern,
        "serving": args.serving,
        "distribution": args.distribution,
        "shards": args.shards,
        "offered": report.offered,
        "offered_qps": report.offered_qps,
        "completed": report.completed,
        "rejected": report.rejected,
        "errored": report.errored,
        "wall_s": time.monotonic() - wall_start,
        "virtual_s": virtual_s,
        "metrics": report.metrics,
    }
    hint_wrong = 0
    if args.serving == "hintpir" and args.mode == "real":
        # Correctness audit: every completed response must decode to the
        # ground truth at its answer's epoch, resolve to a delta-patched
        # hint, or be the typed HintStale — never a wrong byte.  Decoding
        # in epoch order replays the hint patches the way a client would.
        from repro.errors import HintStale

        correct = stale = 0
        results = sorted(
            report.results or [], key=lambda r: getattr(r.response, "epoch", -1)
        )
        for result in results:
            try:
                value = registry.decode(result.request, result.response)
            except HintStale:
                stale += 1
                continue
            truth = registry.expected(
                result.request.global_index, epoch=result.response.epoch
            )
            if value == truth:
                correct += 1
            else:
                hint_wrong += 1
        out["hintpir"] = {
            "decoded_correct": correct,
            "wrong_bytes": hint_wrong,
            "stale_rejections": stale,
            "epochs_published": registry.epoch,
            "hint_downloads": sum(
                registry.client(s).downloads for s in range(registry.num_shards)
            ),
            "patched_epochs": sum(
                registry.client(s).patched_epochs
                for s in range(registry.num_shards)
            ),
            "offline_bytes": registry.transcript().offline_bytes,
            "online_bytes_per_query": registry.transcript().online_bytes,
        }
    if evaluator is not None:
        out["slo"] = evaluator.summary()
    if recorder is not None:
        out["flight_recorder"] = {
            "events": len(recorder.events()),
            "dropped": recorder.dropped,
            "postmortems": recorder.dumps_written,
        }
    if args.health_out:
        out["health_out"] = args.health_out
    if args.prom_out:
        from repro.obs.export import render_prometheus

        with open(args.prom_out, "w") as fh:
            fh.write(
                render_prometheus(
                    runtime.metrics.registry.snapshot(), cluster=cluster_snap
                )
            )
        out["prom_out"] = args.prom_out
    if coordinator is not None:
        stats = coordinator.stats
        out["cluster"] = {
            "workers": args.workers,
            "batches_sent": stats.batches_sent,
            "batches_retried": stats.batches_retried,
            "worker_deaths": stats.worker_deaths,
            "heartbeat_timeouts": stats.heartbeat_timeouts,
            "rebalanced_shards": stats.rebalanced_shards,
            "epochs_published": stats.epochs_published,
        }
    if args.trace:
        spans_path = f"{args.obs_out}.spans.jsonl"
        trace_path = f"{args.obs_out}.trace.json"
        obs_path = f"{args.obs_out}.obs.json"
        tracer.export_jsonl(spans_path)
        tracer.export_chrome(trace_path)
        profile = profiler.snapshot()
        obs = {
            "mode": args.mode,
            "metrics": report.metrics,
            "live_series": runtime.metrics.live_series(),
            "kernel_profile": profile,
        }
        if profile and args.mode != "sim":
            from repro.obs import measured_vs_modeled

            obs["measured_vs_modeled"] = measured_vs_modeled(
                profile, params, max(1, report.completed)
            )
        if cluster_snap is not None:
            obs["cluster"] = cluster_snap
        with open(obs_path, "w") as fh:
            json.dump(obs, fh, indent=2)
        out["obs_files"] = {
            "spans": spans_path,
            "trace": trace_path,
            "obs": obs_path,
        }
    print(json.dumps(out, indent=2))
    breached = (
        args.fail_on_breach
        and evaluator is not None
        and evaluator.breaches > 0
    )
    return 0 if report.errored == 0 and hint_wrong == 0 and not breached else 1


def cmd_obs_report(args: argparse.Namespace) -> int:
    """Validate a traced loadtest's exports, then render the digest."""
    from repro.obs import (
        render_postmortem,
        render_report,
        validate_chrome_trace,
        validate_obs_json,
        validate_postmortem,
        validate_spans_jsonl,
    )

    if args.prefix is None and args.postmortem is None:
        print("error: need a PREFIX and/or --postmortem FILE", file=sys.stderr)
        return 2
    if args.prefix is not None:
        spans = validate_spans_jsonl(f"{args.prefix}.spans.jsonl")
        trace = validate_chrome_trace(f"{args.prefix}.trace.json")
        obs = validate_obs_json(f"{args.prefix}.obs.json")
        for line in render_report(
            spans, trace, obs, obs.get("measured_vs_modeled") or None
        ):
            print(line)
    if args.postmortem is not None:
        doc = validate_postmortem(args.postmortem)
        for line in render_postmortem(doc):
            print(line)
    return 0


def cmd_obs_watch(args: argparse.Namespace) -> int:
    """Render a health JSONL as a terminal dashboard (live tail or replay)."""
    import json
    import time

    from repro.obs.export import (
        read_health_jsonl,
        render_watch_header,
        render_watch_row,
        render_watch_rows,
    )

    if args.replay:
        rows = read_health_jsonl(args.health)
        for line in render_watch_rows(rows):
            print(line)
        breached = any(row.get("worst_state") == "breach" for row in rows)
        return 1 if args.fail_on_breach and breached else 0
    # Live mode: tail the file a running loadtest is appending to.  Only
    # newline-terminated lines are consumed, so a row caught mid-write is
    # simply picked up whole on the next poll.
    print(render_watch_header(), flush=True)
    seen = 0
    breached = False
    deadline = None if args.timeout is None else time.monotonic() + args.timeout
    while True:
        try:
            with open(args.health) as fh:
                lines = fh.readlines()
        except OSError:
            lines = []
        complete = [line for line in lines if line.endswith("\n")]
        for line in complete[seen:]:
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue  # a torn row self-heals; strictness is --replay's job
            breached = breached or row.get("worst_state") == "breach"
            print(render_watch_row(row), flush=True)
        seen = len(complete)
        if deadline is not None and time.monotonic() >= deadline:
            return 1 if args.fail_on_breach and breached else 0
        time.sleep(args.interval)


def cmd_batchpir(args: argparse.Namespace) -> int:
    """Cuckoo-batched multi-record retrieval: real crypto + amortization model."""
    import time

    import numpy as np

    from repro.batchpir import BatchPirProtocol, amortized_cost_curve

    if args.db_gib not in _DIMS:
        print(f"supported DB sizes: {sorted(_DIMS)} GiB", file=sys.stderr)
        return 2
    params = PirParams.small(n=256, d0=8, num_dims=2)
    rng = np.random.default_rng(args.seed)
    records = [rng.bytes(args.record_bytes) for _ in range(args.records)]
    protocol = BatchPirProtocol(
        params, records, max_batch=args.k, record_bytes=args.record_bytes,
        hash_seed=args.seed, seed=args.seed,
    )
    k = min(args.k, args.records)
    indices = [int(i) for i in rng.choice(args.records, size=k, replace=False)]
    start = time.monotonic()
    result = protocol.retrieve_batch(indices)
    elapsed = time.monotonic() - start
    ok = all(rec == records[g] for rec, g in zip(result.records, indices))
    layout = protocol.layout
    print(
        f"retrieved {k} records from {args.records} across "
        f"{layout.num_buckets} buckets ({result.num_rounds} round"
        f"{'s' if result.num_rounds != 1 else ''}): "
        f"{'OK' if ok else 'MISMATCH'} in {elapsed:.2f}s"
    )
    print(
        f"replication {layout.replication_factor:.2f}x, bucket geometry "
        f"D0={layout.bucket_params.d0} d={layout.bucket_params.num_dims}, "
        f"{protocol.transcript.per_query_online_bytes() / 1024:.0f} KiB "
        "online/query"
    )
    points = amortized_cost_curve(
        PirParams.paper(d0=256, num_dims=_DIMS[args.db_gib]), ks=(4, 16, 64)
    )
    print(f"modeled on IVE, {args.db_gib} GiB DB (amortized batch pass):")
    print(
        f"  {'k':>4s} {'buckets':>8s} {'single ms':>10s} {'amort ms':>9s} "
        f"{'speedup':>8s} {'placement':>9s}"
    )
    for p in points:
        print(
            f"  {p.k:>4d} {p.num_buckets:>8d} {p.single_query_s * 1e3:>10.2f} "
            f"{p.amortized_per_query_s * 1e3:>9.3f} {p.speedup:>7.1f}x "
            f"{p.placement:>9s}"
        )
    return 0 if ok else 1


def cmd_kvpir(args: argparse.Namespace) -> int:
    """Keyword PIR over a key-value store: real crypto + keyword-overhead model."""
    import time

    import numpy as np

    from repro.errors import KeyNotFound
    from repro.kvpir import KvPirProtocol, keyword_overhead_curve
    from repro.kvpir.layout import random_items

    if args.db_gib not in _DIMS:
        print(f"supported DB sizes: {sorted(_DIMS)} GiB", file=sys.stderr)
        return 2
    params = PirParams.small(n=256, d0=8, num_dims=2)
    rng = np.random.default_rng(args.seed)
    items = random_items(args.keys, args.value_bytes, seed=args.seed)
    protocol = KvPirProtocol(
        params,
        items,
        tag_bytes=args.tag_bytes,
        max_lookup_batch=args.k,
        hash_seed=args.seed,
        seed=args.seed,
    )
    keys = list(items)
    k = min(args.k, len(keys))
    wanted = [keys[int(i)] for i in rng.choice(len(keys), size=k, replace=False)]
    start = time.monotonic()
    result = protocol.lookup_many(wanted)
    elapsed = time.monotonic() - start
    ok = not result.missing and all(
        result.values[key] == items[key] for key in wanted
    )
    try:  # an absent key must surface as the typed miss, never as bytes
        protocol.lookup(rng.bytes(13))
        ok = False
        print("absent key decoded to a value (tag collision?)", file=sys.stderr)
    except KeyNotFound:
        pass
    layout = protocol.layout
    print(
        f"looked up {k}/{len(keys)} keys across {layout.num_slots} slots "
        f"({layout.stash_slots} stash): {'OK' if ok else 'MISMATCH'} in "
        f"{elapsed:.2f}s; absent key -> KeyNotFound"
    )
    print(
        f"{layout.slot_expansion:.2f}x slots/key, "
        f"<= {layout.candidates_per_lookup} probes/lookup, tag {layout.tag_bytes} B, "
        f"{protocol.transcript.per_query_online_bytes() / 1024:.0f} KiB online/lookup"
    )
    points = keyword_overhead_curve(
        PirParams.paper(d0=256, num_dims=_DIMS[args.db_gib]), ks=(4, 16, 64)
    )
    print(f"modeled on IVE, {args.db_gib} GiB live records (keyword vs index):")
    print(
        f"  {'k':>4s} {'index ms':>9s} {'lookup ms':>10s} {'overhead':>9s} "
        f"{'placement':>11s}"
    )
    for p in points:
        print(
            f"  {p.k:>4d} {p.amortized_index_s * 1e3:>9.3f} "
            f"{p.amortized_lookup_s * 1e3:>10.3f} {p.amortized_overhead:>8.1f}x "
            f"{p.index_placement + '->' + p.kv_placement:>11s}"
        )
    single = points[-1]
    print(
        f"standalone: index {single.index_query_s * 1e3:.2f} ms, lookup "
        f"{single.lookup_s * 1e3:.2f} ms ({single.standalone_overhead:.1f}x, "
        f"{single.candidates} probes)"
    )
    return 0 if ok else 1


def cmd_hintpir(args: argparse.Namespace) -> int:
    """Hint-tier PIR: real offline/online roundtrip + refresh economics model."""
    import time

    import numpy as np

    from repro.errors import HintStale
    from repro.hintpir import (
        HintPirClient,
        HintPirProtocol,
        churn_refresh_curve,
        crossover_churn,
        hintpir_vs_full,
    )
    from repro.mutate import UpdateLog
    from repro.pir.simplepir import SimplePirParams

    if args.db_gib not in _DIMS:
        print(f"supported DB sizes: {sorted(_DIMS)} GiB", file=sys.stderr)
        return 2
    params = SimplePirParams(lwe_dim=args.lwe_dim)
    rng = np.random.default_rng(args.seed)
    records = [rng.bytes(args.record_bytes) for _ in range(args.records)]
    protocol = HintPirProtocol(
        records, args.record_bytes, params, seed=args.seed,
        retain_epochs=args.retain, client_seed=args.seed + 1,
        backend=args.backend,
    )
    t = protocol.server.transcript()
    print(
        f"{args.records} records x {args.record_bytes} B: offline "
        f"{t.offline_bytes / 1024:.1f} KiB hint, online "
        f"{t.online_bytes / 1024:.2f} KiB/query "
        f"(DB {t.db_bytes / 1024:.1f} KiB)"
    )

    # Online phase: one batched window over k random records.
    k = min(args.k, args.records)
    picks = [int(i) for i in rng.choice(args.records, size=k, replace=False)]
    start = time.monotonic()
    queries = [protocol.client.build_query(i) for i in picks]
    answers = protocol.server.answer_window(queries)
    decoded = [
        protocol.client.decode(q, a) for q, a in zip(queries, answers)
    ]
    elapsed = time.monotonic() - start
    ok = all(value == records[i] for value, i in zip(decoded, picks))
    print(
        f"answered {k} queries in one batched window: "
        f"{'OK' if ok else 'MISMATCH'} in {elapsed * 1e3:.1f} ms"
    )

    # Epoch publishes: delta-patched decode, then the typed stale rejection.
    laggard = HintPirClient(protocol.server, seed=args.seed + 2)
    truth = list(records)
    dirty_per_epoch = max(1, round(args.churn * args.records))
    for _ in range(args.epochs):
        log = UpdateLog()
        for idx in rng.choice(args.records, size=dirty_per_epoch, replace=False):
            record = rng.bytes(args.record_bytes)
            log.put(int(idx), record)
            truth[int(idx)] = record
        report = protocol.publish(log)
    target = int(rng.integers(args.records))
    patched_ok = (
        protocol.fetch(target) == truth[target]
        and protocol.client.hint_epoch == protocol.server.epoch
    )
    print(
        f"published {args.epochs} epochs at {args.churn:.1%} churn "
        f"({dirty_per_epoch} writes, {report.patch_bytes} B delta-hint each); "
        f"client delta-patched to epoch {protocol.client.hint_epoch}: "
        f"{'OK' if patched_ok else 'MISMATCH'}"
    )
    stale_ok = False
    if args.epochs > args.retain:
        outcome = protocol.server.answer(laggard.build_query(target))
        stale_ok = isinstance(outcome, HintStale)
        print(
            f"laggard at epoch 0 past the {args.retain}-epoch window -> "
            f"{'typed HintStale (OK)' if stale_ok else 'MISMATCH: answered'}"
        )
    else:
        stale_ok = True

    model_params = PirParams.paper(d0=256, num_dims=_DIMS[args.db_gib])
    points = hintpir_vs_full(model_params, batches=(1, 16, 64, 256))
    print(
        f"modeled on IVE, {args.db_gib} GiB DB (hint-tier online vs full "
        f"RowSel/ColTor pass):"
    )
    print(
        f"  {'batch':>6s} {'window ms':>10s} {'per-query ms':>13s} "
        f"{'vs full pass':>12s}"
    )
    for p in points:
        print(
            f"  {p.batch:>6d} {p.online_s * 1e3:>10.3f} "
            f"{p.per_query_s * 1e3:>13.4f} {p.speedup:>11.1f}x"
        )
    curve = churn_refresh_curve(model_params)
    print("hint refresh economics (per epoch, per client):")
    print(
        f"  {'churn':>8s} {'dirty':>7s} {'mode':>6s} {'refresh MiB':>12s} "
        f"{'online MiB':>11s} {'refresh %':>10s}"
    )
    for p in curve:
        print(
            f"  {p.churn:>8.4%} {p.dirty_records:>7d} {p.refresh_mode:>6s} "
            f"{p.refresh_bytes / 2**20:>12.3f} {p.online_bytes / 2**20:>11.3f} "
            f"{p.refresh_fraction:>9.1%}"
        )
    crossover = crossover_churn(curve)
    print(
        "refresh dominates the client's wire budget beyond "
        f"{crossover:.2%} churn/epoch"
        if crossover is not None
        else "refresh never dominates across the swept churn range"
    )
    return 0 if ok and patched_ok and stale_ok else 1


def cmd_update_churn(args: argparse.Namespace) -> int:
    """Mutable-database churn: real delta applies + the IVE update model."""
    import time

    import numpy as np

    from repro.he.poly import RingContext
    from repro.mutate import UpdateLog, VersionedDatabase, churn_update_curve
    from repro.pir.database import PirDatabase

    if args.db_gib not in _DIMS:
        print(f"supported DB sizes: {sorted(_DIMS)} GiB", file=sys.stderr)
        return 2
    if not 0.0 < args.churn <= 1.0:
        print("--churn must be a fraction in (0, 1]", file=sys.stderr)
        return 2
    params = PirParams.small(n=256, d0=8, num_dims=4)
    rng = np.random.default_rng(args.seed)
    records = [rng.bytes(args.record_bytes) for _ in range(args.records)]
    ring = RingContext(params)

    vdb = VersionedDatabase(params, records, args.record_bytes, ring=ring)
    start = time.monotonic()
    vdb.current.db.preprocess(ring)  # the full-rebuild baseline, timed
    full_s = time.monotonic() - start
    updates_per_batch = max(1, round(args.churn * args.records))
    print(
        f"{args.records} records x {args.record_bytes} B, full preprocess "
        f"{full_s * 1e3:.0f} ms; churn {args.churn:.2%} "
        f"({updates_per_batch} writes/batch)"
    )
    print(
        f"  {'epoch':>5s} {'dirty':>6s} {'of':>5s} {'work':>6s} "
        f"{'apply ms':>9s} {'speedup':>8s}"
    )
    ok = True
    for _ in range(args.batches):
        log = UpdateLog()
        for idx in rng.choice(args.records, size=updates_per_batch, replace=False):
            log.put(int(idx), rng.bytes(args.record_bytes))
        start = time.monotonic()
        snap = vdb.apply(log)
        apply_s = time.monotonic() - start
        cost = snap.cost
        print(
            f"  {snap.epoch:>5d} {cost.polys_repacked:>6d} {cost.full_polys:>5d} "
            f"{cost.delta_fraction:>6.1%} {apply_s * 1e3:>9.2f} "
            f"{full_s / apply_s:>7.1f}x"
        )
    fresh = PirDatabase.from_records(
        [vdb.record(i) for i in range(vdb.num_records)], params, args.record_bytes
    )
    identical = bool(np.array_equal(fresh.planes, vdb.current.db.planes))
    ok = ok and identical
    print(f"planes byte-identical to a fresh rebuild: {'OK' if identical else 'MISMATCH'}")

    model_churns = tuple(sorted({0.001, args.churn, 0.1}))
    points = churn_update_curve(
        PirParams.paper(d0=256, num_dims=_DIMS[args.db_gib]),
        churns=model_churns,
    )
    print(f"modeled on IVE, {args.db_gib} GiB DB (delta apply vs full re-preprocess):")
    print(f"  {'churn':>7s} {'dirty polys':>12s} {'apply ms':>9s} {'full ms':>8s} {'speedup':>8s}")
    for p in points:
        print(
            f"  {p.churn:>6.2%} {p.dirty_polys:>12d} {p.apply_s * 1e3:>9.2f} "
            f"{p.full_s * 1e3:>8.1f} {p.speedup:>7.1f}x ({p.placement})"
        )
    return 0 if ok else 1


def cmd_figures(_: argparse.Namespace) -> int:
    width = max(len(k) for k in _FIGURES)
    for figure, target in _FIGURES.items():
        print(f"{figure:<{width}}  {target}")
    print("\nrun all:  pytest benchmarks/ --benchmark-only")
    return 0


def cmd_workloads(_: argparse.Namespace) -> int:
    from repro.analysis.workloads import REAL_WORKLOADS
    from repro.systems.cluster import IveCluster

    base = PirParams.paper()
    print(f"{'workload':>8s} {'DB':>9s} {'record':>7s} {'QPS':>8s} {'latency':>9s}")
    for workload in REAL_WORKLOADS:
        cluster = IveCluster(workload.geometry(base), 16)
        lat = cluster.latency(128)
        print(
            f"{workload.name:>8s} {workload.db_bytes / (1 << 30):>6.0f}GiB "
            f"{workload.record_bytes:>6d}B {lat.qps:>8.1f} {lat.total_s:>8.2f}s"
        )
    print("(16-system IVE cluster, batch 128 — Table III)")
    return 0


def cmd_area(_: argparse.Namespace) -> int:
    from repro.arch.area import area
    from repro.arch.config import IveConfig
    from repro.arch.power import power

    a, p = area(IveConfig.ive()), power(IveConfig.ive())
    print(f"{'component':>14s} {'area mm2':>9s} {'peak W':>7s}")
    for name in a.per_core:
        print(f"{name:>14s} {a.per_core[name]:>9.2f} {p.per_core.get(name, 0):>7.2f}")
    print(f"{'1 core':>14s} {a.core_total:>9.2f} {p.core_total:>7.2f}")
    print(f"{'chip total':>14s} {a.total:>9.1f} {p.total:>7.1f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IVE (HPCA 2026) reproduction — functional PIR and accelerator models",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a functional private retrieval")
    demo.add_argument("--records", type=int, default=32)
    demo.add_argument("--record-bytes", type=int, default=128)
    demo.add_argument("--index", type=int, default=7)
    demo.set_defaults(func=cmd_demo)

    qps = sub.add_parser("qps", help="model IVE throughput")
    qps.add_argument("--db-gib", type=int, default=2)
    qps.add_argument("--batch", type=int, default=64)
    qps.set_defaults(func=cmd_qps)

    batchpir = sub.add_parser(
        "batchpir", help="cuckoo-batched multi-record retrieval"
    )
    batchpir.add_argument("--records", type=int, default=256)
    batchpir.add_argument("--record-bytes", type=int, default=32)
    batchpir.add_argument("--k", type=int, default=16, help="records per batch")
    batchpir.add_argument("--seed", type=int, default=0)
    batchpir.add_argument("--db-gib", type=int, default=2, help="model DB size")
    batchpir.set_defaults(func=cmd_batchpir)

    kvpir = sub.add_parser(
        "kvpir", help="keyword PIR over a sparse key-value store"
    )
    kvpir.add_argument("--keys", type=int, default=256)
    kvpir.add_argument("--value-bytes", type=int, default=24)
    kvpir.add_argument("--tag-bytes", type=int, default=8)
    kvpir.add_argument("--k", type=int, default=8, help="lookups per batch")
    kvpir.add_argument("--seed", type=int, default=0)
    kvpir.add_argument("--db-gib", type=int, default=2, help="model DB size")
    kvpir.set_defaults(func=cmd_kvpir)

    hintpir = sub.add_parser(
        "hintpir", help="hint-tier PIR: offline hint + sublinear online phase"
    )
    hintpir.add_argument("--records", type=int, default=128)
    hintpir.add_argument("--record-bytes", type=int, default=32)
    hintpir.add_argument("--lwe-dim", type=int, default=128)
    hintpir.add_argument("--k", type=int, default=16, help="queries per window")
    hintpir.add_argument(
        "--epochs", type=int, default=3, help="mutation epochs to publish"
    )
    hintpir.add_argument(
        "--churn", type=float, default=0.05, help="fraction of records per epoch"
    )
    hintpir.add_argument(
        "--retain", type=int, default=2, help="delta-hint retain window (epochs)"
    )
    hintpir.add_argument("--seed", type=int, default=0)
    hintpir.add_argument("--db-gib", type=int, default=2, help="model DB size")
    hintpir.add_argument(
        "--backend",
        default="planned",
        help="compute backend name from the repro.he.backend registry "
        "(unknown names exit 2 listing the registered ones)",
    )
    hintpir.set_defaults(func=cmd_hintpir)

    churn = sub.add_parser(
        "update-churn", help="online database updates: delta apply vs re-preprocess"
    )
    churn.add_argument("--records", type=int, default=512)
    churn.add_argument("--record-bytes", type=int, default=64)
    churn.add_argument(
        "--churn", type=float, default=0.01, help="fraction of records per batch"
    )
    churn.add_argument("--batches", type=int, default=3)
    churn.add_argument("--seed", type=int, default=0)
    churn.add_argument("--db-gib", type=int, default=2, help="model DB size")
    churn.set_defaults(func=cmd_update_churn)

    figures = sub.add_parser("figures", help="list reproduced tables/figures")
    figures.set_defaults(func=cmd_figures)

    workloads = sub.add_parser("workloads", help="Table III application workloads")
    workloads.set_defaults(func=cmd_workloads)

    area_cmd = sub.add_parser("area", help="Table II area/power breakdown")
    area_cmd.set_defaults(func=cmd_area)

    serve = sub.add_parser("serve", help="real-crypto serving runtime smoke")
    serve.add_argument("--records", type=int, default=16)
    serve.add_argument("--record-bytes", type=int, default=64)
    serve.add_argument("--shards", type=int, default=2)
    serve.add_argument("--queries", type=int, default=16)
    serve.add_argument("--window-ms", type=float, default=10.0)
    serve.add_argument("--max-batch", type=int, default=8)
    serve.add_argument("--seed", type=int, default=3)
    serve.add_argument(
        "--backend",
        default="planned",
        help="compute backend name from the repro.he.backend registry",
    )
    serve.set_defaults(func=cmd_serve)

    cluster = sub.add_parser(
        "cluster", help="multi-process cluster serving smoke (real crypto)"
    )
    cluster.add_argument("--records", type=int, default=16)
    cluster.add_argument("--record-bytes", type=int, default=64)
    cluster.add_argument("--shards", type=int, default=2)
    cluster.add_argument("--workers", type=int, default=2)
    cluster.add_argument(
        "--replication", type=int, default=1, help="replicas per shard"
    )
    cluster.add_argument("--queries", type=int, default=16)
    cluster.add_argument("--window-ms", type=float, default=10.0)
    cluster.add_argument("--max-batch", type=int, default=8)
    cluster.add_argument("--seed", type=int, default=3)
    cluster.add_argument(
        "--publish",
        action="store_true",
        help="also broadcast an epoch publish and re-read the updated record",
    )
    cluster.add_argument(
        "--backend",
        default="planned",
        help="compute backend name, reconstructed inside each worker process",
    )
    cluster.set_defaults(func=cmd_cluster)

    loadtest = sub.add_parser("loadtest", help="open-loop serving load test")
    loadtest.add_argument(
        "--mode", choices=("sim", "real", "cluster"), default="sim"
    )
    loadtest.add_argument(
        "--workers", type=int, default=2, help="cluster mode worker processes"
    )
    loadtest.add_argument(
        "--pattern", choices=("poisson", "bursty", "diurnal"), default="poisson"
    )
    loadtest.add_argument(
        "--distribution",
        choices=("uniform", "zipf"),
        default="uniform",
        help="record-popularity distribution of the generated indices",
    )
    loadtest.add_argument(
        "--serving",
        choices=("plain", "batchpir", "kvpir", "hintpir"),
        default="plain",
        help="serving tier: per-query scans, cuckoo-batched passes, "
        "keyword lookups (sim mode), or the hint tier's batched plaintext "
        "GEMM (sim and real modes)",
    )
    loadtest.add_argument(
        "--publish-period",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --serving hintpir --mode real: publish a mutation epoch "
        "every SECONDS mid-traffic, exercising the delta-patch/HintStale "
        "path under load",
    )
    loadtest.add_argument(
        "--publish-churn",
        type=float,
        default=0.05,
        help="fraction of records dirtied per --publish-period epoch",
    )
    loadtest.add_argument(
        "--zipf-a", type=float, default=1.2, help="Zipf exponent (with zipf)"
    )
    loadtest.add_argument(
        "--queries", type=int, default=None, help="default: 10000 sim / 24 real"
    )
    loadtest.add_argument(
        "--rate", type=float, default=None, help="QPS; default: 2000 sim / 50 real"
    )
    loadtest.add_argument("--shards", type=int, default=4)
    loadtest.add_argument("--max-batch", type=int, default=128)
    loadtest.add_argument("--max-queue", type=int, default=4096)
    loadtest.add_argument("--seed", type=int, default=0)
    loadtest.add_argument("--db-gib", type=int, default=2, help="sim mode DB size")
    loadtest.add_argument("--records", type=int, default=16, help="real mode records")
    loadtest.add_argument("--record-bytes", type=int, default=64)
    loadtest.add_argument("--window-ms", type=float, default=10.0)
    loadtest.add_argument(
        "--trace",
        action="store_true",
        help="per-request tracing + kernel profiling; exports "
        "<obs-out>.spans.jsonl, .trace.json (chrome://tracing), .obs.json",
    )
    loadtest.add_argument(
        "--obs-out",
        default="loadtest",
        help="output path prefix for the --trace artifacts",
    )
    loadtest.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="SPEC",
        help="SLO to evaluate during the run, e.g. 'p99<=0.25', "
        "'reject<=0.01', 'error<=0.001', optionally '@FAST/SLOW' window "
        "seconds; repeatable",
    )
    loadtest.add_argument(
        "--fail-on-breach",
        action="store_true",
        help="exit non-zero if any --slo entered the breach state",
    )
    loadtest.add_argument(
        "--health-out",
        default=None,
        metavar="FILE",
        help="append periodic health snapshots (JSONL) for repro obs-watch",
    )
    loadtest.add_argument(
        "--health-interval",
        type=float,
        default=1.0,
        help="seconds between health snapshots / SLO polls",
    )
    loadtest.add_argument(
        "--postmortem-dir",
        default=None,
        metavar="DIR",
        help="flight-recorder post-mortem dumps on worker death / "
        "heartbeat timeout",
    )
    loadtest.add_argument(
        "--prom-out",
        default=None,
        metavar="FILE",
        help="write the final metrics registry as Prometheus text exposition",
    )
    loadtest.add_argument(
        "--backend",
        default="planned",
        help="compute backend for real/cluster/hintpir serving (sim mode "
        "ignores it); unknown names exit 2 listing the registered ones",
    )
    loadtest.set_defaults(func=cmd_loadtest)

    obs_report = sub.add_parser(
        "obs-report", help="validate + render a traced loadtest's artifacts"
    )
    obs_report.add_argument(
        "prefix",
        nargs="?",
        default=None,
        help="the --obs-out prefix the loadtest exported under",
    )
    obs_report.add_argument(
        "--postmortem",
        default=None,
        metavar="FILE",
        help="also validate + render a flight-recorder post-mortem dump",
    )
    obs_report.set_defaults(func=cmd_obs_report)

    obs_watch = sub.add_parser(
        "obs-watch", help="terminal dashboard over a --health-out JSONL"
    )
    obs_watch.add_argument(
        "health", help="the health JSONL a loadtest writes via --health-out"
    )
    obs_watch.add_argument(
        "--replay",
        action="store_true",
        help="render the whole file strictly and exit (default: live tail)",
    )
    obs_watch.add_argument(
        "--interval", type=float, default=0.5, help="live-tail poll seconds"
    )
    obs_watch.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="stop the live tail after this many seconds (default: forever)",
    )
    obs_watch.add_argument(
        "--fail-on-breach",
        action="store_true",
        help="exit non-zero if any rendered snapshot was in breach",
    )
    obs_watch.set_defaults(func=cmd_obs_watch)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
