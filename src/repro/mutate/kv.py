"""Cuckoo-aware delta application for keyword-PIR slot tables.

A keyword store (:class:`~repro.kvpir.layout.KvDatabase`) is two layered
placements: keys cuckoo-placed into *table* slots, and those slots
replicated into the *batch* buckets that actually get served.  Applying a
key-space delta therefore means:

1. **table maintenance** — value updates write their key's slot in
   place; deletes zero and free the slot; *new* keys run the shared
   cuckoo random-walk insertion (``repro.hashing.cuckoo`` candidates,
   bounded evictions) against the live occupancy, possibly displacing
   resident keys (each displacement dirties two slots), spilling to a
   reserved always-probed stash slot when the walk exhausts its bound —
   and raising the typed :class:`~repro.errors.RebuildRequired` when the
   stash itself is full;
2. **bucket propagation** — every dirty slot is re-encoded
   (``tag(key) || value``) and patched into each of its candidate
   buckets through the dirty-poly delta core
   (:func:`repro.mutate.versioned.apply_record_updates`), optionally
   straight into a live server's preprocessed bucket set.

The :class:`KvUpdateCost` returned per apply accounts for displacements,
stash spills, and the poly-level work, proving the delta path touches
``O(dirty slots * num_hashes)`` bucket polynomials instead of rebuilding
the replicated table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batchpir.layout import BatchDatabase
from repro.errors import MutateError, RebuildRequired
from repro.he.poly import RingContext
from repro.kvpir.layout import KvDatabase
from repro.mutate.log import KvUpdateLog
from repro.mutate.versioned import UpdateCost, apply_record_updates
from repro.pir.database import PreprocessedDatabase


def apply_batch_record_updates(
    batch_db: BatchDatabase,
    updates: dict[int, bytes],
    pres: list[PreprocessedDatabase] | None = None,
    ring: RingContext | None = None,
) -> UpdateCost:
    """Propagate record updates through a cuckoo-replicated bucket set.

    Each updated global record is re-packed into every candidate bucket
    that replicates it — ``O(updates * num_hashes)`` dirty bucket
    polynomials, never a rebuild of the replicated table.  With ``pres``
    (a live :class:`~repro.batchpir.server.BatchPirServer`'s per-bucket
    preprocessed databases, ``[s.db for s in server.servers]``) the dirty
    polynomials are re-NTT'd straight into the serving copies.  Shared by
    plain batch-PIR deployments and the keyword layer
    (:class:`VersionedKvDatabase`), which feeds it dirty *slots*.
    """
    layout = batch_db.layout
    if pres is not None and len(pres) != layout.num_buckets:
        raise MutateError(
            f"got {len(pres)} preprocessed buckets, layout has "
            f"{layout.num_buckets}"
        )
    # Validate the whole delta before mutating anything: a rejected
    # update must not leave ground truth diverged from the bucket polys.
    for global_index, record in updates.items():
        if not 0 <= global_index < layout.num_records:
            raise MutateError(
                f"record {global_index} out of range [0, {layout.num_records})"
            )
        if len(record) != layout.record_bytes:
            raise MutateError(
                f"update for record {global_index} has {len(record)} bytes, "
                f"layout expects {layout.record_bytes}"
            )
    by_bucket: dict[int, dict[int, bytes]] = {}
    for global_index, record in sorted(updates.items()):
        batch_db._records[global_index] = record
        for bucket in dict.fromkeys(layout.config.candidates(global_index)):
            by_bucket.setdefault(bucket, {})[
                layout.local_index(bucket, global_index)
            ] = record
    bucket_plane = layout.bucket_layouts[0].plane_count
    total = UpdateCost(
        records_touched=0,
        records_appended=0,
        polys_repacked=0,
        polys_ntted=0,
        full_polys=layout.num_buckets
        * bucket_plane
        * layout.bucket_params.num_db_polys,
    )
    for bucket, writes in sorted(by_bucket.items()):
        new_db, _, cost = apply_record_updates(
            batch_db.bucket_dbs[bucket],
            writes,
            [],
            pre=pres[bucket] if pres is not None else None,
            ring=ring if pres is not None else None,
            in_place=True,
        )
        batch_db.bucket_dbs[bucket] = new_db
        total = UpdateCost(
            records_touched=total.records_touched + cost.records_touched,
            records_appended=0,
            polys_repacked=total.polys_repacked + cost.polys_repacked,
            polys_ntted=total.polys_ntted + cost.polys_ntted,
            full_polys=total.full_polys,
        )
    return total


@dataclass(frozen=True)
class KvUpdateCost:
    """Accounting for one keyword-store delta application."""

    epoch: int
    keys_updated: int  # existing keys whose value changed
    keys_inserted: int
    keys_deleted: int
    displaced: int  # resident keys kicked during insertion walks
    stash_spills: int  # inserts that landed in a stash slot this apply
    stash_in_use: int  # occupied stash slots after the apply
    dirty_slots: int
    dirty_buckets: int
    total_buckets: int
    poly_cost: UpdateCost

    @property
    def speedup_vs_full(self) -> float:
        return self.poly_cost.speedup_vs_full


@dataclass
class _Staged:
    """Scratch copy of the table occupancy one apply mutates, then commits."""

    slots: dict[int, bytes]
    stash: list[bytes | None]
    slot_of: dict[bytes, int]
    items: dict[bytes, bytes]


class VersionedKvDatabase:
    """A keyword store that absorbs :class:`KvUpdateLog` deltas in place.

    Build the underlying :class:`KvDatabase` with ``reserve_stash > 0``
    if inserts are expected — spilled inserts need a free always-probed
    stash slot, and a store built without headroom raises
    :class:`RebuildRequired` on the first spill.

    ``apply`` mutates the wrapped database (and, when given, a live
    server's preprocessed buckets) and bumps ``epoch``; the layout —
    hashing, geometry, probe count — never changes, which is exactly why
    clients need no notification beyond the epoch stamp.
    """

    def __init__(self, db: KvDatabase, ring: RingContext | None = None):
        self.db = db
        self.layout = db.layout
        self.ring = ring
        self.epoch = 0
        # Live occupancy, maintained incrementally from the build-time
        # assignment: table bucket -> key, and a fixed-capacity stash.
        self._slots: dict[int, bytes] = dict(db.assignment.slots)
        self._stash: list[bytes | None] = list(db.assignment.stash) + [None] * (
            self.layout.stash_slots - len(db.assignment.stash)
        )
        self._slot_of: dict[bytes, int] = {k: b for b, k in self._slots.items()}
        for i, key in enumerate(db.assignment.stash):
            self._slot_of[key] = self.layout.table.num_buckets + i
        # Alias (not copy) the store's ground truth so KvDatabase.value /
        # contains stay correct for whoever still holds the wrapped db.
        self._items: dict[bytes, bytes] = db._items

    # -- ground truth ------------------------------------------------------
    @property
    def num_keys(self) -> int:
        return len(self._items)

    @property
    def stash_in_use(self) -> int:
        return sum(1 for k in self._stash if k is not None)

    def contains(self, key: bytes) -> bool:
        return bytes(key) in self._items

    def value(self, key: bytes) -> bytes:
        return self._items[bytes(key)]

    # -- table maintenance (on STAGED state: apply commits atomically) -----
    def _free_slot(self, key: bytes, staged: "_Staged") -> int:
        """Remove ``key`` from the staged table/stash; returns its slot."""
        slot = staged.slot_of.pop(key)
        if slot < self.layout.table.num_buckets:
            del staged.slots[slot]
        else:
            staged.stash[slot - self.layout.table.num_buckets] = None
        return slot

    def _insert_key(
        self,
        key: bytes,
        rng: np.random.Generator,
        dirty: set[int],
        stats: dict,
        staged: "_Staged",
    ) -> None:
        """Shared-core cuckoo insertion against the staged occupancy."""
        table = self.layout.table
        current = key
        for _ in range(table.max_evictions):
            cands = table.candidates(current)
            free = [b for b in cands if b not in staged.slots]
            if free:
                staged.slots[free[0]] = current
                staged.slot_of[current] = free[0]
                dirty.add(free[0])
                return
            victim_bucket = cands[int(rng.integers(len(cands)))]
            victim = staged.slots[victim_bucket]
            staged.slots[victim_bucket] = current
            staged.slot_of[current] = victim_bucket
            dirty.add(victim_bucket)
            del staged.slot_of[victim]
            stats["displaced"] += 1
            current = victim
        # Walk exhausted: the wandering key spills to a reserved stash slot.
        for i, occupant in enumerate(staged.stash):
            if occupant is None:
                staged.stash[i] = current
                slot = table.num_buckets + i
                staged.slot_of[current] = slot
                dirty.add(slot)
                stats["spilled"] += 1
                return
        raise RebuildRequired(
            f"insertion of {key!r} exhausted {table.max_evictions} evictions "
            f"and all {self.layout.stash_slots} stash slots are occupied; "
            "rebuild the store with a larger table or fresh hash seed",
            spilled_keys=1,
        )

    # -- delta application -------------------------------------------------
    def apply(
        self,
        log: KvUpdateLog,
        pres: list[PreprocessedDatabase] | None = None,
        ring: RingContext | None = None,
    ) -> KvUpdateCost:
        """Apply one key-space delta; dirty buckets only.

        ``pres`` is the live server's per-bucket preprocessed databases
        (e.g. ``[s.db for s in kv_server.batch_server.servers]``); when
        given, dirty polynomials are re-NTT'd straight into them so the
        server answers against the new epoch without a rebuild.

        Atomic: the delta is validated up front and table maintenance runs
        on a staged copy of the occupancy, so a rejected apply (absent-key
        delete, wrong value size, :class:`RebuildRequired` mid-walk)
        leaves ground truth and the served bucket polynomials exactly as
        they were — never diverged.
        """
        ring = ring if ring is not None else self.ring
        if pres is not None and len(pres) != self.layout.batch.num_buckets:
            raise MutateError(
                f"got {len(pres)} preprocessed buckets, layout has "
                f"{self.layout.batch.num_buckets}"
            )
        changes = log.coalesced()
        for key, value in changes.items():
            if value is None:
                if key not in self._items:
                    raise MutateError(f"cannot delete absent key {key!r}")
            elif len(value) != self.layout.value_bytes:
                raise MutateError(
                    f"value for {key!r} has {len(value)} bytes, store "
                    f"expects {self.layout.value_bytes}"
                )
        rng = np.random.default_rng(
            self.layout.table.seed + 0x6D75_7461 + self.epoch
        )
        staged = _Staged(
            slots=dict(self._slots),
            stash=list(self._stash),
            slot_of=dict(self._slot_of),
            items=dict(self._items),
        )
        dirty: set[int] = set()
        stats = {"displaced": 0, "spilled": 0}
        updated = inserted = deleted = 0

        # Deletes first: they free table slots the same apply's inserts
        # can reuse (bounded walks stay short under churn).
        for key, value in sorted(changes.items()):
            if value is not None:
                continue
            del staged.items[key]
            dirty.add(self._free_slot(key, staged))
            deleted += 1
        for key, value in sorted(changes.items()):
            if value is None:
                continue
            if key in staged.items:
                if staged.items[key] != value:
                    staged.items[key] = value
                    dirty.add(staged.slot_of[key])
                    updated += 1
            else:
                staged.items[key] = value
                self._insert_key(key, rng, dirty, stats, staged)
                inserted += 1

        # Commit the staged occupancy (keeping the KvDatabase._items alias
        # alive), then propagate — nothing below has a validated failure
        # path left.
        self._slots, self._stash, self._slot_of = (
            staged.slots,
            staged.stash,
            staged.slot_of,
        )
        self._items.clear()
        self._items.update(staged.items)

        # Re-encode every dirty slot and propagate to its buckets.
        slot_records: dict[int, bytes] = {}
        empty = b"\0" * self.layout.record_bytes
        for slot in sorted(dirty):
            if slot < self.layout.table.num_buckets:
                key = self._slots.get(slot)
            else:
                key = self._stash[slot - self.layout.table.num_buckets]
            slot_records[slot] = (
                empty if key is None else self.layout.encode(key, self._items[key])
            )
        dirty_buckets = len(
            {
                b
                for slot in slot_records
                for b in self.layout.batch.config.candidates(slot)
            }
        )
        poly_cost = apply_batch_record_updates(
            self.db.batch_db, slot_records, pres=pres, ring=ring
        )

        self.epoch += 1
        return KvUpdateCost(
            epoch=self.epoch,
            keys_updated=updated,
            keys_inserted=inserted,
            keys_deleted=deleted,
            displaced=stats["displaced"],
            stash_spills=stats["spilled"],
            stash_in_use=self.stash_in_use,
            dirty_slots=len(dirty),
            dirty_buckets=dirty_buckets,
            total_buckets=self.layout.batch.num_buckets,
            poly_cost=poly_cost,
        )
