"""Epoch-versioned database snapshots with dirty-plane delta application.

A full ``PirDatabase.preprocess`` CRT+NTTs every polynomial of every
plane — linear in the database.  But a churn window touches a handful of
records, and a record lives in exactly one polynomial per plane: applying
the delta only needs to re-pack and re-NTT the *dirty* ``(plane, poly)``
cells.  :class:`VersionedDatabase` does exactly that, producing an
:class:`EpochSnapshot` per applied :class:`~repro.mutate.log.UpdateLog`:

* the raw plaintext planes are copied (one memcpy) and dirty cells are
  re-packed through the vectorized packer;
* the preprocessed NTT-domain planes — the logQ/logP-inflated objects
  that dominate both storage and preprocessing time — are shared
  copy-on-write: the new snapshot holds the *same* ``RnsPoly`` objects
  for every clean cell and fresh ones only for dirty cells;
* every apply returns an :class:`UpdateCost` whose counters prove the
  work was proportional to the delta, not the database.

Snapshots are immutable once published: in-flight queries keep decoding
against the epoch they were admitted under (``repro.mutate.serving``)
while new admissions see the new epoch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MutateError
from repro.he.backend import ComputeBackend, resolve_backend
from repro.he.batched import RnsPolyVec
from repro.he.poly import Domain, RingContext
from repro.mutate.log import UpdateLog
from repro.pir.database import PirDatabase, PreprocessedDatabase
from repro.pir.layout import RecordLayout


@dataclass(frozen=True)
class UpdateCost:
    """Work accounting for one delta application.

    ``full_polys`` is what a from-scratch ``preprocess()`` would have
    CRT+NTT'd (every plane row of the geometry); the ratio proves the
    delta path is sublinear in the database for sublinear churn.
    """

    records_touched: int
    records_appended: int
    polys_repacked: int  # dirty (plane, poly) cells re-packed from bytes
    polys_ntted: int  # dirty cells re-CRT/NTT'd into the preprocessed form
    full_polys: int  # plane_count * num_db_polys: the full-preprocess cost
    #: RowSel GEMM tensor rows memcpy'd into the new snapshot's cache so
    #: the first post-swap query pays no O(database) restack.  A pure
    #: copy (no CRT/NTT arithmetic), so it is accounted separately from
    #: the sublinear ``polys_repacked``/``polys_ntted`` work counters.
    tensor_polys_copied: int = 0

    @property
    def delta_fraction(self) -> float:
        """Fraction of the full preprocessing work this apply performed."""
        return self.polys_repacked / self.full_polys if self.full_polys else 0.0

    @property
    def speedup_vs_full(self) -> float:
        """Counted-work ratio of a full re-preprocess to this delta."""
        return self.full_polys / max(1, self.polys_repacked)

    def merge(self, other: "UpdateCost") -> "UpdateCost":
        """Combine accounting across shards / buckets of one logical apply."""
        return UpdateCost(
            records_touched=self.records_touched + other.records_touched,
            records_appended=self.records_appended + other.records_appended,
            polys_repacked=self.polys_repacked + other.polys_repacked,
            polys_ntted=self.polys_ntted + other.polys_ntted,
            full_polys=self.full_polys + other.full_polys,
            tensor_polys_copied=self.tensor_polys_copied + other.tensor_polys_copied,
        )


def _dirty_cells(layout: RecordLayout, indices) -> set[tuple[int, int]]:
    """The ``(plane, poly)`` cells whose packed bytes a record set touches."""
    cells: set[tuple[int, int]] = set()
    for idx in indices:
        poly = layout.poly_index(idx)
        for plane in range(layout.plane_count):
            cells.add((plane, poly))
    return cells


def apply_record_updates(
    db: PirDatabase,
    writes: dict[int, bytes | None],
    appends: list[bytes | None],
    pre: PreprocessedDatabase | None = None,
    ring: RingContext | None = None,
    in_place: bool = False,
    backend: "str | ComputeBackend | None" = None,
) -> tuple[PirDatabase, PreprocessedDatabase | None, UpdateCost]:
    """Apply coalesced writes/appends to one database, dirty cells only.

    Returns ``(new_db, new_pre, cost)``.  ``new_pre`` shares every clean
    ``RnsPoly`` with ``pre`` (copy-on-write); with ``in_place`` the dirty
    cells are patched into ``pre``'s own plane lists instead — the mode
    the kv/batch bucket path uses to update a live server's preprocessed
    buckets.  ``None`` in ``writes``/``appends`` means tombstone (a
    zeroed record; the index space stays dense).

    The shared delta core: :class:`VersionedDatabase` drives it for flat
    databases and ``repro.mutate.kv`` reuses it per cuckoo bucket.
    """
    layout = db.layout
    tombstone = b"\0" * layout.record_bytes
    if pre is not None and ring is None:
        ring = pre.ring
    if pre is None and ring is not None:
        raise MutateError("a ring without a preprocessed database is meaningless")

    records = list(db._records)
    touched: list[int] = []
    for index, record in sorted(writes.items()):
        if not 0 <= index < layout.num_records:
            raise MutateError(
                f"record index {index} out of range [0, {layout.num_records})"
            )
        record = tombstone if record is None else record
        if len(record) != layout.record_bytes:
            raise MutateError(
                f"update for record {index} has {len(record)} bytes, layout "
                f"expects {layout.record_bytes}"
            )
        if records[index] != record:
            records[index] = record
            touched.append(index)
    appended = list(range(layout.num_records, layout.num_records + len(appends)))
    for record in appends:
        record = tombstone if record is None else record
        if len(record) != layout.record_bytes:
            raise MutateError(
                f"appended record has {len(record)} bytes, layout expects "
                f"{layout.record_bytes}"
            )
        records.append(record)

    if appends:
        # Same geometry, more records; LayoutError surfaces when the
        # geometry is out of polynomials (the typed "database full").
        layout = RecordLayout(
            params=layout.params,
            record_bytes=layout.record_bytes,
            num_records=len(records),
        )

    cells = sorted(_dirty_cells(layout, touched + appended))
    if not cells and not appends:
        cost = UpdateCost(0, 0, 0, 0, layout.plane_count * layout.params.num_db_polys)
        return db, pre, cost

    planes = db.planes if not cells else db.planes.copy()
    new_db = PirDatabase.from_parts(layout, records, planes)
    # Re-pack every dirty cell in one vectorized call per plane.
    by_plane: dict[int, list[int]] = {}
    for plane, poly in cells:
        by_plane.setdefault(plane, []).append(poly)
    for plane, polys in by_plane.items():
        blobs = [new_db.poly_blob(plane, poly) for poly in polys]
        planes[plane, polys] = layout.pack_polys(blobs)

    new_pre = pre
    tensor_copied = 0
    if pre is not None:
        if not in_place:
            new_pre = PreprocessedDatabase(
                layout=layout, ring=ring, planes=[list(row) for row in pre.planes]
            )
            # Seed the new snapshot's RowSel GEMM cache from the parent's
            # (a memcpy, no NTT work) so the first post-swap query does
            # not re-stack the whole plane inside a serving request.
            for plane, tensor in pre._tensors.items():
                new_pre._tensors[plane] = tensor.copy()
                tensor_copied += tensor.shape[0]
        # One batched CRT + stacked NTT per plane over just the dirty
        # cells, routed through the resolved compute backend; set_poly
        # keeps the RowSel GEMM tensor cache coherent.
        resolved = resolve_backend(backend)
        for plane, polys in by_plane.items():
            coeff = RnsPolyVec.from_small_coeffs(
                ring, planes[plane, polys], domain=Domain.COEFF
            )
            vec = resolved.vec_to_ntt(coeff)
            for j, poly in enumerate(polys):
                new_pre.set_poly(plane, poly, vec.poly(j))
        if in_place:
            pre.layout = layout

    cost = UpdateCost(
        records_touched=len(touched),
        records_appended=len(appended),
        polys_repacked=len(cells),
        polys_ntted=len(cells) if pre is not None else 0,
        full_polys=layout.plane_count * layout.params.num_db_polys,
        tensor_polys_copied=tensor_copied,
    )
    return new_db, new_pre, cost


@dataclass(frozen=True)
class EpochSnapshot:
    """One immutable database version: epoch stamp + raw and NTT forms."""

    epoch: int
    db: PirDatabase
    pre: PreprocessedDatabase | None
    cost: UpdateCost

    @property
    def num_records(self) -> int:
        return self.db.num_records


class VersionedDatabase:
    """A mutable PIR database: apply update logs, get epoch snapshots.

    The wrapper owns the *current* epoch; older snapshots stay valid for
    whoever still holds them (serving keeps a bounded retention window).
    Without a ``ring`` only the plaintext planes are maintained —
    preprocessing stays the caller's job; with one, every epoch carries
    its NTT-domain form with copy-on-write sharing against its parent.
    """

    def __init__(
        self,
        params,
        records: list[bytes],
        record_bytes: int | None = None,
        ring: RingContext | None = None,
        backend: "str | ComputeBackend | None" = None,
    ):
        db = PirDatabase.from_records(records, params, record_bytes)
        self.backend = resolve_backend(backend)
        pre = db.preprocess(ring, backend=self.backend) if ring is not None else None
        self.ring = ring
        full = db.layout.plane_count * params.num_db_polys
        base_cost = UpdateCost(
            records_touched=0,
            records_appended=db.num_records,
            polys_repacked=db.layout.plane_count * db.layout.polys_needed,
            polys_ntted=full if ring is not None else 0,
            full_polys=full,
        )
        self.current = EpochSnapshot(epoch=0, db=db, pre=pre, cost=base_cost)

    @property
    def epoch(self) -> int:
        return self.current.epoch

    @property
    def num_records(self) -> int:
        return self.current.db.num_records

    def record(self, index: int) -> bytes:
        return self.current.db.record(index)

    def apply(self, log: UpdateLog) -> EpochSnapshot:
        """Apply one log; returns (and installs) the next epoch snapshot."""
        cur = self.current
        writes, appends = log.coalesced(cur.db.num_records)
        db, pre, cost = apply_record_updates(
            cur.db, writes, appends, pre=cur.pre, ring=self.ring,
            backend=self.backend,
        )
        self.current = EpochSnapshot(
            epoch=cur.epoch + 1, db=db, pre=pre, cost=cost
        )
        return self.current
