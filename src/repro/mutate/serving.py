"""Zero-downtime epoch hot-swap for the serving runtime.

``publish`` applies an :class:`~repro.mutate.log.UpdateLog` to every
shard's :class:`~repro.mutate.versioned.VersionedDatabase` and atomically
installs the new epoch for *new* admissions, while requests already
admitted keep their epoch pin: each :class:`ServeRequest` is stamped with
the epoch it was built against, the backend answers it with that epoch's
servers, and the client decodes it against that epoch's layout.  Nothing
in flight is lost or decoded against the wrong database version.

Retention is bounded: the registry admits requests only against the most
recent ``retain`` epochs — older pins get the typed
:class:`~repro.errors.StaleEpoch` rejection — but a *live* epoch (one
with in-flight requests) is never freed until its last request is
released, so a swap mid-window cannot strand a queued query.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.errors import MutateError, StaleEpoch
from repro.he.backend import ComputeBackend, resolve_backend
from repro.mutate.log import Put, UpdateLog
from repro.mutate.versioned import EpochSnapshot, UpdateCost, VersionedDatabase
from repro.params import PirParams
from repro.pir.client import PirClient, PirResponse
from repro.pir.server import PirServer
from repro.serve.registry import ServeRequest, ShardMap


@dataclass
class _EpochState:
    """One live database version across every shard."""

    epoch: int
    snapshots: list[EpochSnapshot]
    servers: list[PirServer]
    cost: UpdateCost
    inflight: int = 0
    admissible: bool = True


@dataclass(frozen=True)
class PublishResult:
    """What one hot-swap published."""

    epoch: int
    cost: UpdateCost
    live_epochs: tuple[int, ...]


class VersionedShardRegistry:
    """``RealShardRegistry`` semantics plus epoch-versioned hot-swap.

    Drop-in for the serving runtime: ``make_request`` routes and builds a
    real query (stamped with its epoch), ``decode`` decrypts against the
    pinned epoch and releases it.  ``publish`` installs a new epoch built
    by dirty-plane delta application — cost proportional to the delta.

    Appends are rejected at this layer (``MutateError``): the shard map
    partitions a fixed index space, and growing it online would silently
    re-route existing indices.  Grow by rebuilding the registry.
    """

    def __init__(
        self,
        params: PirParams,
        records: list[bytes],
        num_shards: int,
        record_bytes: int | None = None,
        seed: int | None = None,
        retain: int = 2,
        backend: str | ComputeBackend | None = None,
    ):
        if retain < 1:
            raise MutateError("must retain at least the current epoch")
        self.params = params
        self.retain = retain
        self.backend = resolve_backend(backend)
        self.map = ShardMap(len(records), num_shards)
        self.client = PirClient(params, seed=seed)
        self._setup = self.client.setup_message()
        self._vdbs: list[VersionedDatabase] = []
        for shard_id in range(num_shards):
            start = self.map.starts[shard_id]
            shard_records = records[start : start + self.map.sizes[shard_id]]
            self._vdbs.append(
                VersionedDatabase(
                    params, shard_records, record_bytes, ring=self.client.ring,
                    backend=self.backend,
                )
            )
        snapshots = [vdb.current for vdb in self._vdbs]
        self._epochs: dict[int, _EpochState] = {
            0: _EpochState(
                epoch=0,
                snapshots=snapshots,
                servers=[
                    PirServer(s.pre, self._setup, backend=self.backend)
                    for s in snapshots
                ],
                cost=snapshots[0].cost,
            )
        }
        self.current_epoch = 0

    @classmethod
    def random(
        cls,
        params: PirParams,
        num_records: int,
        record_bytes: int,
        num_shards: int,
        seed: int | None = None,
        retain: int = 2,
        backend: str | ComputeBackend | None = None,
    ) -> "VersionedShardRegistry":
        rng = np.random.default_rng(seed)
        records = [rng.bytes(record_bytes) for _ in range(num_records)]
        return cls(
            params, records, num_shards, record_bytes, seed=seed, retain=retain,
            backend=backend,
        )

    # -- geometry ----------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.map.num_shards

    @property
    def num_records(self) -> int:
        return self.map.num_records

    @property
    def live_epochs(self) -> tuple[int, ...]:
        return tuple(sorted(self._epochs))

    # -- hot swap ----------------------------------------------------------
    def publish(self, log: UpdateLog) -> PublishResult:
        """Apply ``log`` and install the next epoch for new admissions.

        Atomic across shards: the whole log is validated (routing, record
        sizes) before any shard's database advances, so a rejected publish
        leaves every shard exactly at the current epoch — no half-applied
        log can leak into a later publish.
        """
        if log.num_appends:
            raise MutateError(
                "online appends would re-route the shard partition; "
                "rebuild the registry to grow the record space"
            )
        record_bytes = self._vdbs[0].current.db.layout.record_bytes
        # Split the log by owning shard (coalescing happens per shard),
        # validating every entry up front — per-shard applies must not be
        # able to fail after a sibling shard has already advanced.
        shard_logs = [UpdateLog() for _ in range(self.num_shards)]
        for op in log:
            shard_id, local = self.map.route(op.index)
            if isinstance(op, Put):
                if len(op.record) != record_bytes:
                    raise MutateError(
                        f"update for record {op.index} has {len(op.record)} "
                        f"bytes, registry expects {record_bytes}"
                    )
                shard_logs[shard_id].put(local, op.record)
            else:
                shard_logs[shard_id].delete(local)
        snapshots: list[EpochSnapshot] = []
        servers: list[PirServer] = []
        cost: UpdateCost | None = None
        for vdb, shard_log in zip(self._vdbs, shard_logs):
            snapshot = vdb.apply(shard_log)
            snapshots.append(snapshot)
            servers.append(PirServer(snapshot.pre, self._setup, backend=self.backend))
            cost = snapshot.cost if cost is None else cost.merge(snapshot.cost)
        self.current_epoch += 1
        self._epochs[self.current_epoch] = _EpochState(
            epoch=self.current_epoch,
            snapshots=snapshots,
            servers=servers,
            cost=cost,
        )
        # Close admission for epochs beyond the retention window; free the
        # ones nothing holds.  Live ones linger until their last release.
        oldest_admissible = self.current_epoch - self.retain + 1
        for state in self._epochs.values():
            if state.epoch < oldest_admissible:
                state.admissible = False
        self._sweep()
        return PublishResult(
            epoch=self.current_epoch, cost=cost, live_epochs=self.live_epochs
        )

    def _sweep(self) -> None:
        for epoch in [
            e
            for e, s in self._epochs.items()
            if not s.admissible and s.inflight == 0
        ]:
            del self._epochs[epoch]

    def _state(self, epoch: int | None, admission: bool = False) -> _EpochState:
        epoch = self.current_epoch if epoch is None else epoch
        state = self._epochs.get(epoch)
        if state is None or (admission and not state.admissible):
            raise StaleEpoch(
                epoch=epoch,
                current=self.current_epoch,
                oldest_live=min(
                    (e for e, s in self._epochs.items() if s.admissible),
                    default=self.current_epoch,
                ),
            )
        return state

    # -- serving interface -------------------------------------------------
    def make_request(self, global_index: int, epoch: int | None = None) -> ServeRequest:
        """Route + build the query against an epoch (default: current).

        Admitting pins the epoch: it stays answerable until ``decode`` (or
        ``release``) is called for this request, even if later publishes
        push it out of the admission window.  A request that never reaches
        ``decode`` — shed by admission control, failed in its batch — must
        be ``release()``d by the caller, or its epoch snapshot is pinned
        for the registry's lifetime.
        """
        state = self._state(epoch, admission=True)
        shard_id, local = self.map.route(global_index)
        query = self.client.build_query(
            local, state.snapshots[shard_id].db.layout
        )
        state.inflight += 1
        return ServeRequest(
            global_index=int(global_index),
            shard_id=shard_id,
            local_index=local,
            query=query,
            epoch=state.epoch,
        )

    def server(self, shard_id: int, epoch: int | None = None) -> PirServer:
        """The epoch-pinned replica (any live epoch, admissible or not)."""
        return self._state(epoch).servers[self.map.check_shard(shard_id)]

    def decode(self, request: ServeRequest, response: PirResponse) -> bytes:
        """Decrypt against the request's admitted epoch, then release it.

        The pin is released whether or not decryption succeeds — a
        malformed response must not retain the epoch forever.
        """
        try:
            state = self._state(request.epoch)
            layout = state.snapshots[self.map.check_shard(request.shard_id)].db.layout
            return self.client.decode_response(
                response, request.local_index, layout
            )
        finally:
            self.release(request)

    def release(self, request: ServeRequest) -> None:
        """Drop a request's epoch pin (idempotence is the caller's job)."""
        state = self._epochs.get(request.epoch)
        if state is not None:
            state.inflight = max(0, state.inflight - 1)
            self._sweep()

    def expected(self, global_index: int, epoch: int | None = None) -> bytes:
        """Ground truth for one record *as of an epoch* (default: current)."""
        state = self._state(epoch)
        shard_id, local = self.map.route(global_index)
        return state.snapshots[shard_id].db.record(local)


class VersionedCryptoBackend:
    """Thread-pool crypto backend that honours per-request epoch pins.

    A dispatch window that straddles a ``publish`` legitimately mixes
    epochs; each request is answered by the server of the epoch it was
    admitted under.
    """

    def __init__(self, registry: VersionedShardRegistry, max_workers: int | None = None):
        self.registry = registry
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="mutate-worker"
        )

    def _answer_batch(self, shard_id: int, requests: list[ServeRequest]) -> list:
        return [
            self.registry.server(shard_id, r.epoch).answer(r.query)
            for r in requests
        ]

    async def answer(self, shard_id: int, requests: list[ServeRequest]) -> list:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool, self._answer_batch, shard_id, requests
        )

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)
