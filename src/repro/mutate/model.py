"""Accelerator-side cost model for online database updates.

Prices the ``repro.mutate`` delta path on IVE: how long one churn batch
takes to absorb (re-pack + CRT/NTT + write-back of the dirty polynomials)
versus re-preprocessing the whole database, and how much serving
bandwidth a sustained churn *rate* steals from the RowSel scan
(:class:`~repro.systems.scale_up.ScaleUpSystem` update headroom).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import IveConfig
from repro.errors import ParameterError
from repro.params import PirParams
from repro.systems.scale_up import ScaleUpSystem


def expected_dirty_polys(num_polys: int, updates: int, records_per_poly: int) -> int:
    """Expected distinct dirty polynomials for uniformly random updates.

    With ``records_per_poly > 1`` several updates can share a polynomial:
    the expected number of distinct dirtied polys is the standard
    occupancy ``m * (1 - (1 - 1/m)^u)``.
    """
    if updates <= 0:
        return 0
    if records_per_poly <= 1:
        return min(updates, num_polys)
    return max(1, round(num_polys * (1.0 - (1.0 - 1.0 / num_polys) ** updates)))


@dataclass(frozen=True)
class ChurnPoint:
    """One modeled (churn fraction, batch) operating point."""

    churn: float  # fraction of records rewritten per apply
    updates: int  # record writes in the batch
    dirty_polys: int
    apply_s: float
    full_s: float
    placement: str

    @property
    def speedup(self) -> float:
        return self.full_s / self.apply_s if self.apply_s > 0 else math.inf


def churn_update_curve(
    params: PirParams,
    churns: tuple[float, ...] = (0.001, 0.01, 0.1),
    records_per_poly: int = 1,
    config: IveConfig | None = None,
) -> list[ChurnPoint]:
    """Delta-apply vs full-re-preprocess latency across churn fractions.

    Uses the Section V placement (the update write-back rides the same
    channel the database is placed on) and the chip-parallel NTT stream
    of :meth:`~repro.arch.simulator.IveSimulator.update_apply_latency`.
    """
    if records_per_poly < 1:
        raise ParameterError("records per polynomial must be at least 1")
    system = ScaleUpSystem(params, config)
    sim = system.simulator
    full_s = sim.full_preprocess_latency().total_s
    num_records = params.num_db_polys * records_per_poly
    points = []
    for churn in churns:
        if not 0.0 < churn <= 1.0:
            raise ParameterError("churn fraction must be in (0, 1]")
        updates = max(1, round(churn * num_records))
        dirty = expected_dirty_polys(params.num_db_polys, updates, records_per_poly)
        apply_s = sim.update_apply_latency(dirty).total_s
        points.append(
            ChurnPoint(
                churn=churn,
                updates=updates,
                dirty_polys=dirty,
                apply_s=apply_s,
                full_s=full_s,
                placement=system.placement.value,
            )
        )
    return points
