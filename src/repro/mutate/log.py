"""Typed record-mutation logs for mutable PIR databases.

An :class:`UpdateLog` is an ordered sequence of index-space mutations
(:class:`Put`, :class:`Delete`, :class:`Append`) against one dense record
database; a :class:`KvUpdateLog` is the keyword analog (:class:`KvPut`,
:class:`KvDelete`) against a key-value store.  Logs are pure data: the
cost of building one is O(entries), and nothing touches the database
until the log is *applied* (``repro.mutate.versioned`` /
``repro.mutate.kv``), at which point consecutive writes to the same
record coalesce — one churn window's worth of updates to a hot record
re-packs its polynomial once, not once per write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.errors import MutateError
from repro.hashing.cuckoo import key_bytes


@dataclass(frozen=True)
class Put:
    """Overwrite the record at ``index`` with ``record`` bytes."""

    index: int
    record: bytes


@dataclass(frozen=True)
class Delete:
    """Tombstone the record at ``index`` (index space stays dense)."""

    index: int


@dataclass(frozen=True)
class Append:
    """Add a record at the next free index (grows the database)."""

    record: bytes


Mutation = Union[Put, Delete, Append]


def _check_index(index) -> int:
    if isinstance(index, bool) or not isinstance(index, int):
        raise MutateError(f"record index must be an int, got {type(index).__name__}")
    if index < 0:
        raise MutateError(f"record index must be non-negative, got {index}")
    return index


class UpdateLog:
    """Ordered index-space mutations, coalesced at apply time.

    Indices refer to the database the log is applied *to*; an index that
    does not exist there (and is not created by an earlier ``Append`` in
    the same log) fails with a typed error at apply time, not at append
    time — the log itself carries no database reference.
    """

    def __init__(self, mutations: list[Mutation] | None = None):
        self._ops: list[Mutation] = []
        for op in mutations or []:
            self._add(op)

    def _add(self, op: Mutation) -> None:
        if isinstance(op, Put):
            _check_index(op.index)
        elif isinstance(op, Delete):
            _check_index(op.index)
        elif not isinstance(op, Append):
            raise MutateError(f"unknown mutation type {type(op).__name__}")
        self._ops.append(op)

    # -- builders (chainable) ---------------------------------------------
    def put(self, index: int, record: bytes) -> "UpdateLog":
        self._add(Put(index=index, record=bytes(record)))
        return self

    def delete(self, index: int) -> "UpdateLog":
        self._add(Delete(index=index))
        return self

    def append(self, record: bytes) -> "UpdateLog":
        self._add(Append(record=bytes(record)))
        return self

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Mutation]:
        return iter(self._ops)

    @property
    def num_appends(self) -> int:
        return sum(1 for op in self._ops if isinstance(op, Append))

    def coalesced(self, num_records: int) -> tuple[dict[int, bytes | None], list[bytes]]:
        """Last-write-wins view against a database of ``num_records``.

        Returns ``(writes, appends)``: ``writes`` maps record index to its
        final bytes (``None`` = tombstone), ``appends`` is the ordered
        tail of genuinely-new records.  A ``Put``/``Delete`` against an
        index created by an earlier ``Append`` in this log folds into the
        append itself; out-of-range indices raise :class:`MutateError`.
        """
        writes: dict[int, bytes | None] = {}
        appends: list[bytes | None] = []

        def _slot(index: int):
            if index < num_records:
                return None
            offset = index - num_records
            if offset >= len(appends):
                raise MutateError(
                    f"index {index} is beyond the database ({num_records} "
                    f"records) and the log's appends so far ({len(appends)})"
                )
            return offset

        for op in self._ops:
            if isinstance(op, Append):
                appends.append(op.record)
            elif isinstance(op, Put):
                offset = _slot(op.index)
                if offset is None:
                    writes[op.index] = op.record
                else:
                    appends[offset] = op.record
            else:  # Delete
                offset = _slot(op.index)
                if offset is None:
                    writes[op.index] = None
                else:
                    appends[offset] = None
        # A deleted append still occupies its index (the space is dense):
        # it becomes a tombstone record at apply time.
        return writes, appends


@dataclass(frozen=True)
class KvPut:
    """Insert or overwrite ``key`` with ``value``."""

    key: bytes
    value: bytes


@dataclass(frozen=True)
class KvDelete:
    """Remove ``key`` (its slot is zeroed and freed)."""

    key: bytes


KvMutation = Union[KvPut, KvDelete]


class KvUpdateLog:
    """Ordered key-space mutations for a keyword-PIR store."""

    def __init__(self, mutations: list[KvMutation] | None = None):
        self._ops: list[KvMutation] = []
        for op in mutations or []:
            self._add(op)

    def _add(self, op: KvMutation) -> None:
        if not isinstance(op, (KvPut, KvDelete)):
            raise MutateError(f"unknown kv mutation type {type(op).__name__}")
        key_bytes(op.key)  # typed validation (rejects str, negative ints)
        self._ops.append(op)

    def put(self, key: bytes, value: bytes) -> "KvUpdateLog":
        self._add(KvPut(key=key_bytes(key), value=bytes(value)))
        return self

    def delete(self, key: bytes) -> "KvUpdateLog":
        self._add(KvDelete(key=key_bytes(key)))
        return self

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[KvMutation]:
        return iter(self._ops)

    def coalesced(self) -> dict[bytes, bytes | None]:
        """Last-write-wins per key: ``{key: value | None (= delete)}``."""
        out: dict[bytes, bytes | None] = {}
        for op in self._ops:
            key = key_bytes(op.key)
            out[key] = op.value if isinstance(op, KvPut) else None
        return out
