"""repro.mutate — epoch-versioned online updates for mutable PIR databases.

The paper's cost story assumes a static preprocessed database; this
subsystem makes it mutable without re-preprocessing the world: typed
update logs (put/delete/append, keyword put/delete), dirty-plane delta
application with copy-on-write epoch snapshots and sublinear-work
accounting, cuckoo-aware deltas for the batched/keyword layouts (bounded
re-insertion + stash spill accounting), zero-downtime epoch hot-swap for
the serving runtime, and the accelerator-side update cost model.
"""

from repro.mutate.kv import (
    KvUpdateCost,
    VersionedKvDatabase,
    apply_batch_record_updates,
)
from repro.mutate.log import (
    Append,
    Delete,
    KvDelete,
    KvPut,
    KvUpdateLog,
    Put,
    UpdateLog,
)
from repro.mutate.model import ChurnPoint, churn_update_curve, expected_dirty_polys
from repro.mutate.serving import (
    PublishResult,
    VersionedCryptoBackend,
    VersionedShardRegistry,
)
from repro.mutate.versioned import (
    EpochSnapshot,
    UpdateCost,
    VersionedDatabase,
    apply_record_updates,
)

__all__ = [
    "Append",
    "ChurnPoint",
    "Delete",
    "EpochSnapshot",
    "KvDelete",
    "KvPut",
    "KvUpdateCost",
    "KvUpdateLog",
    "PublishResult",
    "Put",
    "UpdateCost",
    "UpdateLog",
    "VersionedCryptoBackend",
    "VersionedDatabase",
    "VersionedKvDatabase",
    "VersionedShardRegistry",
    "apply_batch_record_updates",
    "apply_record_updates",
    "churn_update_curve",
    "expected_dirty_polys",
]
