"""Integer-multiplication complexity model (Fig. 4, Fig. 7d).

Counts the modular integer multiplications each PIR step performs, broken
down by the functional-unit category that executes them in IVE:

* ``ntt``  — butterfly multiplications in (i)NTT (1 mult per butterfly)
* ``gemm`` — modular multiply-accumulates in polynomial/matrix products
* ``icrt`` — multiplications in RNS reconstruction (Eq. 3)
* ``elem`` — element-wise adds/subs (tracked separately; not mults)

The counts follow directly from the functional implementation in
``repro.pir``: one Subs = 1 iNTT + ℓ digit NTTs + a 2xℓ gadget GEMM; one
external product = 2 iNTTs + 2ℓ digit NTTs + a 2x2ℓ GEMM; RowSel = 2·D·R·N
multiply-accumulates per query.  Absolute percentages in the paper differ
somewhat (their counting of iCRT/big-integer work is not specified); the
shape — RowSel dominant and growing with DB size, ExpandQuery amortizing
away — is what the model reproduces (see EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.params import PirParams


@dataclass(frozen=True)
class OpCounts:
    """Operation counts by executing-unit category."""

    ntt: float = 0.0
    gemm: float = 0.0
    icrt: float = 0.0
    elem: float = 0.0

    @property
    def total_mults(self) -> float:
        """Integer multiplications (elem ops are adds and excluded)."""
        return self.ntt + self.gemm + self.icrt

    @property
    def total_ops(self) -> float:
        return self.ntt + self.gemm + self.icrt + self.elem

    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            ntt=self.ntt + other.ntt,
            gemm=self.gemm + other.gemm,
            icrt=self.icrt + other.icrt,
            elem=self.elem + other.elem,
        )

    def scale(self, factor: float) -> "OpCounts":
        return OpCounts(
            ntt=self.ntt * factor,
            gemm=self.gemm * factor,
            icrt=self.icrt * factor,
            elem=self.elem * factor,
        )

    def unit_shares(self) -> dict[str, float]:
        """Fractional breakdown by unit category (Fig. 7d)."""
        total = self.total_ops
        if total == 0:
            return {"ntt": 0.0, "gemm": 0.0, "icrt": 0.0, "elem": 0.0}
        return {
            "ntt": self.ntt / total,
            "gemm": self.gemm / total,
            "icrt": self.icrt / total,
            "elem": self.elem / total,
        }


# ---------------------------------------------------------------------------
# Primitive costs
# ---------------------------------------------------------------------------

def ntt_mults_per_poly(params: PirParams) -> float:
    """One (i)NTT over a full RNS polynomial: R * (N/2) * log2 N butterflies."""
    return params.rns_count * (params.n / 2.0) * math.log2(params.n)


def icrt_mults_per_poly(params: PirParams) -> float:
    """RNS reconstruction: ~2 mults per residue per coefficient (Eq. 3)."""
    return 2.0 * params.rns_count * params.n


def poly_mult_macs(params: PirParams) -> float:
    """Element-wise NTT-domain polynomial product: R*N multiply-accumulates."""
    return float(params.rns_count * params.n)


def subs_counts(params: PirParams) -> OpCounts:
    """One substitution: Dcp(a_aut) + evk GEMM + b add (Section II-D)."""
    ell = params.gadget_len
    return OpCounts(
        ntt=(1 + ell) * ntt_mults_per_poly(params),  # 1 iNTT + ℓ digit NTTs
        gemm=2 * ell * poly_mult_macs(params),  # evk (2 x ℓ) times digit vector
        icrt=icrt_mults_per_poly(params),
        elem=2 * poly_mult_macs(params),  # output accumulate with (0, b_aut)
    )


def external_product_counts(params: PirParams) -> OpCounts:
    """One ⊡: Dcp on both halves + RGSW GEMM (Fig. 3)."""
    ell = params.gadget_len
    return OpCounts(
        ntt=(2 + 2 * ell) * ntt_mults_per_poly(params),
        gemm=4 * ell * poly_mult_macs(params),  # (2x2ℓ) matrix-vector product
        icrt=2 * icrt_mults_per_poly(params),
        elem=2 * poly_mult_macs(params),
    )


def cmux_counts(params: PirParams) -> OpCounts:
    """ColTor node: bit ⊡ (Y - X) + X — one ⊡ plus two ct-level adds."""
    adds = 2 * 2 * poly_mult_macs(params)  # (Y - X) and (+ X), both (a, b)
    base = external_product_counts(params)
    return OpCounts(ntt=base.ntt, gemm=base.gemm, icrt=base.icrt, elem=base.elem + adds)


# ---------------------------------------------------------------------------
# Per-step totals (single query)
# ---------------------------------------------------------------------------

def expand_query_counts(params: PirParams) -> OpCounts:
    """(D0 - 1) Subs plus the even/odd combine adds at every node."""
    nodes = params.d0 - 1
    combine = OpCounts(elem=2 * 2 * poly_mult_macs(params))  # two ct add/subs
    return (subs_counts(params) + combine).scale(nodes)


def rowsel_counts(params: PirParams) -> OpCounts:
    """Eq. 1 over the initial dimension: 2*D*R*N multiply-accumulates."""
    return OpCounts(gemm=2.0 * params.num_db_polys * poly_mult_macs(params))


def coltor_counts(params: PirParams) -> OpCounts:
    """(2^d - 1) cmux nodes in the tournament tree."""
    nodes = (1 << params.num_dims) - 1
    return cmux_counts(params).scale(nodes)


def pir_step_counts(params: PirParams) -> dict[str, OpCounts]:
    """All three steps of one query (Fig. 2)."""
    return {
        "ExpandQuery": expand_query_counts(params),
        "RowSel": rowsel_counts(params),
        "ColTor": coltor_counts(params),
    }


def step_shares(params: PirParams) -> dict[str, float]:
    """Fraction of total integer mults per step (Fig. 4a bars)."""
    counts = pir_step_counts(params)
    total = sum(c.total_mults for c in counts.values())
    return {name: c.total_mults / total for name, c in counts.items()}


def total_mults(params: PirParams) -> float:
    return sum(c.total_mults for c in pir_step_counts(params).values())


def relative_complexity_vs_d0(
    params: PirParams, d0_values: list[int]
) -> dict[int, float]:
    """Fig. 4b: total complexity vs D0 at fixed DB size, normalized to max.

    Fixing the DB size means D = D0 * 2^d stays constant: doubling D0
    removes one ColTor dimension but doubles the ExpandQuery tree.
    """
    total_polys = params.num_db_polys
    totals = {}
    for d0 in d0_values:
        dims = int(math.log2(total_polys // d0))
        geometry = params.with_db(d0=d0, num_dims=dims)
        totals[d0] = total_mults(geometry)
    peak = max(totals.values())
    return {d0: t / peak for d0, t in totals.items()}
