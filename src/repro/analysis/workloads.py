"""Workload definitions: synthesized DBs and the paper's real applications.

Table III evaluates three deployed-application workloads:

* ``Vcall`` — metadata-private voice calling (Addra [2]), 384 GB
* ``Comm``  — anonymous communication (Pung/SealPIR-style [4], [5]), 288 GB
* ``Fsys``  — private file system (XPIR [70]), 1.25 TB

The paper reports only DB sizes; record sizes follow the cited systems
(Addra/anonymous communication use ~288 B mailbox entries — INSPIRE's
"288 B entry from a 288 GB DB" — and XPIR serves file chunks).  Record
contents never affect server cost, so these choices only pin down the
layout geometry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.params import PirParams

GB = 1 << 30
TB = 1 << 40


@dataclass(frozen=True)
class Workload:
    """A PIR serving scenario: database size + record granularity."""

    name: str
    db_bytes: int
    record_bytes: int
    description: str

    @property
    def num_records(self) -> int:
        return self.db_bytes // self.record_bytes

    def geometry(self, params: PirParams, d0: int = 256) -> PirParams:
        """Paper-parameter geometry (D0, d) for this workload's DB size.

        The DB is stored as D = db_bytes / plain_poly_bytes polynomials
        (records are packed or striped to fill polynomials, so poly count
        depends only on total bytes).
        """
        base = params.with_db(d0=d0, num_dims=0)
        polys = max(d0, self.db_bytes // base.plain_poly_bytes)
        dims = max(0, int(round(math.log2(polys / d0))))
        return params.with_db(d0=d0, num_dims=dims)


def synthesized(db_gib: float) -> Workload:
    """Synthesized benchmark DB of the paper's 2-16 GB sweep."""
    return Workload(
        name=f"Synth-{db_gib:g}GB",
        db_bytes=int(db_gib * GB),
        record_bytes=16 * 1024,  # one full plaintext polynomial per record
        description=f"synthesized database of {db_gib:g} GiB",
    )


VCALL = Workload(
    name="Vcall",
    db_bytes=384 * GB,
    record_bytes=288,
    description="metadata-private voice calling (Addra)",
)

COMM = Workload(
    name="Comm",
    db_bytes=288 * GB,
    record_bytes=288,
    description="anonymous communication mailboxes",
)

FSYS = Workload(
    name="Fsys",
    db_bytes=int(1.25 * TB),
    record_bytes=64 * 1024,
    description="private file system (XPIR-style chunks)",
)

REAL_WORKLOADS = (VCALL, COMM, FSYS)
