"""Analytical models: op-count complexity, arithmetic intensity, workloads."""

from repro.analysis import complexity, intensity, workloads

__all__ = ["complexity", "intensity", "workloads"]
