"""Arithmetic intensity of each PIR step (Fig. 6, left).

Intensity = integer multiplications per byte of DRAM traffic.  Batching
amortizes the database scan in RowSel across B queries, so RowSel's
intensity grows linearly with B; ExpandQuery and ColTor touch only
client-specific data (evks, RGSW bits, per-query ciphertexts), so their
intensity is independent of B — the central observation of Section III-B.

The traffic terms model a cache-less streaming device (the paper's GPU
roofline), i.e. the naive BFS traversal: every evk / RGSW / intermediate
ciphertext travels to DRAM between tree levels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis import complexity
from repro.params import PirParams


@dataclass(frozen=True)
class StepIntensity:
    """Multiplications, DRAM bytes and their ratio for one step."""

    name: str
    mults: float
    dram_bytes: float

    @property
    def intensity(self) -> float:
        return self.mults / self.dram_bytes


def expand_query_traffic_bytes(params: PirParams, batch: int = 1) -> float:
    """Naive per-batch traffic: evks reloaded per level + level outputs."""
    levels = max(1, int(math.log2(params.d0)))
    # Per query: each level streams its evk and writes 2^(a+1) cts, reading
    # them back at the next level.
    ct_traffic = sum(2 ** (a + 1) * 2 for a in range(levels)) * params.ct_bytes
    per_query = levels * params.evk_bytes + ct_traffic
    return batch * per_query


def rowsel_traffic_bytes(params: PirParams, batch: int = 1) -> float:
    """One preprocessed-DB scan (shared) + per-query ct streams."""
    db_bytes = params.num_db_polys * params.poly_bytes
    per_query = (params.d0 + params.num_db_polys // params.d0) * params.ct_bytes
    return db_bytes + batch * per_query


def coltor_traffic_bytes(params: PirParams, batch: int = 1) -> float:
    """Naive BFS traffic: RGSW reloads per level + intermediate ct streams."""
    dims = params.num_dims
    entries = 1 << dims
    ct_traffic = 0.0
    for level in range(dims):
        live = entries >> level
        ct_traffic += live * params.ct_bytes  # read inputs
        ct_traffic += (live // 2) * params.ct_bytes  # write outputs
    per_query = dims * params.rgsw_bytes + ct_traffic
    return batch * per_query


def step_intensities(params: PirParams, batch: int = 1) -> dict[str, StepIntensity]:
    """All three steps at a given multi-client batch size."""
    counts = complexity.pir_step_counts(params)
    return {
        "ExpandQuery": StepIntensity(
            "ExpandQuery",
            counts["ExpandQuery"].total_mults * batch,
            expand_query_traffic_bytes(params, batch),
        ),
        "RowSel": StepIntensity(
            "RowSel",
            counts["RowSel"].total_mults * batch,
            rowsel_traffic_bytes(params, batch),
        ),
        "ColTor": StepIntensity(
            "ColTor",
            counts["ColTor"].total_mults * batch,
            coltor_traffic_bytes(params, batch),
        ),
    }
