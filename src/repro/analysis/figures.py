"""Programmatic generators for every reproduced figure's data series.

The benchmarks print human-readable tables; downstream users (plotting
scripts, notebooks) want the raw series.  Each function returns plain
dicts/lists of floats so the output serializes directly to JSON.
"""

from __future__ import annotations

from repro.analysis import complexity, intensity
from repro.arch.config import IveConfig
from repro.arch.energy import energy_per_query
from repro.arch.simulator import IveSimulator
from repro.baselines.cpu import CpuModel
from repro.baselines.gpu import GpuPirModel
from repro.baselines.roofline import H100, RTX4090
from repro.params import PirParams
from repro.sched import figure8 as sched_figure8
from repro.sched import reduction_vs_bfs

#: DB size (GiB) -> ColTor dimensions at D0 = 256 with 16 KB records.
DIMS_BY_GB = {2: 9, 4: 10, 8: 11, 16: 12, 32: 13, 64: 14, 128: 15}


def params_for_gb(gb: int, d0: int = 256) -> PirParams:
    return PirParams.paper(d0=d0, num_dims=DIMS_BY_GB[gb])


def fig4a(db_gibs=(2, 4, 8, 16)) -> dict:
    """Per-step complexity shares vs DB size."""
    return {gb: complexity.step_shares(params_for_gb(gb)) for gb in db_gibs}


def fig4b(d0_values=(128, 256, 512, 1024), db_gib: int = 2) -> dict:
    """Relative total complexity vs D0 at fixed DB size."""
    return complexity.relative_complexity_vs_d0(params_for_gb(db_gib), list(d0_values))


def fig6_left(batches=(1, 4, 16, 64), db_gib: int = 2) -> dict:
    """Arithmetic intensity (ops/byte) per step vs batch."""
    params = params_for_gb(db_gib)
    return {
        batch: {
            step: si.intensity
            for step, si in intensity.step_intensities(params, batch).items()
        }
        for batch in batches
    }


def fig6_right(batches=(1, 4, 16, 64), db_gib: int = 2) -> dict:
    """Amortized per-query GPU step times (seconds) vs batch."""
    model = GpuPirModel(RTX4090, params_for_gb(db_gib))
    out = {}
    for batch in batches:
        times = model.step_times(batch)
        out[batch] = {k: v / batch for k, v in times.breakdown().items()}
    return out


def fig8(db_gib: int = 8, batch: int = 32) -> dict:
    """DRAM traffic (bytes) and reductions per scheduling policy."""
    data = sched_figure8(params_for_gb(db_gib), batch=batch)
    out: dict = {}
    for step, caps in data.items():
        out[step] = {}
        for cap, results in caps.items():
            out[step][cap] = {
                "traffic_bytes": {r.label: r.traffic.total_bytes for r in results},
                "reduction_vs_bfs": reduction_vs_bfs(results),
            }
    return out


def fig12(db_gibs=(2, 4, 8), batch: int = 64) -> dict:
    """QPS and J/query for CPU, GPUs, and IVE."""
    rows: dict = {}
    for gb in db_gibs:
        params = params_for_gb(gb)
        cpu = CpuModel(params)
        sim = IveSimulator(IveConfig.ive(), params)
        entry = {
            "CPU": {"qps": cpu.qps(), "j_per_query": cpu.energy_per_query()},
            "IVE": {
                "qps": sim.latency(batch).qps,
                "j_per_query": energy_per_query(sim, batch),
            },
        }
        for device in (RTX4090, H100):
            model = GpuPirModel(device, params)
            if model.max_batch() >= 1:
                entry[device.name] = {
                    "qps": model.qps(),
                    "j_per_query": model.energy_per_query(),
                }
        rows[gb] = entry
    return rows


def fig13c(batches=(1, 16, 32, 64, 96), db_gib: int = 16) -> dict:
    """Latency (s) and QPS vs batch size."""
    sim = IveSimulator(IveConfig.ive(), params_for_gb(db_gib))
    out = {}
    for batch in batches:
        lat = sim.latency(batch)
        out[batch] = {"latency_s": lat.total_s, "qps": lat.qps}
    return out


def fig14a(db_gib: int = 16, batch: int = 64) -> dict:
    """Delay/energy/area triples for IVE and the ARK-like system."""
    from repro.baselines.ark import figure14a as _fig14a

    data = _fig14a(params_for_gb(db_gib), batch)
    return {
        name: {
            "delay_s": cost.delay_s,
            "j_per_query": cost.energy_per_query_j,
            "area_mm2": cost.area_mm2,
            "edap": cost.edap,
        }
        for name, cost in data.items()
    }
