"""Discrete-event queue simulation for the batch scheduler (Fig. 14b).

Poisson arrivals feed a single IVE server.  Two disciplines:

* ``simulate_batching`` — the waiting-window scheduler: a batch launches
  when the oldest query has waited one window or ``max_batch`` queries are
  queued; service time comes from the cycle simulator's batched latency.
* ``simulate_fifo`` — the non-batching baseline: queries are served one at
  a time at the single-query latency.

Both return mean/percentile latency so the load-latency curve, break-even
point, and throughput limits of Section VI-F can be regenerated.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.errors import ParameterError
from repro.systems.batching import BatchPolicy, ServicePoint


def poisson_arrival_times(
    rate_qps: float, num_queries: int, rng: np.random.Generator
) -> np.ndarray:
    """Homogeneous Poisson arrival instants: cumulative exponential gaps.

    The one shared sampler behind both the discrete-event queue models here
    and the open-loop load generator (:mod:`repro.serve.loadgen`).
    """
    if rate_qps <= 0:
        raise ParameterError("arrival rate must be positive")
    gaps = rng.exponential(1.0 / rate_qps, size=num_queries)
    return np.cumsum(gaps)


def simulate_batching(
    service_time: Callable[[int], float],
    policy: BatchPolicy,
    arrival_qps: float,
    num_queries: int = 2000,
    seed: int = 0,
) -> ServicePoint:
    """Event-driven waiting-window batching simulation."""
    if arrival_qps <= 0:
        raise ParameterError("arrival rate must be positive")
    rng = np.random.default_rng(seed)
    arrivals = poisson_arrival_times(arrival_qps, num_queries, rng)
    latencies: list[float] = []
    batches: list[int] = []
    server_free = 0.0
    i = 0
    while i < len(arrivals):
        first = arrivals[i]
        # The server considers dispatch once it is free and a query waits.
        earliest_start = max(server_free, first)
        # Window countdown starts when the oldest query arrived; the batch
        # fires at first + window, or immediately at earliest_start if the
        # window already expired (server was busy), or as soon as max_batch
        # queries have arrived.
        window_deadline = first + policy.waiting_window_s
        if i + policy.max_batch <= len(arrivals) - 1:
            full_time = arrivals[i + policy.max_batch - 1]
        else:
            full_time = math.inf
        dispatch_time = max(earliest_start, min(window_deadline, full_time))
        batch = int(np.searchsorted(arrivals, dispatch_time, side="right") - i)
        batch = max(1, min(batch, policy.max_batch))
        finish = dispatch_time + service_time(batch)
        for j in range(i, i + batch):
            latencies.append(finish - arrivals[j])
        batches.append(batch)
        server_free = finish
        i += batch
    lat = np.array(latencies)
    return ServicePoint(
        arrival_qps=arrival_qps,
        mean_latency_s=float(lat.mean()),
        p95_latency_s=float(np.percentile(lat, 95)),
        mean_batch=float(np.mean(batches)),
        served=len(lat),
    )


def simulate_fifo(
    single_query_time: float,
    arrival_qps: float,
    num_queries: int = 2000,
    seed: int = 0,
) -> ServicePoint:
    """Non-batching baseline: one query at a time."""
    if arrival_qps <= 0:
        raise ParameterError("arrival rate must be positive")
    rng = np.random.default_rng(seed)
    arrivals = poisson_arrival_times(arrival_qps, num_queries, rng)
    latencies = np.empty(len(arrivals))
    server_free = 0.0
    for i, t in enumerate(arrivals):
        start = max(server_free, t)
        finish = start + single_query_time
        latencies[i] = finish - t
        server_free = finish
    return ServicePoint(
        arrival_qps=arrival_qps,
        mean_latency_s=float(latencies.mean()),
        p95_latency_s=float(np.percentile(latencies, 95)),
        mean_batch=1.0,
        served=len(latencies),
    )


def load_latency_curve(
    service_time: Callable[[int], float],
    policy: BatchPolicy,
    rates: list[float],
    num_queries: int = 2000,
    seed: int = 0,
) -> list[ServicePoint]:
    return [
        simulate_batching(service_time, policy, rate, num_queries, seed)
        for rate in rates
    ]


def break_even_rate(
    batching_points: list[ServicePoint], fifo_points: list[ServicePoint]
) -> float | None:
    """Lowest arrival rate where batching's mean latency wins (Fig. 14b)."""
    for bp, fp in zip(batching_points, fifo_points):
        if bp.arrival_qps != fp.arrival_qps:
            raise ParameterError("curves must share arrival rates")
        if bp.mean_latency_s <= fp.mean_latency_s:
            return bp.arrival_qps
    return None
