"""Scale-out IVE cluster with record-level parallelism (Section V).

The DB matrix is partitioned along the D/D0 dimension across
``num_systems`` IVE systems connected by a PCIe switch.  Every system
expands every query (it needs the expanded selection vector for its rows),
runs RowSel on its slice, and reduces its local columns with ColTor; the
per-system partial results (one ciphertext each) are gathered to a single
system, which finishes the top log2(num_systems) tournament levels.  The
gather moves one ciphertext per system per query, so the communication
overhead is negligible (Fig. 13d "Comm. (Sys.<->Sys.)").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import IveConfig

from repro.errors import ParameterError
from repro.he import modmath
from repro.params import PirParams
from repro.systems.scale_up import ScaleUpSystem


@dataclass(frozen=True)
class ClusterLatency:
    """Batched latency breakdown for the cluster (Fig. 13d)."""

    batch: int
    num_systems: int
    expand_s: float
    rowsel_s: float
    local_coltor_s: float
    gather_s: float
    final_coltor_s: float
    comm_host_s: float

    @property
    def total_s(self) -> float:
        return (
            self.expand_s
            + self.rowsel_s
            + self.local_coltor_s
            + self.gather_s
            + self.final_coltor_s
            + self.comm_host_s
        )

    @property
    def qps(self) -> float:
        return self.batch / self.total_s

    @property
    def per_system_qps(self) -> float:
        return self.qps / self.num_systems


class IveCluster:
    """num_systems scale-up systems splitting one database via RLP."""

    def __init__(
        self,
        params: PirParams,
        num_systems: int,
        config: IveConfig | None = None,
    ):
        if not modmath.is_power_of_two(num_systems):
            raise ParameterError("cluster size must be a power of two")
        self.split_levels = modmath.ilog2(num_systems)
        if params.num_dims < self.split_levels:
            raise ParameterError(
                f"cannot split {params.num_dims} ColTor dimensions across "
                f"{num_systems} systems"
            )
        self.params = params
        self.num_systems = num_systems
        self.config = config if config is not None else IveConfig.ive()
        #: Each system serves a slice with log2(num_systems) fewer dimensions.
        self.slice_params = params.with_db(
            num_dims=params.num_dims - self.split_levels
        )
        self.system = ScaleUpSystem(self.slice_params, self.config)

    @property
    def raw_db_bytes(self) -> int:
        return self.params.num_db_polys * self.params.plain_poly_bytes

    def latency(self, batch: int) -> ClusterLatency:
        """All systems progress in lockstep on the shared batch."""
        slice_lat = self.system.latency(batch)
        sim = self.system.simulator
        # Gather: every non-final system ships one ct per query to the root.
        gather_bytes = batch * (self.num_systems - 1) * self.params.ct_bytes
        gather_s = gather_bytes / self.config.pcie_bandwidth
        # Final tournament: (num_systems - 1) cmux nodes per query on the
        # root system's cores (QLP over the batch).
        _, coltor_timing = sim.coltor_timing()
        local_nodes = max(1, (1 << self.slice_params.num_dims) - 1)
        per_cmux_cycles = coltor_timing.cycles / local_nodes
        rounds = math.ceil(batch / self.config.num_cores)
        final_s = (
            rounds
            * (self.num_systems - 1)
            * per_cmux_cycles
            / self.config.clock_hz
        )
        return ClusterLatency(
            batch=batch,
            num_systems=self.num_systems,
            expand_s=slice_lat.expand_s,
            rowsel_s=slice_lat.rowsel_s,
            local_coltor_s=slice_lat.coltor_s + slice_lat.noc_s,
            gather_s=gather_s,
            final_coltor_s=final_s,
            comm_host_s=slice_lat.comm_s,
        )

    def qps(self, batch: int) -> float:
        return self.latency(batch).qps


@dataclass(frozen=True)
class ScalingPoint:
    """Modeled cluster throughput at one fleet size (Fig. 13d shape)."""

    num_systems: int
    qps: float
    speedup: float

    @property
    def efficiency(self) -> float:
        """Fraction of ideal linear scaling retained at this size."""
        return self.speedup / self.num_systems


def scaling_curve(
    params: PirParams,
    sizes: tuple[int, ...] = (1, 2, 4, 8),
    batch: int = 64,
    config: IveConfig | None = None,
) -> list[ScalingPoint]:
    """Modeled QPS scaling across cluster sizes, normalized to one system.

    The analytic twin of the measured multi-process runtime
    (``repro.cluster``): ``benchmarks/bench_cluster.py`` reports both so
    model drift against measurement is visible in one JSON artifact.
    Model scaling is sublinear through the gather + final-tournament
    serial tail; the measured runtime's analog is pickle/IPC overhead.
    """
    points: list[ScalingPoint] = []
    base: float | None = None
    for n in sizes:
        qps = IveCluster(params, n, config).qps(batch)
        base = qps if base is None else base
        points.append(ScalingPoint(num_systems=n, qps=qps, speedup=qps / base))
    return points
