"""Scale-up IVE system: heterogeneous HBM + LPDDR memory (Section V).

The preprocessed database lives in HBM while it fits; larger databases are
offloaded to the LPDDR expander and streamed during RowSel, while HBM
keeps serving the memory-bound ExpandQuery/ColTor working sets.  Because
batching amortizes the database scan, the lower LPDDR bandwidth costs
little throughput at saturation (Fig. 13d); one IVE system supports up to
~128 GB of raw database (512 GB LPDDR / 3.5x preprocessing expansion).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.arch.config import IveConfig
from repro.arch.simulator import IveSimulator, PirLatency
from repro.errors import ParameterError
from repro.params import PirParams
from repro.sched.tree import Traversal


class DbPlacement(enum.Enum):
    HBM = "hbm"
    LPDDR = "lpddr"


#: HBM capacity reserved for per-query working data (queries, evks,
#: intermediates) rather than the database.
_HBM_WORKING_RESERVE = 8 << 30


def choose_placement(preprocessed_db_bytes: int, memory) -> tuple[DbPlacement, float]:
    """Adaptive placement rule of Section V: (placement, DB bandwidth).

    The preprocessed database goes to HBM while it fits next to the
    per-query working set, spills to the LPDDR expander otherwise.  Shared
    by :class:`ScaleUpSystem` and the serving shard registry so both layers
    agree on where a database of a given size lives.
    """
    if preprocessed_db_bytes <= memory.hbm_capacity - _HBM_WORKING_RESERVE:
        return DbPlacement.HBM, memory.hbm_bandwidth
    if preprocessed_db_bytes <= memory.lpddr_capacity:
        return DbPlacement.LPDDR, memory.lpddr_bandwidth
    raise ParameterError(
        f"preprocessed DB of {preprocessed_db_bytes / (1 << 30):.0f} GiB exceeds "
        "the LPDDR capacity of one IVE system; use an IveCluster"
    )


@dataclass
class ScaleUpSystem:
    """One IVE chip plus its adaptive memory system."""

    params: PirParams
    config: IveConfig = None  # type: ignore[assignment]
    traversal: Traversal = Traversal.HS_DFS

    def __post_init__(self):
        if self.config is None:
            self.config = IveConfig.ive()
        self.placement, db_bandwidth = choose_placement(
            self.preprocessed_db_bytes, self.config.memory
        )
        self.simulator = IveSimulator(
            self.config,
            self.params,
            traversal=self.traversal,
            db_bandwidth=db_bandwidth,
        )

    # -- capacity ---------------------------------------------------------
    @property
    def raw_db_bytes(self) -> int:
        return self.params.num_db_polys * self.params.plain_poly_bytes

    @property
    def preprocessed_db_bytes(self) -> int:
        return self.params.num_db_polys * self.params.poly_bytes

    @property
    def max_raw_db_bytes(self) -> float:
        """Supported raw DB size (paper: up to 128 GB per system)."""
        return self.config.memory.lpddr_capacity / self.params.db_expansion_ratio

    # -- performance ----------------------------------------------------------
    def latency(self, batch: int) -> PirLatency:
        return self.simulator.latency(batch)

    def qps(self, batch: int) -> float:
        return self.simulator.qps(batch)

    def min_db_read_seconds(self) -> float:
        return self.simulator.min_db_read_seconds()

    def saturation_batch(self, candidates=(16, 32, 64, 96, 128, 160)) -> int:
        """Smallest batch within 5% of the best throughput (Fig. 13c/d)."""
        rates = {b: self.qps(b) for b in candidates}
        best = max(rates.values())
        for b in candidates:
            if rates[b] >= 0.95 * best:
                return b
        return max(candidates)


@dataclass
class BatchScaleUpSystem:
    """One IVE system serving a cuckoo-bucketed batch-PIR deployment.

    The database lives replicated across ``num_buckets`` small bucket
    databases (``repro.batchpir.layout``); one amortized pass answers up to
    the design batch of k queries by running every bucket's pipeline once.
    Placement follows the same Section V rule as the single-query system,
    but against the REPLICATED preprocessed footprint — batch PIR trades
    ~``replication_factor``x storage for a ~``k / replication_factor``x
    smaller per-query scan.
    """

    bucket_params: PirParams
    num_buckets: int
    config: IveConfig = None  # type: ignore[assignment]
    traversal: Traversal = Traversal.HS_DFS

    def __post_init__(self):
        if self.num_buckets < 1:
            raise ParameterError("need at least one bucket")
        if self.config is None:
            self.config = IveConfig.ive()
        self.placement, db_bandwidth = choose_placement(
            self.preprocessed_db_bytes, self.config.memory
        )
        self.simulator = IveSimulator(
            self.config,
            self.bucket_params,
            traversal=self.traversal,
            db_bandwidth=db_bandwidth,
        )

    @property
    def preprocessed_db_bytes(self) -> int:
        """Replicated footprint: every bucket database, preprocessed."""
        return (
            self.num_buckets
            * self.bucket_params.num_db_polys
            * self.bucket_params.poly_bytes
        )

    def pass_latency(self) -> PirLatency:
        """One batch pass: every bucket's pipeline, DB streamed once."""
        return self.simulator.batchpir_pass_latency(self.num_buckets)

    def amortized_per_query_s(self, k: int) -> float:
        """Per-query share of one pass serving k retrievals."""
        if k < 1:
            raise ParameterError("amortization needs at least one query")
        return self.pass_latency().total_s / k


@dataclass
class KvScaleUpSystem:
    """One IVE system serving a keyword-PIR slot table (repro.kvpir).

    The database is the tag-inflated slot table: ~1.5x the live records
    (cuckoo slot provisioning rounded up to the power-of-two geometry)
    each carrying ``tag_bytes`` of recognition overhead, and one lookup
    costs ``candidates_per_lookup`` index queries sharing a single table
    scan.  Placement follows the same Section V rule against that
    inflated preprocessed footprint — the keyword layer can push a
    database that fit in HBM as a dense index store out to LPDDR.
    """

    slot_params: PirParams
    candidates_per_lookup: int
    config: IveConfig = None  # type: ignore[assignment]
    traversal: Traversal = Traversal.HS_DFS

    def __post_init__(self):
        if self.candidates_per_lookup < 1:
            raise ParameterError("a lookup must probe at least one candidate")
        if self.config is None:
            self.config = IveConfig.ive()
        self.placement, db_bandwidth = choose_placement(
            self.preprocessed_db_bytes, self.config.memory
        )
        self.simulator = IveSimulator(
            self.config,
            self.slot_params,
            traversal=self.traversal,
            db_bandwidth=db_bandwidth,
        )

    @property
    def preprocessed_db_bytes(self) -> int:
        """Preprocessed slot table: the tag-inflated keyword footprint."""
        return self.slot_params.num_db_polys * self.slot_params.poly_bytes

    def lookup_latency(self) -> PirLatency:
        """One standalone keyword lookup (all candidates, one table scan)."""
        return self.simulator.kvpir_lookup_latency(self.candidates_per_lookup)
