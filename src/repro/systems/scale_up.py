"""Scale-up IVE system: heterogeneous HBM + LPDDR memory (Section V).

The preprocessed database lives in HBM while it fits; larger databases are
offloaded to the LPDDR expander and streamed during RowSel, while HBM
keeps serving the memory-bound ExpandQuery/ColTor working sets.  Because
batching amortizes the database scan, the lower LPDDR bandwidth costs
little throughput at saturation (Fig. 13d); one IVE system supports up to
~128 GB of raw database (512 GB LPDDR / 3.5x preprocessing expansion).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.arch.config import IveConfig
from repro.arch.simulator import IveSimulator, PirLatency
from repro.errors import ParameterError
from repro.params import PirParams
from repro.sched.tree import Traversal


class DbPlacement(enum.Enum):
    HBM = "hbm"
    LPDDR = "lpddr"


#: HBM capacity reserved for per-query working data (queries, evks,
#: intermediates) rather than the database.
_HBM_WORKING_RESERVE = 8 << 30

#: Largest fraction of the database channel online updates may consume.
#: Past this the serving scan loses more than half its bandwidth and the
#: deployment should shard (or batch its churn) instead of absorbing it.
UPDATE_HEADROOM_CAP = 0.5


def update_bandwidth_demand(params: PirParams, update_polys_per_s: float) -> float:
    """Database-channel bytes/s a sustained update stream writes back.

    Each dirty polynomial is re-preprocessed and rewritten in NTT/RNS form
    (``poly_bytes``, the logQ/logP-inflated size) over the same HBM/LPDDR
    channel RowSel streams the database from — update traffic and serving
    traffic compete, which is why placement must account for the headroom.
    """
    if update_polys_per_s < 0:
        raise ParameterError("update rate cannot be negative")
    return update_polys_per_s * params.poly_bytes


def carve_update_bandwidth(
    params: PirParams,
    update_polys_per_s: float,
    db_bandwidth: float,
    placement: "DbPlacement",
    resource: str = "database",
) -> tuple[float, float]:
    """Reserve a sustained update stream's share of the DB channel.

    Returns ``(headroom, effective_bandwidth)``: the fraction of the
    channel left for the serving scan and the bandwidth the serving model
    should see.  Raises the typed rejection past ``UPDATE_HEADROOM_CAP``.
    One helper for every scale-up system so the cap policy and the
    carve-out math cannot drift between them.
    """
    demand = update_bandwidth_demand(params, update_polys_per_s)
    if demand > UPDATE_HEADROOM_CAP * db_bandwidth:
        raise ParameterError(
            f"update stream needs {demand / 1e9:.1f} GB/s of the "
            f"{db_bandwidth / 1e9:.0f} GB/s {placement.value} channel "
            f"(cap {UPDATE_HEADROOM_CAP:.0%}); shard the {resource} or "
            "batch the churn"
        )
    return 1.0 - demand / db_bandwidth, db_bandwidth - demand


def choose_placement(preprocessed_db_bytes: int, memory) -> tuple[DbPlacement, float]:
    """Adaptive placement rule of Section V: (placement, DB bandwidth).

    The preprocessed database goes to HBM while it fits next to the
    per-query working set, spills to the LPDDR expander otherwise.  Shared
    by :class:`ScaleUpSystem` and the serving shard registry so both layers
    agree on where a database of a given size lives.
    """
    if preprocessed_db_bytes <= memory.hbm_capacity - _HBM_WORKING_RESERVE:
        return DbPlacement.HBM, memory.hbm_bandwidth
    if preprocessed_db_bytes <= memory.lpddr_capacity:
        return DbPlacement.LPDDR, memory.lpddr_bandwidth
    raise ParameterError(
        f"preprocessed DB of {preprocessed_db_bytes / (1 << 30):.0f} GiB exceeds "
        "the LPDDR capacity of one IVE system; use an IveCluster"
    )


@dataclass
class ScaleUpSystem:
    """One IVE chip plus its adaptive memory system."""

    params: PirParams
    config: IveConfig = None  # type: ignore[assignment]
    traversal: Traversal = Traversal.HS_DFS
    #: Sustained online-update rate (dirty polynomials/s, ``repro.mutate``).
    #: The write-back traffic is carved out of the database channel before
    #: the serving model sees it; rates past ``UPDATE_HEADROOM_CAP`` of the
    #: placed channel are rejected.
    update_polys_per_s: float = 0.0

    def __post_init__(self):
        if self.config is None:
            self.config = IveConfig.ive()
        self.placement, db_bandwidth = choose_placement(
            self.preprocessed_db_bytes, self.config.memory
        )
        self.update_headroom, effective_bandwidth = carve_update_bandwidth(
            self.params, self.update_polys_per_s, db_bandwidth, self.placement
        )
        self.simulator = IveSimulator(
            self.config,
            self.params,
            traversal=self.traversal,
            db_bandwidth=effective_bandwidth,
            db_on_hbm=self.placement is DbPlacement.HBM,
        )

    # -- capacity ---------------------------------------------------------
    @property
    def raw_db_bytes(self) -> int:
        return self.params.num_db_polys * self.params.plain_poly_bytes

    @property
    def preprocessed_db_bytes(self) -> int:
        return self.params.num_db_polys * self.params.poly_bytes

    @property
    def max_raw_db_bytes(self) -> float:
        """Supported raw DB size (paper: up to 128 GB per system)."""
        return self.config.memory.lpddr_capacity / self.params.db_expansion_ratio

    # -- performance ----------------------------------------------------------
    def latency(self, batch: int) -> PirLatency:
        return self.simulator.latency(batch)

    def qps(self, batch: int) -> float:
        return self.simulator.qps(batch)

    def min_db_read_seconds(self) -> float:
        return self.simulator.min_db_read_seconds()

    def saturation_batch(self, candidates=(16, 32, 64, 96, 128, 160)) -> int:
        """Smallest batch within 5% of the best throughput (Fig. 13c/d)."""
        rates = {b: self.qps(b) for b in candidates}
        best = max(rates.values())
        for b in candidates:
            if rates[b] >= 0.95 * best:
                return b
        return max(candidates)


@dataclass
class BatchScaleUpSystem:
    """One IVE system serving a cuckoo-bucketed batch-PIR deployment.

    The database lives replicated across ``num_buckets`` small bucket
    databases (``repro.batchpir.layout``); one amortized pass answers up to
    the design batch of k queries by running every bucket's pipeline once.
    Placement follows the same Section V rule as the single-query system,
    but against the REPLICATED preprocessed footprint — batch PIR trades
    ~``replication_factor``x storage for a ~``k / replication_factor``x
    smaller per-query scan.
    """

    bucket_params: PirParams
    num_buckets: int
    config: IveConfig = None  # type: ignore[assignment]
    traversal: Traversal = Traversal.HS_DFS

    def __post_init__(self):
        if self.num_buckets < 1:
            raise ParameterError("need at least one bucket")
        if self.config is None:
            self.config = IveConfig.ive()
        self.placement, db_bandwidth = choose_placement(
            self.preprocessed_db_bytes, self.config.memory
        )
        self.simulator = IveSimulator(
            self.config,
            self.bucket_params,
            traversal=self.traversal,
            db_bandwidth=db_bandwidth,
            db_on_hbm=self.placement is DbPlacement.HBM,
        )

    @property
    def preprocessed_db_bytes(self) -> int:
        """Replicated footprint: every bucket database, preprocessed."""
        return (
            self.num_buckets
            * self.bucket_params.num_db_polys
            * self.bucket_params.poly_bytes
        )

    def pass_latency(self) -> PirLatency:
        """One batch pass: every bucket's pipeline, DB streamed once."""
        return self.simulator.batchpir_pass_latency(self.num_buckets)

    def amortized_per_query_s(self, k: int) -> float:
        """Per-query share of one pass serving k retrievals."""
        if k < 1:
            raise ParameterError("amortization needs at least one query")
        return self.pass_latency().total_s / k


@dataclass
class KvScaleUpSystem:
    """One IVE system serving a keyword-PIR slot table (repro.kvpir).

    The database is the tag-inflated slot table: ~1.5x the live records
    (cuckoo slot provisioning rounded up to the power-of-two geometry)
    each carrying ``tag_bytes`` of recognition overhead, and one lookup
    costs ``candidates_per_lookup`` index queries sharing a single table
    scan.  Placement follows the same Section V rule against that
    inflated preprocessed footprint — the keyword layer can push a
    database that fit in HBM as a dense index store out to LPDDR.
    """

    slot_params: PirParams
    candidates_per_lookup: int
    config: IveConfig = None  # type: ignore[assignment]
    traversal: Traversal = Traversal.HS_DFS
    #: Sustained keyword-churn write-back (dirty slot-table polynomials/s).
    #: Keyword churn amplifies: one key touches ~num_hashes bucket copies,
    #: so callers convert key churn to poly churn before passing it here.
    update_polys_per_s: float = 0.0

    def __post_init__(self):
        if self.candidates_per_lookup < 1:
            raise ParameterError("a lookup must probe at least one candidate")
        if self.config is None:
            self.config = IveConfig.ive()
        self.placement, db_bandwidth = choose_placement(
            self.preprocessed_db_bytes, self.config.memory
        )
        self.update_headroom, effective_bandwidth = carve_update_bandwidth(
            self.slot_params,
            self.update_polys_per_s,
            db_bandwidth,
            self.placement,
            resource="slot table",
        )
        self.simulator = IveSimulator(
            self.config,
            self.slot_params,
            traversal=self.traversal,
            db_bandwidth=effective_bandwidth,
            db_on_hbm=self.placement is DbPlacement.HBM,
        )

    @property
    def preprocessed_db_bytes(self) -> int:
        """Preprocessed slot table: the tag-inflated keyword footprint."""
        return self.slot_params.num_db_polys * self.slot_params.poly_bytes

    def lookup_latency(self) -> PirLatency:
        """One standalone keyword lookup (all candidates, one table scan)."""
        return self.simulator.kvpir_lookup_latency(self.candidates_per_lookup)
