"""Waiting-window batch scheduler (Section V "Batch scheduler").

Queries wait at most one *waiting window* before a batch launches; the
window is sized to the RowSel DB-access time, because waiting longer than
the cost batching amortizes adds latency without adding throughput.  This
bounds the batching latency overhead below ~2x the non-batched service
time while retaining the full throughput win (Section VI-F).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError


@dataclass(frozen=True)
class BatchPolicy:
    """Dispatch rule of the scheduler."""

    waiting_window_s: float
    max_batch: int = 128

    def __post_init__(self):
        if self.waiting_window_s < 0:
            raise ParameterError("waiting window cannot be negative")
        if self.max_batch < 1:
            raise ParameterError("max batch must be at least 1")

    def should_dispatch(self, queued: int, oldest_wait_s: float) -> bool:
        """Launch when the window expires or the batch is full."""
        if queued <= 0:
            return False
        return queued >= self.max_batch or oldest_wait_s >= self.waiting_window_s


def window_from_db_read(min_db_read_s: float) -> float:
    """Paper policy: the window equals the RowSel DB access time."""
    return min_db_read_s


@dataclass(frozen=True)
class ServicePoint:
    """One load level of the load-latency curve (Fig. 14b)."""

    arrival_qps: float
    mean_latency_s: float
    p95_latency_s: float
    mean_batch: float
    served: int

    @property
    def stable(self) -> bool:
        """Heuristic stability flag: finite latency growth."""
        return self.mean_latency_s < float("inf")
