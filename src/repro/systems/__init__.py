"""Deployment systems: scale-up memory hierarchy, RLP cluster, batching."""

from repro.systems.batching import BatchPolicy, ServicePoint, window_from_db_read
from repro.systems.cluster import ClusterLatency, IveCluster
from repro.systems.queueing import (
    break_even_rate,
    load_latency_curve,
    simulate_batching,
    simulate_fifo,
)
from repro.systems.scale_up import DbPlacement, ScaleUpSystem

__all__ = [
    "BatchPolicy",
    "ClusterLatency",
    "DbPlacement",
    "IveCluster",
    "ScaleUpSystem",
    "ServicePoint",
    "break_even_rate",
    "load_latency_curve",
    "simulate_batching",
    "simulate_fifo",
    "window_from_db_read",
]
