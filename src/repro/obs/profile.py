"""Opt-in kernel profiling: per-stage seconds and bytes moved.

The batched kernels (``repro.he.batched``, the RowSel GEMM, expand,
ColTor) call :func:`kernel_stage` around their hot bodies.  With no
profiler installed that call returns a shared no-op context manager —
one global read and no allocation, so the uninstrumented hot path pays
essentially nothing.  With a :class:`KernelProfiler` installed (via
:func:`install` or the :func:`profiled` context manager) each stage
accumulates call count, ``perf_counter`` seconds, and the bytes its
dominant tensors moved, giving the measured side of the
measured-vs-modeled table next to :class:`~repro.arch.simulator.
IveSimulator`'s analytic per-stage predictions.

Stages intentionally nest (``subs`` contains ``ntt_fwd`` and
``decompose``; ``rowsel`` contains ``gemm``), so per-stage seconds
overlap and do not sum to wall time — the report says so.

Worker processes install their own profiler at spawn when
``WorkerConfig.profile`` is set and ship :meth:`KernelProfiler.
stats_tuple` back in ``WorkerStopped``; the coordinator merges them
with :meth:`KernelProfiler.merge_tuples`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

_PROFILER: "KernelProfiler | None" = None


class _NullCtx:
    """The uninstalled fast path: a shared, allocation-free no-op."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL = _NullCtx()


class _StageTimer:
    __slots__ = ("profiler", "name", "nbytes", "start")

    def __init__(self, profiler: "KernelProfiler", name: str, nbytes: int):
        self.profiler = profiler
        self.name = name
        self.nbytes = nbytes

    def __enter__(self):
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.profiler._record(
            self.name, time.perf_counter() - self.start, self.nbytes
        )
        return False


def kernel_stage(name: str, nbytes: int = 0):
    """Context manager timing one kernel stage (no-op when uninstalled)."""
    profiler = _PROFILER
    if profiler is None:
        return _NULL
    return _StageTimer(profiler, name, nbytes)


def install(profiler: "KernelProfiler | None") -> "KernelProfiler | None":
    """Install (or clear, with ``None``) the process-global profiler.

    Returns the previously installed profiler so callers can restore it.
    """
    global _PROFILER
    previous = _PROFILER
    _PROFILER = profiler
    return previous


def active() -> "KernelProfiler | None":
    return _PROFILER


@contextmanager
def profiled():
    """Scoped profiling: install a fresh profiler, yield it, restore."""
    profiler = KernelProfiler()
    previous = install(profiler)
    try:
        yield profiler
    finally:
        install(previous)


@dataclass
class StageStats:
    """Accumulated cost of one kernel stage."""

    calls: int = 0
    seconds: float = 0.0
    bytes_moved: int = 0


class KernelProfiler:
    """Accumulates per-stage kernel costs; thread-safe, mergeable."""

    def __init__(self):
        self.stages: dict[str, StageStats] = {}
        self._lock = threading.Lock()

    def _record(self, name: str, seconds: float, nbytes: int) -> None:
        with self._lock:
            stats = self.stages.get(name)
            if stats is None:
                stats = self.stages[name] = StageStats()
            stats.calls += 1
            stats.seconds += seconds
            stats.bytes_moved += nbytes

    def stats_tuple(self) -> tuple:
        """Plain-data form for the cluster pipe: (name, calls, s, bytes)."""
        with self._lock:
            return tuple(
                (name, st.calls, st.seconds, st.bytes_moved)
                for name, st in sorted(self.stages.items())
            )

    def merge_tuples(self, stats: tuple) -> None:
        """Fold in another process's :meth:`stats_tuple`."""
        with self._lock:
            for name, calls, seconds, nbytes in stats:
                own = self.stages.get(name)
                if own is None:
                    own = self.stages[name] = StageStats()
                own.calls += calls
                own.seconds += seconds
                own.bytes_moved += nbytes

    def snapshot(self) -> dict:
        """JSON-serializable per-stage digest with derived bandwidth."""
        with self._lock:
            items = sorted(self.stages.items())
        return {
            name: {
                "calls": st.calls,
                "seconds": st.seconds,
                "bytes_moved": st.bytes_moved,
                "gib_per_s": (
                    st.bytes_moved / st.seconds / (1 << 30) if st.seconds > 0 else 0.0
                ),
            }
            for name, st in items
        }
