"""repro.obs — tracing, metrics, SLOs, flight recorder, export (one surface).

The observability subsystem behind the serving stack:

* :mod:`repro.obs.trace` — per-request spans minted at admission and
  recorded through dispatcher, backend, coordinator, and (across the
  process boundary) cluster workers; exported as JSONL and Chrome
  ``trace_event`` JSON.
* :mod:`repro.obs.metrics` — bounded-memory counters / gauges /
  quantile sketches / windowed time series; the recording substrate
  under :class:`~repro.serve.metrics.ServeMetrics` and the live signal
  feed for the ROADMAP's SLO autoscaler.
* :mod:`repro.obs.slo` — declarative :class:`~repro.obs.slo.SloSpec`
  objectives judged by Google-SRE-style multi-window burn rates; the
  sensor half of that autoscaler.
* :mod:`repro.obs.events` — the flight recorder: a bounded ring of
  structured control-plane events with post-mortem dumps on worker
  death and heartbeat timeout.
* :mod:`repro.obs.export` — Prometheus text exposition, periodic health
  JSONL, and the ``repro obs-watch`` dashboard rendering.
* :mod:`repro.obs.profile` — opt-in kernel stage timers in the batched
  hot path, reported next to the :class:`~repro.arch.simulator.
  IveSimulator` analytic attribution.
* :mod:`repro.obs.report` — strict validation + rendering of the files
  ``repro loadtest --trace`` exports (``repro obs-report``).
"""

from repro.obs.events import Event, FlightRecorder
from repro.obs.export import (
    append_health_jsonl,
    health_snapshot,
    read_health_jsonl,
    render_prometheus,
    render_watch_rows,
)
from repro.obs.metrics import (
    CounterMetric,
    GaugeMetric,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
    TimeSeries,
    WindowAggregate,
)
from repro.obs.profile import (
    KernelProfiler,
    StageStats,
    active,
    install,
    kernel_stage,
    profiled,
)
from repro.obs.report import (
    cross_process_traces,
    measured_vs_modeled,
    render_postmortem,
    render_report,
    validate_chrome_trace,
    validate_obs_json,
    validate_postmortem,
    validate_spans_jsonl,
)
from repro.obs.slo import SloEvaluator, SloSpec, SloVerdict, parse_slo
from repro.obs.trace import Span, Tracer

__all__ = [
    "CounterMetric",
    "Event",
    "FlightRecorder",
    "GaugeMetric",
    "Histogram",
    "KernelProfiler",
    "MetricsRegistry",
    "QuantileSketch",
    "SloEvaluator",
    "SloSpec",
    "SloVerdict",
    "Span",
    "StageStats",
    "TimeSeries",
    "Tracer",
    "WindowAggregate",
    "active",
    "append_health_jsonl",
    "cross_process_traces",
    "health_snapshot",
    "install",
    "kernel_stage",
    "measured_vs_modeled",
    "parse_slo",
    "profiled",
    "read_health_jsonl",
    "render_postmortem",
    "render_prometheus",
    "render_report",
    "render_watch_rows",
    "validate_chrome_trace",
    "validate_obs_json",
    "validate_postmortem",
    "validate_spans_jsonl",
]
