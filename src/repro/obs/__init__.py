"""repro.obs — tracing, live metrics, and kernel profiling (one surface).

The observability subsystem behind the serving stack:

* :mod:`repro.obs.trace` — per-request spans minted at admission and
  recorded through dispatcher, backend, coordinator, and (across the
  process boundary) cluster workers; exported as JSONL and Chrome
  ``trace_event`` JSON.
* :mod:`repro.obs.metrics` — bounded-memory counters / gauges /
  quantile sketches / windowed time series; the recording substrate
  under :class:`~repro.serve.metrics.ServeMetrics` and the live signal
  feed for the ROADMAP's SLO autoscaler.
* :mod:`repro.obs.profile` — opt-in kernel stage timers in the batched
  hot path, reported next to the :class:`~repro.arch.simulator.
  IveSimulator` analytic attribution.
* :mod:`repro.obs.report` — strict validation + rendering of the files
  ``repro loadtest --trace`` exports (``repro obs-report``).
"""

from repro.obs.metrics import (
    CounterMetric,
    GaugeMetric,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
    TimeSeries,
)
from repro.obs.profile import (
    KernelProfiler,
    StageStats,
    active,
    install,
    kernel_stage,
    profiled,
)
from repro.obs.report import (
    cross_process_traces,
    measured_vs_modeled,
    render_report,
    validate_chrome_trace,
    validate_obs_json,
    validate_spans_jsonl,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "CounterMetric",
    "GaugeMetric",
    "Histogram",
    "KernelProfiler",
    "MetricsRegistry",
    "QuantileSketch",
    "Span",
    "StageStats",
    "TimeSeries",
    "Tracer",
    "active",
    "cross_process_traces",
    "install",
    "kernel_stage",
    "measured_vs_modeled",
    "profiled",
    "render_report",
    "validate_chrome_trace",
    "validate_obs_json",
    "validate_spans_jsonl",
]
