"""Export surfaces: Prometheus text exposition, health JSONL, watch views.

Three ways the same observability state leaves the process:

* :func:`render_prometheus` — any
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` (plus an optional
  cluster snapshot) as Prometheus text exposition format, so a real
  scrape pipeline can ingest a run without bespoke glue;
* :func:`health_snapshot` / :func:`append_health_jsonl` — one periodic
  health row (rates over the sampling interval, cumulative counters,
  SLO verdicts, cluster fault counters) appended to a JSONL file that a
  live ``repro obs-watch`` tails and ``--replay`` re-renders;
* :func:`render_watch_rows` — the terminal dashboard lines themselves.

:func:`read_health_jsonl` is the strict loader (typed
:class:`~repro.errors.ObsError` naming the bad file and line), the same
contract as the span/trace validators in :mod:`repro.obs.report`.
"""

from __future__ import annotations

import json
import re

from repro.errors import ObsError

#: Keys every health row must carry (type-checked by the loader).
_HEALTH_NUMBERS = ("t_s", "qps", "rejection_rate")
_HEALTH_COUNTS = ("submitted", "rejected", "served", "failed")

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, namespace: str) -> str:
    return f"{namespace}_{_NAME_OK.sub('_', name)}"


def _prom_number(value) -> str:
    if value != value:  # NaN
        return "NaN"
    return repr(float(value)) if isinstance(value, float) else str(int(value))


def render_prometheus(
    snapshot: dict, cluster: dict | None = None, namespace: str = "repro"
) -> str:
    """A registry snapshot as Prometheus text exposition format.

    Counters get the conventional ``_total`` suffix, histograms render
    as summaries (quantile-labelled samples + ``_sum``/``_count``,
    ``None`` quantiles of an empty sketch simply absent), gauges carry a
    ``_max`` twin, and a time series contributes its most recent window
    as instantaneous gauges.  ``cluster`` adds the coordinator's fault
    counters and per-worker liveness.
    """
    lines: list[str] = []
    for name, value in sorted(snapshot.items()):
        metric = _prom_name(name, namespace)
        if isinstance(value, bool):
            raise ObsError(f"metric {name!r} has a non-exportable bool value")
        if isinstance(value, int):
            lines.append(f"# TYPE {metric}_total counter")
            lines.append(f"{metric}_total {value}")
        elif isinstance(value, dict) and {"value", "max"} <= set(value):
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_prom_number(value['value'])}")
            lines.append(f"{metric}_max {_prom_number(value['max'])}")
        elif isinstance(value, dict) and "count" in value:
            lines.append(f"# TYPE {metric} summary")
            for q in ("p50", "p95", "p99"):
                if value.get(q) is not None:
                    quantile = int(q[1:]) / 100.0
                    lines.append(
                        f'{metric}{{quantile="{quantile}"}} '
                        f"{_prom_number(value[q])}"
                    )
            mean = value.get("mean")
            total = 0.0 if mean is None else mean * value["count"]
            lines.append(f"{metric}_sum {_prom_number(total)}")
            lines.append(f"{metric}_count {value['count']}")
        elif isinstance(value, list):
            if not value:
                continue
            last = value[-1]
            lines.append(f"# TYPE {metric}_qps gauge")
            lines.append(f"{metric}_qps {_prom_number(last['qps'])}")
            if last.get("p99_s") is not None:
                lines.append(f"# TYPE {metric}_p99_s gauge")
                lines.append(f"{metric}_p99_s {_prom_number(last['p99_s'])}")
            lines.append(f"# TYPE {metric}_rejection_rate gauge")
            lines.append(
                f"{metric}_rejection_rate {_prom_number(last['rejection_rate'])}"
            )
        else:
            raise ObsError(
                f"metric {name!r} has unexportable shape {type(value).__name__}"
            )
    if cluster is not None:
        pre = f"{namespace}_cluster"
        for key in (
            "batches_sent",
            "batches_retried",
            "worker_deaths",
            "heartbeat_timeouts",
            "rebalanced_shards",
            "epochs_published",
        ):
            if key in cluster:
                lines.append(f"# TYPE {pre}_{key}_total counter")
                lines.append(f"{pre}_{key}_total {cluster[key]}")
        if "live_workers" in cluster:
            lines.append(f"# TYPE {pre}_live_workers gauge")
            lines.append(f"{pre}_live_workers {len(cluster['live_workers'])}")
        for worker_id, info in sorted(cluster.get("workers", {}).items()):
            lines.append(
                f'{pre}_worker_up{{worker="{worker_id}"}} '
                f"{1 if info.get('alive') else 0}"
            )
            lines.append(
                f'{pre}_worker_inflight{{worker="{worker_id}"}} '
                f"{info.get('inflight', 0)}"
            )
    return "\n".join(lines) + "\n"


# -- health snapshots ------------------------------------------------------
def health_snapshot(
    now_s: float,
    metrics,
    interval_s: float,
    verdicts=(),
    cluster: dict | None = None,
) -> dict:
    """One JSONL health row: interval rates + cumulative counters + SLOs.

    ``metrics`` is a :class:`~repro.serve.metrics.ServeMetrics`; rates
    come from its windowed series aggregated over the last
    ``interval_s`` (counts, not rounded rates), cumulative counters from
    its registry counters.
    """
    agg = metrics.series.aggregate(now_s - interval_s, now_s)
    p99 = agg.latency.quantile(0.99)
    return {
        "t_s": now_s,
        "interval_s": interval_s,
        "qps": agg.served / interval_s if interval_s > 0 else 0.0,
        "p99_s": p99,
        "rejection_rate": agg.rejection_rate,
        "submitted": metrics.submitted,
        "rejected": metrics.rejected,
        "served": metrics.served,
        "failed": metrics.failed,
        "queue_depth": metrics.queue_depth,
        "slo": [v.to_json() for v in verdicts],
        "worst_state": _worst(verdicts),
        "cluster": cluster,
    }


def _worst(verdicts) -> str:
    rank = {"ok": 0, "warn": 1, "breach": 2}
    worst = "ok"
    for verdict in verdicts:
        if rank[verdict.state] > rank[worst]:
            worst = verdict.state
    return worst


def append_health_jsonl(path, row: dict) -> None:
    """Append one row; open-per-write so a tailing watcher sees it."""
    with open(path, "a") as fh:
        fh.write(json.dumps(row) + "\n")


def read_health_jsonl(path) -> list[dict]:
    """Strictly load a health JSONL file (typed failures name the line)."""
    try:
        with open(path) as fh:
            lines = fh.readlines()
    except OSError as exc:
        raise ObsError(f"cannot read health file {path}: {exc}") from None
    rows: list[dict] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsError(f"{path}:{lineno}: not valid JSON: {exc}") from None
        if not isinstance(row, dict):
            raise ObsError(f"{path}:{lineno}: health row must be an object")
        for key in _HEALTH_NUMBERS:
            if not isinstance(row.get(key), (int, float)) or isinstance(
                row.get(key), bool
            ):
                raise ObsError(f"{path}:{lineno}: health row needs number {key!r}")
        for key in _HEALTH_COUNTS:
            if not isinstance(row.get(key), int) or isinstance(row.get(key), bool):
                raise ObsError(f"{path}:{lineno}: health row needs count {key!r}")
        if not isinstance(row.get("slo", []), list):
            raise ObsError(f"{path}:{lineno}: 'slo' must be a list of verdicts")
        rows.append(row)
    return rows


# -- the watch view --------------------------------------------------------
def _ms(value) -> str:
    return "n/a" if value is None else f"{value * 1e3:7.1f}ms"


def render_watch_header() -> str:
    return (
        f"{'t_s':>9s} {'qps':>8s} {'p99':>9s} {'reject':>7s} "
        f"{'queue':>6s} {'served':>8s} {'slo':>7s}"
    )


def render_watch_row(row: dict) -> str:
    """One health row as one dashboard line (+ per-SLO detail on trouble)."""
    state = row.get("worst_state", "ok")
    flag = {"ok": "ok", "warn": "WARN", "breach": "BREACH"}[state]
    line = (
        f"{row['t_s']:>9.1f} {row['qps']:>8.1f} {_ms(row.get('p99_s')):>9s} "
        f"{row['rejection_rate']:>6.1%} {row.get('queue_depth', 0):>6d} "
        f"{row['served']:>8d} {flag:>7s}"
    )
    details = [
        f"    !! {v['name']}: {v['state']} burn fast {v['burn_fast']:.1f} "
        f"slow {v['burn_slow']:.1f} (measured {v['measured']}, "
        f"objective {v['objective']})"
        for v in row.get("slo", ())
        if v.get("state") != "ok"
    ]
    return "\n".join([line, *details])


def render_watch_rows(rows: list[dict], cluster_tail: bool = True) -> list[str]:
    """The full replay view: header, every row, and a closing summary."""
    lines = [render_watch_header()]
    lines.extend(render_watch_row(row) for row in rows)
    if rows:
        states = [row.get("worst_state", "ok") for row in rows]
        breaches = sum(1 for s in states if s == "breach")
        warns = sum(1 for s in states if s == "warn")
        last = rows[-1]
        lines.append(
            f"{len(rows)} snapshots: {breaches} breach, {warns} warn; "
            f"final {last['served']} served / {last['rejected']} rejected / "
            f"{last['failed']} failed"
        )
        cluster = last.get("cluster") if cluster_tail else None
        if cluster:
            lines.append(
                f"cluster: {len(cluster.get('live_workers', []))} live, "
                f"{cluster.get('worker_deaths', 0)} death(s), "
                f"{cluster.get('batches_retried', 0)} retried, "
                f"{cluster.get('rebalanced_shards', 0)} rebalanced"
            )
    else:
        lines.append("no health snapshots")
    return lines
