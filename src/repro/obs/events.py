"""Flight recorder: a bounded ring of structured serving events.

Metrics say *how much*; traces say *how long*; neither says *what
happened* when a worker dies mid-batch.  The flight recorder fills that
gap: every control-plane decision — an admission rejection, a dispatch,
a worker death, a retry, a rebalance, an epoch publish, a heartbeat
timeout, an SLO state transition — is one :class:`Event` in a fixed-size
ring buffer.  Recording is a deque append under a lock: cheap enough to
leave on in production, bounded no matter how long a run streams.

On a fatal event (by default ``worker.death`` and ``heartbeat.timeout``)
the recorder snapshots itself into a **post-mortem**: the ring, every
attached context source (the coordinator's ``cluster_snapshot()``, the
live metrics series), and a trace-id index cross-linking events to the
distributed traces of the requests they affected.  The dump is one JSON
file, validated and rendered by ``repro obs-report --postmortem``.

Event timestamps are whatever clock the recorder's callers use —
``loop.time()`` on the serving side — so the ring lines up with the
metrics windows and trace spans of the same run, wall-clock or virtual.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ParameterError

#: The schema version stamped into post-mortem dumps.
POSTMORTEM_VERSION = 1

#: Event kinds that snapshot a post-mortem when a dump directory is set.
DEFAULT_TRIGGER_KINDS = frozenset({"worker.death", "heartbeat.timeout"})

#: kind -> severity for the kinds the serving stack records.  Unknown
#: kinds default to "info" — the recorder owns no semantics beyond this.
_SEVERITY = {
    "admission.reject": "warn",
    "batch.failed": "error",
    "batch.retry": "warn",
    "worker.death": "error",
    "heartbeat.timeout": "error",
    "shard.rebalance": "warn",
    "slo.breach": "error",
    "slo.warn": "warn",
    "postmortem.error": "error",
}


@dataclass(frozen=True)
class Event:
    """One structured control-plane occurrence."""

    seq: int
    at_s: float
    kind: str
    severity: str
    trace_ids: tuple = ()
    args: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "seq": self.seq,
            "at_s": self.at_s,
            "kind": self.kind,
            "severity": self.severity,
            "trace_ids": list(self.trace_ids),
            "args": self.args,
        }


class FlightRecorder:
    """Bounded ring of :class:`Event` values with post-mortem dumps.

    Thread-safe: the dispatcher records from the event loop while the
    coordinator's reader threads marshal deaths in and benchmark
    harnesses read snapshots.  The ring holds the last ``capacity``
    events; older ones are evicted (counted in ``dropped``), which is
    exactly what a post-mortem wants — the most recent history, not an
    unbounded archive.
    """

    def __init__(
        self,
        capacity: int = 4096,
        dump_dir: str | None = None,
        trigger_kinds=DEFAULT_TRIGGER_KINDS,
        max_dumps: int = 8,
    ):
        if capacity < 1:
            raise ParameterError("flight recorder needs capacity >= 1")
        if max_dumps < 1:
            raise ParameterError("need room for at least one post-mortem")
        self.capacity = capacity
        self.dump_dir = dump_dir
        self.trigger_kinds = frozenset(trigger_kinds)
        self.max_dumps = max_dumps
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0
        self._dumps_written = 0
        self._sources: dict[str, object] = {}
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------
    def record(
        self,
        kind: str,
        at_s: float,
        trace_ids=(),
        severity: str | None = None,
        **args,
    ) -> Event:
        """Append one event; fires a post-mortem dump on a trigger kind."""
        with self._lock:
            self._seq += 1
            event = Event(
                seq=self._seq,
                at_s=at_s,
                kind=kind,
                severity=severity or _SEVERITY.get(kind, "info"),
                trace_ids=tuple(t for t in trace_ids if t is not None),
                args=args,
            )
            if len(self._ring) == self.capacity:
                self._dropped += 1
            self._ring.append(event)
        # The failure marker itself can never trigger (that would recurse).
        if (
            kind in self.trigger_kinds
            and kind != "postmortem.error"
            and self.dump_dir is not None
        ):
            self._auto_dump(event)
        return event

    def attach_source(self, name: str, snapshot_fn) -> None:
        """Register a zero-arg callable snapshotted into every dump.

        The coordinator attaches ``cluster_snapshot``; the serving metrics
        attach ``live_series``.  Sources are called at dump time, so the
        post-mortem captures the state *at* the fatal event.
        """
        with self._lock:
            self._sources[name] = snapshot_fn

    # -- reading -----------------------------------------------------------
    def events(self) -> list[Event]:
        with self._lock:
            return list(self._ring)

    @property
    def dropped(self) -> int:
        return self._dropped

    @property
    def dumps_written(self) -> int:
        return self._dumps_written

    def events_of(self, kind: str) -> list[Event]:
        return [e for e in self.events() if e.kind == kind]

    def trace_index(self) -> dict[int, list[int]]:
        """trace id -> event seqs that touched it (the cross-link table)."""
        out: dict[int, list[int]] = {}
        for event in self.events():
            for trace_id in event.trace_ids:
                out.setdefault(trace_id, []).append(event.seq)
        return out

    # -- post-mortems ------------------------------------------------------
    def postmortem(self, reason: str, at_s: float) -> dict:
        """The dump as a JSON-ready dict (ring + sources + cross-links)."""
        events = self.events()
        sources = {}
        with self._lock:
            snapshot_fns = dict(self._sources)
        for name, fn in sorted(snapshot_fns.items()):
            try:
                sources[name] = fn()
            except Exception as exc:  # noqa: BLE001 — a dead source must
                # not cost us the dump; the failure is itself recorded.
                sources[name] = {"error": f"{type(exc).__name__}: {exc}"}
        index: dict[int, list[int]] = {}
        for event in events:
            for trace_id in event.trace_ids:
                index.setdefault(trace_id, []).append(event.seq)
        return {
            "postmortem_version": POSTMORTEM_VERSION,
            "reason": reason,
            "at_s": at_s,
            "capacity": self.capacity,
            "dropped": self._dropped,
            "events": [e.to_json() for e in events],
            "trace_index": {str(t): seqs for t, seqs in sorted(index.items())},
            "sources": sources,
        }

    def dump(self, path: str, reason: str, at_s: float) -> str:
        """Write one post-mortem JSON file; returns the path."""
        doc = self.postmortem(reason, at_s)
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=2, default=_jsonable)
        with self._lock:
            self._dumps_written += 1
        return path

    def _auto_dump(self, event: Event) -> None:
        """Triggered dump into ``dump_dir``; never breaks the caller."""
        with self._lock:
            if self._dumps_written >= self.max_dumps:
                return
            n = self._dumps_written
        path = os.path.join(
            self.dump_dir, f"postmortem-{n:03d}-{event.kind.replace('.', '-')}.json"
        )
        try:
            os.makedirs(self.dump_dir, exist_ok=True)
            self.dump(path, reason=f"{event.kind} (event seq {event.seq})",
                      at_s=event.at_s)
        except Exception as exc:  # noqa: BLE001 — the recorder is an
            # observer: a full disk must not take the coordinator down
            # with it.  The failure stays visible as its own event.
            self.record(
                "postmortem.error",
                event.at_s,
                path=path,
                error=f"{type(exc).__name__}: {exc}",
            )


def _jsonable(value):
    """Last-resort serializer for source snapshots (tuples, numpy scalars)."""
    if hasattr(value, "item"):
        return value.item()
    if hasattr(value, "to_json"):
        return value.to_json()
    return str(value)
