"""SLO definitions and multi-window burn-rate evaluation.

The sensor half of the ROADMAP's SLO-driven autoscaling loop: an
:class:`SloSpec` declares an objective — a latency quantile, a
rejection-rate bound, or an error-rate bound — and the
:class:`SloEvaluator` turns the live
:class:`~repro.obs.metrics.TimeSeries` into typed :class:`SloVerdict`
values using Google-SRE-style burn rates.

Burn rate is *budget consumption speed*: with an objective of "p99 at or
under 250 ms" (quantile 0.99), one request in a hundred is allowed to be
slower — that 1% is the error budget.  If 3% of the requests in a window
were slower, the window burned budget at 3x the sustainable rate: burn
rate 3.0.  Rates come straight from the raw window counts (``rejected``
over ``submitted``, sketch ``count_above`` over ``count``) — never
reconstructed from rounded rates.

One window is not enough: a single slow batch in an otherwise quiet
second produces a huge instantaneous burn that self-heals; a long window
alone keeps paging for an incident that ended ten minutes ago.  The
classic fix is to require **both** a fast and a slow window over
threshold — fast proves it is happening *now*, slow proves it is
*sustained* — and that is exactly what the evaluator does, with a lower
``warn_burn`` and higher ``breach_burn`` pair.

Everything is clock-agnostic: the evaluator is handed ``now_s`` on the
same axis the series records on, so the identical code judges a
wall-clock cluster and a virtual-time million-query simulation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import SloError
from repro.obs.metrics import TimeSeries, WindowAggregate

#: Verdict states, in increasing severity (index = badness rank).
STATES = ("ok", "warn", "breach")

_LATENCY_QUANTILES = {"p50": 0.50, "p95": 0.95, "p99": 0.99}

#: ``p99<=0.25``, ``reject<=0.01``, ``error<=0.001`` with an optional
#: ``@fast/slow`` window suffix in seconds, e.g. ``p99<=0.25@5/60``.
_SPEC_RE = re.compile(
    r"^(?P<signal>p50|p95|p99|reject|error)"
    r"<=(?P<objective>[0-9.eE+-]+)"
    r"(?:@(?P<fast>[0-9.]+)/(?P<slow>[0-9.]+))?$"
)


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective over the serving signals.

    ``kind`` selects the signal:

    * ``latency`` — fraction of served requests slower than ``objective``
      seconds must stay within ``1 - quantile``;
    * ``rejection`` — fraction of submissions shed at admission must stay
      within ``objective``;
    * ``error`` — fraction of finished requests that failed must stay
      within ``objective``.
    """

    name: str
    kind: str
    objective: float
    quantile: float = 0.99
    fast_window_s: float = 5.0
    slow_window_s: float = 60.0
    warn_burn: float = 1.0
    breach_burn: float = 2.0

    def __post_init__(self):
        if self.kind not in ("latency", "rejection", "error"):
            raise SloError(f"unknown SLO kind {self.kind!r}")
        if self.kind == "latency":
            if self.objective <= 0.0:
                raise SloError("latency objective must be positive seconds")
            if not 0.0 < self.quantile < 1.0:
                raise SloError("latency quantile must be in (0, 1)")
        elif not 0.0 < self.objective < 1.0:
            raise SloError(f"{self.kind} objective must be a fraction in (0, 1)")
        if not 0.0 < self.fast_window_s <= self.slow_window_s:
            raise SloError("need 0 < fast window <= slow window")
        if not 0.0 < self.warn_burn <= self.breach_burn:
            raise SloError("need 0 < warn burn <= breach burn")

    @property
    def budget(self) -> float:
        """Allowed bad fraction (what a burn rate of 1.0 consumes)."""
        return (1.0 - self.quantile) if self.kind == "latency" else self.objective

    def bad_total(self, agg: WindowAggregate) -> tuple[int, int]:
        """(bad events, total events) for this objective in one aggregate."""
        if self.kind == "latency":
            return agg.latency.count_above(self.objective), agg.latency.count
        if self.kind == "rejection":
            return agg.rejected, agg.submitted
        return agg.failed, agg.served + agg.failed

    def burn_rate(self, agg: WindowAggregate) -> float:
        """Budget-consumption speed over one aggregate; 0.0 when idle."""
        bad, total = self.bad_total(agg)
        if total == 0:
            return 0.0
        return (bad / total) / self.budget

    def measured(self, agg: WindowAggregate) -> float | None:
        """The headline number a human compares to the objective."""
        if self.kind == "latency":
            return agg.latency.quantile(self.quantile)
        if self.kind == "rejection":
            return agg.rejection_rate
        return agg.error_rate

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "quantile": self.quantile if self.kind == "latency" else None,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "warn_burn": self.warn_burn,
            "breach_burn": self.breach_burn,
        }


@dataclass(frozen=True)
class SloVerdict:
    """One evaluation of one spec at one instant."""

    name: str
    kind: str
    state: str
    at_s: float
    burn_fast: float
    burn_slow: float
    measured: float | None
    objective: float
    fast_window_s: float
    slow_window_s: float
    samples: int = 0

    @property
    def is_breach(self) -> bool:
        return self.state == "breach"

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "state": self.state,
            "at_s": self.at_s,
            "burn_fast": self.burn_fast,
            "burn_slow": self.burn_slow,
            "measured": self.measured,
            "objective": self.objective,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "samples": self.samples,
        }


def parse_slo(text: str, **overrides) -> SloSpec:
    """Parse one ``--slo`` string into a spec.

    Forms: ``p50|p95|p99<=SECONDS`` (latency), ``reject<=FRACTION``,
    ``error<=FRACTION``; all take an optional ``@FAST/SLOW`` window
    suffix in seconds.  Anything else is a typed :class:`SloError`.
    """
    m = _SPEC_RE.match(text.strip())
    if m is None:
        raise SloError(
            f"cannot parse SLO {text!r}; expected e.g. 'p99<=0.25', "
            f"'reject<=0.01', 'error<=0.001', optionally '@FAST/SLOW' seconds"
        )
    signal = m.group("signal")
    try:
        objective = float(m.group("objective"))
    except ValueError:
        raise SloError(f"bad objective number in SLO {text!r}") from None
    kwargs: dict = {"name": text.strip(), "objective": objective}
    if signal in _LATENCY_QUANTILES:
        kwargs["kind"] = "latency"
        kwargs["quantile"] = _LATENCY_QUANTILES[signal]
    else:
        kwargs["kind"] = "rejection" if signal == "reject" else "error"
    if m.group("fast") is not None:
        kwargs["fast_window_s"] = float(m.group("fast"))
        kwargs["slow_window_s"] = float(m.group("slow"))
    kwargs.update(overrides)
    return SloSpec(**kwargs)


@dataclass
class _SpecState:
    """Streaming bookkeeping for one spec."""

    last: SloVerdict | None = None
    transitions: dict = field(default_factory=dict)


class SloEvaluator:
    """Streams verdicts for a set of specs over one live series.

    Stateless per evaluation (aggregate, divide, compare) but stateful
    across evaluations: it remembers the previous verdict per spec so
    state *transitions* — the events an operator and the flight recorder
    care about — are detected and counted exactly once.
    """

    def __init__(self, series: TimeSeries, specs, recorder=None):
        specs = list(specs)
        if not specs:
            raise SloError("need at least one SLO spec to evaluate")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise SloError(f"duplicate SLO names: {sorted(names)}")
        self.series = series
        self.specs = specs
        self.recorder = recorder
        self._state = {s.name: _SpecState() for s in specs}
        self.evaluations = 0
        self.breaches = 0

    def evaluate(self, now_s: float) -> list[SloVerdict]:
        """Judge every spec at ``now_s``; pure — no streaming state."""
        verdicts = []
        for spec in self.specs:
            fast = self.series.aggregate(now_s - spec.fast_window_s, now_s)
            slow = self.series.aggregate(now_s - spec.slow_window_s, now_s)
            burn_fast = spec.burn_rate(fast)
            burn_slow = spec.burn_rate(slow)
            # Multi-window gating: BOTH windows must burn over threshold —
            # fast alone is noise, slow alone is an incident already over.
            confirmed = min(burn_fast, burn_slow)
            if confirmed >= spec.breach_burn:
                state = "breach"
            elif confirmed >= spec.warn_burn:
                state = "warn"
            else:
                state = "ok"
            verdicts.append(
                SloVerdict(
                    name=spec.name,
                    kind=spec.kind,
                    state=state,
                    at_s=now_s,
                    burn_fast=burn_fast,
                    burn_slow=burn_slow,
                    measured=spec.measured(fast),
                    objective=spec.objective,
                    fast_window_s=spec.fast_window_s,
                    slow_window_s=spec.slow_window_s,
                    samples=spec.bad_total(fast)[1],
                )
            )
        return verdicts

    def poll(self, now_s: float) -> list[SloVerdict]:
        """Evaluate + update streaming state; records transition events."""
        verdicts = self.evaluate(now_s)
        self.evaluations += 1
        for verdict in verdicts:
            state = self._state[verdict.name]
            previous = state.last.state if state.last is not None else "ok"
            if verdict.state != previous:
                key = f"{previous}->{verdict.state}"
                state.transitions[key] = state.transitions.get(key, 0) + 1
                if verdict.state == "breach":
                    self.breaches += 1
                self._record_transition(verdict, previous)
            state.last = verdict
        return verdicts

    def _record_transition(self, verdict: SloVerdict, previous: str) -> None:
        if self.recorder is None:
            return
        kind = {
            "breach": "slo.breach",
            "warn": "slo.warn",
            "ok": "slo.recover",
        }[verdict.state]
        self.recorder.record(
            kind,
            verdict.at_s,
            slo=verdict.name,
            previous=previous,
            burn_fast=verdict.burn_fast,
            burn_slow=verdict.burn_slow,
            measured=verdict.measured,
            objective=verdict.objective,
        )

    # -- streaming summaries ----------------------------------------------
    @property
    def last_verdicts(self) -> list[SloVerdict]:
        return [
            st.last
            for st in (self._state[s.name] for s in self.specs)
            if st.last is not None
        ]

    @property
    def worst_state(self) -> str:
        verdicts = self.last_verdicts
        if not verdicts:
            return "ok"
        return max(verdicts, key=lambda v: STATES.index(v.state)).state

    def transitions(self, name: str) -> dict:
        return dict(self._state[name].transitions)

    def summary(self) -> dict:
        """JSON-ready digest: last verdict + transition counts per spec."""
        return {
            "evaluations": self.evaluations,
            "breaches": self.breaches,
            "worst_state": self.worst_state,
            "slos": [
                {
                    "spec": spec.to_json(),
                    "last": (
                        self._state[spec.name].last.to_json()
                        if self._state[spec.name].last is not None
                        else None
                    ),
                    "transitions": dict(self._state[spec.name].transitions),
                }
                for spec in self.specs
            ],
        }
