"""Validate and render the artifacts a traced loadtest exports.

Three files come out of ``repro loadtest --trace --obs-out PREFIX``:

* ``PREFIX.spans.jsonl``  — one span per line (machine-readable);
* ``PREFIX.trace.json``   — Chrome ``trace_event`` JSON for
  ``chrome://tracing`` / Perfetto;
* ``PREFIX.obs.json``     — the run digest: metrics snapshot, live
  time series, kernel profile, and cluster snapshot when applicable.

``repro obs-report`` (and the CI trace smoke) run the validators here —
strict, typed failures via :class:`~repro.errors.ObsError` — and render
the human-readable report, including the measured-vs-modeled table that
puts profiled kernel seconds next to the analytic
:class:`~repro.arch.simulator.IveSimulator` attribution.
"""

from __future__ import annotations

import json

from repro.errors import ObsError

#: Profiled stage name -> IveSimulator breakdown component.  Only the
#: three pipeline stages have an analytic twin; the finer-grained kernel
#: stages (ntt_fwd, gemm, ...) are reported measured-only.
STAGE_TO_MODEL = {
    "expand": "ExpandQuery",
    "rowsel": "RowSel",
    "coltor": "ColTor",
}

_SPAN_FIELDS = {
    "name": str,
    "cat": str,
    "start_s": (int, float),
    "dur_s": (int, float),
    "pid": int,
    "tid": str,
    "args": dict,
}


def validate_spans_jsonl(path) -> list[dict]:
    """Parse + schema-check a spans JSONL file; returns the span dicts."""
    spans: list[dict] = []
    try:
        with open(path) as fh:
            lines = fh.readlines()
    except OSError as exc:
        raise ObsError(f"cannot read spans file {path}: {exc}") from None
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            span = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsError(f"{path}:{lineno}: not valid JSON: {exc}") from None
        if not isinstance(span, dict):
            raise ObsError(f"{path}:{lineno}: span must be an object")
        for key, kind in _SPAN_FIELDS.items():
            if key not in span:
                raise ObsError(f"{path}:{lineno}: span missing {key!r}")
            if not isinstance(span[key], kind) or isinstance(span[key], bool):
                raise ObsError(
                    f"{path}:{lineno}: span field {key!r} has type "
                    f"{type(span[key]).__name__}"
                )
        if "trace_id" not in span:
            raise ObsError(f"{path}:{lineno}: span missing 'trace_id'")
        tid = span["trace_id"]
        if tid is not None and (not isinstance(tid, int) or isinstance(tid, bool)):
            raise ObsError(f"{path}:{lineno}: trace_id must be an int or null")
        if span["dur_s"] < 0:
            raise ObsError(f"{path}:{lineno}: negative span duration")
        spans.append(span)
    return spans


def validate_chrome_trace(path) -> dict:
    """Parse + schema-check a Chrome ``trace_event`` file."""
    try:
        with open(path) as fh:
            trace = json.load(fh)
    except OSError as exc:
        raise ObsError(f"cannot read trace file {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ObsError(f"{path}: not valid JSON: {exc}") from None
    if not isinstance(trace, dict) or not isinstance(
        trace.get("traceEvents"), list
    ):
        raise ObsError(f"{path}: expected an object with a 'traceEvents' list")
    for i, event in enumerate(trace["traceEvents"]):
        if not isinstance(event, dict) or "ph" not in event:
            raise ObsError(f"{path}: traceEvents[{i}] is not a phased event")
        if event["ph"] == "X":
            for key in ("name", "cat", "ts", "dur", "pid", "tid"):
                if key not in event:
                    raise ObsError(f"{path}: traceEvents[{i}] missing {key!r}")
            if event["ts"] < 0 or event["dur"] < 0:
                raise ObsError(f"{path}: traceEvents[{i}] has a negative time")
        elif event["ph"] == "M":
            for key in ("name", "pid", "args"):
                if key not in event:
                    raise ObsError(f"{path}: traceEvents[{i}] missing {key!r}")
        else:
            raise ObsError(
                f"{path}: traceEvents[{i}] has unsupported phase {event['ph']!r}"
            )
    return trace


def validate_obs_json(path) -> dict:
    """Parse + schema-check the run digest."""
    try:
        with open(path) as fh:
            obs = json.load(fh)
    except OSError as exc:
        raise ObsError(f"cannot read obs file {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ObsError(f"{path}: not valid JSON: {exc}") from None
    if not isinstance(obs, dict):
        raise ObsError(f"{path}: expected a JSON object")
    for key in ("mode", "metrics", "live_series", "kernel_profile"):
        if key not in obs:
            raise ObsError(f"{path}: digest missing {key!r}")
    metrics = obs["metrics"]
    if not isinstance(metrics, dict):
        raise ObsError(f"{path}: 'metrics' must be an object")
    for key in ("submitted", "served", "latency", "queue_wait"):
        if key not in metrics:
            raise ObsError(f"{path}: metrics snapshot missing {key!r}")
    if not isinstance(obs["live_series"], list):
        raise ObsError(f"{path}: 'live_series' must be a list")
    if not isinstance(obs["kernel_profile"], dict):
        raise ObsError(f"{path}: 'kernel_profile' must be an object")
    return obs


def validate_postmortem(path) -> dict:
    """Parse + schema-check a flight-recorder post-mortem dump."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ObsError(f"cannot read postmortem file {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ObsError(f"{path}: not valid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise ObsError(f"{path}: expected a JSON object")
    for key in ("postmortem_version", "reason", "at_s", "events", "trace_index"):
        if key not in doc:
            raise ObsError(f"{path}: postmortem missing {key!r}")
    if doc["postmortem_version"] != 1:
        raise ObsError(
            f"{path}: unsupported postmortem version {doc['postmortem_version']!r}"
        )
    if not isinstance(doc["events"], list):
        raise ObsError(f"{path}: 'events' must be a list")
    for i, event in enumerate(doc["events"]):
        if not isinstance(event, dict):
            raise ObsError(f"{path}: events[{i}] is not an object")
        for key, kind in (
            ("seq", int),
            ("at_s", (int, float)),
            ("kind", str),
            ("severity", str),
            ("trace_ids", list),
            ("args", dict),
        ):
            if key not in event:
                raise ObsError(f"{path}: events[{i}] missing {key!r}")
            if not isinstance(event[key], kind) or isinstance(event[key], bool):
                raise ObsError(
                    f"{path}: events[{i}] field {key!r} has type "
                    f"{type(event[key]).__name__}"
                )
    if not isinstance(doc["trace_index"], dict):
        raise ObsError(f"{path}: 'trace_index' must be an object")
    return doc


def render_postmortem(doc: dict, last_events: int = 20) -> list[str]:
    """Human-readable post-mortem lines for ``repro obs-report``."""
    events = doc["events"]
    by_severity: dict[str, int] = {}
    for event in events:
        by_severity[event["severity"]] = by_severity.get(event["severity"], 0) + 1
    severity = ", ".join(f"{n} {s}" for s, n in sorted(by_severity.items()))
    lines = [
        f"post-mortem: {doc['reason']} at t={doc['at_s']:.3f}s",
        f"{len(events)} event(s) in ring ({doc.get('dropped', 0)} dropped); "
        f"{severity or 'none'}",
        f"{len(doc['trace_index'])} trace(s) cross-linked to events",
    ]
    for event in events[-last_events:]:
        args = " ".join(f"{k}={v}" for k, v in sorted(event["args"].items()))
        traced = (
            f" traces={event['trace_ids']}" if event["trace_ids"] else ""
        )
        lines.append(
            f"  [{event['seq']:>5d}] t={event['at_s']:9.3f}s "
            f"{event['severity']:>5s} {event['kind']:<18s} {args}{traced}"
        )
    cluster = doc.get("sources", {}).get("cluster")
    if isinstance(cluster, dict) and "live_workers" in cluster:
        lines.append(
            f"cluster at dump: workers {cluster['live_workers']} live, "
            f"{cluster.get('worker_deaths', 0)} death(s), "
            f"{cluster.get('batches_retried', 0)} retried, "
            f"{cluster.get('rebalanced_shards', 0)} rebalanced"
        )
    return lines


def trace_pids(spans: list[dict]) -> dict[int, set[int]]:
    """trace id -> pids it was observed in (from validated span dicts)."""
    out: dict[int, set[int]] = {}
    for span in spans:
        if span["trace_id"] is not None:
            out.setdefault(span["trace_id"], set()).add(span["pid"])
    return out


def cross_process_traces(spans: list[dict]) -> list[int]:
    """Trace ids whose spans cross a process boundary (sorted)."""
    return sorted(t for t, pids in trace_pids(spans).items() if len(pids) >= 2)


def aggregate_kernel_profile(kernel_profile: dict) -> dict:
    """Sum per-stage stats across compute backends.

    Kernel-stage labels carry the backend that spent the time
    (``ntt_fwd@planned``); model comparison and stage-level assertions
    want the base stage regardless of implementation, so fold
    ``stage@backend`` into ``stage`` by summing calls/seconds/bytes.
    """
    out: dict[str, dict] = {}
    for name, stats in kernel_profile.items():
        base = name.split("@", 1)[0]
        agg = out.setdefault(
            base, {"calls": 0, "seconds": 0.0, "bytes_moved": 0}
        )
        agg["calls"] += stats.get("calls", 0)
        agg["seconds"] += stats.get("seconds", 0.0)
        agg["bytes_moved"] += stats.get("bytes_moved", 0)
    return out


def measured_vs_modeled(
    kernel_profile: dict, params, queries: int
) -> list[dict]:
    """Profiled pipeline seconds next to the IVE analytic attribution.

    Absolute numbers are incomparable by design — the measurement is
    numpy on a CPU, the model is the accelerator — so the comparison
    that matters is the *share* each pipeline stage takes.  Modeled
    seconds are per query (batch=1) scaled by the measured query count.
    """
    from repro.arch.config import IveConfig
    from repro.arch.simulator import IveSimulator

    kernel_profile = aggregate_kernel_profile(kernel_profile)
    modeled = IveSimulator(IveConfig.ive(), params).latency(1).breakdown()
    modeled_total = sum(modeled[STAGE_TO_MODEL[s]] for s in STAGE_TO_MODEL)
    measured_total = sum(
        kernel_profile.get(s, {}).get("seconds", 0.0) for s in STAGE_TO_MODEL
    )
    rows = []
    for stage, component in STAGE_TO_MODEL.items():
        stats = kernel_profile.get(stage, {})
        seconds = stats.get("seconds", 0.0)
        model_s = modeled[component] * queries
        rows.append(
            {
                "stage": stage,
                "model_component": component,
                "measured_calls": stats.get("calls", 0),
                "measured_s": seconds,
                "measured_share": (
                    seconds / measured_total if measured_total > 0 else 0.0
                ),
                "modeled_s": model_s,
                "modeled_share": (
                    modeled[component] / modeled_total if modeled_total > 0 else 0.0
                ),
            }
        )
    return rows


def _fmt(value, scale: float = 1.0, unit: str = "") -> str:
    if value is None:
        return "n/a"
    return f"{value * scale:.2f}{unit}"


def render_report(
    spans: list[dict], trace: dict, obs: dict, mvm: list[dict] | None = None
) -> list[str]:
    """Human-readable report lines for ``repro obs-report``."""
    crossing = cross_process_traces(spans)
    pids = sorted({s["pid"] for s in spans})
    metrics = obs["metrics"]
    lat, qw = metrics["latency"], metrics["queue_wait"]
    lines = [
        f"mode {obs['mode']}: {metrics['submitted']} submitted, "
        f"{metrics['served']} served, {metrics['rejected']} rejected, "
        f"{metrics['failed']} failed "
        f"({metrics['achieved_qps']:.1f} QPS over {metrics['elapsed_s']:.2f}s)",
        f"latency p50 {_fmt(lat['p50_s'], 1e3, ' ms')}, "
        f"p95 {_fmt(lat['p95_s'], 1e3, ' ms')}, "
        f"p99 {_fmt(lat['p99_s'], 1e3, ' ms')}; queue wait "
        f"p50 {_fmt(qw['p50_s'], 1e3, ' ms')}, "
        f"p99 {_fmt(qw['p99_s'], 1e3, ' ms')}",
        f"{len(spans)} spans over {len(pids)} process(es); "
        f"{len(trace_pids(spans))} traced requests, "
        f"{len(crossing)} crossing a process boundary",
    ]
    series = obs["live_series"]
    if series:
        lines.append(f"live series ({len(series)} windows, last 5):")
        for row in series[-5:]:
            lines.append(
                f"  t={row['t_s']:8.1f}s qps {row['qps']:7.1f} "
                f"p99 {_fmt(row['p99_s'], 1e3, ' ms'):>10s} "
                f"reject {row['rejection_rate']:6.1%}"
            )
    profile = obs["kernel_profile"]
    if profile:
        lines.append(
            f"{'kernel stage':>14s} {'calls':>7s} {'seconds':>9s} "
            f"{'GiB moved':>10s} {'GiB/s':>7s}"
        )
        for name, st in sorted(
            profile.items(), key=lambda kv: -kv[1]["seconds"]
        ):
            lines.append(
                f"{name:>14s} {st['calls']:>7d} {st['seconds']:>9.3f} "
                f"{st['bytes_moved'] / (1 << 30):>10.3f} {st['gib_per_s']:>7.2f}"
            )
        lines.append("(stages nest — e.g. gemm inside rowsel — so seconds overlap)")
    if mvm:
        lines.append(
            f"{'stage':>8s} {'measured s':>11s} {'share':>7s} "
            f"{'modeled s':>11s} {'share':>7s}   (measured CPU vs modeled IVE)"
        )
        for row in mvm:
            lines.append(
                f"{row['stage']:>8s} {row['measured_s']:>11.4f} "
                f"{row['measured_share']:>6.1%} {row['modeled_s']:>11.6f} "
                f"{row['modeled_share']:>6.1%}"
            )
    cluster = obs.get("cluster")
    if cluster:
        lines.append(
            f"cluster: workers {cluster['live_workers']}, "
            f"{cluster['worker_deaths']} death(s), "
            f"{cluster['heartbeat_timeouts']} heartbeat timeout(s), "
            f"{cluster['batches_retried']} retried, "
            f"{cluster['rebalanced_shards']} rebalanced"
        )
    return lines
