"""Bounded-memory metrics: counters, gauges, quantile sketches, windows.

The serving stack used to account a run by appending every latency to a
Python list and calling ``np.percentile`` at the end — exact, but the
reservoir grows forever and there is no *live* view, so an autoscaler
has nothing to watch.  This module is the replacement substrate:

* :class:`CounterMetric` / :class:`GaugeMetric` — named scalars;
* :class:`QuantileSketch` — a DDSketch-style log-bucketed streaming
  quantile estimator with a relative-accuracy guarantee: memory is
  O(log(max/min) / alpha) regardless of how many samples stream in, and
  every reported quantile is within ``relative_accuracy`` of the exact
  nearest-rank value;
* :class:`Histogram` — a sketch plus exact count/sum/min/max;
* :class:`TimeSeries` — fixed-width time windows of serving signals
  (``qps``, ``p99_s``, ``rejection_rate``), the live feed the future
  SLO controller consumes;
* :class:`MetricsRegistry` — create-or-get ownership of the above by
  name, with one JSON-serializable snapshot of everything.

Everything is thread-safe: dispatchers record from the event loop while
kernel threads and benchmark harnesses read snapshots concurrently.

An *empty* sketch reports ``None`` quantiles — never ``0.0``, which
would be indistinguishable from a genuine zero-latency run.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

from repro.errors import ParameterError

#: Values at or below this are counted in the sketch's zero bucket: the
#: log mapping needs a positive floor, and sub-picosecond "latencies"
#: are clock noise, not signal.
_ZERO_FLOOR = 1e-12


class CounterMetric:
    """A monotonically increasing named counter."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ParameterError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class GaugeMetric:
    """A named point-in-time value; also tracks the maximum ever set."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            if value > self._max:
                self._max = value

    @property
    def value(self) -> float:
        return self._value

    @property
    def max(self) -> float:
        return self._max


class QuantileSketch:
    """Streaming quantiles in bounded memory (DDSketch-style log buckets).

    A non-negative sample ``v`` lands in bucket ``ceil(log_gamma(v))``
    with ``gamma = (1 + a) / (1 - a)`` for relative accuracy ``a``; the
    bucket midpoint ``2 * gamma^k / (gamma + 1)`` is then within a
    relative error of ``a`` of every value the bucket holds.  Quantiles
    are nearest-rank over the bucket counts, so the estimate is within
    ``a`` (relative) of the exact nearest-rank sample — the guarantee
    the accuracy tests assert against ``np.percentile``.
    """

    def __init__(self, relative_accuracy: float = 0.01):
        if not 0.0 < relative_accuracy < 1.0:
            raise ParameterError("relative accuracy must be in (0, 1)")
        self.relative_accuracy = relative_accuracy
        self.gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self.gamma)
        self._buckets: dict[int, int] = {}
        self._zero_count = 0
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        value = float(value)
        if value < 0.0:
            raise ParameterError(f"sketch values must be non-negative, got {value}")
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if value <= _ZERO_FLOOR:
                self._zero_count += 1
            else:
                key = math.ceil(math.log(value) / self._log_gamma)
                self._buckets[key] = self._buckets.get(key, 0) + 1

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch in (same accuracy, hence same bucketing)."""
        if other.gamma != self.gamma:
            raise ParameterError("cannot merge sketches of different accuracy")
        # Snapshot the source under its own lock first (it may be a live
        # window still being recorded into), then fold under ours.  Lock
        # order is always source-then-destination on distinct objects, and
        # self-merge would deadlock, so it short-circuits.
        if other is self:
            with self._lock:
                self.count *= 2
                self.sum *= 2.0
                self._zero_count *= 2
                for key in list(self._buckets):
                    self._buckets[key] *= 2
            return
        with other._lock:
            count, total = other.count, other.sum
            zero = other._zero_count
            buckets = dict(other._buckets)
            lo, hi = other.min, other.max
        with self._lock:
            self.count += count
            self.sum += total
            self._zero_count += zero
            for key, n in buckets.items():
                self._buckets[key] = self._buckets.get(key, 0) + n
            for bound, pick, theirs in (("min", min, lo), ("max", max, hi)):
                ours = getattr(self, bound)
                if theirs is not None:
                    setattr(self, bound, theirs if ours is None else pick(ours, theirs))

    def count_above(self, threshold: float) -> int:
        """How many recorded samples exceeded ``threshold``.

        The count is exact up to bucket granularity: samples in the
        threshold's own bucket are within ``relative_accuracy`` of it, so
        the answer is exact for any threshold at least that far from
        every sample — which is what burn-rate math needs ("requests
        slower than the objective"), not an exact rank.
        """
        threshold = float(threshold)
        with self._lock:
            if self.count == 0:
                return 0
            if threshold < 0.0:
                return self.count
            if threshold <= _ZERO_FLOOR:
                return self.count - self._zero_count
            key = math.ceil(math.log(threshold) / self._log_gamma)
            return sum(n for k, n in self._buckets.items() if k > key)

    def quantile(self, q: float) -> float | None:
        """Nearest-rank quantile estimate; ``None`` on an empty sketch."""
        if not 0.0 <= q <= 1.0:
            raise ParameterError(f"quantile {q} must be in [0, 1]")
        with self._lock:
            if self.count == 0:
                return None
            rank = max(0, math.ceil(q * self.count) - 1)
            # The extremes are tracked exactly; rank 0 / count-1 short-
            # circuit to them so q=0 and q=1 are exact, not bucketed.
            if rank == 0:
                return self.min
            if rank == self.count - 1:
                return self.max
            if rank < self._zero_count:
                return 0.0
            seen = self._zero_count
            for key in sorted(self._buckets):
                seen += self._buckets[key]
                if rank < seen:
                    estimate = 2.0 * self.gamma**key / (self.gamma + 1.0)
                    # Clamping to the exact extremes never worsens the
                    # relative-error bound for interior ranks.
                    return min(max(estimate, self.min), self.max)
            return self.max  # pragma: no cover — rank < count always lands

    @property
    def mean(self) -> float | None:
        return self.sum / self.count if self.count else None

    def summary(self) -> dict:
        """JSON-serializable digest (quantiles ``None`` when empty)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class Histogram:
    """A named distribution: one quantile sketch with its exact moments."""

    def __init__(self, name: str, relative_accuracy: float = 0.01):
        self.name = name
        self.sketch = QuantileSketch(relative_accuracy)

    def record(self, value: float) -> None:
        self.sketch.record(value)

    def quantile(self, q: float) -> float | None:
        return self.sketch.quantile(q)

    @property
    def count(self) -> int:
        return self.sketch.count

    @property
    def mean(self) -> float | None:
        return self.sketch.mean

    def summary(self) -> dict:
        return self.sketch.summary()


@dataclass
class _Window:
    """One time bucket of serving signals."""

    submitted: int = 0
    rejected: int = 0
    served: int = 0
    failed: int = 0
    latency: QuantileSketch | None = None


@dataclass
class WindowAggregate:
    """Serving signals folded over a span of time-series windows.

    The SLO evaluator's raw material: exact counts plus one merged
    latency sketch, so burn rates are computed from counts — never
    reconstructed from rounded rates.
    """

    since_s: float
    until_s: float
    submitted: int = 0
    rejected: int = 0
    served: int = 0
    failed: int = 0
    latency: QuantileSketch | None = None

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.submitted if self.submitted else 0.0

    @property
    def error_rate(self) -> float:
        finished = self.served + self.failed
        return self.failed / finished if finished else 0.0


class TimeSeries:
    """Windowed serving signals: the live view an autoscaler watches.

    Events are bucketed by ``int(t // window_s)`` against whatever clock
    the caller records with (event-loop time, so the same series works
    under the virtual-time loop).  Retention is bounded: once more than
    ``max_windows`` buckets exist, the oldest are dropped — the series
    is a live feed, not an archive.
    """

    def __init__(
        self,
        window_s: float = 1.0,
        max_windows: int = 600,
        relative_accuracy: float = 0.01,
    ):
        if window_s <= 0:
            raise ParameterError("window width must be positive")
        if max_windows < 1:
            raise ParameterError("need at least one retained window")
        self.window_s = window_s
        self.max_windows = max_windows
        self.relative_accuracy = relative_accuracy
        self._windows: dict[int, _Window] = {}
        self._lock = threading.Lock()

    def _window(self, t_s: float) -> _Window:
        key = int(t_s // self.window_s)
        window = self._windows.get(key)
        if window is None:
            window = _Window(latency=QuantileSketch(self.relative_accuracy))
            self._windows[key] = window
            if len(self._windows) > self.max_windows:
                for stale in sorted(self._windows)[: -self.max_windows]:
                    del self._windows[stale]
        return window

    def record_submit(self, accepted: bool, t_s: float) -> None:
        with self._lock:
            window = self._window(t_s)
            window.submitted += 1
            if not accepted:
                window.rejected += 1

    def record_served(self, latency_s: float, t_s: float) -> None:
        with self._lock:
            window = self._window(t_s)
            window.served += 1
            window.latency.record(latency_s)

    def record_failed(self, t_s: float, count: int = 1) -> None:
        with self._lock:
            self._window(t_s).failed += count

    def rows(self) -> list[dict]:
        """The series as JSON rows, oldest first."""
        with self._lock:
            items = sorted(self._windows.items())
        return [
            {
                "t_s": key * self.window_s,
                "qps": window.served / self.window_s,
                "p99_s": window.latency.quantile(0.99),
                "rejection_rate": (
                    window.rejected / window.submitted if window.submitted else 0.0
                ),
                "submitted": window.submitted,
                # The raw shed count, not just the rounded rate: burn-rate
                # math divides counts, and counts also survive re-windowing.
                "rejected": window.rejected,
                "served": window.served,
                "failed": window.failed,
            }
            for key, window in items
        ]

    def aggregate(self, since_s: float, until_s: float) -> WindowAggregate:
        """Fold every window overlapping ``[since_s, until_s)`` into one.

        A window is included when it overlaps the span at all, so the
        aggregate is quantized to whole windows (the evaluator's lookback
        resolution is the series' window width).  Works under either the
        wall clock or the virtual-time loop — both record against the
        same ``loop.time()`` axis the span refers to.
        """
        if until_s < since_s:
            raise ParameterError("aggregate span must not be negative")
        agg = WindowAggregate(
            since_s=since_s,
            until_s=until_s,
            latency=QuantileSketch(self.relative_accuracy),
        )
        with self._lock:
            windows = [
                window
                for key, window in self._windows.items()
                if key * self.window_s < until_s
                and (key + 1) * self.window_s > since_s
            ]
        for window in windows:
            agg.submitted += window.submitted
            agg.rejected += window.rejected
            agg.served += window.served
            agg.failed += window.failed
            agg.latency.merge(window.latency)
        return agg


class MetricsRegistry:
    """Create-or-get ownership of named metrics, one snapshot for all.

    The registry is the recording substrate behind
    :class:`~repro.serve.metrics.ServeMetrics` and anything else that
    wants named instruments; it owns no semantics, only the namespace.
    """

    def __init__(self):
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ParameterError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> CounterMetric:
        return self._get_or_create(name, CounterMetric, lambda: CounterMetric(name))

    def gauge(self, name: str) -> GaugeMetric:
        return self._get_or_create(name, GaugeMetric, lambda: GaugeMetric(name))

    def histogram(self, name: str, relative_accuracy: float = 0.01) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, relative_accuracy)
        )

    def series(self, name: str, window_s: float = 1.0) -> TimeSeries:
        return self._get_or_create(name, TimeSeries, lambda: TimeSeries(window_s))

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict:
        """Every metric's current value, JSON-serializable."""
        with self._lock:
            metrics = dict(self._metrics)
        out: dict[str, object] = {}
        for name, metric in sorted(metrics.items()):
            if isinstance(metric, CounterMetric):
                out[name] = metric.value
            elif isinstance(metric, GaugeMetric):
                out[name] = {"value": metric.value, "max": metric.max}
            elif isinstance(metric, Histogram):
                out[name] = metric.summary()
            elif isinstance(metric, TimeSeries):
                out[name] = metric.rows()
        return out
