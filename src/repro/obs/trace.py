"""Per-request distributed tracing across the serving stack.

A trace id is minted once at the admission door and rides the request
through every layer: the dispatcher's queue/batch spans, the backend
span, the coordinator's per-attempt RPC span, and — across the process
boundary, threaded through ``repro.cluster.messages`` — the worker's
per-query answer span.  Each layer records :class:`Span` values into one
shared :class:`Tracer`; worker processes build spans inline and ship
them back in ``BatchDone``, so the coordinator-side tracer ends up with
the whole cross-process picture.

Clocks: spans store whatever clock their recorder used — event-loop
time on the serving side (which equals ``time.monotonic()`` on a real
loop) and ``time.monotonic()`` in workers.  On Linux ``CLOCK_MONOTONIC``
is system-wide, so coordinator and worker spans share a timebase and one
Chrome timeline renders both sides of the pipe.  Under the virtual-time
loop spans are in virtual seconds (sim mode has no worker processes, so
clocks never mix).

Exports: JSONL (one span per line, the machine-readable artifact) and
Chrome ``trace_event`` JSON — open ``chrome://tracing`` or
https://ui.perfetto.dev and load the file.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from dataclasses import dataclass, field

#: Span timestamps are exported to Chrome in microseconds.
_US = 1e6


@dataclass(frozen=True)
class Span:
    """One timed operation, attributed to a trace and a process/thread.

    Frozen and plain-data so spans pickle across the cluster pipe
    unchanged; ``trace_id`` is ``None`` only for runs without tracing
    upstream (a worker answering an untraced batch records nothing).
    """

    trace_id: int | None
    name: str
    start_s: float
    dur_s: float
    pid: int
    tid: str
    cat: str = "serve"
    args: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "cat": self.cat,
            "start_s": self.start_s,
            "dur_s": self.dur_s,
            "pid": self.pid,
            "tid": self.tid,
            "args": self.args,
        }


class Tracer:
    """Mints trace ids and collects spans from every layer of one run."""

    def __init__(self):
        self._ids = itertools.count(1)
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self.pid = os.getpid()

    # -- recording ---------------------------------------------------------
    def mint(self) -> int:
        """A fresh request-unique trace id (minted at admission)."""
        return next(self._ids)

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def extend(self, spans) -> None:
        """Fold in spans shipped from another process (``BatchDone``)."""
        with self._lock:
            self._spans.extend(spans)

    def record_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        trace_id: int | None = None,
        tid: str = "main",
        cat: str = "serve",
        **args,
    ) -> None:
        """Record a completed operation from explicit timestamps.

        The serving layers time themselves with ``loop.time()`` and call
        this afterwards, so tracing never adds an await point.
        """
        self.record(
            Span(
                trace_id=trace_id,
                name=name,
                start_s=start_s,
                dur_s=max(0.0, end_s - start_s),
                pid=self.pid,
                tid=tid,
                cat=cat,
                args=args,
            )
        )

    def record_instant(
        self,
        name: str,
        at_s: float,
        trace_id: int | None = None,
        tid: str = "main",
        cat: str = "serve",
        **args,
    ) -> None:
        """A zero-duration marker (e.g. an admission rejection)."""
        self.record_span(
            name, at_s, at_s, trace_id=trace_id, tid=tid, cat=cat, **args
        )

    # -- reading -----------------------------------------------------------
    @property
    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def pids(self) -> set[int]:
        return {span.pid for span in self.spans}

    def trace_pids(self) -> dict[int, set[int]]:
        """trace id -> set of pids its spans were recorded in."""
        out: dict[int, set[int]] = {}
        for span in self.spans:
            if span.trace_id is not None:
                out.setdefault(span.trace_id, set()).add(span.pid)
        return out

    # -- export ------------------------------------------------------------
    def export_jsonl(self, path) -> int:
        """One span per line; returns the number of spans written."""
        spans = self.spans
        with open(path, "w") as fh:
            for span in spans:
                fh.write(json.dumps(span.to_json()) + "\n")
        return len(spans)

    def chrome_trace(self) -> dict:
        """The run as Chrome ``trace_event`` JSON (complete "X" events).

        Timestamps are normalized to the earliest span so the timeline
        starts at zero regardless of the absolute clock, and each pid
        gets a ``process_name`` metadata event (the tracer's own pid is
        the coordinator/serving process; everything else is a worker).
        """
        spans = self.spans
        t0 = min((s.start_s for s in spans), default=0.0)
        events: list[dict] = []
        for pid in sorted({s.pid for s in spans}):
            label = "serve" if pid == self.pid else "cluster-worker"
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"{label} (pid {pid})"},
                }
            )
        for span in spans:
            events.append(
                {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": "X",
                    "ts": (span.start_s - t0) * _US,
                    "dur": span.dur_s * _US,
                    "pid": span.pid,
                    "tid": span.tid,
                    "args": {"trace_id": span.trace_id, **span.args},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome(self, path) -> int:
        """Write the Chrome trace; returns the number of span events."""
        trace = self.chrome_trace()
        with open(path, "w") as fh:
            json.dump(trace, fh)
        return sum(1 for e in trace["traceEvents"] if e["ph"] == "X")
