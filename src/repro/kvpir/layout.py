"""Key-value store encoding on top of the dense PIR layers.

Keyword PIR has to answer "what is the value of key k?" when the client
holds only the key — no plaintext directory mapping keys to record
indices.  The bridge is server-side cuckoo placement: every key hashes to
``num_hashes`` candidate slots of a dense table (plus a handful of
dedicated stash slots for keys whose eviction walk fails), the server
stores each record in exactly one of its candidates, and the client probes
*all* candidate slots of its key with ordinary index PIR.

Each slot stores ``tag(key) || value``: the keyed ``tag_bytes``-wide hash
lets the client recognize which probed slot (if any) actually holds its
key.  An absent key matches no tag and surfaces as the typed
:class:`~repro.errors.KeyNotFound`; a false positive requires a random
slot to collide with the key's tag, probability ``2**-(8 * tag_bytes)``
per probed slot.

The slot table is itself served as a cuckoo-batched PIR database
(:class:`~repro.batchpir.layout.BatchLayout`), so the ~``num_hashes``
index probes of one lookup — and of every other lookup in the same
window — amortize into a single batched pass.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.batchpir.layout import BatchDatabase, BatchLayout
from repro.errors import BatchPlanError, KvBuildError, ParameterError
from repro.hashing.cuckoo import (
    CuckooAssignment,
    CuckooConfig,
    cuckoo_assign,
    key_bytes,
    num_buckets_for,
)
from repro.he.poly import RingContext
from repro.params import PirParams

#: Default tag width.  8 bytes makes a false tag match (an absent key
#: decoding to garbage) a 2^-64-per-probe event — negligible even across
#: billions of lookups.
DEFAULT_TAG_BYTES = 8

#: Default number of keyword lookups one coalesced batch pass is sized for.
DEFAULT_LOOKUP_BATCH = 8

#: Stash capacity of the server-side slot table.  Stash slots are public,
#: always-probed positions, so the cap also bounds the per-lookup probe
#: count; 1.5x slot provisioning keeps the stash empty almost surely.
TABLE_STASH_SIZE = 8

#: Domain-separation suffix for the record tag hash (candidate hashes use
#: ``bytes([i])`` with i < num_hashes, shard routing uses 0xfe).
_TAG_DOMAIN = b"\xff"


def random_items(
    num_keys: int,
    value_bytes: int,
    key_bytes_len: int = 12,
    seed: int | None = None,
) -> dict[bytes, bytes]:
    """Distinct random byte-string keys mapped to random values.

    The single store generator behind ``KvDatabase.random``,
    ``KvServeRegistry.random``, the CLI, and the benchmark.
    """
    if num_keys < 1:
        raise ParameterError("need at least one key")
    if 256**key_bytes_len < 2 * num_keys:
        raise ParameterError(
            f"{key_bytes_len}-byte keys cannot yield {num_keys} distinct draws"
        )
    rng = np.random.default_rng(seed)
    items: dict[bytes, bytes] = {}
    while len(items) < num_keys:
        items[rng.bytes(key_bytes_len)] = rng.bytes(value_bytes)
    return items


def key_tag(key: bytes, tag_bytes: int, seed: int) -> bytes:
    """Keyed record tag: what a slot stores so the client can recognize it."""
    return hashlib.blake2b(
        key_bytes(key),
        digest_size=tag_bytes,
        key=seed.to_bytes(8, "little") + _TAG_DOMAIN,
    ).digest()


@dataclass
class KvLayout:
    """Public deployment geometry of one keyword-PIR store.

    Everything a client needs to query — table hashing, tag/value widths,
    stash occupancy, and the batched layout of the slot table — in O(1)
    space.  Which key sits in which slot stays on the server
    (:class:`KvDatabase`); the client only ever derives *candidate* slots
    from the key itself.
    """

    base_params: PirParams
    table: CuckooConfig
    tag_bytes: int
    value_bytes: int
    num_keys: int
    stash_slots: int
    batch: BatchLayout = field(repr=False)

    @classmethod
    def build(
        cls,
        params: PirParams,
        table: CuckooConfig,
        num_keys: int,
        value_bytes: int,
        tag_bytes: int,
        stash_slots: int,
        max_lookup_batch: int = DEFAULT_LOOKUP_BATCH,
    ) -> "KvLayout":
        if tag_bytes < 1:
            raise ParameterError("tag width must be at least one byte")
        if value_bytes < 1:
            raise ParameterError("values must be at least one byte")
        if max_lookup_batch < 1:
            raise ParameterError("design lookup batch must be at least 1")
        if table.num_hashes >= 0xFE:
            raise ParameterError(
                "keyword PIR reserves hash suffixes 0xfe/0xff for routing/tags"
            )
        num_slots = table.num_buckets + stash_slots
        probes = table.num_hashes + stash_slots
        batch_config = CuckooConfig.for_batch(
            max_lookup_batch * probes, seed=table.seed + 1
        )
        batch = BatchLayout.build(
            params, num_slots, tag_bytes + value_bytes, batch_config
        )
        return cls(
            base_params=params,
            table=table,
            tag_bytes=tag_bytes,
            value_bytes=value_bytes,
            num_keys=num_keys,
            stash_slots=stash_slots,
            batch=batch,
        )

    # -- geometry ---------------------------------------------------------
    @property
    def record_bytes(self) -> int:
        return self.tag_bytes + self.value_bytes

    @property
    def num_slots(self) -> int:
        """Dense PIR records backing the store: table slots + used stash."""
        return self.table.num_buckets + self.stash_slots

    @property
    def slot_expansion(self) -> float:
        """Stored slots per live key (the ~1.5x table provisioning)."""
        return self.num_slots / self.num_keys

    @property
    def candidates_per_lookup(self) -> int:
        """Upper bound on slots one lookup probes (hash collisions dedupe)."""
        return self.table.num_hashes + self.stash_slots

    # -- key-derived quantities (no directory needed) ---------------------
    def candidate_slots(self, key: bytes) -> tuple[int, ...]:
        """Every slot that could hold ``key``: cuckoo candidates + stash."""
        cands = dict.fromkeys(self.table.candidates(key))
        stash = range(self.table.num_buckets, self.num_slots)
        return tuple(cands) + tuple(stash)

    def tag(self, key: bytes) -> bytes:
        return key_tag(key, self.tag_bytes, self.table.seed)

    def encode(self, key: bytes, value: bytes) -> bytes:
        """Slot record for one pair: ``tag(key) || value``."""
        if len(value) != self.value_bytes:
            raise ParameterError(
                f"value has {len(value)} bytes, store expects {self.value_bytes}"
            )
        return self.tag(key) + value

    def match(self, key: bytes, record: bytes) -> bytes | None:
        """Value if ``record`` is tagged for ``key``, else None."""
        if record[: self.tag_bytes] == self.tag(key):
            return record[self.tag_bytes : self.record_bytes]
        return None


class KvDatabase:
    """Server-side materialization: slot assignment + batched slot table."""

    def __init__(
        self,
        layout: KvLayout,
        assignment: CuckooAssignment,
        items: dict[bytes, bytes],
    ):
        self.layout = layout
        self.assignment = assignment
        self._items = dict(items)
        empty = b"\0" * layout.record_bytes
        slot_records = [empty] * layout.num_slots
        for slot, key in assignment.slots.items():
            slot_records[slot] = layout.encode(key, items[key])
        for i, key in enumerate(assignment.stash):
            slot_records[layout.table.num_buckets + i] = layout.encode(
                key, items[key]
            )
        self.batch_db = BatchDatabase(layout.batch, slot_records)

    @classmethod
    def from_items(
        cls,
        params: PirParams,
        items: dict[bytes, bytes],
        tag_bytes: int = DEFAULT_TAG_BYTES,
        max_lookup_batch: int = DEFAULT_LOOKUP_BATCH,
        hash_seed: int = 0,
        table: CuckooConfig | None = None,
        reserve_stash: int = 0,
    ) -> "KvDatabase":
        """Cuckoo-place a key-value mapping into a dense slot table.

        Raises :class:`~repro.errors.KvBuildError` when placement
        overflows the stash — rebuild with a different ``hash_seed``.

        ``reserve_stash`` provisions that many *empty* always-probed stash
        slots beyond what the initial placement spilled: headroom for
        online inserts whose eviction walk fails
        (:class:`repro.mutate.kv.VersionedKvDatabase`).  Each reserved
        slot costs one extra probe per lookup, so keep it small.
        """
        if not items:
            raise KvBuildError("cannot build an empty key-value store")
        keys = [key_bytes(k) for k in items]
        if len(set(keys)) != len(keys):
            raise KvBuildError("keys must be distinct byte strings")
        values = list(items.values())
        value_bytes = len(values[0])
        for v in values:
            if len(v) != value_bytes:
                raise KvBuildError(
                    f"all values must share one size; saw {len(v)} and {value_bytes}"
                )
        if table is None:
            table = CuckooConfig(
                num_buckets=num_buckets_for(len(keys)),
                stash_size=TABLE_STASH_SIZE,
                max_evictions=max(128, 8 * len(keys)),
                seed=hash_seed,
            )
        try:
            assignment = cuckoo_assign(keys, table)
        except BatchPlanError as exc:
            raise KvBuildError(
                f"slot placement of {len(keys)} keys failed ({exc}); "
                "rebuild with a different hash_seed"
            ) from exc
        if reserve_stash < 0:
            raise ParameterError("reserved stash slots cannot be negative")
        layout = KvLayout.build(
            params,
            table,
            num_keys=len(keys),
            value_bytes=value_bytes,
            tag_bytes=tag_bytes,
            stash_slots=len(assignment.stash) + reserve_stash,
            max_lookup_batch=max_lookup_batch,
        )
        return cls(layout, assignment, dict(zip(keys, values)))

    @classmethod
    def random(
        cls,
        params: PirParams,
        num_keys: int,
        value_bytes: int,
        key_bytes_len: int = 12,
        tag_bytes: int = DEFAULT_TAG_BYTES,
        max_lookup_batch: int = DEFAULT_LOOKUP_BATCH,
        hash_seed: int = 0,
        seed: int | None = None,
        reserve_stash: int = 0,
    ) -> "KvDatabase":
        items = random_items(num_keys, value_bytes, key_bytes_len, seed)
        return cls.from_items(
            params,
            items,
            tag_bytes=tag_bytes,
            max_lookup_batch=max_lookup_batch,
            hash_seed=hash_seed,
            reserve_stash=reserve_stash,
        )

    # -- ground truth (for verification in tests/examples) ----------------
    def contains(self, key: bytes) -> bool:
        return key_bytes(key) in self._items

    def value(self, key: bytes) -> bytes:
        return self._items[key_bytes(key)]

    def keys(self) -> list[bytes]:
        return list(self._items)

    @property
    def stored_slots(self) -> int:
        """Replicated entries across the batched bucket set."""
        return self.batch_db.stored_records

    def preprocess(self, ring: RingContext):
        return self.batch_db.preprocess(ring)
