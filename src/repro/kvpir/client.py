"""Keyword-PIR client: candidate derivation, batched probes, tag decoding.

A lookup for key k becomes index PIR on the slot table: the client
derives k's candidate slots (cuckoo candidates plus the public stash
slots) from the key alone, retrieves every candidate, and recognizes the
right one — if any — by its ``tag(k)`` prefix.  The probes of one call,
across *all* its keys, are deduplicated and fed through the batch-PIR
planner, so a window of lookups costs amortized cuckoo-batched passes
instead of ``candidates_per_lookup`` independent scans each.

The server learns only how many batched passes ran — candidate slots
travel inside ordinary PIR queries, and every untouched bucket still gets
a dummy query, exactly as in :mod:`repro.batchpir.client`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.batchpir.client import (
    BatchPirClient,
    BatchPlan,
    BatchQuery,
    BatchResponse,
)
from repro.errors import KeyNotFound, ParameterError
from repro.hashing.cuckoo import key_bytes
from repro.kvpir.layout import KvLayout
from repro.params import PirParams
from repro.pir.client import ClientSetup


@dataclass(frozen=True)
class KvPlan:
    """Client-secret lookup plan; never sent to the server."""

    keys: tuple[bytes, ...]
    slots_by_key: dict[bytes, tuple[int, ...]]
    chunks: tuple[BatchPlan, ...]

    @property
    def num_slots_probed(self) -> int:
        return sum(len(c.indices) for c in self.chunks)


@dataclass
class KvQuery:
    """What travels to the server: one batch query per slot chunk."""

    chunks: list[BatchQuery]

    def size_bytes(self, params: PirParams) -> int:
        return sum(q.size_bytes(params) for q in self.chunks)


@dataclass
class KvResponse:
    """One batch response per slot chunk."""

    chunks: list[BatchResponse]

    def size_bytes(self, params: PirParams) -> int:
        return sum(r.size_bytes(params) for r in self.chunks)


class KvPirClient:
    """Plans, encrypts, and tag-decodes keyword lookups."""

    def __init__(self, layout: KvLayout, seed: int | None = None):
        self.layout = layout
        self.batch = BatchPirClient(layout.batch, seed=seed)

    def setup_message(self) -> ClientSetup:
        return self.batch.setup_message()

    # -- planning ---------------------------------------------------------
    def plan(self, keys: list[bytes]) -> KvPlan:
        """Dedupe the keys' candidate slots and cuckoo-plan them in chunks.

        Chunks are capped at the batch layout's design size so each chunk
        is one guaranteed-plannable pass; duplicate keys (and shared
        candidate slots, e.g. the stash) are probed once.
        """
        keys = [key_bytes(k) for k in keys]
        if not keys:
            raise ParameterError("keyword lookup needs at least one key")
        distinct_keys = tuple(dict.fromkeys(keys))
        slots_by_key = {k: self.layout.candidate_slots(k) for k in distinct_keys}
        distinct_slots = list(
            dict.fromkeys(s for k in distinct_keys for s in slots_by_key[k])
        )
        step = max(1, self.layout.batch.config.design_batch)
        chunks = tuple(
            self.batch.plan(distinct_slots[at : at + step])
            for at in range(0, len(distinct_slots), step)
        )
        return KvPlan(keys=distinct_keys, slots_by_key=slots_by_key, chunks=chunks)

    # -- query construction ------------------------------------------------
    def build_queries(self, plan: KvPlan) -> KvQuery:
        return KvQuery(chunks=[self.batch.build_queries(c) for c in plan.chunks])

    # -- decoding ----------------------------------------------------------
    def slot_records(self, plan: KvPlan, response: KvResponse) -> dict[int, bytes]:
        """Decrypt every probed slot -> {slot index: record bytes}."""
        if len(response.chunks) != len(plan.chunks):
            raise ParameterError(
                f"response has {len(response.chunks)} chunks, plan has "
                f"{len(plan.chunks)}"
            )
        records: dict[int, bytes] = {}
        for chunk_plan, chunk_response in zip(plan.chunks, response.chunks):
            records.update(self.batch.decode(chunk_plan, chunk_response))
        return records

    def decode(self, plan: KvPlan, response: KvResponse) -> dict[bytes, bytes]:
        """Tag-match every planned key -> {key: value}, absent keys omitted."""
        records = self.slot_records(plan, response)
        values: dict[bytes, bytes] = {}
        for key in plan.keys:
            for slot in plan.slots_by_key[key]:
                value = self.layout.match(key, records[slot])
                if value is not None:
                    values[key] = value
                    break
        return values

    def decode_strict(self, plan: KvPlan, response: KvResponse) -> dict[bytes, bytes]:
        """Like :meth:`decode` but absent keys raise :class:`KeyNotFound`."""
        values = self.decode(plan, response)
        for key in plan.keys:
            if key not in values:
                raise KeyNotFound(key)
        return values
