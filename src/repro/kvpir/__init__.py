"""repro.kvpir — keyword PIR over sparse key-value stores.

The paper's target applications (contact discovery, password-breach and
CT auditing) query by *key*, not by dense index.  This subsystem closes
that gap with no client-side directory: the server cuckoo-places
``tag(key) || value`` records into a dense slot table (``layout``), the
client derives its candidate slots from the key alone and probes them
with batch PIR (``client``), the server answers with the per-bucket
pipelines (``server``), and tag matching decodes the value — or the typed
``KeyNotFound`` with a false-positive probability bounded by the tag
width.  ``model`` prices the keyword overhead on IVE at paper scale;
``serving`` routes key lookups through the ``repro.serve`` dispatch
windows.  The cuckoo machinery is shared with ``repro.batchpir`` via
``repro.hashing.cuckoo``.
"""

from repro.kvpir.client import KvPirClient, KvPlan, KvQuery, KvResponse
from repro.kvpir.layout import (
    DEFAULT_LOOKUP_BATCH,
    DEFAULT_TAG_BYTES,
    KvDatabase,
    KvLayout,
    key_tag,
    random_items,
)
from repro.kvpir.model import (
    KvCostPoint,
    keyword_overhead_curve,
    kv_cost_point,
    model_kv_slot_params,
)
from repro.kvpir.server import KvLookupResult, KvPirProtocol, KvPirServer
from repro.kvpir.serving import KeyShardMap, KvCryptoBackend, KvServeRegistry

__all__ = [
    "DEFAULT_LOOKUP_BATCH",
    "DEFAULT_TAG_BYTES",
    "KeyShardMap",
    "KvCostPoint",
    "KvCryptoBackend",
    "KvDatabase",
    "KvLayout",
    "KvLookupResult",
    "KvPirClient",
    "KvPirProtocol",
    "KvPirServer",
    "KvPlan",
    "KvQuery",
    "KvResponse",
    "KvServeRegistry",
    "key_tag",
    "keyword_overhead_curve",
    "kv_cost_point",
    "model_kv_slot_params",
    "random_items",
]
