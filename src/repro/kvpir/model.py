"""Accelerator cost model for keyword PIR: what does key-addressing cost?

The deployment question: versus dense index PIR over the same record
count, how much does the keyword layer's machinery — ~1.5x slot
provisioning, tag bytes per record, and ``num_hashes + stash`` probes per
lookup — inflate the per-retrieval server cost on IVE?  Both the
standalone and the batched (cuckoo-amortized) comparisons reuse the cycle
simulator through :class:`~repro.systems.scale_up.KvScaleUpSystem` and
:class:`~repro.systems.scale_up.BatchScaleUpSystem`, so keyword numbers,
batch numbers, and the paper-reproduction numbers all come from one code
path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.batchpir.model import model_bucket_params
from repro.hashing.cuckoo import BUCKET_FACTOR, DEFAULT_NUM_HASHES
from repro.params import PirParams
from repro.systems.scale_up import BatchScaleUpSystem, KvScaleUpSystem, ScaleUpSystem

#: Default modeled probes per lookup: the cuckoo candidates plus one
#: always-probed stash slot (stashes are almost always empty, but a
#: deployment provisions for a nonzero one).
DEFAULT_MODEL_CANDIDATES = DEFAULT_NUM_HASHES + 1


def model_kv_slot_params(
    params: PirParams, slot_factor: float = BUCKET_FACTOR
) -> PirParams:
    """Slot-table geometry holding ``params.num_db_polys`` live keys.

    The table provisions ``slot_factor``x slots per key, rounded up to the
    next power-of-two database geometry; values shed ``tag_bytes`` so a
    ``tag || value`` record still fills exactly one plaintext polynomial,
    making the slot-count inflation the whole footprint story.
    """
    slots = math.ceil(slot_factor * params.num_db_polys)
    num_dims = max(0, math.ceil(math.log2(max(1, slots) / params.d0)))
    return params.with_db(num_dims=num_dims)


@dataclass(frozen=True)
class KvCostPoint:
    """Modeled keyword-vs-index cost at one design batch size k."""

    k: int
    candidates: int
    index_query_s: float
    lookup_s: float
    amortized_index_s: float
    amortized_lookup_s: float
    index_placement: str
    kv_placement: str
    slot_db_bytes: int
    kv_replicated_db_bytes: int

    @property
    def standalone_overhead(self) -> float:
        """Keyword lookup vs index query, both standing alone."""
        return self.lookup_s / self.index_query_s

    @property
    def amortized_overhead(self) -> float:
        """Per-lookup vs per-index cost inside matched k-batches."""
        return self.amortized_lookup_s / self.amortized_index_s


def kv_cost_point(
    params: PirParams,
    k: int = 64,
    candidates: int = DEFAULT_MODEL_CANDIDATES,
    config=None,
) -> KvCostPoint:
    """Keyword-vs-index costs at matched record counts (the bench's model).

    ``params`` describes the dense index-PIR baseline; the keyword store
    holds the same number of live records behind its inflated slot table.
    Standalone: one lookup (``candidates`` probes, one table scan) vs one
    index query.  Amortized: a k-lookup cuckoo-batched pass over the slot
    table vs a k-index pass over the dense database.
    """
    index_system = ScaleUpSystem(params, config)
    index_single = index_system.latency(1).total_s

    slot_params = model_kv_slot_params(params)
    kv_system = KvScaleUpSystem(slot_params, candidates, config)
    lookup_s = kv_system.lookup_latency().total_s

    dense_cuckoo, dense_bucket = model_bucket_params(params, k)
    dense_batch = BatchScaleUpSystem(dense_bucket, dense_cuckoo.num_buckets, config)

    kv_cuckoo, kv_bucket = model_bucket_params(slot_params, k * candidates)
    kv_batch = BatchScaleUpSystem(kv_bucket, kv_cuckoo.num_buckets, config)

    return KvCostPoint(
        k=k,
        candidates=candidates,
        index_query_s=index_single,
        lookup_s=lookup_s,
        amortized_index_s=dense_batch.amortized_per_query_s(k),
        amortized_lookup_s=kv_batch.amortized_per_query_s(k),
        index_placement=index_system.placement.value,
        kv_placement=kv_system.placement.value,
        slot_db_bytes=kv_system.preprocessed_db_bytes,
        kv_replicated_db_bytes=kv_batch.preprocessed_db_bytes,
    )


def keyword_overhead_curve(
    params: PirParams,
    ks: tuple[int, ...] = (8, 32, 64),
    candidates: int = DEFAULT_MODEL_CANDIDATES,
    config=None,
) -> list[KvCostPoint]:
    """Keyword overhead vs design batch size (the benchmark's model half)."""
    return [kv_cost_point(params, k, candidates, config) for k in ks]
