"""Keyword PIR behind the serving runtime's dispatch windows.

Requests route by *key*: a keyed hash spreads the key space across
shards, each shard is an independent keyword-PIR deployment (own slot
table, own hash seeds) over its share of the keys, and a dispatch
window's lookups are coalesced — every key's candidate slots, deduped
across the window, run through amortized cuckoo-batched passes on a
thread pool, mirroring :class:`~repro.batchpir.serving.BatchCryptoBackend`.

Absent keys are first-class: the backend resolves them to ``None`` so one
missing key cannot fail its whole batch, and ``decode`` converts that to
the typed :class:`~repro.errors.KeyNotFound` at the caller.
"""

from __future__ import annotations

import asyncio
import hashlib
from concurrent.futures import ThreadPoolExecutor

from repro.errors import KeyNotFound, KvBuildError
from repro.hashing.cuckoo import key_bytes
from repro.kvpir.client import KvPirClient
from repro.kvpir.layout import (
    DEFAULT_LOOKUP_BATCH,
    DEFAULT_TAG_BYTES,
    KvDatabase,
    random_items,
)
from repro.kvpir.server import KvPirServer
from repro.params import PirParams
from repro.serve.registry import ServeRequest

#: Domain-separation suffix for shard routing (candidate hashes use
#: ``bytes([i])``, the record tag uses 0xff).
_ROUTE_DOMAIN = b"\xfe"


class KeyShardMap:
    """Keyed-hash partition of a keyspace across shards.

    Unlike :class:`~repro.serve.registry.ShardMap` there is no contiguous
    index range to split — any byte-string key must route without a
    directory, so the shard is a keyed blake2b of the key itself.
    """

    def __init__(self, num_keys: int, num_shards: int, seed: int = 0):
        if num_shards < 1:
            raise KvBuildError("need at least one shard")
        self.num_records = num_keys
        self.num_shards = num_shards
        self.seed = seed

    def route(self, key: bytes) -> int:
        digest = hashlib.blake2b(
            key_bytes(key),
            digest_size=8,
            key=self.seed.to_bytes(8, "little") + _ROUTE_DOMAIN,
        ).digest()
        return int.from_bytes(digest, "little") % self.num_shards


class KvServeRegistry:
    """Per-shard keyword-PIR deployments over one logical key-value store."""

    def __init__(
        self,
        params: PirParams,
        items: dict[bytes, bytes],
        num_shards: int = 1,
        tag_bytes: int = DEFAULT_TAG_BYTES,
        max_lookup_batch: int = DEFAULT_LOOKUP_BATCH,
        hash_seed: int = 0,
        seed: int | None = None,
        backend: str | None = None,
    ):
        self.params = params
        self.max_lookup_batch = max_lookup_batch
        self.map = KeyShardMap(len(items), num_shards, seed=hash_seed)
        self._items = {key_bytes(k): v for k, v in items.items()}
        shard_items: list[dict[bytes, bytes]] = [{} for _ in range(num_shards)]
        for key, value in self._items.items():
            shard_items[self.map.route(key)][key] = value
        for shard_id, chunk in enumerate(shard_items):
            if not chunk:
                raise KvBuildError(
                    f"shard {shard_id} received no keys; use fewer shards "
                    f"for {len(items)} keys"
                )
        self._clients: list[KvPirClient] = []
        self._servers: list[KvPirServer] = []
        for shard_id, chunk in enumerate(shard_items):
            db = KvDatabase.from_items(
                params,
                chunk,
                tag_bytes=tag_bytes,
                max_lookup_batch=max_lookup_batch,
                hash_seed=hash_seed + 1 + shard_id,
            )
            client = KvPirClient(db.layout, seed=seed)
            self._clients.append(client)
            self._servers.append(
                KvPirServer(
                    db, client.batch.pir.ring, client.setup_message(),
                    backend=backend,
                )
            )

    @classmethod
    def random(
        cls,
        params: PirParams,
        num_keys: int,
        value_bytes: int,
        num_shards: int = 1,
        key_bytes_len: int = 12,
        seed: int | None = None,
        **kwargs,
    ) -> "KvServeRegistry":
        items = random_items(num_keys, value_bytes, key_bytes_len, seed)
        return cls(params, items, num_shards, seed=seed, **kwargs)

    @property
    def num_shards(self) -> int:
        return self.map.num_shards

    @property
    def num_keys(self) -> int:
        return len(self._items)

    def client(self, shard_id: int) -> KvPirClient:
        return self._clients[shard_id]

    def server(self, shard_id: int) -> KvPirServer:
        return self._servers[shard_id]

    def make_request(self, key: bytes) -> ServeRequest:
        """Route a key; the slot probes are planned per dispatch window."""
        key = key_bytes(key)
        shard_id = self.map.route(key)
        # global_index is a stable key fingerprint for metrics/logging only.
        fingerprint = int.from_bytes(
            hashlib.blake2b(key, digest_size=4).digest(), "little"
        )
        return ServeRequest(
            global_index=fingerprint, shard_id=shard_id, local_index=0, key=key
        )

    def decode(self, request: ServeRequest, response: bytes | None) -> bytes:
        """Value bytes, or the typed miss if no candidate slot tag-matched."""
        if response is None:
            raise KeyNotFound(request.key)
        return response

    def expected(self, key: bytes) -> bytes | None:
        """Ground-truth value (None for absent keys), for tests/examples."""
        return self._items.get(key_bytes(key))


class KvCryptoBackend:
    """Coalesces each dispatch window's lookups into cuckoo-batched passes.

    The window's distinct keys expand to their deduped candidate slots and
    run through the shard's batch planner in design-size chunks; each key
    resolves to its value or ``None``.  Crypto runs on a thread pool so
    the event loop stays responsive, like
    :class:`~repro.serve.workers.RealCryptoBackend`.
    """

    def __init__(self, registry: KvServeRegistry, max_workers: int | None = None):
        self.registry = registry
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="kvpir-worker"
        )

    def _serve_window(
        self, shard_id: int, keys: list[bytes]
    ) -> dict[bytes, bytes | None]:
        client = self.registry.client(shard_id)
        server = self.registry.server(shard_id)
        plan = client.plan(keys)
        response = server.answer(client.build_queries(plan))
        values = client.decode(plan, response)
        return {key: values.get(key) for key in plan.keys}

    async def answer(self, shard_id: int, requests: list[ServeRequest]) -> list:
        loop = asyncio.get_running_loop()
        values = await loop.run_in_executor(
            self._pool,
            self._serve_window,
            shard_id,
            [r.key for r in requests],
        )
        return [values[r.key] for r in requests]

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)
