"""Keyword-PIR server and end-to-end protocol harness.

The server is the batch-PIR server over the slot table: every chunk of a
lookup plan runs one cuckoo-batched pass (per-bucket ExpandQuery ->
RowSel -> ColTor pipelines), so the server-side cost of a window of
keyword lookups is ``ceil(distinct probes / design batch)`` passes over
the replicated bucket set — the same amortization engine as
:mod:`repro.batchpir`, fed ~``num_hashes`` probes per key.

``KvPirProtocol`` mirrors :class:`repro.pir.protocol.PirProtocol` /
:class:`repro.batchpir.server.BatchPirProtocol` for the keyword flow and
keeps the same communication transcript accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.batchpir.server import BatchPirServer
from repro.errors import KeyNotFound
from repro.he.backend import ComputeBackend
from repro.hashing.cuckoo import key_bytes
from repro.kvpir.client import KvPirClient, KvPlan, KvQuery, KvResponse
from repro.kvpir.layout import (
    DEFAULT_LOOKUP_BATCH,
    DEFAULT_TAG_BYTES,
    KvDatabase,
)
from repro.params import PirParams
from repro.pir.client import ClientSetup
from repro.pir.protocol import Transcript


class KvPirServer:
    """Batch-PIR server over the cuckoo slot table.

    ``backend`` is forwarded to every per-bucket ``PirServer`` (the
    registry default when unset).
    """

    def __init__(
        self,
        db: KvDatabase,
        ring,
        setup: ClientSetup,
        backend: str | ComputeBackend | None = None,
    ):
        self.layout = db.layout
        self.db = db
        self.batch_server = BatchPirServer(db.batch_db, ring, setup, backend=backend)

    def answer(self, query: KvQuery) -> KvResponse:
        return KvResponse(chunks=[self.batch_server.answer(q) for q in query.chunks])


@dataclass
class KvLookupResult:
    """Returned by :meth:`KvPirProtocol.lookup_many`."""

    values: dict[bytes, bytes]
    missing: tuple[bytes, ...]
    plan: KvPlan

    @property
    def found(self) -> int:
        return len(self.values)


class KvPirProtocol:
    """A keyword client/server pair over one key-value mapping."""

    def __init__(
        self,
        params: PirParams,
        items: dict[bytes, bytes],
        tag_bytes: int = DEFAULT_TAG_BYTES,
        max_lookup_batch: int = DEFAULT_LOOKUP_BATCH,
        hash_seed: int = 0,
        seed: int | None = None,
        backend: str | ComputeBackend | None = None,
    ):
        self.db = KvDatabase.from_items(
            params,
            items,
            tag_bytes=tag_bytes,
            max_lookup_batch=max_lookup_batch,
            hash_seed=hash_seed,
        )
        self.layout = self.db.layout
        self.client = KvPirClient(self.layout, seed=seed)
        setup = self.client.setup_message()
        self.server = KvPirServer(
            self.db, self.client.batch.pir.ring, setup, backend=backend
        )
        self.transcript = Transcript(
            setup_bytes=setup.size_bytes(self.layout.batch.bucket_params)
        )

    def lookup_many(self, keys: list[bytes], strict: bool = False) -> KvLookupResult:
        """Full round trip for a batch of keys: plan, probe, tag-decode.

        With ``strict`` the first absent key raises
        :class:`~repro.errors.KeyNotFound`; otherwise absent keys are
        reported in ``missing``.
        """
        plan = self.client.plan(keys)
        query = self.client.build_queries(plan)
        response = self.server.answer(query)
        values = self.client.decode(plan, response)
        params = self.layout.batch.bucket_params
        self.transcript.query_bytes += query.size_bytes(params)
        self.transcript.response_bytes += response.size_bytes(params)
        self.transcript.queries_served += len(plan.keys)
        missing = tuple(k for k in plan.keys if k not in values)
        if strict and missing:
            raise KeyNotFound(missing[0])
        return KvLookupResult(values=values, missing=missing, plan=plan)

    def lookup(self, key: bytes) -> bytes:
        """One key's value; absent keys raise :class:`KeyNotFound`."""
        result = self.lookup_many([key], strict=True)
        return result.values[key_bytes(key)]
