"""PIR parameter sets (Table I of the paper) and derived quantities.

``PirParams`` carries both the cryptographic parameters (ring degree N,
RNS moduli for Q, plaintext modulus P, gadget base z and length ℓ) and the
database geometry (D = D0 * 2^d records of one plaintext polynomial each).
All size formulas used by the performance models (ciphertext = 2 * |RNS| * N
residues, RGSW = 2ℓ ciphertext halves, evk = ℓ key rows) live here so that
the functional code and the cost models cannot drift apart.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ParameterError
from repro.he import modmath

#: Residue width used for storage accounting; the paper's moduli are 28-bit.
RESIDUE_BITS = 28

#: Standard deviation of the discrete-Gaussian-like error distribution.
ERROR_STD = 3.2


@dataclass(frozen=True)
class PirParams:
    """Complete parameter set for one PIR instance."""

    n: int
    moduli: tuple[int, ...]
    plain_modulus: int
    gadget_base_log2: int
    gadget_len: int
    d0: int
    num_dims: int  # d in the paper: number of subsequent (size-2) dimensions
    error_std: float = ERROR_STD

    def __post_init__(self):
        if not modmath.is_power_of_two(self.n):
            raise ParameterError(f"N={self.n} must be a power of two")
        if not modmath.is_power_of_two(self.d0):
            raise ParameterError(f"D0={self.d0} must be a power of two")
        if self.d0 > self.n:
            raise ParameterError(f"D0={self.d0} cannot exceed N={self.n}")
        if self.num_dims < 0:
            raise ParameterError("number of dimensions d must be >= 0")
        if self.plain_modulus < 2:
            raise ParameterError("plaintext modulus must be >= 2")
        for q in self.moduli:
            if (q - 1) % (2 * self.n) != 0:
                raise ParameterError(f"modulus {q} not NTT-friendly for N={self.n}")
        if self.gadget_digit_max() ** self.gadget_len < self.q:
            raise ParameterError(
                f"gadget base 2^{self.gadget_base_log2} with length "
                f"{self.gadget_len} cannot cover Q (~2^{self.log2_q:.1f})"
            )
        if self.q <= self.plain_modulus:
            raise ParameterError("Q must exceed the plaintext modulus P")

    # ------------------------------------------------------------------
    # Derived cryptographic quantities
    # ------------------------------------------------------------------
    @property
    def q(self) -> int:
        """The composite ciphertext modulus Q = prod(q_i)."""
        product = 1
        for q in self.moduli:
            product *= q
        return product

    @property
    def log2_q(self) -> float:
        return math.log2(self.q)

    @property
    def rns_count(self) -> int:
        return len(self.moduli)

    @property
    def delta(self) -> int:
        """BFV scaling factor Δ = floor(Q / P)."""
        return self.q // self.plain_modulus

    @property
    def gadget_base(self) -> int:
        return 1 << self.gadget_base_log2

    def gadget_digit_max(self) -> int:
        return self.gadget_base

    @property
    def plain_is_power_of_two(self) -> bool:
        return modmath.is_power_of_two(self.plain_modulus)

    @property
    def expansion_factor(self) -> int:
        """Scalar each coefficient picks up during ExpandQuery (= D0)."""
        return self.d0

    @property
    def payload_bits_per_coeff(self) -> int:
        """Usable plaintext bits per coefficient after query-expansion scaling.

        With odd P the client pre-scales the query by ``D0^{-1} mod P`` and
        keeps the full ``floor(log2 P)`` bits.  With power-of-two P (the
        Table I setting) the 2^log2(D0) expansion factor is not invertible,
        so the payload is restricted to ``log2(P) - log2(D0)`` bits and the
        client divides the decoded value by D0 instead.
        """
        if self.plain_is_power_of_two:
            bits = modmath.ilog2(self.plain_modulus) - modmath.ilog2(self.d0)
        else:
            bits = int(math.floor(math.log2(self.plain_modulus)))
        if bits < 1:
            raise ParameterError(
                f"P={self.plain_modulus} leaves no payload bits with D0={self.d0}"
            )
        return bits

    # ------------------------------------------------------------------
    # Database geometry
    # ------------------------------------------------------------------
    @property
    def num_db_polys(self) -> int:
        """D: number of record polynomials in the database."""
        return self.d0 * (1 << self.num_dims)

    @property
    def poly_payload_bytes(self) -> int:
        """Record bytes one plaintext polynomial can carry."""
        return self.n * self.payload_bits_per_coeff // 8

    @property
    def db_raw_bytes(self) -> int:
        """Raw database size assuming each poly carries a full record."""
        return self.num_db_polys * self.plain_poly_bytes

    # ------------------------------------------------------------------
    # Object sizes used throughout the performance models
    # ------------------------------------------------------------------
    @property
    def residue_bytes(self) -> float:
        return RESIDUE_BITS / 8.0

    @property
    def poly_bytes(self) -> int:
        """One polynomial in R_Q under RNS (paper: 56 KB at N=2^12)."""
        return int(self.rns_count * self.n * RESIDUE_BITS // 8)

    @property
    def plain_poly_bytes(self) -> int:
        """One plaintext polynomial in R_P (raw database storage)."""
        plain_bits = max(1, int(math.ceil(math.log2(self.plain_modulus))))
        return self.n * plain_bits // 8

    @property
    def ct_bytes(self) -> int:
        """One BFV ciphertext: 2 polynomials in R_Q (paper: 112 KB)."""
        return 2 * self.poly_bytes

    @property
    def rgsw_bytes(self) -> int:
        """One RGSW ciphertext: 2*2ℓ polynomials (paper: 1120 KB at ℓ=5)."""
        return 2 * 2 * self.gadget_len * self.poly_bytes

    @property
    def evk_bytes(self) -> int:
        """One substitution key: 2*ℓ polynomials (paper: 560 KB at ℓ=5)."""
        return 2 * self.gadget_len * self.poly_bytes

    @property
    def db_expansion_ratio(self) -> float:
        """Preprocessed-DB blowup logQ/logP (Section II-B, < 3.5x)."""
        return self.poly_bytes / self.plain_poly_bytes

    @property
    def num_evks(self) -> int:
        """ExpandQuery needs one evk per tree depth: log2(D0)."""
        return modmath.ilog2(self.d0)

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    def with_db(self, d0: int | None = None, num_dims: int | None = None) -> "PirParams":
        """Copy with a different database geometry."""
        return replace(
            self,
            d0=self.d0 if d0 is None else d0,
            num_dims=self.num_dims if num_dims is None else num_dims,
        )

    @staticmethod
    def paper(d0: int = 256, num_dims: int = 9) -> "PirParams":
        """Table I configuration: N=2^12, 4 special primes, P=2^32, ℓ=5.

        The default ``num_dims=9`` corresponds to the 2 GB synthesized DB
        (D = 2^17 polynomials of 16 KB payload each).
        """
        n = 1 << 12
        return PirParams(
            n=n,
            moduli=modmath.special_primes(order=2 * n, count=4),
            plain_modulus=1 << 32,
            gadget_base_log2=22,
            gadget_len=5,
            d0=d0,
            num_dims=num_dims,
        )

    @staticmethod
    def paper_for_db_bytes(db_bytes: int, d0: int = 256) -> "PirParams":
        """Paper parameters sized so the raw DB is ``db_bytes`` large."""
        base = PirParams.paper(d0=d0, num_dims=0)
        polys = max(d0, db_bytes // base.plain_poly_bytes)
        num_dims = max(0, int(round(math.log2(polys / d0))))
        return PirParams.paper(d0=d0, num_dims=num_dims)

    @staticmethod
    def functional(d0: int = 64, num_dims: int = 2) -> "PirParams":
        """Paper-shaped ring with an odd P sized for ample noise margin.

        P = 786433 (prime) gives Δ ≈ 2^88 so the RowSel plaintext products
        (noise scaling ~ sqrt(N) * P, Section II-C) stay far below Δ/2 even
        for deep expansion trees.  Use this preset for runnable examples;
        :meth:`paper` keeps the Table I values for cost modeling.
        """
        n = 1 << 12
        return PirParams(
            n=n,
            moduli=modmath.special_primes(order=2 * n, count=4),
            plain_modulus=786433,  # 3 * 2^18 + 1, prime
            gadget_base_log2=22,
            gadget_len=5,
            d0=d0,
            num_dims=num_dims,
        )

    @staticmethod
    def small(
        n: int = 256,
        d0: int = 8,
        num_dims: int = 2,
        plain_modulus: int = 65537,
    ) -> "PirParams":
        """Small, fast parameters for unit tests (not secure).

        Three ~28-bit moduli (Q ≈ 2^81) leave ~2^20 of noise headroom over
        the worst RowSel product at P = 2^16.
        """
        return PirParams(
            n=n,
            moduli=modmath.special_primes(order=2 * n, count=3),
            plain_modulus=plain_modulus,
            gadget_base_log2=14,
            gadget_len=6,
            d0=d0,
            num_dims=num_dims,
        )
