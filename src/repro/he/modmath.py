"""Modular arithmetic primitives and NTT-friendly prime selection.

This module provides the scalar number theory the HE layer is built on:
deterministic primality testing, NTT-friendly prime search, and the paper's
"special primes" of the form ``2^27 + 2^k + 1`` (Section IV-G) that IVE uses
to cheapen modular-reduction circuits.
"""

from __future__ import annotations


from repro.errors import ParameterError

# Witness set that makes Miller-Rabin deterministic for all n < 3.3 * 10^24,
# far beyond any modulus used here (< 2^32).
_MILLER_RABIN_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

# Exponents from Section IV-G: four primes of the form 2^27 + 2^k + 1.
SPECIAL_PRIME_EXPONENTS = (15, 17, 21, 22)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin primality test for moduli-sized integers."""
    if n < 2:
        return False
    for p in _MILLER_RABIN_WITNESSES:
        if n % p == 0:
            return n == p
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for a in _MILLER_RABIN_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def special_primes(order: int, count: int = 4) -> tuple[int, ...]:
    """Return the paper's Solinas-like primes ``2^27 + 2^k + 1``.

    Each prime must satisfy ``q ≡ 1 (mod order)`` so that a primitive
    ``order``-th root of unity exists (``order`` is ``2N`` for negacyclic
    NTT). All four paper primes are ≡ 1 mod 2^13, so they support N ≤ 2^12.
    """
    primes = []
    for k in SPECIAL_PRIME_EXPONENTS:
        q = 2**27 + 2**k + 1
        if q % order == 1 and is_prime(q):
            primes.append(q)
    if len(primes) < count:
        raise ParameterError(
            f"only {len(primes)} special primes support NTT order {order}; "
            f"need {count} (order must divide 2^13)"
        )
    return tuple(primes[:count])


def find_ntt_primes(bits: int, order: int, count: int) -> tuple[int, ...]:
    """Find ``count`` primes of roughly ``bits`` bits with ``q ≡ 1 (mod order)``.

    Used for non-paper parameter sets (e.g. small test rings). The search
    walks downward from ``2^bits`` in steps of ``order`` so every candidate
    already satisfies the congruence.
    """
    primes = []
    q = (2**bits - 1) // order * order + 1
    while len(primes) < count:
        if q < 2 ** (bits - 1):
            raise ParameterError(
                f"could not find {count} NTT-friendly primes of {bits} bits "
                f"for order {order}"
            )
        if is_prime(q):
            primes.append(q)
        q -= order
    return tuple(primes)


def mod_inverse(a: int, m: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``m`` (raises if none exists)."""
    g, x, _ = _extended_gcd(a % m, m)
    if g != 1:
        raise ParameterError(f"{a} has no inverse modulo {m} (gcd={g})")
    return x % m


def _extended_gcd(a: int, b: int) -> tuple[int, int, int]:
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        quot = old_r // r
        old_r, r = r, old_r - quot * r
        old_s, s = s, old_s - quot * s
        old_t, t = t, old_t - quot * t
    return old_r, old_s, old_t


def primitive_root(q: int) -> int:
    """Smallest generator of the multiplicative group of ``Z_q`` (q prime)."""
    factors = _prime_factors(q - 1)
    for g in range(2, q):
        if all(pow(g, (q - 1) // f, q) != 1 for f in factors):
            return g
    raise ParameterError(f"no primitive root found for {q}")


def root_of_unity(order: int, q: int) -> int:
    """An element of exact multiplicative order ``order`` in ``Z_q``."""
    if (q - 1) % order != 0:
        raise ParameterError(f"{order} does not divide {q} - 1")
    g = primitive_root(q)
    root = pow(g, (q - 1) // order, q)
    # The construction guarantees root^order == 1; check exactness.
    if order % 2 == 0 and pow(root, order // 2, q) == 1:
        raise ParameterError(f"root {root} has order smaller than {order}")
    return root


def _prime_factors(n: int) -> list[int]:
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors


def centered(x: int, q: int) -> int:
    """Representative of ``x mod q`` in the centered range (-q/2, q/2]."""
    x %= q
    if x > q // 2:
        x -= q
    return x


def bit_reverse(x: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``x``."""
    result = 0
    for _ in range(bits):
        result = (result << 1) | (x & 1)
        x >>= 1
    return result


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def ilog2(n: int) -> int:
    """Exact log2 of a power of two."""
    if not is_power_of_two(n):
        raise ParameterError(f"{n} is not a power of two")
    return n.bit_length() - 1


def montgomery_modmul_area_units(prime_bits: int, special: bool) -> float:
    """Relative area of a modular-multiply circuit (Section IV-G model).

    The paper reports that special primes of the form ``2^27 + 2^k + 1``
    reduce the area of a Montgomery-reduction multiplier by 9.1% versus
    generic primes with ``q ≡ 1 mod 2^14``.  We model the generic multiplier
    area as growing quadratically in the operand width (array multiplier)
    and apply the paper's measured discount for the special form, in which
    the second reduction multiply degenerates into shift-and-add.
    """
    base = (prime_bits / 28.0) ** 2
    return base * (1.0 - 0.091) if special else base
