"""Public-key BFV encryption.

The PIR client encrypts with its own secret key, but deployments that
separate the querying device from the key holder (e.g. a thin mobile
client with keys escrowed in a secure element) use standard public-key
BFV: ``pk = (a, -a*s + e)`` and

    Enc_pk(m) = (u*pk_a + e1,  u*pk_b + e2 + Δm)

for a fresh ternary ``u``.  The phase is Δm + (u*e + e1*s + e2): noise is
slightly larger than secret-key encryption but the homomorphic pipeline is
unchanged, so everything in ``repro.pir`` works on top of either.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.he.bfv import BfvCiphertext, BfvContext, SecretKey
from repro.he.poly import Domain, RnsPoly


@dataclass
class PublicKey:
    """One RLWE sample under the secret key, in NTT form."""

    a: RnsPoly
    b: RnsPoly

    @staticmethod
    def generate(bfv: BfvContext, key: SecretKey) -> "PublicKey":
        ct = bfv.encrypt_zero(key)
        return PublicKey(a=ct.a, b=ct.b)


def encrypt_public(
    bfv: BfvContext, pk: PublicKey, coeffs: np.ndarray
) -> BfvCiphertext:
    """Encrypt a plaintext coefficient vector under the public key."""
    params = bfv.params
    arr = np.asarray(coeffs, dtype=np.int64) % params.plain_modulus
    ctx = bfv.ctx
    u = ctx.from_small_coeffs(bfv.sampler.ternary_coeffs(), domain=Domain.NTT)
    e1 = bfv.sampler.error_poly(Domain.NTT)
    e2 = bfv.sampler.error_poly(Domain.NTT)
    delta_m = ctx.from_small_coeffs(arr, domain=Domain.NTT).scalar_mul(params.delta)
    return BfvCiphertext(
        a=u * pk.a + e1,
        b=u * pk.b + e2 + delta_m,
    )
