"""Negacyclic number-theoretic transform over a single prime modulus.

The transform maps a polynomial in ``Z_q[X]/(X^N + 1)`` to its evaluations
at the odd powers of a primitive ``2N``-th root of unity ``psi``, so that a
negacyclic convolution becomes an element-wise product (Section II-B).

The implementation is the iterative Cooley-Tukey / Gentleman-Sande pair with
merged ``psi`` twiddles (the standard Longa-Naehrig formulation), vectorised
with numpy.  All residues are < 2^28 so products fit comfortably in int64.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.he import modmath


class NttContext:
    """Precomputed tables for the forward/inverse negacyclic NTT mod ``q``."""

    def __init__(self, n: int, q: int):
        if not modmath.is_power_of_two(n):
            raise ParameterError(f"ring degree {n} must be a power of two")
        if (q - 1) % (2 * n) != 0:
            raise ParameterError(f"modulus {q} is not NTT-friendly for degree {n}")
        self.n = n
        self.q = q
        self.logn = modmath.ilog2(n)
        psi = modmath.root_of_unity(2 * n, q)
        psi_inv = modmath.mod_inverse(psi, q)
        self.psi = psi
        # Twiddle tables in bit-reversed order, as used by the merged NTT.
        self._fwd = np.array(
            [pow(psi, modmath.bit_reverse(i, self.logn), q) for i in range(n)],
            dtype=np.int64,
        )
        self._inv = np.array(
            [pow(psi_inv, modmath.bit_reverse(i, self.logn), q) for i in range(n)],
            dtype=np.int64,
        )
        self._n_inv = modmath.mod_inverse(n, q)

    def _as_stacked(self, arr: np.ndarray) -> np.ndarray:
        """Copy + reduce an input of shape ``(..., n)``; reject anything else."""
        a = np.array(arr, dtype=np.int64) % self.q
        if a.ndim < 1 or a.shape[-1] != self.n:
            raise ParameterError(f"expected shape (..., {self.n}), got {a.shape}")
        return np.ascontiguousarray(a)

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Coefficient vector(s) -> NTT evaluation vector(s) (new array).

        Accepts a single ``(n,)`` polynomial or any stacked ``(..., n)``
        tensor of polynomials; every leading axis is transformed
        independently in one vectorised pass (the batched hot path).
        """
        q = self.q
        a = self._as_stacked(coeffs)
        lead = a.shape[:-1]
        t = self.n
        m = 1
        while m < self.n:
            t //= 2
            blocks = a.reshape(*lead, m, 2, t)
            s = self._fwd[m : 2 * m]
            u = blocks[..., 0, :].copy()
            v = (blocks[..., 1, :] * s[:, None]) % q
            blocks[..., 0, :] = (u + v) % q
            blocks[..., 1, :] = (u - v) % q
            m *= 2
        return a

    def inverse(self, evals: np.ndarray) -> np.ndarray:
        """NTT evaluation vector(s) -> coefficient vector(s) (new array).

        Same stacked ``(..., n)`` contract as :meth:`forward`.
        """
        q = self.q
        a = self._as_stacked(evals)
        lead = a.shape[:-1]
        t = 1
        m = self.n
        while m > 1:
            h = m // 2
            blocks = a.reshape(*lead, h, 2, t)
            s = self._inv[h : 2 * h]
            u = blocks[..., 0, :].copy()
            v = blocks[..., 1, :].copy()
            blocks[..., 0, :] = (u + v) % q
            blocks[..., 1, :] = ((u - v) * s[:, None]) % q
            t *= 2
            m = h
        return (a * self._n_inv) % q

    def negacyclic_convolution(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Polynomial product in ``Z_q[X]/(X^N + 1)`` via NTT (reference path)."""
        fa = self.forward(a)
        fb = self.forward(b)
        return self.inverse((fa * fb) % self.q)


def naive_negacyclic_convolution(a, b, q: int) -> np.ndarray:
    """Schoolbook negacyclic convolution, used to validate the NTT.

    Vectorised int64 path: the linear convolution is computed with
    ``np.convolve`` over chunks of ``a`` small enough that every partial
    sum of products stays below 2^63, reducing mod ``q`` between chunks;
    the negacyclic wrap then folds the upper half back with a sign flip.
    Moduli too large for that bound fall back to exact object arithmetic.
    """
    n = len(a)
    if len(b) != n:
        raise ParameterError(f"length mismatch: {n} vs {len(b)}")
    # Largest chunk with chunk * (q-1)^2 < 2^63 (partial sums cannot wrap).
    chunk = (1 << 62) // max(1, (q - 1) ** 2)
    if chunk < 1:
        return _object_negacyclic_convolution(a, b, q)
    try:
        a64 = np.asarray(a, dtype=np.int64) % q
        b64 = np.asarray(b, dtype=np.int64) % q
    except OverflowError:
        # Unreduced coefficients beyond int64: keep the old exact contract.
        return _object_negacyclic_convolution(a, b, q)
    full = np.zeros(2 * n, dtype=np.int64)  # linear convolution, padded
    for start in range(0, n, chunk):
        part = np.convolve(a64[start : start + chunk], b64) % q
        full[start : start + len(part)] = (full[start : start + len(part)] + part) % q
    return (full[:n] - full[n:]) % q


def _object_negacyclic_convolution(a, b, q: int) -> np.ndarray:
    """Arbitrary-precision fallback (and ground truth for the int64 path)."""
    n = len(a)
    out = [0] * n
    for i in range(n):
        ai = int(a[i])
        for j in range(n):
            k = i + j
            term = ai * int(b[j])
            if k >= n:
                out[k - n] -= term
            else:
                out[k] += term
    return np.array([c % q for c in out], dtype=np.int64)
