"""Base-z gadget decomposition Dcp (Section II-D, Fig. 3).

``Dcp(x)`` writes a polynomial ``x`` in R_Q as ℓ digit polynomials with
coefficients in [0, z), such that ``sum_i x_i * z^i = x``.  Following the
paper's computational flow, the input arrives in NTT form, is brought back
to coefficients (iNTT), reconstructed from RNS (iCRT, Eq. 3), and the bits
are extracted digit by digit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.he.poly import Domain, RingContext, RnsPoly


class Gadget:
    """Digit decomposition and gadget constants for one parameter set."""

    def __init__(self, ctx: RingContext):
        self.ctx = ctx
        params = ctx.params
        self.base_log2 = params.gadget_base_log2
        self.base = params.gadget_base
        self.length = params.gadget_len
        if self.base ** self.length < params.q:
            raise ParameterError("gadget does not cover Q")
        # z^i mod q_j constants, one RNS vector per digit position.
        self.powers_rns = tuple(
            ctx.basis.constant_rns(pow(self.base, i, params.q))
            for i in range(self.length)
        )

    def decompose(self, poly: RnsPoly) -> list[RnsPoly]:
        """Dcp: iNTT -> iCRT -> bit extraction; returns ℓ coeff-domain polys.

        Digits are the plain unsigned base-z digits of the [0, Q) lift, so
        each digit coefficient is < z and fits directly in every residue
        channel without reduction.
        """
        coeffs = poly.to_coeff().lift_coeffs()  # object ints in [0, Q)
        mask = self.base - 1
        digits: list[RnsPoly] = []
        current = coeffs
        for _ in range(self.length):
            digit = np.array([int(c) & mask for c in current], dtype=np.int64)
            digits.append(
                RnsPoly(
                    self.ctx,
                    np.tile(digit, (self.ctx.rns_count, 1)),
                    Domain.COEFF,
                )
            )
            current = np.array([int(c) >> self.base_log2 for c in current], dtype=object)
        return digits

    def decompose_ntt(self, poly: RnsPoly) -> list[RnsPoly]:
        """Dcp followed by the 2ℓ-digit NTT batch from Fig. 3."""
        return [d.to_ntt() for d in self.decompose(poly)]

    def recompose(self, digits: list[RnsPoly]) -> RnsPoly:
        """Inverse of :meth:`decompose` (for tests): sum_i digit_i * z^i."""
        if len(digits) != self.length:
            raise ParameterError(
                f"expected {self.length} digits, got {len(digits)}"
            )
        acc = self.ctx.zero(digits[0].domain)
        for digit, power in zip(digits, self.powers_rns):
            acc = acc + digit.scalar_rns_mul(power)
        return acc
