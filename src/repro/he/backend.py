"""Pluggable compute backends for the batched PIR kernel layer.

Every consumer of the hot path — ``PirServer``, batchpir, kvpir, the
hintpir/SimplePIR GEMM tier, the mutate re-NTT, the serving registries
and the cluster workers — resolves a :class:`ComputeBackend` once at
construction (``get_backend("planned")`` by default) instead of
threading ad-hoc fast-path booleans.  A backend implements the small
primitive surface (forward/inverse NTT, gadget decomposition, the
modular GEMMs and key-switch inner products) and inherits the shared
pipeline ops built on top of them (``substitute``, ``external_product``,
``expand``, ``rowsel``, ``coltor``), so the whole
ExpandQuery→RowSel→ColTor pipeline retargets by swapping primitives.

Two backends are registered:

* ``eager`` — the existing stacked-numpy path (lazy-reduction
  butterflies, limb-iCRT decomposition, chunked int64 einsums), kept
  byte-for-byte as the correctness oracle;
* ``planned`` — precomputed per-:class:`~repro.he.poly.RingContext` NTT
  *plans*: the twiddle/bit-reversal structure of each ring is folded
  once into dense per-modulus transform matrices (built by pushing the
  identity through the existing butterflies, so output ordering is
  identical by construction), and transforms become float64 GEMMs with
  Barrett reduction replacing the per-stage ``%``
  (:func:`repro.he.modred.barrett_reduce`).  Gadget digits (< z) ride
  one fused ``(batch*k, n) @ (n, rns*n)`` dgemm; general residues split
  into 14-bit halves so the accumulation provably stays below the
  float64-exact bound.  ColTor rounds stay tensor-resident (the
  even/odd halves are residue-tensor views, never re-stacked ciphertext
  lists), which together with the vec-form RowSel output removes every
  intermediate ciphertext-stack materialization between expand and the
  final response.  Rings whose geometry breaks a plan's exactness bound
  (n > {max_n}, oversized moduli, oversized digits) fall back to the
  eager primitives per call — never silently wrong, at most slower.

All backend arithmetic is exact modular arithmetic, so every backend is
byte-identical; ``tests/pir/test_backend_parity.py`` asserts this across
all four serving modes.  Kernel-stage labels carry the backend name
(``ntt_fwd@planned``) so profiles attribute time to the implementation
that spent it; :func:`repro.obs.report.measured_vs_modeled` aggregates
over the suffix.

Registering a third backend::

    class MyBackend(EagerBackend):
        name = "mine"
        def ntt_forward(self, ctx, residues): ...

    register_backend(MyBackend())

after which ``--backend mine`` works everywhere a backend name travels,
including reconstruction inside spawned cluster workers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.he.batched import (
    BfvCiphertextVec,
    RnsPolyVec,
    _batched_decompose_impl,
    _chunked_einsum,
    _lazy_inner,
    _limb_tables,
    _rns_forward_impl,
    _rns_inverse_impl,
    overflow_safe_chunk,
)
from repro.he.bfv import BfvCiphertext
from repro.he.gadget import Gadget
from repro.he.modred import (
    FLOAT64_EXACT_MAX,
    barrett_reduce,
    barrett_reduce_nonneg,
)
from repro.he.poly import Domain, RingContext
from repro.he.rgsw import RgswCiphertext
from repro.he.subs import SubsKey
from repro.obs.profile import kernel_stage

_INT64_MAX = (1 << 63) - 1

#: Largest ring degree the planned backend builds dense NTT plans for.
#: Above this the per-modulus (2n, n) transform matrices outgrow both
#: the float64-exact accumulation bound and any sensible cache budget,
#: so the planned backend falls back to the eager butterflies.
PLAN_MAX_N = 512


def modular_gemm(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """``(a @ b) % q`` with int64 accumulation that provably never overflows.

    ``a`` and ``b`` must already be reduced into ``[0, q)`` (or, for delta
    matrices, into ``(-q, q)``).  The inner dimension is split into chunks
    small enough that ``chunk * max|a| * max|b| + (q - 1)`` fits int64;
    each chunk's partial product is reduced mod q before the next is
    accumulated.  Chunking is exact mod q, so the result is byte-identical
    regardless of where the chunk boundaries fall.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    inner = a.shape[-1]
    if inner == 0:
        return np.zeros(a.shape[:-1] + b.shape[1:], dtype=np.int64)
    max_a = int(np.max(np.abs(a), initial=0))
    max_b = int(np.max(np.abs(b), initial=0))
    per_term = max_a * max_b
    if per_term == 0:
        return np.zeros(a.shape[:-1] + b.shape[1:], dtype=np.int64)
    chunk = (_INT64_MAX - (q - 1)) // per_term
    if chunk < 1:
        # A single product term overflows int64 (q-sized times q-sized
        # operands at large q): fall back to exact arbitrary-precision
        # integers.  Slow, but only reachable at parameter corners that
        # int64 fundamentally cannot host — never the DB-side hot path,
        # where one operand is p-sized.
        return np.asarray(
            (a.astype(object) @ b.astype(object)) % q, dtype=np.int64
        )
    if chunk >= inner:
        return (a @ b) % q
    acc = np.zeros(a.shape[:-1] + b.shape[1:], dtype=np.int64)
    for start in range(0, inner, chunk):
        stop = min(start + chunk, inner)
        acc = (acc + a[..., start:stop] @ b[start:stop]) % q
    return acc


class ComputeBackend:
    """Kernel-primitive surface plus the pipeline ops built on it.

    Subclasses provide the primitives (NTTs, decomposition, GEMMs); the
    pipeline ops (``substitute`` … ``coltor``) are implemented here once
    in terms of those primitives, so a backend that swaps a primitive
    retargets the whole ExpandQuery→RowSel→ColTor pipeline.  Pipeline
    ops never call the module-level ``rns_forward``/``rns_inverse`` —
    every transform routes through ``self`` so the backend's plan (and
    its profiler label) is always in effect.
    """

    name: str = ""

    def _label(self, stage: str) -> str:
        return f"{stage}@{self.name}"

    # -- primitives (subclass responsibility) ----------------------------
    def ntt_forward(self, ctx: RingContext, residues: np.ndarray) -> np.ndarray:
        """Stacked forward NTT over every RNS row: (..., rns, n) -> same."""
        raise NotImplementedError

    def ntt_inverse(self, ctx: RingContext, residues: np.ndarray) -> np.ndarray:
        """Stacked inverse NTT over every RNS row: (..., rns, n) -> same."""
        raise NotImplementedError

    def digits_forward(self, ctx: RingContext, digits: np.ndarray) -> np.ndarray:
        """NTT a digit tensor (batch, k, n) into every RNS row.

        The output feeds ``inner`` and nothing else, so a backend may
        return *partially* reduced residues (e.g. ``[0, 2q)``) as long
        as its own ``inner`` accounts for the wider operand range — the
        inner product's final reduction makes the pipeline result
        canonical (and byte-identical) either way.
        """
        raise NotImplementedError

    def decompose(self, gadget: Gadget, vec: RnsPolyVec) -> np.ndarray:
        """Gadget digits of a whole batch: (batch, gadget_len, n) int64."""
        raise NotImplementedError

    def inner(
        self, digits: np.ndarray, rows: np.ndarray, moduli_col: np.ndarray
    ) -> np.ndarray:
        """Key-switch inner product ``out[b] = sum_k digits[b, k] * rows[k]``."""
        raise NotImplementedError

    def rowsel_gemm(
        self, db: np.ndarray, query: np.ndarray, moduli_col: np.ndarray
    ) -> np.ndarray:
        """RowSel GEMM: (cols, rows, rns, n) x (rows, rns, n) -> (cols, rns, n)."""
        raise NotImplementedError

    def modular_gemm(self, a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
        """Dense ``(a @ b) % q`` (the SimplePIR/hintpir server tier)."""
        raise NotImplementedError

    # -- domain helpers ---------------------------------------------------
    def vec_to_ntt(self, vec: RnsPolyVec) -> RnsPolyVec:
        if vec.domain is Domain.NTT:
            return vec
        return RnsPolyVec(
            vec.ctx, self.ntt_forward(vec.ctx, vec.residues), Domain.NTT
        )

    def vec_to_coeff(self, vec: RnsPolyVec) -> RnsPolyVec:
        if vec.domain is Domain.COEFF:
            return vec
        return RnsPolyVec(
            vec.ctx, self.ntt_inverse(vec.ctx, vec.residues), Domain.COEFF
        )

    # -- pipeline ops -----------------------------------------------------
    def substitute(
        self, vec: BfvCiphertextVec, evk: SubsKey, gadget: Gadget
    ) -> BfvCiphertextVec:
        """Subs(ct, evk.r) over a whole batch of ciphertexts at once."""
        if evk.num_rows != gadget.length:
            raise ParameterError(
                f"evk has {evk.num_rows} rows; gadget expects {gadget.length}"
            )
        ctx = vec.a.ctx
        moduli_col = ctx._moduli_col
        nbytes = vec.a.residues.nbytes + vec.b.residues.nbytes
        with kernel_stage(self._label("subs"), nbytes):
            a_aut = self.vec_to_coeff(vec.a).automorphism(evk.r)
            b_aut = self.vec_to_ntt(
                self.vec_to_coeff(vec.b).automorphism(evk.r)
            )
            digits = self.digits_forward(ctx, self.decompose(gadget, a_aut))
            rows_a = np.stack([row.residues for row in evk.a_rows])
            rows_b = np.stack([row.residues for row in evk.b_rows])
            out_a = self.inner(digits, rows_a, moduli_col)
            out_b = (self.inner(digits, rows_b, moduli_col) + b_aut.residues) \
                % moduli_col
            return BfvCiphertextVec(
                RnsPolyVec(ctx, out_a, Domain.NTT),
                RnsPolyVec(ctx, out_b, Domain.NTT),
            )

    def external_product(
        self, rgsw: RgswCiphertext, vec: BfvCiphertextVec, gadget: Gadget
    ) -> BfvCiphertextVec:
        """ct_RGSW ⊡ ct_BFV for a batch of BFV ciphertexts (Fig. 3 flow)."""
        ell = gadget.length
        if rgsw.num_rows != 2 * ell:
            raise ParameterError(
                f"RGSW has {rgsw.num_rows} rows; gadget expects {2 * ell}"
            )
        ctx = vec.a.ctx
        batch = vec.batch
        nbytes = vec.a.residues.nbytes + vec.b.residues.nbytes
        with kernel_stage(self._label("ext_product"), nbytes):
            stacked = self.vec_to_coeff(RnsPolyVec.concat(vec.a, vec.b))
            digits = self.decompose(gadget, stacked)  # (2*batch, ell, n)
            # Per ciphertext the digit order is a-digits then b-digits.
            digits = np.concatenate([digits[:batch], digits[batch:]], axis=1)
            digits = self.digits_forward(ctx, digits)  # (batch, 2*ell, rns, n)
            rows_a = np.stack([row.residues for row in rgsw.a_rows])
            rows_b = np.stack([row.residues for row in rgsw.b_rows])
            return BfvCiphertextVec(
                RnsPolyVec(
                    ctx, self.inner(digits, rows_a, ctx._moduli_col), Domain.NTT
                ),
                RnsPolyVec(
                    ctx, self.inner(digits, rows_b, ctx._moduli_col), Domain.NTT
                ),
            )

    def cmux(
        self,
        rgsw_bit: RgswCiphertext,
        if_zeros: BfvCiphertextVec,
        if_ones: BfvCiphertextVec,
        gadget: Gadget,
    ) -> BfvCiphertextVec:
        """Homomorphic select: bit ⊡ (ones - zeros) + zeros, batched."""
        return self.external_product(
            rgsw_bit, if_ones - if_zeros, gadget
        ) + if_zeros

    def expand(
        self,
        ct: BfvCiphertext,
        evks: dict[int, SubsKey],
        levels: int,
        gadget: Gadget,
    ) -> BfvCiphertextVec:
        """Batched ExpandQuery tree: one query ct -> 2^levels one-hot cts."""
        n = ct.a.ctx.n
        if (1 << levels) > n:
            raise ParameterError(
                f"cannot expand {levels} levels in a degree-{n} ring"
            )
        nbytes = ct.a.residues.nbytes + ct.b.residues.nbytes
        with kernel_stage(self._label("expand"), nbytes):
            vec = BfvCiphertextVec.from_cts([ct])
            for a in range(levels):
                r = n // (1 << a) + 1
                if r not in evks:
                    raise ParameterError(
                        f"missing evk for substitution power r={r}"
                    )
                evk = evks[r]
                step = 1 << a
                swapped = self.substitute(vec, evk, gadget)
                even = vec + swapped
                odd = (vec - swapped).monomial_mul(-step)
                vec = BfvCiphertextVec.concat(even, odd)
            return vec

    def rowsel(
        self,
        expanded: BfvCiphertextVec,
        db_tensor: np.ndarray,
        moduli_col: np.ndarray,
    ) -> BfvCiphertextVec:
        """Batched RowSel over one plane's (cols, d0, rns, n) tensor."""
        d0 = db_tensor.shape[1]
        if expanded.batch != d0:
            raise ParameterError(
                f"expected {d0} expanded ciphertexts, got {expanded.batch}"
            )
        ctx = expanded.a.ctx
        with kernel_stage(self._label("rowsel"), 2 * db_tensor.nbytes):
            out_a = self.rowsel_gemm(db_tensor, expanded.a.residues, moduli_col)
            out_b = self.rowsel_gemm(db_tensor, expanded.b.residues, moduli_col)
        return BfvCiphertextVec(
            RnsPolyVec(ctx, out_a, Domain.NTT),
            RnsPolyVec(ctx, out_b, Domain.NTT),
        )

    @staticmethod
    def _check_coltor(count: int, selection_bits: list) -> None:
        if count == 0:
            raise ParameterError("ColTor needs at least one entry")
        if count & (count - 1):
            raise ParameterError(
                f"ColTor entry count {count} must be a power of two"
            )
        if (1 << len(selection_bits)) != count:
            raise ParameterError(
                f"{count} entries need {count.bit_length() - 1} selection "
                f"bits, got {len(selection_bits)}"
            )

    def coltor(
        self,
        entries: BfvCiphertextVec,
        selection_bits: list[RgswCiphertext],
        gadget: Gadget,
    ) -> BfvCiphertext:
        """Tournament reduction: 2^d RowSel outputs -> one response ct.

        The base implementation mirrors the historical fast path exactly:
        each round restacks the surviving ciphertexts into even/odd vec
        halves via the ciphertext list (the planned backend overrides
        this with tensor-resident slicing).
        """
        self._check_coltor(entries.batch, selection_bits)
        nbytes = entries.a.residues.nbytes + entries.b.residues.nbytes
        with kernel_stage(self._label("coltor"), nbytes):
            current = entries.cts()
            for rgsw_bit in selection_bits:
                zeros = BfvCiphertextVec.from_cts(current[0::2])
                ones = BfvCiphertextVec.from_cts(current[1::2])
                current = self.cmux(rgsw_bit, zeros, ones, gadget).cts()
            return current[0]


class EagerBackend(ComputeBackend):
    """The current stacked-numpy path: butterflies, limb iCRT, int64 einsums.

    Byte-for-byte the pre-backend fast path; kept as the correctness
    oracle every other backend is measured against.
    """

    name = "eager"

    def ntt_forward(self, ctx: RingContext, residues: np.ndarray) -> np.ndarray:
        with kernel_stage(self._label("ntt_fwd"), getattr(residues, "nbytes", 0)):
            return _rns_forward_impl(ctx, residues)

    def ntt_inverse(self, ctx: RingContext, residues: np.ndarray) -> np.ndarray:
        with kernel_stage(self._label("ntt_inv"), getattr(residues, "nbytes", 0)):
            return _rns_inverse_impl(ctx, residues)

    def digits_forward(self, ctx: RingContext, digits: np.ndarray) -> np.ndarray:
        batch, k, n = digits.shape
        tiled = np.broadcast_to(
            digits[:, :, None, :], (batch, k, ctx.rns_count, n)
        )
        return self.ntt_forward(ctx, tiled)

    def decompose(self, gadget: Gadget, vec: RnsPolyVec) -> np.ndarray:
        if vec.domain is not Domain.COEFF:
            vec = self.vec_to_coeff(vec)
        with kernel_stage(self._label("decompose"), vec.residues.nbytes):
            return _batched_decompose_impl(gadget, vec)

    def inner(
        self, digits: np.ndarray, rows: np.ndarray, moduli_col: np.ndarray
    ) -> np.ndarray:
        return _lazy_inner(digits, rows, moduli_col)

    def rowsel_gemm(
        self, db: np.ndarray, query: np.ndarray, moduli_col: np.ndarray
    ) -> np.ndarray:
        if db.ndim != 4 or query.ndim != 3 or db.shape[1:] != query.shape:
            raise ParameterError(
                f"GEMM shape mismatch: db {db.shape} vs query {query.shape}"
            )
        chunk = overflow_safe_chunk(int(moduli_col.max()))
        with kernel_stage(self._label("gemm"), db.nbytes + query.nbytes):
            return _chunked_einsum(
                "crmn,rmn->cmn", db, query, db.shape[1], chunk, moduli_col,
                (db.shape[0],) + query.shape[1:],
            )

    def modular_gemm(self, a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
        return modular_gemm(a, b, q)


class _GemmNttPlan:
    """Dense-GEMM evaluation plan for one ring, cached per RingContext.

    The negacyclic NTT is linear over Z_q, so each per-modulus transform
    *is* an n×n matrix; pushing ``np.eye(n)`` through the existing
    butterfly implementation folds the twiddle tables and bit-reversed
    output ordering into dense matrices that are identical-by-
    construction to the eager transforms.  Two layouts are kept:

    * ``fwd_unit`` — forward matrices of all moduli hstacked to
      ``(n, rns*n)`` float64.  Gadget digits share one coefficient row
      across the RNS axis, so the whole digit tensor forwards in a
      single dgemm; exact while ``n * max_digit * (q-1) < 2^53``.
    * ``fwd_split`` / ``inv_split`` — per-modulus ``(2n, n)`` matrices
      for general residues, which are too large for a direct float64
      product: each residue splits into 14-bit halves ``x = hi*2^14 +
      lo`` and the top block of the matrix pre-folds the ``2^14``
      factor (``(2^14 * M) % q``), keeping every accumulation below the
      float64-exact bound for n <= {max_n} at ~28-bit moduli.

    Post-GEMM accumulators are canonicalised with Barrett reduction
    (:func:`repro.he.modred.barrett_reduce`) — no per-stage ``%``
    anywhere in the planned transforms.
    """

    SPLIT_LOG2 = 14

    def __init__(self, ctx: RingContext):
        n = ctx.n
        s = self.SPLIT_LOG2
        moduli = [ntt.q for ntt in ctx.ntts]
        eye = np.eye(n, dtype=np.int64)
        # Row i of ntt.forward(eye) is NTT(e_i): linearity gives
        # NTT(x) = x @ M, bit-reversal ordering included.
        fwd_mats = [ntt.forward(eye) for ntt in ctx.ntts]
        inv_mats = [ntt.inverse(eye) for ntt in ctx.ntts]
        self.moduli = [int(q) for q in moduli]
        #: (rns, 1) int64 — broadcasts over (..., rns, n) accumulators so
        #: one Barrett call reduces the whole RNS stack.
        self.moduli_col = np.asarray(self.moduli, dtype=np.int64)[:, None]
        self.fwd_unit = np.hstack(fwd_mats).astype(np.float64)
        self.fwd_split = self._split_stack(fwd_mats, moduli, s)
        self.inv_split = self._split_stack(inv_mats, moduli, s)
        qmax = max(self.moduli)
        hi_max = (qmax - 1) >> s
        lo_max = (1 << s) - 1
        #: Whether the hi/lo split transform is float64-exact for this ring.
        self.split_ok = n * (hi_max + lo_max) * (qmax - 1) < FLOAT64_EXACT_MAX
        #: Multiply by the digit tensor's max value for the digit-GEMM bound.
        self.digit_coeff = n * (qmax - 1)

    @staticmethod
    def _split_stack(mats: list, moduli: list, s: int) -> np.ndarray:
        return np.stack([
            np.concatenate([(mat * (1 << s)) % q, mat], axis=0)
            for mat, q in zip(mats, moduli)
        ]).astype(np.float64)


class PlannedBackend(EagerBackend):
    """Plan-driven backend: NTTs as float64 GEMMs with Barrett reduction.

    Inherits the eager primitives for the stages where int64 einsum
    contraction already wins (the RowSel GEMM) and replaces the
    transform-heavy stages with the per-ring dense plans of
    :class:`_GemmNttPlan`; gadget decomposition keeps the eager limb
    iCRT but canonicalises the lift on two packed int64 halves instead
    of limb-wise comparisons.  Every plan use is gated on its exactness
    bound, with per-call fallback to the eager implementation.
    """

    name = "planned"

    def _plan(self, ctx: RingContext) -> _GemmNttPlan | None:
        plan = getattr(ctx, "_gemm_ntt_plan_cache", None)
        if plan is None:
            plan = _GemmNttPlan(ctx) if ctx.n <= PLAN_MAX_N else False
            ctx._gemm_ntt_plan_cache = plan
        return plan or None

    def _split_transform(
        self, ctx: RingContext, plan: _GemmNttPlan,
        residues: np.ndarray, mats: np.ndarray,
    ) -> np.ndarray:
        x = np.asarray(residues, dtype=np.int64) % ctx._moduli_col
        lead = x.shape[:-2]
        rns, n = x.shape[-2:]
        s = plan.SPLIT_LOG2
        hi = (x >> s).astype(np.float64)
        lo = (x & ((1 << s) - 1)).astype(np.float64)
        x2 = np.concatenate([hi, lo], axis=-1).reshape(-1, rns, 2 * n)
        out = np.empty((x2.shape[0], rns, n), dtype=np.int64)
        for m in range(rns):
            acc = x2[:, m, :] @ mats[m]
            # Matrix entries and split halves are non-negative, so the
            # accumulator qualifies for the cheap no-floor Barrett form.
            out[:, m, :] = barrett_reduce_nonneg(acc, plan.moduli[m])
        return out.reshape(lead + (rns, n))

    def ntt_forward(self, ctx: RingContext, residues: np.ndarray) -> np.ndarray:
        plan = self._plan(ctx)
        if plan is None or not plan.split_ok:
            return super().ntt_forward(ctx, residues)
        with kernel_stage(self._label("ntt_fwd"), getattr(residues, "nbytes", 0)):
            return self._split_transform(ctx, plan, residues, plan.fwd_split)

    def ntt_inverse(self, ctx: RingContext, residues: np.ndarray) -> np.ndarray:
        plan = self._plan(ctx)
        if plan is None or not plan.split_ok:
            return super().ntt_inverse(ctx, residues)
        with kernel_stage(self._label("ntt_inv"), getattr(residues, "nbytes", 0)):
            return self._split_transform(ctx, plan, residues, plan.inv_split)

    def digits_forward(self, ctx: RingContext, digits: np.ndarray) -> np.ndarray:
        plan = self._plan(ctx)
        if plan is not None and digits.size:
            dmax = int(digits.max())
            dmin = int(digits.min())
            if dmin >= 0 and plan.digit_coeff * dmax < FLOAT64_EXACT_MAX:
                batch, k, n = digits.shape
                rns = ctx.rns_count
                with kernel_stage(self._label("ntt_fwd"), digits.nbytes):
                    acc = digits.reshape(batch * k, n).astype(np.float64) \
                        @ plan.fwd_unit
                    acc = acc.reshape(batch, k, rns, n)
                    out = np.empty((batch, k, rns, n), dtype=np.int64)
                    for m in range(rns):
                        # Partial [0, 2q) residues: this backend's
                        # ``inner`` sizes its chunks on the actual
                        # operand range, so canonicalising here would
                        # be a wasted pass.
                        out[..., m, :] = barrett_reduce_nonneg(
                            acc[..., m, :], plan.moduli[m], partial=True
                        )
                return out
        return super().digits_forward(ctx, digits)

    def decompose(self, gadget: Gadget, vec: RnsPolyVec) -> np.ndarray:
        """Limb-iCRT decomposition with half-packed canonicalisation.

        Same Eq. 3 lift as the eager implementation, but after carry
        propagation the base-z limbs are packed into two exact int64
        halves ``S = high * z^lo + low``, so the ``rns_count - 1``
        conditional subtractions of Q become a handful of full-width
        integer ops instead of limb-wise lexicographic compare/borrow
        chains.  Digits come back out via shifts and masks —
        byte-identical to the eager path by construction.
        """
        if vec.domain is not Domain.COEFF:
            vec = self.vec_to_coeff(vec)
        tables = _limb_tables(gadget)
        nlimbs = tables["nlimbs"]
        blog = gadget.base_log2
        lo_limbs = nlimbs // 2
        hi_limbs = nlimbs - lo_limbs
        # Each packed half must stay an exact int64: the low half is
        # fully carried (< z^lo), the high half's top limb holds up to
        # rns_count unpropagated carries (3 extra bits covers rns <= 7).
        # Exotic bases fall back to the eager limb-wise path.
        if (
            not tables["limb_ok"]
            or lo_limbs * blog > 62
            or hi_limbs * blog + 3 > 62
        ):
            return super().decompose(gadget, vec)
        with kernel_stage(self._label("decompose"), vec.residues.nbytes):
            z = gadget.base
            moduli, qhat_inv = tables["moduli"], tables["qhat_inv"]
            t = (vec.residues * qhat_inv[:, None]) % moduli[:, None]
            # Limb-major accumulation: acc[li] is a contiguous
            # (batch, n) slab for the carry sweep below.
            acc = np.einsum("bmn,ml->lbn", t, tables["qhat_limbs"])
            for li in range(nlimbs - 1):
                carry = acc[li] >> blog
                acc[li] -= carry << blog
                acc[li + 1] += carry
            low = acc[0].copy()
            for li in range(1, lo_limbs):
                low += acc[li] << (blog * li)
            high = acc[lo_limbs].copy()
            for li in range(1, hi_limbs):
                high += acc[lo_limbs + li] << (blog * li)
            big_q = gadget.ctx.basis.modulus_product
            z_lo = 1 << (blog * lo_limbs)
            q_low, q_high = big_q % z_lo, big_q >> (blog * lo_limbs)
            for _ in range(gadget.ctx.rns_count - 1):
                ge = (high > q_high) | ((high == q_high) & (low >= q_low))
                if not ge.any():
                    break
                gi = ge.astype(np.int64)
                low -= q_low * gi
                high -= q_high * gi
                borrow = low < 0
                low += z_lo * borrow
                high -= borrow
            digits = np.empty(
                (vec.batch, gadget.length, vec.ctx.n), dtype=np.int64
            )
            mask = z - 1
            for j in range(gadget.length):
                src, shift = (
                    (low, blog * j) if j < lo_limbs
                    else (high, blog * (j - lo_limbs))
                )
                digits[:, j] = (src >> shift) & mask
            return digits

    def inner(
        self, digits: np.ndarray, rows: np.ndarray, moduli_col: np.ndarray
    ) -> np.ndarray:
        """Key-switch inner product sized on the *actual* operand range.

        This backend's ``digits_forward`` hands over partially reduced
        ``[0, 2q)`` digits, so the overflow-safe chunk is computed from
        the operand maxima instead of assuming canonical inputs.  The
        final reduction canonicalises, so results stay byte-identical.
        """
        if digits.size == 0 or rows.size == 0:
            return super().inner(digits, rows, moduli_col)
        per_term = int(digits.max()) * int(rows.max())
        if per_term == 0:
            return np.zeros(
                (digits.shape[0],) + rows.shape[1:], dtype=np.int64
            )
        chunk = (_INT64_MAX - (int(moduli_col.max()) - 1)) // per_term
        if chunk < 1:
            # Out-of-range operands (never this backend's own digits):
            # canonicalise and take the eager path.
            return super().inner(digits % moduli_col, rows, moduli_col)
        return _chunked_einsum(
            "bkmn,kmn->bmn", digits, rows, digits.shape[1], chunk,
            moduli_col, (digits.shape[0],) + rows.shape[1:],
        )

    def modular_gemm(self, a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
        """Chunked float64 dgemm with Barrett tails; exact, BLAS-backed.

        int64 matmul in numpy is a scalar loop; float64 hits BLAS.  The
        inner axis is chunked so every partial accumulation stays below
        2^53 (float64-exact), each chunk Barrett-reduced before the
        next.  Operand ranges that cannot satisfy the bound take the
        eager int64 path — identical results either way.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        inner = a.shape[-1]
        if inner == 0:
            return np.zeros(a.shape[:-1] + b.shape[1:], dtype=np.int64)
        max_a = int(np.max(np.abs(a), initial=0))
        max_b = int(np.max(np.abs(b), initial=0))
        per_term = max_a * max_b
        if per_term == 0:
            return np.zeros(a.shape[:-1] + b.shape[1:], dtype=np.int64)
        if q >= FLOAT64_EXACT_MAX:
            return modular_gemm(a, b, q)
        chunk = (FLOAT64_EXACT_MAX - q) // per_term
        if chunk < 1:
            return modular_gemm(a, b, q)
        af = a.astype(np.float64)
        bf = b.astype(np.float64)
        if chunk >= inner:
            return barrett_reduce(af @ bf, q)
        acc = np.zeros(a.shape[:-1] + b.shape[1:], dtype=np.int64)
        for start in range(0, inner, chunk):
            stop = min(start + chunk, inner)
            acc += barrett_reduce(af[..., start:stop] @ bf[start:stop], q)
            acc -= q * (acc >= q)
        return acc

    def coltor(
        self,
        entries: BfvCiphertextVec,
        selection_bits: list[RgswCiphertext],
        gadget: Gadget,
    ) -> BfvCiphertext:
        """Tensor-resident tournament: even/odd halves are residue views.

        No per-round ciphertext lists and no restacking — each round
        slices the surviving batch's residue tensors directly, so the
        only materialization on the whole expand→rowsel→coltor path is
        the final response ciphertext.
        """
        self._check_coltor(entries.batch, selection_bits)
        ctx = entries.a.ctx
        nbytes = entries.a.residues.nbytes + entries.b.residues.nbytes
        with kernel_stage(self._label("coltor"), nbytes):
            current = entries
            for rgsw_bit in selection_bits:
                zeros = BfvCiphertextVec(
                    RnsPolyVec(ctx, current.a.residues[0::2], Domain.NTT),
                    RnsPolyVec(ctx, current.b.residues[0::2], Domain.NTT),
                )
                ones = BfvCiphertextVec(
                    RnsPolyVec(ctx, current.a.residues[1::2], Domain.NTT),
                    RnsPolyVec(ctx, current.b.residues[1::2], Domain.NTT),
                )
                current = self.cmux(rgsw_bit, zeros, ones, gadget)
            return current.ct(0)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, ComputeBackend] = {}

#: The backend every layer resolves when none is named explicitly.
DEFAULT_BACKEND = "planned"


def register_backend(backend: ComputeBackend) -> ComputeBackend:
    """Add a backend instance to the registry under ``backend.name``."""
    if not backend.name:
        raise ParameterError("compute backend must have a non-empty name")
    _REGISTRY[backend.name] = backend
    return backend


def backend_names() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def get_backend(name: str = DEFAULT_BACKEND) -> ComputeBackend:
    """Look up a registered backend by name; unknown names are typed errors."""
    backend = _REGISTRY.get(name)
    if backend is None:
        raise ParameterError(
            f"unknown compute backend {name!r}; registered backends: "
            f"{', '.join(backend_names())}"
        )
    return backend


def resolve_backend(
    backend: str | ComputeBackend | None = None,
) -> ComputeBackend:
    """Accept a backend name, an instance, or None (-> the default)."""
    if backend is None:
        return get_backend()
    if isinstance(backend, ComputeBackend):
        return backend
    return get_backend(backend)


register_backend(EagerBackend())
register_backend(PlannedBackend())
