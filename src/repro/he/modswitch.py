"""Response modulus switching: shrink a ciphertext from Q to a sub-basis.

OnionPIR-family protocols compress the response ciphertext before sending
it back ("mitigate HE-induced data expansion", Section VII): the response
only needs enough modulus headroom for its *final* noise, so the server
rescales (a, b) from Q = q_0 ... q_{k-1} down to a prefix Q' = q_0 ... q_{m-1},
cutting the response size by k/m while adding only a small rounding error.

The implementation uses the standard RNS rounding: for the dropped factor
``R = Q / Q'``, compute ``round(x / R)`` exactly in integers and re-embed
in the smaller basis.  Correctness requires the scaled noise plus rounding
term to stay below Δ'/2 = (Q'/P)/2 — checked by ``min_moduli_for_noise``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from typing import TYPE_CHECKING

from repro.errors import NoiseOverflowError, ParameterError
from repro.he.bfv import BfvCiphertext
from repro.he.poly import Domain, RingContext, RnsPoly

if TYPE_CHECKING:  # params depends on he.modmath; avoid the import cycle
    from repro.params import PirParams


@dataclass
class SwitchedCiphertext:
    """A BFV ciphertext living in the reduced ring (prefix RNS basis)."""

    a: RnsPoly
    b: RnsPoly
    num_moduli: int

    def size_bytes(self, params: PirParams) -> int:
        """Wire size: 2 polynomials over the reduced basis."""
        from repro.params import RESIDUE_BITS

        return 2 * self.num_moduli * params.n * RESIDUE_BITS // 8


class ModulusSwitcher:
    """Switches ciphertexts from the full ring to a prefix-basis ring."""

    def __init__(self, ring: RingContext, num_moduli: int):
        params = ring.params
        if not 1 <= num_moduli < params.rns_count:
            raise ParameterError(
                f"target basis must keep 1..{params.rns_count - 1} moduli, "
                f"got {num_moduli}"
            )
        self.full_ring = ring
        self.num_moduli = num_moduli
        self.small_params = replace(params, moduli=params.moduli[:num_moduli])
        self.small_ring = RingContext(self.small_params)
        self._drop_factor = params.q // self.small_params.q

    @property
    def compression_ratio(self) -> float:
        return self.full_ring.params.rns_count / self.num_moduli

    def switch(self, ct: BfvCiphertext) -> SwitchedCiphertext:
        """Rescale both halves: x -> round(x / R) over the prefix basis."""
        return SwitchedCiphertext(
            a=self._rescale(ct.a),
            b=self._rescale(ct.b),
            num_moduli=self.num_moduli,
        )

    def _rescale(self, poly: RnsPoly) -> RnsPoly:
        r = self._drop_factor
        lifted = poly.to_coeff().lift_coeffs()  # exact ints in [0, Q)
        scaled = [(int(x) + r // 2) // r for x in lifted]
        return self.small_ring.from_int_coeffs(scaled, domain=Domain.NTT)

    def decrypt(self, ct: SwitchedCiphertext, secret_coeffs: np.ndarray) -> np.ndarray:
        """Decrypt in the reduced ring (the client rebuilds s mod Q')."""
        small = self.small_params
        s = self.small_ring.from_small_coeffs(secret_coeffs, domain=Domain.NTT)
        phase = (ct.b + ct.a * s).to_coeff().lift_coeffs()
        q, p = small.q, small.plain_modulus
        return np.array(
            [int((int(c) * p + q // 2) // q) % p for c in phase], dtype=np.int64
        )

    def noise_after_switch(
        self, ct: SwitchedCiphertext, secret_coeffs: np.ndarray, plain: np.ndarray
    ) -> int:
        """Measured max-norm error in the reduced ring (for tests)."""
        small = self.small_params
        s = self.small_ring.from_small_coeffs(secret_coeffs, domain=Domain.NTT)
        phase = (ct.b + ct.a * s).to_coeff().lift_coeffs()
        delta = small.delta
        q = small.q
        worst = 0
        for c, m in zip(phase, plain):
            e = (int(c) - delta * int(m)) % q
            if e > q // 2:
                e -= q
            worst = max(worst, abs(e))
        return worst


def switching_noise_bound(params: PirParams, num_moduli: int) -> float:
    """High-probability error added by the switch.

    Two terms: the coefficient rounding (<= 1/2 per coefficient, amplified
    ~sqrt(N) through the ternary secret), and the Δ-rounding mismatch
    ``m * (Δ/R - Δ')`` which is bounded by ~2P because Δ = floor(Q/P) and
    Δ' = floor(Q'/P) each drop at most one unit.  The latter dominates for
    any realistic P.
    """
    rounding = 0.5 * (1.0 + math.sqrt(params.n))
    delta_mismatch = 2.0 * params.plain_modulus
    return rounding + delta_mismatch


def min_moduli_for_noise(params: PirParams, noise: float) -> int:
    """Smallest prefix basis that still decrypts a ciphertext with ``noise``.

    After switching, noise scales by Q'/Q while Δ' = Q'/P, so the relative
    headroom is preserved up to the rounding term — the basis only needs
    Δ'/2 to exceed the scaled noise plus the switch's own contribution.
    """
    for m in range(1, params.rns_count + 1):
        q_small = 1
        for q in params.moduli[:m]:
            q_small *= q
        scaled = noise * q_small / params.q + switching_noise_bound(params, m)
        if scaled < (q_small // params.plain_modulus) / 2:
            return m
    raise NoiseOverflowError(
        f"noise {noise:.3g} cannot be represented even in the full basis"
    )
