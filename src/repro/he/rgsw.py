"""RGSW ciphertexts and the external product (Section II-C/II-D).

An RGSW ciphertext encrypting a scalar bit m is a 2ℓ x 2 matrix of RLWE
rows: the first ℓ rows hide ``m * z^i`` in the ``a`` slot, the second ℓ in
the ``b`` slot.  The external product ``ct_RGSW ⊡ ct_BFV`` decomposes the
BFV pair into 2ℓ digit polynomials and takes the matrix-vector product,
yielding a BFV ciphertext of ``m * plaintext`` with only an additive error
increase — the property that makes ColTor cheap (Section II-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.he.bfv import BfvCiphertext, BfvContext, SecretKey
from repro.he.gadget import Gadget
from repro.he.poly import RnsPoly


@dataclass
class RgswCiphertext:
    """2ℓ RLWE rows; row i is (a_rows[i], b_rows[i]), all in NTT form."""

    a_rows: list[RnsPoly]
    b_rows: list[RnsPoly]

    @property
    def num_rows(self) -> int:
        return len(self.a_rows)


def rgsw_encrypt(
    bfv: BfvContext, gadget: Gadget, message: int, key: SecretKey
) -> RgswCiphertext:
    """Encrypt a small scalar (typically a selection bit) as RGSW."""
    ell = gadget.length
    a_rows: list[RnsPoly] = []
    b_rows: list[RnsPoly] = []
    for i in range(2 * ell):
        row = bfv.encrypt_zero(key)
        power = gadget.powers_rns[i % ell]
        shift = bfv.ctx.constant(1).scalar_rns_mul(power).scalar_mul(message)
        if i < ell:
            a_rows.append(row.a + shift)
            b_rows.append(row.b)
        else:
            a_rows.append(row.a)
            b_rows.append(row.b + shift)
    return RgswCiphertext(a_rows, b_rows)


def external_product(
    rgsw: RgswCiphertext, ct: BfvCiphertext, gadget: Gadget
) -> BfvCiphertext:
    """ct_RGSW ⊡ ct_BFV -> ct_BFV (Fig. 3 computational flow)."""
    ell = gadget.length
    if rgsw.num_rows != 2 * ell:
        raise ParameterError(
            f"RGSW has {rgsw.num_rows} rows; gadget expects {2 * ell}"
        )
    digits = gadget.decompose_ntt(ct.a) + gadget.decompose_ntt(ct.b)
    out_a = digits[0] * rgsw.a_rows[0]
    out_b = digits[0] * rgsw.b_rows[0]
    for digit, a_row, b_row in zip(digits[1:], rgsw.a_rows[1:], rgsw.b_rows[1:]):
        out_a = out_a + digit * a_row
        out_b = out_b + digit * b_row
    return BfvCiphertext(out_a, out_b)


def cmux(
    rgsw_bit: RgswCiphertext,
    if_zero: BfvCiphertext,
    if_one: BfvCiphertext,
    gadget: Gadget,
) -> BfvCiphertext:
    """Homomorphic select: bit ⊡ (if_one - if_zero) + if_zero (Section II-C)."""
    return external_product(rgsw_bit, if_one - if_zero, gadget) + if_zero
