"""Noise accounting helpers and the paper's additive-error bound (Section II-C).

The response-error bound for d-dimensional PIR is
``Err(ct_resp) <= Err(ct^(0)) + O(d) * Err(ct_RGSW)``: external products add
(rather than multiply) error, so the error stays stable as the DB grows
under fixed D0 and P.

Estimates here are root-mean-square compositions converted to a
high-probability max-norm with a 6-sigma tail factor — the convention used
in HE parameter-selection practice.  Tests assert that measured noise stays
below these estimates and that the functional parameter sets keep the final
value below the correctness bound Δ/2.

Note on Table I: with a *single* decomposition base for every operation the
margin at (P = 2^32, D0 = 256, z = 2^22, ℓ = 5) is negative by a couple of
bits; OnionPIR-family implementations close it by using a finer base for
the expansion evks, which is why Table I quotes z and ℓ as ranges
(2^14-2^22 and 5-8).  ``tightness_bits`` exposes the margin so experiments
can report it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.params import PirParams

#: High-probability tail multiplier applied to RMS noise magnitudes.
TAIL_FACTOR = 6.0


@dataclass(frozen=True)
class NoiseEstimate:
    """Expected max-norm error at each PIR stage (high-probability)."""

    fresh: float
    after_expand: float
    after_rowsel: float
    per_external_product: float
    after_coltor: float

    def response_bound(self) -> float:
        return self.after_coltor


def _keyswitch_rms(params: PirParams) -> float:
    """RMS of one gadget-product noise term: sum of ℓN digit*error products.

    Digits are unsigned in [0, z), so their second moment is z^2/3 (not the
    centered z^2/12) — confirmed against measured noise in the test suite.
    """
    digit_rms = params.gadget_base / math.sqrt(3.0)
    return math.sqrt(params.gadget_len * params.n) * digit_rms * params.error_std


def estimate(params: PirParams) -> NoiseEstimate:
    """High-probability max-norm error estimates for the protocol stages."""
    sigma = params.error_std
    fresh_rms = sigma

    # ExpandQuery: v_L = 2*v_{L-1} + ks^2  (ct + Subs(ct) doubles variance,
    # each level adds one key-switch term), L = log2(D0) levels.
    ks_rms = _keyswitch_rms(params)
    levels = max(0, int(math.log2(params.d0)))
    expand_var = (2.0**levels) * fresh_rms**2 + (2.0**levels - 1) * ks_rms**2
    expand_rms = math.sqrt(expand_var)

    # RowSel: every one of the D0 expanded ciphertexts contributes its noise
    # convolved with a plaintext polynomial (unsigned coefficients in [0, P)).
    plain_rms = params.plain_modulus / math.sqrt(3.0)
    rowsel_rms = math.sqrt(params.d0 * params.n) * plain_rms * expand_rms

    # One external product: 2ℓN digit*error products (Dcp on both a and b).
    ext_rms = math.sqrt(2.0) * ks_rms

    # ColTor: d cmux levels, each adding one external-product term.
    coltor_rms = math.sqrt(rowsel_rms**2 + params.num_dims * ext_rms**2)

    return NoiseEstimate(
        fresh=TAIL_FACTOR * fresh_rms,
        after_expand=TAIL_FACTOR * expand_rms,
        after_rowsel=TAIL_FACTOR * rowsel_rms,
        per_external_product=TAIL_FACTOR * ext_rms,
        after_coltor=TAIL_FACTOR * coltor_rms,
    )


def decryptable(params: PirParams, noise: float) -> bool:
    """True when a ciphertext with this max-norm noise still decrypts."""
    return noise < params.delta / 2.0


def tightness_bits(params: PirParams) -> float:
    """log2 margin between the correctness bound and the response estimate.

    Positive means the parameter set closes with room to spare; negative
    means a single-base configuration would need a finer expansion gadget.
    """
    est = estimate(params)
    return math.log2(params.delta / 2.0) - math.log2(est.response_bound())
