"""Substitution Subs(ct, r): automorphism plus key switching (Section II-D).

``Subs(ct, r)`` replaces X with X^r inside the encrypted polynomial.  The
automorphism itself is free of noise but moves the ciphertext under the
rotated secret ``s(X^r)``; the evaluation key ``evk_r`` (an ℓ-row gadget
encryption of ``z^i * s(X^r)`` under ``s``) switches it back:

    Subs(ct, r) = evk_r · Dcp(a_aut) + (0, b_aut)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.he.bfv import BfvCiphertext, BfvContext, SecretKey
from repro.he.gadget import Gadget
from repro.he.poly import Domain, RnsPoly


@dataclass
class SubsKey:
    """Key-switching key for one automorphism power r (2 x ℓ polynomials)."""

    r: int
    a_rows: list[RnsPoly]
    b_rows: list[RnsPoly]

    @property
    def num_rows(self) -> int:
        return len(self.a_rows)


def generate_subs_key(
    bfv: BfvContext, gadget: Gadget, key: SecretKey, r: int
) -> SubsKey:
    """evk_r: rows (a_i, -a_i*s + e_i + z^i * s(X^r))."""
    s_rot = (
        bfv.ctx.from_small_coeffs(key.coeffs, domain=Domain.COEFF)
        .automorphism(r)
        .to_ntt()
    )
    a_rows: list[RnsPoly] = []
    b_rows: list[RnsPoly] = []
    for power in gadget.powers_rns:
        row = bfv.encrypt_zero(key)
        a_rows.append(row.a)
        b_rows.append(row.b + s_rot.scalar_rns_mul(power))
    return SubsKey(r=r, a_rows=a_rows, b_rows=b_rows)


def substitute(ct: BfvCiphertext, evk: SubsKey, gadget: Gadget) -> BfvCiphertext:
    """Subs(ct, evk.r): encrypts m(X^r) when ct encrypts m(X)."""
    if evk.num_rows != gadget.length:
        raise ParameterError(
            f"evk has {evk.num_rows} rows; gadget expects {gadget.length}"
        )
    a_aut = ct.a.to_coeff().automorphism(evk.r)
    b_aut = ct.b.to_coeff().automorphism(evk.r).to_ntt()
    digits = [d.to_ntt() for d in gadget.decompose(a_aut)]
    out_a = digits[0] * evk.a_rows[0]
    out_b = digits[0] * evk.b_rows[0]
    for digit, a_row, b_row in zip(digits[1:], evk.a_rows[1:], evk.b_rows[1:]):
        out_a = out_a + digit * a_row
        out_b = out_b + digit * b_row
    return BfvCiphertext(out_a, out_b + b_aut)
