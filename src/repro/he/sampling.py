"""Randomness sources for key, error, and ciphertext sampling.

Wraps a ``numpy.random.Generator`` so every run is reproducible from a seed.
The error distribution is a rounded Gaussian with the paper's sigma = 3.2,
the standard choice for 128-bit-secure RLWE parameter sets [10].
"""

from __future__ import annotations

import numpy as np

from repro.he.poly import Domain, RingContext, RnsPoly


class Sampler:
    """Deterministic sampler over one ring context."""

    def __init__(self, ctx: RingContext, seed: int | None = None):
        self.ctx = ctx
        self.rng = np.random.default_rng(seed)

    def uniform_poly(self, domain: Domain = Domain.NTT) -> RnsPoly:
        """Uniformly random element of R_Q (sampled directly per residue)."""
        moduli = np.array(self.ctx.params.moduli, dtype=np.int64)
        res = np.empty((self.ctx.rns_count, self.ctx.n), dtype=np.int64)
        for i, q in enumerate(moduli):
            res[i] = self.rng.integers(0, q, size=self.ctx.n, dtype=np.int64)
        # A fresh uniform sample is uniform in either representation, so the
        # domain tag is free to set; no transform is needed.
        return RnsPoly(self.ctx, res, domain)

    def error_coeffs(self) -> np.ndarray:
        """Small signed error vector e with sigma = params.error_std."""
        e = self.rng.normal(0.0, self.ctx.params.error_std, size=self.ctx.n)
        return np.rint(e).astype(np.int64)

    def error_poly(self, domain: Domain = Domain.NTT) -> RnsPoly:
        return self.ctx.from_small_coeffs(self.error_coeffs(), domain=domain)

    def ternary_coeffs(self) -> np.ndarray:
        """Uniform ternary vector in {-1, 0, 1} (secret key distribution)."""
        return self.rng.integers(-1, 2, size=self.ctx.n, dtype=np.int64)
