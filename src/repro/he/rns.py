"""Residue number system (RNS) for the ciphertext modulus Q (Section II-B).

Q is a product of NTT-friendly primes; a coefficient ``c`` mod Q is stored
as the vector of residues ``c mod q_i`` (Eq. 2).  ``from_rns`` implements
inverse CRT reconstruction (Eq. 3).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.he import modmath


class RnsBasis:
    """A fixed set of co-prime moduli with precomputed CRT constants."""

    def __init__(self, moduli: tuple[int, ...]):
        if len(set(moduli)) != len(moduli):
            raise ParameterError(f"duplicate moduli in RNS basis: {moduli}")
        self.moduli = tuple(int(q) for q in moduli)
        self.modulus_product = 1
        for q in self.moduli:
            self.modulus_product *= q
        # Q_hat_i = Q / q_i and its inverse mod q_i (Eq. 3 constants).
        self._q_hat = tuple(self.modulus_product // q for q in self.moduli)
        self._q_hat_inv = tuple(
            modmath.mod_inverse(h % q, q) for h, q in zip(self._q_hat, self.moduli)
        )
        self._moduli_arr = np.array(self.moduli, dtype=np.int64)
        self._q_hat_inv_arr = np.array(self._q_hat_inv, dtype=np.int64)
        self._q_hat_obj = np.array(self._q_hat, dtype=object)

    @property
    def count(self) -> int:
        return len(self.moduli)

    @property
    def log2_q(self) -> float:
        return float(np.log2(float(self.modulus_product)))

    def to_rns(self, coeffs) -> np.ndarray:
        """Integers (mod Q) -> residue matrix of shape (count, n), int64."""
        arr = np.asarray(coeffs, dtype=object)
        out = np.empty((self.count, arr.shape[0]), dtype=np.int64)
        for i, q in enumerate(self.moduli):
            out[i] = np.array([int(c) % q for c in arr], dtype=np.int64)
        return out

    def to_rns_int64(self, coeffs: np.ndarray) -> np.ndarray:
        """Fast path for coefficients that already fit in int64 (e.g. digits)."""
        arr = np.asarray(coeffs, dtype=np.int64)
        return arr[None, :] % self._moduli_arr[:, None]

    def from_rns(self, residues: np.ndarray) -> np.ndarray:
        """Residue matrix (count, n) -> object array of ints in [0, Q) (Eq. 3)."""
        residues = np.asarray(residues, dtype=np.int64)
        if residues.shape[0] != self.count:
            raise ParameterError(
                f"residue matrix has {residues.shape[0]} rows, basis has {self.count}"
            )
        # t_i = [c]_{q_i} * (Q/q_i)^{-1} mod q_i, done in int64 ...
        t = (residues * self._q_hat_inv_arr[:, None]) % self._moduli_arr[:, None]
        # ... then the big-int accumulation c = sum t_i * (Q/q_i) mod Q.
        acc = (t.astype(object) * self._q_hat_obj[:, None]).sum(axis=0)
        return acc % self.modulus_product

    def from_rns_centered(self, residues: np.ndarray) -> np.ndarray:
        """Like :meth:`from_rns` but lifts to the centered range (-Q/2, Q/2]."""
        lifted = self.from_rns(residues)
        half = self.modulus_product // 2
        return np.array(
            [c - self.modulus_product if c > half else c for c in lifted],
            dtype=object,
        )

    def constant_rns(self, value: int) -> np.ndarray:
        """RNS residues of a scalar constant, shape (count,)."""
        return np.array([value % q for q in self.moduli], dtype=np.int64)
