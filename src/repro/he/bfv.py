"""BFV encryption (Section II-A/II-D): keygen, encrypt/decrypt, linear ops.

A ciphertext is a pair (a, b) in R_Q^2 with phase b + a*s = Δ*m + e for
plaintext m in R_P and Δ = floor(Q/P).  Both polynomials are kept in NTT
form so repeated multiplications need no conversions (Section II-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NoiseOverflowError, ParameterError
from repro.he.poly import Domain, RingContext, RnsPoly
from repro.he.sampling import Sampler


@dataclass
class SecretKey:
    """Ternary RLWE secret, cached in both domains."""

    ntt: RnsPoly
    coeffs: np.ndarray  # signed ternary, shape (N,)

    @staticmethod
    def generate(ctx: RingContext, sampler: Sampler) -> "SecretKey":
        s = sampler.ternary_coeffs()
        return SecretKey(ntt=ctx.from_small_coeffs(s, domain=Domain.NTT), coeffs=s)


@dataclass
class BfvCiphertext:
    """BFV ciphertext (a, b), both polynomials in NTT form."""

    a: RnsPoly
    b: RnsPoly

    def __post_init__(self):
        if self.a.domain is not Domain.NTT or self.b.domain is not Domain.NTT:
            raise ParameterError("BFV ciphertexts are stored in NTT form")

    # -- linear homomorphic operations (Section II-D) -------------------
    def __add__(self, other: "BfvCiphertext") -> "BfvCiphertext":
        return BfvCiphertext(self.a + other.a, self.b + other.b)

    def __sub__(self, other: "BfvCiphertext") -> "BfvCiphertext":
        return BfvCiphertext(self.a - other.a, self.b - other.b)

    def __neg__(self) -> "BfvCiphertext":
        return BfvCiphertext(-self.a, -self.b)

    def plain_mul(self, plain_ntt: RnsPoly) -> "BfvCiphertext":
        """p * ct for an unencrypted polynomial p in NTT form."""
        return BfvCiphertext(self.a * plain_ntt, self.b * plain_ntt)

    def monomial_mul(self, power: int) -> "BfvCiphertext":
        """X^power * ct: exact, noise-free (used by ExpandQuery)."""
        return BfvCiphertext(self.a.monomial_mul(power), self.b.monomial_mul(power))

    def scalar_mul(self, value: int) -> "BfvCiphertext":
        return BfvCiphertext(self.a.scalar_mul(value), self.b.scalar_mul(value))

    def copy(self) -> "BfvCiphertext":
        return BfvCiphertext(self.a.copy(), self.b.copy())


class BfvContext:
    """Encryption/decryption operations bound to one ring + plaintext space."""

    def __init__(self, ctx: RingContext, sampler: Sampler):
        self.ctx = ctx
        self.params = ctx.params
        self.sampler = sampler
        self._delta_rns = ctx.basis.constant_rns(self.params.delta)

    # -- plaintext helpers ----------------------------------------------
    def encode_plain(self, coeffs, domain: Domain = Domain.NTT) -> RnsPoly:
        """Plaintext polynomial (coeffs mod P) embedded into R_Q."""
        arr = np.asarray(coeffs, dtype=np.int64) % self.params.plain_modulus
        return self.ctx.from_small_coeffs(arr, domain=domain)

    def encrypt(self, coeffs, key: SecretKey) -> BfvCiphertext:
        """Fresh encryption of a plaintext coefficient vector (mod P)."""
        arr = np.asarray(coeffs, dtype=np.int64) % self.params.plain_modulus
        a = self.sampler.uniform_poly(Domain.NTT)
        e = self.sampler.error_poly(Domain.NTT)
        delta_m = self.ctx.from_small_coeffs(arr, domain=Domain.NTT).scalar_rns_mul(
            self._delta_rns
        )
        b = -(a * key.ntt) + e + delta_m
        return BfvCiphertext(a, b)

    def encrypt_zero(self, key: SecretKey) -> BfvCiphertext:
        """RLWE encryption of zero (building block for evk/RGSW rows)."""
        a = self.sampler.uniform_poly(Domain.NTT)
        e = self.sampler.error_poly(Domain.NTT)
        b = -(a * key.ntt) + e
        return BfvCiphertext(a, b)

    # -- decryption -------------------------------------------------------
    def phase(self, ct: BfvCiphertext, key: SecretKey) -> np.ndarray:
        """b + a*s lifted to integers in [0, Q)."""
        return (ct.b + ct.a * key.ntt).to_coeff().lift_coeffs()

    def decrypt(self, ct: BfvCiphertext, key: SecretKey) -> np.ndarray:
        """Rounded decode: m = round(phase * P / Q) mod P, int64 array."""
        q, p = self.params.q, self.params.plain_modulus
        phase = self.phase(ct, key)
        decoded = [int((int(c) * p + q // 2) // q) % p for c in phase]
        return np.array(decoded, dtype=np.int64)

    def noise(self, ct: BfvCiphertext, key: SecretKey) -> int:
        """Max-norm of the error term e = phase - Δ*m (m from rounding)."""
        q, p = self.params.q, self.params.plain_modulus
        delta = self.params.delta
        worst = 0
        for c in self.phase(ct, key):
            c = int(c)
            m = ((c * p + q // 2) // q) % p
            e = (c - delta * m) % q
            if e > q // 2:
                e -= q
            worst = max(worst, abs(e))
        return worst

    def noise_budget_bits(self, ct: BfvCiphertext, key: SecretKey) -> float:
        """log2 of remaining headroom: Δ/2 over current noise.

        The measured noise is the distance to the *nearest* Δ-multiple and
        therefore caps at Δ/2; a ciphertext whose true error wrapped past
        that shows up as a budget near zero.  Anything under half a bit of
        headroom is treated as exhausted.
        """
        import math

        noise = self.noise(ct, key)
        # math.log2 handles arbitrarily large Python ints exactly.
        budget = math.log2(self.params.delta // 2) - math.log2(max(noise, 1))
        if budget < 0.5:
            raise NoiseOverflowError(
                f"noise {noise} leaves only {budget:.2f} bits of headroom "
                f"against Δ/2={self.params.delta // 2}"
            )
        return budget
