"""Homomorphic-encryption substrate: RNS/NTT polynomial ring, BFV, RGSW, Subs.

This package implements every HE operation the PIR protocol needs
(Section II of the paper): negacyclic NTT over the special primes, RNS
CRT/iCRT, BFV linear operations, gadget decomposition, RGSW external
products, and automorphism-based substitution with key switching.
"""

from repro.he.batched import (
    BfvCiphertextVec,
    RnsPolyVec,
    batched_cmux,
    batched_decompose,
    batched_external_product,
    batched_substitute,
    lazy_modular_gemm,
    overflow_safe_chunk,
)
from repro.he.bfv import BfvCiphertext, BfvContext, SecretKey
from repro.he.gadget import Gadget
from repro.he.modswitch import ModulusSwitcher, SwitchedCiphertext, min_moduli_for_noise
from repro.he.ntt import NttContext
from repro.he.poly import Domain, RingContext, RnsPoly
from repro.he.publickey import PublicKey, encrypt_public
from repro.he.rgsw import RgswCiphertext, cmux, external_product, rgsw_encrypt
from repro.he.rns import RnsBasis
from repro.he.sampling import Sampler
from repro.he.subs import SubsKey, generate_subs_key, substitute

__all__ = [
    "BfvCiphertext",
    "BfvCiphertextVec",
    "BfvContext",
    "Domain",
    "Gadget",
    "ModulusSwitcher",
    "NttContext",
    "PublicKey",
    "RgswCiphertext",
    "RingContext",
    "RnsBasis",
    "RnsPoly",
    "RnsPolyVec",
    "Sampler",
    "SecretKey",
    "SubsKey",
    "SwitchedCiphertext",
    "batched_cmux",
    "batched_decompose",
    "batched_external_product",
    "batched_substitute",
    "cmux",
    "encrypt_public",
    "external_product",
    "generate_subs_key",
    "lazy_modular_gemm",
    "min_moduli_for_noise",
    "overflow_safe_chunk",
    "rgsw_encrypt",
    "substitute",
]
