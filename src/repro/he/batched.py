"""Batched tensor kernels for the real-crypto hot path.

The per-poly reference stack (``RnsPoly`` + the loops in ``repro.pir``)
dispatches one tiny numpy call per polynomial per modulus, so the
RowSel/ColTor/Expand pipeline is throttled by Python overhead rather
than arithmetic.  This module provides the stacked equivalents the
accelerator's sysNTTUs motivate (Section III-A / Fig. 5):

* :class:`RnsPolyVec` — a batch of polynomials as one ``(batch,
  rns_count, n)`` int64 tensor, with the same domain discipline as
  :class:`~repro.he.poly.RnsPoly`;
* :class:`BfvCiphertextVec` — a batch of BFV ciphertexts (two vecs);
* :func:`batched_decompose` — gadget decomposition via an exact
  int64 *limb iCRT*: the Eq. 3 lift is accumulated directly in base-z
  limbs (the gadget digits), so no per-coefficient big-int arithmetic
  is needed;
* :func:`batched_substitute` / :func:`batched_external_product` /
  :func:`batched_cmux` — Subs and the RGSW external product over whole
  batches, with one stacked NTT call per modulus and lazy-reduction
  inner products;
* :func:`lazy_modular_gemm` — the RowSel modular GEMM: residues are
  < 2^28, so int64 holds hundreds of accumulated products before a
  ``% q`` is required; accumulation is chunked at the overflow-safe
  length (:func:`overflow_safe_chunk`).

Every kernel is element-identical to its per-poly reference — modular
arithmetic is exact, so reassociating the reductions cannot change the
canonical residues.  The hypothesis suite in ``tests/he/test_batched.py``
asserts this, and the servers keep the per-poly path as the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DomainError, ParameterError
from repro.he.bfv import BfvCiphertext
from repro.he.gadget import Gadget
from repro.he.poly import Domain, RingContext, RnsPoly
from repro.he.rgsw import RgswCiphertext
from repro.he.subs import SubsKey
from repro.obs.profile import kernel_stage

_INT64_MAX = (1 << 63) - 1


def overflow_safe_chunk(modulus: int) -> int:
    """How many residue products mod ``modulus`` int64 can accumulate.

    Each product is at most ``(q-1)^2`` and one partially-reduced
    accumulator value (< q) may ride along, so the largest safe
    accumulation length is ``(2^63 - q) // (q-1)^2``.
    """
    if modulus < 2:
        raise ParameterError(f"modulus {modulus} must be at least 2")
    worst = (modulus - 1) ** 2
    if worst > _INT64_MAX - (modulus - 1):
        raise ParameterError(
            f"modulus {modulus} is too large for int64 lazy reduction"
        )
    return (_INT64_MAX - (modulus - 1)) // worst


def _chunked_einsum(script: str, lhs: np.ndarray, rhs: np.ndarray,
                    axis_len: int, chunk: int, moduli_col: np.ndarray,
                    out_shape: tuple) -> np.ndarray:
    """Accumulate ``einsum(script)`` over a contraction axis in safe chunks.

    ``lhs``/``rhs`` are sliced along their leading contraction layout by
    the caller-provided lambda-free convention: the contraction axis is
    axis 1 of ``lhs`` and axis 0 of ``rhs``.
    """
    acc = np.zeros(out_shape, dtype=np.int64)
    for start in range(0, axis_len, chunk):
        stop = start + chunk
        part = np.einsum(script, lhs[:, start:stop], rhs[start:stop])
        acc = (acc + part) % moduli_col
    return acc


def lazy_modular_gemm(
    db: np.ndarray, query: np.ndarray, moduli_col: np.ndarray
) -> np.ndarray:
    """RowSel GEMM: ``out[c] = sum_r db[c, r] * query[r]`` mod q, per modulus.

    ``db`` has shape ``(cols, rows, rns_count, n)``, ``query`` has shape
    ``(rows, rns_count, n)``; the result is ``(cols, rns_count, n)``.
    Products are accumulated lazily in int64 and reduced once per
    overflow-safe chunk of the row axis (residues < 2^28 allow hundreds
    of products per reduction), which is what turns the per-(row, col)
    Python loop into a handful of tensor contractions.
    """
    if db.ndim != 4 or query.ndim != 3 or db.shape[1:] != query.shape:
        raise ParameterError(
            f"GEMM shape mismatch: db {db.shape} vs query {query.shape}"
        )
    chunk = overflow_safe_chunk(int(moduli_col.max()))
    with kernel_stage("gemm", db.nbytes + query.nbytes):
        return _chunked_einsum(
            "crmn,rmn->cmn", db, query, db.shape[1], chunk, moduli_col,
            (db.shape[0],) + query.shape[1:],
        )


def _lazy_inner(
    digits: np.ndarray, rows: np.ndarray, moduli_col: np.ndarray
) -> np.ndarray:
    """Key-switch inner product ``out[b] = sum_k digits[b, k] * rows[k]``.

    ``digits`` is ``(batch, k, rns_count, n)``, ``rows`` is
    ``(k, rns_count, n)``; same lazy-reduction contract as
    :func:`lazy_modular_gemm`.
    """
    chunk = overflow_safe_chunk(int(moduli_col.max()))
    return _chunked_einsum(
        "bkmn,kmn->bmn", digits, rows, digits.shape[1], chunk, moduli_col,
        (digits.shape[0],) + rows.shape[1:],
    )


def _rns_ntt_tables(ctx: RingContext) -> dict:
    """Per-ring twiddle tables stacked across the RNS basis.

    The Cooley-Tukey/Gentleman-Sande butterfly structure depends only on
    the ring degree, so all moduli can ride through one vectorised
    transform with per-modulus twiddles broadcast along the RNS axis —
    one stacked call instead of ``rns_count`` per conversion.
    """
    cache = getattr(ctx, "_rns_ntt_tables_cache", None)
    if cache is not None:
        return cache
    qmax = max(ctx.params.moduli)
    logn = ctx.n.bit_length() - 1
    tables = {
        "fwd": np.stack([ntt._fwd for ntt in ctx.ntts]),  # (rns_count, n)
        "inv": np.stack([ntt._inv for ntt in ctx.ntts]),
        "n_inv": np.array(
            [ntt._n_inv for ntt in ctx.ntts], dtype=np.int64
        )[:, None],
        "moduli3": ctx._moduli_col[:, :, None],  # (rns_count, 1, 1)
        # Lazy butterflies let values grow to (log2(n)+1)*q before the
        # final reduction; the twiddle product of a stage-k value must
        # still fit int64.  The paper's ~28-bit moduli clear this by a
        # wide margin, but a user-built params set with ~2^30 moduli is
        # NTT-friendly yet would overflow *silently* — those fall back
        # to eager per-stage reduction (still stacked, just slower).
        "lazy_fwd": logn * qmax * (qmax - 1) < _INT64_MAX,
        "lazy_inv": 2 * qmax * (qmax - 1) < _INT64_MAX,
    }
    ctx._rns_ntt_tables_cache = tables
    return tables


def rns_forward(ctx: RingContext, residues: np.ndarray) -> np.ndarray:
    """Stacked forward NTT over every RNS row: (..., rns_count, n) -> same.

    Element-identical to calling ``ctx.ntts[i].forward`` row by row, but
    with lazy reduction through the butterflies: only the twiddle
    product is reduced per stage, sums stay unreduced (adding one ``q``
    of headroom per stage keeps subtraction results non-negative), and
    one final ``% q`` canonicalises.  The growth bound is
    ``(log2(n) + 1) * q < 2^32`` for the paper's ~28-bit moduli, far
    below both int64 and the ``value * twiddle < 2^63`` multiply
    constraint; moduli too large for that bound take the eager
    per-stage-reduced butterflies instead (checked in
    :func:`_rns_ntt_tables`) so the fast path can never silently wrap.
    """
    with kernel_stage("ntt_fwd", getattr(residues, "nbytes", 0)):
        return _rns_forward_impl(ctx, residues)


def _rns_forward_impl(ctx: RingContext, residues: np.ndarray) -> np.ndarray:
    tables = _rns_ntt_tables(ctx)
    q = tables["moduli3"]
    n = ctx.n
    a = np.ascontiguousarray(np.asarray(residues, dtype=np.int64) % ctx._moduli_col)
    lead = a.shape[:-2]
    rns = a.shape[-2]
    # Scratch for the stage's u/v halves: n/2 elements per polynomial at
    # every stage, so two buffers serve all log2(n) stages without
    # per-stage allocations.
    scratch_u = np.empty(lead + (rns, n // 2), dtype=np.int64)
    scratch_v = np.empty_like(scratch_u)
    lazy = tables["lazy_fwd"]
    t = n
    m = 1
    while m < n:
        t //= 2
        blocks = a.reshape(*lead, rns, m, 2, t)
        s = tables["fwd"][:, m : 2 * m]  # (rns_count, m)
        u = scratch_u.reshape(*lead, rns, m, t)
        v = scratch_v.reshape(*lead, rns, m, t)
        np.copyto(u, blocks[..., 0, :])
        np.multiply(blocks[..., 1, :], s[:, :, None], out=v)
        v %= q
        np.add(u, v, out=blocks[..., 0, :])
        np.subtract(u, v, out=blocks[..., 1, :])
        blocks[..., 1, :] += q
        if not lazy:
            blocks[..., 0, :] %= q
            blocks[..., 1, :] %= q
        m *= 2
    return a % ctx._moduli_col


def rns_inverse(ctx: RingContext, residues: np.ndarray) -> np.ndarray:
    """Stacked inverse NTT over every RNS row: (..., rns_count, n) -> same."""
    with kernel_stage("ntt_inv", getattr(residues, "nbytes", 0)):
        return _rns_inverse_impl(ctx, residues)


def _rns_inverse_impl(ctx: RingContext, residues: np.ndarray) -> np.ndarray:
    tables = _rns_ntt_tables(ctx)
    q = tables["moduli3"]
    n = ctx.n
    a = np.ascontiguousarray(np.asarray(residues, dtype=np.int64) % ctx._moduli_col)
    lead = a.shape[:-2]
    rns = a.shape[-2]
    scratch_u = np.empty(lead + (rns, n // 2), dtype=np.int64)
    t = 1
    m = n
    while m > 1:
        h = m // 2
        blocks = a.reshape(*lead, rns, h, 2, t)
        s = tables["inv"][:, h : 2 * h]
        u = scratch_u.reshape(*lead, rns, h, t)
        np.copyto(u, blocks[..., 0, :])
        v = blocks[..., 1, :]  # view; consumed before being overwritten
        np.add(u, v, out=blocks[..., 0, :])
        blocks[..., 0, :] %= q
        np.subtract(u, v, out=u)
        u += q  # keep the difference non-negative before the twiddle
        if not tables["lazy_inv"]:
            u %= q  # large moduli: reduce before the twiddle product
        u *= s[:, :, None]
        u %= q
        blocks[..., 1, :] = u
        t *= 2
        m = h
    return (a * tables["n_inv"]) % ctx._moduli_col


@dataclass
class RnsPolyVec:
    """A batch of R_Q polynomials as one (batch, rns_count, n) tensor.

    Mirrors :class:`~repro.he.poly.RnsPoly`'s domain discipline: every
    element of the batch is in the same domain, and the operations below
    enforce the same coeff/NTT rules the scalar type does.
    """

    ctx: RingContext
    residues: np.ndarray
    domain: Domain

    def __post_init__(self):
        expected = (self.ctx.rns_count, self.ctx.n)
        if self.residues.ndim != 3 or self.residues.shape[1:] != expected:
            raise ParameterError(
                f"expected residue tensor of shape (batch, {expected[0]}, "
                f"{expected[1]}), got {self.residues.shape}"
            )

    # -- construction ----------------------------------------------------
    @classmethod
    def from_polys(cls, polys: list[RnsPoly]) -> "RnsPolyVec":
        """Stack scalar polynomials (same ring, same domain) into a vec."""
        if not polys:
            raise ParameterError("cannot stack an empty polynomial list")
        ctx, domain = polys[0].ctx, polys[0].domain
        for p in polys[1:]:
            if p.ctx is not ctx and p.ctx.params != ctx.params:
                raise ParameterError("polynomials belong to different rings")
            if p.domain is not domain:
                raise DomainError(
                    f"domain mismatch: {domain.value} vs {p.domain.value}"
                )
        return cls(ctx, np.stack([p.residues for p in polys]), domain)

    @classmethod
    def from_small_coeffs(
        cls, ctx: RingContext, coeffs: np.ndarray, domain: Domain = Domain.COEFF
    ) -> "RnsPolyVec":
        """Batched CRT of int64 coefficient rows, shape (batch, n)."""
        arr = np.asarray(coeffs, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != ctx.n:
            raise ParameterError(
                f"expected coefficients of shape (batch, {ctx.n}), got {arr.shape}"
            )
        vec = cls(ctx, arr[:, None, :] % ctx._moduli_col[None], Domain.COEFF)
        return vec.to_ntt() if domain is Domain.NTT else vec

    @classmethod
    def concat(cls, first: "RnsPolyVec", second: "RnsPolyVec") -> "RnsPolyVec":
        if first.domain is not second.domain:
            raise DomainError(
                f"domain mismatch: {first.domain.value} vs {second.domain.value}"
            )
        return cls(
            first.ctx,
            np.concatenate([first.residues, second.residues]),
            first.domain,
        )

    # -- views -----------------------------------------------------------
    @property
    def batch(self) -> int:
        return self.residues.shape[0]

    def poly(self, index: int) -> RnsPoly:
        """The index-th polynomial as a scalar RnsPoly (a view)."""
        return RnsPoly(self.ctx, self.residues[index], self.domain)

    def polys(self) -> list[RnsPoly]:
        return [self.poly(i) for i in range(self.batch)]

    def copy(self) -> "RnsPolyVec":
        return RnsPolyVec(self.ctx, self.residues.copy(), self.domain)

    # -- domain conversions ----------------------------------------------
    def to_ntt(self) -> "RnsPolyVec":
        if self.domain is Domain.NTT:
            return self
        return RnsPolyVec(
            self.ctx, rns_forward(self.ctx, self.residues), Domain.NTT
        )

    def to_coeff(self) -> "RnsPolyVec":
        if self.domain is Domain.COEFF:
            return self
        return RnsPolyVec(
            self.ctx, rns_inverse(self.ctx, self.residues), Domain.COEFF
        )

    # -- arithmetic ------------------------------------------------------
    def _check_same_domain(self, other: "RnsPolyVec") -> None:
        if self.ctx is not other.ctx and self.ctx.params != other.ctx.params:
            raise ParameterError("polynomial batches belong to different rings")
        if self.domain is not other.domain:
            raise DomainError(
                f"domain mismatch: {self.domain.value} vs {other.domain.value}"
            )
        if self.batch != other.batch:
            raise ParameterError(
                f"batch mismatch: {self.batch} vs {other.batch}"
            )

    def __add__(self, other: "RnsPolyVec") -> "RnsPolyVec":
        self._check_same_domain(other)
        res = (self.residues + other.residues) % self.ctx._moduli_col
        return RnsPolyVec(self.ctx, res, self.domain)

    def __sub__(self, other: "RnsPolyVec") -> "RnsPolyVec":
        self._check_same_domain(other)
        res = (self.residues - other.residues) % self.ctx._moduli_col
        return RnsPolyVec(self.ctx, res, self.domain)

    def __neg__(self) -> "RnsPolyVec":
        return RnsPolyVec(
            self.ctx, (-self.residues) % self.ctx._moduli_col, self.domain
        )

    def __mul__(self, other: "RnsPolyVec") -> "RnsPolyVec":
        """Element-wise product; both batches must be in NTT form."""
        self._check_same_domain(other)
        if self.domain is not Domain.NTT:
            raise DomainError("polynomial multiplication requires NTT domain")
        res = (self.residues * other.residues) % self.ctx._moduli_col
        return RnsPolyVec(self.ctx, res, self.domain)

    def mul_poly(self, plain: RnsPoly) -> "RnsPolyVec":
        """Multiply every batch element by one (plaintext) NTT polynomial."""
        if self.domain is not Domain.NTT or plain.domain is not Domain.NTT:
            raise DomainError("polynomial multiplication requires NTT domain")
        res = (self.residues * plain.residues[None]) % self.ctx._moduli_col
        return RnsPolyVec(self.ctx, res, self.domain)

    def scalar_rns_mul(self, consts: np.ndarray) -> "RnsPolyVec":
        """Multiply by a per-modulus constant vector, shape (rns_count,)."""
        res = (self.residues * consts[None, :, None]) % self.ctx._moduli_col
        return RnsPolyVec(self.ctx, res, self.domain)

    def monomial_mul(self, power: int) -> "RnsPolyVec":
        """Multiply every element by X^power (exact, no noise)."""
        power %= 2 * self.ctx.n
        if self.domain is Domain.NTT:
            res = (self.residues * self.ctx.monomial_ntt(power)[None]) \
                % self.ctx._moduli_col
            return RnsPolyVec(self.ctx, res, self.domain)
        n = self.ctx.n
        sign_flip = power >= n
        shift = power - n if sign_flip else power
        rolled = np.roll(self.residues, shift, axis=-1)
        rolled[..., :shift] = -rolled[..., :shift]
        if sign_flip:
            rolled = -rolled
        return RnsPolyVec(self.ctx, rolled % self.ctx._moduli_col, Domain.COEFF)

    def automorphism(self, r: int) -> "RnsPolyVec":
        """Apply X -> X^r (r odd) to every batch element at once."""
        if self.domain is not Domain.COEFF:
            raise DomainError("automorphism requires coefficient domain")
        dest, negate = self.ctx.automorphism_indices(r)
        out = np.zeros_like(self.residues)
        out[..., dest] = np.where(negate, -self.residues, self.residues)
        return RnsPolyVec(self.ctx, out % self.ctx._moduli_col, Domain.COEFF)


@dataclass
class BfvCiphertextVec:
    """A batch of BFV ciphertexts: stacked (a, b), both in NTT form."""

    a: RnsPolyVec
    b: RnsPolyVec

    def __post_init__(self):
        if self.a.domain is not Domain.NTT or self.b.domain is not Domain.NTT:
            raise ParameterError("BFV ciphertexts are stored in NTT form")
        if self.a.batch != self.b.batch:
            raise ParameterError(
                f"a/b batch mismatch: {self.a.batch} vs {self.b.batch}"
            )

    @classmethod
    def from_cts(cls, cts: list[BfvCiphertext]) -> "BfvCiphertextVec":
        return cls(
            RnsPolyVec.from_polys([ct.a for ct in cts]),
            RnsPolyVec.from_polys([ct.b for ct in cts]),
        )

    @classmethod
    def concat(
        cls, first: "BfvCiphertextVec", second: "BfvCiphertextVec"
    ) -> "BfvCiphertextVec":
        return cls(
            RnsPolyVec.concat(first.a, second.a),
            RnsPolyVec.concat(first.b, second.b),
        )

    @property
    def batch(self) -> int:
        return self.a.batch

    def ct(self, index: int) -> BfvCiphertext:
        return BfvCiphertext(self.a.poly(index), self.b.poly(index))

    def cts(self) -> list[BfvCiphertext]:
        return [self.ct(i) for i in range(self.batch)]

    def __add__(self, other: "BfvCiphertextVec") -> "BfvCiphertextVec":
        return BfvCiphertextVec(self.a + other.a, self.b + other.b)

    def __sub__(self, other: "BfvCiphertextVec") -> "BfvCiphertextVec":
        return BfvCiphertextVec(self.a - other.a, self.b - other.b)

    def monomial_mul(self, power: int) -> "BfvCiphertextVec":
        return BfvCiphertextVec(
            self.a.monomial_mul(power), self.b.monomial_mul(power)
        )


# ---------------------------------------------------------------------------
# Gadget decomposition via exact int64 limb iCRT
# ---------------------------------------------------------------------------

def _limb_tables(gadget: Gadget) -> dict:
    """Precomputed base-z limb constants for one (basis, gadget) pair.

    The Eq. 3 lift ``c = sum_i t_i * Q_hat_i mod Q`` is evaluated with
    every big integer written in base ``z = 2^base_log2`` — the *gadget
    base* — so after carry propagation and at most ``rns_count - 1``
    conditional subtractions of Q, the limbs of the canonical lift *are*
    the gadget digits.  Everything stays in int64: ``t_i < 2^28`` times a
    limb ``< z <= 2^22`` times ``rns_count <= 4`` is far below 2^63.
    """
    cache = getattr(gadget, "_limb_tables_cache", None)
    if cache is not None:
        return cache
    basis = gadget.ctx.basis
    z = gadget.base
    if z <= basis.count:
        raise ParameterError(
            f"gadget base {z} too small for limb iCRT over {basis.count} moduli"
        )
    nlimbs = gadget.length + 1  # z^L >= Q, so L+1 limbs hold sums < rns * Q
    # The limb accumulation sum_i t_i * qhat_limb must fit int64:
    # rns_count * (q-1) * (z-1) products per limb position.  The paper's
    # 28-bit moduli / 2^22 base clear this by ~2^11; a valid-but-exotic
    # large-base/large-moduli set falls back to the per-poly reference
    # decomposition instead of silently wrapping.
    limb_ok = basis.count * (max(basis.moduli) - 1) * (z - 1) < _INT64_MAX

    def limbs_of(value: int) -> list[int]:
        return [(value >> (gadget.base_log2 * li)) & (z - 1) for li in range(nlimbs)]

    tables = {
        "nlimbs": nlimbs,
        "qhat_limbs": np.array(
            [limbs_of(h) for h in basis._q_hat], dtype=np.int64
        ),  # (rns_count, nlimbs)
        "q_limbs": np.array(limbs_of(basis.modulus_product), dtype=np.int64),
        "qhat_inv": basis._q_hat_inv_arr,
        "moduli": basis._moduli_arr,
        "limb_ok": limb_ok,
    }
    gadget._limb_tables_cache = tables
    return tables


def _limbs_ge(acc: np.ndarray, q_limbs: np.ndarray) -> np.ndarray:
    """Lexicographic ``acc >= Q`` over the limb axis (axis 1), vectorised."""
    shape = (acc.shape[0], acc.shape[2])
    result = np.zeros(shape, dtype=bool)
    undecided = np.ones(shape, dtype=bool)
    for li in range(acc.shape[1] - 1, -1, -1):
        limb = acc[:, li]
        greater = undecided & (limb > q_limbs[li])
        less = undecided & (limb < q_limbs[li])
        result |= greater
        undecided &= ~(greater | less)
    return result | undecided  # all limbs equal -> acc == Q -> "≥"


def batched_decompose(gadget: Gadget, vec: RnsPolyVec) -> np.ndarray:
    """Gadget digits of a whole batch: (batch, gadget_len, n) int64.

    Element-identical to running :meth:`Gadget.decompose` per polynomial
    — same unsigned base-z digits of the [0, Q) lift — but computed with
    pure int64 tensor arithmetic instead of per-coefficient Python
    big-ints (the limb iCRT described in :func:`_limb_tables`).
    """
    if vec.domain is not Domain.COEFF:
        vec = vec.to_coeff()
    with kernel_stage("decompose", vec.residues.nbytes):
        return _batched_decompose_impl(gadget, vec)


def _batched_decompose_impl(gadget: Gadget, vec: RnsPolyVec) -> np.ndarray:
    tables = _limb_tables(gadget)
    if not tables["limb_ok"]:
        # Oversized base/moduli would wrap the limb accumulation; take
        # the exact object-int reference per polynomial instead.
        digits = np.empty(
            (vec.batch, gadget.length, vec.ctx.n), dtype=np.int64
        )
        for i, poly in enumerate(vec.polys()):
            for j, digit in enumerate(gadget.decompose(poly)):
                digits[i, j] = digit.residues[0]
        return digits
    blog = gadget.base_log2
    z = gadget.base
    moduli, qhat_inv = tables["moduli"], tables["qhat_inv"]
    # t_i = residue_i * (Q/q_i)^{-1} mod q_i (Eq. 3), still per-modulus.
    t = (vec.residues * qhat_inv[:, None]) % moduli[:, None]
    # S = sum_i t_i * Q_hat_i accumulated limb-wise: (batch, nlimbs, n).
    acc = np.einsum("bmn,ml->bln", t, tables["qhat_limbs"])
    for li in range(tables["nlimbs"] - 1):
        carry = acc[:, li] >> blog
        acc[:, li] -= carry << blog
        acc[:, li + 1] += carry
    # S = lift + k*Q with k < rns_count: subtract Q wherever still >= Q.
    q_limbs = tables["q_limbs"]
    for _ in range(gadget.ctx.rns_count - 1):
        ge = _limbs_ge(acc, q_limbs)
        if not ge.any():
            break
        acc -= ge[:, None, :] * q_limbs[None, :, None]
        for li in range(tables["nlimbs"] - 1):
            borrow = acc[:, li] < 0
            acc[:, li] += borrow * z
            acc[:, li + 1] -= borrow
    return acc[:, : gadget.length, :]


def _digits_forward(ctx: RingContext, digits: np.ndarray) -> np.ndarray:
    """NTT the digit tensor (batch, k, n) into every RNS row: (batch, k, rns, n).

    A digit polynomial has the same int64 coefficients in every residue
    channel (digits are < z), so the RNS axis is a broadcast of the same
    input and the whole tensor goes through one stacked transform.
    """
    batch, k, n = digits.shape
    tiled = np.broadcast_to(
        digits[:, :, None, :], (batch, k, ctx.rns_count, n)
    )
    return rns_forward(ctx, tiled)


# ---------------------------------------------------------------------------
# Batched Subs / external product / cmux
# ---------------------------------------------------------------------------

def batched_substitute(
    vec: BfvCiphertextVec, evk: SubsKey, gadget: Gadget
) -> BfvCiphertextVec:
    """Subs(ct, evk.r) over a whole batch of ciphertexts at once.

    Identical math to :func:`repro.he.subs.substitute`, with the
    automorphism, digit NTTs, and key-switch inner products each done as
    one stacked kernel per modulus instead of per ciphertext.
    """
    if evk.num_rows != gadget.length:
        raise ParameterError(
            f"evk has {evk.num_rows} rows; gadget expects {gadget.length}"
        )
    ctx = vec.a.ctx
    moduli_col = ctx._moduli_col
    with kernel_stage("subs", vec.a.residues.nbytes + vec.b.residues.nbytes):
        a_aut = vec.a.to_coeff().automorphism(evk.r)
        b_aut = vec.b.to_coeff().automorphism(evk.r).to_ntt()
        digits = _digits_forward(ctx, batched_decompose(gadget, a_aut))
        rows_a = np.stack([row.residues for row in evk.a_rows])
        rows_b = np.stack([row.residues for row in evk.b_rows])
        out_a = _lazy_inner(digits, rows_a, moduli_col)
        out_b = (_lazy_inner(digits, rows_b, moduli_col) + b_aut.residues) \
            % moduli_col
        return BfvCiphertextVec(
            RnsPolyVec(ctx, out_a, Domain.NTT), RnsPolyVec(ctx, out_b, Domain.NTT)
        )


def batched_external_product(
    rgsw: RgswCiphertext, vec: BfvCiphertextVec, gadget: Gadget
) -> BfvCiphertextVec:
    """ct_RGSW ⊡ ct_BFV for a batch of BFV ciphertexts (Fig. 3 flow).

    The 2ℓ digit polynomials of every ciphertext are produced by one
    batched decomposition (a and b stacked), NTT'd in one pass per
    modulus, and contracted against the RGSW rows with lazy reduction.
    """
    ell = gadget.length
    if rgsw.num_rows != 2 * ell:
        raise ParameterError(
            f"RGSW has {rgsw.num_rows} rows; gadget expects {2 * ell}"
        )
    ctx = vec.a.ctx
    batch = vec.batch
    with kernel_stage(
        "ext_product", vec.a.residues.nbytes + vec.b.residues.nbytes
    ):
        stacked = RnsPolyVec.concat(vec.a, vec.b).to_coeff()
        digits = batched_decompose(gadget, stacked)  # (2*batch, ell, n)
        # Per ciphertext the digit order is a-digits then b-digits.
        digits = np.concatenate([digits[:batch], digits[batch:]], axis=1)
        digits = _digits_forward(ctx, digits)  # (batch, 2*ell, rns, n)
        rows_a = np.stack([row.residues for row in rgsw.a_rows])
        rows_b = np.stack([row.residues for row in rgsw.b_rows])
        return BfvCiphertextVec(
            RnsPolyVec(
                ctx, _lazy_inner(digits, rows_a, ctx._moduli_col), Domain.NTT
            ),
            RnsPolyVec(
                ctx, _lazy_inner(digits, rows_b, ctx._moduli_col), Domain.NTT
            ),
        )


def batched_cmux(
    rgsw_bit: RgswCiphertext,
    if_zeros: BfvCiphertextVec,
    if_ones: BfvCiphertextVec,
    gadget: Gadget,
) -> BfvCiphertextVec:
    """Homomorphic select over aligned batches: bit ⊡ (ones - zeros) + zeros."""
    return batched_external_product(rgsw_bit, if_ones - if_zeros, gadget) + if_zeros
