"""Polynomials in R_Q = Z_Q[X]/(X^N + 1) under RNS, in coeff or NTT domain.

``RingContext`` bundles the RNS basis with one NTT context per modulus and
is shared by every polynomial of a parameter set.  ``RnsPoly`` is a thin
value type over an ``(rns_count, N)`` int64 residue matrix plus a domain
tag; the HE layers above only ever combine polynomials through the methods
here, which enforce domain discipline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import DomainError, ParameterError
from repro.he.ntt import NttContext
from repro.he.rns import RnsBasis

if TYPE_CHECKING:  # avoid a circular import; params depends on he.modmath
    from repro.params import PirParams


class Domain(enum.Enum):
    COEFF = "coeff"
    NTT = "ntt"


class RingContext:
    """Shared precomputed state for one polynomial ring R_Q.

    Contexts are heavy (NTT twiddle tables, monomial/automorphism caches)
    and identity-compared on the hot path, so they must never travel over
    IPC by value: pickling reduces to :meth:`shared`, which re-attaches to
    the one process-local context for the parameter set.  A ciphertext
    pickled in the coordinator and unpickled in a worker therefore carries
    only its residues plus the (tiny, frozen) ``PirParams`` key, and every
    polynomial in that worker shares a single context again.
    """

    #: Process-local interning table for :meth:`shared` (params -> context).
    _interned: "dict[PirParams, RingContext]" = {}

    def __init__(self, params: "PirParams"):
        self.params = params
        self.n = params.n
        self.basis = RnsBasis(params.moduli)
        self.ntts = tuple(NttContext(params.n, q) for q in params.moduli)
        self._moduli_col = np.array(params.moduli, dtype=np.int64)[:, None]
        self._monomial_ntt_cache: dict[int, np.ndarray] = {}
        self._automorphism_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    @classmethod
    def shared(cls, params: "PirParams") -> "RingContext":
        """The process-local interned context for ``params``.

        Every caller with equal parameters gets the *same* object, so
        ``ctx is other.ctx`` holds across independently unpickled values
        and the twiddle/monomial caches are built once per process.
        """
        ctx = cls._interned.get(params)
        if ctx is None:
            ctx = cls._interned[params] = cls(params)
        return ctx

    def __reduce__(self):
        return (RingContext.shared, (self.params,))

    @property
    def rns_count(self) -> int:
        return self.basis.count

    # -- constructors --------------------------------------------------
    def zero(self, domain: Domain = Domain.NTT) -> "RnsPoly":
        return RnsPoly(self, np.zeros((self.rns_count, self.n), dtype=np.int64), domain)

    def from_int_coeffs(self, coeffs, domain: Domain = Domain.COEFF) -> "RnsPoly":
        """Build a polynomial from integer coefficients (arbitrary size)."""
        arr = np.asarray(coeffs, dtype=object)
        if arr.shape != (self.n,):
            raise ParameterError(f"expected {self.n} coefficients, got {arr.shape}")
        poly = RnsPoly(self, self.basis.to_rns(arr), Domain.COEFF)
        return poly.to_ntt() if domain is Domain.NTT else poly

    def from_small_coeffs(self, coeffs, domain: Domain = Domain.COEFF) -> "RnsPoly":
        """Fast path when coefficients already fit int64 (signed ok)."""
        arr = np.asarray(coeffs, dtype=np.int64)
        if arr.shape != (self.n,):
            raise ParameterError(f"expected {self.n} coefficients, got {arr.shape}")
        poly = RnsPoly(self, arr[None, :] % self._moduli_col, Domain.COEFF)
        return poly.to_ntt() if domain is Domain.NTT else poly

    def constant(self, value: int, domain: Domain = Domain.NTT) -> "RnsPoly":
        """The constant polynomial ``value`` (same residues in both domains)."""
        res = np.tile(self.basis.constant_rns(value)[:, None], (1, self.n))
        return RnsPoly(self, res, domain)

    def monomial_ntt(self, power: int) -> np.ndarray:
        """Cached NTT-form residues of the (signed) monomial X^power."""
        power %= 2 * self.n
        if power not in self._monomial_ntt_cache:
            coeffs = np.zeros(self.n, dtype=np.int64)
            if power < self.n:
                coeffs[power] = 1
            else:
                coeffs[power - self.n] = -1
            mono = self.from_small_coeffs(coeffs, domain=Domain.NTT)
            self._monomial_ntt_cache[power] = mono.residues
        return self._monomial_ntt_cache[power]

    def automorphism_indices(self, r: int) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``(dest, negate)`` index map of the X -> X^r automorphism.

        Coefficient ``j`` lands at ``dest[j] = j*r mod n`` and picks up a
        sign flip when ``j*r mod 2n >= n``.  Shared by the per-poly and
        batched automorphism kernels so both apply the identical map.
        """
        if r % 2 == 0:
            raise ParameterError(f"automorphism power r={r} must be odd")
        if r not in self._automorphism_cache:
            n = self.n
            idx = (np.arange(n) * r) % (2 * n)
            self._automorphism_cache[r] = (idx % n, idx >= n)
        return self._automorphism_cache[r]


@dataclass
class RnsPoly:
    """A polynomial in R_Q, stored as an (rns_count, N) residue matrix."""

    ctx: RingContext
    residues: np.ndarray
    domain: Domain

    # -- domain conversions ---------------------------------------------
    def to_ntt(self) -> "RnsPoly":
        if self.domain is Domain.NTT:
            return self
        out = np.empty_like(self.residues)
        for i, ntt in enumerate(self.ctx.ntts):
            out[i] = ntt.forward(self.residues[i])
        return RnsPoly(self.ctx, out, Domain.NTT)

    def to_coeff(self) -> "RnsPoly":
        if self.domain is Domain.COEFF:
            return self
        out = np.empty_like(self.residues)
        for i, ntt in enumerate(self.ctx.ntts):
            out[i] = ntt.inverse(self.residues[i])
        return RnsPoly(self.ctx, out, Domain.COEFF)

    # -- arithmetic -------------------------------------------------------
    def _check_same_domain(self, other: "RnsPoly") -> None:
        if self.ctx is not other.ctx and self.ctx.params != other.ctx.params:
            raise ParameterError("polynomials belong to different rings")
        if self.domain is not other.domain:
            raise DomainError(
                f"domain mismatch: {self.domain.value} vs {other.domain.value}"
            )

    def __add__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_same_domain(other)
        res = (self.residues + other.residues) % self.ctx._moduli_col
        return RnsPoly(self.ctx, res, self.domain)

    def __sub__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_same_domain(other)
        res = (self.residues - other.residues) % self.ctx._moduli_col
        return RnsPoly(self.ctx, res, self.domain)

    def __neg__(self) -> "RnsPoly":
        res = (-self.residues) % self.ctx._moduli_col
        return RnsPoly(self.ctx, res, self.domain)

    def __mul__(self, other: "RnsPoly") -> "RnsPoly":
        """Element-wise product; both operands must be in NTT form."""
        self._check_same_domain(other)
        if self.domain is not Domain.NTT:
            raise DomainError("polynomial multiplication requires NTT domain")
        res = (self.residues * other.residues) % self.ctx._moduli_col
        return RnsPoly(self.ctx, res, self.domain)

    def scalar_mul(self, value: int) -> "RnsPoly":
        """Multiply by an integer scalar (given mod Q)."""
        consts = self.ctx.basis.constant_rns(value)[:, None]
        res = (self.residues * consts) % self.ctx._moduli_col
        return RnsPoly(self.ctx, res, self.domain)

    def scalar_rns_mul(self, consts: np.ndarray) -> "RnsPoly":
        """Multiply by a per-modulus constant vector, shape (rns_count,)."""
        res = (self.residues * consts[:, None]) % self.ctx._moduli_col
        return RnsPoly(self.ctx, res, self.domain)

    def monomial_mul(self, power: int) -> "RnsPoly":
        """Multiply by X^power (power may be negative; exact, no noise)."""
        power %= 2 * self.ctx.n
        if self.domain is Domain.NTT:
            res = (self.residues * self.ctx.monomial_ntt(power)) % self.ctx._moduli_col
            return RnsPoly(self.ctx, res, self.domain)
        n = self.ctx.n
        sign_flip = power >= n
        shift = power - n if sign_flip else power
        rolled = np.roll(self.residues, shift, axis=1)
        rolled[:, :shift] = -rolled[:, :shift]
        if sign_flip:
            rolled = -rolled
        return RnsPoly(self.ctx, rolled % self.ctx._moduli_col, Domain.COEFF)

    def automorphism(self, r: int) -> "RnsPoly":
        """Apply X -> X^r (r odd), the map underlying Subs (Section II-D)."""
        if self.domain is not Domain.COEFF:
            raise DomainError("automorphism requires coefficient domain")
        dest, negate = self.ctx.automorphism_indices(r)
        out = np.zeros_like(self.residues)
        # X^j -> X^{j*r mod 2n}; exponents >= n wrap with a sign flip.
        out[:, dest] = np.where(negate[None, :], -self.residues, self.residues)
        return RnsPoly(self.ctx, out % self.ctx._moduli_col, Domain.COEFF)

    # -- lifting ---------------------------------------------------------
    def lift_coeffs(self) -> np.ndarray:
        """Object array of coefficients in [0, Q) (requires coeff domain)."""
        if self.domain is not Domain.COEFF:
            raise DomainError("lifting requires coefficient domain")
        return self.ctx.basis.from_rns(self.residues)

    def lift_coeffs_centered(self) -> np.ndarray:
        if self.domain is not Domain.COEFF:
            raise DomainError("lifting requires coefficient domain")
        return self.ctx.basis.from_rns_centered(self.residues)

    def copy(self) -> "RnsPoly":
        return RnsPoly(self.ctx, self.residues.copy(), self.domain)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RnsPoly):
            return NotImplemented
        return (
            self.ctx is other.ctx
            and self.domain is other.domain
            and bool(np.array_equal(self.residues, other.residues))
        )
